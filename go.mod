module cwatrace

go 1.24
