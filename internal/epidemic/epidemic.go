// Package epidemic simulates SARS-CoV-2 spread over the district geography
// in June 2020: a per-district SEIR compartment model with injected local
// outbreak events and a lab-testing pipeline that turns infections into
// delayed positive test reports.
//
// Germany's June 2020 situation — a few hundred new cases per day
// nationwide, declining — is the backdrop of the paper. Its two named
// events are injected as superspreading outbreaks: Berlin-Neukölln around
// June 18 and the large Gütersloh meat-plant outbreak announced with the
// June 23 lockdown (which also spilled into neighboring Warendorf). The
// positive-test series drives diagnosis-key uploads in the device layer,
// reproducing the paper's observation that the first shared keys appear on
// June 23.
package epidemic

import (
	"fmt"
	"math/rand"
	"time"

	"cwatrace/internal/entime"
	"cwatrace/internal/geo"
)

// Outbreak is a local superspreading event: Infections people move from
// susceptible to exposed in the district over DurationDays starting at Day
// (day index relative to the simulation start).
type Outbreak struct {
	DistrictID   string
	Day          int
	Infections   float64
	DurationDays int
}

// Config parameterizes the epidemic.
type Config struct {
	// Start is the first simulated day; the simulation usually starts
	// well before the study window so compartments are warmed up.
	Start time.Time
	// Days is the number of simulated days.
	Days int
	// Rt is the effective reproduction number (Germany hovered around
	// 0.8-1.0 in June 2020 outside outbreaks).
	Rt float64
	// IncubationDays is the mean E->I residence time.
	IncubationDays float64
	// InfectiousDays is the mean I->R residence time.
	InfectiousDays float64
	// InitialPrevalencePer100k seeds active infections at Start.
	InitialPrevalencePer100k float64
	// ReportingRate is the share of new infections that eventually get a
	// positive lab test.
	ReportingRate float64
	// TestDelayDays is the lag from becoming infectious to the positive
	// report (sampling + lab turnaround).
	TestDelayDays int
	// Outbreaks are injected events.
	Outbreaks []Outbreak
	// Seed drives the stochastic daily draws.
	Seed int64
}

// DefaultConfig reproduces the paper's backdrop: simulation from June 1,
// covering through end of June, with the Berlin and Gütersloh/Warendorf
// events.
func DefaultConfig() Config {
	start := time.Date(2020, time.June, 1, 0, 0, 0, 0, entime.Berlin)
	day := func(t time.Time) int { return int(t.Sub(start) / (24 * time.Hour)) }
	return Config{
		Start: start,
		// 45 days: June plus the first half of July, so long-window
		// simulations (the long-term-interest experiment) stay covered.
		Days:                     45,
		Rt:                       0.85,
		IncubationDays:           3,
		InfectiousDays:           7,
		InitialPrevalencePer100k: 12,
		ReportingRate:            0.5,
		TestDelayDays:            3,
		Outbreaks: []Outbreak{
			// Gütersloh: the Tönnies plant outbreak, ~1500 confirmed
			// cases, building up before the June 23 lockdown.
			{DistrictID: "NW-000", Day: day(entime.OutbreakGuetersloh.AddDate(0, 0, -6)), Infections: 1500, DurationDays: 7},
			// Warendorf: spillover from the same event.
			{DistrictID: "NW-001", Day: day(entime.OutbreakGuetersloh.AddDate(0, 0, -5)), Infections: 300, DurationDays: 6},
			// Berlin-Neukölln, reported June 18: a few hundred cases
			// across quarantined housing blocks.
			{DistrictID: "BE-000", Day: day(entime.OutbreakBerlin.AddDate(0, 0, -4)), Infections: 400, DurationDays: 5},
		},
		Seed: 20200616,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Days <= 0 {
		return fmt.Errorf("epidemic: Days must be positive")
	}
	if c.Rt < 0 {
		return fmt.Errorf("epidemic: negative Rt")
	}
	if c.IncubationDays <= 0 || c.InfectiousDays <= 0 {
		return fmt.Errorf("epidemic: residence times must be positive")
	}
	if c.ReportingRate < 0 || c.ReportingRate > 1 {
		return fmt.Errorf("epidemic: reporting rate %f out of range", c.ReportingRate)
	}
	if c.TestDelayDays < 0 {
		return fmt.Errorf("epidemic: negative test delay")
	}
	return nil
}

// compartments holds one district's SEIR state in persons (continuous).
type compartments struct {
	S, E, I, R float64
}

func (cp compartments) total() float64 { return cp.S + cp.E + cp.I + cp.R }

// Series is the simulated output: daily new infections and positive test
// reports per district.
type Series struct {
	cfg       Config
	districts []string
	index     map[string]int
	// newInfections[d][day] and positives[d][day].
	newInfections [][]float64
	positives     [][]float64
}

// Run simulates the epidemic over the model's districts.
func Run(model *geo.Model, cfg Config) (*Series, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	districts := model.Districts()

	s := &Series{
		cfg:           cfg,
		index:         make(map[string]int, len(districts)),
		newInfections: make([][]float64, len(districts)),
		positives:     make([][]float64, len(districts)),
	}
	state := make([]compartments, len(districts))
	for i, d := range districts {
		s.districts = append(s.districts, d.ID)
		s.index[d.ID] = i
		s.newInfections[i] = make([]float64, cfg.Days)
		s.positives[i] = make([]float64, cfg.Days)
		n := float64(d.Population)
		i0 := n * cfg.InitialPrevalencePer100k / 100000
		e0 := i0 * cfg.IncubationDays / cfg.InfectiousDays
		state[i] = compartments{S: n - i0 - e0, E: e0, I: i0}
	}

	// Outbreak lookup: district index -> day -> daily seeding.
	seeding := make(map[int]map[int]float64)
	for _, ob := range cfg.Outbreaks {
		di, ok := s.index[ob.DistrictID]
		if !ok {
			return nil, fmt.Errorf("epidemic: outbreak references unknown district %s", ob.DistrictID)
		}
		if ob.DurationDays <= 0 {
			return nil, fmt.Errorf("epidemic: outbreak duration must be positive")
		}
		if seeding[di] == nil {
			seeding[di] = make(map[int]float64)
		}
		perDay := ob.Infections / float64(ob.DurationDays)
		for d := 0; d < ob.DurationDays; d++ {
			seeding[di][ob.Day+d] += perDay
		}
	}

	beta := cfg.Rt / cfg.InfectiousDays
	sigma := 1 / cfg.IncubationDays
	gamma := 1 / cfg.InfectiousDays

	for day := 0; day < cfg.Days; day++ {
		for i := range state {
			cp := &state[i]
			n := cp.total()
			if n <= 0 {
				continue
			}
			// Daily Euler step with a small stochastic wobble so
			// district curves are not perfectly smooth.
			wobble := 1 + 0.15*rng.NormFloat64()
			if wobble < 0 {
				wobble = 0
			}
			newExposed := beta * cp.S * cp.I / n * wobble
			if seed := seeding[i][day]; seed > 0 {
				newExposed += seed
			}
			if newExposed > cp.S {
				newExposed = cp.S
			}
			becomeInfectious := sigma * cp.E
			recover := gamma * cp.I

			cp.S -= newExposed
			cp.E += newExposed - becomeInfectious
			cp.I += becomeInfectious - recover
			cp.R += recover

			s.newInfections[i][day] = becomeInfectious
			reportDay := day + cfg.TestDelayDays
			if reportDay < cfg.Days {
				s.positives[i][reportDay] += becomeInfectious * cfg.ReportingRate
			}
		}
	}
	return s, nil
}

// Start returns the first simulated day.
func (s *Series) Start() time.Time { return s.cfg.Start }

// Days returns the number of simulated days.
func (s *Series) Days() int { return s.cfg.Days }

// DayOf converts a timestamp to a simulation day index (-1 outside range).
func (s *Series) DayOf(t time.Time) int {
	if t.Before(s.cfg.Start) {
		return -1
	}
	d := int(t.Sub(s.cfg.Start) / (24 * time.Hour))
	if d >= s.cfg.Days {
		return -1
	}
	return d
}

// NewInfections returns district new infectious persons on day.
func (s *Series) NewInfections(districtID string, day int) float64 {
	i, ok := s.index[districtID]
	if !ok || day < 0 || day >= s.cfg.Days {
		return 0
	}
	return s.newInfections[i][day]
}

// Positives returns the district's positive lab reports on day.
func (s *Series) Positives(districtID string, day int) float64 {
	i, ok := s.index[districtID]
	if !ok || day < 0 || day >= s.cfg.Days {
		return 0
	}
	return s.positives[i][day]
}

// NationalPositives sums positive reports over all districts.
func (s *Series) NationalPositives(day int) float64 {
	var sum float64
	for i := range s.positives {
		if day >= 0 && day < s.cfg.Days {
			sum += s.positives[i][day]
		}
	}
	return sum
}

// Districts returns the district IDs in model order.
func (s *Series) Districts() []string {
	out := make([]string, len(s.districts))
	copy(out, s.districts)
	return out
}
