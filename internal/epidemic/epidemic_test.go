package epidemic

import (
	"testing"
	"time"

	"cwatrace/internal/entime"
	"cwatrace/internal/geo"
)

var model = geo.Germany()

func run(t *testing.T, cfg Config) *Series {
	t.Helper()
	s, err := Run(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero days", func(c *Config) { c.Days = 0 }},
		{"negative Rt", func(c *Config) { c.Rt = -1 }},
		{"zero incubation", func(c *Config) { c.IncubationDays = 0 }},
		{"zero infectious", func(c *Config) { c.InfectiousDays = 0 }},
		{"reporting > 1", func(c *Config) { c.ReportingRate = 1.5 }},
		{"negative delay", func(c *Config) { c.TestDelayDays = -1 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		if _, err := Run(model, cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestUnknownOutbreakDistrict(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Outbreaks = []Outbreak{{DistrictID: "XX-000", Day: 1, Infections: 10, DurationDays: 1}}
	if _, err := Run(model, cfg); err == nil {
		t.Fatal("unknown outbreak district must fail")
	}
}

func TestZeroDurationOutbreak(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Outbreaks = []Outbreak{{DistrictID: "BE-000", Day: 1, Infections: 10, DurationDays: 0}}
	if _, err := Run(model, cfg); err == nil {
		t.Fatal("zero-duration outbreak must fail")
	}
}

func TestDeterministicForSameSeed(t *testing.T) {
	cfg := DefaultConfig()
	a := run(t, cfg)
	b := run(t, cfg)
	for _, d := range []string{"BE-000", "NW-000", "BY-010"} {
		for day := 0; day < cfg.Days; day++ {
			if a.Positives(d, day) != b.Positives(d, day) {
				t.Fatalf("nondeterministic positives for %s day %d", d, day)
			}
		}
	}
}

func TestNationalBaselinePlausible(t *testing.T) {
	s := run(t, DefaultConfig())
	// Mid-June 2020 Germany reported roughly 300-600 new cases/day.
	// Check a pre-outbreak day (June 10 = day 9).
	got := s.NationalPositives(9)
	if got < 100 || got > 3000 {
		t.Fatalf("national positives on day 9 = %.0f, implausible", got)
	}
}

func TestDecliningTrendWithoutOutbreaks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Outbreaks = nil
	cfg.Seed = 7
	s := run(t, cfg)
	early := s.NationalPositives(5) + s.NationalPositives(6) + s.NationalPositives(7)
	late := s.NationalPositives(25) + s.NationalPositives(26) + s.NationalPositives(27)
	if late >= early {
		t.Fatalf("Rt<1 must decline: early %.1f, late %.1f", early, late)
	}
}

func TestOutbreakRaisesDistrictCases(t *testing.T) {
	cfg := DefaultConfig()
	s := run(t, cfg)
	// Gütersloh outbreak seeds days ~16-22; with the 3-day test delay
	// positives surge around days 20-25. Compare to its own baseline.
	var before, during float64
	for d := 5; d < 12; d++ {
		before += s.Positives("NW-000", d)
	}
	for d := 20; d < 27; d++ {
		during += s.Positives("NW-000", d)
	}
	if during < before*5 {
		t.Fatalf("Gütersloh outbreak not visible: before %.1f, during %.1f", before, during)
	}
	// A remote district must not see a comparable surge.
	var remoteBefore, remoteDuring float64
	for d := 5; d < 12; d++ {
		remoteBefore += s.Positives("BY-050", d)
	}
	for d := 20; d < 27; d++ {
		remoteDuring += s.Positives("BY-050", d)
	}
	if remoteBefore > 0 && remoteDuring > remoteBefore*3 {
		t.Fatalf("remote district surged without outbreak: %.1f -> %.1f", remoteBefore, remoteDuring)
	}
}

func TestPopulationConservation(t *testing.T) {
	// Conservation is structural (flows move between compartments), but
	// verify via the series: cumulative new infections can never exceed
	// district population.
	cfg := DefaultConfig()
	cfg.Days = 60
	s := run(t, cfg)
	for _, d := range model.Districts() {
		var cum float64
		for day := 0; day < cfg.Days; day++ {
			cum += s.NewInfections(d.ID, day)
		}
		if cum > float64(d.Population) {
			t.Fatalf("district %s: cumulative infections %.0f exceed population %d",
				d.ID, cum, d.Population)
		}
	}
}

func TestPositivesLagInfections(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Outbreaks = []Outbreak{{DistrictID: "SL-001", Day: 10, Infections: 5000, DurationDays: 1}}
	s := run(t, cfg)
	// The infection spike feeds infectious transitions over the following
	// days; positives must trail by the configured delay.
	peakInfDay, peakPosDay := 0, 0
	var maxInf, maxPos float64
	for day := 0; day < cfg.Days; day++ {
		if v := s.NewInfections("SL-001", day); v > maxInf {
			maxInf, peakInfDay = v, day
		}
		if v := s.Positives("SL-001", day); v > maxPos {
			maxPos, peakPosDay = v, day
		}
	}
	if peakPosDay != peakInfDay+cfg.TestDelayDays {
		t.Fatalf("positives peak day %d, infections peak %d, delay %d",
			peakPosDay, peakInfDay, cfg.TestDelayDays)
	}
}

func TestDayOf(t *testing.T) {
	s := run(t, DefaultConfig())
	if got := s.DayOf(s.Start()); got != 0 {
		t.Fatalf("DayOf(start) = %d", got)
	}
	if got := s.DayOf(entime.AppRelease); got != 15 {
		t.Fatalf("DayOf(release) = %d, want 15 (June 16 from June 1)", got)
	}
	if got := s.DayOf(s.Start().Add(-time.Hour)); got != -1 {
		t.Fatal("before start must be -1")
	}
	if got := s.DayOf(s.Start().AddDate(0, 0, s.Days())); got != -1 {
		t.Fatal("past end must be -1")
	}
}

func TestQueriesOutOfRange(t *testing.T) {
	s := run(t, DefaultConfig())
	if s.Positives("BE-000", -1) != 0 || s.Positives("BE-000", 999) != 0 {
		t.Fatal("out-of-range day must be 0")
	}
	if s.Positives("ZZ-000", 5) != 0 {
		t.Fatal("unknown district must be 0")
	}
	if len(s.Districts()) != model.NumDistricts() {
		t.Fatal("district list size mismatch")
	}
}
