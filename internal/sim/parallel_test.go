package sim

import (
	"reflect"
	"testing"
	"time"
)

// TestWorkerCountInvariance is the determinism contract of the sharded
// engine: a fixed seed must produce byte-identical results whether the run
// is fully serial or spread over many workers. Run with -race in CI.
func TestWorkerCountInvariance(t *testing.T) {
	cfg := quickConfig()
	cfg.End = cfg.Start.AddDate(0, 0, 2)

	cfg.Workers = 1
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serial.Stats, parallel.Stats) {
		t.Fatalf("stats differ between worker counts:\n 1: %+v\n 8: %+v",
			serial.Stats, parallel.Stats)
	}
	if len(serial.Records) != len(parallel.Records) {
		t.Fatalf("record count differs: %d vs %d", len(serial.Records), len(parallel.Records))
	}
	for i := range serial.Records {
		if serial.Records[i] != parallel.Records[i] {
			t.Fatalf("record %d differs between worker counts:\n 1: %+v\n 8: %+v",
				i, serial.Records[i], parallel.Records[i])
		}
	}
	if !reflect.DeepEqual(serial.Labels, parallel.Labels) {
		t.Fatalf("ground-truth labels differ between worker counts")
	}
}

// TestShardSeedStreamsDistinct guards against stream collisions: every
// (day, shard, purpose) triple must get its own seed.
func TestShardSeedStreamsDistinct(t *testing.T) {
	seen := make(map[int64][3]int)
	for day := 0; day < 30; day++ {
		for shard := 0; shard < 401; shard++ {
			for p, purpose := range []uint64{purposeGenerate, purposeEmit} {
				s := shardSeed(20200616, day, shard, purpose)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: (%d,%d,%d) and %v -> %d",
						day, shard, p, prev, s)
				}
				seen[s] = [3]int{day, shard, p}
			}
		}
	}
}

// TestEventMergerOrders checks the k-way merge yields the global
// (time, shard) order over sorted per-shard lists.
func TestEventMergerOrders(t *testing.T) {
	base := time.Date(2020, time.June, 15, 0, 0, 0, 0, time.UTC)
	mk := func(offsets ...int) []event {
		evs := make([]event, len(offsets))
		for i, off := range offsets {
			evs[i] = event{t: base.Add(time.Duration(off) * time.Second), uploadKeys: off}
		}
		return evs
	}
	shards := []*shard{
		{idx: 0, events: mk(1, 4, 4, 9)},
		{idx: 1, events: mk()},
		{idx: 2, events: mk(0, 4, 7)},
		{idx: 3, events: mk(2)},
	}
	m := newEventMerger(shards)
	var got []int
	prev := time.Time{}
	for ev := m.next(); ev != nil; ev = m.next() {
		if ev.t.Before(prev) {
			t.Fatalf("merge emitted out-of-order event at %v", ev.t)
		}
		prev = ev.t
		got = append(got, ev.uploadKeys)
	}
	want := []int{0, 1, 2, 4, 4, 4, 7, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order %v, want %v", got, want)
	}
}
