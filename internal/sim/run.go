package sim

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"cwatrace/internal/adoption"
	"cwatrace/internal/cdn"
	"cwatrace/internal/cryptopan"
	"cwatrace/internal/cwaserver"
	"cwatrace/internal/device"
	"cwatrace/internal/diagkeys"
	"cwatrace/internal/entime"
	"cwatrace/internal/epidemic"
	"cwatrace/internal/exposure"
	"cwatrace/internal/geo"
	"cwatrace/internal/geodb"
	"cwatrace/internal/netflow"
	"cwatrace/internal/netsim"
)

// event is one scheduled network interaction.
type event struct {
	t          time.Time
	client     netsim.ClientAddr
	clientHash uint64
	req        cdn.Request
	uploadKeys int
	// realCount events happen at real-world (unscaled) frequency; their
	// packets are emitted with probability 1/Scale (see device.Event).
	realCount bool
	// noise kinds: 0 none, 1 IPv6 flow, 2 non-443 port, 3 QUIC.
	noise int
}

// engine holds the mutable state of one Run.
type engine struct {
	cfg       Config
	rng       *rand.Rand
	model     *geo.Model
	network   *netsim.Network
	clock     *entime.SimClock
	backend   *cwaserver.Backend
	cdn       *cdn.CDN
	epi       *epidemic.Series
	curve     *adoption.Curve
	attention adoption.Attention
	sampler   *adoption.Sampler
	collector *netflow.Collector
	traffic   device.TrafficModel

	districts []geo.District
	devices   []*device.Device
	addrs     []netsim.ClientAddr // by device index
	byDist    [][]int             // device indices per district index

	webPools        [][]netsim.ClientAddr
	berlinRegioPool []netsim.ClientAddr

	anon   *cryptopan.Anonymizer
	labels map[netip.Addr]byte

	caches    map[string]*netflow.Cache
	routerIDs []string

	installCarry float64
	stats        Stats
}

// Run executes the simulation and returns the trace and its companions.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &engine{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	e.model = geo.Germany()
	var err error
	e.network, err = netsim.New(e.model, netsim.DefaultISPs())
	if err != nil {
		return nil, err
	}
	e.clock = entime.NewSimClock(cfg.Start)
	e.backend, err = cwaserver.New(cwaserver.DefaultConfig(), e.clock)
	if err != nil {
		return nil, err
	}
	e.cdn, err = cdn.New(cfg.CDN, e.backend, cwaserver.DefaultWebsite())
	if err != nil {
		return nil, err
	}
	e.epi, err = epidemic.Run(e.model, cfg.Epidemic)
	if err != nil {
		return nil, err
	}
	e.curve = adoption.DefaultCurve()
	e.attention = adoption.DefaultAttention()
	e.sampler, err = adoption.NewSampler(adoption.DistrictWeights(e.model))
	if err != nil {
		return nil, err
	}
	anon, err := cryptopan.New(cfg.AnonKey)
	if err != nil {
		return nil, err
	}
	e.anon = anon
	e.labels = make(map[netip.Addr]byte)
	e.collector = netflow.NewCollector(anon, netsim.IsCWAServer)
	e.traffic = device.DefaultTrafficModel()
	e.districts = e.model.Districts()
	e.byDist = make([][]int, len(e.districts))
	e.webPools = make([][]netsim.ClientAddr, len(e.districts))
	e.caches = make(map[string]*netflow.Cache)
	e.stats.KeysByDay = make(map[string]int)
	e.stats.WebVisitsByDay = make([]int, int(cfg.End.Sub(cfg.Start)/(24*time.Hour)))

	for day := cfg.Start; day.Before(cfg.End); day = day.AddDate(0, 0, 1) {
		if err := e.runDay(day); err != nil {
			return nil, err
		}
	}
	e.drainAll()

	// Geolocation database over the full prefix inventory.
	var infos []geodb.PrefixInfo
	for p, routerID := range e.network.AllPrefixes() {
		r, _ := e.network.Router(routerID)
		infos = append(infos, geodb.PrefixInfo{
			Prefix: p, RouterID: routerID,
			DistrictID: r.DistrictID, ISPName: r.ISPName,
		})
	}
	db, err := geodb.Build(e.model, infos, cfg.GeoDB, anon)
	if err != nil {
		return nil, err
	}

	records := e.collector.Records()
	e.stats.Records = len(records)
	uploads, fakes := e.backend.Stats()
	e.stats.Uploads = uploads
	e.stats.FakeCalls = fakes
	e.stats.CacheHits, e.stats.CacheMisses = e.cdn.Stats()
	for _, d := range e.backend.AvailableDays() {
		e.stats.KeysByDay[d] = e.backend.KeyCount(d)
	}
	for _, id := range e.routerIDs {
		obs, smp := e.caches[id].Stats()
		e.stats.PacketsObserved += obs
		e.stats.PacketsSampled += smp
	}
	e.stats.Devices = len(e.devices)
	for _, d := range e.devices {
		if d.InstalledAt.Before(cfg.End) {
			e.stats.InstalledByEnd++
		}
	}

	return &Result{
		Records:   records,
		GeoDB:     db,
		Labels:    e.labels,
		Model:     e.model,
		Network:   e.network,
		Backend:   e.backend,
		Curve:     e.curve,
		Attention: e.attention,
		Stats:     e.stats,
	}, nil
}

// runDay simulates one calendar day.
func (e *engine) runDay(day time.Time) error {
	nextDay := day.AddDate(0, 0, 1)

	// Daily address churn for devices and web visitors.
	for i := range e.addrs {
		e.addrs[i] = e.network.MaybeReassign(e.rng, e.addrs[i])
	}
	for _, pool := range e.webPools {
		for i := range pool {
			pool[i] = e.network.MaybeReassign(e.rng, pool[i])
		}
	}

	if err := e.createInstalls(day, nextDay); err != nil {
		return err
	}
	positiveToday := e.assignPositives(day)

	var events []event

	// Device-driven events. Devices plan against the completed days; the
	// running day is covered by hour packages at serve time.
	published := e.backend.AvailableDays()
	today := diagkeys.DayKey(day)
	for len(published) > 0 && published[len(published)-1] >= today {
		published = published[:len(published)-1]
	}
	att := e.attention.At(day.Add(12 * time.Hour))
	for idx, d := range e.devices {
		ctx := device.DayContext{
			Day:                 day,
			Attention:           att,
			PublishedDays:       published,
			PositiveResultToday: positiveToday[idx],
			RNG:                 e.rng,
		}
		devEvents := d.DayEvents(e.cfg.Device, ctx)
		if len(devEvents) > 0 {
			e.label(e.addrs[idx].Addr, LabelApp)
		}
		for _, ev := range devEvents {
			t := ev.Time
			if t.Before(e.cfg.Start) {
				t = e.cfg.Start.Add(time.Duration(e.rng.Intn(3600)) * time.Second)
			}
			events = append(events, event{
				t:          t,
				client:     e.addrs[idx],
				clientHash: uint64(idx)*2654435761 + 17,
				req:        ev.Req,
				uploadKeys: ev.UploadKeys,
				realCount:  ev.RealCount,
			})
		}
	}

	// Population website visits (non-app users), hourly Poisson per
	// district.
	webEvents, err := e.websiteVisits(day)
	if err != nil {
		return err
	}
	events = append(events, webEvents...)

	// Filter-exercising noise.
	noise := e.noiseEvents(events)
	events = append(events, noise...)

	sort.SliceStable(events, func(i, j int) bool { return events[i].t.Before(events[j].t) })

	// Process in order with hourly cache sweeps.
	sweepAt := day.Add(time.Hour)
	for _, ev := range events {
		for !ev.t.Before(sweepAt) {
			e.sweepAll(sweepAt)
			sweepAt = sweepAt.Add(time.Hour)
		}
		if err := e.serve(ev); err != nil {
			return err
		}
	}
	for !nextDay.Before(sweepAt) {
		e.sweepAll(sweepAt)
		sweepAt = sweepAt.Add(time.Hour)
	}
	return nil
}

// createInstalls turns the national download curve into new devices.
func (e *engine) createInstalls(day, nextDay time.Time) error {
	realInstalls := e.curve.InstallsBetween(day, nextDay)
	want := realInstalls/float64(e.cfg.Scale) + e.installCarry
	count := int(want)
	e.installCarry = want - float64(count)
	for i := 0; i < count; i++ {
		distIdx := e.sampler.Draw(e.rng)
		isp := e.network.PickISP(e.rng)
		addr, err := e.network.Attach(isp, e.districts[distIdx].ID)
		if err != nil {
			return err
		}
		at := e.installTime(day, nextDay)
		dev := device.New(len(e.devices), distIdx, at, e.cfg.Device, e.rng)
		e.devices = append(e.devices, dev)
		e.addrs = append(e.addrs, addr)
		e.byDist[distIdx] = append(e.byDist[distIdx], dev.ID)
	}
	return nil
}

// installTime draws a diurnally weighted instant within the day, clamped to
// after the app release.
func (e *engine) installTime(day, nextDay time.Time) time.Time {
	for tries := 0; ; tries++ {
		m := e.rng.Intn(24 * 60)
		if e.rng.Float64()*2.2 > adoption.Diurnal(m/60) && tries < 64 {
			continue
		}
		at := day.Add(time.Duration(m)*time.Minute + time.Duration(e.rng.Intn(60))*time.Second)
		if at.Before(entime.AppRelease) {
			at = entime.AppRelease.Add(time.Duration(e.rng.Intn(7200)) * time.Second)
		}
		if at.Before(nextDay) {
			return at
		}
	}
}

// assignPositives decides which devices receive a positive lab result
// today, honoring the verification-pipeline go-live and ramp.
func (e *engine) assignPositives(day time.Time) map[int]bool {
	out := make(map[int]bool)
	if day.Before(e.cfg.UploadGoLive) {
		return out
	}
	ramp := e.cfg.UploadRampPerDay * (1 + float64(int(day.Sub(e.cfg.UploadGoLive)/(24*time.Hour))))
	if ramp > 1 {
		ramp = 1
	}
	epiDay := e.epi.DayOf(day)
	if epiDay < 0 {
		return out
	}
	// Expected app-user positives per district.
	var lambda float64
	weights := make([]float64, len(e.districts))
	for i, d := range e.districts {
		if len(e.byDist[i]) == 0 {
			continue
		}
		installedShare := float64(len(e.byDist[i])*e.cfg.Scale) / float64(d.Population)
		if installedShare > 1 {
			installedShare = 1
		}
		w := e.epi.Positives(d.ID, epiDay) * installedShare * ramp
		weights[i] = w
		lambda += w
	}
	if lambda <= 0 {
		return out
	}
	n := poisson(e.rng, lambda)
	for k := 0; k < n; k++ {
		x := e.rng.Float64() * lambda
		var acc float64
		for i, w := range weights {
			acc += w
			if x < acc && len(e.byDist[i]) > 0 {
				idx := e.byDist[i][e.rng.Intn(len(e.byDist[i]))]
				out[idx] = true
				break
			}
		}
	}
	return out
}

// websiteVisits generates the general-population website exchanges,
// including the two small local effects the paper reports: a "very slight
// and hardly noticeable" increase in Gütersloh after its June-23 lockdown,
// and a Berlin June-18 signal that is "only visible for users of a single
// ISP" (modelled as extra interest from one regional ISP's customers).
func (e *engine) websiteVisits(day time.Time) ([]event, error) {
	var out []event
	for h := 0; h < 24; h++ {
		at := day.Add(time.Duration(h) * time.Hour)
		att := e.attention.At(at)
		diurnal := adoption.Diurnal(h)
		for i, d := range e.districts {
			rate := e.cfg.WebVisitorsPerHourPer100k * float64(d.Population) / 100000 *
				att * diurnal / float64(e.cfg.Scale)
			rate *= e.localBoost(d, at)
			n := poisson(e.rng, rate)
			for v := 0; v < n; v++ {
				addr, err := e.webClient(i)
				if err != nil {
					return nil, err
				}
				e.label(addr.Addr, LabelWeb)
				out = append(out, event{
					t:          at.Add(time.Duration(e.rng.Intn(3600)) * time.Second),
					client:     addr,
					clientHash: uint64(i)*7919 + uint64(v),
					req:        cdn.Request{Type: cdn.ReqWebsite},
				})
			}
			// Berlin/RegioNet: the single-ISP local effect. The pulse
			// is sized against RegioNet's small Berlin customer base
			// (6% market share), so it roughly doubles that ISP's
			// Berlin traffic while moving the district total by only
			// a few percent — "only visible for users of a single
			// ISP and not in the overall traffic".
			if d.Name == "Berlin" && !at.Before(entime.OutbreakBerlin) {
				decay := math.Exp(-at.Sub(entime.OutbreakBerlin).Hours() / 24 / 2.5)
				extra := rate * 2.0 * decay
				for v := poisson(e.rng, extra); v > 0; v-- {
					addr, err := e.berlinRegioClient()
					if err != nil {
						return nil, err
					}
					e.label(addr.Addr, LabelWeb)
					out = append(out, event{
						t:          at.Add(time.Duration(e.rng.Intn(3600)) * time.Second),
						client:     addr,
						clientHash: 0xBE ^ uint64(v),
						req:        cdn.Request{Type: cdn.ReqWebsite},
					})
				}
			}
		}
	}
	return out, nil
}

// localBoost is the district-level interest multiplier: Gütersloh (and a
// weaker echo in Warendorf) after the June-23 lockdown announcement.
func (e *engine) localBoost(d geo.District, at time.Time) float64 {
	if at.Before(entime.OutbreakGuetersloh) {
		return 1
	}
	switch d.Name {
	case "Gütersloh":
		return 1.45
	case "Warendorf":
		return 1.20
	default:
		return 1
	}
}

// berlinRegioClient returns a Berlin client pinned to the RegioNet ISP so
// the June-18 effect is confined to one provider.
func (e *engine) berlinRegioClient() (netsim.ClientAddr, error) {
	if len(e.berlinRegioPool) < 24 {
		isps := e.network.ISPs()
		regio := isps[len(isps)-1] // RegioNet is last in the default mix
		addr, err := e.network.Attach(regio, "BE-000")
		if err != nil {
			return netsim.ClientAddr{}, err
		}
		e.berlinRegioPool = append(e.berlinRegioPool, addr)
		return addr, nil
	}
	return e.berlinRegioPool[e.rng.Intn(len(e.berlinRegioPool))], nil
}

// webClient returns a (possibly new) website-only client in the district.
func (e *engine) webClient(distIdx int) (netsim.ClientAddr, error) {
	pool := e.webPools[distIdx]
	const maxPool = 48
	if len(pool) < maxPool && (len(pool) == 0 || e.rng.Float64() < 0.35) {
		isp := e.network.PickISP(e.rng)
		addr, err := e.network.Attach(isp, e.districts[distIdx].ID)
		if err != nil {
			return netsim.ClientAddr{}, err
		}
		e.webPools[distIdx] = append(pool, addr)
		return addr, nil
	}
	return pool[e.rng.Intn(len(pool))], nil
}

// noiseEvents derives filter-exercising noise from real events: IPv6
// variants, non-443 ports, QUIC.
func (e *engine) noiseEvents(real []event) []event {
	var out []event
	for _, ev := range real {
		if e.rng.Float64() >= e.cfg.NoiseFraction {
			continue
		}
		n := ev
		n.noise = 1 + e.rng.Intn(3)
		n.t = ev.t.Add(time.Duration(e.rng.Intn(30)) * time.Second)
		out = append(out, n)
	}
	return out
}

// serve processes one event: it performs the API call against the hosting
// stack and feeds the synthesized packets through the client's router.
func (e *engine) serve(ev event) error {
	e.clock.Set(ev.t)

	if ev.noise != 0 {
		e.emitNoise(ev)
		return nil
	}

	resp, err := e.cdn.Serve(ev.t, ev.clientHash, ev.req)
	if err != nil {
		return fmt.Errorf("sim: serving %v: %w", ev.req.Type, err)
	}
	e.stats.Exchanges++
	hourExtra := 0
	switch ev.req.Type {
	case cdn.ReqWebsite:
		e.stats.WebVisits++
		if d := int(ev.t.Sub(e.cfg.Start) / (24 * time.Hour)); d >= 0 && d < len(e.stats.WebVisitsByDay) {
			e.stats.WebVisitsByDay[d]++
		}
	case cdn.ReqIndex:
		e.stats.Syncs++
		// Hour packages: the app follows its index fetch with the
		// current day's published hour packages, resolved here at serve
		// time (hours fill up as the day progresses). All of them ride
		// the index fetch's TLS connection, so only the payload and
		// header bytes add to that one flow — no extra handshakes, no
		// extra flow records, matching the real client's connection
		// reuse.
		if !ev.req.Fake && ev.noise == 0 {
			today := diagkeys.DayKey(ev.t)
			for _, hour := range e.backend.AvailableHours(today) {
				hreq := cdn.Request{Type: cdn.ReqHourPackage, Day: today, Hour: hour}
				hresp, err := e.cdn.Serve(ev.t, ev.clientHash, hreq)
				if err != nil {
					return fmt.Errorf("sim: serving hour package: %w", err)
				}
				e.stats.Exchanges++
				hourExtra += hresp.Bytes - cdn.TLSServerOverhead
			}
		}
	}

	upstreamExtra := 0
	if ev.req.Type == cdn.ReqSubmission && !ev.req.Fake {
		if ev.uploadKeys > 0 {
			payload, err := e.performUpload(ev.uploadKeys)
			if err != nil {
				return err
			}
			upstreamExtra = payload
		} else {
			// A submission event without keys should not happen for
			// real requests; treat as decoy-sized.
			upstreamExtra = 2800
		}
	}

	// Real-count events occur at real-world frequency; their backend
	// side effects (above) always run, but their packets join the scaled
	// trace at 1/Scale so upload flows stay the vanishing traffic share
	// they are in the real capture.
	if ev.realCount && e.rng.Float64() >= 1/float64(e.cfg.Scale) {
		return nil
	}
	e.emitExchange(ev, resp.Edge, resp.Bytes+hourExtra, upstreamExtra)
	return nil
}

// performUpload executes the real verification + submission flow against
// the backend and returns the upload payload size.
func (e *engine) performUpload(keyCount int) (int, error) {
	now := e.clock.Now()
	token := e.backend.RegisterTest(cwaserver.ResultPositive, now.Add(-time.Hour))
	tan, err := e.backend.IssueTAN(token)
	if err != nil {
		return 0, fmt.Errorf("sim: issuing TAN: %w", err)
	}
	keys := make([]exposure.DiagnosisKey, keyCount)
	start := entime.IntervalOf(now).KeyPeriodStart()
	for i := range keys {
		e.rng.Read(keys[i].Key[:])
		keys[i].RollingStart = start.Add(-(keyCount - 1 - i) * entime.EKRollingPeriod)
		keys[i].RollingPeriod = entime.EKRollingPeriod
		keys[i].TransmissionRiskLevel = uint8(1 + e.rng.Intn(8))
	}
	payload, err := cwaserver.EncodeUpload(keys)
	if err != nil {
		return 0, err
	}
	if err := e.backend.SubmitKeys(tan, keys); err != nil {
		return 0, fmt.Errorf("sim: submitting keys: %w", err)
	}
	return len(payload), nil
}

// label records the ground-truth kind of a client address under its
// anonymized identity, for classifier evaluation.
func (e *engine) label(addr netip.Addr, kind byte) {
	e.labels[e.anon.Anonymize(addr)] |= kind
}

// cacheFor returns (creating on demand) the netflow cache of a router.
func (e *engine) cacheFor(routerID string) *netflow.Cache {
	if c, ok := e.caches[routerID]; ok {
		return c
	}
	h := fnv.New64a()
	h.Write([]byte(routerID))
	c, err := netflow.NewCache(routerID, e.cfg.Netflow,
		rand.New(rand.NewSource(e.cfg.Seed^int64(h.Sum64()))))
	if err != nil {
		// Config was validated up front; a failure here is a bug.
		panic("sim: creating flow cache: " + err.Error())
	}
	e.caches[routerID] = c
	e.routerIDs = append(e.routerIDs, routerID)
	sort.Strings(e.routerIDs)
	return c
}

// emitExchange synthesizes the packet exchange of one HTTPS transaction and
// runs it through the client's router in both directions. Only the
// downstream (CDN->user) direction survives the measurement filters; the
// upstream flow exists so the direction filter has something to drop, as in
// the raw capture.
func (e *engine) emitExchange(ev event, edge netip.Addr, respBytes, upstreamExtra int) {
	cache := e.cacheFor(ev.client.RouterID)
	clientPort := uint16(49152 + e.rng.Intn(16000))

	down := e.traffic.DownstreamPackets(respBytes)
	up := e.traffic.UpstreamPackets(respBytes)
	upBytes := e.traffic.UpstreamRequestBytes + upstreamExtra + up*60

	// The exchange spreads over a few hundred milliseconds to ~2 s.
	dur := time.Duration(200+e.rng.Intn(1800)) * time.Millisecond
	e.spread(cache, ev.t, dur, down, respBytes, edge, ev.client.Addr, netflow.PortHTTPS, clientPort)
	e.spread(cache, ev.t, dur, up, upBytes, ev.client.Addr, edge, clientPort, netflow.PortHTTPS)
}

// spread feeds pkts packets of totalBytes through a cache across dur,
// ingesting any records the cache exports along the way (evictions,
// active-timeout splits).
func (e *engine) spread(c *netflow.Cache, start time.Time, dur time.Duration, pkts, totalBytes int, src, dst netip.Addr, sport, dport uint16) {
	if pkts <= 0 {
		return
	}
	per := totalBytes / pkts
	if per < 60 {
		per = 60
	}
	step := dur / time.Duration(pkts)
	for i := 0; i < pkts; i++ {
		recs := c.Observe(netflow.Packet{
			Time:    start.Add(time.Duration(i) * step),
			Src:     src,
			Dst:     dst,
			SrcPort: sport,
			DstPort: dport,
			Proto:   netflow.ProtoTCP,
			Bytes:   per,
		})
		if len(recs) > 0 {
			e.collector.Ingest(recs)
		}
	}
}

// sweepAll expires idle cache entries across all routers.
func (e *engine) sweepAll(now time.Time) {
	for _, id := range e.routerIDs {
		e.collector.Ingest(e.caches[id].Sweep(now))
	}
}

// drainAll flushes every cache at the end of the capture.
func (e *engine) drainAll() {
	for _, id := range e.routerIDs {
		e.collector.Ingest(e.caches[id].Drain())
	}
}

// emitNoise generates the artifacts the measurement filters must drop.
func (e *engine) emitNoise(ev event) {
	cache := e.cacheFor(ev.client.RouterID)
	now := ev.t
	observe := func(p netflow.Packet) {
		if recs := cache.Observe(p); len(recs) > 0 {
			e.collector.Ingest(recs)
		}
	}
	switch ev.noise {
	case 1: // IPv6 HTTPS flow (dropped: IPv4-only study)
		src := v6For(ev.client.Addr)
		dst := netip.MustParseAddr("2001:db8:ffff::10")
		for i := 0; i < 6; i++ {
			observe(netflow.Packet{
				Time: now.Add(time.Duration(i*50) * time.Millisecond),
				Src:  dst, Dst: src,
				SrcPort: 443, DstPort: uint16(50000 + e.rng.Intn(1000)),
				Proto: netflow.ProtoTCP, Bytes: 1200,
			})
		}
	case 2: // plain HTTP to the hosting prefix (dropped: not 443)
		for i := 0; i < 4; i++ {
			observe(netflow.Packet{
				Time: now.Add(time.Duration(i*50) * time.Millisecond),
				Src:  netsim.CDNAddr(0), Dst: ev.client.Addr,
				SrcPort: 80, DstPort: uint16(50000 + e.rng.Intn(1000)),
				Proto: netflow.ProtoTCP, Bytes: 600,
			})
		}
	case 3: // QUIC (dropped: not TCP)
		for i := 0; i < 5; i++ {
			observe(netflow.Packet{
				Time: now.Add(time.Duration(i*40) * time.Millisecond),
				Src:  netsim.CDNAddr(1), Dst: ev.client.Addr,
				SrcPort: 443, DstPort: uint16(50000 + e.rng.Intn(1000)),
				Proto: netflow.ProtoUDP, Bytes: 1250,
			})
		}
	}
}

// v6For derives a deterministic IPv6 counterpart of an IPv4 client.
func v6For(v4 netip.Addr) netip.Addr {
	b := v4.As4()
	return netip.AddrFrom16([16]byte{
		0x20, 0x01, 0x0d, 0xb8, 0, 1, 0, 0, 0, 0, 0, 0, b[0], b[1], b[2], b[3],
	})
}

// poisson draws from Poisson(lambda) via Knuth's method for small lambda
// and a normal approximation above.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
