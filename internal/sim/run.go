package sim

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"runtime"
	"sort"
	"time"

	"cwatrace/internal/adoption"
	"cwatrace/internal/cdn"
	"cwatrace/internal/cryptopan"
	"cwatrace/internal/cwaserver"
	"cwatrace/internal/device"
	"cwatrace/internal/diagkeys"
	"cwatrace/internal/entime"
	"cwatrace/internal/epidemic"
	"cwatrace/internal/exposure"
	"cwatrace/internal/geo"
	"cwatrace/internal/geodb"
	"cwatrace/internal/netflow"
	"cwatrace/internal/netsim"
)

// event is one scheduled network interaction. The generation phase fills
// the identity fields; the serial control plane annotates the response plan
// (edge, respBytes, upstreamExtra); the emission phase turns the plan into
// packets.
type event struct {
	t          time.Time
	client     netsim.ClientAddr
	clientHash uint64
	req        cdn.Request
	uploadKeys int
	// realCount events happen at real-world (unscaled) frequency; their
	// packets are emitted with probability 1/Scale (see device.Event).
	realCount bool
	// noise kinds: 0 none, 1 IPv6 flow, 2 non-443 port, 3 QUIC.
	noise int

	// Response plan, filled by the control plane for non-noise events.
	edge          netip.Addr
	respBytes     int
	upstreamExtra int
}

// engine holds the mutable state of one Run.
type engine struct {
	cfg       Config
	workers   int
	rng       *rand.Rand // serial-phase randomness (installs, positives, uploads)
	model     *geo.Model
	network   *netsim.Network
	clock     *entime.SimClock
	backend   *cwaserver.Backend
	cdn       *cdn.CDN
	epi       *epidemic.Series
	curve     *adoption.Curve
	attention adoption.Attention
	sampler   *adoption.Sampler
	collector *netflow.Collector
	traffic   device.TrafficModel

	districts []geo.District
	devices   []*device.Device
	addrs     []netsim.ClientAddr // by device index

	// shards partition the simulation by district; see parallel.go.
	shards []*shard

	anon   *cryptopan.Anonymizer
	labels map[netip.Addr]byte

	installCarry float64
	stats        Stats
}

// Run executes the simulation and returns the trace and its companions.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &engine{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	e.workers = cfg.Workers
	if e.workers <= 0 {
		e.workers = runtime.NumCPU()
	}
	e.model = geo.Germany()
	var err error
	e.network, err = netsim.New(e.model, netsim.DefaultISPs())
	if err != nil {
		return nil, err
	}
	e.clock = entime.NewSimClock(cfg.Start)
	e.backend, err = cwaserver.New(cwaserver.DefaultConfig(), e.clock)
	if err != nil {
		return nil, err
	}
	e.cdn, err = cdn.New(cfg.CDN, e.backend, cwaserver.DefaultWebsite())
	if err != nil {
		return nil, err
	}
	e.epi, err = epidemic.Run(e.model, cfg.Epidemic)
	if err != nil {
		return nil, err
	}
	e.curve = cfg.Curve
	if e.curve == nil {
		e.curve = adoption.DefaultCurve()
	}
	e.attention = adoption.DefaultAttention()
	if cfg.Attention != nil {
		e.attention = *cfg.Attention
	}
	e.sampler, err = adoption.NewSampler(adoption.DistrictWeights(e.model))
	if err != nil {
		return nil, err
	}
	anon, err := cryptopan.New(cfg.AnonKey)
	if err != nil {
		return nil, err
	}
	e.anon = anon
	e.labels = make(map[netip.Addr]byte)
	e.traffic = device.DefaultTrafficModel()
	e.districts = e.model.Districts()
	e.collector = netflow.NewCollector(anon, netsim.IsCWAServer)
	e.collector.Resize(len(e.districts))
	e.shards = make([]*shard, len(e.districts))
	for i, d := range e.districts {
		e.shards[i] = &shard{
			idx:      i,
			district: d,
			caches:   make(map[string]*netflow.Cache),
			sink:     e.collector.Shard(i),
			labels:   make(map[netip.Addr]byte),
		}
	}
	e.stats.KeysByDay = make(map[string]int)
	e.stats.WebVisitsByDay = make([]int, int(cfg.End.Sub(cfg.Start)/(24*time.Hour)))

	for day := cfg.Start; day.Before(cfg.End); day = day.AddDate(0, 0, 1) {
		if err := e.runDay(day); err != nil {
			return nil, err
		}
	}
	e.drainAll()

	// Merge shard-local ground-truth labels (bitwise OR is commutative, so
	// merge order is irrelevant).
	for _, s := range e.shards {
		for addr, kind := range s.labels {
			e.labels[addr] |= kind
		}
	}

	// Geolocation database over the full prefix inventory.
	var infos []geodb.PrefixInfo
	for p, routerID := range e.network.AllPrefixes() {
		r, _ := e.network.Router(routerID)
		infos = append(infos, geodb.PrefixInfo{
			Prefix: p, RouterID: routerID,
			DistrictID: r.DistrictID, ISPName: r.ISPName,
		})
	}
	db, err := geodb.Build(e.model, infos, cfg.GeoDB, anon)
	if err != nil {
		return nil, err
	}

	records := e.collector.Records()
	e.stats.Records = len(records)
	uploads, fakes := e.backend.Stats()
	e.stats.Uploads = uploads
	e.stats.FakeCalls = fakes
	e.stats.CacheHits, e.stats.CacheMisses = e.cdn.Stats()
	for _, d := range e.backend.AvailableDays() {
		e.stats.KeysByDay[d] = e.backend.KeyCount(d)
	}
	for _, s := range e.shards {
		for _, id := range s.cacheOrder {
			obs, smp := s.caches[id].Stats()
			e.stats.PacketsObserved += obs
			e.stats.PacketsSampled += smp
		}
	}
	e.stats.Devices = len(e.devices)
	for _, d := range e.devices {
		if d.InstalledAt.Before(cfg.End) {
			e.stats.InstalledByEnd++
		}
	}

	return &Result{
		Records:   records,
		GeoDB:     db,
		Labels:    e.labels,
		Model:     e.model,
		Network:   e.network,
		Backend:   e.backend,
		Curve:     e.curve,
		Attention: e.attention,
		Stats:     e.stats,
	}, nil
}

// runDay simulates one calendar day in three phases: serial population
// bookkeeping, parallel per-shard event generation, a serial control plane
// over the merged timeline, and parallel per-shard packet emission.
func (e *engine) runDay(day time.Time) error {
	nextDay := day.AddDate(0, 0, 1)

	// Phase 0 (serial): today's installs and positive lab results. Both
	// consume the engine RNG and mutate global population state.
	firstNew := len(e.devices)
	if err := e.createInstalls(day, nextDay); err != nil {
		return err
	}
	positiveToday := e.assignPositives(day)

	// Devices plan against the completed days; the running day is covered
	// by hour packages at serve time.
	published := e.backend.AvailableDays()
	today := diagkeys.DayKey(day)
	for len(published) > 0 && published[len(published)-1] >= today {
		published = published[:len(published)-1]
	}
	att := e.attention.At(day.Add(12 * time.Hour))
	dayIdx := int(day.Sub(e.cfg.Start) / (24 * time.Hour))

	// Phase 1 (parallel): per-shard churn, device plans, website visitors,
	// noise; each shard sorts its own event list.
	err := runShards(e.workers, len(e.shards), func(i int) error {
		return e.generateShard(e.shards[i], day, dayIdx, att, published, positiveToday, firstNew)
	})
	if err != nil {
		return err
	}

	// Phase 2 (serial): the hosting-side control plane in global time
	// order.
	if err := e.controlPlane(day); err != nil {
		return err
	}

	// Phase 3 (parallel): packet synthesis and hourly cache sweeps.
	return runShards(e.workers, len(e.shards), func(i int) error {
		e.emitShard(e.shards[i], day, nextDay)
		return nil
	})
}

// generateShard builds one shard's day: address churn, device events, the
// district's website visits and the derived noise, sorted by time. All
// randomness comes from the shard's per-day generation stream.
func (e *engine) generateShard(s *shard, day time.Time, dayIdx int, att float64, published []string, positiveToday map[int]bool, firstNew int) error {
	s.genRNG = newShardRand(shardSeed(e.cfg.Seed, dayIdx, s.idx, purposeGenerate))
	s.emitRNG = newShardRand(shardSeed(e.cfg.Seed, dayIdx, s.idx, purposeEmit))
	rng := s.genRNG

	// Daily address churn for pre-existing devices and web visitors. The
	// churn only touches this district's routers, so shards never race.
	for _, id := range s.devIDs {
		if id < firstNew {
			e.addrs[id] = e.network.MaybeReassign(rng, e.addrs[id])
		}
	}
	for i := range s.webPool {
		s.webPool[i] = e.network.MaybeReassign(rng, s.webPool[i])
	}

	events := getEventSlice()

	// Device-driven events.
	for _, id := range s.devIDs {
		d := e.devices[id]
		ctx := device.DayContext{
			Day:                 day,
			Attention:           att,
			PublishedDays:       published,
			PositiveResultToday: positiveToday[id],
			RNG:                 rng,
		}
		devEvents := d.DayEvents(e.cfg.Device, ctx)
		if len(devEvents) > 0 {
			s.label(e.anon, e.addrs[id].Addr, LabelApp)
		}
		for _, ev := range devEvents {
			t := ev.Time
			if t.Before(e.cfg.Start) {
				t = e.cfg.Start.Add(time.Duration(rng.Intn(3600)) * time.Second)
			}
			events = append(events, event{
				t:          t,
				client:     e.addrs[id],
				clientHash: uint64(id)*2654435761 + 17,
				req:        ev.Req,
				uploadKeys: ev.UploadKeys,
				realCount:  ev.RealCount,
			})
		}
	}

	// Population website visits (non-app users), hourly Poisson for this
	// district.
	events, err := e.websiteVisits(s, day, events)
	if err != nil {
		putEventSlice(events)
		return err
	}

	// Filter-exercising noise, derived from the shard's real events.
	events = e.noiseEvents(rng, events)

	sort.SliceStable(events, func(i, j int) bool { return events[i].t.Before(events[j].t) })
	s.events = events
	return nil
}

// controlPlane walks the merged timeline and performs all stateful
// hosting-side work, annotating each event with its response plan.
func (e *engine) controlPlane(day time.Time) error {
	m := newEventMerger(e.shards)
	for ev := m.next(); ev != nil; ev = m.next() {
		if ev.noise != 0 {
			continue // noise never reaches the hosting stack
		}
		if err := e.control(ev); err != nil {
			return err
		}
	}
	return nil
}

// control performs one event's API call against the hosting stack and
// stores the response plan for the emission phase.
func (e *engine) control(ev *event) error {
	e.clock.Set(ev.t)

	resp, err := e.cdn.Serve(ev.t, ev.clientHash, ev.req)
	if err != nil {
		return fmt.Errorf("sim: serving %v: %w", ev.req.Type, err)
	}
	e.stats.Exchanges++
	hourExtra := 0
	switch ev.req.Type {
	case cdn.ReqWebsite:
		e.stats.WebVisits++
		if d := int(ev.t.Sub(e.cfg.Start) / (24 * time.Hour)); d >= 0 && d < len(e.stats.WebVisitsByDay) {
			e.stats.WebVisitsByDay[d]++
		}
	case cdn.ReqIndex:
		e.stats.Syncs++
		// Hour packages: the app follows its index fetch with the
		// current day's published hour packages, resolved here at serve
		// time (hours fill up as the day progresses). All of them ride
		// the index fetch's TLS connection, so only the payload and
		// header bytes add to that one flow — no extra handshakes, no
		// extra flow records, matching the real client's connection
		// reuse.
		if !ev.req.Fake {
			today := diagkeys.DayKey(ev.t)
			for _, hour := range e.backend.AvailableHours(today) {
				hreq := cdn.Request{Type: cdn.ReqHourPackage, Day: today, Hour: hour}
				hresp, err := e.cdn.Serve(ev.t, ev.clientHash, hreq)
				if err != nil {
					return fmt.Errorf("sim: serving hour package: %w", err)
				}
				e.stats.Exchanges++
				hourExtra += hresp.Bytes - cdn.TLSServerOverhead
			}
		}
	}

	upstreamExtra := 0
	if ev.req.Type == cdn.ReqSubmission && !ev.req.Fake {
		if ev.uploadKeys > 0 {
			payload, err := e.performUpload(ev.uploadKeys)
			if err != nil {
				return err
			}
			upstreamExtra = payload
		} else {
			// A submission event without keys should not happen for
			// real requests; treat as decoy-sized.
			upstreamExtra = 2800
		}
	}

	ev.edge = resp.Edge
	ev.respBytes = resp.Bytes + hourExtra
	ev.upstreamExtra = upstreamExtra
	return nil
}

// emitShard replays one shard's events, synthesizing packets through the
// shard's flow caches with hourly sweeps, then recycles the event slice.
func (e *engine) emitShard(s *shard, day, nextDay time.Time) {
	sweepAt := day.Add(time.Hour)
	for i := range s.events {
		ev := &s.events[i]
		for !ev.t.Before(sweepAt) {
			s.sweep(sweepAt)
			sweepAt = sweepAt.Add(time.Hour)
		}
		if ev.noise != 0 {
			e.emitNoise(s, ev)
			continue
		}
		// Real-count events occur at real-world frequency; their backend
		// side effects (control plane) always run, but their packets join
		// the scaled trace at 1/Scale so upload flows stay the vanishing
		// traffic share they are in the real capture.
		if ev.realCount && s.emitRNG.Float64() >= 1/float64(e.cfg.Scale) {
			continue
		}
		e.emitExchange(s, ev)
	}
	for !nextDay.Before(sweepAt) {
		s.sweep(sweepAt)
		sweepAt = sweepAt.Add(time.Hour)
	}
	putEventSlice(s.events)
	s.events = nil
}

// createInstalls turns the national download curve into new devices.
func (e *engine) createInstalls(day, nextDay time.Time) error {
	realInstalls := e.curve.InstallsBetween(day, nextDay)
	want := realInstalls/float64(e.cfg.Scale) + e.installCarry
	count := int(want)
	e.installCarry = want - float64(count)
	for i := 0; i < count; i++ {
		distIdx := e.sampler.Draw(e.rng)
		isp := e.network.PickISP(e.rng)
		addr, err := e.network.Attach(isp, e.districts[distIdx].ID)
		if err != nil {
			return err
		}
		at := e.installTime(day, nextDay)
		dev := device.New(len(e.devices), distIdx, at, e.cfg.Device, e.rng)
		e.devices = append(e.devices, dev)
		e.addrs = append(e.addrs, addr)
		e.shards[distIdx].devIDs = append(e.shards[distIdx].devIDs, dev.ID)
	}
	return nil
}

// installTime draws a diurnally weighted instant within the day, clamped to
// after the app release.
func (e *engine) installTime(day, nextDay time.Time) time.Time {
	for tries := 0; ; tries++ {
		m := e.rng.Intn(24 * 60)
		if e.rng.Float64()*2.2 > adoption.Diurnal(m/60) && tries < 64 {
			continue
		}
		at := day.Add(time.Duration(m)*time.Minute + time.Duration(e.rng.Intn(60))*time.Second)
		if at.Before(entime.AppRelease) {
			at = entime.AppRelease.Add(time.Duration(e.rng.Intn(7200)) * time.Second)
		}
		if at.Before(nextDay) {
			return at
		}
	}
}

// assignPositives decides which devices receive a positive lab result
// today, honoring the verification-pipeline go-live and ramp.
func (e *engine) assignPositives(day time.Time) map[int]bool {
	out := make(map[int]bool)
	if day.Before(e.cfg.UploadGoLive) {
		return out
	}
	ramp := e.cfg.UploadRampPerDay * (1 + float64(int(day.Sub(e.cfg.UploadGoLive)/(24*time.Hour))))
	if ramp > 1 {
		ramp = 1
	}
	epiDay := e.epi.DayOf(day)
	if epiDay < 0 {
		return out
	}
	// Expected app-user positives per district.
	var lambda float64
	weights := make([]float64, len(e.districts))
	for i, d := range e.districts {
		installed := len(e.shards[i].devIDs)
		if installed == 0 {
			continue
		}
		installedShare := float64(installed*e.cfg.Scale) / float64(d.Population)
		if installedShare > 1 {
			installedShare = 1
		}
		w := e.epi.Positives(d.ID, epiDay) * installedShare * ramp
		weights[i] = w
		lambda += w
	}
	if lambda <= 0 {
		return out
	}
	n := poisson(e.rng, lambda)
	for k := 0; k < n; k++ {
		x := e.rng.Float64() * lambda
		var acc float64
		for i, w := range weights {
			acc += w
			if x < acc && len(e.shards[i].devIDs) > 0 {
				ids := e.shards[i].devIDs
				out[ids[e.rng.Intn(len(ids))]] = true
				break
			}
		}
	}
	return out
}

// websiteVisits generates one district's general-population website
// exchanges, including the two small local effects the paper reports: a
// "very slight and hardly noticeable" increase in Gütersloh after its
// June-23 lockdown, and a Berlin June-18 signal that is "only visible for
// users of a single ISP" (modelled as extra interest from one regional
// ISP's customers).
func (e *engine) websiteVisits(s *shard, day time.Time, events []event) ([]event, error) {
	d := s.district
	rng := s.genRNG
	for h := 0; h < 24; h++ {
		at := day.Add(time.Duration(h) * time.Hour)
		att := e.attention.At(at)
		diurnal := adoption.Diurnal(h)
		rate := e.cfg.WebVisitorsPerHourPer100k * float64(d.Population) / 100000 *
			att * diurnal / float64(e.cfg.Scale)
		rate *= e.localBoost(d, at)
		n := poisson(rng, rate)
		for v := 0; v < n; v++ {
			addr, err := e.webClient(s)
			if err != nil {
				return events, err
			}
			s.label(e.anon, addr.Addr, LabelWeb)
			events = append(events, event{
				t:          at.Add(time.Duration(rng.Intn(3600)) * time.Second),
				client:     addr,
				clientHash: uint64(s.idx)*7919 + uint64(v),
				req:        cdn.Request{Type: cdn.ReqWebsite},
			})
		}
		// Berlin/RegioNet: the single-ISP local effect. The pulse
		// is sized against RegioNet's small Berlin customer base
		// (6% market share), so it roughly doubles that ISP's
		// Berlin traffic while moving the district total by only
		// a few percent — "only visible for users of a single
		// ISP and not in the overall traffic".
		if d.Name == "Berlin" && !at.Before(entime.OutbreakBerlin) {
			decay := math.Exp(-at.Sub(entime.OutbreakBerlin).Hours() / 24 / 2.5)
			extra := rate * 2.0 * decay
			for v := poisson(rng, extra); v > 0; v-- {
				addr, err := e.berlinRegioClient(s)
				if err != nil {
					return events, err
				}
				s.label(e.anon, addr.Addr, LabelWeb)
				events = append(events, event{
					t:          at.Add(time.Duration(rng.Intn(3600)) * time.Second),
					client:     addr,
					clientHash: 0xBE ^ uint64(v),
					req:        cdn.Request{Type: cdn.ReqWebsite},
				})
			}
		}
	}
	return events, nil
}

// localBoost is the district-level interest multiplier: Gütersloh (and a
// weaker echo in Warendorf) after the June-23 lockdown announcement.
func (e *engine) localBoost(d geo.District, at time.Time) float64 {
	if at.Before(entime.OutbreakGuetersloh) {
		return 1
	}
	switch d.Name {
	case "Gütersloh":
		return 1.45
	case "Warendorf":
		return 1.20
	default:
		return 1
	}
}

// berlinRegioClient returns a Berlin client pinned to the RegioNet ISP so
// the June-18 effect is confined to one provider. Only the Berlin shard
// calls this, so the pool needs no locking.
func (e *engine) berlinRegioClient(s *shard) (netsim.ClientAddr, error) {
	if len(s.regioPool) < 24 {
		isps := e.network.ISPs()
		regio := isps[len(isps)-1] // RegioNet is last in the default mix
		addr, err := e.network.Attach(regio, "BE-000")
		if err != nil {
			return netsim.ClientAddr{}, err
		}
		s.regioPool = append(s.regioPool, addr)
		return addr, nil
	}
	return s.regioPool[s.genRNG.Intn(len(s.regioPool))], nil
}

// webClient returns a (possibly new) website-only client in the shard's
// district. New clients attach to the district's own routers, so shards
// never mutate each other's network state.
func (e *engine) webClient(s *shard) (netsim.ClientAddr, error) {
	const maxPool = 48
	rng := s.genRNG
	if len(s.webPool) < maxPool && (len(s.webPool) == 0 || rng.Float64() < 0.35) {
		isp := e.network.PickISP(rng)
		addr, err := e.network.Attach(isp, s.district.ID)
		if err != nil {
			return netsim.ClientAddr{}, err
		}
		s.webPool = append(s.webPool, addr)
		return addr, nil
	}
	return s.webPool[rng.Intn(len(s.webPool))], nil
}

// noiseEvents derives filter-exercising noise from real events: IPv6
// variants, non-443 ports, QUIC.
func (e *engine) noiseEvents(rng *rand.Rand, real []event) []event {
	n := len(real)
	for i := 0; i < n; i++ {
		if rng.Float64() >= e.cfg.NoiseFraction {
			continue
		}
		ev := real[i]
		ev.noise = 1 + rng.Intn(3)
		ev.t = ev.t.Add(time.Duration(rng.Intn(30)) * time.Second)
		real = append(real, ev)
	}
	return real
}

// performUpload executes the real verification + submission flow against
// the backend and returns the upload payload size. It runs on the serial
// control plane and consumes the engine RNG.
func (e *engine) performUpload(keyCount int) (int, error) {
	now := e.clock.Now()
	token := e.backend.RegisterTest(cwaserver.ResultPositive, now.Add(-time.Hour))
	tan, err := e.backend.IssueTAN(token)
	if err != nil {
		return 0, fmt.Errorf("sim: issuing TAN: %w", err)
	}
	keys := make([]exposure.DiagnosisKey, keyCount)
	start := entime.IntervalOf(now).KeyPeriodStart()
	for i := range keys {
		e.rng.Read(keys[i].Key[:])
		keys[i].RollingStart = start.Add(-(keyCount - 1 - i) * entime.EKRollingPeriod)
		keys[i].RollingPeriod = entime.EKRollingPeriod
		keys[i].TransmissionRiskLevel = uint8(1 + e.rng.Intn(8))
	}
	payload, err := cwaserver.EncodeUpload(keys)
	if err != nil {
		return 0, err
	}
	if err := e.backend.SubmitKeys(tan, keys); err != nil {
		return 0, fmt.Errorf("sim: submitting keys: %w", err)
	}
	return len(payload), nil
}

// emitExchange synthesizes the packet exchange of one HTTPS transaction and
// runs it through the client's router in both directions. Only the
// downstream (CDN->user) direction survives the measurement filters; the
// upstream flow exists so the direction filter has something to drop, as in
// the raw capture.
func (e *engine) emitExchange(s *shard, ev *event) {
	cache := s.cacheFor(ev.client.RouterID, e.cfg.Netflow, e.cfg.Seed)
	rng := s.emitRNG
	clientPort := uint16(49152 + rng.Intn(16000))

	down := e.traffic.DownstreamPackets(ev.respBytes)
	up := e.traffic.UpstreamPackets(ev.respBytes)
	upBytes := e.traffic.UpstreamRequestBytes + ev.upstreamExtra + up*60

	// The exchange spreads over a few hundred milliseconds to ~2 s.
	dur := time.Duration(200+rng.Intn(1800)) * time.Millisecond
	e.spread(s, cache, ev.t, dur, down, ev.respBytes, ev.edge, ev.client.Addr, netflow.PortHTTPS, clientPort)
	e.spread(s, cache, ev.t, dur, up, upBytes, ev.client.Addr, ev.edge, clientPort, netflow.PortHTTPS)
}

// spread feeds pkts packets of totalBytes through a cache across dur,
// ingesting any records the cache exports along the way (evictions,
// active-timeout splits).
func (e *engine) spread(s *shard, c *netflow.Cache, start time.Time, dur time.Duration, pkts, totalBytes int, src, dst netip.Addr, sport, dport uint16) {
	if pkts <= 0 {
		return
	}
	per := totalBytes / pkts
	if per < 60 {
		per = 60
	}
	step := dur / time.Duration(pkts)
	for i := 0; i < pkts; i++ {
		recs := c.Observe(netflow.Packet{
			Time:    start.Add(time.Duration(i) * step),
			Src:     src,
			Dst:     dst,
			SrcPort: sport,
			DstPort: dport,
			Proto:   netflow.ProtoTCP,
			Bytes:   per,
		})
		if len(recs) > 0 {
			s.sink.Ingest(recs)
			netflow.RecycleBatch(recs)
		}
	}
}

// drainAll flushes every shard's caches at the end of the capture, in shard
// order so the collector's merge stays deterministic.
func (e *engine) drainAll() {
	for _, s := range e.shards {
		s.drain()
	}
}

// emitNoise generates the artifacts the measurement filters must drop.
func (e *engine) emitNoise(s *shard, ev *event) {
	cache := s.cacheFor(ev.client.RouterID, e.cfg.Netflow, e.cfg.Seed)
	rng := s.emitRNG
	now := ev.t
	observe := func(p netflow.Packet) {
		if recs := cache.Observe(p); len(recs) > 0 {
			s.sink.Ingest(recs)
			netflow.RecycleBatch(recs)
		}
	}
	switch ev.noise {
	case 1: // IPv6 HTTPS flow (dropped: IPv4-only study)
		src := v6For(ev.client.Addr)
		dst := netip.MustParseAddr("2001:db8:ffff::10")
		for i := 0; i < 6; i++ {
			observe(netflow.Packet{
				Time: now.Add(time.Duration(i*50) * time.Millisecond),
				Src:  dst, Dst: src,
				SrcPort: 443, DstPort: uint16(50000 + rng.Intn(1000)),
				Proto: netflow.ProtoTCP, Bytes: 1200,
			})
		}
	case 2: // plain HTTP to the hosting prefix (dropped: not 443)
		for i := 0; i < 4; i++ {
			observe(netflow.Packet{
				Time: now.Add(time.Duration(i*50) * time.Millisecond),
				Src:  netsim.CDNAddr(0), Dst: ev.client.Addr,
				SrcPort: 80, DstPort: uint16(50000 + rng.Intn(1000)),
				Proto: netflow.ProtoTCP, Bytes: 600,
			})
		}
	case 3: // QUIC (dropped: not TCP)
		for i := 0; i < 5; i++ {
			observe(netflow.Packet{
				Time: now.Add(time.Duration(i*40) * time.Millisecond),
				Src:  netsim.CDNAddr(1), Dst: ev.client.Addr,
				SrcPort: 443, DstPort: uint16(50000 + rng.Intn(1000)),
				Proto: netflow.ProtoUDP, Bytes: 1250,
			})
		}
	}
}

// v6For derives a deterministic IPv6 counterpart of an IPv4 client.
func v6For(v4 netip.Addr) netip.Addr {
	b := v4.As4()
	return netip.AddrFrom16([16]byte{
		0x20, 0x01, 0x0d, 0xb8, 0, 1, 0, 0, 0, 0, 0, 0, b[0], b[1], b[2], b[3],
	})
}

// poisson draws from Poisson(lambda) via Knuth's method for small lambda
// and a normal approximation above.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
