package sim

import (
	"testing"
	"time"

	"cwatrace/internal/cdn"
	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
	"cwatrace/internal/netsim"
)

// quickConfig shrinks the simulation for fast unit tests: coarse scale,
// three days around the release.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 20000
	cfg.Start = entime.StudyStart
	cfg.End = entime.StudyStart.AddDate(0, 0, 3)
	return cfg
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero scale", func(c *Config) { c.Scale = 0 }},
		{"inverted window", func(c *Config) { c.End = c.Start.Add(-time.Hour) }},
		{"bad netflow", func(c *Config) { c.Netflow.SampleRate = 0 }},
		{"bad device", func(c *Config) { c.Device.UploadConsent = 2 }},
		{"bad ramp", func(c *Config) { c.UploadRampPerDay = 0 }},
		{"negative web rate", func(c *Config) { c.WebVisitorsPerHourPer100k = -1 }},
		{"bad noise", func(c *Config) { c.NoiseFraction = 2 }},
		{"short anon key", func(c *Config) { c.AnonKey = []byte("short") }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestQuickRunProducesTraffic(t *testing.T) {
	res, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Devices == 0 {
		t.Fatal("no devices created")
	}
	if res.Stats.Records == 0 {
		t.Fatal("no flow records")
	}
	if res.Stats.Exchanges == 0 {
		t.Fatal("no exchanges")
	}
	if res.Stats.WebVisits == 0 {
		t.Fatal("no website visits")
	}
	if len(res.Records) != res.Stats.Records {
		t.Fatalf("record count mismatch: %d vs %d", len(res.Records), res.Stats.Records)
	}
}

func TestReleaseDayJump(t *testing.T) {
	res, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// June 15 (pre-release) must have far fewer downstream flows than
	// June 16 (release day): the paper reports a 7.5x jump.
	perDay := make(map[int]int)
	for _, r := range res.Records {
		if !netsim.IsCWAServer(r.Src) || r.SrcPort != netflow.PortHTTPS {
			continue
		}
		if d := entime.DayBucket(r.First); d >= 0 {
			perDay[d]++
		}
	}
	if perDay[1] < perDay[0]*2 {
		t.Fatalf("release day jump missing: day0=%d day1=%d", perDay[0], perDay[1])
	}
}

func TestRecordsTimeOrderedAndInWindow(t *testing.T) {
	cfg := quickConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Time
	for i, r := range res.Records {
		if r.First.Before(prev) {
			t.Fatalf("record %d out of order", i)
		}
		prev = r.First
		if r.First.Before(cfg.Start.Add(-time.Hour)) || r.First.After(cfg.End.Add(time.Hour)) {
			t.Fatalf("record %d outside window: %s", i, r.First)
		}
		if r.Exporter == "" {
			t.Fatalf("record %d missing exporter", i)
		}
	}
}

func TestClientAddressesAnonymized(t *testing.T) {
	res, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Client space is allocated from 20.0.0.0..24.x /8s; anonymized
	// addresses should (overwhelmingly) not sit in those ranges while
	// server addresses must be intact.
	clientInPlain := 0
	total := 0
	for _, r := range res.Records {
		if !netsim.IsCWAServer(r.Src) || !r.Dst.Is4() {
			continue
		}
		total++
		b := r.Dst.As4()
		if b[0] >= 20 && b[0] < 20+5 {
			clientInPlain++
		}
	}
	if total == 0 {
		t.Fatal("no downstream records")
	}
	if clientInPlain > total/50 {
		t.Fatalf("%d/%d client addresses look un-anonymized", clientInPlain, total)
	}
}

func TestGeoDBCoversClients(t *testing.T) {
	res, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	located, total := 0, 0
	for _, r := range res.Records {
		if !netsim.IsCWAServer(r.Src) || !r.Dst.Is4() || r.SrcPort != netflow.PortHTTPS {
			continue
		}
		if r.Proto != netflow.ProtoTCP {
			continue
		}
		total++
		if _, ok := res.GeoDB.Locate(r.Dst); ok {
			located++
		}
	}
	if total == 0 {
		t.Fatal("no downstream records")
	}
	if located < total*95/100 {
		t.Fatalf("geolocation coverage %d/%d too low", located, total)
	}
}

func TestNoUploadsBeforeGoLive(t *testing.T) {
	cfg := quickConfig() // window ends June 18, go-live June 23
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Uploads != 0 {
		t.Fatalf("uploads before go-live: %d", res.Stats.Uploads)
	}
	if len(res.Stats.KeysByDay) != 0 {
		t.Fatalf("keys published before go-live: %v", res.Stats.KeysByDay)
	}
}

func TestDeterministicRun(t *testing.T) {
	cfg := quickConfig()
	cfg.End = cfg.Start.AddDate(0, 0, 2)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Records != b.Stats.Records || a.Stats.Exchanges != b.Stats.Exchanges ||
		a.Stats.Devices != b.Stats.Devices {
		t.Fatalf("nondeterministic run: %+v vs %+v", a.Stats, b.Stats)
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs between identical runs", i)
		}
	}
}

func TestNoiseFlowsPresent(t *testing.T) {
	res, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	var v6, udp, port80 int
	for _, r := range res.Records {
		if r.Src.Is6() || r.Dst.Is6() {
			v6++
		}
		if r.Proto == netflow.ProtoUDP {
			udp++
		}
		if r.SrcPort == 80 {
			port80++
		}
	}
	if v6 == 0 || udp == 0 || port80 == 0 {
		t.Fatalf("noise missing: v6=%d udp=%d port80=%d", v6, udp, port80)
	}
}

func TestUploadsAfterGoLive(t *testing.T) {
	cfg := quickConfig()
	cfg.Scale = 5000
	// Window extends past June 23.
	cfg.End = entime.StudyEnd
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Uploads == 0 {
		t.Fatal("no uploads after go-live in full window")
	}
	for day := range res.Stats.KeysByDay {
		if day < "2020-06-23" {
			t.Fatalf("keys published on %s, before go-live", day)
		}
	}
	// Submission traffic exists.
	subs := 0
	for _, r := range res.Records {
		if netsim.CWAServerPrefixes[1].Contains(r.Src) {
			subs++
		}
	}
	if subs == 0 {
		t.Fatal("no submission-prefix flows")
	}
	_ = cdn.ReqSubmission
}
