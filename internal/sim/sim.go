// Package sim orchestrates the full reproduction pipeline: the geography,
// the epidemic, app adoption, per-device traffic, the backend + CDN, the
// access network and the Netflow vantage point. One Run produces the
// anonymized flow trace the measurement pipeline (internal/core) analyzes —
// the synthetic stand-in for the data set the paper captured at the CWA
// hosting infrastructure.
//
// Scaling: one simulated device represents Config.Scale real phones. The
// flow *shape* (diurnal pattern, day-one jump, geographic spread) is scale
// free; absolute counts are compared to the paper after multiplying by
// Scale (documented in EXPERIMENTS.md).
package sim

import (
	"fmt"
	"net/netip"
	"time"

	"cwatrace/internal/adoption"
	"cwatrace/internal/cdn"
	"cwatrace/internal/cwaserver"
	"cwatrace/internal/device"
	"cwatrace/internal/entime"
	"cwatrace/internal/epidemic"
	"cwatrace/internal/geo"
	"cwatrace/internal/geodb"
	"cwatrace/internal/netflow"
	"cwatrace/internal/netsim"
)

// Config is the single knob hub of the simulation.
type Config struct {
	// Scale is how many real users one simulated device represents.
	Scale int
	// Seed drives every stochastic choice.
	Seed int64
	// Workers bounds the worker pool of the sharded engine: event
	// generation and packet synthesis run on up to Workers goroutines
	// (0 = runtime.NumCPU(), 1 = fully serial). Results are byte-identical
	// for a fixed Seed at any worker count: all randomness is drawn from
	// per-(day, district) streams or the serial control plane, never from
	// scheduling order.
	Workers int
	// Start and End bound the capture window (defaults: the study
	// window, June 15-26).
	Start, End time.Time

	// Netflow is the router monitoring configuration.
	Netflow netflow.Config
	// Device holds the phone behaviour parameters.
	Device device.Params
	// Epidemic configures the background epidemic and outbreaks.
	Epidemic epidemic.Config
	// GeoDB configures geolocation database construction.
	GeoDB geodb.Config
	// CDN configures the edge layer.
	CDN cdn.Config

	// Curve optionally overrides the national download curve
	// (nil = adoption.DefaultCurve()). The scenario layer uses it for
	// slow-adoption and release-shift counterfactuals.
	Curve *adoption.Curve
	// Attention optionally overrides the media-attention signal
	// (nil = adoption.DefaultAttention()).
	Attention *adoption.Attention

	// UploadGoLive is when the lab-to-app verification pipeline starts
	// delivering positive results; the paper observes the first diagnosis
	// keys on June 23.
	UploadGoLive time.Time
	// UploadRampPerDay grows upload throughput after go-live (fraction
	// of eligible positives per day, capped at 1).
	UploadRampPerDay float64

	// WebVisitorsPerHourPer100k is the base rate of website visits from
	// the general (non-app) population at attention level 1.
	WebVisitorsPerHourPer100k float64

	// NoiseFraction adds non-CWA artifacts the paper's filters must
	// remove: IPv6 flows, non-443 ports, and unrelated destinations, as
	// a fraction of legitimate exchanges.
	NoiseFraction float64

	// AnonKey is the 32-byte Crypto-PAn key; client addresses in the
	// output are anonymized under it.
	AnonKey []byte
}

// DefaultConfig returns the calibrated default simulation.
func DefaultConfig() Config {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i*13 + 7)
	}
	return Config{
		Scale: 2000,
		Seed:  20200616,
		Start: entime.StudyStart,
		End:   entime.StudyEnd,
		Netflow: netflow.Config{
			SampleRate:      4,
			ActiveTimeout:   60 * time.Second,
			InactiveTimeout: 15 * time.Second,
			MaxEntries:      65536,
		},
		Device:                    device.DefaultParams(),
		Epidemic:                  epidemic.DefaultConfig(),
		GeoDB:                     geodb.DefaultConfig(),
		CDN:                       cdn.DefaultConfig(),
		UploadGoLive:              entime.FirstKeysObserved,
		UploadRampPerDay:          0.34,
		WebVisitorsPerHourPer100k: 9,
		NoiseFraction:             0.04,
		AnonKey:                   key,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Scale < 1 {
		return fmt.Errorf("sim: Scale must be >= 1")
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: Workers must be >= 0 (0 = all CPUs)")
	}
	if !c.End.After(c.Start) {
		return fmt.Errorf("sim: End must be after Start")
	}
	if err := c.Netflow.Validate(); err != nil {
		return err
	}
	if err := c.Device.Validate(); err != nil {
		return err
	}
	if err := c.Epidemic.Validate(); err != nil {
		return err
	}
	if c.UploadRampPerDay <= 0 || c.UploadRampPerDay > 1 {
		return fmt.Errorf("sim: UploadRampPerDay %f out of (0,1]", c.UploadRampPerDay)
	}
	if c.WebVisitorsPerHourPer100k < 0 {
		return fmt.Errorf("sim: negative web visitor rate")
	}
	if c.NoiseFraction < 0 || c.NoiseFraction > 1 {
		return fmt.Errorf("sim: NoiseFraction out of range")
	}
	if len(c.AnonKey) != 32 {
		return fmt.Errorf("sim: AnonKey must be 32 bytes")
	}
	return nil
}

// Stats summarizes a run.
type Stats struct {
	// Devices is the number of simulated phones created.
	Devices int
	// InstalledByEnd is devices installed before End.
	InstalledByEnd int
	// Uploads is real diagnosis-key submissions performed.
	Uploads int
	// FakeCalls is decoy API call sequences served.
	FakeCalls int
	// WebVisits counts website exchanges (device- and population-driven).
	WebVisits int
	// WebVisitsByDay buckets website exchanges per study day; the
	// news-correlation experiment uses it as ground truth.
	WebVisitsByDay []int
	// Syncs counts daily key-download rounds (index fetches) devices
	// performed; the background-bug ablation reads sync coverage off it.
	Syncs int
	// Exchanges counts all HTTPS request/response pairs.
	Exchanges int
	// PacketsObserved/PacketsSampled aggregate router counters.
	PacketsObserved uint64
	PacketsSampled  uint64
	// Records is the number of exported flow records.
	Records int
	// KeysByDay is the backend's real (unpadded) key count per DayKey.
	KeysByDay map[string]int
	// CacheHits/CacheMisses are CDN edge cache counters.
	CacheHits   uint64
	CacheMisses uint64
}

// Client-kind label bits for ground-truth evaluation of traffic
// classification (the paper's future-work idea of identifying app clients
// by their periodic request pattern).
const (
	// LabelApp marks an anonymized address used by an app-running device.
	LabelApp byte = 1 << iota
	// LabelWeb marks an anonymized address used by a website-only client.
	LabelWeb
)

// Result bundles everything a Run produces.
type Result struct {
	// Records is the anonymized flow trace, time ordered.
	Records []netflow.Record
	// GeoDB locates anonymized client prefixes.
	GeoDB *geodb.DB
	// Labels is the ground truth for classifier evaluation: anonymized
	// client address -> kind bitmask (LabelApp | LabelWeb). An address
	// can carry both bits when churn hands it to different client kinds.
	Labels map[netip.Addr]byte
	// Model is the geography used.
	Model *geo.Model
	// Network is the access network (router inventory).
	Network *netsim.Network
	// Backend allows inspecting published packages after the run.
	Backend *cwaserver.Backend
	// Curve is the national download curve used for the Figure 2 overlay.
	Curve *adoption.Curve
	// Attention is the media-attention signal used.
	Attention adoption.Attention
	// Stats are run counters.
	Stats Stats
}
