package sim

import (
	"testing"

	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
	"cwatrace/internal/netsim"
)

func TestGroundTruthLabelsCoverTrafficClients(t *testing.T) {
	res, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) == 0 {
		t.Fatal("no ground-truth labels")
	}
	var app, web int
	for _, kind := range res.Labels {
		if kind&LabelApp != 0 {
			app++
		}
		if kind&LabelWeb != 0 {
			web++
		}
	}
	if app == 0 || web == 0 {
		t.Fatalf("labels one-sided: app %d, web %d", app, web)
	}
	// Every downstream client in the trace should carry a label: clients
	// only exist because some generator (device or web pool) created
	// them, and both label at event time.
	labelled, total := 0, 0
	for _, r := range res.Records {
		if !netsim.IsCWAServer(r.Src) || !r.Dst.Is4() || r.Proto != netflow.ProtoTCP {
			continue
		}
		total++
		if _, ok := res.Labels[r.Dst]; ok {
			labelled++
		}
	}
	if total == 0 {
		t.Fatal("no downstream records")
	}
	if labelled < total*95/100 {
		t.Fatalf("only %d/%d downstream clients labelled", labelled, total)
	}
}

func TestWebVisitsByDayAccounting(t *testing.T) {
	cfg := quickConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	days := int(cfg.End.Sub(cfg.Start).Hours() / 24)
	if len(res.Stats.WebVisitsByDay) != days {
		t.Fatalf("WebVisitsByDay length %d, want %d", len(res.Stats.WebVisitsByDay), days)
	}
	var sum int
	for _, n := range res.Stats.WebVisitsByDay {
		if n < 0 {
			t.Fatal("negative day count")
		}
		sum += n
	}
	if sum != res.Stats.WebVisits {
		t.Fatalf("daily web visits sum %d != total %d", sum, res.Stats.WebVisits)
	}
	// Release day (index 1) must out-visit the pre-release day.
	if res.Stats.WebVisitsByDay[1] <= res.Stats.WebVisitsByDay[0] {
		t.Fatalf("release day visits %d <= pre-release %d",
			res.Stats.WebVisitsByDay[1], res.Stats.WebVisitsByDay[0])
	}
}

func TestHourPackagesServedAfterFirstKeys(t *testing.T) {
	cfg := quickConfig()
	cfg.Scale = 5000
	cfg.End = entime.StudyEnd // through June 25, past the upload go-live
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Uploads == 0 {
		t.Fatal("no uploads in the full window")
	}
	// With uploads present, hour packages exist for the submission days.
	sawHours := false
	for _, day := range res.Backend.AvailableDays() {
		if len(res.Backend.AvailableHours(day)) > 0 {
			sawHours = true
		}
	}
	if !sawHours {
		t.Fatal("keys exist but no hourly packages")
	}
}
