package sim

import (
	"hash/fnv"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"cwatrace/internal/cryptopan"
	"cwatrace/internal/geo"
	"cwatrace/internal/netflow"
	"cwatrace/internal/netsim"
)

// This file holds the concurrency machinery of the sharded engine. The
// simulation is partitioned into one shard per district: every client (app
// device or website visitor) is homed in exactly one district, every router
// serves exactly one district, so a shard owns its devices, its web-visitor
// pools, its routers' flow caches and one collector lane outright — no
// locks on the hot path.
//
// Each day runs in three phases:
//
//  1. generate (parallel): each shard rolls address churn, asks its devices
//     for their day plan, draws the district's website visitors and the
//     filter-exercising noise, and sorts its own event list. All randomness
//     comes from a per-(day, shard) RNG stream derived from Config.Seed, so
//     the outcome does not depend on worker count or scheduling.
//  2. control (serial): a k-way merge walks the shard event lists in global
//     time order and performs the stateful hosting-side work — CDN serve,
//     backend uploads, hour-package resolution, run counters — annotating
//     each event with its response plan. This is the cheap part of the day;
//     it stays serial because backend and CDN state is genuinely global.
//  3. emit (parallel): each shard replays its own (already sorted) events,
//     synthesizing packets through its routers' flow caches with hourly
//     sweeps, and ingests exported records into its collector lane using a
//     per-(day, shard) emission RNG.
//
// Because the shard count is fixed by the geography (not by Workers) and
// every random draw is tied to a shard stream or the serial control plane,
// a run is byte-identical for a fixed seed at any worker count.

// shard is one district's slice of the simulation.
type shard struct {
	idx      int
	district geo.District

	// devIDs are the devices homed in this district, in creation order.
	devIDs []int
	// webPool are the district's website-only visitors.
	webPool []netsim.ClientAddr
	// regioPool is the Berlin/RegioNet single-ISP pool (Berlin shard only).
	regioPool []netsim.ClientAddr

	// caches are the flow caches of this district's routers, lazily
	// created; cacheOrder keeps their deterministic creation order for
	// sweeps and drains.
	caches     map[string]*netflow.Cache
	cacheOrder []string

	// sink is this shard's lock-free collector lane.
	sink *netflow.CollectorShard
	// labels is the shard-local ground-truth map, merged after the run.
	labels map[netip.Addr]byte

	// events is the day's event list, reused across days via the engine's
	// pool.
	events []event

	// genRNG and emitRNG are the per-day deterministic streams.
	genRNG  *rand.Rand
	emitRNG *rand.Rand
}

// Purpose tags separate the two RNG streams of a (day, shard) pair.
const (
	purposeGenerate uint64 = 0x67656E65 // "gene"
	purposeEmit     uint64 = 0x656D6974 // "emit"
)

// shardSeed derives the seed of one shard stream from the run seed, the day
// index and the shard index via a splitmix64-style mix, so streams are
// statistically independent and stable across worker counts.
func shardSeed(seed int64, day, shard int, purpose uint64) int64 {
	z := uint64(seed)
	z ^= (uint64(day) + 1) * 0x9E3779B97F4A7C15
	z ^= (uint64(shard) + 1) * 0xC2B2AE3D27D4EB4F
	z ^= purpose * 0x165667B19E3779F9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// splitmix64Source is a rand.Source64 with O(1) seeding. The stock
// math/rand source seeds a 607-word lagged-Fibonacci table; profiling
// showed that re-seeding two streams per (day, district) spent ~26% of the
// whole run inside math/rand.seedrand. Splitmix64 passes BigCrush, seeds in
// one word, and keeps every shard stream fully deterministic.
type splitmix64Source struct{ state uint64 }

func (s *splitmix64Source) Seed(seed int64) { s.state = uint64(seed) }

func (s *splitmix64Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (s *splitmix64Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// newShardRand returns a *rand.Rand over a fresh splitmix64 stream.
func newShardRand(seed int64) *rand.Rand {
	return rand.New(&splitmix64Source{state: uint64(seed)})
}

// runShards executes fn(0..n-1) on a bounded worker pool. With one worker
// (or one shard) it degrades to a plain loop with zero goroutine overhead.
// The first error wins; remaining shards still run to completion so shard
// state is never left half-built.
func runShards(workers, n int, fn func(int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// eventMerger is a k-way merge over the shards' per-day event lists, each
// already sorted by time. It yields events in global (time, shard) order —
// the deterministic total order the serial control plane walks. A binary
// heap over shard heads replaces the seed engine's global sort of one giant
// slice: merging is O(total · log shards) with no extra allocation.
type eventMerger struct {
	shards []*shard
	pos    []int
	heap   []int // shard indices, ordered by their head event
}

func newEventMerger(shards []*shard) *eventMerger {
	m := &eventMerger{shards: shards, pos: make([]int, len(shards))}
	for i, s := range shards {
		if len(s.events) > 0 {
			m.heap = append(m.heap, i)
			m.siftUp(len(m.heap) - 1)
		}
	}
	return m
}

func (m *eventMerger) head(i int) time.Time {
	return m.shards[i].events[m.pos[i]].t
}

// less orders shard heads by event time, breaking ties on shard index so
// the merge is a strict total order.
func (m *eventMerger) less(a, b int) bool {
	ta, tb := m.head(a), m.head(b)
	if !ta.Equal(tb) {
		return ta.Before(tb)
	}
	return a < b
}

func (m *eventMerger) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !m.less(m.heap[i], m.heap[p]) {
			return
		}
		m.heap[i], m.heap[p] = m.heap[p], m.heap[i]
		i = p
	}
}

func (m *eventMerger) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(m.heap) && m.less(m.heap[l], m.heap[min]) {
			min = l
		}
		if r < len(m.heap) && m.less(m.heap[r], m.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		m.heap[i], m.heap[min] = m.heap[min], m.heap[i]
		i = min
	}
}

// next returns a pointer to the globally next event, or nil when all shard
// lists are exhausted. The pointer aliases the shard's slice so the control
// plane can annotate the event in place.
func (m *eventMerger) next() *event {
	if len(m.heap) == 0 {
		return nil
	}
	i := m.heap[0]
	s := m.shards[i]
	ev := &s.events[m.pos[i]]
	m.pos[i]++
	if m.pos[i] < len(s.events) {
		m.siftDown(0)
	} else {
		last := len(m.heap) - 1
		m.heap[0] = m.heap[last]
		m.heap = m.heap[:last]
		m.siftDown(0)
	}
	return ev
}

// eventPool recycles per-shard event slices across days, killing the
// per-day reallocation churn of the seed engine's one giant slice.
var eventPool = sync.Pool{New: func() any { return new([]event) }}

func getEventSlice() []event {
	return (*eventPool.Get().(*[]event))[:0]
}

func putEventSlice(evs []event) {
	evs = evs[:0]
	eventPool.Put(&evs)
}

// cacheFor returns (creating on demand) the flow cache of one of the
// shard's routers. Creation order is recorded so sweeps and drains walk
// caches deterministically.
func (s *shard) cacheFor(routerID string, cfg netflow.Config, seed int64) *netflow.Cache {
	if c, ok := s.caches[routerID]; ok {
		return c
	}
	h := fnv.New64a()
	h.Write([]byte(routerID))
	c, err := netflow.NewCache(routerID, cfg, newShardRand(seed^int64(h.Sum64())))
	if err != nil {
		// Config was validated up front; a failure here is a bug.
		panic("sim: creating flow cache: " + err.Error())
	}
	s.caches[routerID] = c
	s.cacheOrder = append(s.cacheOrder, routerID)
	return c
}

// sweep expires idle entries across the shard's caches as of now.
func (s *shard) sweep(now time.Time) {
	for _, id := range s.cacheOrder {
		if recs := s.caches[id].Sweep(now); len(recs) > 0 {
			s.sink.Ingest(recs)
			netflow.RecycleBatch(recs)
		}
	}
}

// drain flushes the shard's caches at the end of the capture.
func (s *shard) drain() {
	for _, id := range s.cacheOrder {
		if recs := s.caches[id].Drain(); len(recs) > 0 {
			s.sink.Ingest(recs)
			netflow.RecycleBatch(recs)
		}
	}
}

// label records the ground-truth kind of a client address under its
// anonymized identity, shard-locally. The anonymizer is stateless after
// construction, so concurrent shard use is safe.
func (s *shard) label(anon *cryptopan.Anonymizer, addr netip.Addr, kind byte) {
	s.labels[anon.Anonymize(addr)] |= kind
}
