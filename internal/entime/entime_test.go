package entime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestIntervalOfEpoch(t *testing.T) {
	if got := IntervalOf(time.Unix(0, 0)); got != 0 {
		t.Fatalf("IntervalOf(epoch) = %d, want 0", got)
	}
	if got := IntervalOf(time.Unix(600, 0)); got != 1 {
		t.Fatalf("IntervalOf(epoch+10m) = %d, want 1", got)
	}
	if got := IntervalOf(time.Unix(599, 0)); got != 0 {
		t.Fatalf("IntervalOf(epoch+9m59s) = %d, want 0", got)
	}
}

func TestIntervalRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		i := Interval(n)
		return IntervalOf(i.Time()) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyPeriodStart(t *testing.T) {
	f := func(n uint32) bool {
		start := Interval(n).KeyPeriodStart()
		return uint32(start)%EKRollingPeriod == 0 && start <= Interval(n) &&
			Interval(n)-start < EKRollingPeriod
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStudyWindow(t *testing.T) {
	if got := StudyDays(); got != 11 {
		t.Fatalf("StudyDays() = %d, want 11 (June 15-25 inclusive)", got)
	}
	if got := StudyHours(); got != 264 {
		t.Fatalf("StudyHours() = %d, want 264", got)
	}
	if !AppRelease.After(StudyStart) || !AppRelease.Before(StudyEnd) {
		t.Fatal("AppRelease must fall inside the study window")
	}
	if !FirstKeysObserved.After(AppRelease) {
		t.Fatal("first diagnosis keys must appear after the release")
	}
}

func TestHourBucket(t *testing.T) {
	cases := []struct {
		t    time.Time
		want int
	}{
		{StudyStart, 0},
		{StudyStart.Add(59 * time.Minute), 0},
		{StudyStart.Add(time.Hour), 1},
		{StudyEnd.Add(-time.Second), StudyHours() - 1},
		{StudyEnd, -1},
		{StudyStart.Add(-time.Second), -1},
	}
	for _, c := range cases {
		if got := HourBucket(c.t); got != c.want {
			t.Errorf("HourBucket(%s) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestDayBucket(t *testing.T) {
	if got := DayBucket(AppRelease); got != 1 {
		t.Fatalf("DayBucket(release) = %d, want 1 (June 16)", got)
	}
	if got := DayBucket(OutbreakGuetersloh); got != 8 {
		t.Fatalf("DayBucket(Guetersloh) = %d, want 8 (June 23)", got)
	}
	if lbl := DayLabel(1); lbl != "Jun 16" {
		t.Fatalf("DayLabel(1) = %q, want Jun 16", lbl)
	}
}

func TestBucketTimeInverse(t *testing.T) {
	for b := 0; b < StudyHours(); b++ {
		if got := HourBucket(BucketTime(b)); got != b {
			t.Fatalf("HourBucket(BucketTime(%d)) = %d", b, got)
		}
	}
}

func TestSimClock(t *testing.T) {
	c := NewSimClock(StudyStart)
	if !c.Now().Equal(StudyStart) {
		t.Fatal("new clock not at start")
	}
	c.Advance(90 * time.Minute)
	if want := StudyStart.Add(90 * time.Minute); !c.Now().Equal(want) {
		t.Fatalf("Now() = %s, want %s", c.Now(), want)
	}
	c.Set(StudyEnd)
	if !c.Now().Equal(StudyEnd) {
		t.Fatal("Set did not reposition clock")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) must panic")
		}
	}()
	c.Advance(-time.Second)
}

func TestWallClock(t *testing.T) {
	before := time.Now()
	got := WallClock{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatal("WallClock.Now outside bracketing interval")
	}
}
