// Package entime provides the time primitives shared by the whole
// reproduction: Exposure Notification interval numbers, the fixed study
// window of the paper (June 15-25, 2020), and helpers for bucketing
// simulation time into the hourly bins used by the paper's Figure 2.
//
// The Exposure Notification framework (GAEN) divides time into 10-minute
// intervals counted from the Unix epoch. A temporary exposure key (TEK) is
// valid for EKRollingPeriod consecutive intervals (24 hours). All protocol
// code in internal/exposure is expressed in these units, so this package is
// the single source of truth for the conversion.
package entime

import (
	"fmt"
	"time"
)

// IntervalLength is the duration of one EN interval.
const IntervalLength = 10 * time.Minute

// EKRollingPeriod is the number of intervals a temporary exposure key is
// valid for: 144 intervals x 10 minutes = 24 hours.
const EKRollingPeriod = 144

// Interval is an Exposure Notification interval number ("ENIntervalNumber"
// in the GAEN specification): the number of 10-minute periods since the
// Unix epoch.
type Interval uint32

// IntervalOf returns the EN interval number containing t.
func IntervalOf(t time.Time) Interval {
	return Interval(t.Unix() / int64(IntervalLength/time.Second))
}

// Time returns the start time of the interval in UTC.
func (i Interval) Time() time.Time {
	return time.Unix(int64(i)*int64(IntervalLength/time.Second), 0).UTC()
}

// KeyPeriodStart rounds i down to the start of its rolling period, i.e. the
// interval at which the TEK covering i was generated.
func (i Interval) KeyPeriodStart() Interval {
	return i / EKRollingPeriod * EKRollingPeriod
}

// Add returns the interval n steps later (n may be negative).
func (i Interval) Add(n int) Interval { return Interval(int64(i) + int64(n)) }

// String implements fmt.Stringer for debugging output.
func (i Interval) String() string {
	return fmt.Sprintf("en-interval(%d, %s)", uint32(i), i.Time().Format(time.RFC3339))
}

// Berlin is the timezone of the study. Germany observed CEST (UTC+2) during
// the entire measurement window, so a fixed zone reproduces local-time
// bucketing without the tzdata dependency (the module is offline).
var Berlin = time.FixedZone("CEST", 2*60*60)

// Study window constants. The paper captures Netflow within June 15-25 2020
// and the app was released on June 16.
var (
	// StudyStart is the first instant of the measurement window
	// (June 15, 2020 00:00 local time).
	StudyStart = time.Date(2020, time.June, 15, 0, 0, 0, 0, Berlin)

	// StudyEnd is the exclusive end of the measurement window
	// (June 26, 2020 00:00 local time, so that June 25 is fully included).
	StudyEnd = time.Date(2020, time.June, 26, 0, 0, 0, 0, Berlin)

	// AppRelease is the official release instant of the Corona-Warn-App:
	// June 16, 2020. The app became available in the stores in the very
	// early morning; store reporting starts June 17.
	AppRelease = time.Date(2020, time.June, 16, 2, 0, 0, 0, Berlin)

	// FirstKeysObserved is when the paper's API monitor saw the first
	// diagnosis keys become available (June 23).
	FirstKeysObserved = time.Date(2020, time.June, 23, 0, 0, 0, 0, Berlin)

	// OutbreakBerlin is the local COVID-19 outbreak in Berlin-Neukoelln
	// reported June 18.
	OutbreakBerlin = time.Date(2020, time.June, 18, 12, 0, 0, 0, Berlin)

	// OutbreakGuetersloh is the lockdown announcement for the Guetersloh
	// and Warendorf districts on June 23.
	OutbreakGuetersloh = time.Date(2020, time.June, 23, 12, 0, 0, 0, Berlin)
)

// StudyHours returns the number of whole hours in [StudyStart, StudyEnd).
func StudyHours() int {
	return int(StudyEnd.Sub(StudyStart) / time.Hour)
}

// StudyDays returns the number of whole days in the study window.
func StudyDays() int {
	return int(StudyEnd.Sub(StudyStart) / (24 * time.Hour))
}

// HourBucket returns the index of the hourly bin containing t, counted from
// StudyStart, or -1 if t falls outside the study window. Figure 2 of the
// paper aggregates traffic into these bins.
func HourBucket(t time.Time) int {
	if t.Before(StudyStart) || !t.Before(StudyEnd) {
		return -1
	}
	return int(t.Sub(StudyStart) / time.Hour)
}

// DayBucket returns the index of the day containing t, counted from
// StudyStart (June 15 = day 0), or -1 outside the window.
func DayBucket(t time.Time) int {
	if t.Before(StudyStart) || !t.Before(StudyEnd) {
		return -1
	}
	return int(t.Sub(StudyStart) / (24 * time.Hour))
}

// DayLabel renders a day bucket as the calendar date it covers, e.g.
// "Jun 16". It is used by the report renderers.
func DayLabel(day int) string {
	return StudyStart.AddDate(0, 0, day).Format("Jan 02")
}

// BucketTime returns the start time of hourly bucket b.
func BucketTime(b int) time.Time {
	return StudyStart.Add(time.Duration(b) * time.Hour)
}

// Clock is a controllable source of simulation time. The simulator advances
// it explicitly; production code paths (the HTTP backend) default to the
// wall clock so the same handlers serve both tests and real requests.
type Clock interface {
	Now() time.Time
}

// WallClock is a Clock backed by time.Now.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() time.Time { return time.Now() }

// SimClock is a manually advanced Clock. It is not safe for concurrent
// mutation; the discrete-event engine advances it from a single goroutine.
type SimClock struct {
	t time.Time
}

// NewSimClock returns a SimClock positioned at start.
func NewSimClock(start time.Time) *SimClock { return &SimClock{t: start} }

// Now implements Clock.
func (c *SimClock) Now() time.Time { return c.t }

// Advance moves the clock forward by d. Advancing by a negative duration
// panics: the event queue must never run backwards.
func (c *SimClock) Advance(d time.Duration) {
	if d < 0 {
		panic("entime: SimClock.Advance called with negative duration")
	}
	c.t = c.t.Add(d)
}

// Set positions the clock at t. Unlike Advance it accepts any target; the
// simulator uses it when jumping between scheduled events.
func (c *SimClock) Set(t time.Time) { c.t = t }
