// Package geo models the geography the paper aggregates traffic over:
// Germany's 16 federal states and 401 districts (Kreise / kreisfreie
// Städte), each with population, centroid and a representative ZIP area.
//
// The federal states carry their real names, codes, populations and
// district counts (2020 figures). Individual districts are synthesized
// deterministically inside each state — real district shapes and registers
// are not available offline — except for the districts the paper reasons
// about by name: Berlin (a one-district city state), and Gütersloh and
// Warendorf in North Rhine-Westphalia, whose June-23 lockdown anchors the
// outbreak analysis. DESIGN.md documents this substitution.
package geo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// State is a German federal state.
type State struct {
	Code       string // ISO 3166-2:DE code, e.g. "NW"
	Name       string
	Population int
	// NumDistricts is the real number of districts in the state; the
	// synthesizer creates exactly this many.
	NumDistricts int
	// Lat, Lon locate the state's rough centroid.
	Lat, Lon float64
	// SpreadKm controls how far synthesized district centroids scatter.
	SpreadKm float64
}

// District is one Kreis or kreisfreie Stadt.
type District struct {
	ID         string // stable identifier, e.g. "NW-031"
	Name       string
	StateCode  string
	Population int
	Lat, Lon   float64
	// ZIP is a representative 5-digit postal code for the district; the
	// paper's Figure 3 heatmap is "by ZIP code areas".
	ZIP string
	// Urban marks districts with large city populations; adoption and
	// traffic models skew slightly urban.
	Urban bool
}

// states lists the 16 real federal states with 2020 populations and real
// district counts (sums to 401 districts, ~83.1M people).
var states = []State{
	{"BW", "Baden-Württemberg", 11_100_000, 44, 48.66, 9.35, 110},
	{"BY", "Bayern", 13_125_000, 96, 48.95, 11.40, 160},
	{"BE", "Berlin", 3_669_000, 1, 52.52, 13.40, 15},
	{"BB", "Brandenburg", 2_522_000, 18, 52.36, 13.01, 110},
	{"HB", "Bremen", 681_000, 2, 53.08, 8.80, 20},
	{"HH", "Hamburg", 1_847_000, 1, 53.55, 9.99, 15},
	{"HE", "Hessen", 6_288_000, 26, 50.60, 9.03, 100},
	{"MV", "Mecklenburg-Vorpommern", 1_608_000, 8, 53.77, 12.57, 110},
	{"NI", "Niedersachsen", 7_994_000, 45, 52.76, 9.39, 140},
	{"NW", "Nordrhein-Westfalen", 17_947_000, 53, 51.48, 7.55, 110},
	{"RP", "Rheinland-Pfalz", 4_094_000, 36, 49.91, 7.45, 90},
	{"SL", "Saarland", 987_000, 6, 49.40, 6.95, 30},
	{"SN", "Sachsen", 4_072_000, 13, 51.05, 13.35, 90},
	{"ST", "Sachsen-Anhalt", 2_181_000, 14, 51.97, 11.70, 90},
	{"SH", "Schleswig-Holstein", 2_904_000, 15, 54.22, 9.70, 90},
	{"TH", "Thüringen", 2_133_000, 23, 50.90, 11.02, 80},
}

// namedDistricts pins the districts the paper references to their real
// name, population and location inside the synthesized set.
var namedDistricts = map[string]District{
	"BE-000": {ID: "BE-000", Name: "Berlin", StateCode: "BE", Population: 3_669_000, Lat: 52.52, Lon: 13.40, ZIP: "10115", Urban: true},
	"NW-000": {ID: "NW-000", Name: "Gütersloh", StateCode: "NW", Population: 364_000, Lat: 51.90, Lon: 8.38, ZIP: "33330", Urban: false},
	"NW-001": {ID: "NW-001", Name: "Warendorf", StateCode: "NW", Population: 278_000, Lat: 51.95, Lon: 7.99, ZIP: "48231", Urban: false},
}

// Model is the immutable geography shared by simulation and analysis.
type Model struct {
	states    []State
	districts []District
	byID      map[string]int
	byState   map[string][]int
}

// Germany builds the deterministic model. Two calls always produce the
// identical geography, which keeps simulation runs reproducible.
func Germany() *Model {
	m := &Model{
		states:  states,
		byID:    make(map[string]int),
		byState: make(map[string][]int),
	}
	for _, st := range states {
		m.synthesizeState(st)
	}
	// A stable global order (by ID) keeps downstream iteration
	// deterministic regardless of construction details.
	sort.Slice(m.districts, func(i, j int) bool { return m.districts[i].ID < m.districts[j].ID })
	for i, d := range m.districts {
		m.byID[d.ID] = i
		m.byState[d.StateCode] = append(m.byState[d.StateCode], i)
	}
	return m
}

// synthesizeState creates the state's districts: pinned named districts
// first, then deterministic synthetic ones whose populations follow a
// log-normal spread rescaled so the state total matches the real state
// population.
func (m *Model) synthesizeState(st State) {
	rng := rand.New(rand.NewSource(seedFor(st.Code)))

	var pinned []District
	pinnedPop := 0
	for i := 0; i < st.NumDistricts; i++ {
		id := fmt.Sprintf("%s-%03d", st.Code, i)
		if d, ok := namedDistricts[id]; ok {
			pinned = append(pinned, d)
			pinnedPop += d.Population
		}
	}
	nSynth := st.NumDistricts - len(pinned)
	remaining := st.Population - pinnedPop

	// Draw raw log-normal weights, then rescale to the remaining
	// population. Sigma 0.6 gives the realistic mix of ~100k rural
	// districts and milion-city outliers.
	weights := make([]float64, nSynth)
	var wsum float64
	for i := range weights {
		weights[i] = math.Exp(rng.NormFloat64() * 0.6)
		wsum += weights[i]
	}
	m.districts = append(m.districts, pinned...)
	for i := 0; i < nSynth; i++ {
		pop := int(float64(remaining) * weights[i] / wsum)
		if pop < 35_000 {
			pop = 35_000 // smallest real German district is ~34k
		}
		lat, lon := scatter(rng, st)
		id := fmt.Sprintf("%s-%03d", st.Code, len(pinned)+i)
		m.districts = append(m.districts, District{
			ID:         id,
			Name:       fmt.Sprintf("%s Kreis %d", st.Name, len(pinned)+i),
			StateCode:  st.Code,
			Population: pop,
			Lat:        lat,
			Lon:        lon,
			ZIP:        zipFor(st.Code, len(pinned)+i),
			Urban:      pop > 250_000,
		})
	}
}

// scatter places a district centroid around the state centroid within
// SpreadKm, converting kilometres to degrees at German latitudes.
func scatter(rng *rand.Rand, st State) (lat, lon float64) {
	const kmPerDegLat = 111.0
	kmPerDegLon := 111.0 * math.Cos(st.Lat*math.Pi/180)
	dx := (rng.Float64()*2 - 1) * st.SpreadKm
	dy := (rng.Float64()*2 - 1) * st.SpreadKm
	return st.Lat + dy/kmPerDegLat, st.Lon + dx/kmPerDegLon
}

// seedFor derives a stable per-state seed from the state code.
func seedFor(code string) int64 {
	var s int64 = 1469598103934665603
	for _, c := range code {
		s ^= int64(c)
		s *= 1099511628211
	}
	return s
}

// zipFor synthesizes a plausible 5-digit ZIP for a district. German ZIP
// leading digits loosely follow regions; a fixed per-state leading digit
// keeps the rendering grouped.
func zipFor(code string, idx int) string {
	lead := map[string]int{
		"BW": 7, "BY": 8, "BE": 1, "BB": 1, "HB": 2, "HH": 2, "HE": 6,
		"MV": 1, "NI": 3, "NW": 4, "RP": 5, "SL": 6, "SN": 0, "ST": 0,
		"SH": 2, "TH": 9,
	}[code]
	return fmt.Sprintf("%d%04d", lead, (idx*37)%10000)
}

// States returns the 16 federal states.
func (m *Model) States() []State {
	out := make([]State, len(m.states))
	copy(out, m.states)
	return out
}

// StateByCode returns the state with the given ISO code.
func (m *Model) StateByCode(code string) (State, bool) {
	for _, s := range m.states {
		if s.Code == code {
			return s, true
		}
	}
	return State{}, false
}

// Districts returns all districts in stable (ID) order. The slice is a
// copy; the model itself is immutable.
func (m *Model) Districts() []District {
	out := make([]District, len(m.districts))
	copy(out, m.districts)
	return out
}

// NumDistricts returns the total number of districts (401).
func (m *Model) NumDistricts() int { return len(m.districts) }

// DistrictByID looks a district up by its stable identifier.
func (m *Model) DistrictByID(id string) (District, bool) {
	i, ok := m.byID[id]
	if !ok {
		return District{}, false
	}
	return m.districts[i], true
}

// DistrictByName finds a district by exact name (the paper refers to
// Gütersloh, Warendorf and Berlin this way).
func (m *Model) DistrictByName(name string) (District, bool) {
	for _, d := range m.districts {
		if d.Name == name {
			return d, true
		}
	}
	return District{}, false
}

// DistrictsOfState returns the districts of one state in stable order.
func (m *Model) DistrictsOfState(code string) []District {
	idxs := m.byState[code]
	out := make([]District, len(idxs))
	for i, idx := range idxs {
		out[i] = m.districts[idx]
	}
	return out
}

// TotalPopulation sums all district populations.
func (m *Model) TotalPopulation() int {
	var sum int
	for _, d := range m.districts {
		sum += d.Population
	}
	return sum
}

// DistanceKm returns the great-circle distance between two districts using
// the haversine formula; the geolocation error model displaces lookups to
// nearby districts with it.
func DistanceKm(a, b District) float64 {
	const r = 6371.0
	la1, lo1 := a.Lat*math.Pi/180, a.Lon*math.Pi/180
	la2, lo2 := b.Lat*math.Pi/180, b.Lon*math.Pi/180
	dla, dlo := la2-la1, lo2-lo1
	h := math.Sin(dla/2)*math.Sin(dla/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dlo/2)*math.Sin(dlo/2)
	return 2 * r * math.Asin(math.Min(1, math.Sqrt(h)))
}
