package geo

import (
	"math"
	"testing"
)

func TestGermanyShape(t *testing.T) {
	m := Germany()
	if got := len(m.States()); got != 16 {
		t.Fatalf("states = %d, want 16", got)
	}
	if got := m.NumDistricts(); got != 401 {
		t.Fatalf("districts = %d, want 401", got)
	}
	pop := m.TotalPopulation()
	if pop < 80_000_000 || pop > 86_000_000 {
		t.Fatalf("total population %d implausible for Germany", pop)
	}
}

func TestGermanyDeterministic(t *testing.T) {
	a, b := Germany(), Germany()
	da, db := a.Districts(), b.Districts()
	if len(da) != len(db) {
		t.Fatal("district counts differ across constructions")
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("district %d differs: %+v vs %+v", i, da[i], db[i])
		}
	}
}

func TestNamedDistrictsPresent(t *testing.T) {
	m := Germany()
	for _, name := range []string{"Berlin", "Gütersloh", "Warendorf"} {
		d, ok := m.DistrictByName(name)
		if !ok {
			t.Fatalf("district %q missing", name)
		}
		if d.Population <= 0 {
			t.Fatalf("%s has no population", name)
		}
	}
	b, _ := m.DistrictByName("Berlin")
	if b.StateCode != "BE" || !b.Urban {
		t.Fatalf("Berlin misclassified: %+v", b)
	}
	g, _ := m.DistrictByName("Gütersloh")
	w, _ := m.DistrictByName("Warendorf")
	if g.StateCode != "NW" || w.StateCode != "NW" {
		t.Fatal("Gütersloh/Warendorf must be in NW")
	}
	if d := DistanceKm(g, w); d > 60 {
		t.Fatalf("Gütersloh-Warendorf distance %f km, should be neighbors", d)
	}
}

func TestDistrictCountsPerState(t *testing.T) {
	m := Germany()
	want := map[string]int{
		"BW": 44, "BY": 96, "BE": 1, "BB": 18, "HB": 2, "HH": 1,
		"HE": 26, "MV": 8, "NI": 45, "NW": 53, "RP": 36, "SL": 6,
		"SN": 13, "ST": 14, "SH": 15, "TH": 23,
	}
	total := 0
	for code, n := range want {
		got := len(m.DistrictsOfState(code))
		if got != n {
			t.Errorf("state %s: %d districts, want %d", code, got, n)
		}
		total += got
	}
	if total != 401 {
		t.Fatalf("sum = %d", total)
	}
}

func TestStatePopulationsApproximatelyPreserved(t *testing.T) {
	m := Germany()
	for _, st := range m.States() {
		var sum int
		for _, d := range m.DistrictsOfState(st.Code) {
			sum += d.Population
		}
		// The >=35k floor can push small-district states slightly over.
		ratio := float64(sum) / float64(st.Population)
		if ratio < 0.95 || ratio > 1.15 {
			t.Errorf("state %s: district sum %d vs state %d (ratio %.3f)",
				st.Code, sum, st.Population, ratio)
		}
	}
}

func TestDistrictByID(t *testing.T) {
	m := Germany()
	d, ok := m.DistrictByID("NW-000")
	if !ok || d.Name != "Gütersloh" {
		t.Fatalf("NW-000 = %+v, ok=%v", d, ok)
	}
	if _, ok := m.DistrictByID("XX-999"); ok {
		t.Fatal("unknown ID must not resolve")
	}
}

func TestDistrictIDsUniqueAndOrdered(t *testing.T) {
	m := Germany()
	seen := make(map[string]bool)
	prev := ""
	for _, d := range m.Districts() {
		if seen[d.ID] {
			t.Fatalf("duplicate ID %s", d.ID)
		}
		seen[d.ID] = true
		if d.ID <= prev {
			t.Fatalf("IDs not strictly ascending: %s after %s", d.ID, prev)
		}
		prev = d.ID
	}
}

func TestDistrictFieldsPlausible(t *testing.T) {
	m := Germany()
	for _, d := range m.Districts() {
		if d.Population < 30_000 {
			t.Errorf("%s population %d too small", d.ID, d.Population)
		}
		if d.Lat < 47 || d.Lat > 56 || d.Lon < 5 || d.Lon > 16 {
			t.Errorf("%s coordinates (%f, %f) outside Germany", d.ID, d.Lat, d.Lon)
		}
		if len(d.ZIP) != 5 {
			t.Errorf("%s ZIP %q not 5 digits", d.ID, d.ZIP)
		}
		if _, ok := m.StateByCode(d.StateCode); !ok {
			t.Errorf("%s references unknown state %s", d.ID, d.StateCode)
		}
	}
}

func TestStateByCode(t *testing.T) {
	m := Germany()
	st, ok := m.StateByCode("NW")
	if !ok || st.Name != "Nordrhein-Westfalen" {
		t.Fatalf("NW = %+v, ok=%v", st, ok)
	}
	if _, ok := m.StateByCode("ZZ"); ok {
		t.Fatal("unknown state code must not resolve")
	}
}

func TestDistanceKm(t *testing.T) {
	m := Germany()
	b, _ := m.DistrictByName("Berlin")
	if d := DistanceKm(b, b); d != 0 {
		t.Fatalf("self distance = %f", d)
	}
	g, _ := m.DistrictByName("Gütersloh")
	d := DistanceKm(b, g)
	// Berlin-Gütersloh is roughly 340 km.
	if math.Abs(d-340) > 60 {
		t.Fatalf("Berlin-Gütersloh = %f km, expected ~340", d)
	}
	if DistanceKm(g, b) != d {
		t.Fatal("distance must be symmetric")
	}
}

func TestDistrictsReturnsCopy(t *testing.T) {
	m := Germany()
	ds := m.Districts()
	ds[0].Population = -1
	if m.Districts()[0].Population == -1 {
		t.Fatal("Districts must return a copy")
	}
}

func TestUrbanShare(t *testing.T) {
	m := Germany()
	urban := 0
	for _, d := range m.Districts() {
		if d.Urban {
			urban++
		}
	}
	// Germany has ~80 urban districts (kreisfreie Städte >250k are fewer,
	// but the synthesizer's tail should land in a sane band).
	if urban < 10 || urban > 120 {
		t.Fatalf("urban districts = %d, outside plausible band", urban)
	}
}
