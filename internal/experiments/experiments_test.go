package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"cwatrace/internal/core"
	"cwatrace/internal/entime"
	"cwatrace/internal/geodb"
	"cwatrace/internal/sim"
	"cwatrace/internal/trace"
)

// tinyConfig is the smallest configuration that still exercises every
// stage: very coarse scale, three days around the release.
func tinyConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Scale = 40000
	cfg.End = cfg.Start.AddDate(0, 0, 3)
	return cfg
}

var (
	tinyOnce sync.Once
	tinySt   *Suite
	tinyErr  error
)

func tinySuite(t *testing.T) *Suite {
	t.Helper()
	tinyOnce.Do(func() { tinySt, tinyErr = RunSuite(tinyConfig()) })
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinySt
}

func TestRunSuite(t *testing.T) {
	s := tinySuite(t)
	if len(s.Kept) == 0 || s.Census.Kept != len(s.Kept) {
		t.Fatalf("suite inconsistent: kept %d, census %d", len(s.Kept), s.Census.Kept)
	}
}

func TestSuiteFigure2(t *testing.T) {
	s := tinySuite(t)
	fig2, err := s.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig2.Points) != entime.StudyHours() {
		t.Fatalf("points = %d", len(fig2.Points))
	}
}

func TestSuiteFigure3(t *testing.T) {
	s := tinySuite(t)
	full, dayOne, similarity, err := s.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if full.ActiveDistricts == 0 || dayOne.ActiveDistricts == 0 {
		t.Fatal("no active districts")
	}
	if similarity <= 0 {
		t.Fatalf("similarity = %f", similarity)
	}
}

func TestSuiteAdoption(t *testing.T) {
	s := tinySuite(t)
	tab, err := s.Adoption()
	if err != nil {
		t.Fatal(err)
	}
	if tab.DownloadsAt36h != 6_400_000 || tab.DownloadsJul24 != 16_200_000 {
		t.Fatalf("anchors wrong: %+v", tab)
	}
	out := RenderAdoption(tab)
	if !strings.Contains(out, "6.4M") || !strings.Contains(out, "16.2M") {
		t.Fatalf("render missing anchors:\n%s", out)
	}
}

func TestDNSTableAndRender(t *testing.T) {
	tab, err := DNS(2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Verify.Confirmed() {
		t.Fatal("verification must confirm")
	}
	if len(tab.WebListed) != 0 {
		t.Fatalf("website listed: %v", tab.WebListed)
	}
	out := RenderDNS(tab)
	if !strings.Contains(out, "confirmed=true") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestSamplingAblationMonotone(t *testing.T) {
	base := tinyConfig()
	points, err := SamplingAblation(base, []int{1, 64})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].KeptFlows <= points[1].KeptFlows {
		t.Fatalf("sampling must reduce kept flows: %d vs %d",
			points[0].KeptFlows, points[1].KeptFlows)
	}
	if points[0].MeanPktsPerFlow <= points[1].MeanPktsPerFlow {
		t.Fatal("sampling must reduce packets per flow")
	}
	if points[0].SinglePacketShare >= points[1].SinglePacketShare {
		t.Fatal("sampling must raise the single-packet share")
	}
	out := RenderSampling(points)
	if !strings.Contains(out, "1:64") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestBackgroundBugAblationMonotone(t *testing.T) {
	base := tinyConfig()
	points, err := BackgroundBugAblation(base, []float64{0, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].SyncsPerDeviceDay <= points[1].SyncsPerDeviceDay {
		t.Fatalf("bug share must suppress syncs: %.2f vs %.2f",
			points[0].SyncsPerDeviceDay, points[1].SyncsPerDeviceDay)
	}
	out := RenderBug(points)
	if !strings.Contains(out, "0.80") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestCentralizedAndRender(t *testing.T) {
	cmp, err := Centralized()
	if err != nil {
		t.Fatal(err)
	}
	if cmp.DownloadFactor <= 1 {
		t.Fatalf("factor = %f", cmp.DownloadFactor)
	}
	out := RenderCentralized(cmp)
	if !strings.Contains(out, "centralized") || !strings.Contains(out, "decentralized") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestEfficacyAndRender(t *testing.T) {
	points, err := Efficacy()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no efficacy points")
	}
	for i := 1; i < len(points); i++ {
		if points[i].DetectableShare < points[i-1].DetectableShare {
			t.Fatal("efficacy not monotone")
		}
	}
	out := RenderEfficacy(points)
	if !strings.Contains(out, "Ferretti") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestAppIDOnSimulatedTrace(t *testing.T) {
	s := tinySuite(t)
	res, err := s.AppID()
	if err != nil {
		t.Fatal(err)
	}
	if res.Classified == 0 {
		t.Fatal("nothing classified")
	}
	// Short 3-day window: precision should already be high; recall is
	// window-limited (many installs are too young to show periodicity).
	if res.Eval.TruePositives+res.Eval.FalsePositives > 0 && res.Eval.Precision() < 0.7 {
		t.Fatalf("precision %.2f too low: %+v", res.Eval.Precision(), res.Eval)
	}
	out := RenderAppID(res)
	if !strings.Contains(out, "precision") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestNewsCorrelation(t *testing.T) {
	s := tinySuite(t)
	fromTrace, truth, err := s.NewsCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	if truth <= 0.5 {
		t.Fatalf("ground-truth news correlation %.3f, expected strong positive", truth)
	}
	if fromTrace < -1 || fromTrace > 1 {
		t.Fatalf("trace correlation %.3f out of range", fromTrace)
	}
	// The dilution effect: the trace-level signal must be weaker than
	// the ground-truth signal.
	if fromTrace >= truth {
		t.Fatalf("trace correlation %.3f >= ground truth %.3f", fromTrace, truth)
	}
}

func TestLongTermShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long window")
	}
	res, err := LongTerm()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WeeklyFlows) != 4 || len(res.WeeklyWebVisits) != 4 {
		t.Fatalf("weeks = %d/%d", len(res.WeeklyFlows), len(res.WeeklyWebVisits))
	}
	// Traffic grows with installs and key volume...
	if res.TrendRatio <= 1 {
		t.Fatalf("traffic trend %.2f, expected growth", res.TrendRatio)
	}
	// ...while human interest (website visits) fades with attention.
	if res.InterestTrendRatio >= 1 {
		t.Fatalf("interest trend %.2f, expected decline", res.InterestTrendRatio)
	}
	out := RenderLongTerm(res)
	if !strings.Contains(out, "week 4 vs week 2") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRenderFirstKeys(t *testing.T) {
	out := RenderFirstKeys(FirstKeysTable{FirstDay: "2020-06-23", Uploads: 5,
		KeysByDay: map[string]int{"2020-06-23": 7}})
	if !strings.Contains(out, "2020-06-23") {
		t.Fatalf("render:\n%s", out)
	}
}

// TestDiskRoundTrip exercises the cwasim -> cwanalyze path: serialize the
// trace and geolocation sidecar, read both back, and verify the analysis
// reproduces byte-for-byte results against the in-memory pipeline.
func TestDiskRoundTrip(t *testing.T) {
	s := tinySuite(t)

	var traceBuf, geoBuf bytes.Buffer
	if err := trace.WriteAll(&traceBuf, s.Result.Records); err != nil {
		t.Fatal(err)
	}
	if err := s.Result.GeoDB.Write(&geoBuf); err != nil {
		t.Fatal(err)
	}

	records, err := trace.ReadAll(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	db, err := geodb.Read(&geoBuf)
	if err != nil {
		t.Fatal(err)
	}
	kept, census := core.ApplyFilter(records, core.DefaultFilter())
	if census.Kept != s.Census.Kept {
		t.Fatalf("census differs after disk round trip: %d vs %d", census.Kept, s.Census.Kept)
	}

	from := entime.StudyStart
	to := from.AddDate(0, 0, 3)
	mem := core.Figure3(s.Kept, s.Result.GeoDB, s.Result.Model, from, to)
	disk := core.Figure3(kept, db, s.Result.Model, from, to)
	if mem.ActiveDistricts != disk.ActiveDistricts {
		t.Fatalf("figure 3 differs: %d vs %d active districts",
			mem.ActiveDistricts, disk.ActiveDistricts)
	}
	for i := range mem.Loads {
		if mem.Loads[i].Flows != disk.Loads[i].Flows {
			t.Fatalf("district %s flows differ after round trip",
				mem.Loads[i].District.ID)
		}
	}
}
