// Package experiments assembles every artefact of the paper — figures,
// in-text tables and the reproduction's ablations — from the simulation and
// measurement pipeline. Both cmd/experiments and the repository-level
// benchmark harness drive this package, so the numbers recorded in
// EXPERIMENTS.md and the bench output come from the same code.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"cwatrace/internal/adoption"
	"cwatrace/internal/appid"
	"cwatrace/internal/ble"
	"cwatrace/internal/centralized"
	"cwatrace/internal/core"
	"cwatrace/internal/dnssim"
	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
	"cwatrace/internal/scenario"
	"cwatrace/internal/sim"
	"cwatrace/internal/stats"
	"cwatrace/internal/workgroup"
)

// Suite is one simulated data set with its filtered view.
type Suite struct {
	Cfg    sim.Config
	Result *sim.Result
	Kept   []netflow.Record
	Census core.Census
}

// RunSuite runs the simulation and applies the paper's filter.
func RunSuite(cfg sim.Config) (*Suite, error) {
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	kept, census := core.ApplyFilter(res.Records, core.DefaultFilter())
	return &Suite{Cfg: cfg, Result: res, Kept: kept, Census: census}, nil
}

// Figure2 produces the temporal series (F2).
func (s *Suite) Figure2() (*core.Figure2Result, error) {
	return core.Figure2(s.Kept, s.Result.Curve)
}

// Figure3 produces the 10-day geographic aggregation (F3) plus the day-one
// comparison the paper mentions.
func (s *Suite) Figure3() (full, dayOne *core.Figure3Result, similarity float64, err error) {
	from, to := core.StudyWindow()
	full = core.Figure3(s.Kept, s.Result.GeoDB, s.Result.Model, from, to)
	d1from, d1to := core.FirstDayWindow()
	dayOne = core.Figure3(s.Kept, s.Result.GeoDB, s.Result.Model, d1from, d1to)
	similarity, err = core.SpreadSimilarity(dayOne, full)
	return full, dayOne, similarity, err
}

// Persistence produces T2.
func (s *Suite) Persistence() core.PersistenceResult {
	return core.PrefixPersistence(s.Kept)
}

// Outbreaks produces T4.
func (s *Suite) Outbreaks() *core.OutbreakReport {
	return core.AnalyzeOutbreaks(s.Kept, s.Result.GeoDB, s.Result.Model)
}

// Report bundles every per-suite artefact: the figures and tables a single
// simulated data set yields.
type Report struct {
	Fig2             *core.Figure2Result
	Fig3Full         *core.Figure3Result
	Fig3DayOne       *core.Figure3Result
	DayOneSimilarity float64
	Persistence      core.PersistenceResult
	Outbreaks        *core.OutbreakReport
	Adoption         AdoptionTable
	FirstKeys        FirstKeysTable
	AppID            AppIDResult
	// NewsOK reports whether the FW2 correlation could be computed; the
	// analysis needs at least three days of data and non-degenerate
	// series, and its absence must not sink the rest of the report.
	NewsOK    bool
	NewsTrace float64
	NewsTruth float64
}

// Analyze runs every per-suite analysis concurrently. The analyses only
// read the suite (trace, geolocation database, ground truth), so they are
// independent; fanning them out regenerates all figures and tables in the
// wall-clock time of the slowest one.
func (s *Suite) Analyze() (*Report, error) {
	var rep Report
	g := workgroup.WithLimit(runtime.NumCPU())
	g.Go(func() error {
		fig2, err := s.Figure2()
		if err != nil {
			return fmt.Errorf("figure 2: %w", err)
		}
		rep.Fig2 = fig2
		rep.Adoption = s.adoptionFrom(fig2)
		return nil
	})
	g.Go(func() error {
		full, dayOne, similarity, err := s.Figure3()
		if err != nil {
			return fmt.Errorf("figure 3: %w", err)
		}
		rep.Fig3Full, rep.Fig3DayOne, rep.DayOneSimilarity = full, dayOne, similarity
		return nil
	})
	g.Go(func() error {
		rep.Persistence = s.Persistence()
		return nil
	})
	g.Go(func() error {
		rep.Outbreaks = s.Outbreaks()
		return nil
	})
	g.Go(func() error {
		rep.FirstKeys = s.FirstKeys()
		return nil
	})
	g.Go(func() error {
		appID, err := s.AppID()
		if err != nil {
			return fmt.Errorf("app identification: %w", err)
		}
		rep.AppID = appID
		return nil
	})
	g.Go(func() error {
		// FW2 is optional: short or degenerate windows cannot support
		// the correlation, and that only blanks its section.
		if fromTrace, truth, err := s.NewsCorrelation(); err == nil {
			rep.NewsTrace, rep.NewsTruth, rep.NewsOK = fromTrace, truth, true
		}
		return nil
	})
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return &rep, nil
}

// AdoptionTable is T3: the paper's adoption anchors next to the measured
// release-day jump.
type AdoptionTable struct {
	DownloadsAt36h      float64
	DownloadsJul24      float64
	ReleaseDayFlowRatio float64
}

// Adoption produces T3.
func (s *Suite) Adoption() (AdoptionTable, error) {
	fig2, err := s.Figure2()
	if err != nil {
		return AdoptionTable{}, err
	}
	return s.adoptionFrom(fig2), nil
}

// adoptionFrom builds T3 from an already-computed Figure 2, so Analyze does
// not regenerate the timeline twice.
func (s *Suite) adoptionFrom(fig2 *core.Figure2Result) AdoptionTable {
	jul24 := time.Date(2020, time.July, 24, 0, 0, 0, 0, entime.Berlin)
	return AdoptionTable{
		DownloadsAt36h:      s.Result.Curve.Cumulative(entime.AppRelease.Add(36 * time.Hour)),
		DownloadsJul24:      s.Result.Curve.Cumulative(jul24),
		ReleaseDayFlowRatio: fig2.ReleaseDayFlowRatio,
	}
}

// FirstKeysTable is T6.
type FirstKeysTable struct {
	FirstDay  string
	KeysByDay map[string]int
	Uploads   int
}

// FirstKeys produces T6.
func (s *Suite) FirstKeys() FirstKeysTable {
	t := FirstKeysTable{KeysByDay: s.Result.Stats.KeysByDay, Uploads: s.Result.Stats.Uploads}
	if days := s.Result.Backend.AvailableDays(); len(days) > 0 {
		t.FirstDay = days[0]
	}
	return t
}

// DNSTable is T5.
type DNSTable struct {
	Verify       dnssim.VerifyResult
	APIListed    []string
	WebListed    []string
	Observations []dnssim.DayObservation
}

// DNS produces T5: the resolver verification sweep plus the top-list
// observation window.
func DNS(resolvers int, seed int64) (DNSTable, error) {
	fleet, err := dnssim.NewFleet(resolvers, 0.03, seed)
	if err != nil {
		return DNSTable{}, err
	}
	verify := fleet.VerifyPrefixes(dnssim.APIName)
	api, web := dnssim.QueryVolumes(adoption.DefaultCurve(), adoption.DefaultAttention(), entime.StudyDays())
	obs := dnssim.DefaultTopList().ObserveWindow(api, web)
	apiDays, webDays := dnssim.ListedDays(obs)
	return DNSTable{Verify: verify, APIListed: apiDays, WebListed: webDays, Observations: obs}, nil
}

// SamplingPoint is one row of the A1 ablation.
type SamplingPoint struct {
	SampleRate      int
	KeptFlows       int
	MeanPktsPerFlow float64
	// SinglePacketShare is the fraction of kept flows carrying exactly
	// one sampled packet — the paper's "few packets for most flows".
	SinglePacketShare float64
	// MedianPresence and P75Presence are the prefix-persistence
	// quantiles at this sampling rate: aggressive sampling hides
	// prefix-days, pulling the fractions down toward the paper's
	// 0.67/0.80.
	MedianPresence float64
	P75Presence    float64
}

// SamplingAblation reruns the capture at different router sampling rates
// (A1). The base config is shrunk for speed; shapes, not absolutes, are
// compared. Each parameter point is a generated scenario spec applied to
// the base configuration; the points are independent simulations, so they
// fan out over a bounded worker pool and results keep the order of rates.
func SamplingAblation(base sim.Config, rates []int) ([]SamplingPoint, error) {
	out := make([]SamplingPoint, len(rates))
	g := workgroup.WithLimit(ablationWorkers())
	for i, rate := range rates {
		i, rate := i, rate
		g.Go(func() error {
			sp := scenario.Spec{
				Name:       fmt.Sprintf("sampling-1in%d", rate),
				SampleRate: rate,
			}
			cfg, err := sp.Apply(base)
			if err != nil {
				return err
			}
			s, err := RunSuite(cfg)
			if err != nil {
				return fmt.Errorf("sampling ablation rate %d: %w", rate, err)
			}
			p := SamplingPoint{SampleRate: rate, KeptFlows: len(s.Kept)}
			var pkts, single float64
			for _, r := range s.Kept {
				pkts += float64(r.Packets)
				if r.Packets == 1 {
					single++
				}
			}
			if len(s.Kept) > 0 {
				p.MeanPktsPerFlow = pkts / float64(len(s.Kept))
				p.SinglePacketShare = single / float64(len(s.Kept))
			}
			pers := s.Persistence()
			p.MedianPresence = pers.MedianFraction
			p.P75Presence = pers.P75Fraction
			out[i] = p
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// ablationWorkers bounds the concurrent simulations of a parameter sweep;
// the sizing is shared with the scenario sweeps (scenario.SweepWorkers).
func ablationWorkers() int {
	return scenario.SweepWorkers()
}

// BugPoint is one row of the A3 ablation.
type BugPoint struct {
	BugShare float64
	// SyncsPerDeviceDay is daily key-download coverage; the July-24 bug
	// report means a large device share missed their daily downloads.
	SyncsPerDeviceDay float64
	KeptFlows         int
}

// BackgroundBugAblation reruns the simulation at different shares of
// energy-saving-restricted devices (A3). Each share becomes a generated
// scenario spec applied to the base configuration; points run
// concurrently and results keep the order of shares.
func BackgroundBugAblation(base sim.Config, shares []float64) ([]BugPoint, error) {
	out := make([]BugPoint, len(shares))
	days := int(base.End.Sub(base.Start) / (24 * time.Hour))
	g := workgroup.WithLimit(ablationWorkers())
	for i, share := range shares {
		i, share := i, share
		g.Go(func() error {
			sp := scenario.Spec{
				Name:               fmt.Sprintf("background-bug-%.0f", share*100),
				BackgroundBugShare: &share,
			}
			cfg, err := sp.Apply(base)
			if err != nil {
				return err
			}
			s, err := RunSuite(cfg)
			if err != nil {
				return fmt.Errorf("bug ablation share %.2f: %w", share, err)
			}
			p := BugPoint{BugShare: share, KeptFlows: len(s.Kept)}
			if s.Result.Stats.Devices > 0 && days > 0 {
				// Approximate device-days: devices arrive over the
				// window, so halve.
				deviceDays := float64(s.Result.Stats.Devices) * float64(days) / 2
				p.SyncsPerDeviceDay = float64(s.Result.Stats.Syncs) / deviceDays
			}
			out[i] = p
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// Centralized produces the A2 architecture comparison from the canonical
// declarative workload (scenario.DefaultCentralized).
func Centralized() (*centralized.Comparison, error) {
	return centralized.RunComparison(scenario.DefaultCentralized.Config())
}

// AppIDResult is the future-work experiment FW1: identifying app clients
// from their periodic request pattern, scored against simulation ground
// truth.
type AppIDResult struct {
	Classified int
	AppCalls   int
	Eval       appid.Evaluation
}

// AppID runs the periodicity classifier on the suite's filtered trace.
func (s *Suite) AppID() (AppIDResult, error) {
	cls, err := appid.Classify(s.Kept, appid.DefaultConfig())
	if err != nil {
		return AppIDResult{}, err
	}
	res := AppIDResult{Classified: len(cls)}
	for _, c := range cls {
		if c.Verdict == appid.App {
			res.AppCalls++
		}
	}
	res.Eval = appid.Evaluate(cls, s.Result.Labels, sim.LabelApp, sim.LabelWeb)
	return res, nil
}

// NewsCorrelation produces the future-work experiment FW2: how strongly
// media attention and traffic co-move.
//
// fromTrace correlates attention with the day-over-day growth of the
// filtered trace — all the paper's data would allow. It comes out weakly
// positive: protocol-driven growth (key packages appearing and growing
// after June 23) and install accumulation dilute the news signal, which is
// itself a finding about the feasibility of the paper's proposed analysis.
//
// groundTruth correlates attention with the simulator's true daily website
// visits — the upper bound an observer with perfect app/website separation
// would reach.
func (s *Suite) NewsCorrelation() (fromTrace, groundTruth float64, err error) {
	fromTrace, err = core.NewsCorrelation(s.Kept, s.Result.Attention)
	if err != nil {
		return 0, 0, err
	}
	web := s.Result.Stats.WebVisitsByDay
	if len(web) < 3 {
		return 0, 0, fmt.Errorf("experiments: window too short for news correlation")
	}
	attention := make([]float64, len(web))
	visits := make([]float64, len(web))
	for d := range web {
		noon := s.Cfg.Start.AddDate(0, 0, d).Add(12 * time.Hour)
		attention[d] = s.Result.Attention.At(noon)
		visits[d] = float64(web[d])
	}
	groundTruth, err = stats.Pearson(attention, visits)
	if err != nil {
		return 0, 0, err
	}
	return fromTrace, groundTruth, nil
}

// RenderAppID renders FW1.
func RenderAppID(r AppIDResult) string {
	var sb strings.Builder
	sb.WriteString("App identification from periodic requests (FW1 — the paper's future work)\n")
	fmt.Fprintf(&sb, "client addresses classified: %d, called app: %d\n", r.Classified, r.AppCalls)
	fmt.Fprintf(&sb, "vs ground truth: precision %.2f, recall %.2f (TP %d, FP %d, TN %d, FN %d, unknown %d)\n",
		r.Eval.Precision(), r.Eval.Recall(),
		r.Eval.TruePositives, r.Eval.FalsePositives,
		r.Eval.TrueNegatives, r.Eval.FalseNegatives, r.Eval.Unknowns)
	sb.WriteString("recall is capped by dynamic-ISP address churn — the same effect the paper's\n")
	sb.WriteString("persistence analysis leans on (only some ISPs keep addresses stable)\n")
	return sb.String()
}

// Efficacy produces A4: the detectable-contact share as a function of
// adoption — the paper's "widespread adoption is key to the app's success"
// motivation, quantified over the BLE contact process.
func Efficacy() ([]ble.EfficacyPoint, error) {
	cfg := ble.ContactConfig{
		People:             20000,
		MeanContactsPerDay: 8,
		CloseShare:         0.5,
		Seed:               20200616,
	}
	return ble.EfficacyCurve(cfg, []float64{0.05, 0.1, 0.2, 0.28, 0.4, 0.6, 0.8})
}

// RenderEfficacy renders A4. The 0.28 row is Germany's situation by late
// July 2020 (16.2M downloads over ~58M smartphone users).
func RenderEfficacy(points []ble.EfficacyPoint) string {
	var sb strings.Builder
	sb.WriteString("Adoption efficacy (A4) — detectable contacts need the app on BOTH sides (Ferretti et al.)\n")
	sb.WriteString("adoption  detectable share  adoption^2\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%8.2f  %16.3f  %10.3f\n", p.Adoption, p.DetectableShare, p.Quadratic)
	}
	return sb.String()
}

// QuickConfig returns a reduced configuration for ablations and benches:
// coarser population scale, same window and behaviour.
func QuickConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Scale = 10000
	return cfg
}

// LongTermResult is the future-work experiment FW3: "what will be the
// long-term app interest" — the study window extended by three weeks.
type LongTermResult struct {
	// WeeklyFlows are total kept flows per week from the study start.
	WeeklyFlows []float64
	// WeeklyWebVisits are the true website visits per week (ground
	// truth): the human-interest component of the traffic.
	WeeklyWebVisits []float64
	// TrendRatio compares the last full week against the first
	// post-release week: > 1 means traffic kept growing.
	TrendRatio float64
	// InterestTrendRatio is the same ratio on website visits; it falls
	// below 1 as attention fades even while protocol traffic grows.
	InterestTrendRatio float64
	// WeekdayWeekendRatio is mean weekday vs weekend daily flows after
	// the release settled (from day 7 on).
	WeekdayWeekendRatio float64
}

// LongTerm extends the capture window to four weeks (June 15 - July 12)
// and summarizes where traffic settles after the launch spike.
func LongTerm() (LongTermResult, error) {
	cfg := QuickConfig()
	cfg.End = cfg.Start.AddDate(0, 0, 28)
	s, err := RunSuite(cfg)
	if err != nil {
		return LongTermResult{}, err
	}
	days := 28
	daily := stats.NewTimeSeries(cfg.Start, 24*time.Hour, days)
	for _, r := range s.Kept {
		daily.Add(r.First, 1)
	}
	var res LongTermResult
	for w := 0; w < days/7; w++ {
		var sum, web float64
		for d := w * 7; d < (w+1)*7; d++ {
			sum += daily.Bin(d)
			if d < len(s.Result.Stats.WebVisitsByDay) {
				web += float64(s.Result.Stats.WebVisitsByDay[d])
			}
		}
		res.WeeklyFlows = append(res.WeeklyFlows, sum)
		res.WeeklyWebVisits = append(res.WeeklyWebVisits, web)
	}
	if res.WeeklyFlows[1] > 0 {
		res.TrendRatio = res.WeeklyFlows[len(res.WeeklyFlows)-1] / res.WeeklyFlows[1]
	}
	if res.WeeklyWebVisits[1] > 0 {
		res.InterestTrendRatio = res.WeeklyWebVisits[len(res.WeeklyWebVisits)-1] / res.WeeklyWebVisits[1]
	}
	var weekdaySum, weekendSum, weekdays, weekends float64
	for d := 7; d < days; d++ {
		switch cfg.Start.AddDate(0, 0, d).Weekday() {
		case time.Saturday, time.Sunday:
			weekendSum += daily.Bin(d)
			weekends++
		default:
			weekdaySum += daily.Bin(d)
			weekdays++
		}
	}
	if weekends > 0 && weekendSum > 0 && weekdays > 0 {
		res.WeekdayWeekendRatio = (weekdaySum / weekdays) / (weekendSum / weekends)
	}
	return res, nil
}

// RenderLongTerm renders FW3.
func RenderLongTerm(r LongTermResult) string {
	var sb strings.Builder
	sb.WriteString("Long-term interest (FW3 — the paper's future work), June 15 - July 12\n")
	sb.WriteString("week  flows     web visits (truth)\n")
	for i := range r.WeeklyFlows {
		fmt.Fprintf(&sb, "%4d  %8.0f  %10.0f\n", i+1, r.WeeklyFlows[i], r.WeeklyWebVisits[i])
	}
	fmt.Fprintf(&sb, "week 4 vs week 2: traffic %.2fx, human interest %.2fx\n",
		r.TrendRatio, r.InterestTrendRatio)
	sb.WriteString("(traffic keeps growing with installs and key-package volume while human\n")
	sb.WriteString(" interest — website visits — fades with media attention)\n")
	fmt.Fprintf(&sb, "weekday vs weekend daily flows: %.2fx\n", r.WeekdayWeekendRatio)
	return sb.String()
}

// RenderDNS renders T5.
func RenderDNS(t DNSTable) string {
	var sb strings.Builder
	sb.WriteString("DNS methodology (T5)\n")
	fmt.Fprintf(&sb, "prefix verification: %d resolvers, %d in-prefix, %d out, %d errors -> confirmed=%v\n",
		t.Verify.Resolvers, t.Verify.InPrefix, t.Verify.OutOfPrefix, t.Verify.Errors, t.Verify.Confirmed())
	fmt.Fprintf(&sb, "API name listed in top-1M on: %v (paper: Jun 24, 27, Jul 8, 10-11)\n", t.APIListed)
	fmt.Fprintf(&sb, "website listed on: %v (paper: never)\n", t.WebListed)
	return sb.String()
}

// RenderSampling renders A1.
func RenderSampling(points []SamplingPoint) string {
	var sb strings.Builder
	sb.WriteString("Sampling ablation (A1) — paper: sampling + cache eviction leave few packets per flow\n")
	sb.WriteString("rate   keptFlows  meanPkts/flow  1-pkt share  presence p50/p75 (paper 0.67/0.80)\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "1:%-4d %9d  %13.2f  %11.2f  %.2f / %.2f\n",
			p.SampleRate, p.KeptFlows, p.MeanPktsPerFlow, p.SinglePacketShare,
			p.MedianPresence, p.P75Presence)
	}
	return sb.String()
}

// RenderBug renders A3.
func RenderBug(points []BugPoint) string {
	var sb strings.Builder
	sb.WriteString("Background-restriction ablation (A3) — paper: bug prevented daily downloads on some phones\n")
	sb.WriteString("bugShare  syncs/device/day  keptFlows\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%8.2f  %16.2f  %9d\n", p.BugShare, p.SyncsPerDeviceDay, p.KeptFlows)
	}
	return sb.String()
}

// RenderCentralized renders A2.
func RenderCentralized(c *centralized.Comparison) string {
	var sb strings.Builder
	sb.WriteString("Architecture ablation (A2) — centralized baseline vs decentralized CWA design\n")
	fmt.Fprintf(&sb, "                       server->client bytes  client->server bytes  contact pairs revealed  notified users identified\n")
	fmt.Fprintf(&sb, "centralized   %24d %21d %23d %26d\n",
		c.Centralized.ServerBytesDown, c.Centralized.ServerBytesUp,
		c.Centralized.ContactPairsRevealed, c.Centralized.NotifiedIdentified)
	fmt.Fprintf(&sb, "decentralized %24d %21d %23d %26d\n",
		c.Decentralized.ServerBytesDown, c.Decentralized.ServerBytesUp,
		c.Decentralized.ContactPairsRevealed, c.Decentralized.NotifiedIdentified)
	fmt.Fprintf(&sb, "decentralized downstream cost factor: %.0fx — the privacy price the CWA design pays in traffic\n",
		c.DownloadFactor)
	return sb.String()
}

// RenderAdoption renders T3.
func RenderAdoption(t AdoptionTable) string {
	var sb strings.Builder
	sb.WriteString("Adoption anchors (T3)\n")
	fmt.Fprintf(&sb, "downloads 36h after release: %.1fM (paper: 6.4M)\n", t.DownloadsAt36h/1e6)
	fmt.Fprintf(&sb, "downloads by July 24:        %.1fM (paper: 16.2M)\n", t.DownloadsJul24/1e6)
	fmt.Fprintf(&sb, "release-day flow increase:   %.1fx (paper: 7.5x)\n", t.ReleaseDayFlowRatio)
	return sb.String()
}

// RenderFirstKeys renders T6.
func RenderFirstKeys(t FirstKeysTable) string {
	var sb strings.Builder
	sb.WriteString("First diagnosis keys (T6)\n")
	fmt.Fprintf(&sb, "first package day: %s (paper: 2020-06-23)\n", t.FirstDay)
	fmt.Fprintf(&sb, "uploads in window: %d, keys per day: %v\n", t.Uploads, t.KeysByDay)
	return sb.String()
}
