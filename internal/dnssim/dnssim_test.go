package dnssim

import (
	"testing"

	"cwatrace/internal/adoption"
	"cwatrace/internal/entime"
	"cwatrace/internal/netsim"
)

func TestNewFleetValidation(t *testing.T) {
	if _, err := NewFleet(0, 0, 1); err == nil {
		t.Error("zero resolvers must fail")
	}
	if _, err := NewFleet(10, -0.1, 1); err == nil {
		t.Error("negative broken share must fail")
	}
	if _, err := NewFleet(10, 1.1, 1); err == nil {
		t.Error("broken share > 1 must fail")
	}
}

func TestVerifyPrefixesHealthyFleet(t *testing.T) {
	f, err := NewFleet(10_000, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{APIName, WebsiteName} {
		res := f.VerifyPrefixes(name)
		if res.Resolvers != 10_000 || res.InPrefix != 10_000 {
			t.Fatalf("%s: %+v", name, res)
		}
		if !res.Confirmed() {
			t.Fatalf("%s not confirmed by a healthy fleet", name)
		}
	}
}

func TestVerifyPrefixesWithBrokenResolvers(t *testing.T) {
	f, err := NewFleet(10_000, 0.05, 43)
	if err != nil {
		t.Fatal(err)
	}
	res := f.VerifyPrefixes(APIName)
	if !res.Confirmed() {
		t.Fatalf("5%% broken resolvers must not defeat verification: %+v", res)
	}
	if res.OutOfPrefix == 0 {
		t.Fatal("broken resolvers should produce out-of-prefix answers")
	}
	if res.InPrefix+res.OutOfPrefix+res.Errors != res.Resolvers {
		t.Fatalf("counts do not add up: %+v", res)
	}
}

func TestVerifyPrefixesMajorityBrokenFails(t *testing.T) {
	f, err := NewFleet(1000, 0.5, 44)
	if err != nil {
		t.Fatal(err)
	}
	if res := f.VerifyPrefixes(APIName); res.Confirmed() {
		t.Fatalf("half-broken fleet should not confirm: %+v", res)
	}
}

func TestResolveUnknownName(t *testing.T) {
	f, err := NewFleet(10, 0, 45)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Resolve(Resolver{ID: 1}, "unknown.example"); err == nil {
		t.Fatal("unknown name must NXDOMAIN")
	}
}

func TestResolveAnswersInsidePrefixes(t *testing.T) {
	f, err := NewFleet(100, 0, 46)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := f.Resolve(Resolver{ID: 3}, APIName)
	if err != nil {
		t.Fatal(err)
	}
	if !netsim.IsCWAServer(addr) {
		t.Fatalf("API resolved outside hosting prefixes: %s", addr)
	}
}

func TestTopListCutoff(t *testing.T) {
	tl := DefaultTopList()
	cut := tl.CutoffVolume()
	if !tl.Appears(cut * 2) {
		t.Fatal("volume above cutoff must appear")
	}
	if tl.Appears(cut / 2) {
		t.Fatal("volume below cutoff must not appear")
	}
}

func TestTopListRankMonotone(t *testing.T) {
	tl := DefaultTopList()
	cut := tl.CutoffVolume()
	r1, ok1 := tl.Rank(cut * 100)
	r2, ok2 := tl.Rank(cut * 2)
	if !ok1 || !ok2 {
		t.Fatal("both volumes must rank")
	}
	if r1 >= r2 {
		t.Fatalf("more queries must rank better: %d vs %d", r1, r2)
	}
	if _, ok := tl.Rank(cut / 10); ok {
		t.Fatal("sub-cutoff volume must not rank")
	}
	if r, _ := tl.Rank(tl.TopVolume * 10); r != 1 {
		t.Fatalf("huge volume must rank 1, got %d", r)
	}
}

// TestAPIListedWebsiteNever reproduces the paper's T5 observation: across
// the study window the API name crosses the top-list cut on some (late)
// days while the website never does.
func TestAPIListedWebsiteNever(t *testing.T) {
	api, web := QueryVolumes(adoption.DefaultCurve(), adoption.DefaultAttention(), entime.StudyDays())
	obs := DefaultTopList().ObserveWindow(api, web)
	apiDays, webDays := ListedDays(obs)
	if len(apiDays) == 0 {
		t.Fatal("API name never listed; paper sees it on several days")
	}
	if len(webDays) != 0 {
		t.Fatalf("website listed on %v; paper: never", webDays)
	}
	// The API should not be listed before the app has meaningful
	// adoption (paper: first appearance June 24).
	if obs[0].APIListed {
		t.Fatal("API listed on June 15, before release")
	}
	last := obs[len(obs)-1]
	if !last.APIListed {
		t.Fatal("API not listed at the end of the window despite millions of installs")
	}
	if last.APIRank < 1 || last.APIRank > DefaultTopList().ListSize {
		t.Fatalf("API rank %d out of range", last.APIRank)
	}
}

func TestQueryVolumesShape(t *testing.T) {
	api, web := QueryVolumes(adoption.DefaultCurve(), adoption.DefaultAttention(), entime.StudyDays())
	if len(api) != entime.StudyDays() || len(web) != entime.StudyDays() {
		t.Fatal("length mismatch")
	}
	// API volume grows with installs.
	if api[10] <= api[1] {
		t.Fatalf("API volume must grow: day1=%f day10=%f", api[1], api[10])
	}
	// Website volume peaks at release, then decays (with a June-23 echo).
	if web[1] <= web[0] {
		t.Fatalf("website volume must spike at release: %f -> %f", web[0], web[1])
	}
	if web[6] >= web[1] {
		t.Fatalf("website volume must decay after release: day1=%f day6=%f", web[1], web[6])
	}
	// By late window the API clearly dominates the website in queries.
	if api[10] < web[10]*3 {
		t.Fatalf("API (%0.f) should dominate website (%0.f) by June 25", api[10], web[10])
	}
}

func TestObserveWindowLengthClamps(t *testing.T) {
	obs := DefaultTopList().ObserveWindow([]float64{1, 2, 3}, []float64{1})
	if len(obs) != 1 {
		t.Fatalf("observe must clamp to shortest series, got %d", len(obs))
	}
}
