package dnssim

import (
	"time"

	"cwatrace/internal/adoption"
	"cwatrace/internal/entime"
)

// QueryVolumes derives the daily DNS query volumes of the two CWA names
// from the adoption model, in real-world units.
//
// The API name is resolved by every installed app roughly once per day
// (before the daily key download); DNS caching at recursive resolvers
// de-duplicates some of it. The website name is resolved per human visit,
// which is orders of magnitude rarer. This asymmetry is exactly why the
// paper finds the API "to be more popular than website visits in OpenDNS".
func QueryVolumes(curve *adoption.Curve, att adoption.Attention, days int) (api, web []float64) {
	const (
		// apiQueriesPerInstall is the effective daily observed queries
		// per installed device after resolver caching and the list
		// builder's limited vantage (only a share of users send queries
		// it can see).
		apiQueriesPerInstall = 0.1
		// webVisitsAtAttention1 is the daily nation-wide website visit
		// volume at attention level 1.
		webVisitsAtAttention1 = 180_000
		// webCacheFactor de-duplicates website lookups at resolvers.
		webCacheFactor = 0.4
	)
	api = make([]float64, days)
	web = make([]float64, days)
	for d := 0; d < days; d++ {
		dayStart := entime.StudyStart.AddDate(0, 0, d)
		installed := curve.Cumulative(dayStart.Add(24 * time.Hour))
		api[d] = installed * apiQueriesPerInstall
		web[d] = webVisitsAtAttention1 * att.At(dayStart.Add(12*time.Hour)) * webCacheFactor
	}
	return api, web
}
