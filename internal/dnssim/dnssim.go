// Package dnssim reproduces the paper's DNS-based methodology checks:
//
//   - Prefix verification: "We verified their usage by resolving the API
//     and web site DNS names (obtained from the app source code) against
//     10k open DNS resolvers from public-dns.info." A fleet of simulated
//     open resolvers answers the CWA names with addresses inside (or, for
//     a configurable misbehaving share, outside) the hosting prefixes.
//   - Top-list observation: "the CWA API DNS name appeared in the Umbrella
//     Top 1M domains on June 24, 27, ... while the website never
//     appeared." An Umbrella-style list ranks names by resolver query
//     volume; because every app instance hits the API daily while website
//     visits are comparatively rare, the API name crosses the 1M cut on
//     high-traffic days and the website does not.
package dnssim

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"cwatrace/internal/entime"
	"cwatrace/internal/netsim"
)

// The DNS names of the hosting infrastructure, as found in the app source.
const (
	APIName     = "svc90.main.px.t-online.de"
	WebsiteName = "www.coronawarn.app"
)

// Resolver is one simulated open resolver.
type Resolver struct {
	ID int
	// Broken resolvers return wrong answers (NXDOMAIN-hijacking,
	// middleboxes) — a real-world property of open-resolver scans.
	Broken bool
}

// Fleet is a set of open resolvers, as harvested from public-dns.info.
type Fleet struct {
	resolvers []Resolver
	rng       *rand.Rand
}

// NewFleet creates n resolvers of which brokenShare return garbage.
func NewFleet(n int, brokenShare float64, seed int64) (*Fleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dnssim: need at least one resolver")
	}
	if brokenShare < 0 || brokenShare > 1 {
		return nil, fmt.Errorf("dnssim: broken share %f out of range", brokenShare)
	}
	rng := rand.New(rand.NewSource(seed))
	f := &Fleet{rng: rng}
	for i := 0; i < n; i++ {
		f.resolvers = append(f.resolvers, Resolver{ID: i, Broken: rng.Float64() < brokenShare})
	}
	return f, nil
}

// Size returns the fleet size.
func (f *Fleet) Size() int { return len(f.resolvers) }

// Resolve asks one resolver for a name. Healthy resolvers return a correct
// address: API names resolve into the submission/CDN prefixes, the website
// into the CDN prefix. Broken resolvers return an unrelated address.
func (f *Fleet) Resolve(r Resolver, name string) (netip.Addr, error) {
	if r.Broken {
		return netip.AddrFrom4([4]byte{
			byte(10 + f.rng.Intn(200)), byte(f.rng.Intn(256)),
			byte(f.rng.Intn(256)), byte(1 + f.rng.Intn(250)),
		}), nil
	}
	switch name {
	case APIName:
		return netsim.CDNAddr(r.ID), nil
	case WebsiteName:
		return netsim.CDNAddr(r.ID + 7), nil
	default:
		return netip.Addr{}, fmt.Errorf("dnssim: NXDOMAIN for %q", name)
	}
}

// VerifyResult summarizes a prefix-verification sweep.
type VerifyResult struct {
	Resolvers int
	// InPrefix counts answers inside the documented hosting prefixes.
	InPrefix int
	// OutOfPrefix counts answers elsewhere (broken resolvers).
	OutOfPrefix int
	// Errors counts failed resolutions.
	Errors int
}

// Confirmed reports whether the sweep confirms the prefixes: a strong
// majority of resolvers must agree.
func (v VerifyResult) Confirmed() bool {
	return v.Resolvers > 0 && float64(v.InPrefix) >= 0.9*float64(v.Resolvers)
}

// VerifyPrefixes runs the paper's check for one name across the fleet.
func (f *Fleet) VerifyPrefixes(name string) VerifyResult {
	res := VerifyResult{Resolvers: len(f.resolvers)}
	for _, r := range f.resolvers {
		addr, err := f.Resolve(r, name)
		if err != nil {
			res.Errors++
			continue
		}
		if netsim.IsCWAServer(addr) {
			res.InPrefix++
		} else {
			res.OutOfPrefix++
		}
	}
	return res
}

// TopList models an Umbrella-style popularity list: domains ranked by
// daily resolver query volume, cut off at ListSize.
type TopList struct {
	// ListSize is the cut (1M for the Umbrella list).
	ListSize int
	// BaseVolumes maps the background internet's rank r to query volume;
	// modelled as Zipf: volume(rank) = TopVolume / rank^alpha.
	TopVolume float64
	Alpha     float64
}

// DefaultTopList matches the reproduction's calibration: the 1M cut of the
// Umbrella list with a Zipf tail placing the cutoff at ~1.15M observed
// queries/day. The absolute numbers are modelling constants chosen so that
// the API name crosses the cut only once adoption exceeds ~11M installs
// (late study window, as in the paper) while the website's peak stays
// below it.
func DefaultTopList() TopList {
	return TopList{ListSize: 1_000_000, TopVolume: 1.82e10, Alpha: 0.7}
}

// CutoffVolume is the query volume of the last listed rank: a domain
// appears on the list when its daily volume exceeds this.
func (tl TopList) CutoffVolume() float64 {
	return tl.TopVolume / pow(float64(tl.ListSize), tl.Alpha)
}

// Appears reports whether a domain with the given daily query volume makes
// the list.
func (tl TopList) Appears(dailyQueries float64) bool {
	return dailyQueries > tl.CutoffVolume()
}

// Rank estimates the list rank of a domain with the given volume (1-based);
// ok is false if it misses the cut.
func (tl TopList) Rank(dailyQueries float64) (rank int, ok bool) {
	if !tl.Appears(dailyQueries) {
		return 0, false
	}
	// Invert the Zipf curve: rank = (TopVolume/volume)^(1/alpha).
	r := pow(tl.TopVolume/dailyQueries, 1/tl.Alpha)
	rank = int(r)
	if rank < 1 {
		rank = 1
	}
	if rank > tl.ListSize {
		rank = tl.ListSize
	}
	return rank, true
}

// DayObservation is one day's top-list outcome for both CWA names.
type DayObservation struct {
	Day        time.Time
	APIQueries float64
	WebQueries float64
	APIListed  bool
	APIRank    int
	WebListed  bool
	WebRank    int
}

// ObserveWindow runs the top-list check across the study window given
// daily query-volume series for the API and website names (index 0 = study
// start). Volumes are in the list builder's real-world units (queries/day).
func (tl TopList) ObserveWindow(apiDaily, webDaily []float64) []DayObservation {
	n := len(apiDaily)
	if len(webDaily) < n {
		n = len(webDaily)
	}
	out := make([]DayObservation, n)
	for d := 0; d < n; d++ {
		o := DayObservation{
			Day:        entime.StudyStart.AddDate(0, 0, d),
			APIQueries: apiDaily[d],
			WebQueries: webDaily[d],
		}
		o.APIListed = tl.Appears(o.APIQueries)
		if o.APIListed {
			o.APIRank, _ = tl.Rank(o.APIQueries)
		}
		o.WebListed = tl.Appears(o.WebQueries)
		if o.WebListed {
			o.WebRank, _ = tl.Rank(o.WebQueries)
		}
		out[d] = o
	}
	return out
}

// ListedDays extracts the day labels on which the API name was listed.
func ListedDays(obs []DayObservation) (api, web []string) {
	for _, o := range obs {
		if o.APIListed {
			api = append(api, o.Day.Format("Jan 02"))
		}
		if o.WebListed {
			web = append(web, o.Day.Format("Jan 02"))
		}
	}
	sort.Strings(api)
	sort.Strings(web)
	return api, web
}

func pow(x, y float64) float64 { return math.Pow(x, y) }
