// The query-router half of the package: Fleet gathers every shard's
// full API response over the typed client, reconstructs per-shard
// streaming state with streaming.FromSnapshot, folds it with the
// commutative Merge, and composes the per-shard strong ETags into one
// cluster-wide validator. It implements api.Fanout, so cmd/queryrouterd
// is just api.New(Config{Fanout: fleet}).
package cluster

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"cwatrace/internal/api"
	"cwatrace/internal/api/client"
	v1 "cwatrace/internal/api/v1"
	"cwatrace/internal/obs"
	"cwatrace/internal/store"
	"cwatrace/internal/streaming"
	"cwatrace/internal/tier"
)

// Options tune a Fleet; the zero value is usable.
type Options struct {
	// TopK bounds the merged prefix leaderboard. It must match the
	// shard nodes' own top-K for the cluster to be byte-identical to a
	// union collector (default 10, the collectord default).
	TopK int
	// Timeout bounds each per-shard request (default 10s).
	Timeout time.Duration
	// ClientOptions override the per-shard client settings (retries,
	// backoff, transport); nil uses the client defaults.
	ClientOptions *client.Options
	// Metrics registers the fleet's instruments (per-shard fan-out
	// latency, error counters, watermarks) on the registry; nil disables
	// instrumentation.
	Metrics *obs.Registry
	// Events, when set, receives shard_dead/shard_recovered flight-
	// recorder events on reachability transitions (recorded once per
	// transition, not per failed request); nil disables them.
	Events *obs.EventRing
}

// Fleet fans requests out over the shard nodes of one cluster. It is
// stateless between requests (the clients' ETag caches are the only
// memory) and safe for concurrent use.
type Fleet struct {
	nodes   []string
	clients []*client.Client
	topK    int
	timeout time.Duration
	nonce   uint64
	m       fleetMetrics
	events  *obs.EventRing
	// down tracks per-shard reachability purely for event edges: a
	// shard_dead event fires on the first failure, shard_recovered on
	// the first success after failures.
	down []atomic.Bool
}

// New builds a Fleet over the shard nodes, in shard order: nodes[i]
// serves shard i of len(nodes).
func New(nodes []string, opts Options) (*Fleet, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	f := &Fleet{
		nodes:   append([]string(nil), nodes...),
		topK:    opts.TopK,
		timeout: opts.Timeout,
		events:  opts.Events,
		down:    make([]atomic.Bool, len(nodes)),
	}
	if f.topK <= 0 {
		f.topK = 10
	}
	if f.timeout <= 0 {
		f.timeout = 10 * time.Second
	}
	for _, n := range nodes {
		c, err := client.New(n, opts.ClientOptions)
		if err != nil {
			return nil, err
		}
		f.clients = append(f.clients, c)
	}
	// The boot-nonce substitute: a pure function of the node list, so a
	// router restart — or a second router fronting the same fleet —
	// emits interchangeable validators. (A single node's API seeds its
	// ETags with a per-process boot nonce instead; the router does not
	// need one because its validators already churn with the shards'.)
	h := fnv.New64a()
	h.Write([]byte("cwatrace/cluster:"))
	for _, n := range nodes {
		h.Write([]byte(n))
		h.Write([]byte{'\n'})
	}
	f.nonce = h.Sum64()
	f.m.register(opts.Metrics, len(f.clients))
	return f, nil
}

// NumShards implements api.Fanout.
func (f *Fleet) NumShards() int { return len(f.clients) }

// Nonce implements api.Fanout.
func (f *Fleet) Nonce() uint64 { return f.nonce }

// Nodes reports the shard addresses, in shard order.
func (f *Fleet) Nodes() []string { return append([]string(nil), f.nodes...) }

// eachShard runs fn against every shard concurrently, each under the
// per-shard timeout, and reports the shards that failed (ascending)
// plus every shard's request duration (in shard order). Each duration
// feeds the per-shard latency histogram; failures bump the per-shard
// error counter.
func (f *Fleet) eachShard(ctx context.Context, fn func(ctx context.Context, i int, c *client.Client) error) ([]api.ShardError, []api.ShardTiming) {
	errs := make([]error, len(f.clients))
	timings := make([]api.ShardTiming, len(f.clients))
	var wg sync.WaitGroup
	for i, c := range f.clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, f.timeout)
			defer cancel()
			// One child span per shard RPC, on the context the client
			// propagates — its span id rides to the shard as
			// X-Trace-Parent, linking the shard's root span under this
			// one in the merged cross-process tree. Free when the request
			// carries no active trace.
			sctx, sp := obs.StartSpan(cctx, "fanout.shard")
			sp.Set(obs.Int("shard", int64(i)), obs.Str("node", f.nodes[i]))
			t0 := time.Now()
			errs[i] = fn(sctx, i, c)
			d := time.Since(t0)
			sp.Fail(errs[i])
			sp.End()
			timings[i] = api.ShardTiming{Shard: i, Node: f.nodes[i], D: d}
			f.m.observeShard(i, d, errs[i] != nil)
			f.noteShard(i, errs[i])
		}(i, c)
	}
	wg.Wait()
	var missing []api.ShardError
	for i, err := range errs {
		if err != nil {
			missing = append(missing, api.ShardError{Shard: i, Node: f.nodes[i], Err: err.Error()})
		}
	}
	f.m.observeFanout(len(missing) > 0)
	return missing, timings
}

// noteShard records the reachability edge events: shard_dead on the
// first failure after successes, shard_recovered on the first success
// after failures. The atomic swap makes each transition fire exactly
// once even under concurrent fan-outs.
func (f *Fleet) noteShard(i int, err error) {
	if err != nil {
		if !f.down[i].Swap(true) {
			f.events.Record("shard_dead", "shard stopped answering",
				obs.Int("shard", int64(i)), obs.Str("node", f.nodes[i]), obs.Str("err", err.Error()))
		}
		return
	}
	if f.down[i].Swap(false) {
		f.events.Record("shard_recovered", "shard answering again",
			obs.Int("shard", int64(i)), obs.Str("node", f.nodes[i]))
	}
}

// part is one shard's contribution to a data fan-out.
type part struct {
	snap         *v1.Snapshot
	etag         string
	frames       int
	tailIncluded bool
	// resolution/longHorizon carry the shard's long-horizon block for
	// day/week-resolution query fan-outs (empty on the exact path).
	resolution  string
	longHorizon *tier.Answer
}

// districtName is a shard-rendered district label, keyed by district id
// in the merge's name map.
type districtName struct{ name, state string }

// fullFields requests everything untruncated — the merge needs complete
// per-shard state; field selection and top-K truncation are re-applied
// by the router's own renderer.
var fullFields = &client.ReqOpts{Fields: v1.AllFields, Top: 0}

// Snapshot implements api.Fanout.
func (f *Fleet) Snapshot(ctx context.Context) (*api.FanResult, error) {
	parts := make([]*part, len(f.clients))
	missing, timings := f.eachShard(ctx, func(ctx context.Context, i int, c *client.Client) error {
		snap, etag, err := c.SnapshotTag(ctx, fullFields)
		if err != nil {
			return err
		}
		parts[i] = &part{snap: snap, etag: etag}
		return nil
	})
	return f.merge(parts, missing, timings, time.Time{}, time.Time{})
}

// Query implements api.Fanout. res is forwarded to every shard
// verbatim; each durable shard answers from its own tiers and the
// carried sketch state merges here (estimates cannot be summed across
// shards, sketches can).
func (f *Fleet) Query(ctx context.Context, from, to time.Time, res tier.Resolution) (*api.FanResult, error) {
	opts := *fullFields
	if res != "" && res != tier.ResolutionHour {
		opts.Resolution = string(res)
	}
	parts := make([]*part, len(f.clients))
	missing, timings := f.eachShard(ctx, func(ctx context.Context, i int, c *client.Client) error {
		resp, etag, err := c.QueryTag(ctx, from, to, &opts)
		if err != nil {
			return err
		}
		if resp.Snapshot == nil {
			return fmt.Errorf("cluster: shard query returned no snapshot")
		}
		parts[i] = &part{
			snap:         resp.Snapshot,
			etag:         etag,
			frames:       resp.Frames,
			tailIncluded: resp.TailIncluded,
			resolution:   resp.Resolution,
			longHorizon:  resp.LongHorizon,
		}
		return nil
	})
	return f.merge(parts, missing, timings, from, to)
}

// merge folds the gathered parts into one FanResult. The range bounds
// re-trim the merged hour series for queries (FromSnapshot reconstructs
// zero-gap hours as populated-empty bins; a fresh SnapshotRange drops
// the ones outside every shard's actual range, exactly as the union
// collector's own query path would).
func (f *Fleet) merge(parts []*part, missing []api.ShardError, timings []api.ShardTiming, from, to time.Time) (*api.FanResult, error) {
	res := &api.FanResult{Missing: missing, Timings: timings}
	var (
		m      *streaming.Analytics
		origin time.Time
		names  map[string]districtName
		etags  = make([]string, len(parts))
		tagged int
	)
	for i, p := range parts {
		if p == nil {
			continue
		}
		etags[i] = p.etag
		if p.etag != "" {
			tagged++
		}
		res.Frames += p.frames
		res.TailIncluded = res.TailIncluded || p.tailIncluded
		if m == nil {
			origin = p.snap.Origin
			m = streaming.New(streaming.Config{
				Origin:      origin,
				WindowHours: p.snap.WindowHours,
				TopK:        f.topK,
			})
			names = make(map[string]districtName)
		} else if !p.snap.Origin.Equal(origin) {
			return nil, fmt.Errorf("cluster: shard %d origin %s differs from fleet origin %s",
				i, p.snap.Origin, origin)
		}
		for _, dc := range p.snap.Districts {
			if dc.Name != "" || dc.StateCode != "" {
				names[dc.ID] = districtName{dc.Name, dc.StateCode}
			}
		}
		m.Merge(streaming.FromSnapshot(p.snap.Streaming()))
	}
	if m == nil {
		return res, nil // every shard missing; the handler turns this into 503
	}
	snap := m.SnapshotRange(from, to)
	// The merged analytics carries no geo model; re-attach the district
	// names the shards rendered.
	for i := range snap.Districts {
		if e, ok := names[snap.Districts[i].ID]; ok {
			snap.Districts[i].Name = e.name
			snap.Districts[i].StateCode = e.state
		}
	}
	res.Snapshot = snap
	if err := f.mergeLongHorizon(res, parts, origin, names); err != nil {
		return nil, err
	}
	res.Version = composeVersion(etags)
	res.Validated = len(missing) == 0 && tagged == len(parts)
	return res, nil
}

// mergeLongHorizon folds the shards' long-horizon answers into one. The
// answering shards must agree on the effective resolution — with a
// concrete day/week request they always do; an auto request against a
// fleet whose shards hold very different history spans can disagree,
// and a mixed-resolution merge would silently sum day buckets into week
// buckets, so it is an error instead. Sketch state merges through
// tier.Builder.MergeAnswer; corrupt sketch bytes from a shard fail the
// fan-out rather than merging garbage.
func (f *Fleet) mergeLongHorizon(res *api.FanResult, parts []*part, origin time.Time, names map[string]districtName) error {
	resolution := ""
	any := false
	for i, p := range parts {
		if p == nil {
			continue
		}
		if !any {
			resolution = p.resolution
			any = true
		} else if p.resolution != resolution {
			return fmt.Errorf("cluster: shard %d answered at resolution %q, fleet at %q (retry with an explicit resolution)",
				i, p.resolution, resolution)
		}
	}
	if !any || resolution == "" {
		return nil // exact hourly path: no long-horizon block to merge
	}
	b := tier.NewBuilder(tier.Resolution(resolution), origin)
	for i, p := range parts {
		if p == nil {
			continue
		}
		if p.longHorizon == nil {
			return fmt.Errorf("cluster: shard %d answered at resolution %q without a long-horizon block", i, resolution)
		}
		if err := b.MergeAnswer(p.longHorizon); err != nil {
			return fmt.Errorf("cluster: shard %d long-horizon sketches: %w", i, err)
		}
	}
	ans := b.Answer()
	// The builder carries no geo model; re-attach the names the shards
	// rendered, same as the merged snapshot's districts.
	for i := range ans.Districts {
		if e, ok := names[ans.Districts[i].ID]; ok {
			ans.Districts[i].Name = e.name
			ans.Districts[i].StateCode = e.state
		}
	}
	res.Resolution = resolution
	res.LongHorizon = ans
	return nil
}

// composeVersion hashes the per-shard strong ETags, in shard order,
// into the cluster-wide validator token. Any shard's ETag changing —
// new data, a checkpoint bumping its store version, a node restart —
// changes the composite, so the router's 304s are exactly as strong as
// every shard's.
func composeVersion(etags []string) uint64 {
	h := fnv.New64a()
	for i, e := range etags {
		fmt.Fprintf(h, "%d:%s;", i, e)
	}
	return h.Sum64()
}

// Stats implements api.Fanout: the field-wise sum over the reachable
// shards. Store gauges are summed only when every reachable shard is
// durable (a mixed fleet's partial store sum would be misleading);
// LastCheckpoint is the newest across the fleet.
func (f *Fleet) Stats(ctx context.Context) (*api.FanStats, error) {
	resps := make([]*v1.StatsResponse, len(f.clients))
	missing, _ := f.eachShard(ctx, func(ctx context.Context, i int, c *client.Client) error {
		resp, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		resps[i] = resp
		return nil
	})
	out := &api.FanStats{Missing: missing}
	allDurable := true
	sawAny := false
	var sum store.Metrics
	// The watermark is the one counter that must NOT be summed: the
	// fleet's freshness is the minimum over its shards — the cluster has
	// the data up to t only when every shard does.
	shardWm := make([]int64, len(resps))
	fleetWm := int64(0)
	for i, resp := range resps {
		if resp == nil {
			continue
		}
		shardWm[i] = resp.Ingest.WatermarkUnixNano
		if !sawAny || resp.Ingest.WatermarkUnixNano < fleetWm {
			fleetWm = resp.Ingest.WatermarkUnixNano
		}
		sawAny = true
		s := &out.Ingest
		in := resp.Ingest
		s.Packets += in.Packets
		s.Records += in.Records
		s.DecodeErrors += in.DecodeErrors
		s.Processed += in.Processed
		s.DroppedRecords += in.DroppedRecords
		s.DroppedBatches += in.DroppedBatches
		s.ShardFiltered += in.ShardFiltered
		s.SocketErrors += in.SocketErrors
		s.SinkErrors += in.SinkErrors
		s.Sources += in.Sources
		s.SeqGaps += in.SeqGaps
		s.SeqLost += in.SeqLost
		s.SeqReordered += in.SeqReordered
		if resp.Store == nil {
			allDurable = false
			continue
		}
		sum.Segments += resp.Store.Segments
		sum.WALBytes += resp.Store.WALBytes
		sum.Frames += resp.Store.Frames
		sum.FrameRecords += resp.Store.FrameRecords
		sum.TailRecords += resp.Store.TailRecords
		sum.AppendedRecords += resp.Store.AppendedRecords
		sum.AppendedBatches += resp.Store.AppendedBatches
		sum.RecoveredFrames += resp.Store.RecoveredFrames
		sum.RecoveredWALRecords += resp.Store.RecoveredWALRecords
		sum.TruncatedBytes += resp.Store.TruncatedBytes
		sum.Checkpoints += resp.Store.Checkpoints
		sum.CompactedFrames += resp.Store.CompactedFrames
		sum.TierFramesDay += resp.Store.TierFramesDay
		sum.TierFramesWeek += resp.Store.TierFramesWeek
		sum.TierFolds += resp.Store.TierFolds
		if resp.Store.LastCheckpoint.After(sum.LastCheckpoint) {
			sum.LastCheckpoint = resp.Store.LastCheckpoint
		}
	}
	out.Ingest.WatermarkUnixNano = fleetWm
	f.m.setWatermarks(shardWm, fleetWm)
	if sawAny && allDurable {
		out.Store = &sum
	}
	return out, nil
}

// Health implements api.Fanout: every shard that is unreachable or not
// reporting StatusOK.
func (f *Fleet) Health(ctx context.Context) []api.ShardError {
	missing, _ := f.eachShard(ctx, func(ctx context.Context, i int, c *client.Client) error {
		h, err := c.Health(ctx)
		if err != nil {
			return err
		}
		if h.Status != v1.StatusOK {
			return fmt.Errorf("status %q", h.Status)
		}
		return nil
	})
	return missing
}
