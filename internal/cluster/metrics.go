// The router's metric catalogue: per-shard fan-out latency and error
// counters (labeled by shard index — a closed vocabulary fixed at boot,
// one series per node), fan-out totals, and the freshness watermarks
// gathered from shard stats. The fleet watermark is the MINIMUM over
// the shards, never a sum: the cluster is only as fresh as its stalest
// shard, and an aggregate that averaged or summed would hide exactly
// the lagging node an operator needs to find.
package cluster

import (
	"strconv"
	"time"

	"cwatrace/internal/obs"
)

// fleetMetrics holds a Fleet's instruments. The zero value (nil slices,
// nil instruments) is the disabled mode; every method is no-op safe.
type fleetMetrics struct {
	fanouts  *obs.Counter
	degraded *obs.Counter

	// Indexed by shard; nil when uninstrumented.
	shardSeconds   []*obs.Histogram
	shardErrors    []*obs.Counter
	shardWatermark []*obs.Gauge

	fleetWatermark *obs.Gauge
}

func (m *fleetMetrics) register(reg *obs.Registry, shards int) {
	if reg == nil {
		return
	}
	m.fanouts = reg.Counter("cluster_fanouts_total",
		"Fan-out gathers started (snapshot, query, stats, or health).")
	m.degraded = reg.Counter("cluster_degraded_fanouts_total",
		"Fan-out gathers that came back with at least one shard missing.")
	m.fleetWatermark = reg.Gauge("cluster_fleet_watermark_timestamp_seconds",
		"Minimum shard ingest watermark (the fleet is as fresh as its stalest shard); 0 until a stats gather succeeds.")
	m.shardSeconds = make([]*obs.Histogram, shards)
	m.shardErrors = make([]*obs.Counter, shards)
	m.shardWatermark = make([]*obs.Gauge, shards)
	for i := 0; i < shards; i++ {
		l := obs.L("shard", strconv.Itoa(i))
		m.shardSeconds[i] = reg.Histogram("cluster_shard_request_seconds",
			"Per-shard fan-out request latency (success or failure).", obs.DurationBuckets, l)
		m.shardErrors[i] = reg.Counter("cluster_shard_errors_total",
			"Per-shard fan-out failures (the shard went missing from a gather).", l)
		m.shardWatermark[i] = reg.Gauge("cluster_shard_watermark_timestamp_seconds",
			"Per-shard ingest watermark from the last stats gather; 0 until one succeeds.", l)
	}
}

// observeShard records one shard's contribution to a gather.
func (m *fleetMetrics) observeShard(i int, d time.Duration, failed bool) {
	if m.shardSeconds == nil {
		return
	}
	m.shardSeconds[i].Observe(d.Seconds())
	if failed {
		m.shardErrors[i].Inc()
	}
}

// observeFanout records one finished gather.
func (m *fleetMetrics) observeFanout(degraded bool) {
	m.fanouts.Inc()
	if degraded {
		m.degraded.Inc()
	}
}

// setWatermarks publishes the per-shard watermarks from a stats gather
// (0 for shards that were missing or have seen no traffic) and the
// fleet minimum over the shards that answered.
func (m *fleetMetrics) setWatermarks(perShard []int64, fleetMin int64) {
	if m.shardWatermark == nil {
		return
	}
	for i, wm := range perShard {
		m.shardWatermark[i].Set(float64(wm) / 1e9)
	}
	m.fleetWatermark.Set(float64(fleetMin) / 1e9)
}
