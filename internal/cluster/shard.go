// Package cluster turns a fleet of shard collectors into one logical
// collector. The partition key is the paper's 401-district model: every
// record whose client address geolocates is owned by its district's
// shard (district index in canonical sorted-ID order, modulo the fleet
// size), and the remainder hash their client /24 onto a shard. The
// partition is total, disjoint and exhaustive — every record has
// exactly one owner — which is what makes the router's scatter-gather
// merge exact: summing the shards' aggregates reproduces the union
// collector's aggregates bit for bit.
//
// The package has two halves: the shard filter (Assignment, Filter)
// that a collectord runs at ingest so each node keeps only its share,
// and the Fleet (fleet.go) that a queryrouterd runs to gather, merge
// and validate the shards' API responses.
package cluster

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"strconv"
	"strings"

	"cwatrace/internal/geo"
	"cwatrace/internal/geodb"
	"cwatrace/internal/netflow"
)

// Assignment is one node's slot in an N-way partition.
type Assignment struct {
	// Index is this node's shard, in [0, Count).
	Index int
	// Count is the fleet size (1 = no sharding).
	Count int
}

// String renders the flag form, "i/N".
func (a Assignment) String() string { return fmt.Sprintf("%d/%d", a.Index, a.Count) }

// ParseAssignment parses the -shard flag form "i/N" (zero-based index,
// fleet size).
func ParseAssignment(s string) (Assignment, error) {
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return Assignment{}, fmt.Errorf("cluster: bad shard %q (want i/N, e.g. 0/3)", s)
	}
	i, err := strconv.Atoi(strings.TrimSpace(is))
	if err != nil {
		return Assignment{}, fmt.Errorf("cluster: bad shard index in %q: %v", s, err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(ns))
	if err != nil {
		return Assignment{}, fmt.Errorf("cluster: bad shard count in %q: %v", s, err)
	}
	if n < 1 {
		return Assignment{}, fmt.Errorf("cluster: shard count %d < 1", n)
	}
	if i < 0 || i >= n {
		return Assignment{}, fmt.Errorf("cluster: shard index %d outside [0, %d)", i, n)
	}
	return Assignment{Index: i, Count: n}, nil
}

// districtIndex is the canonical district ordering the partition keys
// on: position in geo.Germany().Districts(), which every binary
// reconstructs identically from the embedded model.
var districtIndex = func() map[string]int {
	ds := geo.Germany().Districts()
	m := make(map[string]int, len(ds))
	for i, d := range ds {
		m[d.ID] = i
	}
	return m
}()

// Owner resolves the shard that owns record r under an n-way partition.
// A record whose client (Dst) geolocates is owned by its district's
// shard; everything else — unmapped prefixes, malformed addresses — is
// spread by a hash of the client /24 so the partition stays total.
func Owner(r *netflow.Record, db *geodb.DB, n int) int {
	if n <= 1 {
		return 0
	}
	if db != nil {
		if e, ok := db.Locate(r.Key.Dst); ok {
			if di, ok := districtIndex[e.DistrictID]; ok {
				return di % n
			}
		}
	}
	return prefixShard(r.Key.Dst, n)
}

// prefixShard hashes the /24-masked client address onto [0, n).
func prefixShard(addr netip.Addr, n int) int {
	if !addr.IsValid() {
		return 0
	}
	h := fnv.New32a()
	if addr.Is4() {
		b := addr.As4()
		b[3] = 0
		h.Write(b[:])
	} else {
		b := addr.As16()
		h.Write(b[:])
	}
	return int(h.Sum32() % uint32(n))
}

// Filter returns the ingest-side shard filter for assignment a: keep
// exactly the records this node owns. It returns nil when the node owns
// everything (Count <= 1), so an unsharded collectord pays nothing.
func (a Assignment) Filter(db *geodb.DB) func(*netflow.Record) bool {
	if a.Count <= 1 {
		return nil
	}
	idx, n := a.Index, a.Count
	return func(r *netflow.Record) bool {
		return Owner(r, db, n) == idx
	}
}
