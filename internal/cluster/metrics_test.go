package cluster

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"cwatrace/internal/api"
	"cwatrace/internal/entime"
	"cwatrace/internal/ingest"
	"cwatrace/internal/netflow"
	"cwatrace/internal/obs"
	"cwatrace/internal/streaming"

	"net/netip"
)

// stubLive is a fixed-state api.Live source whose stats carry a chosen
// ingest watermark.
type stubLive struct {
	snap  *streaming.Snapshot
	stats ingest.Stats
}

func (s *stubLive) Snapshot() *streaming.Snapshot { return s.snap }
func (s *stubLive) Stats() ingest.Stats           { return s.stats }

// liveNode serves one shard over a stub pipeline reporting watermark wm.
func liveNode(t *testing.T, acfg streaming.Config, wm int64) *httptest.Server {
	t.Helper()
	an := streaming.New(acfg)
	an.Ingest([]netflow.Record{keptRecord(entime.StudyStart, netip.AddrFrom4([4]byte{10, 1, 2, 3}), 100)})
	srv, err := api.New(api.Config{Live: &stubLive{
		snap:  streaming.Collect(acfg, []*streaming.Analytics{an}),
		stats: ingest.Stats{Records: 1, Processed: 1, WatermarkUnixNano: wm},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// lintFleet renders reg and returns the parsed exposition.
func lintFleet(t *testing.T, reg *obs.Registry) *obs.Exposition {
	t.Helper()
	var page strings.Builder
	if err := reg.WritePrometheus(&page); err != nil {
		t.Fatal(err)
	}
	exp, errs := obs.Lint(page.String())
	for _, e := range errs {
		t.Errorf("exposition lint: %v", e)
	}
	return exp
}

func value(t *testing.T, exp *obs.Exposition, name, labels string) float64 {
	t.Helper()
	v, ok := exp.Value(name, labels)
	if !ok {
		t.Fatalf("sample %s%s not found", name, labels)
	}
	return v
}

// TestFleetMetricsAndWatermarks drives fan-outs through an instrumented
// Fleet and checks the per-shard latency/error series and the watermark
// rule: the fleet watermark is the MINIMUM over shards, never a sum.
func TestFleetMetricsAndWatermarks(t *testing.T) {
	acfg := streaming.Config{WindowHours: 48, TopK: 5}
	n0 := liveNode(t, acfg, 100e9) // shard 0 is fresher
	n1 := liveNode(t, acfg, 50e9)  // shard 1 lags

	reg := obs.NewRegistry()
	fleet, err := New([]string{n0.URL, n1.URL}, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	res, err := fleet.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timings) != 2 {
		t.Fatalf("Timings = %v, want one entry per shard", res.Timings)
	}
	for i, tm := range res.Timings {
		if tm.Shard != i || tm.Node == "" || tm.D <= 0 {
			t.Fatalf("timing %d = %+v", i, tm)
		}
	}

	fs, err := fleet.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Ingest.WatermarkUnixNano != 50e9 {
		t.Fatalf("fleet watermark = %d, want the min 50e9 (not a sum)", fs.Ingest.WatermarkUnixNano)
	}
	if fs.Ingest.Records != 2 {
		t.Fatalf("summed records = %d, want 2", fs.Ingest.Records)
	}

	exp := lintFleet(t, reg)
	if got := value(t, exp, "cluster_fanouts_total", ""); got != 2 {
		t.Fatalf("cluster_fanouts_total = %v, want 2", got)
	}
	if got := value(t, exp, "cluster_fleet_watermark_timestamp_seconds", ""); got != 50 {
		t.Fatalf("fleet watermark gauge = %v, want 50", got)
	}
	if got := value(t, exp, "cluster_shard_watermark_timestamp_seconds", `{shard="0"}`); got != 100 {
		t.Fatalf("shard 0 watermark gauge = %v, want 100", got)
	}
	for shard := 0; shard < 2; shard++ {
		labels := `{shard="` + string(rune('0'+shard)) + `"}`
		if got := value(t, exp, "cluster_shard_request_seconds_count", labels); got != 2 {
			t.Fatalf("shard %d request count = %v, want 2", shard, got)
		}
		if got := value(t, exp, "cluster_shard_errors_total", labels); got != 0 {
			t.Fatalf("shard %d errors = %v, want 0", shard, got)
		}
	}

	// Kill shard 1: the next gather is degraded, its errors counter
	// moves, and the shard's watermark gauge drops to 0 (unknown).
	n1.Close()
	if missing := fleet.Health(ctx); len(missing) != 1 || missing[0].Shard != 1 {
		t.Fatalf("Health after kill = %+v, want shard 1 missing", missing)
	}
	if _, err := fleet.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	exp = lintFleet(t, reg)
	if got := value(t, exp, "cluster_degraded_fanouts_total", ""); got < 2 {
		t.Fatalf("cluster_degraded_fanouts_total = %v, want >= 2", got)
	}
	if got := value(t, exp, "cluster_shard_errors_total", `{shard="1"}`); got < 2 {
		t.Fatalf("shard 1 errors = %v, want >= 2", got)
	}
	if got := value(t, exp, "cluster_shard_watermark_timestamp_seconds", `{shard="1"}`); got != 0 {
		t.Fatalf("dead shard 1 watermark gauge = %v, want 0", got)
	}
	if got := value(t, exp, "cluster_fleet_watermark_timestamp_seconds", ""); got != 100 {
		t.Fatalf("fleet watermark with shard 1 down = %v, want the reachable min 100", got)
	}
}
