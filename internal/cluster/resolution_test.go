package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"

	"cwatrace/internal/api"
	v1 "cwatrace/internal/api/v1"
	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
	"cwatrace/internal/store"
	"cwatrace/internal/streaming"
)

// tierCapture synthesizes days whole days of traffic, returned as one
// batch per day so shards can checkpoint at day boundaries and fold day
// tier frames exactly like a long-running capture. Each (day, client)
// pair owns its own /24, so sketch ground truths have closed forms.
func tierCapture(days int) [][]netflow.Record {
	out := make([][]netflow.Record, days)
	for d := 0; d < days; d++ {
		for hh := 0; hh < 3; hh++ {
			at := entime.StudyStart.Add(time.Duration(d*24+hh*8) * time.Hour)
			for c := 0; c < 6; c++ {
				id := d*6 + c
				client := netip.AddrFrom4([4]byte{10, byte(1 + id>>8), byte(id), byte(1 + c)})
				out[d] = append(out[d], keptRecord(at, client, uint64(250+id%40)))
			}
		}
	}
	return out
}

// newTierNode opens a tier-folding store, plays the per-day batches
// with one checkpoint per day, and serves it. The subset function
// filters the capture to the records this shard owns.
func newTierNode(t *testing.T, days int, byDay [][]netflow.Record, owns func(*netflow.Record) bool) *node {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{
		Analytics: streaming.Config{WindowHours: days*24 + 48, TopK: 10},
		Sync:      store.SyncNever,
		Tier:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for _, batch := range byDay {
		var mine []netflow.Record
		for i := range batch {
			if owns(&batch[i]) {
				mine = append(mine, batch[i])
			}
		}
		if len(mine) > 0 {
			if err := st.Append(mine); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := api.New(api.Config{History: st})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &node{st: st, srv: srv, ts: ts}
}

// tierRouter fronts the nodes with a fleet router.
func tierRouter(t *testing.T, nodes []*node) *httptest.Server {
	t.Helper()
	return newRouter(t, nodes, 10)
}

// longHorizonOf fetches a resolution query from base and returns the
// response plus the long-horizon block as a comparable map with the
// tier_frames/raw_frames source counts stripped — those legitimately
// differ across shardings (every shard contributes its own residual
// frames); every aggregate must not.
func longHorizonOf(t *testing.T, base, params string) (*v1.QueryResponse, map[string]any) {
	t.Helper()
	status, _, body := get(t, base+"/api/v1/query?"+params, nil)
	if status != http.StatusOK {
		t.Fatalf("query %s: %d %s", params, status, body)
	}
	var resp v1.QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.LongHorizon == nil {
		t.Fatalf("query %s carried no long-horizon block", params)
	}
	raw, err := json.Marshal(resp.LongHorizon)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "tier_frames")
	delete(m, "raw_frames")
	return &resp, m
}

// TestClusterLongHorizonMerge pins the fan-out contract of the tiered
// path: a router fronting N shards answers a day-resolution query with
// the same long-horizon aggregates as one collector holding the union —
// for every N. Sketch merging is associative and order-invariant, so
// sharding must not move the distinct-prefix estimate or the presence
// quantiles by even one count.
func TestClusterLongHorizonMerge(t *testing.T) {
	const days = 12
	byDay := tierCapture(days)

	var reference map[string]any
	for _, shards := range []int{1, 2, 4} {
		nodes := make([]*node, shards)
		for i := 0; i < shards; i++ {
			i := i
			nodes[i] = newTierNode(t, days, byDay, func(r *netflow.Record) bool {
				return Owner(r, nil, shards) == i
			})
		}
		router := tierRouter(t, nodes)
		resp, got := longHorizonOf(t, router.URL, "resolution=day")
		if resp.Resolution != "day" || !resp.LongHorizon.Approximate {
			t.Fatalf("%d shards: resolution %q approximate=%v", shards, resp.Resolution, resp.LongHorizon.Approximate)
		}
		if shards == 1 {
			reference = got
			// The single-shard merged answer must carry real aggregates.
			if resp.LongHorizon.DistinctPrefixes == 0 || len(resp.LongHorizon.Buckets) == 0 {
				t.Fatalf("reference answer is empty: %+v", resp.LongHorizon)
			}
			continue
		}
		if !reflect.DeepEqual(got, reference) {
			gb, _ := json.Marshal(got)
			rb, _ := json.Marshal(reference)
			t.Fatalf("%d-shard merge diverges from single node:\n got %.500s\nwant %.500s", shards, gb, rb)
		}
	}
}

// TestClusterMixedResolutionRejected pins the failure mode auto
// resolution can hit on a heterogeneous fleet: shards whose history
// spans resolve to different effective resolutions must produce an
// explicit fan-out error — never a silent sum of day buckets into week
// buckets.
func TestClusterMixedResolutionRejected(t *testing.T) {
	// Shard 0 holds 5 days (auto resolves to the exact hourly path),
	// shard 1 holds 12 (auto resolves to day).
	shortDays := tierCapture(5)
	longDays := tierCapture(12)
	all := func(*netflow.Record) bool { return true }
	nodes := []*node{
		newTierNode(t, 5, shortDays, all),
		newTierNode(t, 12, longDays, all),
	}
	router := tierRouter(t, nodes)

	status, _, body := get(t, router.URL+"/api/v1/query?resolution=auto", nil)
	if status != http.StatusInternalServerError {
		t.Fatalf("mixed auto resolutions: %d %s", status, body)
	}
	var env v1.ErrorResponse
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
		t.Fatalf("mixed-resolution failure is not an error envelope: %s", body)
	}
	if !strings.Contains(env.Error.Detail, "resolution") {
		t.Fatalf("error does not name the resolution disagreement: %+v", env.Error)
	}

	// An explicit resolution removes the ambiguity and the same fleet
	// answers.
	status, _, body = get(t, router.URL+"/api/v1/query?resolution=day", nil)
	if status != http.StatusOK {
		t.Fatalf("explicit day resolution on the same fleet: %d %s", status, body)
	}
}
