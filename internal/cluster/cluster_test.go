// The cluster conformance suite: proves that a queryrouterd fronting N
// shard collectors is indistinguishable from one collector holding the
// union — byte-identical bodies for every endpoint and field selection
// (TestClusterByteIdentity), an honest partial-failure envelope when a
// shard dies (TestClusterDegradation), and composite-validator
// semantics that invalidate exactly when a shard's state generation
// moves (TestClusterCompositeETagSemantics).
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"cwatrace/internal/api"
	v1 "cwatrace/internal/api/v1"
	"cwatrace/internal/core"
	"cwatrace/internal/entime"
	"cwatrace/internal/geo"
	"cwatrace/internal/geodb"
	"cwatrace/internal/netflow"
	"cwatrace/internal/store"
	"cwatrace/internal/streaming"
)

// testGeoDB maps one distinct client /24 to every district through the
// router-ground-truth path, so geolocation is exact and deterministic.
func testGeoDB(t *testing.T, model *geo.Model) (*geodb.DB, []netip.Prefix) {
	t.Helper()
	districts := model.Districts()
	infos := make([]geodb.PrefixInfo, len(districts))
	prefixes := make([]netip.Prefix, len(districts))
	for i, d := range districts {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(1 + i>>8), byte(i), 0}), 24)
		infos[i] = geodb.PrefixInfo{Prefix: p, RouterID: fmt.Sprintf("R%03d", i), DistrictID: d.ID, ISPName: "Blau"}
		prefixes[i] = p
	}
	db, err := geodb.Build(model, infos, geodb.Config{PartnerISP: "Blau", Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return db, prefixes
}

// keptRecord builds one record the paper's filter keeps: partner-ISP
// server to client on TCP/443.
func keptRecord(ts time.Time, client netip.Addr, byteCount uint64) netflow.Record {
	f := core.DefaultFilter()
	return netflow.Record{
		Key: netflow.Key{
			Src:     f.ServerPrefixes[0].Addr(),
			Dst:     client,
			SrcPort: netflow.PortHTTPS,
			DstPort: 50000,
			Proto:   netflow.ProtoTCP,
		},
		Packets:  5,
		Bytes:    byteCount,
		First:    ts,
		Last:     ts.Add(time.Second),
		Exporter: "ISP/BE-000",
	}
}

// buildCapture synthesizes the shared test capture: located traffic
// over ~1/7 of the districts across 48 hours, filter-dropped flows,
// clients outside the geo database (hash-sharded), and late records.
func buildCapture(prefixes []netip.Prefix) []netflow.Record {
	var recs []netflow.Record
	for d := 0; d < len(prefixes); d += 7 {
		a4 := prefixes[d].Addr().As4()
		a4[3] = byte(9 + d%17)
		client := netip.AddrFrom4(a4)
		for h := 0; h < 2+d%5; h++ {
			recs = append(recs, keptRecord(entime.StudyStart.Add(time.Duration((d+h*5)%48)*time.Hour), client, uint64(200+d*3+h)))
		}
	}
	for i := 0; i < 12; i++ {
		// Filter-dropped: wrong server port.
		bad := keptRecord(entime.StudyStart.Add(time.Duration(i%6)*time.Hour), netip.AddrFrom4([4]byte{10, 1, byte(i), 8}), 60)
		bad.SrcPort = 80
		recs = append(recs, bad)
		// Kept but unmapped client prefix: owned via the /24 hash.
		recs = append(recs, keptRecord(entime.StudyStart.Add(time.Duration(10+i%8)*time.Hour),
			netip.AddrFrom4([4]byte{172, 16, byte(i), 33}), uint64(90+i)))
		// Late: predates the study origin.
		recs = append(recs, keptRecord(entime.StudyStart.Add(-time.Duration(1+i%3)*time.Hour),
			netip.AddrFrom4([4]byte{10, 2, byte(i), 7}), 40))
	}
	return recs
}

// node is one shard collector: a durable store fronted by the v1 API.
type node struct {
	st  *store.Store
	srv *api.Server
	ts  *httptest.Server
}

// newNode opens a store in a temp dir, appends recs in batches, and
// serves it.
func newNode(t *testing.T, acfg streaming.Config, recs []netflow.Record) *node {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{Analytics: acfg, Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	appendAll(t, st, recs)
	srv, err := api.New(api.Config{History: st})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &node{st: st, srv: srv, ts: ts}
}

func appendAll(t *testing.T, st *store.Store, recs []netflow.Record) {
	t.Helper()
	const batch = 37
	for i := 0; i < len(recs); i += batch {
		end := i + batch
		if end > len(recs) {
			end = len(recs)
		}
		if err := st.Append(recs[i:end]); err != nil {
			t.Fatal(err)
		}
	}
}

// partition splits the capture by the cluster's ownership function.
func partition(recs []netflow.Record, db *geodb.DB, n int) [][]netflow.Record {
	parts := make([][]netflow.Record, n)
	for _, r := range recs {
		o := Owner(&r, db, n)
		parts[o] = append(parts[o], r)
	}
	return parts
}

// newRouter serves a Fleet over the nodes' addresses.
func newRouter(t *testing.T, nodes []*node, topK int) *httptest.Server {
	t.Helper()
	addrs := make([]string, len(nodes))
	for i, nd := range nodes {
		addrs[i] = nd.ts.URL
	}
	fleet, err := New(addrs, Options{TopK: topK})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := api.New(api.Config{Fanout: fleet})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// get fetches url and returns status, headers and body.
func get(t *testing.T, url string, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// paramSets enumerates every field-selection subset (all 31 non-empty
// combinations plus the default), each with and without truncation.
func paramSets() []string {
	var out []string
	for fs := v1.FieldSet(1); fs <= v1.AllFields; fs++ {
		out = append(out, "fields="+fs.String())
	}
	out = append(out, "")
	n := len(out)
	for i := 0; i < n; i++ {
		q := out[i]
		if q != "" {
			q += "&"
		}
		out = append(out, q+"top=3")
	}
	return out
}

// TestShardPartitionTotality pins the ownership function: every record
// — located, unmapped, malformed — has exactly one owner, and the
// Filter closures reproduce that partition disjointly and exhaustively.
func TestShardPartitionTotality(t *testing.T) {
	model := geo.Germany()
	db, prefixes := testGeoDB(t, model)
	recs := buildCapture(prefixes)
	recs = append(recs, netflow.Record{}) // invalid addresses still owned

	for _, n := range []int{1, 2, 3, 4, 7} {
		filters := make([]func(*netflow.Record) bool, n)
		for i := 0; i < n; i++ {
			filters[i] = Assignment{Index: i, Count: n}.Filter(db)
		}
		if n == 1 {
			if filters[0] != nil {
				t.Fatalf("n=1: Filter should be nil (no-op)")
			}
			continue
		}
		for ri := range recs {
			o := Owner(&recs[ri], db, n)
			if o < 0 || o >= n {
				t.Fatalf("record %d: owner %d outside [0,%d)", ri, o, n)
			}
			owners := 0
			for i, f := range filters {
				if f(&recs[ri]) {
					owners++
					if i != o {
						t.Fatalf("record %d: filter %d keeps a record Owner assigns to %d", ri, i, o)
					}
				}
			}
			if owners != 1 {
				t.Fatalf("record %d: kept by %d shards, want exactly 1", ri, owners)
			}
		}
	}

	if _, err := ParseAssignment("3/3"); err == nil {
		t.Fatal("ParseAssignment(3/3) should fail: index out of range")
	}
	if _, err := ParseAssignment("nope"); err == nil {
		t.Fatal("ParseAssignment(nope) should fail")
	}
	if a, err := ParseAssignment("2/5"); err != nil || a.Index != 2 || a.Count != 5 {
		t.Fatalf("ParseAssignment(2/5) = %+v, %v", a, err)
	}
}

// TestClusterByteIdentity is the headline conformance check: for fleet
// sizes 1, 2 and 4, every router response — both endpoints, all 32
// field selections, with and without top-K truncation, full and
// sub-range queries — is byte-identical to the same request against a
// single collector holding the union of the capture. Two independent
// routers over the same fleet also agree on the ETag, and the composite
// validator revalidates (If-None-Match -> 304).
func TestClusterByteIdentity(t *testing.T) {
	model := geo.Germany()
	db, prefixes := testGeoDB(t, model)
	recs := buildCapture(prefixes)
	acfg := streaming.Config{WindowHours: 96, TopK: 10, DB: db, Model: model}

	union := newNode(t, acfg, recs)

	sub := fmt.Sprintf("from=%d&to=%d",
		entime.StudyStart.Add(5*time.Hour).Unix(), entime.StudyStart.Add(30*time.Hour).Unix())
	endpoints := []string{
		"/api/v1/snapshot",
		"/api/v1/query",
		"/api/v1/query?" + sub,
	}
	params := paramSets()

	for _, n := range []int{1, 2, 4} {
		parts := partition(recs, db, n)
		nodes := make([]*node, n)
		total := 0
		for i := range nodes {
			nodes[i] = newNode(t, acfg, parts[i])
			total += len(parts[i])
		}
		if total != len(recs) {
			t.Fatalf("n=%d: partition lost records: %d != %d", n, total, len(recs))
		}
		router := newRouter(t, nodes, acfg.TopK)
		routerB := newRouter(t, nodes, acfg.TopK)

		for _, ep := range endpoints {
			for _, p := range params {
				url := ep
				if p != "" {
					if strings.Contains(ep, "?") {
						url += "&" + p
					} else {
						url += "?" + p
					}
				}
				wantStatus, _, want := get(t, union.ts.URL+url, nil)
				gotStatus, gotHdr, got := get(t, router.URL+url, nil)
				if wantStatus != http.StatusOK || gotStatus != http.StatusOK {
					t.Fatalf("n=%d %s: status union=%d router=%d", n, url, wantStatus, gotStatus)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("n=%d %s: router body differs from union\n got: %.400s\nwant: %.400s", n, url, got, want)
				}
				etag := gotHdr.Get("ETag")
				if etag == "" {
					t.Fatalf("n=%d %s: router response has no ETag", n, url)
				}
				// A second, independent router over the same fleet emits the
				// same validator; both 304 it.
				_, hdrB, _ := get(t, routerB.URL+url, nil)
				if hdrB.Get("ETag") != etag {
					t.Fatalf("n=%d %s: two routers over one fleet disagree on ETag: %q != %q",
						n, url, etag, hdrB.Get("ETag"))
				}
				st304, _, body304 := get(t, router.URL+url, map[string]string{"If-None-Match": etag})
				if st304 != http.StatusNotModified || len(body304) != 0 {
					t.Fatalf("n=%d %s: If-None-Match got %d with %d body bytes, want bodyless 304", n, url, st304, len(body304))
				}
			}
		}

		// Stats are additive, not byte-identical (WAL framing differs by
		// batch split): the summed census-bearing store gauges must match
		// the union's record counts.
		var unionStats, clusterStats v1.StatsResponse
		_, _, ub := get(t, union.ts.URL+"/api/v1/stats", nil)
		_, _, cb := get(t, router.URL+"/api/v1/stats", nil)
		if err := json.Unmarshal(ub, &unionStats); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(cb, &clusterStats); err != nil {
			t.Fatal(err)
		}
		if unionStats.Store == nil || clusterStats.Store == nil {
			t.Fatalf("n=%d: missing store gauges in stats", n)
		}
		if clusterStats.Store.AppendedRecords != unionStats.Store.AppendedRecords {
			t.Fatalf("n=%d: cluster appended %d records, union %d",
				n, clusterStats.Store.AppendedRecords, unionStats.Store.AppendedRecords)
		}
		if clusterStats.Degraded != nil {
			t.Fatalf("n=%d: healthy cluster stats marked degraded: %+v", n, clusterStats.Degraded)
		}

		// Health: a healthy fleet is plain ok, indistinguishable from a
		// single node.
		hst, _, hb := get(t, router.URL+"/api/v1/health", nil)
		if hst != http.StatusOK || !bytes.Contains(hb, []byte(`"status":"ok"`)) {
			t.Fatalf("n=%d: health = %d %s", n, hst, hb)
		}
	}
}

// TestClusterDegradation kills one shard of three and pins the partial
// contract: HTTP 206, a degraded marker naming the missing shard,
// Cache-Control: no-store, no ETag, and totals equal to the live
// shards' sum (never the silently-wrong full total, never an error).
// With every shard down the router serves 503 unavailable; a restarted
// shard restores byte-identical complete responses.
func TestClusterDegradation(t *testing.T) {
	model := geo.Germany()
	db, prefixes := testGeoDB(t, model)
	recs := buildCapture(prefixes)
	acfg := streaming.Config{WindowHours: 96, TopK: 10, DB: db, Model: model}

	const n = 3
	parts := partition(recs, db, n)
	nodes := make([]*node, n)
	for i := range nodes {
		nodes[i] = newNode(t, acfg, parts[i])
	}
	router := newRouter(t, nodes, acfg.TopK)

	healthyStatus, healthyHdr, healthyBody := get(t, router.URL+"/api/v1/snapshot", nil)
	if healthyStatus != http.StatusOK || healthyHdr.Get("ETag") == "" {
		t.Fatalf("healthy cluster: %d, etag %q", healthyStatus, healthyHdr.Get("ETag"))
	}
	var healthySnap v1.Snapshot
	if err := json.Unmarshal(healthyBody, &healthySnap); err != nil {
		t.Fatal(err)
	}

	// Remember node 1's address, then kill it.
	killedAddr := nodes[1].ts.Listener.Addr().String()
	nodes[1].ts.Close()

	status, hdr, body := get(t, router.URL+"/api/v1/snapshot", nil)
	if status != http.StatusPartialContent {
		t.Fatalf("one shard down: status %d, want 206", status)
	}
	if cc := hdr.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("degraded Cache-Control = %q, want no-store", cc)
	}
	if etag := hdr.Get("ETag"); etag != "" {
		t.Fatalf("degraded response carries ETag %q; partial bodies must not validate", etag)
	}
	var snap v1.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Degraded == nil || len(snap.Degraded.MissingShards) != 1 || snap.Degraded.MissingShards[0] != 1 {
		t.Fatalf("degraded marker = %+v, want missing_shards [1]", snap.Degraded)
	}
	// The partial total is the live shards' exact sum — shard 1's kept
	// records are absent, not fabricated.
	liveKept := 0
	for i, nd := range nodes {
		if i == 1 {
			continue
		}
		liveKept += nd.st.Snapshot().Census.Kept
	}
	if snap.Census == nil || snap.Census.Kept != liveKept {
		t.Fatalf("degraded census kept = %v, want live-shard sum %d", snap.Census, liveKept)
	}
	if snap.Census.Kept == healthySnap.Census.Kept {
		t.Fatalf("degraded census equals the full total (%d): the kill did not remove data, test is vacuous", liveKept)
	}

	// Health: serving but degraded (200), naming the shard.
	hst, _, hb := get(t, router.URL+"/api/v1/health", nil)
	var health v1.HealthResponse
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if hst != http.StatusOK || health.Status != v1.StatusDegraded ||
		health.Degraded == nil || len(health.Degraded.MissingShards) != 1 || health.Degraded.MissingShards[0] != 1 {
		t.Fatalf("health with one shard down = %d %+v", hst, health)
	}

	// Stats: 206 + marker, sum over live shards only.
	sst, sh, sb := get(t, router.URL+"/api/v1/stats", nil)
	var stats v1.StatsResponse
	if err := json.Unmarshal(sb, &stats); err != nil {
		t.Fatal(err)
	}
	if sst != http.StatusPartialContent || sh.Get("Cache-Control") != "no-store" || stats.Degraded == nil {
		t.Fatalf("degraded stats = %d %q %+v", sst, sh.Get("Cache-Control"), stats.Degraded)
	}

	// All shards down: an explicit 503, not an empty 200.
	nodes[0].ts.Close()
	nodes[2].ts.Close()
	ast, _, ab := get(t, router.URL+"/api/v1/snapshot", nil)
	var envelope v1.ErrorResponse
	if err := json.Unmarshal(ab, &envelope); err != nil {
		t.Fatal(err)
	}
	if ast != http.StatusServiceUnavailable || envelope.Error == nil || envelope.Error.Code != v1.CodeUnavailable {
		t.Fatalf("all shards down = %d %s", ast, ab)
	}
	hst, _, hb = get(t, router.URL+"/api/v1/health", nil)
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if hst != http.StatusServiceUnavailable || health.Status != v1.StatusDegraded {
		t.Fatalf("health with all shards down = %d %+v", hst, health)
	}

	// Recovery: rebind every node on its old port (the router's node
	// list is fixed; a restarted collectord comes back at the same
	// address) and verify complete responses return, byte-identical to
	// the pre-kill body.
	for i, nd := range nodes {
		addr := nd.ts.Listener.Addr().String()
		if i == 1 {
			addr = killedAddr
		}
		rebindNode(t, nd, addr)
	}
	status, hdr, body = get(t, router.URL+"/api/v1/snapshot", nil)
	if status != http.StatusOK || hdr.Get("ETag") == "" {
		t.Fatalf("recovered cluster: %d, etag %q", status, hdr.Get("ETag"))
	}
	if !bytes.Equal(body, healthyBody) {
		t.Fatalf("recovered body differs from pre-kill body")
	}
}

// rebindNode restarts a node's HTTP front on a specific address,
// retrying briefly while the kernel releases the old binding.
func rebindNode(t *testing.T, nd *node, addr string) {
	t.Helper()
	var ln net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	ts := httptest.NewUnstartedServer(nd.srv)
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	t.Cleanup(ts.Close)
	nd.ts = ts
}

// TestClusterCompositeETagSemantics pins the validator algebra the
// composite ETag must satisfy (the checkpoint-invalidation contract of
// store.Version, lifted cluster-wide):
//
//   - a checkpoint on ANY node invalidates the cluster snapshot ETag,
//     even when the rendered body is unchanged (documented
//     over-invalidation, inherited from the single-node contract);
//   - appends outside a frames-only query range do NOT invalidate that
//     range's ETag (the tail does not overlap it);
//   - a checkpoint folding those appends DOES (the frame generation
//     moved).
func TestClusterCompositeETagSemantics(t *testing.T) {
	model := geo.Germany()
	db, prefixes := testGeoDB(t, model)
	acfg := streaming.Config{WindowHours: 96, TopK: 10, DB: db, Model: model}

	mkRecs := func(base, count, hourLo int) []netflow.Record {
		var out []netflow.Record
		for i := 0; i < count; i++ {
			a4 := prefixes[(base+i)%len(prefixes)].Addr().As4()
			a4[3] = 9
			out = append(out, keptRecord(entime.StudyStart.Add(time.Duration(hourLo+i%4)*time.Hour),
				netip.AddrFrom4(a4), uint64(100+i)))
		}
		return out
	}

	const n = 2
	nodes := make([]*node, n)
	for i := range nodes {
		nodes[i] = newNode(t, acfg, mkRecs(i*40, 20, 0))
		// Fold the seed data into a checkpoint frame so the query range
		// below is served from frames alone (empty tail).
		if err := nodes[i].st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	router := newRouter(t, nodes, acfg.TopK)

	queryURL := router.URL + "/api/v1/query?" + fmt.Sprintf("from=%d&to=%d",
		entime.StudyStart.Unix(), entime.StudyStart.Add(12*time.Hour).Unix())
	snapURL := router.URL + "/api/v1/snapshot"

	_, qh, qBody := get(t, queryURL, nil)
	qTag := qh.Get("ETag")
	_, sh, _ := get(t, snapURL, nil)
	sTag := sh.Get("ETag")
	if qTag == "" || sTag == "" {
		t.Fatalf("missing ETags: query %q snapshot %q", qTag, sTag)
	}

	// Appends far outside the query range (hours 40+) on node 0: the
	// frames-only range still revalidates — its frames are untouched and
	// the new tail does not overlap it. The whole-window snapshot tag
	// must move (the tail IS in its range).
	appendAll(t, nodes[0].st, mkRecs(200, 10, 40))
	st, _, _ := get(t, queryURL, map[string]string{"If-None-Match": qTag})
	if st != http.StatusNotModified {
		t.Fatalf("frames-only range after out-of-range append: %d, want 304 (tag still valid)", st)
	}
	st, sh2, _ := get(t, snapURL, nil)
	if st != http.StatusOK || sh2.Get("ETag") == sTag {
		t.Fatalf("snapshot tag after in-window append: %d %q (was %q), want a new tag", st, sh2.Get("ETag"), sTag)
	}

	// Checkpointing node 0 folds its tail: the frame generation moves,
	// so the composite for EVERY range — including the untouched
	// frames-only one — invalidates, even though that range's body is
	// byte-identical. This over-invalidation is inherited per shard from
	// store.Version and is the documented cost of frame-level
	// granularity.
	if err := nodes[0].st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, qh2, qBody2 := get(t, queryURL, map[string]string{"If-None-Match": qTag})
	if st != http.StatusOK {
		t.Fatalf("frames-only range after checkpoint: %d, want full 200 (tag invalidated)", st)
	}
	if qh2.Get("ETag") == qTag {
		t.Fatalf("query tag unchanged across a node checkpoint")
	}
	if !bytes.Equal(qBody2, qBody) {
		t.Fatalf("frames-only range body changed across an out-of-range checkpoint")
	}

	// The other node's checkpoint (with fresh in-range tail data)
	// invalidates too: ANY shard's generation moves the composite.
	qTag = qh2.Get("ETag")
	appendAll(t, nodes[1].st, mkRecs(300, 5, 2))
	if err := nodes[1].st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, qh3, _ := get(t, queryURL, map[string]string{"If-None-Match": qTag})
	if st != http.StatusOK || qh3.Get("ETag") == qTag {
		t.Fatalf("query tag after the other node's checkpoint: %d %q, want a new tag", st, qh3.Get("ETag"))
	}
}

// TestFleetContextCancellation covers the operational edge the router's
// own timeout relies on: a cancelled context fails the gather instead
// of hanging, reporting every shard missing.
func TestFleetContextCancellation(t *testing.T) {
	model := geo.Germany()
	db, prefixes := testGeoDB(t, model)
	acfg := streaming.Config{WindowHours: 96, TopK: 10, DB: db, Model: model}
	nd := newNode(t, acfg, buildCapture(prefixes)[:10])

	fleet, err := New([]string{nd.ts.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := fleet.Snapshot(ctx)
	if err != nil {
		t.Fatalf("cancelled gather should degrade, not error: %v", err)
	}
	if res.Snapshot != nil || len(res.Missing) != 1 {
		t.Fatalf("cancelled gather = %+v, want every shard missing", res)
	}
}
