package netsim

import (
	"math/rand"
	"net/netip"
	"testing"

	"cwatrace/internal/geo"
)

var model = geo.Germany()

func newNetwork(t *testing.T) *Network {
	t.Helper()
	n, err := New(model, DefaultISPs())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	if _, err := New(model, nil); err == nil {
		t.Error("empty ISP list must fail")
	}
	bad := DefaultISPs()
	bad[0].Share = 0
	if _, err := New(model, bad); err == nil {
		t.Error("zero share must fail")
	}
}

func TestRouterPerISPAndDistrict(t *testing.T) {
	n := newNetwork(t)
	want := model.NumDistricts() * len(DefaultISPs())
	if got := len(n.Routers()); got != want {
		t.Fatalf("routers = %d, want %d", got, want)
	}
	r, ok := n.RouterFor("Magenta", "NW-000")
	if !ok {
		t.Fatal("missing Magenta router in Gütersloh")
	}
	if r.DistrictID != "NW-000" || r.ISPName != "Magenta" {
		t.Fatalf("router misconfigured: %+v", r)
	}
}

func TestRouterBlocksDisjoint(t *testing.T) {
	n := newNetwork(t)
	var blocks []netip.Prefix
	for _, id := range n.Routers() {
		r, _ := n.Router(id)
		blocks = append(blocks, r.Block)
	}
	for i := 0; i < len(blocks); i++ {
		for j := i + 1; j < len(blocks); j++ {
			if blocks[i].Overlaps(blocks[j]) {
				t.Fatalf("blocks overlap: %s and %s", blocks[i], blocks[j])
			}
		}
	}
}

func TestAttachAssignsWithinRouterBlock(t *testing.T) {
	n := newNetwork(t)
	isp := DefaultISPs()[0]
	c, err := n.Attach(isp, "BE-000")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := n.RouterFor(isp.Name, "BE-000")
	if !r.Block.Contains(c.Addr) {
		t.Fatalf("address %s outside router block %s", c.Addr, r.Block)
	}
	if !c.Prefix.Contains(c.Addr) {
		t.Fatalf("address %s outside own prefix %s", c.Addr, c.Prefix)
	}
	if c.Prefix.Bits() != 24 {
		t.Fatalf("prefix length %d, want 24", c.Prefix.Bits())
	}
}

func TestAttachUniqueAddressesUntilPrefixRolls(t *testing.T) {
	n := newNetwork(t)
	isp := DefaultISPs()[1]
	seen := make(map[netip.Addr]bool)
	var prefixes []netip.Prefix
	for i := 0; i < HostsPerPrefix+10; i++ {
		c, err := n.Attach(isp, "BY-010")
		if err != nil {
			t.Fatal(err)
		}
		if seen[c.Addr] {
			t.Fatalf("duplicate address %s at attach %d", c.Addr, i)
		}
		seen[c.Addr] = true
		if len(prefixes) == 0 || prefixes[len(prefixes)-1] != c.Prefix {
			prefixes = append(prefixes, c.Prefix)
		}
	}
	if len(prefixes) != 2 {
		t.Fatalf("expected rollover to a second /24, saw %d prefixes", len(prefixes))
	}
}

func TestAttachUnknownDistrict(t *testing.T) {
	n := newNetwork(t)
	if _, err := n.Attach(DefaultISPs()[0], "XX-123"); err == nil {
		t.Fatal("unknown district must fail")
	}
}

func TestPickISPShares(t *testing.T) {
	n := newNetwork(t)
	rng := rand.New(rand.NewSource(5))
	counts := make(map[string]int)
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[n.PickISP(rng).Name]++
	}
	for _, isp := range DefaultISPs() {
		got := float64(counts[isp.Name]) / draws
		if got < isp.Share-0.02 || got > isp.Share+0.02 {
			t.Errorf("ISP %s drawn %.3f, share %.3f", isp.Name, got, isp.Share)
		}
	}
}

func TestMaybeReassignDynamicChurns(t *testing.T) {
	n := newNetwork(t)
	dynamic := DefaultISPs()[2] // Blau, DailyChurn 0.95
	c, err := n.Attach(dynamic, "HE-003")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	changed := 0
	const days = 200
	cur := c
	for d := 0; d < days; d++ {
		next := n.MaybeReassign(rng, cur)
		if next.Addr != cur.Addr {
			changed++
		}
		if next.RouterID != c.RouterID {
			t.Fatal("reassignment must stay on the same router")
		}
		r, _ := n.Router(c.RouterID)
		if !r.Block.Contains(next.Addr) {
			t.Fatalf("churned address %s left block %s", next.Addr, r.Block)
		}
		cur = next
	}
	if changed < days/2 {
		t.Fatalf("dynamic ISP churned only %d/%d days", changed, days)
	}
}

func TestMaybeReassignStaticMostlyStable(t *testing.T) {
	n := newNetwork(t)
	static := DefaultISPs()[0] // Magenta, DailyChurn 0.02
	c, err := n.Attach(static, "SH-002")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	changed := 0
	const days = 500
	cur := c
	for d := 0; d < days; d++ {
		next := n.MaybeReassign(rng, cur)
		if next.Addr != cur.Addr {
			changed++
		}
		cur = next
	}
	if changed > days/10 {
		t.Fatalf("static ISP churned %d/%d days, too unstable", changed, days)
	}
}

func TestAllPrefixesInventory(t *testing.T) {
	n := newNetwork(t)
	isp := DefaultISPs()[0]
	if _, err := n.Attach(isp, "SN-005"); err != nil {
		t.Fatal(err)
	}
	inv := n.AllPrefixes()
	if len(inv) == 0 {
		t.Fatal("inventory empty after attach")
	}
	r, _ := n.RouterFor(isp.Name, "SN-005")
	found := false
	for p, id := range inv {
		if id == r.ID {
			found = true
			if !r.Block.Contains(p.Addr()) {
				t.Fatalf("prefix %s not in block %s", p, r.Block)
			}
		}
	}
	if !found {
		t.Fatal("attached router's prefix missing from inventory")
	}
}

func TestServerPrefixHelpers(t *testing.T) {
	if !IsCWAServer(CDNAddr(0)) {
		t.Fatal("CDN address must be inside server prefixes")
	}
	if !IsCWAServer(SubmissionAddr(3)) {
		t.Fatal("submission address must be inside server prefixes")
	}
	if IsCWAServer(netip.MustParseAddr("20.0.0.1")) {
		t.Fatal("client space must not be server space")
	}
	if CDNAddr(0) == CDNAddr(1) {
		t.Fatal("distinct edges must have distinct addresses")
	}
	// Server prefixes must not overlap each other or client space.
	if CWAServerPrefixes[0].Overlaps(CWAServerPrefixes[1]) {
		t.Fatal("server prefixes overlap")
	}
}

func TestClientSpaceDisjointFromServerSpace(t *testing.T) {
	n := newNetwork(t)
	for _, ispName := range []int{0, 1, 2, 3, 4} {
		isp := DefaultISPs()[ispName]
		c, err := n.Attach(isp, "BW-001")
		if err != nil {
			t.Fatal(err)
		}
		if IsCWAServer(c.Addr) {
			t.Fatalf("client address %s inside server prefix", c.Addr)
		}
	}
}
