package netsim

import (
	"net/netip"
	"testing"
	"testing/quick"
)

// TestQuickCarvedPrefixesWithinBlock: every carvable /24 stays inside its
// router block and distinct indices never overlap.
func TestQuickCarvedPrefixesWithinBlock(t *testing.T) {
	block := routerBlock(20, 37)
	f := func(i, j uint8) bool {
		maxIdx := 1 << (24 - routerBlockBits)
		a, errA := carvePrefix(block, int(i)%maxIdx)
		b, errB := carvePrefix(block, int(j)%maxIdx)
		if errA != nil || errB != nil {
			return false
		}
		if !block.Contains(a.Addr()) || !block.Contains(b.Addr()) {
			return false
		}
		if int(i)%maxIdx != int(j)%maxIdx && a.Overlaps(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRouterBlocksDisjointAcrossIndices: distinct (base, index) pairs
// produce non-overlapping blocks within an ISP.
func TestQuickRouterBlocksDisjointAcrossIndices(t *testing.T) {
	f := func(i, j uint16) bool {
		a := routerBlock(21, int(i)%1024)
		b := routerBlock(21, int(j)%1024)
		if int(i)%1024 == int(j)%1024 {
			return a == b
		}
		return !a.Overlaps(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCarveExhaustionErrors: indices past the block capacity error out
// instead of silently wrapping into foreign space.
func TestQuickCarveExhaustionErrors(t *testing.T) {
	block := routerBlock(22, 0)
	maxIdx := 1 << (24 - routerBlockBits)
	if _, err := carvePrefix(block, maxIdx); err == nil {
		t.Fatal("carve past capacity must fail")
	}
	if p, err := carvePrefix(block, maxIdx-1); err != nil || !block.Contains(p.Addr()) {
		t.Fatalf("last valid carve failed: %v %v", p, err)
	}
}

// TestQuickServerPrefixMembership: IsCWAServer agrees with the prefix
// definitions for arbitrary addresses.
func TestQuickServerPrefixMembership(t *testing.T) {
	f := func(a, b, c, d byte) bool {
		addr := netip.AddrFrom4([4]byte{a, b, c, d})
		want := false
		for _, p := range CWAServerPrefixes {
			if p.Contains(addr) {
				want = true
			}
		}
		return IsCWAServer(addr) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
