// Package netsim models the German access-network side of the measurement:
// ISPs with market shares and address-assignment policies, city-level
// aggregation routers (the paper geolocates "local routers within an ISP
// that connect customers"), IPv4 routing prefixes, and per-client address
// assignment including the daily churn of dial-up-style ISPs.
//
// The paper's persistence analysis leans on the fact that "customers of
// certain ISPs keep the same IP address over time" while others rotate
// addresses; both policies are first-class here.
package netsim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"

	"cwatrace/internal/geo"
)

// ISP describes one access provider.
type ISP struct {
	Name string
	ASN  uint32
	// Share is the subscriber market share in [0,1]; shares of a Network's
	// ISP set should sum to ~1.
	Share float64
	// StaticIP is true when customers keep their address across days
	// (cable and fiber providers); false models daily reconnect dynamics.
	StaticIP bool
	// DailyChurn is the probability that a customer's address changes on
	// any given day. Dynamic ISPs use ~1.0 (forced 24h reconnection),
	// static ones a small residual (moves, modem restarts).
	DailyChurn float64
	// base is the first /8 octet of the ISP's synthetic address space.
	base byte
}

// DefaultISPs returns the synthetic German ISP mix used throughout the
// reproduction. Names are descriptive, not real brands; shares and
// address policies mirror the German broadband market of 2020, where the
// incumbent and cable providers hand out long-lived addresses and the
// DSL resellers force daily reconnects.
func DefaultISPs() []ISP {
	return []ISP{
		{Name: "Magenta", ASN: 64500, Share: 0.40, StaticIP: true, DailyChurn: 0.02},
		{Name: "KabelNet", ASN: 64501, Share: 0.28, StaticIP: true, DailyChurn: 0.01},
		{Name: "Blau", ASN: 64502, Share: 0.16, StaticIP: false, DailyChurn: 0.95},
		{Name: "EinsDSL", ASN: 64503, Share: 0.10, StaticIP: false, DailyChurn: 0.90},
		{Name: "RegioNet", ASN: 64504, Share: 0.06, StaticIP: true, DailyChurn: 0.02},
	}
}

// CWAServerPrefixes are the two IPv4 prefixes of the simulated hosting
// infrastructure. The paper filters its Netflow "using 2 IPv4 prefixes
// mentioned in the CWA backend documentation"; the reproduction uses the
// RFC 5737 documentation ranges so synthetic traffic is unmistakably
// synthetic.
var CWAServerPrefixes = []netip.Prefix{
	netip.MustParsePrefix("198.51.100.0/24"), // CDN / distribution
	netip.MustParsePrefix("203.0.113.0/24"),  // submission & verification
}

// CDNAddr returns the i-th CDN edge address inside the first server prefix.
func CDNAddr(i int) netip.Addr {
	a := CWAServerPrefixes[0].Addr().As4()
	a[3] = byte(10 + i%200)
	return netip.AddrFrom4(a)
}

// SubmissionAddr returns the i-th submission-service address inside the
// second server prefix.
func SubmissionAddr(i int) netip.Addr {
	a := CWAServerPrefixes[1].Addr().As4()
	a[3] = byte(10 + i%200)
	return netip.AddrFrom4(a)
}

// IsCWAServer reports whether addr belongs to the hosting infrastructure —
// the filter predicate of the measurement pipeline.
func IsCWAServer(addr netip.Addr) bool {
	for _, p := range CWAServerPrefixes {
		if p.Contains(addr) {
			return true
		}
	}
	return false
}

// HostsPerPrefix is how many customers share one /24 routing prefix before
// the router announces another one.
const HostsPerPrefix = 200

// routerBlockBits is the size of the address block reserved per router
// (/18: 64 /24 prefixes, ~12.8k customers).
const routerBlockBits = 18

// Router is a city-level aggregation router (BNG) of one ISP: the exporter
// whose Netflow the vantage point samples and whose location is ground
// truth for geolocation.
type Router struct {
	ID         string
	ISPName    string
	ASN        uint32
	DistrictID string
	// Block is the router's reserved address block; announced /24
	// prefixes are carved from it on demand.
	Block netip.Prefix

	prefixes []netip.Prefix
	nextHost int
}

// Prefixes returns the routing prefixes announced so far.
func (r *Router) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, len(r.prefixes))
	copy(out, r.prefixes)
	return out
}

// ClientAddr is a customer's current attachment: address, announced
// routing prefix, and the router/ISP it hangs off.
type ClientAddr struct {
	Addr     netip.Addr
	Prefix   netip.Prefix
	RouterID string
	ISPName  string
}

// Network is the assembled access network: one router per (ISP, district)
// pair, covering the whole geography.
type Network struct {
	isps    []ISP
	routers map[string]*Router
	// routerIDs in stable order for deterministic iteration.
	routerIDs []string
	// byDistrict lists router IDs per district, one per ISP, ISP order.
	byDistrict map[string][]string
}

// New assembles the network over the given geography and ISP mix. It errors
// if the ISP list is empty, shares are non-positive, or the geography holds
// more districts than the per-ISP address plan can back (a /8 per ISP
// supports 1024 router blocks).
func New(model *geo.Model, isps []ISP) (*Network, error) {
	if len(isps) == 0 {
		return nil, fmt.Errorf("netsim: need at least one ISP")
	}
	if model.NumDistricts() > 1024 {
		return nil, fmt.Errorf("netsim: %d districts exceed the address plan", model.NumDistricts())
	}
	n := &Network{
		isps:       make([]ISP, len(isps)),
		routers:    make(map[string]*Router),
		byDistrict: make(map[string][]string),
	}
	copy(n.isps, isps)
	var total float64
	for i := range n.isps {
		if n.isps[i].Share <= 0 {
			return nil, fmt.Errorf("netsim: ISP %s has non-positive share", n.isps[i].Name)
		}
		total += n.isps[i].Share
		// Distinct /8 per ISP from the 20.0.0.0 region — synthetic,
		// never overlapping the server documentation prefixes.
		n.isps[i].base = byte(20 + i)
	}
	if total <= 0 {
		return nil, fmt.Errorf("netsim: ISP shares sum to %f", total)
	}

	districts := model.Districts()
	for di, d := range districts {
		for _, isp := range n.isps {
			r := &Router{
				ID:         fmt.Sprintf("%s/%s", isp.Name, d.ID),
				ISPName:    isp.Name,
				ASN:        isp.ASN,
				DistrictID: d.ID,
				Block:      routerBlock(isp.base, di),
			}
			n.routers[r.ID] = r
			n.routerIDs = append(n.routerIDs, r.ID)
			n.byDistrict[d.ID] = append(n.byDistrict[d.ID], r.ID)
		}
	}
	sort.Strings(n.routerIDs)
	return n, nil
}

// routerBlock carves the idx-th /18 out of the ISP's /8.
func routerBlock(base byte, idx int) netip.Prefix {
	// A /8 contains 2^(18-8) = 1024 /18 blocks; idx < 1024 guaranteed by New.
	off := uint32(idx) << (32 - routerBlockBits)
	addr := netip.AddrFrom4([4]byte{
		base,
		byte(off >> 16),
		byte(off >> 8),
		byte(off),
	})
	return netip.PrefixFrom(addr, routerBlockBits)
}

// ISPs returns the configured providers.
func (n *Network) ISPs() []ISP {
	out := make([]ISP, len(n.isps))
	copy(out, n.isps)
	return out
}

// PickISP draws an ISP according to market share.
func (n *Network) PickISP(rng *rand.Rand) ISP {
	var total float64
	for _, isp := range n.isps {
		total += isp.Share
	}
	x := rng.Float64() * total
	for _, isp := range n.isps {
		x -= isp.Share
		if x < 0 {
			return isp
		}
	}
	return n.isps[len(n.isps)-1]
}

// Router returns the router with the given ID.
func (n *Network) Router(id string) (*Router, bool) {
	r, ok := n.routers[id]
	return r, ok
}

// Routers returns all router IDs in stable order.
func (n *Network) Routers() []string {
	out := make([]string, len(n.routerIDs))
	copy(out, n.routerIDs)
	return out
}

// RouterFor returns the router of the given ISP in the given district.
func (n *Network) RouterFor(ispName, districtID string) (*Router, bool) {
	return n.Router(ispName + "/" + districtID)
}

// Attach assigns a new customer of isp in district an address. Customers
// fill prefixes sequentially, so early prefixes are densely used — matching
// how BNGs pool addresses.
func (n *Network) Attach(isp ISP, districtID string) (ClientAddr, error) {
	r, ok := n.RouterFor(isp.Name, districtID)
	if !ok {
		return ClientAddr{}, fmt.Errorf("netsim: no router for %s in %s", isp.Name, districtID)
	}
	return n.assign(r)
}

func (n *Network) assign(r *Router) (ClientAddr, error) {
	prefixIdx := r.nextHost / HostsPerPrefix
	hostIdx := r.nextHost % HostsPerPrefix
	maxPrefixes := 1 << (24 - routerBlockBits)
	if prefixIdx >= maxPrefixes {
		return ClientAddr{}, fmt.Errorf("netsim: router %s address block exhausted", r.ID)
	}
	for len(r.prefixes) <= prefixIdx {
		p, err := carvePrefix(r.Block, len(r.prefixes))
		if err != nil {
			return ClientAddr{}, err
		}
		r.prefixes = append(r.prefixes, p)
	}
	p := r.prefixes[prefixIdx]
	a := p.Addr().As4()
	a[3] = byte(1 + hostIdx) // hosts .1 .. .200
	r.nextHost++
	return ClientAddr{
		Addr:     netip.AddrFrom4(a),
		Prefix:   p,
		RouterID: r.ID,
		ISPName:  r.ISPName,
	}, nil
}

// carvePrefix returns the idx-th /24 within the router block.
func carvePrefix(block netip.Prefix, idx int) (netip.Prefix, error) {
	if idx >= 1<<(24-routerBlockBits) {
		return netip.Prefix{}, fmt.Errorf("netsim: block %s exhausted", block)
	}
	a := block.Addr().As4()
	base := uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
	base += uint32(idx) << 8
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{
		byte(base >> 24), byte(base >> 16), byte(base >> 8), byte(base),
	}), 24), nil
}

// MaybeReassign rolls the daily churn dice for a customer and returns the
// (possibly unchanged) attachment. Dynamic-ISP customers receive a fresh
// address drawn from their router's already-announced prefixes, modelling
// the overnight reconnect; the routing prefix set itself stays stable, as
// in the real network.
func (n *Network) MaybeReassign(rng *rand.Rand, c ClientAddr) ClientAddr {
	isp, ok := n.ispByName(c.ISPName)
	if !ok {
		return c
	}
	if rng.Float64() >= isp.DailyChurn {
		return c
	}
	r, ok := n.routers[c.RouterID]
	if !ok || len(r.prefixes) == 0 {
		return c
	}
	p := r.prefixes[rng.Intn(len(r.prefixes))]
	a := p.Addr().As4()
	a[3] = byte(1 + rng.Intn(HostsPerPrefix))
	c.Addr = netip.AddrFrom4(a)
	c.Prefix = p
	return c
}

func (n *Network) ispByName(name string) (ISP, bool) {
	for _, isp := range n.isps {
		if isp.Name == name {
			return isp, true
		}
	}
	return ISP{}, false
}

// AllPrefixes returns every announced routing prefix with its router ID, in
// stable order. The geolocation database is seeded from this inventory.
func (n *Network) AllPrefixes() map[netip.Prefix]string {
	out := make(map[netip.Prefix]string)
	for _, id := range n.routerIDs {
		for _, p := range n.routers[id].prefixes {
			out[p] = id
		}
	}
	return out
}
