package appid

import (
	"net/netip"
	"testing"
	"time"

	"cwatrace/internal/netflow"
	"cwatrace/internal/netsim"
)

var base = time.Date(2020, time.June, 16, 19, 0, 0, 0, time.UTC)

func flow(addr string, at time.Time) netflow.Record {
	return netflow.Record{
		Key: netflow.Key{
			Src:     netsim.CDNAddr(0),
			Dst:     netip.MustParseAddr(addr),
			SrcPort: 443, DstPort: 51000, Proto: netflow.ProtoTCP,
		},
		Packets: 3, Bytes: 9000, First: at, Last: at.Add(time.Second),
	}
}

// dailyClient produces n days of sync events with small jitter, several
// flows per sync (index + packages), like an app client.
func dailyClient(addr string, days int) []netflow.Record {
	var out []netflow.Record
	for d := 0; d < days; d++ {
		at := base.AddDate(0, 0, d).Add(time.Duration(d%3) * 20 * time.Minute)
		out = append(out, flow(addr, at), flow(addr, at.Add(5*time.Second)), flow(addr, at.Add(10*time.Second)))
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.EventGap = 0 },
		func(c *Config) { c.PeriodHigh = c.PeriodLow },
		func(c *Config) { c.MinEvents = 1 },
		func(c *Config) { c.MinPeriodicity = 1.5 },
	}
	for i, mut := range cases {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d must fail", i)
		}
	}
	if _, err := Classify(nil, Config{}); err == nil {
		t.Error("invalid config must fail Classify")
	}
}

func TestDailyPatternClassifiedAsApp(t *testing.T) {
	records := dailyClient("20.0.1.5", 8)
	cls, err := Classify(records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cls) != 1 {
		t.Fatalf("classifications = %d", len(cls))
	}
	c := cls[0]
	if c.Verdict != App {
		t.Fatalf("daily client classified %s (periodicity %.2f, events %d)",
			c.Verdict, c.Periodicity, c.Events)
	}
	if c.Events != 8 || c.DaysPresent != 8 {
		t.Fatalf("events = %d, days = %d", c.Events, c.DaysPresent)
	}
}

func TestOneOffVisitorUnknown(t *testing.T) {
	records := []netflow.Record{flow("20.0.2.9", base)}
	cls, err := Classify(records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cls[0].Verdict != Unknown {
		t.Fatalf("one-off visitor classified %s", cls[0].Verdict)
	}
}

func TestIrregularVisitorNonApp(t *testing.T) {
	// Several visits within one afternoon plus one a week later: enough
	// events, no daily rhythm.
	records := []netflow.Record{
		flow("20.0.3.3", base),
		flow("20.0.3.3", base.Add(2*time.Hour)),
		flow("20.0.3.3", base.Add(5*time.Hour)),
		flow("20.0.3.3", base.AddDate(0, 0, 7)),
	}
	cls, err := Classify(records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cls[0].Verdict != NonApp {
		t.Fatalf("irregular visitor classified %s (periodicity %.2f)",
			cls[0].Verdict, cls[0].Periodicity)
	}
}

func TestMissedDaysStillApp(t *testing.T) {
	// A bug-affected device syncing every other day: gaps ~48h are
	// outside the daily window, so pad with enough on-schedule days.
	var records []netflow.Record
	for _, d := range []int{0, 1, 2, 4, 5, 6} {
		at := base.AddDate(0, 0, d)
		records = append(records, flow("20.0.4.4", at))
	}
	cls, err := Classify(records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cls[0].Verdict != App {
		t.Fatalf("mostly-daily client classified %s (periodicity %.2f)",
			cls[0].Verdict, cls[0].Periodicity)
	}
}

func TestEventMergingWithinGap(t *testing.T) {
	// Five flows within a minute are one event.
	var records []netflow.Record
	for i := 0; i < 5; i++ {
		records = append(records, flow("20.0.5.5", base.Add(time.Duration(i)*10*time.Second)))
	}
	cls, err := Classify(records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cls[0].Events != 1 {
		t.Fatalf("events = %d, want 1", cls[0].Events)
	}
}

func TestClassifyOrderedByAddress(t *testing.T) {
	records := append(dailyClient("20.0.9.9", 4), dailyClient("20.0.1.1", 4)...)
	cls, err := Classify(records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cls) != 2 || cls[0].Addr.Compare(cls[1].Addr) >= 0 {
		t.Fatalf("classifications unordered: %v", cls)
	}
}

func TestEvaluate(t *testing.T) {
	appAddr := netip.MustParseAddr("20.0.1.5")
	webAddr := netip.MustParseAddr("20.0.3.3")
	missedApp := netip.MustParseAddr("20.0.4.4")
	strangeAddr := netip.MustParseAddr("20.0.7.7")

	cls := []Classification{
		{Addr: appAddr, Verdict: App},
		{Addr: webAddr, Verdict: NonApp},
		{Addr: missedApp, Verdict: NonApp},
		{Addr: strangeAddr, Verdict: App},
		{Addr: netip.MustParseAddr("20.0.8.8"), Verdict: Unknown},
		{Addr: netip.MustParseAddr("20.9.9.9"), Verdict: App}, // unlabelled
	}
	labels := map[netip.Addr]byte{
		appAddr:                         1,
		webAddr:                         2,
		missedApp:                       1,
		strangeAddr:                     2,
		netip.MustParseAddr("20.0.8.8"): 2,
	}
	ev := Evaluate(cls, labels, 1, 2)
	if ev.TruePositives != 1 || ev.FalsePositives != 1 ||
		ev.TrueNegatives != 1 || ev.FalseNegatives != 1 ||
		ev.Unknowns != 1 || ev.Unlabelled != 1 {
		t.Fatalf("evaluation = %+v", ev)
	}
	if ev.Precision() != 0.5 || ev.Recall() != 0.5 {
		t.Fatalf("precision %.2f recall %.2f", ev.Precision(), ev.Recall())
	}
}

func TestEvaluateEmpty(t *testing.T) {
	ev := Evaluate(nil, nil, 1, 2)
	if ev.Precision() != 0 || ev.Recall() != 0 {
		t.Fatal("empty evaluation must be zero")
	}
}

func TestVerdictString(t *testing.T) {
	if App.String() != "app" || NonApp.String() != "non-app" || Unknown.String() != "unknown" {
		t.Fatal("verdict strings wrong")
	}
}
