// Package appid implements the paper's future-work idea: "Periodic request
// pattern by CWA might thus be used in future work for app identification."
//
// App installations download diagnosis keys roughly once every 24 hours;
// website visitors show up irregularly and rarely. Given only the
// anonymized, filtered flow trace, the classifier groups flows per client
// address into sync events, measures how daily-periodic those events are,
// and labels addresses as app clients or not. The simulator exports ground
// truth (sim.Result.Labels), so precision/recall of the approach — under
// the sampling and churn that also limited the paper — are measurable.
package appid

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"cwatrace/internal/netflow"
)

// Config tunes the classifier.
type Config struct {
	// EventGap merges flows closer than this into one client event (one
	// app sync opens several connections back to back).
	EventGap time.Duration
	// PeriodLow/PeriodHigh bound an inter-event gap that counts as
	// "daily": the framework schedules syncs every ~24h with jitter, and
	// a missed day yields ~48h.
	PeriodLow, PeriodHigh time.Duration
	// MinEvents is the minimum number of events before an address can be
	// classified at all (short-lived addresses stay Unknown).
	MinEvents int
	// MinPeriodicity is the minimum share of daily-looking gaps for an
	// app verdict.
	MinPeriodicity float64
}

// DefaultConfig matches the CWA sync behaviour.
func DefaultConfig() Config {
	return Config{
		EventGap:       15 * time.Minute,
		PeriodLow:      18 * time.Hour,
		PeriodHigh:     30 * time.Hour,
		MinEvents:      3,
		MinPeriodicity: 0.5,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.EventGap <= 0 {
		return fmt.Errorf("appid: EventGap must be positive")
	}
	if c.PeriodLow <= 0 || c.PeriodHigh <= c.PeriodLow {
		return fmt.Errorf("appid: period window [%v, %v] invalid", c.PeriodLow, c.PeriodHigh)
	}
	if c.MinEvents < 2 {
		return fmt.Errorf("appid: MinEvents must be >= 2")
	}
	if c.MinPeriodicity < 0 || c.MinPeriodicity > 1 {
		return fmt.Errorf("appid: MinPeriodicity out of range")
	}
	return nil
}

// Verdict is a classification outcome.
type Verdict int

// Verdicts.
const (
	Unknown Verdict = iota // too little signal
	App                    // periodic daily pattern
	NonApp                 // present but not periodic
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case App:
		return "app"
	case NonApp:
		return "non-app"
	default:
		return "unknown"
	}
}

// Classification is the result for one client address.
type Classification struct {
	Addr        netip.Addr
	Events      int
	DaysPresent int
	// Periodicity is the share of inter-event gaps inside the daily
	// window.
	Periodicity float64
	Verdict     Verdict
}

// Classify groups the (already filtered, downstream) records by client
// address and classifies each address. Results are ordered by address.
func Classify(records []netflow.Record, cfg Config) ([]Classification, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Gather flow start times per client.
	times := make(map[netip.Addr][]time.Time)
	for _, r := range records {
		times[r.Dst] = append(times[r.Dst], r.First)
	}

	out := make([]Classification, 0, len(times))
	for addr, ts := range times {
		sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })

		// Merge into events and count distinct days.
		var events []time.Time
		days := make(map[string]bool)
		for _, t := range ts {
			days[t.Format("2006-01-02")] = true
			if len(events) == 0 || t.Sub(events[len(events)-1]) > cfg.EventGap {
				events = append(events, t)
			} else {
				events[len(events)-1] = t // extend the running event
			}
		}

		c := Classification{
			Addr:        addr,
			Events:      len(events),
			DaysPresent: len(days),
		}
		if len(events) >= 2 {
			daily := 0
			for i := 1; i < len(events); i++ {
				gap := events[i].Sub(events[i-1])
				if gap >= cfg.PeriodLow && gap <= cfg.PeriodHigh {
					daily++
				}
			}
			c.Periodicity = float64(daily) / float64(len(events)-1)
		}
		switch {
		case c.Events < cfg.MinEvents:
			c.Verdict = Unknown
		case c.Periodicity >= cfg.MinPeriodicity:
			c.Verdict = App
		default:
			c.Verdict = NonApp
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Compare(out[j].Addr) < 0 })
	return out, nil
}

// Evaluation is the classifier quality against ground truth.
type Evaluation struct {
	TruePositives  int // classified app, labelled app
	FalsePositives int // classified app, labelled web-only
	TrueNegatives  int // classified non-app, labelled web-only
	FalseNegatives int // classified non-app, labelled app
	Unknowns       int // below the event floor
	Unlabelled     int // address missing from the ground truth
}

// Precision is TP / (TP + FP).
func (e Evaluation) Precision() float64 {
	if e.TruePositives+e.FalsePositives == 0 {
		return 0
	}
	return float64(e.TruePositives) / float64(e.TruePositives+e.FalsePositives)
}

// Recall is TP / (TP + FN).
func (e Evaluation) Recall() float64 {
	if e.TruePositives+e.FalseNegatives == 0 {
		return 0
	}
	return float64(e.TruePositives) / float64(e.TruePositives+e.FalseNegatives)
}

// Evaluate scores classifications against ground-truth labels (bitmask per
// address: bit 0 app, bit 1 web; see sim.LabelApp/LabelWeb). Addresses used
// by both kinds count toward the app side — identifying them as app clients
// is correct.
func Evaluate(cls []Classification, labels map[netip.Addr]byte, appBit, webBit byte) Evaluation {
	var ev Evaluation
	for _, c := range cls {
		label, ok := labels[c.Addr]
		if !ok {
			ev.Unlabelled++
			continue
		}
		if c.Verdict == Unknown {
			ev.Unknowns++
			continue
		}
		isApp := label&appBit != 0
		saysApp := c.Verdict == App
		switch {
		case saysApp && isApp:
			ev.TruePositives++
		case saysApp && !isApp:
			ev.FalsePositives++
		case !saysApp && !isApp:
			ev.TrueNegatives++
		default:
			ev.FalseNegatives++
		}
	}
	return ev
}
