// Package trace defines the on-disk formats for captured flow traces: a
// compact binary format for the multi-million-record data sets the
// benchmarks replay (the paper works on ≈3.3M flows) and a JSONL format for
// debugging and interoperability. Both stream — readers never require the
// full trace in memory.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"cwatrace/internal/netflow"
)

// Magic identifies a binary flow trace.
var Magic = [8]byte{'C', 'W', 'A', 'F', 'L', 'O', 'W', '1'}

// ErrBadMagic is returned when a binary trace does not start with Magic.
var ErrBadMagic = errors.New("trace: bad magic")

// Writer streams flow records into a binary trace.
type Writer struct {
	w       *bufio.Writer
	started bool
	count   uint64
}

// NewWriter creates a Writer on top of w. The header is emitted lazily on
// the first record (or on Flush for an empty trace).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (w *Writer) ensureHeader() error {
	if w.started {
		return nil
	}
	w.started = true
	_, err := w.w.Write(Magic[:])
	return err
}

// Write appends one record.
func (w *Writer) Write(r netflow.Record) error {
	if err := w.ensureHeader(); err != nil {
		return err
	}
	var buf [8]byte
	writeAddr := func(a netip.Addr) error {
		if a.Is4() || a.Is4In6() {
			if err := w.w.WriteByte(4); err != nil {
				return err
			}
			b := a.As4()
			_, err := w.w.Write(b[:])
			return err
		}
		if err := w.w.WriteByte(16); err != nil {
			return err
		}
		b := a.As16()
		_, err := w.w.Write(b[:])
		return err
	}
	if err := writeAddr(r.Src); err != nil {
		return err
	}
	if err := writeAddr(r.Dst); err != nil {
		return err
	}
	binary.BigEndian.PutUint16(buf[:2], r.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], r.DstPort)
	buf[4] = r.Proto
	if _, err := w.w.Write(buf[:5]); err != nil {
		return err
	}
	for _, v := range []uint64{r.Packets, r.Bytes, uint64(r.First.UnixNano()), uint64(r.Last.UnixNano())} {
		binary.BigEndian.PutUint64(buf[:], v)
		if _, err := w.w.Write(buf[:]); err != nil {
			return err
		}
	}
	if len(r.Exporter) > 255 {
		return fmt.Errorf("trace: exporter name %q too long", r.Exporter)
	}
	if err := w.w.WriteByte(byte(len(r.Exporter))); err != nil {
		return err
	}
	if _, err := w.w.WriteString(r.Exporter); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count reports how many records were written.
func (w *Writer) Count() uint64 { return w.count }

// Flush writes any buffered data (and the header of an empty trace).
func (w *Writer) Flush() error {
	if err := w.ensureHeader(); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader streams records out of a binary trace.
type Reader struct {
	r      *bufio.Reader
	header bool
}

// NewReader creates a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next record, or io.EOF at a clean end of trace.
func (r *Reader) Next() (netflow.Record, error) {
	var rec netflow.Record
	if !r.header {
		var m [8]byte
		if _, err := io.ReadFull(r.r, m[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return rec, ErrBadMagic
			}
			return rec, err
		}
		if m != Magic {
			return rec, ErrBadMagic
		}
		r.header = true
	}
	readAddr := func() (netip.Addr, error) {
		fam, err := r.r.ReadByte()
		if err != nil {
			return netip.Addr{}, err
		}
		switch fam {
		case 4:
			var b [4]byte
			if _, err := io.ReadFull(r.r, b[:]); err != nil {
				return netip.Addr{}, unexpected(err)
			}
			return netip.AddrFrom4(b), nil
		case 16:
			var b [16]byte
			if _, err := io.ReadFull(r.r, b[:]); err != nil {
				return netip.Addr{}, unexpected(err)
			}
			return netip.AddrFrom16(b), nil
		default:
			return netip.Addr{}, fmt.Errorf("trace: unknown address family %d", fam)
		}
	}
	var err error
	if rec.Src, err = readAddr(); err != nil {
		return rec, err // io.EOF here is a clean end of trace
	}
	if rec.Dst, err = readAddr(); err != nil {
		return rec, unexpected(err)
	}
	var b5 [5]byte
	if _, err := io.ReadFull(r.r, b5[:]); err != nil {
		return rec, unexpected(err)
	}
	rec.SrcPort = binary.BigEndian.Uint16(b5[:2])
	rec.DstPort = binary.BigEndian.Uint16(b5[2:4])
	rec.Proto = b5[4]
	var b8 [8]byte
	vals := make([]uint64, 4)
	for i := range vals {
		if _, err := io.ReadFull(r.r, b8[:]); err != nil {
			return rec, unexpected(err)
		}
		vals[i] = binary.BigEndian.Uint64(b8[:])
	}
	rec.Packets, rec.Bytes = vals[0], vals[1]
	rec.First = time.Unix(0, int64(vals[2])).UTC()
	rec.Last = time.Unix(0, int64(vals[3])).UTC()
	n, err := r.r.ReadByte()
	if err != nil {
		return rec, unexpected(err)
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(r.r, name); err != nil {
		return rec, unexpected(err)
	}
	rec.Exporter = string(name)
	return rec, nil
}

// unexpected converts a mid-record EOF into ErrUnexpectedEOF so callers can
// distinguish truncation from a clean end.
func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ForEach streams every record of the trace to fn, stopping early if fn
// returns an error.
func ForEach(r io.Reader, fn func(netflow.Record) error) error {
	tr := NewReader(r)
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// WriteAll writes all records and flushes.
func WriteAll(w io.Writer, recs []netflow.Record) error {
	tw := NewWriter(w)
	for _, rec := range recs {
		if err := tw.Write(rec); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// ReadAll slurps a whole trace; intended for tests and small traces.
func ReadAll(r io.Reader) ([]netflow.Record, error) {
	var out []netflow.Record
	err := ForEach(r, func(rec netflow.Record) error {
		out = append(out, rec)
		return nil
	})
	return out, err
}
