package trace

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"cwatrace/internal/netflow"
)

// quickRecord maps arbitrary fuzz inputs onto a structurally valid record.
func quickRecord(src, dst [4]byte, sport, dport uint16, proto uint8,
	pkts, bytes_ uint32, firstSec int32, durMs uint16, exporter byte) netflow.Record {
	first := time.Unix(int64(firstSec), 0).UTC()
	return netflow.Record{
		Key: netflow.Key{
			Src:     netip.AddrFrom4(src),
			Dst:     netip.AddrFrom4(dst),
			SrcPort: sport,
			DstPort: dport,
			Proto:   proto,
		},
		Packets:  uint64(pkts),
		Bytes:    uint64(bytes_),
		First:    first,
		Last:     first.Add(time.Duration(durMs) * time.Millisecond),
		Exporter: string(rune('A' + exporter%26)),
	}
}

// TestQuickBinaryRoundTrip: any valid record survives the binary codec.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(src, dst [4]byte, sport, dport uint16, proto uint8,
		pkts, byteCount uint32, firstSec int32, durMs uint16, exporter byte) bool {
		rec := quickRecord(src, dst, sport, dport, proto, pkts, byteCount, firstSec, durMs, exporter)
		var buf bytes.Buffer
		if err := WriteAll(&buf, []netflow.Record{rec}); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		return err == nil && len(got) == 1 && got[0] == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickJSONLRoundTrip: same property for the JSONL codec.
func TestQuickJSONLRoundTrip(t *testing.T) {
	f := func(src, dst [4]byte, sport, dport uint16, proto uint8,
		pkts, byteCount uint32, firstSec int32, durMs uint16, exporter byte) bool {
		rec := quickRecord(src, dst, sport, dport, proto, pkts, byteCount, firstSec, durMs, exporter)
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, []netflow.Record{rec}); err != nil {
			return false
		}
		got, err := ReadJSONL(&buf)
		return err == nil && len(got) == 1 && got[0] == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
