package trace

import (
	"bytes"
	"io"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"cwatrace/internal/netflow"
)

func randomRecords(n int, seed int64) []netflow.Record {
	rng := rand.New(rand.NewSource(seed))
	base := time.Date(2020, time.June, 16, 0, 0, 0, 0, time.UTC)
	out := make([]netflow.Record, n)
	for i := range out {
		var src [4]byte
		rng.Read(src[:])
		var dst [4]byte
		rng.Read(dst[:])
		out[i] = netflow.Record{
			Key: netflow.Key{
				Src:     netip.AddrFrom4(src),
				Dst:     netip.AddrFrom4(dst),
				SrcPort: uint16(rng.Intn(65536)),
				DstPort: 443,
				Proto:   netflow.ProtoTCP,
			},
			Packets:  uint64(1 + rng.Intn(100)),
			Bytes:    uint64(40 + rng.Intn(100000)),
			First:    base.Add(time.Duration(rng.Intn(86400)) * time.Second),
			Exporter: "Magenta/NW-000",
		}
		out[i].Last = out[i].First.Add(time.Duration(rng.Intn(60)) * time.Second)
	}
	return out
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := randomRecords(500, 1)
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], recs[i])
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected empty trace, got %d records", len(got))
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader([]byte("NOTATRACE-REALLY"))); err != ErrBadMagic {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	if _, err := ReadAll(bytes.NewReader([]byte("FOO"))); err != ErrBadMagic {
		t.Fatalf("short header: want ErrBadMagic, got %v", err)
	}
}

func TestTruncatedTrace(t *testing.T) {
	recs := randomRecords(3, 2)
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Cut mid-record: after the header plus a few bytes.
	_, err := ReadAll(bytes.NewReader(data[:len(Magic)+10]))
	if err == nil || err == io.EOF {
		t.Fatalf("truncated trace must error, got %v", err)
	}
}

func TestIPv6Records(t *testing.T) {
	rec := netflow.Record{
		Key: netflow.Key{
			Src:     netip.MustParseAddr("2001:db8::1"),
			Dst:     netip.MustParseAddr("2001:db8::2"),
			SrcPort: 443, DstPort: 50000, Proto: netflow.ProtoTCP,
		},
		Packets: 3, Bytes: 999,
		First: time.Unix(0, 12345).UTC(), Last: time.Unix(0, 67890).UTC(),
		Exporter: "r6",
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, []netflow.Record{rec}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != rec {
		t.Fatalf("IPv6 round trip mismatch: %+v", got[0])
	}
}

func TestForEachEarlyStop(t *testing.T) {
	recs := randomRecords(10, 3)
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	count := 0
	sentinel := io.ErrClosedPipe
	err := ForEach(&buf, func(netflow.Record) error {
		count++
		if count == 4 {
			return sentinel
		}
		return nil
	})
	if err != sentinel || count != 4 {
		t.Fatalf("early stop failed: count=%d err=%v", count, err)
	}
}

func TestWriterCount(t *testing.T) {
	w := NewWriter(io.Discard)
	recs := randomRecords(7, 4)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 7 {
		t.Fatalf("Count = %d", w.Count())
	}
}

func TestOverlongExporterRejected(t *testing.T) {
	rec := randomRecords(1, 5)[0]
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'x'
	}
	rec.Exporter = string(long)
	w := NewWriter(io.Discard)
	if err := w.Write(rec); err == nil {
		t.Fatal("overlong exporter must fail")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := randomRecords(100, 6)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d, wrote %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewReader([]byte("{\"src\": 42}\n"))); err == nil {
		t.Fatal("bad src type must error")
	}
	if _, err := ReadJSONL(bytes.NewReader([]byte("{\"src\":\"nonsense\",\"dst\":\"1.2.3.4\"}\n"))); err == nil {
		t.Fatal("unparseable address must error")
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	recs := randomRecords(1000, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter(io.Discard)
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryRead(b *testing.B) {
	recs := randomRecords(1000, 8)
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := ForEach(bytes.NewReader(data), func(netflow.Record) error {
			n++
			return nil
		})
		if err != nil || n != 1000 {
			b.Fatalf("n=%d err=%v", n, err)
		}
	}
}
