package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"time"

	"cwatrace/internal/netflow"
)

// jsonRecord is the JSONL wire form of a flow record.
type jsonRecord struct {
	Src      string `json:"src"`
	Dst      string `json:"dst"`
	SrcPort  uint16 `json:"sport"`
	DstPort  uint16 `json:"dport"`
	Proto    uint8  `json:"proto"`
	Packets  uint64 `json:"packets"`
	Bytes    uint64 `json:"bytes"`
	First    int64  `json:"first_ns"`
	Last     int64  `json:"last_ns"`
	Exporter string `json:"exporter"`
}

// WriteJSONL writes records as one JSON object per line.
func WriteJSONL(w io.Writer, recs []netflow.Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range recs {
		jr := jsonRecord{
			Src: r.Src.String(), Dst: r.Dst.String(),
			SrcPort: r.SrcPort, DstPort: r.DstPort, Proto: r.Proto,
			Packets: r.Packets, Bytes: r.Bytes,
			First: r.First.UnixNano(), Last: r.Last.UnixNano(),
			Exporter: r.Exporter,
		}
		if err := enc.Encode(&jr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace.
func ReadJSONL(r io.Reader) ([]netflow.Record, error) {
	var out []netflow.Record
	dec := json.NewDecoder(r)
	for {
		var jr jsonRecord
		if err := dec.Decode(&jr); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: jsonl record %d: %w", len(out), err)
		}
		src, err := netip.ParseAddr(jr.Src)
		if err != nil {
			return nil, fmt.Errorf("trace: jsonl record %d src: %w", len(out), err)
		}
		dst, err := netip.ParseAddr(jr.Dst)
		if err != nil {
			return nil, fmt.Errorf("trace: jsonl record %d dst: %w", len(out), err)
		}
		out = append(out, netflow.Record{
			Key: netflow.Key{
				Src: src, Dst: dst,
				SrcPort: jr.SrcPort, DstPort: jr.DstPort, Proto: jr.Proto,
			},
			Packets: jr.Packets, Bytes: jr.Bytes,
			First: time.Unix(0, jr.First).UTC(), Last: time.Unix(0, jr.Last).UTC(),
			Exporter: jr.Exporter,
		})
	}
}
