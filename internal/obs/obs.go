// Package obs is the shared telemetry core of the live stack: a
// dependency-free metrics registry (atomic counters and gauges,
// fixed-bucket lock-free histograms, callback-backed samples for
// counters another subsystem already maintains) that renders canonical
// Prometheus text exposition, plus the request-trace context (trace.go)
// every HTTP layer propagates.
//
// Design rules, in the order they matter:
//
//   - The hot path owns the cost model. Counter.Add, Gauge.Set and
//     Histogram.Observe are single atomic operations on pre-resolved
//     instruments — no map lookups, no label rendering, no allocation.
//     Instruments are resolved once at wiring time; the per-event call
//     is what the zero-alloc ingest tests see.
//   - Disabled is free. Every instrument method is nil-safe, and a nil
//     *Registry (obs.Disabled) hands out nil instruments, so an
//     uninstrumented daemon pays one predictable nil check per event —
//     the overhead budget BENCH_obs.json audits.
//   - The exposition is the contract. Registration enforces the naming
//     rules the strict parser (lint.go) checks — valid names, counters
//     ending in _total, no histogram-suffix collisions, no duplicate
//     (name, labels) series — so a daemon that builds its registry can
//     never serve a /metrics page its own test suite would reject.
//
// Registration is meant for process start-up and panics on programmer
// error (invalid or duplicate names), exactly like http.ServeMux.Handle;
// rendering and every instrument method are safe for concurrent use.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Disabled is the nil registry: it hands out nil instruments whose
// methods are no-ops, so a subsystem wired with it runs uninstrumented
// at the cost of one nil check per event.
var Disabled *Registry

// Label is one metric label pair. Values are escaped at render time;
// keys must be valid label names.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry is an ordered set of metric families. The zero value is not
// usable; NewRegistry builds one, and a nil *Registry is the disabled
// mode (see Disabled).
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// family is every series sharing one metric name (HELP/TYPE are emitted
// once per family).
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge" or "histogram"
	buckets []float64

	series []*series
	seen   map[string]struct{} // rendered label sets, for duplicate rejection
}

// series is one (name, labels) sample source.
type series struct {
	labels  string // canonical rendered label set, "" for none
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// NewRegistry builds an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds one series, enforcing the naming contract.
func (r *Registry) register(name, help, typ string, buckets []float64, labels []Label) *series {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if help == "" {
		panic(fmt.Sprintf("obs: metric %s registered without help text", name))
	}
	if typ == "counter" && !strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("obs: counter %s must end in _total", name))
	}
	if typ != "counter" {
		for _, suffix := range []string{"_total", "_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				panic(fmt.Sprintf("obs: %s %s must not end in the reserved suffix %s", typ, name, suffix))
			}
		}
	}
	ls := renderLabels(labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, seen: make(map[string]struct{})}
		r.families = append(r.families, f)
		r.byName[name] = f
	} else {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, typ, f.typ))
		}
		if _, dup := f.seen[ls]; dup {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, ls))
		}
	}
	s := &series{labels: ls}
	f.series = append(f.series, s)
	f.seen[ls] = struct{}{}
	return s
}

// renderLabels renders a label set canonically: sorted by key,
// values escaped per the exposition format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range sorted {
		if !labelRe.MatchString(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Key))
		}
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue escapes a label value per the text exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Counter registers a monotonically increasing counter. The name must
// end in _total. Returns nil on a disabled registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(name, help, "counter", nil, labels).counter = c
	return c
}

// Gauge registers a settable gauge. Returns nil on a disabled registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(name, help, "gauge", nil, labels).gauge = g
	return g
}

// CounterFunc registers a counter whose value is read from fn at render
// time — the port for subsystems that already maintain their own atomic
// counters (the ingest pipeline's Stats, the store's Metrics). fn must
// be monotonic and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, "counter", nil, labels).fn = fn
}

// GaugeFunc registers a gauge read from fn at render time. fn must be
// safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, "gauge", nil, labels).fn = fn
}

// Histogram registers a fixed-bucket histogram. buckets are the
// inclusive upper bounds, ascending; the +Inf bucket is implicit.
// Returns nil on a disabled registry.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %s needs at least one bucket bound", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bucket bounds must be ascending", name))
		}
	}
	bounds := append([]float64(nil), buckets...)
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.register(name, help, "histogram", bounds, labels).hist = h
	return h
}

// WritePrometheus renders every registered family in text exposition
// format: HELP and TYPE once per family, then one line per sample, in
// registration order (byte-stable across restarts, modulo values).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var sb strings.Builder
	for _, f := range families {
		sb.Reset()
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.hist != nil:
				s.hist.render(&sb, f.name, s.labels)
			default:
				sb.WriteString(f.name)
				sb.WriteString(s.labels)
				sb.WriteByte(' ')
				sb.WriteString(formatValue(s.value()))
				sb.WriteByte('\n')
			}
		}
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry as a Prometheus /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// value reads a scalar series.
func (s *series) value() float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return s.gauge.Value()
	case s.fn != nil:
		return s.fn()
	}
	return 0
}

// formatValue renders a sample value the way %g would, without the
// fmt machinery on the render path.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ---- instruments ----

// Counter is a monotonically increasing counter. The zero value is
// ready; a nil Counter is a no-op (the disabled mode).
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 gauge. The zero value is ready; a nil
// Gauge is a no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by delta (CAS loop; used for in-flight counts).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is greater (freshness watermarks:
// concurrent reporters never move a watermark backwards).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with a lock-free Observe:
// one atomic add on the bucket, the count and the (bit-cast) sum. A nil
// Histogram is a no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound, plus the +Inf overflow
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short (≤16) and the scan is
	// branch-predictable, beating binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// Count reads the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// render emits the cumulative bucket lines plus _sum and _count.
func (h *Histogram) render(sb *strings.Builder, name, labels string) {
	// Merge the le label into the series label set.
	open := "{"
	if labels != "" {
		open = labels[:len(labels)-1] + ","
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(sb, "%s_bucket%sle=\"%s\"} %d\n", name, open, formatValue(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(sb, "%s_bucket%sle=\"+Inf\"} %d\n", name, open, cum)
	fmt.Fprintf(sb, "%s_sum%s %s\n", name, labels, formatValue(math.Float64frombits(h.sum.Load())))
	fmt.Fprintf(sb, "%s_count%s %d\n", name, labels, cum)
}

// DurationBuckets is the default latency bucket ladder (seconds):
// 100µs to ~100s in roughly 3x steps, tuned to cover both a
// microsecond-scale decode stage and a multi-second degraded fan-out in
// one family.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets is the default count/size bucket ladder for batch and
// queue depth distributions: 1 to ~65k in power-of-4 steps.
var SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}
