// The event half of the flight recorder: a lock-free ring of
// structured one-shot events — the state transitions a metrics scrape
// aggregates away and a trace ring ties to one request. Checkpoint
// commits, shards declared dead, WAL rollbacks, drop-storm onsets:
// each is recorded once at the transition, cheap enough to leave on in
// production, and the whole ring dumps to stderr on panic or SIGQUIT
// so a crashing process leaves its last N decisions behind.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"
)

// Event is one recorded flight-recorder event.
type Event struct {
	Time time.Time `json:"time"`
	// Kind is a stable machine-matchable tag ("checkpoint_committed",
	// "shard_dead", "wal_rollback", "drop_storm", ...); Msg is the
	// one-line human reading.
	Kind  string         `json:"kind"`
	Msg   string         `json:"msg"`
	Attrs map[string]any `json:"attrs,omitempty"`

	// line is the pre-rendered text form for the crash dump, built at
	// Record time so a dump under panic does no formatting of shared
	// state.
	line string
}

// EventRing is a fixed-size lock-free ring of events. A nil *EventRing
// is the disabled mode: Record is a no-op.
type EventRing struct {
	ring     []atomic.Pointer[Event]
	cursor   atomic.Uint64
	recorded atomic.Uint64
}

// NewEventRing builds a ring retaining the last size events
// (default 512).
func NewEventRing(size int) *EventRing {
	if size <= 0 {
		size = 512
	}
	return &EventRing{ring: make([]atomic.Pointer[Event], size)}
}

// RegisterMetrics exposes the ring's accounting on the registry.
func (r *EventRing) RegisterMetrics(reg *Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.CounterFunc("events_recorded_total", "Flight-recorder events recorded.",
		func() float64 { return float64(r.recorded.Load()) })
}

// Record appends one event. Safe for concurrent use and on a nil ring.
func (r *EventRing) Record(kind, msg string, attrs ...Attr) {
	if r == nil {
		return
	}
	ev := &Event{Time: time.Now(), Kind: kind, Msg: msg, Attrs: attrMap(attrs)}
	line := ev.Time.UTC().Format(time.RFC3339Nano) + " " + kind + " " + msg
	for _, a := range attrs {
		line += " " + a.String()
	}
	ev.line = line
	r.recorded.Add(1)
	i := r.cursor.Add(1) - 1
	r.ring[i%uint64(len(r.ring))].Store(ev)
}

// Events snapshots the retained events, oldest first.
func (r *EventRing) Events() []*Event {
	if r == nil {
		return nil
	}
	n := len(r.ring)
	out := make([]*Event, 0, n)
	cur := r.cursor.Load()
	for i := 0; i < n; i++ {
		// oldest live slot first: the cursor names the next overwrite
		slot := (cur + uint64(i)) % uint64(n)
		if ev := r.ring[slot].Load(); ev != nil {
			out = append(out, ev)
		}
	}
	return out
}

// Handler serves the event ring as JSON, oldest first.
func (r *EventRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		events := r.Events()
		if events == nil {
			events = []*Event{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"events": events})
	})
}

// Dump writes the retained events as text, one per line, oldest first.
// Uses only pre-rendered lines so it is safe to call while panicking.
func (r *EventRing) Dump(w io.Writer) {
	events := r.Events()
	fmt.Fprintf(w, "flight recorder: %d events\n", len(events))
	for _, ev := range events {
		fmt.Fprintln(w, ev.line)
	}
}

// InstallCrashDump arranges for the event ring (followed by all
// goroutine stacks) to be dumped to w on SIGQUIT, then exits with
// status 2 — the flight-recorder replacement for the runtime's own
// SIGQUIT dump. Returns a stop function that uninstalls the handler
// (tests; daemons never call it).
func InstallCrashDump(r *EventRing, w io.Writer) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
			return
		case <-ch:
		}
		r.Dump(w)
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		w.Write(buf[:n])
		os.Exit(2)
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

// DumpOnPanic is the panic half of the crash dump: deferred at the top
// of main, it dumps the event ring to w when the main goroutine is
// unwinding under a panic, then re-panics so the runtime still prints
// the stack and exits non-zero. It only sees panics on the goroutine
// it is deferred on; InstallCrashDump's SIGQUIT path covers hung or
// wedged processes regardless of goroutine.
func DumpOnPanic(r *EventRing, w io.Writer) {
	if v := recover(); v != nil {
		r.Dump(w)
		panic(v)
	}
}
