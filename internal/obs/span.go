// Span tracing and the trace half of the flight recorder. A Tracer
// records one span tree per request (or per background operation) and
// keeps the interesting ones — tail-sampling, decided at completion
// when the outcome is known, instead of head-sampling at arrival when
// it is not. "Interesting" means slow (over a per-endpoint threshold),
// errored (5xx or an explicit Fail), or degraded (206/503 partial
// results), plus a 1-in-N baseline so healthy traffic stays visible.
//
// Spans ride the same context as the request id: the trace id IS the
// X-Request-Id, so an operator goes from an access-log line or a
// degraded envelope straight to /debug/traces?id=... without a second
// identifier. Cross-process parenting uses X-Trace-Parent (a
// traceparent-style header carrying the caller's span id) so the
// router's fan-out spans become the parents of each shard's root span
// and the merged tree reads as one request.
//
// Hot-path discipline matches the rest of the package: every Span
// method is safe on a nil receiver, so uninstrumented code pays one
// nil check; Tracer methods are safe on a nil *Tracer. The ring of
// completed traces is lock-free (atomic slot pointers behind an atomic
// cursor); only the spans of one in-flight trace share a mutex, which
// is uncontended except when a fan-out's children finish together.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceParentHeader is the HTTP header carrying the caller's span id
// (16 hex characters) across the router -> shard hop, next to
// X-Request-Id. The receiving daemon parents its root span under it so
// cross-process trees merge.
const TraceParentHeader = "X-Trace-Parent"

// FormatSpanID renders a span id for the wire: 16 lowercase hex chars.
func FormatSpanID(id uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], id)
	return hex.EncodeToString(b[:])
}

// ParseSpanID parses a wire span id. Strict: exactly 16 hex characters
// (either case). Returns (0, false) on anything else, including the
// empty string, so a missing or mangled header degrades to "no remote
// parent" instead of corrupting the tree.
func ParseSpanID(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return 0, false
	}
	id := binary.BigEndian.Uint64(b)
	return id, id != 0
}

// spanIDs hands out process-unique span ids: a per-process random seed
// mixed with an atomic counter through a splitmix64 finalizer. Unique
// across the fleet with overwhelming probability (the seed is 64
// random bits) without paying crypto/rand per span.
var spanIDs = struct {
	seed uint64
	n    atomic.Uint64
}{seed: randomSeed()}

func randomSeed() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0x9e3779b97f4a7c15 // arbitrary nonzero fallback
	}
	return binary.BigEndian.Uint64(b[:])
}

func nextSpanID() uint64 {
	for {
		x := spanIDs.seed + spanIDs.n.Add(1)*0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 { // 0 means "no parent" on the wire
			return x
		}
	}
}

// newTraceID mints a trace id for background traces that arrived with
// no request id (checkpoints, flushes). Same alphabet and length as
// NewRequestID but fed from the span-id generator: cheaper than
// crypto/rand, which matters for per-fsync traces.
func newTraceID() string {
	return FormatSpanID(nextSpanID())
}

// Attr is one typed span or event attribute. Build them with Str, Int,
// F64 and Bool; they serialize into a JSON object keyed by name.
type Attr struct {
	Key string

	kind byte // 's', 'i', 'f', 'b'
	s    string
	i    int64
	f    float64
	b    bool
}

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, kind: 's', s: v} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, kind: 'i', i: v} }

// F64 builds a float attribute.
func F64(key string, v float64) Attr { return Attr{Key: key, kind: 'f', f: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, kind: 'b', b: v} }

// value returns the attribute's dynamic value for JSON encoding.
func (a Attr) value() any {
	switch a.kind {
	case 's':
		return a.s
	case 'i':
		return a.i
	case 'f':
		return a.f
	case 'b':
		return a.b
	}
	return nil
}

// String renders "key=value" for text dumps (the event ring's crash
// dump); strings are quoted so multi-word values stay one token.
func (a Attr) String() string {
	if a.kind == 's' {
		return fmt.Sprintf("%s=%q", a.Key, a.s)
	}
	return fmt.Sprintf("%s=%v", a.Key, a.value())
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.value()
	}
	return m
}

// SpanData is one completed span as served by /debug/traces. IDs are
// wire-format (16 hex chars) so they can be compared across processes.
type SpanData struct {
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Node names the process that recorded the span; empty for spans
	// local to the serving daemon, filled in by the router when it
	// merges shard spans into a cross-process tree.
	Node    string         `json:"node,omitempty"`
	Start   time.Time      `json:"start"`
	Microns int64          `json:"duration_us"`
	Error   string         `json:"error,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Trace is one retained span tree.
type Trace struct {
	ID      string    `json:"id"`
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	Microns int64     `json:"duration_us"`
	// Status is the root HTTP status (0 for background traces).
	Status   int  `json:"status,omitempty"`
	Error    bool `json:"error,omitempty"`
	Degraded bool `json:"degraded,omitempty"`
	// Keep lists why tail-sampling retained the trace: any of "slow",
	// "error", "degraded", "sampled".
	Keep []string `json:"keep"`
	// SpansDropped counts spans discarded past Policy.MaxSpans.
	SpansDropped int        `json:"spans_dropped,omitempty"`
	Spans        []SpanData `json:"spans"`
}

// Policy is the tail-sampling policy: which completed traces the ring
// retains.
type Policy struct {
	// Slow is the default keep threshold on root-span duration
	// (default 500ms; <0 disables the slow rule).
	Slow time.Duration
	// SlowByName overrides Slow per root-span name (the api layer's
	// endpoint vocabulary: "v1_snapshot", "v1_query", ...).
	SlowByName map[string]time.Duration
	// KeepOneIn retains every Nth otherwise-boring trace as a healthy
	// baseline (default 64; 0 or negative disables).
	KeepOneIn int
	// MaxSpans bounds one trace's span count; past it spans are counted
	// in SpansDropped instead of recorded (default 512).
	MaxSpans int
}

func (p Policy) withDefaults() Policy {
	if p.Slow == 0 {
		p.Slow = 500 * time.Millisecond
	}
	if p.KeepOneIn == 0 {
		p.KeepOneIn = 64
	}
	if p.MaxSpans <= 0 {
		p.MaxSpans = 512
	}
	return p
}

func (p Policy) slowFor(name string) time.Duration {
	if d, ok := p.SlowByName[name]; ok {
		return d
	}
	return p.Slow
}

// TracerConfig parameterizes NewTracer.
type TracerConfig struct {
	// RingSize is the retained-trace capacity (default 256). The ring
	// overwrites oldest-first, so it holds the last N interesting
	// traces, not the first N.
	RingSize int
	// Policy is the tail-sampling policy (zero value = defaults).
	Policy Policy
}

// Tracer owns the trace ring. A nil *Tracer is the disabled mode:
// StartTrace returns a nil Span and the context unchanged.
type Tracer struct {
	ring   []atomic.Pointer[Trace]
	cursor atomic.Uint64
	policy Policy

	started      atomic.Uint64 // traces begun
	kept         atomic.Uint64 // traces the policy retained
	spansDropped atomic.Uint64 // spans past MaxSpans, all traces
	sampleTick   atomic.Uint64 // 1-in-N baseline counter
}

// NewTracer builds a Tracer with the given ring size and policy.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	return &Tracer{
		ring:   make([]atomic.Pointer[Trace], cfg.RingSize),
		policy: cfg.Policy.withDefaults(),
	}
}

// RegisterMetrics exposes the tracer's own accounting on the registry.
func (t *Tracer) RegisterMetrics(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	reg.CounterFunc("trace_started_total", "Traces begun (before tail-sampling).",
		func() float64 { return float64(t.started.Load()) })
	reg.CounterFunc("trace_kept_total", "Traces the tail-sampling policy retained.",
		func() float64 { return float64(t.kept.Load()) })
	reg.CounterFunc("trace_spans_dropped_total", "Spans discarded past the per-trace cap.",
		func() float64 { return float64(t.spansDropped.Load()) })
}

// activeTrace is one in-flight trace: the mutable collection the spans
// of a single request append into. The mutex covers spans/dropped/done;
// it is per-trace, so contention is limited to one request's own
// concurrency (fan-out children ending together).
type activeTrace struct {
	tracer *Tracer
	id     string
	root   *Span

	mu      sync.Mutex
	spans   []SpanData
	dropped int
	done    bool
}

// Span is one timed operation inside a trace. All methods are nil-safe.
type Span struct {
	at     *activeTrace
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu     sync.Mutex
	attrs  []Attr
	errmsg string
	status int // root only: HTTP status driving the keep decision
}

type traceCtxKey struct{}
type spanCtxKey struct{}

// StartTrace begins a new trace rooted at a span named name. The trace
// id is the request id carried by ctx (minted fresh when absent, so
// background traces — checkpoints, flushes — are addressable too).
// parent is the remote caller's span id from X-Trace-Parent, or 0 for
// a local root. The returned context carries the trace and the root
// span for StartSpan; callers must End the root to trigger the keep
// decision. Nil-safe: a nil Tracer returns (ctx, nil).
func (t *Tracer) StartTrace(ctx context.Context, name string, parent uint64) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	id := RequestID(ctx)
	if id == "" {
		id = newTraceID()
		ctx = WithRequestID(ctx, id)
	}
	t.started.Add(1)
	at := &activeTrace{tracer: t, id: id}
	sp := &Span{at: at, id: nextSpanID(), parent: parent, name: name, start: time.Now()}
	at.root = sp
	ctx = context.WithValue(ctx, traceCtxKey{}, at)
	ctx = context.WithValue(ctx, spanCtxKey{}, sp.id)
	return ctx, sp
}

// StartSpan begins a child span under the current span in ctx. Without
// an active trace it is free: (ctx, nil), and the nil Span swallows
// Set/Fail/End.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	at, _ := ctx.Value(traceCtxKey{}).(*activeTrace)
	if at == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanCtxKey{}).(uint64)
	sp := &Span{at: at, id: nextSpanID(), parent: parent, name: name, start: time.Now()}
	return context.WithValue(ctx, spanCtxKey{}, sp.id), sp
}

// ContextSpanID returns the current span id in ctx (0 when untraced);
// the client layer forwards it as X-Trace-Parent.
func ContextSpanID(ctx context.Context) uint64 {
	id, _ := ctx.Value(spanCtxKey{}).(uint64)
	return id
}

// Set appends attributes to the span.
func (sp *Span) Set(attrs ...Attr) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.attrs = append(sp.attrs, attrs...)
	sp.mu.Unlock()
}

// Fail marks the span errored. A failed root retains the whole trace.
func (sp *Span) Fail(err error) {
	if sp == nil || err == nil {
		return
	}
	sp.mu.Lock()
	sp.errmsg = err.Error()
	sp.mu.Unlock()
}

// SetStatus records the HTTP status on a root span; the keep decision
// reads it (>=500 errored, 206/503 degraded). No-op on children.
func (sp *Span) SetStatus(code int) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.status = code
	sp.mu.Unlock()
}

// End completes the span. Ending the root finalizes the trace and runs
// tail-sampling; ending a child appends it to the in-flight trace. A
// child ending after its root (a handler racing the TimeoutHandler) is
// dropped — the trace is already sealed.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	dur := time.Since(sp.start)
	at := sp.at
	sp.mu.Lock()
	data := SpanData{
		ID:      FormatSpanID(sp.id),
		Name:    sp.name,
		Start:   sp.start,
		Microns: dur.Microseconds(),
		Error:   sp.errmsg,
		Attrs:   attrMap(sp.attrs),
	}
	status := sp.status
	sp.mu.Unlock()
	if sp.parent != 0 {
		data.Parent = FormatSpanID(sp.parent)
	}

	if sp == at.root {
		at.finalize(data, status, dur)
		return
	}
	at.mu.Lock()
	switch {
	case at.done:
		// sealed; drop silently (counted nowhere: the trace is gone)
	case len(at.spans) >= at.tracer.policy.MaxSpans:
		at.dropped++
		at.tracer.spansDropped.Add(1)
	default:
		at.spans = append(at.spans, data)
	}
	at.mu.Unlock()
}

// finalize seals the trace and applies the tail-sampling policy.
func (at *activeTrace) finalize(root SpanData, status int, dur time.Duration) {
	t := at.tracer
	at.mu.Lock()
	if at.done {
		at.mu.Unlock()
		return
	}
	at.done = true
	spans := append(at.spans, root)
	dropped := at.dropped
	at.spans = nil
	at.mu.Unlock()

	errored := root.Error != "" || status >= 500
	degraded := status == http.StatusPartialContent || status == http.StatusServiceUnavailable
	var keep []string
	if slow := t.policy.slowFor(root.Name); slow >= 0 && dur >= slow {
		keep = append(keep, "slow")
	}
	if errored {
		keep = append(keep, "error")
	}
	if degraded {
		keep = append(keep, "degraded")
	}
	if keep == nil && t.policy.KeepOneIn > 0 &&
		(t.sampleTick.Add(1)-1)%uint64(t.policy.KeepOneIn) == 0 {
		keep = append(keep, "sampled")
	}
	if keep == nil {
		return
	}
	t.kept.Add(1)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	tr := &Trace{
		ID:           at.id,
		Name:         root.Name,
		Start:        root.Start,
		Microns:      root.Microns,
		Status:       status,
		Error:        errored,
		Degraded:     degraded,
		Keep:         keep,
		SpansDropped: dropped,
		Spans:        spans,
	}
	i := t.cursor.Add(1) - 1
	t.ring[i%uint64(len(t.ring))].Store(tr)
}

// Traces snapshots the retained traces, newest first.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	n := len(t.ring)
	out := make([]*Trace, 0, n)
	cur := t.cursor.Load()
	for i := 0; i < n; i++ {
		// walk backwards from the newest slot
		slot := (cur + uint64(n) - 1 - uint64(i)) % uint64(n)
		if tr := t.ring[slot].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// Lookup returns the newest retained trace with the given id, or nil.
func (t *Tracer) Lookup(id string) *Trace {
	for _, tr := range t.Traces() {
		if tr.ID == id {
			return tr
		}
	}
	return nil
}

// traceSummary is the list view of /debug/traces: everything but the
// span bodies.
type traceSummary struct {
	ID       string    `json:"id"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	Microns  int64     `json:"duration_us"`
	Status   int       `json:"status,omitempty"`
	Error    bool      `json:"error,omitempty"`
	Degraded bool      `json:"degraded,omitempty"`
	Keep     []string  `json:"keep"`
	Spans    int       `json:"spans"`
}

// Handler serves the trace ring as JSON: the retained-trace index
// (newest first), or one full span tree with ?id=<request id>.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		if t == nil {
			json.NewEncoder(w).Encode(map[string]any{"ring_size": 0, "traces": []traceSummary{}})
			return
		}
		if id := r.URL.Query().Get("id"); id != "" {
			tr := t.Lookup(id)
			if tr == nil {
				w.WriteHeader(http.StatusNotFound)
				json.NewEncoder(w).Encode(map[string]string{"error": "trace not retained", "id": id})
				return
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(tr)
			return
		}
		traces := t.Traces()
		sums := make([]traceSummary, 0, len(traces))
		for _, tr := range traces {
			sums = append(sums, traceSummary{
				ID: tr.ID, Name: tr.Name, Start: tr.Start, Microns: tr.Microns,
				Status: tr.Status, Error: tr.Error, Degraded: tr.Degraded,
				Keep: tr.Keep, Spans: len(tr.Spans),
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"ring_size": len(t.ring), "traces": sums})
	})
}
