// The exposition linter: a strict parser for the Prometheus text format
// that both daemons' /metrics tests run against their live endpoints.
// It is deliberately harsher than a real scraper — duplicate series,
// counters without the _total suffix, HELP/TYPE mismatches, histogram
// buckets that are missing +Inf or not cumulative, and stray whitespace
// are all hard errors — so the exposition contract is enforced by test,
// not convention.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	Name   string // full sample name, including _bucket/_sum/_count suffixes
	Labels string // rendered label set as it appeared, "" for none
	Value  float64
}

// Exposition is a lint-validated /metrics page.
type Exposition struct {
	Types   map[string]string // family name -> counter|gauge|histogram
	Help    map[string]string
	Samples []Sample
}

// Value returns the value of the sample with the given full name and
// rendered label set, and whether it exists.
func (e *Exposition) Value(name, labels string) (float64, bool) {
	for _, s := range e.Samples {
		if s.Name == name && s.Labels == labels {
			return s.Value, true
		}
	}
	return 0, false
}

// Lint parses text as Prometheus exposition format and returns every
// violation of the contract. A clean page yields an empty slice; the
// parsed exposition is returned even when there are errors, for
// spot-checking values.
func Lint(text string) (*Exposition, []error) {
	exp := &Exposition{Types: make(map[string]string), Help: make(map[string]string)}
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	type seriesKey struct{ name, labels string }
	seen := make(map[seriesKey]struct{})
	lines := strings.Split(text, "\n")
	if len(lines) == 0 || lines[len(lines)-1] != "" {
		fail("exposition must end with a newline")
	} else {
		lines = lines[:len(lines)-1]
	}
	for i, line := range lines {
		lno := i + 1
		if line == "" {
			fail("line %d: blank line", lno)
			continue
		}
		if strings.TrimRight(line, " \t") != line {
			fail("line %d: trailing whitespace", lno)
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := line[len("# HELP "):]
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				fail("line %d: HELP without text: %q", lno, line)
				continue
			}
			if !nameRe.MatchString(name) {
				fail("line %d: invalid metric name %q", lno, name)
			}
			if _, dup := exp.Help[name]; dup {
				fail("line %d: duplicate HELP for %s", lno, name)
			}
			exp.Help[name] = help
		case strings.HasPrefix(line, "# TYPE "):
			rest := line[len("# TYPE "):]
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				fail("line %d: malformed TYPE line: %q", lno, line)
				continue
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				fail("line %d: unsupported metric type %q", lno, typ)
			}
			if _, dup := exp.Types[name]; dup {
				fail("line %d: duplicate TYPE for %s", lno, name)
			}
			if _, ok := exp.Help[name]; !ok {
				fail("line %d: TYPE %s without preceding HELP", lno, name)
			}
			exp.Types[name] = typ
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				fail("line %d: counter %s lacks the _total suffix", lno, name)
			}
			if typ != "counter" {
				for _, suffix := range []string{"_total", "_bucket", "_sum", "_count"} {
					if strings.HasSuffix(name, suffix) {
						fail("line %d: %s %s ends in the reserved suffix %s", lno, typ, name, suffix)
					}
				}
			}
		case strings.HasPrefix(line, "#"):
			fail("line %d: unexpected comment %q", lno, line)
		default:
			sample, err := parseSample(line)
			if err != nil {
				fail("line %d: %v", lno, err)
				continue
			}
			fam, suffix := familyOf(sample.Name, exp.Types)
			typ, ok := exp.Types[fam]
			if !ok {
				fail("line %d: sample %s has no TYPE declaration", lno, sample.Name)
			} else if typ == "histogram" {
				if suffix == "" {
					fail("line %d: histogram %s sample lacks _bucket/_sum/_count suffix", lno, fam)
				}
			} else if suffix != "" {
				fail("line %d: %s %s has reserved histogram suffix %s", lno, typ, fam, suffix)
			}
			key := seriesKey{sample.Name, sample.Labels}
			if _, dup := seen[key]; dup {
				fail("line %d: duplicate sample %s%s", lno, sample.Name, sample.Labels)
			}
			seen[key] = struct{}{}
			exp.Samples = append(exp.Samples, sample)
		}
	}
	// Families declared but never sampled, and histogram invariants.
	sampled := make(map[string]bool)
	for _, s := range exp.Samples {
		fam, _ := familyOf(s.Name, exp.Types)
		sampled[fam] = true
	}
	var fams []string
	for name := range exp.Types {
		fams = append(fams, name)
	}
	sort.Strings(fams)
	for _, name := range fams {
		if !sampled[name] {
			fail("family %s declared but has no samples", name)
		}
		if exp.Types[name] == "histogram" {
			lintHistogram(name, exp, fail)
		}
	}
	return exp, errs
}

// familyOf maps a sample name to its declared family, peeling histogram
// suffixes only when the base name is a declared histogram. Returns the
// family name and the suffix consumed ("" for scalar samples).
func familyOf(sample string, types map[string]string) (string, string) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suffix); ok && types[base] == "histogram" {
			return base, suffix
		}
	}
	return sample, ""
}

// parseSample splits "name{labels} value" into its parts, validating
// the name, every label pair, and the value.
func parseSample(line string) (Sample, error) {
	var s Sample
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:nameEnd]
	if !nameRe.MatchString(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest := line[nameEnd:]
	if rest[0] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		s.Labels = rest[:end+1]
		if err := lintLabels(s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	if len(rest) < 2 || rest[0] != ' ' {
		return s, fmt.Errorf("missing value separator in %q", line)
	}
	valStr := rest[1:]
	if strings.ContainsRune(valStr, ' ') {
		return s, fmt.Errorf("extra fields after value in %q", line)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		if valStr == "+Inf" || valStr == "-Inf" || valStr == "NaN" {
			return s, fmt.Errorf("non-finite sample value %q", valStr)
		}
		return s, fmt.Errorf("bad sample value %q: %v", valStr, err)
	}
	s.Value = v
	return s, nil
}

// lintLabels validates a rendered {k="v",...} label set.
func lintLabels(ls string) error {
	body := ls[1 : len(ls)-1]
	if body == "" {
		return fmt.Errorf("empty label set {}")
	}
	seen := make(map[string]bool)
	for body != "" {
		eq := strings.Index(body, "=\"")
		if eq <= 0 {
			return fmt.Errorf("malformed label pair in %s", ls)
		}
		key := body[:eq]
		if !labelRe.MatchString(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		if seen[key] {
			return fmt.Errorf("duplicate label %q in %s", key, ls)
		}
		seen[key] = true
		rest := body[eq+2:]
		// Scan to the closing quote, honoring backslash escapes.
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value in %s", ls)
		}
		body = rest[end+1:]
		if body != "" {
			if body[0] != ',' {
				return fmt.Errorf("missing comma between labels in %s", ls)
			}
			body = body[1:]
		}
	}
	return nil
}

// lintHistogram checks one histogram family: every series must have a
// +Inf bucket, cumulative (non-decreasing) bucket counts, and a _count
// equal to its +Inf bucket.
func lintHistogram(name string, exp *Exposition, fail func(string, ...any)) {
	type hseries struct {
		bounds  []float64
		counts  []float64
		infSeen bool
		inf     float64
		count   float64
		hasCnt  bool
		hasSum  bool
	}
	byLabels := make(map[string]*hseries)
	get := func(labels string) *hseries {
		h := byLabels[labels]
		if h == nil {
			h = &hseries{}
			byLabels[labels] = h
		}
		return h
	}
	for _, s := range exp.Samples {
		switch s.Name {
		case name + "_bucket":
			le, base, err := splitLE(s.Labels)
			if err != nil {
				fail("histogram %s: %v", name, err)
				continue
			}
			h := get(base)
			if le == "+Inf" {
				h.infSeen = true
				h.inf = s.Value
			} else {
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					fail("histogram %s: bad le=%q", name, le)
					continue
				}
				h.bounds = append(h.bounds, bound)
				h.counts = append(h.counts, s.Value)
			}
		case name + "_sum":
			get(s.Labels).hasSum = true
		case name + "_count":
			h := get(s.Labels)
			h.hasCnt = true
			h.count = s.Value
		}
	}
	for labels, h := range byLabels {
		tag := name
		if labels != "" {
			tag += labels
		}
		if !h.infSeen {
			fail("histogram %s missing le=\"+Inf\" bucket", tag)
			continue
		}
		if !h.hasSum || !h.hasCnt {
			fail("histogram %s missing _sum or _count", tag)
			continue
		}
		prev := 0.0
		for i, c := range h.counts {
			if c < prev {
				fail("histogram %s buckets not cumulative at le=%g", tag, h.bounds[i])
			}
			prev = c
		}
		if h.inf < prev {
			fail("histogram %s +Inf bucket below preceding bucket", tag)
		}
		if h.count != h.inf {
			fail("histogram %s _count %g != +Inf bucket %g", tag, h.count, h.inf)
		}
	}
}

// splitLE removes the le label from a bucket label set, returning the
// le value and the remaining (base) label set.
func splitLE(labels string) (le, base string, err error) {
	if labels == "" {
		return "", "", fmt.Errorf("bucket sample without le label")
	}
	body := labels[1 : len(labels)-1]
	var kept []string
	for _, pair := range splitPairs(body) {
		if v, ok := strings.CutPrefix(pair, `le="`); ok {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		kept = append(kept, pair)
	}
	if le == "" {
		return "", "", fmt.Errorf("bucket sample %s without le label", labels)
	}
	if len(kept) == 0 {
		return le, "", nil
	}
	return le, "{" + strings.Join(kept, ",") + "}", nil
}

// splitPairs splits a label body on commas outside quoted values.
func splitPairs(body string) []string {
	var pairs []string
	start, depth := 0, false
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				pairs = append(pairs, body[start:i])
				start = i + 1
			}
		}
	}
	return append(pairs, body[start:])
}
