// Runtime telemetry: Go runtime health gauges on the registry, backed
// by the runtime/metrics package. Sampling is batched and cached — one
// metrics.Read per scrape burst refreshes every gauge, so a registry
// render costs one runtime read no matter how many go_* series it
// serves, and an aggressive scraper cannot turn gauge reads into
// stop-the-world pressure.
package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// the runtime/metrics names the gauges sample, indexed by the
// constants below.
var runtimeSampleNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
	"/gc/cycles/total:gc-cycles",
}

const (
	rsHeapBytes = iota
	rsGCPauses
	rsSchedLatencies
	rsGCCycles
)

// runtimeSampler caches one metrics.Read for maxAge so a scrape of N
// go_* series costs one runtime read, not N.
type runtimeSampler struct {
	mu      sync.Mutex
	samples []metrics.Sample
	stamp   time.Time
	maxAge  time.Duration
}

func newRuntimeSampler() *runtimeSampler {
	s := &runtimeSampler{maxAge: 100 * time.Millisecond}
	s.samples = make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		s.samples[i].Name = name
	}
	return s
}

// value returns the idx'th sample, refreshing the batch when stale.
// The returned Value is never written after return (metrics.Read
// replaces whole Sample values), so callers may read it unlocked.
func (s *runtimeSampler) value(idx int) metrics.Value {
	s.mu.Lock()
	if time.Since(s.stamp) > s.maxAge {
		metrics.Read(s.samples)
		s.stamp = time.Now()
	}
	v := s.samples[idx].Value
	s.mu.Unlock()
	return v
}

func (s *runtimeSampler) uint64At(idx int) float64 {
	if v := s.value(idx); v.Kind() == metrics.KindUint64 {
		return float64(v.Uint64())
	}
	return 0
}

func (s *runtimeSampler) quantileAt(idx int, q float64) float64 {
	v := s.value(idx)
	if v.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	return histQuantile(v.Float64Histogram(), q)
}

// histQuantile returns the q-quantile upper bucket bound of a
// runtime/metrics histogram: the same "p99 is the bucket edge"
// semantics Prometheus users expect. 0 on an empty histogram.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Buckets has len(Counts)+1 edges; i's upper edge is i+1.
			edge := h.Buckets[i+1]
			if math.IsInf(edge, +1) {
				edge = h.Buckets[i] // the last finite lower edge
			}
			return edge
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// RegisterRuntimeMetrics registers the Go runtime health gauges:
//
//	go_goroutines                   live goroutine count
//	go_heap_objects_bytes           live heap (runtime/metrics heap objects)
//	go_gc_pause_p99_seconds         p99 stop-the-world GC pause, process lifetime
//	go_sched_latency_p99_seconds    p99 goroutine scheduling latency, process lifetime
//	go_gc_cycles_total              completed GC cycles
//
// One call per registry; a second call panics on the duplicate names,
// same as any double registration.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	s := newRuntimeSampler()
	reg.GaugeFunc("go_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_heap_objects_bytes", "Bytes of live heap objects.",
		func() float64 { return s.uint64At(rsHeapBytes) })
	reg.GaugeFunc("go_gc_pause_p99_seconds",
		"p99 stop-the-world GC pause over the process lifetime.",
		func() float64 { return s.quantileAt(rsGCPauses, 0.99) })
	reg.GaugeFunc("go_sched_latency_p99_seconds",
		"p99 goroutine scheduling latency over the process lifetime.",
		func() float64 { return s.quantileAt(rsSchedLatencies, 0.99) })
	reg.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 { return s.uint64At(rsGCCycles) })
}
