package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

// mustLint lints a rendered page and fails the test on any violation.
func mustLint(t *testing.T, text string) *Exposition {
	t.Helper()
	exp, errs := Lint(text)
	for _, err := range errs {
		t.Errorf("lint: %v", err)
	}
	if t.Failed() {
		t.Fatalf("exposition:\n%s", text)
	}
	return exp
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sb.String()
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "Total events.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("queue_depth", "Current queue depth.", L("shard", "0"))
	g.Set(7)
	r.GaugeFunc("freshness_lag_seconds", "Lag behind the wire.", func() float64 { return 1.5 })
	r.CounterFunc("ported_total", "A ported counter.", func() float64 { return 9 })
	h := r.Histogram("op_seconds", "Operation latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)

	text := render(t, r)
	exp := mustLint(t, text)

	if v, ok := exp.Value("events_total", ""); !ok || v != 42 {
		t.Errorf("events_total = %v, %v; want 42", v, ok)
	}
	if v, ok := exp.Value("queue_depth", `{shard="0"}`); !ok || v != 7 {
		t.Errorf("queue_depth{shard=0} = %v, %v; want 7", v, ok)
	}
	if v, ok := exp.Value("freshness_lag_seconds", ""); !ok || v != 1.5 {
		t.Errorf("freshness_lag_seconds = %v, %v; want 1.5", v, ok)
	}
	if v, ok := exp.Value("op_seconds_bucket", `{le="0.1"}`); !ok || v != 2 {
		t.Errorf("op_seconds_bucket{le=0.1} = %v, %v; want cumulative 2", v, ok)
	}
	if v, ok := exp.Value("op_seconds_bucket", `{le="+Inf"}`); !ok || v != 3 {
		t.Errorf("op_seconds_bucket{le=+Inf} = %v, %v; want 3", v, ok)
	}
	if v, ok := exp.Value("op_seconds_count", ""); !ok || v != 3 {
		t.Errorf("op_seconds_count = %v, %v; want 3", v, ok)
	}
	if exp.Types["events_total"] != "counter" || exp.Types["op_seconds"] != "histogram" {
		t.Errorf("types = %v", exp.Types)
	}
}

// Metric names and ordering must be byte-stable across registry rebuilds
// (restarts): same registrations, same page modulo values.
func TestExpositionByteStableAcrossRebuild(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("a_total", "A.")
		r.Gauge("b", "B.", L("shard", "1"), L("node", "x"))
		r.Gauge("b", "B.", L("shard", "0"), L("node", "y"))
		r.Histogram("c_seconds", "C.", []float64{1, 2})
		return r
	}
	if got, want := render(t, build()), render(t, build()); got != want {
		t.Errorf("rebuilt registry rendered differently:\n%s\nvs\n%s", got, want)
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"counter without _total", func(r *Registry) { r.Counter("events", "E.") }},
		{"gauge with _total", func(r *Registry) { r.Gauge("x_total", "X.") }},
		{"gauge with _bucket", func(r *Registry) { r.Gauge("x_bucket", "X.") }},
		{"invalid name", func(r *Registry) { r.Gauge("bad name", "X.") }},
		{"empty help", func(r *Registry) { r.Gauge("x", "") }},
		{"invalid label", func(r *Registry) { r.Gauge("x", "X.", L("bad-key", "v")) }},
		{"type clash", func(r *Registry) { r.Gauge("x", "X."); r.Histogram("x", "X.", []float64{1}) }},
		{"duplicate series", func(r *Registry) { r.Gauge("x", "X."); r.Gauge("x", "X.") }},
		{"duplicate labeled series", func(r *Registry) {
			r.Gauge("x", "X.", L("a", "1"))
			r.Gauge("x", "X.", L("a", "1"))
		}},
		{"unordered buckets", func(r *Registry) { r.Histogram("h_seconds", "H.", []float64{2, 1}) }},
		{"empty buckets", func(r *Registry) { r.Histogram("h_seconds", "H.", nil) }},
		{"duplicate func series", func(r *Registry) {
			f := func() float64 { return 0 }
			r.CounterFunc("f_total", "F.", f)
			r.CounterFunc("f_total", "F.", f)
		}},
		{"func clashes with instrument", func(r *Registry) {
			r.Gauge("x", "X.")
			r.GaugeFunc("x", "X.", func() float64 { return 0 })
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

// Distinct label values on one family are fine and render as separate
// series under a single HELP/TYPE header.
func TestLabeledFamilySharesHeader(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 3; i++ {
		r.Gauge("shard_depth", "Depth.", L("shard", string(rune('0'+i)))).Set(float64(i))
	}
	text := render(t, r)
	mustLint(t, text)
	if n := strings.Count(text, "# TYPE shard_depth gauge"); n != 1 {
		t.Errorf("TYPE header count = %d, want 1\n%s", n, text)
	}
}

// The disabled registry and its nil instruments must be no-ops, not
// panics: this is the obs.Disabled mode every subsystem defaults to.
func TestDisabledRegistryIsNoOp(t *testing.T) {
	var r *Registry = Disabled
	c := r.Counter("x_total", "X.")
	g := r.Gauge("y", "Y.")
	h := r.Histogram("z_seconds", "Z.", []float64{1})
	r.CounterFunc("f_total", "F.", func() float64 { return 1 })
	r.GaugeFunc("fg", "FG.", func() float64 { return 1 })
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments should read zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
}

// The hot-path methods must not allocate: the ingest zero-alloc pin
// depends on it.
func TestInstrumentsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "X.")
	g := r.Gauge("y", "Y.")
	h := r.Histogram("z_seconds", "Z.", DurationBuckets)
	var nilC *Counter
	var nilH *Histogram
	if n := testing.AllocsPerRun(100, func() {
		c.Add(3)
		g.Set(1.5)
		g.SetMax(2.5)
		h.Observe(0.004)
		nilC.Add(1)
		nilH.Observe(1)
	}); n != 0 {
		t.Errorf("hot-path instruments allocate %v allocs/op, want 0", n)
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Errorf("SetMax lowered gauge to %v", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Errorf("SetMax did not raise gauge: %v", g.Value())
	}
}

func TestLintRejectsBadPages(t *testing.T) {
	cases := []struct{ name, page string }{
		{"duplicate sample", "# HELP a_total A.\n# TYPE a_total counter\na_total 1\na_total 2\n"},
		{"unsuffixed counter", "# HELP a A.\n# TYPE a counter\na 1\n"},
		{"missing HELP", "# TYPE a_total counter\na_total 1\n"},
		{"missing TYPE", "# HELP a_total A.\na_total 1\n"},
		{"blank line", "# HELP a_total A.\n# TYPE a_total counter\na_total 1\n\n"},
		{"no trailing newline", "# HELP a_total A.\n# TYPE a_total counter\na_total 1"},
		{"histogram without inf", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"non-cumulative buckets", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"},
		{"count mismatch", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n"},
		{"declared but unsampled", "# HELP a_total A.\n# TYPE a_total counter\n"},
		{"reserved suffix on gauge", "# HELP g_bucket G.\n# TYPE g_bucket gauge\ng_bucket 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, errs := Lint(tc.page); len(errs) == 0 {
				t.Errorf("lint accepted bad page:\n%s", tc.page)
			}
		})
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "G.", L("path", `a"b\c`)).Set(1)
	text := render(t, r)
	mustLint(t, text)
	if !strings.Contains(text, `path="a\"b\\c"`) {
		t.Errorf("label value not escaped:\n%s", text)
	}
}

func TestRequestID(t *testing.T) {
	id := NewRequestID()
	if len(id) != 16 || !ValidRequestID(id) {
		t.Errorf("NewRequestID() = %q", id)
	}
	if id2 := NewRequestID(); id2 == id {
		t.Errorf("two request ids collided: %q", id)
	}
	for _, ok := range []string{"abc", "A-b_c.9", strings.Repeat("x", 64)} {
		if !ValidRequestID(ok) {
			t.Errorf("ValidRequestID(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "a b", "x\n", "{evil}", strings.Repeat("x", 65),
		"id-ä", "日本", "x\x80y"} {
		if ValidRequestID(bad) {
			t.Errorf("ValidRequestID(%q) = true, want false", bad)
		}
	}
	ctx := WithRequestID(context.Background(), id)
	if got := RequestID(ctx); got != id {
		t.Errorf("RequestID(ctx) = %q, want %q", got, id)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Errorf("RequestID(empty ctx) = %q, want empty", got)
	}
}
