// Request tracing: the X-Request-Id that the edge (whichever daemon
// first sees the request) generates, the client forwards through the
// fleet fan-out, and every access log echoes. IDs ride the context so
// the api, client and cluster layers need no new plumbing parameters.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// RequestIDHeader is the HTTP header carrying the request id across
// the router -> shard hop.
const RequestIDHeader = "X-Request-Id"

// ctxKey is the private context key type for request ids.
type ctxKey struct{}

// NewRequestID returns a fresh 16-hex-character request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the platforms we run on; a zero id
		// is still a valid (if unlucky) trace token.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether a client-supplied id is safe to echo
// into logs and headers: 1-64 characters of [0-9A-Za-z_.-]. Anything
// else is discarded and replaced at the edge, so log lines stay
// single-line and grep-safe.
func ValidRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '_', c == '.', c == '-':
		default:
			return false
		}
	}
	return true
}

// WithRequestID returns a context carrying the request id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestID returns the request id carried by ctx, or "" when the
// request was never traced (internal callers, tests).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}
