package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"runtime"
	"runtime/metrics"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventRingRecordAndWrap(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 6; i++ {
		r.Record("k", fmt.Sprintf("m%d", i), Int("i", int64(i)))
	}
	got := r.Events()
	if len(got) != 4 {
		t.Fatalf("retained %d events, want ring size 4", len(got))
	}
	// Oldest first: 0 and 1 were overwritten.
	for i, ev := range got {
		if want := fmt.Sprintf("m%d", i+2); ev.Msg != want {
			t.Errorf("event[%d].Msg = %q, want %q", i, ev.Msg, want)
		}
		if ev.Kind != "k" || ev.Time.IsZero() {
			t.Errorf("event[%d] = %+v", i, ev)
		}
	}
	if got[0].Attrs["i"] != int64(2) {
		t.Errorf("attrs = %#v", got[0].Attrs)
	}
}

func TestEventRingNilIsNoOp(t *testing.T) {
	var r *EventRing
	r.Record("k", "m")
	if r.Events() != nil {
		t.Fatal("nil ring returned events")
	}
	var sb strings.Builder
	r.Dump(&sb)
	if !strings.Contains(sb.String(), "0 events") {
		t.Errorf("nil Dump = %q", sb.String())
	}
	r.RegisterMetrics(NewRegistry())
}

func TestEventRingDump(t *testing.T) {
	r := NewEventRing(8)
	r.Record("shard_dead", "shard stopped answering", Int("shard", 1), Str("node", "n1"))
	r.Record("wal_rollback", "short write rolled back")
	var sb strings.Builder
	r.Dump(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 || lines[0] != "flight recorder: 2 events" {
		t.Fatalf("dump = %q", out)
	}
	if !strings.Contains(lines[1], "shard_dead shard stopped answering shard=1 node=\"n1\"") {
		t.Errorf("dump line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "wal_rollback") {
		t.Errorf("dump line = %q", lines[2])
	}
}

func TestEventRingHandler(t *testing.T) {
	r := NewEventRing(8)
	r.Record("checkpoint_committed", "frame sealed", Int("frame_seq", 3))
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	var body struct {
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode: %v\n%s", err, rec.Body.String())
	}
	if len(body.Events) != 1 || body.Events[0].Kind != "checkpoint_committed" {
		t.Fatalf("events = %+v", body.Events)
	}
	// Attrs survive the JSON hop (ints arrive as float64 — fine for a
	// debug endpoint).
	if body.Events[0].Attrs["frame_seq"] != float64(3) {
		t.Errorf("attrs = %#v", body.Events[0].Attrs)
	}
}

func TestEventRingConcurrentRecord(t *testing.T) {
	r := NewEventRing(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record("k", "m", Int("g", int64(g)))
				r.Events()
			}
		}(g)
	}
	wg.Wait()
	if got := r.Events(); len(got) != 16 {
		t.Fatalf("retained %d events, want 16 (full)", len(got))
	}
	exp := mustLint(t, render(t, func() *Registry {
		reg := NewRegistry()
		r.RegisterMetrics(reg)
		return reg
	}()))
	if v, _ := exp.Value("events_recorded_total", ""); v != 800 {
		t.Errorf("events_recorded_total = %v, want 800", v)
	}
}

func TestDumpOnPanic(t *testing.T) {
	r := NewEventRing(8)
	r.Record("drop_storm", "lanes saturated")
	var sb strings.Builder
	func() {
		defer func() {
			if recover() == nil {
				t.Error("DumpOnPanic swallowed the panic")
			}
		}()
		defer DumpOnPanic(r, &sb)
		panic("boom")
	}()
	if !strings.Contains(sb.String(), "drop_storm") {
		t.Errorf("panic dump = %q", sb.String())
	}

	// Without a panic it must write nothing.
	sb.Reset()
	func() {
		defer DumpOnPanic(r, &sb)
	}()
	if sb.Len() != 0 {
		t.Errorf("clean return still dumped: %q", sb.String())
	}
}

func TestInstallCrashDumpStop(t *testing.T) {
	// Can't deliver SIGQUIT in-process (the handler would os.Exit), but
	// install/stop must not leak the watcher goroutine. The first
	// signal.Notify in a process starts a permanent runtime goroutine, so
	// warm it up before taking the baseline.
	InstallCrashDump(NewEventRing(4), &strings.Builder{})()
	time.Sleep(10 * time.Millisecond)
	before := runtime.NumGoroutine()
	stop := InstallCrashDump(NewEventRing(4), &strings.Builder{})
	stop()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines %d -> %d after stop", before, n)
	}
}

func TestRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	runtime.GC() // make the gc counters non-trivial
	exp := mustLint(t, render(t, reg))
	if v, ok := exp.Value("go_goroutines", ""); !ok || v < 1 {
		t.Errorf("go_goroutines = %v (found=%t), want >= 1", v, ok)
	}
	if v, ok := exp.Value("go_heap_objects_bytes", ""); !ok || v <= 0 {
		t.Errorf("go_heap_objects_bytes = %v (found=%t), want > 0", v, ok)
	}
	if v, ok := exp.Value("go_gc_cycles_total", ""); !ok || v < 1 {
		t.Errorf("go_gc_cycles_total = %v (found=%t), want >= 1", v, ok)
	}
	// The p99 gauges must render (value may be 0 on a quiet runtime).
	for _, name := range []string{"go_gc_pause_p99_seconds", "go_sched_latency_p99_seconds"} {
		if _, ok := exp.Value(name, ""); !ok {
			t.Errorf("%s missing from exposition", name)
		}
	}
}

func TestHistQuantile(t *testing.T) {
	// histQuantile is pure — drive it directly with a synthetic histogram.
	h := &metrics.Float64Histogram{
		Counts:  []uint64{90, 9, 1},
		Buckets: []float64{0, 0.001, 0.01, 0.1},
	}
	if got := histQuantile(h, 0.5); got != 0.001 {
		t.Errorf("p50 = %v, want 0.001", got)
	}
	if got := histQuantile(h, 0.99); got != 0.01 {
		t.Errorf("p99 = %v, want 0.01", got)
	}
	if got := histQuantile(h, 1.0); got != 0.1 {
		t.Errorf("p100 = %v, want 0.1", got)
	}
	if got := histQuantile(&metrics.Float64Histogram{}, 0.99); got != 0 {
		t.Errorf("empty histogram p99 = %v, want 0", got)
	}
	if got := histQuantile(nil, 0.99); got != 0 {
		t.Errorf("nil histogram p99 = %v, want 0", got)
	}
}
