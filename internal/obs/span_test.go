package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// keepAll retains every completed trace: no slow threshold, keep-1-in-1.
func keepAll(ring int) *Tracer {
	return NewTracer(TracerConfig{RingSize: ring, Policy: Policy{Slow: -1, KeepOneIn: 1}})
}

func TestSpanTreeAndRetention(t *testing.T) {
	tr := keepAll(8)
	ctx, root := tr.StartTrace(WithRequestID(context.Background(), "req-1"), "v1_snapshot", 0)
	if got := RequestID(ctx); got != "req-1" {
		t.Fatalf("trace id = %q, want the request id", got)
	}
	cctx, child := StartSpan(ctx, "fanout.shard")
	child.Set(Int("shard", 2), Str("node", "n2"), Bool("ok", true), F64("ratio", 0.5))
	_, grand := StartSpan(cctx, "leaf")
	grand.End()
	child.End()
	root.SetStatus(200)
	root.End()

	got := tr.Lookup("req-1")
	if got == nil {
		t.Fatal("trace not retained")
	}
	if got.Name != "v1_snapshot" || got.Status != 200 || got.Error || got.Degraded {
		t.Fatalf("trace header = %+v", got)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("span count = %d, want 3", len(got.Spans))
	}
	byName := map[string]SpanData{}
	for _, sp := range got.Spans {
		byName[sp.Name] = sp
	}
	if byName["fanout.shard"].Parent != byName["v1_snapshot"].ID {
		t.Errorf("child parent = %q, want root %q", byName["fanout.shard"].Parent, byName["v1_snapshot"].ID)
	}
	if byName["leaf"].Parent != byName["fanout.shard"].ID {
		t.Errorf("grandchild parent = %q, want child %q", byName["leaf"].Parent, byName["fanout.shard"].ID)
	}
	if byName["v1_snapshot"].Parent != "" {
		t.Errorf("root parent = %q, want none", byName["v1_snapshot"].Parent)
	}
	attrs := byName["fanout.shard"].Attrs
	if attrs["shard"] != int64(2) || attrs["node"] != "n2" || attrs["ok"] != true || attrs["ratio"] != 0.5 {
		t.Errorf("attrs = %#v", attrs)
	}
}

func TestTailSamplingPolicy(t *testing.T) {
	run := func(tr *Tracer, name string, status int, fail error) {
		_, root := tr.StartTrace(context.Background(), name, 0)
		root.SetStatus(status)
		root.Fail(fail)
		root.End()
	}
	t.Run("healthy dropped", func(t *testing.T) {
		tr := NewTracer(TracerConfig{Policy: Policy{Slow: time.Hour, KeepOneIn: -1}})
		run(tr, "v1_health", 200, nil)
		if n := len(tr.Traces()); n != 0 {
			t.Fatalf("retained %d healthy traces, want 0", n)
		}
	})
	t.Run("error kept", func(t *testing.T) {
		tr := NewTracer(TracerConfig{Policy: Policy{Slow: time.Hour, KeepOneIn: -1}})
		run(tr, "v1_query", 500, nil)
		got := tr.Traces()
		if len(got) != 1 || !got[0].Error || strings.Join(got[0].Keep, ",") != "error" {
			t.Fatalf("traces = %+v", got)
		}
	})
	t.Run("degraded kept", func(t *testing.T) {
		tr := NewTracer(TracerConfig{Policy: Policy{Slow: time.Hour, KeepOneIn: -1}})
		for _, status := range []int{206, 503} {
			run(tr, "v1_snapshot", status, nil)
		}
		got := tr.Traces()
		if len(got) != 2 {
			t.Fatalf("retained %d degraded traces, want 2", len(got))
		}
		for _, g := range got {
			if !g.Degraded {
				t.Errorf("status %d: Degraded = false", g.Status)
			}
		}
		// 503 is both degraded and an error; 206 only degraded.
		if !got[0].Error || got[1].Error {
			t.Errorf("error flags: 503=%t 206=%t", got[0].Error, got[1].Error)
		}
	})
	t.Run("slow kept per endpoint", func(t *testing.T) {
		tr := NewTracer(TracerConfig{Policy: Policy{
			Slow:       time.Hour,
			SlowByName: map[string]time.Duration{"v1_query": 0}, // 0 = everything is slow
			KeepOneIn:  -1,
		}})
		run(tr, "v1_snapshot", 200, nil)
		run(tr, "v1_query", 200, nil)
		got := tr.Traces()
		if len(got) != 1 || got[0].Name != "v1_query" || strings.Join(got[0].Keep, ",") != "slow" {
			t.Fatalf("traces = %+v", got)
		}
	})
	t.Run("failed root kept", func(t *testing.T) {
		tr := NewTracer(TracerConfig{Policy: Policy{Slow: time.Hour, KeepOneIn: -1}})
		run(tr, "store.checkpoint", 0, fmt.Errorf("disk full"))
		got := tr.Traces()
		if len(got) != 1 || !got[0].Error {
			t.Fatalf("traces = %+v", got)
		}
	})
	t.Run("baseline 1-in-N", func(t *testing.T) {
		tr := NewTracer(TracerConfig{Policy: Policy{Slow: time.Hour, KeepOneIn: 10}})
		for i := 0; i < 40; i++ {
			run(tr, "v1_health", 200, nil)
		}
		if n := len(tr.Traces()); n != 4 {
			t.Fatalf("baseline retained %d of 40, want 4", n)
		}
	})
}

func TestSpanCapAndLateChildren(t *testing.T) {
	tr := NewTracer(TracerConfig{Policy: Policy{Slow: -1, KeepOneIn: 1, MaxSpans: 3}})
	ctx, root := tr.StartTrace(WithRequestID(context.Background(), "cap"), "r", 0)
	var late *Span
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(ctx, "c")
		if i == 4 {
			late = sp
			continue // ends after the root: must be dropped, not panic
		}
		sp.End()
	}
	root.End()
	late.End()
	got := tr.Lookup("cap")
	if got == nil {
		t.Fatal("trace not retained")
	}
	// 3 children hit the cap, the 4th was dropped, the root always lands.
	if len(got.Spans) != 4 || got.SpansDropped != 1 {
		t.Fatalf("spans = %d dropped = %d, want 4/1", len(got.Spans), got.SpansDropped)
	}
}

func TestNilTracerAndUntracedContext(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartTrace(context.Background(), "x", 0)
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.Set(Str("k", "v"))
	sp.Fail(fmt.Errorf("e"))
	sp.SetStatus(500)
	sp.End()
	if tr.Traces() != nil || tr.Lookup("x") != nil {
		t.Fatal("nil tracer retained traces")
	}
	_, child := StartSpan(ctx, "y")
	if child != nil {
		t.Fatal("StartSpan without a trace returned a span")
	}
	child.End()
	if ContextSpanID(ctx) != 0 {
		t.Fatal("untraced context has a span id")
	}
}

func TestSpanIDWire(t *testing.T) {
	id := nextSpanID()
	s := FormatSpanID(id)
	if len(s) != 16 {
		t.Fatalf("FormatSpanID length = %d", len(s))
	}
	back, ok := ParseSpanID(s)
	if !ok || back != id {
		t.Fatalf("round trip %q -> (%d, %t), want %d", s, back, ok, id)
	}
	if up, ok := ParseSpanID(strings.ToUpper(s)); !ok || up != id {
		t.Fatalf("uppercase parse failed")
	}
	for _, bad := range []string{
		"",                  // empty
		"abc",               // short
		"0123456789abcde",   // 15 chars
		"0123456789abcdef0", // 17 chars
		"0123456789abcdeg",  // non-hex
		"0000000000000000",  // zero id = no parent
		strings.Repeat("a", 65),
	} {
		if id, ok := ParseSpanID(bad); ok {
			t.Errorf("ParseSpanID(%q) = (%d, true), want rejection", bad, id)
		}
	}
}

// TestTraceRingConcurrentWriters exercises the lock-free ring and the
// per-trace span collection under -race: concurrent traces completing
// (ring slot stores + cursor) while each trace's own spans end from
// multiple goroutines.
func TestTraceRingConcurrentWriters(t *testing.T) {
	tr := keepAll(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, root := tr.StartTrace(
					WithRequestID(context.Background(), fmt.Sprintf("t-%d-%d", g, i)), "r", 0)
				var cwg sync.WaitGroup
				for c := 0; c < 4; c++ {
					_, sp := StartSpan(ctx, "child")
					cwg.Add(1)
					go func(sp *Span) {
						defer cwg.Done()
						sp.Set(Int("n", 1))
						sp.End()
					}(sp)
				}
				cwg.Wait()
				root.End()
				tr.Traces() // concurrent reads against the slot stores
			}
		}(g)
	}
	wg.Wait()
	traces := tr.Traces()
	if len(traces) != 16 {
		t.Fatalf("ring holds %d traces, want 16 (full)", len(traces))
	}
	for _, g := range traces {
		if len(g.Spans) != 5 {
			t.Fatalf("trace %s has %d spans, want 5", g.ID, len(g.Spans))
		}
	}
}

func TestTraceHandler(t *testing.T) {
	tr := keepAll(8)
	ctx, root := tr.StartTrace(WithRequestID(context.Background(), "h-1"), "v1_snapshot", 0)
	_, sp := StartSpan(ctx, "fanout.shard")
	sp.End()
	root.SetStatus(206)
	root.End()

	// Index view.
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var index struct {
		RingSize int `json:"ring_size"`
		Traces   []struct {
			ID       string `json:"id"`
			Degraded bool   `json:"degraded"`
			Spans    int    `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &index); err != nil {
		t.Fatalf("index: %v\n%s", err, rec.Body.String())
	}
	if index.RingSize != 8 || len(index.Traces) != 1 || index.Traces[0].ID != "h-1" ||
		!index.Traces[0].Degraded || index.Traces[0].Spans != 2 {
		t.Fatalf("index = %+v", index)
	}

	// Single-trace view: full spans, JSON round-trips into Trace.
	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id=h-1", nil))
	var full Trace
	if err := json.Unmarshal(rec.Body.Bytes(), &full); err != nil {
		t.Fatalf("trace: %v", err)
	}
	if full.ID != "h-1" || len(full.Spans) != 2 || !full.Degraded {
		t.Fatalf("trace = %+v", full)
	}

	// Unknown id is a JSON 404.
	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id=nope", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown id status = %d, want 404", rec.Code)
	}
}

func TestTracerMetrics(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(TracerConfig{Policy: Policy{Slow: time.Hour, KeepOneIn: -1}})
	tr.RegisterMetrics(reg)
	_, root := tr.StartTrace(context.Background(), "a", 0)
	root.End() // boring: started but not kept
	_, root = tr.StartTrace(context.Background(), "b", 0)
	root.SetStatus(500)
	root.End() // kept
	exp := mustLint(t, render(t, reg))
	if v, _ := exp.Value("trace_started_total", ""); v != 2 {
		t.Errorf("trace_started_total = %v, want 2", v)
	}
	if v, _ := exp.Value("trace_kept_total", ""); v != 1 {
		t.Errorf("trace_kept_total = %v, want 1", v)
	}
}
