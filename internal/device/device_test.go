package device

import (
	"math/rand"
	"testing"
	"time"

	"cwatrace/internal/cdn"
	"cwatrace/internal/entime"
	"cwatrace/internal/exposure"
)

var day0 = time.Date(2020, time.June, 17, 0, 0, 0, 0, entime.Berlin)

func newDevice(t *testing.T, seed int64, installedAt time.Time) (*Device, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := New(1, 10, installedAt, DefaultParams(), rng)
	return d, rng
}

func ctxFor(day time.Time, rng *rand.Rand, published ...string) DayContext {
	return DayContext{
		Day:           day,
		Attention:     1,
		PublishedDays: published,
		RNG:           rng,
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.UploadConsent = 1.5
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range param must fail validation")
	}
}

func TestNotInstalledNoEvents(t *testing.T) {
	d, rng := newDevice(t, 1, day0.AddDate(0, 0, 5))
	if evs := d.DayEvents(DefaultParams(), ctxFor(day0, rng)); len(evs) != 0 {
		t.Fatalf("uninstalled device produced %d events", len(evs))
	}
}

func TestInstallDaySyncs(t *testing.T) {
	install := day0.Add(14 * time.Hour)
	d, rng := newDevice(t, 2, install)
	evs := d.DayEvents(DefaultParams(), ctxFor(day0, rng, "2020-06-16"))
	var sawIndex, sawPackage bool
	for _, e := range evs {
		switch e.Req.Type {
		case cdn.ReqIndex:
			sawIndex = true
		case cdn.ReqDayPackage:
			sawPackage = true
			if e.Req.Day != "2020-06-16" {
				t.Fatalf("fetched wrong day %q", e.Req.Day)
			}
		}
	}
	if !sawIndex || !sawPackage {
		t.Fatalf("install-day sync incomplete: index=%v package=%v (%d events)",
			sawIndex, sawPackage, len(evs))
	}
	if d.SyncedThrough() != "2020-06-16" {
		t.Fatalf("watermark = %q", d.SyncedThrough())
	}
}

func TestSyncFetchesOnlyUnseenDays(t *testing.T) {
	d, rng := newDevice(t, 3, day0)
	d.BackgroundRestricted = false
	// First day: fetch the one published package.
	d.DayEvents(DefaultParams(), ctxFor(day0, rng, "2020-06-16"))
	// Next day: two published; only the new one should be fetched.
	evs := d.DayEvents(DefaultParams(), ctxFor(day0.AddDate(0, 0, 1), rng, "2020-06-16", "2020-06-17"))
	var fetched []string
	for _, e := range evs {
		if e.Req.Type == cdn.ReqDayPackage {
			fetched = append(fetched, e.Req.Day)
		}
	}
	if len(fetched) != 1 || fetched[0] != "2020-06-17" {
		t.Fatalf("fetched = %v, want only 2020-06-17", fetched)
	}
}

func TestHealthyDeviceSyncsDaily(t *testing.T) {
	d, rng := newDevice(t, 4, day0)
	d.BackgroundRestricted = false
	syncDays := 0
	for i := 1; i <= 30; i++ {
		day := day0.AddDate(0, 0, i)
		evs := d.DayEvents(DefaultParams(), ctxFor(day, rng))
		for _, e := range evs {
			if e.Req.Type == cdn.ReqIndex {
				syncDays++
				break
			}
		}
	}
	if syncDays != 30 {
		t.Fatalf("healthy device synced %d/30 days", syncDays)
	}
}

func TestBuggedDeviceSyncsRarely(t *testing.T) {
	d, rng := newDevice(t, 5, day0)
	d.BackgroundRestricted = true
	syncDays := 0
	const days = 300
	for i := 1; i <= days; i++ {
		day := day0.AddDate(0, 0, i)
		for _, e := range d.DayEvents(DefaultParams(), ctxFor(day, rng)) {
			if e.Req.Type == cdn.ReqIndex {
				syncDays++
				break
			}
		}
	}
	rate := float64(syncDays) / days
	// OpenAppBase 0.30 at attention 1.
	if rate < 0.15 || rate > 0.45 {
		t.Fatalf("bugged device sync rate %.2f, want ~0.30", rate)
	}
}

func TestPositiveResultUploadFlow(t *testing.T) {
	d, _ := newDevice(t, 6, day0)
	p := DefaultParams()
	p.UploadConsent = 1 // force consent for determinism
	p.FakeFlowProb = 0
	rng := rand.New(rand.NewSource(7))
	ctx := ctxFor(day0.AddDate(0, 0, 3), rng)
	ctx.PositiveResultToday = true
	evs := d.DayEvents(p, ctx)
	var poll, tan, submit, keys int
	var tanAt, submitAt time.Time
	for _, e := range evs {
		switch e.Req.Type {
		case cdn.ReqTestResult:
			poll++
		case cdn.ReqTAN:
			tan++
			tanAt = e.Time
		case cdn.ReqSubmission:
			submit++
			keys = e.UploadKeys
			submitAt = e.Time
		}
	}
	if poll != 1 || tan != 1 || submit != 1 {
		t.Fatalf("upload flow = poll %d, tan %d, submit %d", poll, tan, submit)
	}
	if keys != 4 {
		t.Fatalf("upload keys = %d, want 4 (installed 3 days ago)", keys)
	}
	if !tanAt.Before(submitAt) {
		t.Fatal("TAN must precede submission")
	}
}

func TestUploadKeysCappedAtStorageDays(t *testing.T) {
	d, _ := newDevice(t, 8, day0)
	p := DefaultParams()
	p.UploadConsent = 1
	p.FakeFlowProb = 0
	rng := rand.New(rand.NewSource(9))
	ctx := ctxFor(day0.AddDate(0, 0, 60), rng)
	ctx.PositiveResultToday = true
	for _, e := range d.DayEvents(p, ctx) {
		if e.Req.Type == cdn.ReqSubmission && e.UploadKeys > exposure.StorageDays {
			t.Fatalf("upload keys = %d, cap is %d", e.UploadKeys, exposure.StorageDays)
		}
	}
}

func TestNoConsentNoUpload(t *testing.T) {
	d, _ := newDevice(t, 10, day0)
	p := DefaultParams()
	p.UploadConsent = 0
	p.FakeFlowProb = 0
	rng := rand.New(rand.NewSource(11))
	ctx := ctxFor(day0.AddDate(0, 0, 2), rng)
	ctx.PositiveResultToday = true
	for _, e := range d.DayEvents(p, ctx) {
		if e.Req.Type == cdn.ReqSubmission || e.Req.Type == cdn.ReqTAN {
			t.Fatalf("consent 0 must not produce %s", e.Req.Type)
		}
	}
}

func TestFakeFlowsMarkedFake(t *testing.T) {
	d, _ := newDevice(t, 12, day0)
	p := DefaultParams()
	p.FakeFlowProb = 1
	rng := rand.New(rand.NewSource(13))
	evs := d.DayEvents(p, ctxFor(day0.AddDate(0, 0, 1), rng))
	fakes := 0
	for _, e := range evs {
		if e.Req.Fake {
			fakes++
		}
	}
	if fakes != 4 {
		t.Fatalf("fake sequence = %d events, want 4", fakes)
	}
}

func TestEventsSortedByTime(t *testing.T) {
	p := DefaultParams()
	p.FakeFlowProb = 1
	p.UploadConsent = 1
	for seed := int64(0); seed < 20; seed++ {
		d, _ := newDevice(t, seed, day0)
		rng := rand.New(rand.NewSource(seed + 100))
		ctx := ctxFor(day0.AddDate(0, 0, 1), rng, "2020-06-16", "2020-06-17")
		ctx.PositiveResultToday = true
		evs := d.DayEvents(p, ctx)
		for i := 1; i < len(evs); i++ {
			if evs[i].Time.Before(evs[i-1].Time) {
				t.Fatalf("seed %d: events out of order", seed)
			}
		}
	}
}

func TestOSDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p := DefaultParams()
	android := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if New(i, 0, day0, p, rng).OS == Android {
			android++
		}
	}
	share := float64(android) / n
	if share < p.AndroidShare-0.02 || share > p.AndroidShare+0.02 {
		t.Fatalf("android share %.3f, want ~%.2f", share, p.AndroidShare)
	}
}

func TestCheckMinuteDiurnal(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	p := DefaultParams()
	night, evening := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		m := New(i, 0, day0, p, rng).CheckMinute
		if m < 0 || m >= 24*60 {
			t.Fatalf("CheckMinute %d out of range", m)
		}
		h := m / 60
		if h >= 2 && h < 6 {
			night++
		}
		if h >= 17 && h < 21 {
			evening++
		}
	}
	if evening <= night*2 {
		t.Fatalf("diurnal weighting missing: evening %d vs night %d", evening, night)
	}
}

func TestOSString(t *testing.T) {
	if Android.String() != "android" || IOS.String() != "ios" {
		t.Fatal("OS String mismatch")
	}
}

func TestTrafficModel(t *testing.T) {
	m := DefaultTrafficModel()
	if got := m.DownstreamPackets(0); got != 0 {
		t.Fatalf("zero bytes = %d packets", got)
	}
	small := m.DownstreamPackets(500)
	big := m.DownstreamPackets(100_000)
	if small >= big {
		t.Fatal("bigger responses need more packets")
	}
	// 100 kB at 1400 MSS is ~72 data packets + handshake.
	if big < 70 || big > 80 {
		t.Fatalf("100kB = %d packets, expected ~74", big)
	}
	if up := m.UpstreamPackets(100_000); up <= 3 || up >= big {
		t.Fatalf("upstream packets = %d, want between ACK floor and downstream", up)
	}
}
