// Package device models the phones running the Corona-Warn-App. A device
// is a traffic agent: once installed, it syncs diagnosis keys once per day
// (index fetch plus the day packages it has not seen), occasionally visits
// the website, issues plausible-deniability decoy calls, and — when its
// owner tests positive and consents — walks the poll/TAN/upload flow.
//
// Two empirical quirks the paper leans on are modelled explicitly:
//
//   - The background-restriction bug: on a share of Android and iOS phones,
//     OS energy saving prevented the periodic background download ("energy
//     saving settings prohibit background downloads on some Android and iOS
//     phones, reported on July 24"). Affected devices only sync when the
//     user opens the app.
//   - Upload rate is low: only users with a positive lab test and upload
//     consent share keys, which is why the first diagnosis keys appear a
//     week after release.
package device

import (
	"fmt"
	"math/rand"
	"time"

	"cwatrace/internal/adoption"
	"cwatrace/internal/cdn"
	"cwatrace/internal/exposure"
)

// OS is the phone operating system.
type OS int

// Operating systems; the 2020 German market was roughly 3:1.
const (
	Android OS = iota
	IOS
)

// String implements fmt.Stringer.
func (o OS) String() string {
	if o == IOS {
		return "ios"
	}
	return "android"
}

// Params tunes the population-level behaviour mix.
type Params struct {
	// AndroidShare is the probability a new device is Android.
	AndroidShare float64
	// BackgroundBugShare is the fraction of devices whose background
	// sync is broken by OS energy saving.
	BackgroundBugShare float64
	// OpenAppBase is the daily probability a user manually opens the
	// app (the only sync trigger for bug-affected devices).
	OpenAppBase float64
	// InstallWebsiteProb is the probability a fresh install is preceded
	// by a website visit.
	InstallWebsiteProb float64
	// DailyWebsiteRate is the per-day website visit probability of an
	// installed user at attention 1.
	DailyWebsiteRate float64
	// FakeFlowProb is the daily probability of a decoy
	// registration/poll/TAN/submission sequence.
	FakeFlowProb float64
	// UploadConsent is the probability a positive-tested user shares
	// keys.
	UploadConsent float64
}

// DefaultParams returns the calibrated defaults.
func DefaultParams() Params {
	return Params{
		AndroidShare:       0.75,
		BackgroundBugShare: 0.35,
		OpenAppBase:        0.30,
		InstallWebsiteProb: 0.45,
		DailyWebsiteRate:   0.01,
		FakeFlowProb:       0.01,
		UploadConsent:      0.60,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	for name, v := range map[string]float64{
		"AndroidShare":       p.AndroidShare,
		"BackgroundBugShare": p.BackgroundBugShare,
		"OpenAppBase":        p.OpenAppBase,
		"InstallWebsiteProb": p.InstallWebsiteProb,
		"DailyWebsiteRate":   p.DailyWebsiteRate,
		"FakeFlowProb":       p.FakeFlowProb,
		"UploadConsent":      p.UploadConsent,
	} {
		if v < 0 || v > 1 {
			return fmt.Errorf("device: %s = %f out of [0,1]", name, v)
		}
	}
	return nil
}

// Device is one simulated phone.
type Device struct {
	ID          int
	DistrictIdx int
	OS          OS
	// BackgroundRestricted marks the energy-saving bug.
	BackgroundRestricted bool
	// InstalledAt is when the app was installed.
	InstalledAt time.Time
	// CheckMinute is the device's preferred sync minute-of-day,
	// diurnal-weighted at creation.
	CheckMinute int
	// syncedThrough is the last package DayKey already fetched ("" until
	// the first sync).
	syncedThrough string
}

// New creates a device installed at installedAt in the given district.
func New(id, districtIdx int, installedAt time.Time, p Params, rng *rand.Rand) *Device {
	os := Android
	if rng.Float64() >= p.AndroidShare {
		os = IOS
	}
	return &Device{
		ID:                   id,
		DistrictIdx:          districtIdx,
		OS:                   os,
		BackgroundRestricted: rng.Float64() < p.BackgroundBugShare,
		InstalledAt:          installedAt,
		CheckMinute:          diurnalMinute(rng),
	}
}

// diurnalMinute draws a minute-of-day weighted by the diurnal activity
// shape, via rejection sampling against the shape's maximum.
func diurnalMinute(rng *rand.Rand) int {
	const maxWeight = 2.2 // conservative upper bound of adoption.Diurnal
	for {
		m := rng.Intn(24 * 60)
		if rng.Float64()*maxWeight <= adoption.Diurnal(m/60) {
			return m
		}
	}
}

// Event is one network interaction the device performs.
type Event struct {
	Time time.Time
	Req  cdn.Request
	// UploadKeys is the number of TEKs in a (real) submission.
	UploadKeys int
	// RealCount marks events that occur at real-world frequency rather
	// than once per simulated device: the positive-test flows. Positives
	// are so rare that the simulator assigns them at real counts (else
	// they would round to zero at scale); the traffic synthesizer
	// compensates by emitting their packets with probability 1/Scale,
	// while the backend side effects (key submission) always run.
	RealCount bool
}

// DayContext is everything a device needs to decide one day's behaviour.
type DayContext struct {
	// Day is local midnight of the simulated day.
	Day time.Time
	// Attention is the media-attention level.
	Attention float64
	// PublishedDays are the package DayKeys currently downloadable,
	// ascending.
	PublishedDays []string
	// PositiveResultToday signals the owner received a positive lab
	// result today.
	PositiveResultToday bool
	// RNG drives all stochastic choices.
	RNG *rand.Rand
}

// DayEvents returns the device's interactions for one day, in time order.
func (d *Device) DayEvents(p Params, ctx DayContext) []Event {
	dayEnd := ctx.Day.AddDate(0, 0, 1)
	if !d.InstalledAt.Before(dayEnd) {
		return nil // not yet installed
	}
	installDay := d.InstalledAt.After(ctx.Day) || d.InstalledAt.Equal(ctx.Day)

	var events []Event

	// Install-day special events: a website visit shortly before the
	// install (reading up on the app), then the first sync right after.
	if installDay {
		if ctx.RNG.Float64() < p.InstallWebsiteProb {
			events = append(events, Event{
				Time: d.InstalledAt.Add(-time.Duration(1+ctx.RNG.Intn(20)) * time.Minute),
				Req:  cdn.Request{Type: cdn.ReqWebsite},
			})
		}
		events = append(events, d.syncEvents(d.InstalledAt.Add(time.Duration(ctx.RNG.Intn(10))*time.Minute), ctx)...)
	} else if d.shouldSync(p, ctx) {
		at := ctx.Day.Add(time.Duration(d.CheckMinute)*time.Minute +
			time.Duration(ctx.RNG.Intn(3600))*time.Second - 30*time.Minute)
		if at.Before(ctx.Day) {
			at = ctx.Day.Add(time.Duration(ctx.RNG.Intn(3600)) * time.Second)
		}
		events = append(events, d.syncEvents(at, ctx)...)
	}

	// Occasional website visit, scaled by media attention.
	if !installDay && ctx.RNG.Float64() < clamp01(p.DailyWebsiteRate*ctx.Attention) {
		events = append(events, Event{
			Time: diurnalTime(ctx.Day, ctx.RNG),
			Req:  cdn.Request{Type: cdn.ReqWebsite},
		})
	}

	// Plausible-deniability decoys: the app fires a fake verification+
	// submission sequence on random days so uploaders are hidden.
	if ctx.RNG.Float64() < p.FakeFlowProb {
		at := diurnalTime(ctx.Day, ctx.RNG)
		for i, rt := range []cdn.RequestType{cdn.ReqRegistration, cdn.ReqTestResult, cdn.ReqTAN, cdn.ReqSubmission} {
			events = append(events, Event{
				Time: at.Add(time.Duration(i) * time.Second),
				Req:  cdn.Request{Type: rt, Fake: true},
			})
		}
	}

	// Positive result: poll, fetch TAN, upload (with consent).
	if ctx.PositiveResultToday {
		at := diurnalTime(ctx.Day, ctx.RNG)
		events = append(events, Event{Time: at, Req: cdn.Request{Type: cdn.ReqTestResult}, RealCount: true})
		if ctx.RNG.Float64() < p.UploadConsent {
			keys := daysSince(d.InstalledAt, ctx.Day) + 1
			if keys > exposure.StorageDays {
				keys = exposure.StorageDays
			}
			events = append(events,
				Event{Time: at.Add(30 * time.Second), Req: cdn.Request{Type: cdn.ReqTAN}, RealCount: true},
				Event{Time: at.Add(45 * time.Second), Req: cdn.Request{Type: cdn.ReqSubmission}, UploadKeys: keys, RealCount: true},
			)
		}
	}

	sortEvents(events)
	return events
}

// shouldSync decides whether the daily key download happens. Healthy
// devices auto-sync daily; bug-affected devices need the user to open the
// app, which media attention makes slightly more likely.
func (d *Device) shouldSync(p Params, ctx DayContext) bool {
	if !d.BackgroundRestricted {
		return true
	}
	prob := clamp01(p.OpenAppBase * (0.8 + 0.2*ctx.Attention))
	return ctx.RNG.Float64() < prob
}

// syncEvents emits the index fetch plus one download per unseen published
// day package.
func (d *Device) syncEvents(at time.Time, ctx DayContext) []Event {
	events := []Event{{Time: at, Req: cdn.Request{Type: cdn.ReqIndex}}}
	n := 0
	for _, day := range ctx.PublishedDays {
		if day <= d.syncedThrough {
			continue
		}
		n++
		events = append(events, Event{
			Time: at.Add(time.Duration(n) * 2 * time.Second),
			Req:  cdn.Request{Type: cdn.ReqDayPackage, Day: day},
		})
		if n >= exposure.StorageDays {
			break
		}
	}
	if len(ctx.PublishedDays) > 0 {
		last := ctx.PublishedDays[len(ctx.PublishedDays)-1]
		if last > d.syncedThrough {
			d.syncedThrough = last
		}
	}
	return events
}

// SyncedThrough exposes the device's download watermark for tests and the
// ablation bench.
func (d *Device) SyncedThrough() string { return d.syncedThrough }

// diurnalTime draws a diurnally weighted instant within the day.
func diurnalTime(day time.Time, rng *rand.Rand) time.Time {
	return day.Add(time.Duration(diurnalMinute(rng))*time.Minute +
		time.Duration(rng.Intn(60))*time.Second)
}

func daysSince(from, to time.Time) int {
	d := int(to.Sub(from) / (24 * time.Hour))
	if d < 0 {
		return 0
	}
	return d
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func sortEvents(events []Event) {
	// Insertion sort: event lists are tiny (< 20 entries).
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].Time.Before(events[j-1].Time); j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}

// TrafficModel converts an HTTPS exchange into the packet counts a router
// would see. The downstream (server->client) direction is what the paper
// measures; sizes include TLS framing already (cdn package).
type TrafficModel struct {
	// MSS is the payload bytes per full packet.
	MSS int
	// UpstreamRequestBytes approximates the client->server direction of
	// one exchange (handshake + request).
	UpstreamRequestBytes int
}

// DefaultTrafficModel uses a 1400-byte MSS.
func DefaultTrafficModel() TrafficModel {
	return TrafficModel{MSS: 1400, UpstreamRequestBytes: 1800}
}

// DownstreamPackets returns the number of server->client packets for a
// response of the given size, including ACK-only segments folded in.
func (m TrafficModel) DownstreamPackets(respBytes int) int {
	if respBytes <= 0 {
		return 0
	}
	n := (respBytes + m.MSS - 1) / m.MSS
	// TLS handshake flights arrive as separate segments.
	return n + 2
}

// UpstreamPackets returns client->server packet count (requests + ACKs).
func (m TrafficModel) UpstreamPackets(respBytes int) int {
	// Roughly one ACK per two downstream segments plus the request
	// packets themselves.
	return m.DownstreamPackets(respBytes)/2 + 3
}
