// Package ble simulates the Bluetooth Low Energy proximity layer of the
// paper's Figure 1 ("Bluetooth Scanning"): a contact process that brings
// phones near each other, a radio model that turns distance into the
// attenuation the framework reports, and the encounter logging a phone
// performs.
//
// It also carries the paper's motivation: "Since widespread adoption is key
// to the app's success [Ferretti et al. 2020]" — a contact is only
// *detectable* when both sides run the app, so the detectable share of
// contacts scales with the square of adoption. EfficacyCurve quantifies
// that, and the repository-level bench reports it.
package ble

import (
	"fmt"
	"math"
	"math/rand"

	"cwatrace/internal/entime"
	"cwatrace/internal/exposure"
)

// RadioModel converts physical distance into the attenuation value (TX
// power minus RSSI) the Exposure Notification framework reports.
type RadioModel struct {
	// PathLossExponent models the environment (2 free space, ~2.7
	// indoors with obstructions).
	PathLossExponent float64
	// ReferenceLossDB is the attenuation at 1 m.
	ReferenceLossDB float64
	// ShadowSigmaDB is the log-normal shadowing spread.
	ShadowSigmaDB float64
}

// DefaultRadioModel matches indoor BLE measurements used for the GAEN
// calibration effort.
func DefaultRadioModel() RadioModel {
	return RadioModel{PathLossExponent: 2.7, ReferenceLossDB: 40, ShadowSigmaDB: 4}
}

// AttenuationDB returns a sampled attenuation for a contact at the given
// distance in meters.
func (m RadioModel) AttenuationDB(rng *rand.Rand, meters float64) int {
	if meters < 0.1 {
		meters = 0.1
	}
	mean := m.ReferenceLossDB + 10*m.PathLossExponent*math.Log10(meters)
	att := mean + rng.NormFloat64()*m.ShadowSigmaDB
	if att < 0 {
		att = 0
	}
	return int(att)
}

// Contact is one physical meeting between two people.
type Contact struct {
	A, B        int // person indices
	Interval    entime.Interval
	DurationMin int
	Meters      float64
}

// ContactConfig drives the daily contact process.
type ContactConfig struct {
	// People is the population size.
	People int
	// MeanContactsPerDay is the average number of close contacts per
	// person per day.
	MeanContactsPerDay float64
	// CloseShare is the fraction of contacts within 2 m (the
	// epidemiologically relevant ones).
	CloseShare float64
	Seed       int64
}

// Validate reports configuration errors.
func (c ContactConfig) Validate() error {
	if c.People < 2 {
		return fmt.Errorf("ble: need at least 2 people")
	}
	if c.MeanContactsPerDay < 0 {
		return fmt.Errorf("ble: negative contact rate")
	}
	if c.CloseShare < 0 || c.CloseShare > 1 {
		return fmt.Errorf("ble: close share out of range")
	}
	return nil
}

// DailyContacts draws one day of contacts for the population under random
// mixing. day anchors the EN intervals of the contacts.
func DailyContacts(cfg ContactConfig, day entime.Interval, rng *rand.Rand) ([]Contact, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Total contacts: each of the People draws half the mean (each
	// contact involves two people).
	n := int(float64(cfg.People) * cfg.MeanContactsPerDay / 2)
	out := make([]Contact, 0, n)
	for i := 0; i < n; i++ {
		a := rng.Intn(cfg.People)
		b := rng.Intn(cfg.People)
		if a == b {
			continue
		}
		meters := 0.5 + rng.Float64()*1.5 // close contact
		if rng.Float64() >= cfg.CloseShare {
			meters = 2 + rng.Float64()*6 // distant contact
		}
		out = append(out, Contact{
			A: a, B: b,
			Interval:    day.Add(rng.Intn(entime.EKRollingPeriod)),
			DurationMin: 5 + rng.Intn(40),
			Meters:      meters,
		})
	}
	return out, nil
}

// Scanner is one phone's BLE receive side: it turns nearby broadcasts into
// encounter-history entries.
type Scanner struct {
	radio RadioModel
	rng   *rand.Rand
	log   []exposure.Encounter
}

// NewScanner creates a Scanner.
func NewScanner(radio RadioModel, rng *rand.Rand) *Scanner {
	return &Scanner{radio: radio, rng: rng}
}

// Observe records the reception of a broadcast payload during a contact.
func (s *Scanner) Observe(rpi exposure.RPI, c Contact) {
	s.log = append(s.log, exposure.Encounter{
		RPI:           rpi,
		Interval:      c.Interval,
		DurationMin:   c.DurationMin,
		AttenuationDB: s.radio.AttenuationDB(s.rng, c.Meters),
	})
}

// History returns the accumulated encounter log.
func (s *Scanner) History() []exposure.Encounter {
	out := make([]exposure.Encounter, len(s.log))
	copy(out, s.log)
	return out
}

// EfficacyPoint is one row of the adoption-efficacy analysis.
type EfficacyPoint struct {
	Adoption float64
	// DetectableShare is the measured fraction of contacts where both
	// sides run the app.
	DetectableShare float64
	// Quadratic is the analytic adoption^2 reference.
	Quadratic float64
}

// EfficacyCurve measures, by Monte Carlo over the contact process, the
// share of contacts that contact tracing can possibly detect at each
// adoption level — the paper's "widespread adoption is key" argument in
// numbers. Both contact endpoints must have the app installed.
func EfficacyCurve(cfg ContactConfig, adoptions []float64) ([]EfficacyPoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	day := entime.IntervalOf(entime.AppRelease).KeyPeriodStart()
	out := make([]EfficacyPoint, 0, len(adoptions))
	for _, p := range adoptions {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("ble: adoption %f out of range", p)
		}
		// Assign the app to a random share p of the population.
		hasApp := make([]bool, cfg.People)
		for i := range hasApp {
			hasApp[i] = rng.Float64() < p
		}
		contacts, err := DailyContacts(cfg, day, rng)
		if err != nil {
			return nil, err
		}
		detectable := 0
		for _, c := range contacts {
			if hasApp[c.A] && hasApp[c.B] {
				detectable++
			}
		}
		pt := EfficacyPoint{Adoption: p, Quadratic: p * p}
		if len(contacts) > 0 {
			pt.DetectableShare = float64(detectable) / float64(len(contacts))
		}
		out = append(out, pt)
	}
	return out, nil
}
