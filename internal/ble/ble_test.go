package ble

import (
	"math"
	"math/rand"
	"testing"

	"cwatrace/internal/entime"
	"cwatrace/internal/exposure"
)

func TestRadioModelMonotoneInDistance(t *testing.T) {
	m := DefaultRadioModel()
	m.ShadowSigmaDB = 0 // deterministic for the monotonicity check
	rng := rand.New(rand.NewSource(1))
	prev := -1
	for _, d := range []float64{0.5, 1, 2, 5, 10} {
		att := m.AttenuationDB(rng, d)
		if att <= prev {
			t.Fatalf("attenuation must grow with distance: %d at %.1fm after %d", att, d, prev)
		}
		prev = att
	}
}

func TestRadioModelCloseContactBelowThreshold(t *testing.T) {
	m := DefaultRadioModel()
	rng := rand.New(rand.NewSource(2))
	risk := exposure.DefaultRiskConfig()
	// 1m contacts should mostly land in the close/mid buckets (below the
	// far threshold).
	below := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if m.AttenuationDB(rng, 1) <= risk.AttenuationThresholds[1] {
			below++
		}
	}
	if below < n*9/10 {
		t.Fatalf("only %d/%d 1m contacts below far threshold", below, n)
	}
}

func TestRadioModelClampsNegative(t *testing.T) {
	m := RadioModel{PathLossExponent: 2, ReferenceLossDB: 0, ShadowSigmaDB: 50}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		if m.AttenuationDB(rng, 0.01) < 0 {
			t.Fatal("attenuation must clamp at 0")
		}
	}
}

func TestContactConfigValidate(t *testing.T) {
	good := ContactConfig{People: 100, MeanContactsPerDay: 5, CloseShare: 0.5, Seed: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*ContactConfig){
		func(c *ContactConfig) { c.People = 1 },
		func(c *ContactConfig) { c.MeanContactsPerDay = -1 },
		func(c *ContactConfig) { c.CloseShare = 1.5 },
	}
	for i, mut := range cases {
		cfg := good
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d must fail validation", i)
		}
	}
}

func TestDailyContacts(t *testing.T) {
	cfg := ContactConfig{People: 1000, MeanContactsPerDay: 6, CloseShare: 0.5, Seed: 4}
	day := entime.IntervalOf(entime.AppRelease).KeyPeriodStart()
	rng := rand.New(rand.NewSource(cfg.Seed))
	contacts, err := DailyContacts(cfg, day, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000 * 6 / 2
	if len(contacts) < want*9/10 || len(contacts) > want {
		t.Fatalf("contacts = %d, want ~%d", len(contacts), want)
	}
	close := 0
	for _, c := range contacts {
		if c.A == c.B {
			t.Fatal("self contact")
		}
		if c.Interval < day || c.Interval >= day.Add(entime.EKRollingPeriod) {
			t.Fatalf("contact interval %d outside day", c.Interval)
		}
		if c.DurationMin < 5 || c.Meters <= 0 {
			t.Fatalf("implausible contact %+v", c)
		}
		if c.Meters < 2 {
			close++
		}
	}
	share := float64(close) / float64(len(contacts))
	if math.Abs(share-cfg.CloseShare) > 0.05 {
		t.Fatalf("close share %.2f, configured %.2f", share, cfg.CloseShare)
	}
}

func TestScannerFeedsMatcher(t *testing.T) {
	// A full BLE -> matching loop: the infected phone broadcasts, the
	// scanner logs, the matcher finds it after key publication.
	store := exposure.NewKeyStore(rand.New(rand.NewSource(5)))
	bc := exposure.NewBroadcaster(store, exposure.Metadata{0x40, 8, 0, 0})
	day := entime.IntervalOf(entime.AppRelease).KeyPeriodStart()
	contact := Contact{A: 0, B: 1, Interval: day.Add(60), DurationMin: 25, Meters: 1}

	rpi, _, err := bc.Payload(contact.Interval)
	if err != nil {
		t.Fatal(err)
	}
	scanner := NewScanner(DefaultRadioModel(), rand.New(rand.NewSource(6)))
	scanner.Observe(rpi, contact)

	tek, err := store.ActiveKey(contact.Interval)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := exposure.NewMatcher(scanner.History()).Match([]exposure.DiagnosisKey{
		{TEK: tek, TransmissionRiskLevel: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("matches = %d", len(matches))
	}
	if matches[0].DurationMin != 25 {
		t.Fatalf("duration lost: %+v", matches[0])
	}
}

func TestEfficacyCurveQuadratic(t *testing.T) {
	cfg := ContactConfig{People: 20000, MeanContactsPerDay: 8, CloseShare: 0.5, Seed: 7}
	points, err := EfficacyCurve(cfg, []float64{0, 0.2, 0.5, 0.8, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if math.Abs(p.DetectableShare-p.Quadratic) > 0.03 {
			t.Fatalf("adoption %.1f: detectable %.3f vs p^2 %.3f",
				p.Adoption, p.DetectableShare, p.Quadratic)
		}
	}
	// Monotone increasing.
	for i := 1; i < len(points); i++ {
		if points[i].DetectableShare < points[i-1].DetectableShare {
			t.Fatal("efficacy must grow with adoption")
		}
	}
	// Full adoption detects everything; zero detects nothing.
	if points[0].DetectableShare != 0 {
		t.Fatalf("zero adoption detectable = %f", points[0].DetectableShare)
	}
	if points[len(points)-1].DetectableShare != 1 {
		t.Fatalf("full adoption detectable = %f", points[len(points)-1].DetectableShare)
	}
}

func TestEfficacyCurveValidation(t *testing.T) {
	cfg := ContactConfig{People: 100, MeanContactsPerDay: 5, CloseShare: 0.5, Seed: 8}
	if _, err := EfficacyCurve(cfg, []float64{1.5}); err == nil {
		t.Fatal("adoption > 1 must fail")
	}
	bad := cfg
	bad.People = 0
	if _, err := EfficacyCurve(bad, []float64{0.5}); err == nil {
		t.Fatal("invalid config must fail")
	}
}
