package diagkeys

import (
	"io"
	"math/rand"

	"cwatrace/internal/entime"
	"cwatrace/internal/exposure"
)

// MinKeysPerExport is the plausible-deniability floor: the CWA pads
// published packages with fake keys so that days with very few submitters
// do not reveal how many people uploaded (down to the individual). The real
// backend shipped with a threshold of 140 keys; exports below the floor are
// topped up with indistinguishable dummy records.
const MinKeysPerExport = 140

// Pad tops the export up to at least min keys with dummy diagnosis keys
// drawn from rng (crypto-strength randomness is unnecessary for dummies in
// the simulation; determinism is more valuable). Dummy keys carry plausible
// rolling starts within the export window and random risk levels, so they
// are not distinguishable from real keys on the wire.
func Pad(e *Export, min int, rng *rand.Rand) {
	if len(e.Keys) >= min {
		return
	}
	dayStarts := coveredDayStarts(e.Start, e.End)
	for len(e.Keys) < min {
		var k exposure.DiagnosisKey
		fillRandom(rng, k.Key[:])
		k.RollingStart = dayStarts[rng.Intn(len(dayStarts))]
		k.RollingPeriod = entime.EKRollingPeriod
		k.TransmissionRiskLevel = uint8(1 + rng.Intn(8))
		e.Keys = append(e.Keys, k)
	}
}

// Shuffle randomizes key order so that upload order (and with it, upload
// time) does not leak from package position.
func Shuffle(e *Export, rng *rand.Rand) {
	rng.Shuffle(len(e.Keys), func(i, j int) {
		e.Keys[i], e.Keys[j] = e.Keys[j], e.Keys[i]
	})
}

// coveredDayStarts lists the rolling-period starts intersecting [start, end)
// so dummies land on valid day boundaries. A window shorter than one period
// still yields its containing day.
func coveredDayStarts(start, end entime.Interval) []entime.Interval {
	first := start.KeyPeriodStart()
	var out []entime.Interval
	for d := first; d < end || len(out) == 0; d = d.Add(entime.EKRollingPeriod) {
		out = append(out, d)
		if len(out) > exposure.StorageDays+2 {
			break // defensive bound; windows are at most days long
		}
	}
	return out
}

func fillRandom(rng *rand.Rand, b []byte) {
	// rand.Rand implements io.Reader since Go 1.6; Read never fails.
	_, _ = io.ReadFull(rng, b)
}
