package diagkeys

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"cwatrace/internal/entime"
)

// Index is the discovery document the app fetches before downloading key
// packages: the list of days (and, for the current day, hours) for which
// exports exist. The real service exposes
// /version/v1/diagnosis-keys/country/DE/date and .../date/{date}/hour; this
// index carries the same information in one JSON document.
type Index struct {
	Region string   `json:"region"`
	Days   []string `json:"days"`            // "2006-01-02", sorted ascending
	Hours  []int    `json:"hours,omitempty"` // hours of the current (partial) day
}

// MarshalIndex renders the index deterministically (sorted) so responses
// are cacheable by the CDN.
func MarshalIndex(idx Index) ([]byte, error) {
	sort.Strings(idx.Days)
	sort.Ints(idx.Hours)
	return json.Marshal(idx)
}

// UnmarshalIndex parses an index document.
func UnmarshalIndex(data []byte) (Index, error) {
	var idx Index
	if err := json.Unmarshal(data, &idx); err != nil {
		return Index{}, fmt.Errorf("diagkeys: parsing index: %w", err)
	}
	return idx, nil
}

// DayKey formats t's calendar day (in the Berlin study timezone) the way
// the index and the distribution store key it.
func DayKey(t time.Time) string {
	return t.In(entime.Berlin).Format("2006-01-02")
}
