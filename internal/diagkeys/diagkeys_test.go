package diagkeys

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cwatrace/internal/entime"
	"cwatrace/internal/exposure"
)

func testSigner() Signer { return NewHMACSigner([]byte("test-signing-key")) }

func sampleExport(n int) *Export {
	rng := rand.New(rand.NewSource(42))
	start := entime.IntervalOf(entime.StudyStart).KeyPeriodStart()
	e := &Export{
		Region: "DE",
		Start:  start,
		End:    start.Add(entime.EKRollingPeriod),
	}
	for i := 0; i < n; i++ {
		var k exposure.DiagnosisKey
		rng.Read(k.Key[:])
		k.RollingStart = start
		k.RollingPeriod = entime.EKRollingPeriod
		k.TransmissionRiskLevel = uint8(1 + rng.Intn(8))
		e.Keys = append(e.Keys, k)
	}
	return e
}

func TestMarshalRoundTrip(t *testing.T) {
	s := testSigner()
	e := sampleExport(17)
	data, err := e.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data, s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Region != e.Region || got.Start != e.Start || got.End != e.End {
		t.Fatalf("header mismatch: %+v vs %+v", got, e)
	}
	if len(got.Keys) != len(e.Keys) {
		t.Fatalf("key count %d, want %d", len(got.Keys), len(e.Keys))
	}
	for i := range e.Keys {
		if got.Keys[i] != e.Keys[i] {
			t.Fatalf("key %d mismatch", i)
		}
	}
}

func TestMarshalEmptyExport(t *testing.T) {
	s := testSigner()
	e := sampleExport(0)
	data, err := e.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != WireSize(0) {
		t.Fatalf("empty export size %d, want %d", len(data), WireSize(0))
	}
	got, err := Unmarshal(data, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Keys) != 0 {
		t.Fatal("expected no keys")
	}
}

func TestWireSizeMatchesMarshal(t *testing.T) {
	s := testSigner()
	for _, n := range []int{0, 1, 5, 140, 1000} {
		e := sampleExport(n)
		data, err := e.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != WireSize(n) {
			t.Fatalf("n=%d: size %d, want %d", n, len(data), WireSize(n))
		}
	}
}

func TestTamperDetection(t *testing.T) {
	s := testSigner()
	data, err := sampleExport(3).Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 9, headerSize + 1, len(data) - 1} {
		tampered := make([]byte, len(data))
		copy(tampered, data)
		tampered[off] ^= 0x01
		if _, err := Unmarshal(tampered, s); err == nil {
			t.Errorf("tampering at offset %d went undetected", off)
		}
	}
}

func TestWrongSignerRejected(t *testing.T) {
	data, err := sampleExport(3).Marshal(testSigner())
	if err != nil {
		t.Fatal(err)
	}
	other := NewHMACSigner([]byte("other-key"))
	if _, err := Unmarshal(data, other); err != ErrBadSignature {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	s := testSigner()
	data, err := sampleExport(3).Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, headerSize, len(data) - 1} {
		if _, err := Unmarshal(data[:n], s); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestMarshalValidation(t *testing.T) {
	s := testSigner()
	e := sampleExport(1)
	e.Region = "TOOLONGREGION"
	if _, err := e.Marshal(s); err == nil {
		t.Error("overlong region must fail")
	}
	e = sampleExport(1)
	e.End = e.Start.Add(-1)
	if _, err := e.Marshal(s); err == nil {
		t.Error("inverted window must fail")
	}
}

func TestRoundTripProperty(t *testing.T) {
	s := testSigner()
	f := func(keyBytes [16]byte, startDay uint16, lvl uint8) bool {
		start := entime.Interval(uint32(startDay)) * entime.EKRollingPeriod
		e := &Export{
			Region: "DE",
			Start:  start,
			End:    start.Add(entime.EKRollingPeriod),
			Keys: []exposure.DiagnosisKey{{
				TEK: exposure.TEK{
					Key:           keyBytes,
					RollingStart:  start,
					RollingPeriod: entime.EKRollingPeriod,
				},
				TransmissionRiskLevel: lvl,
			}},
		}
		data, err := e.Marshal(s)
		if err != nil {
			return false
		}
		got, err := Unmarshal(data, s)
		if err != nil {
			return false
		}
		return got.Keys[0] == e.Keys[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := sampleExport(3)
	Pad(e, MinKeysPerExport, rng)
	if len(e.Keys) != MinKeysPerExport {
		t.Fatalf("padded to %d keys, want %d", len(e.Keys), MinKeysPerExport)
	}
	for i, k := range e.Keys {
		if err := k.Validate(); err != nil {
			t.Fatalf("padded key %d invalid: %v", i, err)
		}
		if !(k.RollingStart >= e.Start.KeyPeriodStart() && k.RollingStart < e.End) {
			t.Fatalf("dummy key %d outside window: %d", i, k.RollingStart)
		}
	}
}

func TestPadNoOpWhenAboveFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := sampleExport(200)
	Pad(e, MinKeysPerExport, rng)
	if len(e.Keys) != 200 {
		t.Fatalf("padding must not touch large exports, got %d", len(e.Keys))
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := sampleExport(50)
	before := make(map[[16]byte]int)
	for _, k := range e.Keys {
		before[k.Key]++
	}
	Shuffle(e, rng)
	after := make(map[[16]byte]int)
	for _, k := range e.Keys {
		after[k.Key]++
	}
	if len(before) != len(after) {
		t.Fatal("shuffle changed key set")
	}
	for k, n := range before {
		if after[k] != n {
			t.Fatal("shuffle changed key multiset")
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	idx := Index{
		Region: "DE",
		Days:   []string{"2020-06-23", "2020-06-24"},
		Hours:  []int{0, 1, 2},
	}
	data, err := MarshalIndex(idx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Region != "DE" || len(got.Days) != 2 || len(got.Hours) != 3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestIndexSortedDeterministic(t *testing.T) {
	a, err := MarshalIndex(Index{Region: "DE", Days: []string{"2020-06-24", "2020-06-23"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalIndex(Index{Region: "DE", Days: []string{"2020-06-23", "2020-06-24"}})
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("index marshaling must be order independent")
	}
}

func TestUnmarshalIndexError(t *testing.T) {
	if _, err := UnmarshalIndex([]byte("{")); err == nil {
		t.Fatal("invalid JSON must error")
	}
}

func TestDayKeyUsesBerlinTime(t *testing.T) {
	// FirstKeysObserved is June 23 00:00 Berlin time, which is still
	// June 22 in UTC; DayKey must bucket by local calendar day.
	if got := DayKey(entime.FirstKeysObserved.UTC()); got != "2020-06-23" {
		t.Fatalf("DayKey = %q, want 2020-06-23", got)
	}
}
