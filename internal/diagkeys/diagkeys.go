// Package diagkeys defines the diagnosis-key export format served by the
// CWA distribution service: signed binary packages of the keys uploaded by
// users who tested positive, binned by day and hour, plus the JSON index
// documents the app uses to discover which packages exist.
//
// The real backend serves protobuf TemporaryExposureKeyExport files; this
// reproduction uses an equivalent fixed-layout binary format built on
// encoding/binary so the module stays stdlib-only. What matters for the
// paper is preserved: package sizes grow with the number of shared keys,
// empty days produce small (padded) packages, and every response carries a
// verifiable signature.
package diagkeys

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"cwatrace/internal/entime"
	"cwatrace/internal/exposure"
)

// Magic identifies a key export file; it plays the role of the
// "EK Export v1" header of the real format.
var Magic = [8]byte{'C', 'W', 'A', 'K', 'E', 'Y', 'S', '1'}

// FormatVersion is bumped on breaking layout changes.
const FormatVersion uint16 = 1

// recordSize is the wire size of one diagnosis key record: 16-byte key,
// 4-byte rolling start, 2-byte rolling period, 1-byte risk level, 1 byte of
// padding for alignment.
const recordSize = 16 + 4 + 2 + 1 + 1

// headerSize is magic + version + region (8 bytes, space padded) + start +
// end interval + key count.
const headerSize = 8 + 2 + 8 + 4 + 4 + 4

// SignatureSize is the trailing HMAC-SHA256 signature length.
const SignatureSize = sha256.Size

// ErrBadSignature is returned when signature verification fails.
var ErrBadSignature = errors.New("diagkeys: signature verification failed")

// ErrMalformed is returned for structurally invalid packages.
var ErrMalformed = errors.New("diagkeys: malformed package")

// Export is one distributable package of diagnosis keys covering
// [Start, End) intervals for a region.
type Export struct {
	Region string // e.g. "DE"; at most 8 bytes on the wire
	Start  entime.Interval
	End    entime.Interval
	Keys   []exposure.DiagnosisKey
}

// Signer produces and verifies package signatures. The production CWA signs
// exports with ECDSA through the Apple/Google framework; the simulation uses
// an HMAC signer, which exercises the same verify-before-use code path.
type Signer interface {
	Sign(payload []byte) []byte
	Verify(payload, sig []byte) bool
}

// HMACSigner signs packages with HMAC-SHA256 under a shared key.
type HMACSigner struct {
	key []byte
}

// NewHMACSigner creates a signer; the key is copied.
func NewHMACSigner(key []byte) *HMACSigner {
	k := make([]byte, len(key))
	copy(k, key)
	return &HMACSigner{key: k}
}

// Sign implements Signer.
func (s *HMACSigner) Sign(payload []byte) []byte {
	m := hmac.New(sha256.New, s.key)
	m.Write(payload)
	return m.Sum(nil)
}

// Verify implements Signer.
func (s *HMACSigner) Verify(payload, sig []byte) bool {
	return hmac.Equal(s.Sign(payload), sig)
}

// Marshal serializes and signs the export. Key order is preserved; the
// caller is responsible for shuffling/padding (see Pad) before publishing so
// upload order does not leak.
func (e *Export) Marshal(signer Signer) ([]byte, error) {
	if len(e.Region) > 8 {
		return nil, fmt.Errorf("diagkeys: region %q longer than 8 bytes", e.Region)
	}
	if e.End < e.Start {
		return nil, fmt.Errorf("diagkeys: end interval %d before start %d", e.End, e.Start)
	}
	if len(e.Keys) > 1<<20 {
		return nil, fmt.Errorf("diagkeys: refusing to marshal %d keys", len(e.Keys))
	}
	var buf bytes.Buffer
	buf.Grow(headerSize + recordSize*len(e.Keys) + SignatureSize)
	buf.Write(Magic[:])
	var tmp [8]byte
	binary.BigEndian.PutUint16(tmp[:2], FormatVersion)
	buf.Write(tmp[:2])
	var region [8]byte
	copy(region[:], e.Region)
	for i := len(e.Region); i < 8; i++ {
		region[i] = ' '
	}
	buf.Write(region[:])
	binary.BigEndian.PutUint32(tmp[:4], uint32(e.Start))
	buf.Write(tmp[:4])
	binary.BigEndian.PutUint32(tmp[:4], uint32(e.End))
	buf.Write(tmp[:4])
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(e.Keys)))
	buf.Write(tmp[:4])
	for _, k := range e.Keys {
		buf.Write(k.Key[:])
		binary.BigEndian.PutUint32(tmp[:4], uint32(k.RollingStart))
		buf.Write(tmp[:4])
		binary.BigEndian.PutUint16(tmp[:2], k.RollingPeriod)
		buf.Write(tmp[:2])
		buf.WriteByte(k.TransmissionRiskLevel)
		buf.WriteByte(0)
	}
	payload := buf.Bytes()
	sig := signer.Sign(payload)
	if len(sig) != SignatureSize {
		return nil, fmt.Errorf("diagkeys: signer produced %d-byte signature, want %d", len(sig), SignatureSize)
	}
	buf.Write(sig)
	return buf.Bytes(), nil
}

// Unmarshal parses and verifies a signed export package.
func Unmarshal(data []byte, signer Signer) (*Export, error) {
	if len(data) < headerSize+SignatureSize {
		return nil, ErrMalformed
	}
	payload := data[:len(data)-SignatureSize]
	sig := data[len(data)-SignatureSize:]
	if !signer.Verify(payload, sig) {
		return nil, ErrBadSignature
	}
	if !bytes.Equal(payload[:8], Magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrMalformed)
	}
	if v := binary.BigEndian.Uint16(payload[8:10]); v != FormatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrMalformed, v)
	}
	e := &Export{
		Region: string(bytes.TrimRight(payload[10:18], " ")),
		Start:  entime.Interval(binary.BigEndian.Uint32(payload[18:22])),
		End:    entime.Interval(binary.BigEndian.Uint32(payload[22:26])),
	}
	if e.End < e.Start {
		return nil, fmt.Errorf("%w: inverted interval window", ErrMalformed)
	}
	n := int(binary.BigEndian.Uint32(payload[26:30]))
	if len(payload) != headerSize+n*recordSize {
		return nil, fmt.Errorf("%w: key count %d does not match payload size %d", ErrMalformed, n, len(payload))
	}
	e.Keys = make([]exposure.DiagnosisKey, n)
	off := headerSize
	for i := 0; i < n; i++ {
		rec := payload[off : off+recordSize]
		copy(e.Keys[i].Key[:], rec[:16])
		e.Keys[i].RollingStart = entime.Interval(binary.BigEndian.Uint32(rec[16:20]))
		e.Keys[i].RollingPeriod = binary.BigEndian.Uint16(rec[20:22])
		e.Keys[i].TransmissionRiskLevel = rec[22]
		off += recordSize
	}
	return e, nil
}

// WireSize returns the marshaled size in bytes for n keys; the CDN traffic
// model uses it to size download responses without serializing.
func WireSize(n int) int { return headerSize + n*recordSize + SignatureSize }
