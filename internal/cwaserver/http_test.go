package cwaserver

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cwatrace/internal/diagkeys"
	"cwatrace/internal/entime"
	"cwatrace/internal/exposure"
)

// newServer spins up the full HTTP API on a SimClock positioned after the
// first-keys date.
func newServer(t *testing.T) (*Backend, *entime.SimClock, *httptest.Server) {
	t.Helper()
	clock := entime.NewSimClock(entime.FirstKeysObserved.Add(9 * time.Hour))
	b, err := New(DefaultConfig(), clock)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(b, DefaultWebsite()))
	t.Cleanup(srv.Close)
	return b, clock, srv
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPFullUploadDownloadRoundTrip(t *testing.T) {
	b, clock, srv := newServer(t)

	// Lab registers a positive test; the app polls, fetches a TAN,
	// uploads keys; another app downloads and verifies the package.
	token := b.RegisterTest(ResultPositive, clock.Now().Add(-time.Hour))

	resp := postJSON(t, srv.URL+PathTestResult, map[string]string{"registrationToken": token})
	var pollRes struct {
		TestResult int `json:"testResult"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pollRes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pollRes.TestResult != int(ResultPositive) {
		t.Fatalf("testResult = %d", pollRes.TestResult)
	}

	resp = postJSON(t, srv.URL+PathTAN, map[string]string{"registrationToken": token})
	var tanRes struct {
		TAN string `json:"tan"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tanRes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tanRes.TAN == "" {
		t.Fatal("no TAN issued")
	}

	keys := sampleKeys(t, clock.Now(), 4)
	payload, err := EncodeUpload(keys)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+PathSubmission, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderTAN, tanRes.TAN)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submission status = %d", resp.StatusCode)
	}

	// Index should list today.
	resp, err = http.Get(srv.URL + PathDatePrefix + "DE/date")
	if err != nil {
		t.Fatal(err)
	}
	idxData, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	idx, err := diagkeys.UnmarshalIndex(idxData)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Days) != 1 || idx.Days[0] != "2020-06-23" {
		t.Fatalf("index days = %v", idx.Days)
	}

	// Download the day package and verify the signature and contents.
	resp, err = http.Get(srv.URL + PathDatePrefix + "DE/date/" + idx.Days[0])
	if err != nil {
		t.Fatal(err)
	}
	pkg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	export, err := diagkeys.Unmarshal(pkg, b.Signer())
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	want := make(map[[16]byte]bool)
	for _, k := range keys {
		want[k.Key] = true
	}
	for _, k := range export.Keys {
		if want[k.Key] {
			found++
		}
	}
	if found != len(keys) {
		t.Fatalf("found %d of %d uploaded keys in download", found, len(keys))
	}
}

func TestHTTPFakeRequestsDoNotTouchState(t *testing.T) {
	b, _, srv := newServer(t)
	for _, path := range []string{PathRegistrationToken, PathTestResult, PathTAN, PathSubmission} {
		req, err := http.NewRequest(http.MethodPost, srv.URL+path, bytes.NewReader([]byte("{}")))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(HeaderFake, "1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fake call to %s: status %d", path, resp.StatusCode)
		}
	}
	uploads, fakes := b.Stats()
	if uploads != 0 {
		t.Fatalf("fake calls created %d uploads", uploads)
	}
	if fakes != 4 {
		t.Fatalf("fakes = %d, want 4", fakes)
	}
}

func TestHTTPWebsite(t *testing.T) {
	_, _, srv := newServer(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("website status = %d", resp.StatusCode)
	}
	if len(body) < 10_000 {
		t.Fatalf("website only %d bytes; should be a realistic page", len(body))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/html; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
}

func TestHTTPMethodChecks(t *testing.T) {
	_, _, srv := newServer(t)
	for _, path := range []string{PathTestResult, PathTAN, PathSubmission} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s = %d, want 405", path, resp.StatusCode)
		}
	}
	resp, err := http.Post(srv.URL+PathDatePrefix+"DE/date", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST to distribution = %d, want 405", resp.StatusCode)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, _, srv := newServer(t)

	// Unknown token.
	resp := postJSON(t, srv.URL+PathTestResult, map[string]string{"registrationToken": "nope"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown token poll = %d", resp.StatusCode)
	}
	resp = postJSON(t, srv.URL+PathTAN, map[string]string{"registrationToken": "nope"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown token tan = %d", resp.StatusCode)
	}

	// Submission without TAN.
	payload, err := EncodeUpload(sampleKeys(t, entime.FirstKeysObserved, 1))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+PathSubmission, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("TAN-less submission = %d, want 403", resp.StatusCode)
	}

	// Garbage upload body.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+PathSubmission, bytes.NewReader([]byte("not json")))
	req.Header.Set(HeaderTAN, "whatever")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload = %d, want 400", resp.StatusCode)
	}

	// Missing day package.
	resp, err = http.Get(srv.URL + PathDatePrefix + "DE/date/1999-01-01")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing day = %d, want 404", resp.StatusCode)
	}

	// Bad distribution path.
	resp, err = http.Get(srv.URL + PathDatePrefix + "DE/notdate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bad path = %d, want 404", resp.StatusCode)
	}
}

func TestEncodeUploadPadsToConstantShape(t *testing.T) {
	now := entime.FirstKeysObserved
	small, err := EncodeUpload(sampleKeys(t, now, 1))
	if err != nil {
		t.Fatal(err)
	}
	large, err := EncodeUpload(sampleKeys(t, now, 14))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(small)) / float64(len(large))
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("upload sizes leak key count: %d vs %d bytes", len(small), len(large))
	}
}

func TestDecodeUploadRejectsBadKeys(t *testing.T) {
	if _, err := DecodeUpload([]byte(`{"keys":[{"key":"zz","rollingStartNumber":0,"rollingPeriod":144,"transmissionRiskLevel":5}]}`)); err == nil {
		t.Fatal("bad hex must fail")
	}
	if _, err := DecodeUpload([]byte(`{"keys":[{"key":"00112233445566778899aabbccddeeff","rollingStartNumber":7,"rollingPeriod":144,"transmissionRiskLevel":5}]}`)); err == nil {
		t.Fatal("unaligned rolling start must fail")
	}
}

func TestUploadDownloadMatchEndToEnd(t *testing.T) {
	// The full protocol loop of Figure 1: an infected user's broadcast is
	// observed by a contact; the infected user uploads through HTTP; the
	// contact downloads through HTTP and matches locally.
	b, clock, srv := newServer(t)

	infectedStore := exposure.NewKeyStore(nil)
	broadcaster := exposure.NewBroadcaster(infectedStore, exposure.Metadata{0x40, 8, 0, 0})
	contactInterval := entime.IntervalOf(clock.Now().Add(-24 * time.Hour))
	rpi, _, err := broadcaster.Payload(contactInterval)
	if err != nil {
		t.Fatal(err)
	}
	history := []exposure.Encounter{{
		RPI: rpi, Interval: contactInterval, DurationMin: 25, AttenuationDB: 45,
	}}

	// Upload.
	token := b.RegisterTest(ResultPositive, clock.Now().Add(-time.Hour))
	tan, err := b.IssueTAN(token)
	if err != nil {
		t.Fatal(err)
	}
	nowI := entime.IntervalOf(clock.Now())
	teks := infectedStore.KeysSince(nowI.Add(-exposure.StorageDays*entime.EKRollingPeriod), nowI)
	var dks []exposure.DiagnosisKey
	for _, k := range teks {
		dks = append(dks, exposure.DiagnosisKey{TEK: k, TransmissionRiskLevel: 6})
	}
	payload, err := EncodeUpload(dks)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, srv.URL+PathSubmission, bytes.NewReader(payload))
	req.Header.Set(HeaderTAN, tan)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}

	// Download + match.
	resp, err = http.Get(srv.URL + PathDatePrefix + "DE/date/" + diagkeys.DayKey(clock.Now()))
	if err != nil {
		t.Fatal(err)
	}
	pkg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	export, err := diagkeys.Unmarshal(pkg, b.Signer())
	if err != nil {
		t.Fatal(err)
	}
	matcher := exposure.NewMatcher(history)
	matches, err := matcher.Match(export.Keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("matches = %d, want 1 (the padded dummies must not match)", len(matches))
	}
	risk := exposure.DefaultRiskConfig().Score(matches)
	if !risk.Elevated {
		t.Fatalf("25 close minutes must elevate risk, score %f", risk.Score)
	}
}
