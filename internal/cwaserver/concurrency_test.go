package cwaserver

import (
	"sync"
	"testing"
	"time"

	"cwatrace/internal/entime"
)

// TestConcurrentBackendAccess hammers the backend from parallel goroutines
// the way the real service is hit: lab registrations, polls, TAN issuance,
// submissions and downloads all at once. Run with -race.
func TestConcurrentBackendAccess(t *testing.T) {
	clock := entime.NewSimClock(entime.FirstKeysObserved.Add(12 * time.Hour))
	b := newBackend(t, clock)

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				token := b.RegisterTest(ResultPositive, clock.Now().Add(-time.Hour))
				if _, err := b.PollResult(token); err != nil {
					errs <- err
					return
				}
				tan, err := b.IssueTAN(token)
				if err != nil {
					errs <- err
					return
				}
				keys := sampleKeys(t, clock.Now(), 1+i%3)
				if err := b.SubmitKeys(tan, keys); err != nil {
					errs <- err
					return
				}
				if _, err := b.Index(); err != nil {
					errs <- err
					return
				}
				for _, day := range b.AvailableDays() {
					if _, err := b.ExportForDay(day); err != nil {
						errs <- err
						return
					}
				}
				b.RecordFakeCall()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	uploads, fakes := b.Stats()
	if uploads != workers*perWorker {
		t.Fatalf("uploads = %d, want %d", uploads, workers*perWorker)
	}
	if fakes != workers*perWorker {
		t.Fatalf("fakes = %d, want %d", fakes, workers*perWorker)
	}
}
