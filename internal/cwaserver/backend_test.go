package cwaserver

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"cwatrace/internal/diagkeys"
	"cwatrace/internal/entime"
	"cwatrace/internal/exposure"
)

func newBackend(t *testing.T, clock entime.Clock) *Backend {
	t.Helper()
	b, err := New(DefaultConfig(), clock)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sampleKeys(t *testing.T, now time.Time, days int) []exposure.DiagnosisKey {
	t.Helper()
	store := exposure.NewKeyStore(rand.New(rand.NewSource(77)))
	nowI := entime.IntervalOf(now)
	for d := days - 1; d >= 0; d-- {
		if _, err := store.ActiveKey(nowI.Add(-d * entime.EKRollingPeriod)); err != nil {
			t.Fatal(err)
		}
	}
	teks := store.KeysSince(nowI.Add(-days*entime.EKRollingPeriod), nowI)
	out := make([]exposure.DiagnosisKey, len(teks))
	for i, k := range teks {
		out[i] = exposure.DiagnosisKey{TEK: k, TransmissionRiskLevel: 5}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Region = ""
	if _, err := New(cfg, nil); err == nil {
		t.Error("empty region must fail")
	}
	cfg = DefaultConfig()
	cfg.SigningKey = nil
	if _, err := New(cfg, nil); err == nil {
		t.Error("missing signing key must fail")
	}
	cfg = DefaultConfig()
	cfg.RetentionDays = 0
	if _, err := New(cfg, nil); err == nil {
		t.Error("zero retention must fail")
	}
}

func TestTestResultLifecycle(t *testing.T) {
	clock := entime.NewSimClock(entime.AppRelease)
	b := newBackend(t, clock)

	token := b.RegisterTest(ResultPositive, clock.Now().Add(24*time.Hour))
	res, err := b.PollResult(token)
	if err != nil || res != ResultPending {
		t.Fatalf("early poll = %v, %v; want pending", res, err)
	}
	if _, err := b.IssueTAN(token); !errors.Is(err, ErrNotPositive) {
		t.Fatalf("TAN before availability: %v", err)
	}

	clock.Advance(25 * time.Hour)
	res, err = b.PollResult(token)
	if err != nil || res != ResultPositive {
		t.Fatalf("poll after availability = %v, %v", res, err)
	}
	tan, err := b.IssueTAN(token)
	if err != nil || tan == "" {
		t.Fatalf("IssueTAN: %q, %v", tan, err)
	}
	// Second TAN for the same test must fail.
	if _, err := b.IssueTAN(token); err == nil {
		t.Fatal("duplicate TAN issuance must fail")
	}
}

func TestPollUnknownToken(t *testing.T) {
	b := newBackend(t, entime.NewSimClock(entime.AppRelease))
	if _, err := b.PollResult("nope"); !errors.Is(err, ErrUnknownToken) {
		t.Fatalf("err = %v", err)
	}
	if _, err := b.IssueTAN("nope"); !errors.Is(err, ErrUnknownToken) {
		t.Fatalf("err = %v", err)
	}
}

func TestNegativeResultNoTAN(t *testing.T) {
	clock := entime.NewSimClock(entime.AppRelease)
	b := newBackend(t, clock)
	token := b.RegisterTest(ResultNegative, clock.Now())
	if _, err := b.IssueTAN(token); !errors.Is(err, ErrNotPositive) {
		t.Fatalf("negative test must not yield TAN: %v", err)
	}
}

func TestSubmitKeysFlow(t *testing.T) {
	clock := entime.NewSimClock(entime.FirstKeysObserved.Add(10 * time.Hour))
	b := newBackend(t, clock)
	token := b.RegisterTest(ResultPositive, clock.Now().Add(-time.Hour))
	tan, err := b.IssueTAN(token)
	if err != nil {
		t.Fatal(err)
	}
	keys := sampleKeys(t, clock.Now(), 5)
	if err := b.SubmitKeys(tan, keys); err != nil {
		t.Fatal(err)
	}
	day := diagkeys.DayKey(clock.Now())
	if got := b.KeyCount(day); got != len(keys) {
		t.Fatalf("stored %d keys, want %d", got, len(keys))
	}
	// TAN is single use.
	if err := b.SubmitKeys(tan, keys); !errors.Is(err, ErrInvalidTAN) {
		t.Fatalf("TAN reuse: %v", err)
	}
	uploads, _ := b.Stats()
	if uploads != 1 {
		t.Fatalf("uploads = %d", uploads)
	}
}

func TestSubmitValidation(t *testing.T) {
	clock := entime.NewSimClock(entime.AppRelease)
	b := newBackend(t, clock)
	token := b.RegisterTest(ResultPositive, clock.Now())
	tan, _ := b.IssueTAN(token)

	if err := b.SubmitKeys(tan, nil); !errors.Is(err, ErrInvalidUpload) {
		t.Fatalf("empty upload: %v", err)
	}
	bad := sampleKeys(t, clock.Now(), 1)
	bad[0].TransmissionRiskLevel = 99
	if err := b.SubmitKeys(tan, bad); !errors.Is(err, ErrInvalidUpload) {
		t.Fatalf("invalid key: %v", err)
	}
	if err := b.SubmitKeys("bogus-tan", sampleKeys(t, clock.Now(), 1)); !errors.Is(err, ErrInvalidTAN) {
		t.Fatalf("bogus TAN: %v", err)
	}
}

func TestExportPaddedAndSigned(t *testing.T) {
	clock := entime.NewSimClock(entime.FirstKeysObserved.Add(10 * time.Hour))
	b := newBackend(t, clock)
	token := b.RegisterTest(ResultPositive, clock.Now().Add(-time.Hour))
	tan, _ := b.IssueTAN(token)
	keys := sampleKeys(t, clock.Now(), 3)
	if err := b.SubmitKeys(tan, keys); err != nil {
		t.Fatal(err)
	}
	day := diagkeys.DayKey(clock.Now())
	data, err := b.ExportForDay(day)
	if err != nil {
		t.Fatal(err)
	}
	export, err := diagkeys.Unmarshal(data, b.Signer())
	if err != nil {
		t.Fatal(err)
	}
	if len(export.Keys) < diagkeys.MinKeysPerExport {
		t.Fatalf("export has %d keys, padding floor is %d", len(export.Keys), diagkeys.MinKeysPerExport)
	}
	// The real keys must be present among the padded ones.
	present := make(map[[16]byte]bool)
	for _, k := range export.Keys {
		present[k.Key] = true
	}
	for _, k := range keys {
		if !present[k.Key] {
			t.Fatal("submitted key missing from export")
		}
	}
}

func TestExportCacheInvalidation(t *testing.T) {
	clock := entime.NewSimClock(entime.FirstKeysObserved.Add(10 * time.Hour))
	b := newBackend(t, clock)
	day := diagkeys.DayKey(clock.Now())

	submit := func(n int) {
		t.Helper()
		token := b.RegisterTest(ResultPositive, clock.Now().Add(-time.Hour))
		tan, err := b.IssueTAN(token)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SubmitKeys(tan, sampleKeys(t, clock.Now(), n)); err != nil {
			t.Fatal(err)
		}
	}
	submit(2)
	d1, err := b.ExportForDay(day)
	if err != nil {
		t.Fatal(err)
	}
	d1again, err := b.ExportForDay(day)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d1again) {
		t.Fatal("cache must return identical bytes")
	}
	submit(3)
	d2, err := b.ExportForDay(day)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := diagkeys.Unmarshal(d2, b.Signer())
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := diagkeys.Unmarshal(d1, b.Signer())
	if b.KeyCount(day) != 5 {
		t.Fatalf("KeyCount = %d, want 5", b.KeyCount(day))
	}
	if len(e2.Keys) < len(e1.Keys) {
		t.Fatal("export shrank after new submission")
	}
}

func TestExportNoSuchDay(t *testing.T) {
	b := newBackend(t, entime.NewSimClock(entime.AppRelease))
	if _, err := b.ExportForDay("2020-06-01"); !errors.Is(err, ErrNoSuchDay) {
		t.Fatalf("err = %v", err)
	}
}

func TestAvailableDaysRetention(t *testing.T) {
	clock := entime.NewSimClock(entime.AppRelease)
	b := newBackend(t, clock)

	submitAt := func(ts time.Time) {
		t.Helper()
		clock.Set(ts)
		token := b.RegisterTest(ResultPositive, ts.Add(-time.Hour))
		tan, err := b.IssueTAN(token)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SubmitKeys(tan, sampleKeys(t, ts, 1)); err != nil {
			t.Fatal(err)
		}
	}
	submitAt(entime.AppRelease.AddDate(0, 0, 7))
	submitAt(entime.AppRelease.AddDate(0, 0, 8))
	days := b.AvailableDays()
	if len(days) != 2 {
		t.Fatalf("AvailableDays = %v", days)
	}
	// Jump past the retention window: the old days must age out.
	clock.Set(entime.AppRelease.AddDate(0, 0, 8+exposure.StorageDays+1))
	if days := b.AvailableDays(); len(days) != 0 {
		t.Fatalf("retention failed, still have %v", days)
	}
}

func TestIndexDocument(t *testing.T) {
	clock := entime.NewSimClock(entime.FirstKeysObserved.Add(10 * time.Hour))
	b := newBackend(t, clock)
	token := b.RegisterTest(ResultPositive, clock.Now().Add(-time.Hour))
	tan, _ := b.IssueTAN(token)
	if err := b.SubmitKeys(tan, sampleKeys(t, clock.Now(), 1)); err != nil {
		t.Fatal(err)
	}
	idx, err := b.Index()
	if err != nil {
		t.Fatal(err)
	}
	if idx.Region != "DE" || len(idx.Days) != 1 || idx.Days[0] != "2020-06-23" {
		t.Fatalf("index = %+v", idx)
	}
}

func TestFakeCallCounter(t *testing.T) {
	b := newBackend(t, entime.NewSimClock(entime.AppRelease))
	b.RecordFakeCall()
	b.RecordFakeCall()
	_, fakes := b.Stats()
	if fakes != 2 {
		t.Fatalf("fakes = %d", fakes)
	}
}
