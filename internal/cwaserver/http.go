package cwaserver

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"cwatrace/internal/diagkeys"
	"cwatrace/internal/entime"
	"cwatrace/internal/exposure"
)

// HeaderFake marks plausible-deniability dummy requests, as the real app
// sets "cwa-fake: 1" on the decoy calls it issues alongside real ones.
const HeaderFake = "cwa-fake"

// HeaderTAN carries the upload authorization.
const HeaderTAN = "cwa-authorization"

// API paths (v1, region-scoped where applicable).
const (
	PathRegistrationToken = "/version/v1/registrationToken"
	PathTestResult        = "/version/v1/testresult"
	PathTAN               = "/version/v1/tan"
	PathSubmission        = "/version/v1/diagnosis-keys"
	PathIndexPrefix       = "/version/v1/index"
	PathDatePrefix        = "/version/v1/diagnosis-keys/country/"
)

// uploadKeyJSON is the submission wire format for one key.
type uploadKeyJSON struct {
	Key                   string `json:"key"` // hex, 16 bytes
	RollingStartNumber    uint32 `json:"rollingStartNumber"`
	RollingPeriod         uint16 `json:"rollingPeriod"`
	TransmissionRiskLevel uint8  `json:"transmissionRiskLevel"`
}

// UploadBody is the submission request payload. Padding blinds the
// request size so uploads with few keys are indistinguishable from
// uploads with many.
type UploadBody struct {
	Keys    []uploadKeyJSON `json:"keys"`
	Padding string          `json:"padding,omitempty"`
}

// EncodeUpload renders diagnosis keys into the submission body, padding the
// key list representation to the size of a full 14-key upload.
func EncodeUpload(keys []exposure.DiagnosisKey) ([]byte, error) {
	body := UploadBody{}
	for _, k := range keys {
		body.Keys = append(body.Keys, uploadKeyJSON{
			Key:                   hex.EncodeToString(k.Key[:]),
			RollingStartNumber:    uint32(k.RollingStart),
			RollingPeriod:         k.RollingPeriod,
			TransmissionRiskLevel: k.TransmissionRiskLevel,
		})
	}
	if n := exposure.StorageDays + 1 - len(body.Keys); n > 0 {
		// ~100 bytes per key entry on the wire.
		body.Padding = strings.Repeat("0", n*100)
	}
	return json.Marshal(&body)
}

// DecodeUpload parses and validates a submission body.
func DecodeUpload(data []byte) ([]exposure.DiagnosisKey, error) {
	var body UploadBody
	if err := json.Unmarshal(data, &body); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidUpload, err)
	}
	out := make([]exposure.DiagnosisKey, 0, len(body.Keys))
	for i, jk := range body.Keys {
		raw, err := hex.DecodeString(jk.Key)
		if err != nil || len(raw) != exposure.KeyLength {
			return nil, fmt.Errorf("%w: key %d not %d hex bytes", ErrInvalidUpload, i, exposure.KeyLength)
		}
		var k exposure.DiagnosisKey
		copy(k.Key[:], raw)
		k.RollingStart = entime.Interval(jk.RollingStartNumber)
		k.RollingPeriod = jk.RollingPeriod
		k.TransmissionRiskLevel = jk.TransmissionRiskLevel
		if err := k.Validate(); err != nil {
			return nil, fmt.Errorf("%w: key %d: %v", ErrInvalidUpload, i, err)
		}
		out = append(out, k)
	}
	return out, nil
}

// Handler assembles the HTTP API over a Backend. website, when non-empty,
// is served at "/" — app API calls and website visits share the hosting
// infrastructure in the paper ("Website visits and CWA app API calls are
// served by the same servers via HTTPS").
func Handler(b *Backend, website []byte) http.Handler {
	mux := http.NewServeMux()

	writeJSON := func(w http.ResponseWriter, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(v)
	}

	// isFake intercepts decoy requests: they are counted and answered
	// with a placeholder of realistic size, never touching real state.
	isFake := func(w http.ResponseWriter, r *http.Request) bool {
		if r.Header.Get(HeaderFake) == "" {
			return false
		}
		b.RecordFakeCall()
		writeJSON(w, http.StatusOK, map[string]string{"ok": "1", "pad": strings.Repeat("0", 64)})
		return true
	}

	mux.HandleFunc(PathRegistrationToken, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if isFake(w, r) {
			return
		}
		// Registration binds a lab test GUID to a token. The reproduction
		// issues tokens directly at lab registration (RegisterTest), so
		// this endpoint only serves the decoy traffic pattern and
		// API-compatible clients.
		writeJSON(w, http.StatusOK, map[string]string{"registrationToken": randomToken()})
	})

	mux.HandleFunc(PathTestResult, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if isFake(w, r) {
			return
		}
		var req struct {
			RegistrationToken string `json:"registrationToken"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		res, err := b.PollResult(req.RegistrationToken)
		if errors.Is(err, ErrUnknownToken) {
			http.Error(w, "unknown token", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"testResult": int(res)})
	})

	mux.HandleFunc(PathTAN, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if isFake(w, r) {
			return
		}
		var req struct {
			RegistrationToken string `json:"registrationToken"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		tan, err := b.IssueTAN(req.RegistrationToken)
		switch {
		case errors.Is(err, ErrUnknownToken):
			http.Error(w, "unknown token", http.StatusNotFound)
		case errors.Is(err, ErrNotPositive), errors.Is(err, ErrInvalidTAN):
			http.Error(w, "forbidden", http.StatusForbidden)
		case err != nil:
			http.Error(w, "internal error", http.StatusInternalServerError)
		default:
			writeJSON(w, http.StatusOK, map[string]string{"tan": tan})
		}
	})

	mux.HandleFunc(PathSubmission, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if isFake(w, r) {
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, "payload too large", http.StatusRequestEntityTooLarge)
			return
		}
		keys, err := DecodeUpload(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := b.SubmitKeys(r.Header.Get(HeaderTAN), keys); err != nil {
			if errors.Is(err, ErrInvalidTAN) {
				http.Error(w, "forbidden", http.StatusForbidden)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"ok": "1"})
	})

	// Distribution: index, dated packages and hourly packages.
	// GET .../country/{region}/date                      -> index (days + today's hours)
	// GET .../country/{region}/date/{day}                -> day package
	// GET .../country/{region}/date/{day}/hour/{hour}    -> hour package
	mux.HandleFunc(PathDatePrefix, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, PathDatePrefix)
		parts := strings.Split(rest, "/")
		if len(parts) < 2 || parts[1] != "date" {
			http.NotFound(w, r)
			return
		}
		writePackage := func(data []byte, err error) {
			if errors.Is(err, ErrNoSuchDay) || errors.Is(err, ErrNoSuchHour) {
				http.NotFound(w, r)
				return
			}
			if err != nil {
				http.Error(w, "internal error", http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(data)
		}
		switch {
		case len(parts) == 2: // index
			idx, err := b.Index()
			if err != nil {
				http.Error(w, "internal error", http.StatusInternalServerError)
				return
			}
			data, err := diagkeys.MarshalIndex(idx)
			if err != nil {
				http.Error(w, "internal error", http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(data)
		case len(parts) == 3: // day package
			writePackage(b.ExportForDay(parts[2]))
		case len(parts) == 5 && parts[3] == "hour": // hour package
			hour, err := strconv.Atoi(parts[4])
			if err != nil || hour < 0 || hour > 23 {
				http.Error(w, "bad hour", http.StatusBadRequest)
				return
			}
			writePackage(b.ExportForHour(parts[2], hour))
		default:
			http.NotFound(w, r)
		}
	})

	if len(website) > 0 {
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/" {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			_, _ = w.Write(website)
		})
	}
	return mux
}

// DefaultWebsite returns the simulated coronawarn.app landing page. Its
// size matters more than its content: website visits and API calls share
// the measured byte counts.
func DefaultWebsite() []byte {
	var sb strings.Builder
	sb.WriteString("<!doctype html><html lang=\"de\"><head><title>Corona-Warn-App</title></head><body>\n")
	sb.WriteString("<h1>Corona-Warn-App</h1>\n")
	sb.WriteString("<p>Die offizielle COVID-19 Exposure-Notification-App.</p>\n")
	// Filler approximating the landing page's ~55 kB transfer size.
	for i := 0; i < 600; i++ {
		fmt.Fprintf(&sb, "<p data-block=\"%03d\">Gemeinsam Corona bekämpfen — Abstand halten, Hygiene beachten, App nutzen.</p>\n", i)
	}
	sb.WriteString("</body></html>\n")
	return []byte(sb.String())
}
