// Package cwaserver implements the Corona-Warn-App backend the paper's
// vantage point fronts: the verification service (lab results and TANs),
// the submission service (diagnosis-key upload), and the distribution
// service (signed daily/hourly key packages plus their index). The same
// logic is exposed twice — as direct methods for the discrete-event
// simulator, and as net/http handlers (see http.go) for the runnable
// backend binary, the examples and the integration tests.
//
// The flow matches Figure 1 of the paper: lab testing feeds the
// verification service; a positive user's app requests a TAN and uploads
// its temporary exposure keys; every app downloads the published diagnosis
// keys once per day through the CDN.
package cwaserver

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cwatrace/internal/diagkeys"
	"cwatrace/internal/entime"
	"cwatrace/internal/exposure"
)

// TestResult is the state of a lab test as the app polls it.
type TestResult int

// Test result states, mirroring the CWA verification protocol.
const (
	ResultPending TestResult = iota
	ResultNegative
	ResultPositive
)

// Errors returned by the backend operations.
var (
	ErrUnknownToken  = errors.New("cwaserver: unknown registration token")
	ErrNotPositive   = errors.New("cwaserver: test result is not positive")
	ErrInvalidTAN    = errors.New("cwaserver: invalid or already used TAN")
	ErrInvalidUpload = errors.New("cwaserver: invalid diagnosis key upload")
	ErrNoSuchDay     = errors.New("cwaserver: no package for requested day")
)

type testRecord struct {
	result      TestResult
	availableAt time.Time
	tanIssued   bool
}

// Config parameterizes the backend.
type Config struct {
	Region string
	// SigningKey keys the export HMAC signer.
	SigningKey []byte
	// PaddingSeed drives deterministic export padding and shuffling.
	PaddingSeed int64
	// MinKeysPerExport is the plausible-deniability padding floor.
	MinKeysPerExport int
	// RetentionDays bounds how long published keys stay downloadable.
	RetentionDays int
}

// DefaultConfig returns production-like settings.
func DefaultConfig() Config {
	return Config{
		Region:           "DE",
		SigningKey:       []byte("cwa-reproduction-signing-key"),
		PaddingSeed:      0x5EED,
		MinKeysPerExport: diagkeys.MinKeysPerExport,
		RetentionDays:    exposure.StorageDays,
	}
}

// Backend is the shared state of all three services. All methods are safe
// for concurrent use. Read-heavy paths (result polling, package discovery,
// cached exports) take only a read lock, and the pure counters are atomics,
// so concurrent readers — the parallel simulation engine, the HTTP handlers
// — do not serialize on the writers.
type Backend struct {
	cfg    Config
	clock  entime.Clock
	signer diagkeys.Signer

	mu    sync.RWMutex
	tests map[string]*testRecord // registration token -> record
	tans  map[string]bool        // issued, unused TANs
	// keysByHour stores submissions bucketed by DayKey and hour of
	// submission; day packages aggregate all hours, hour packages (the
	// current-day distribution path of the real service) serve one
	// bucket.
	keysByHour map[string]map[int][]exposure.DiagnosisKey
	// exportCache invalidates per day when new keys arrive.
	exportCache map[string][]byte
	uploads     atomic.Int64
	fakeCalls   atomic.Int64
}

// New creates a Backend. clock may be nil for wall-clock time.
func New(cfg Config, clock entime.Clock) (*Backend, error) {
	if cfg.Region == "" {
		return nil, fmt.Errorf("cwaserver: region required")
	}
	if len(cfg.SigningKey) == 0 {
		return nil, fmt.Errorf("cwaserver: signing key required")
	}
	if cfg.RetentionDays <= 0 {
		return nil, fmt.Errorf("cwaserver: retention must be positive")
	}
	if clock == nil {
		clock = entime.WallClock{}
	}
	return &Backend{
		cfg:         cfg,
		clock:       clock,
		signer:      diagkeys.NewHMACSigner(cfg.SigningKey),
		tests:       make(map[string]*testRecord),
		tans:        make(map[string]bool),
		keysByHour:  make(map[string]map[int][]exposure.DiagnosisKey),
		exportCache: make(map[string][]byte),
	}, nil
}

// randomToken produces an unguessable hex token.
func randomToken() string {
	var b [16]byte
	if _, err := io.ReadFull(rand.Reader, b[:]); err != nil {
		// crypto/rand failing is unrecoverable; surface loudly.
		panic("cwaserver: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// RegisterTest is the lab-side entry point of Figure 1 ("lab testing"): it
// records a test whose result becomes visible to the app at availableAt and
// returns the registration token the patient's app will poll with.
func (b *Backend) RegisterTest(result TestResult, availableAt time.Time) string {
	token := randomToken()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tests[token] = &testRecord{result: result, availableAt: availableAt}
	return token
}

// PollResult returns the test state for a registration token, hiding
// results that are not yet available.
func (b *Backend) PollResult(token string) (TestResult, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	rec, ok := b.tests[token]
	if !ok {
		return ResultPending, ErrUnknownToken
	}
	if b.clock.Now().Before(rec.availableAt) {
		return ResultPending, nil
	}
	return rec.result, nil
}

// IssueTAN authorizes an upload for a positive, available test. Each test
// yields at most one TAN.
func (b *Backend) IssueTAN(token string) (string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	rec, ok := b.tests[token]
	if !ok {
		return "", ErrUnknownToken
	}
	if b.clock.Now().Before(rec.availableAt) || rec.result != ResultPositive {
		return "", ErrNotPositive
	}
	if rec.tanIssued {
		return "", ErrInvalidTAN
	}
	rec.tanIssued = true
	tan := randomToken()
	b.tans[tan] = true
	return tan, nil
}

// SubmitKeys verifies the TAN (single use) and stores the uploaded
// diagnosis keys into the current day's pending export.
func (b *Backend) SubmitKeys(tan string, keys []exposure.DiagnosisKey) error {
	if len(keys) == 0 || len(keys) > exposure.StorageDays+1 {
		return fmt.Errorf("%w: %d keys", ErrInvalidUpload, len(keys))
	}
	for _, k := range keys {
		if err := k.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidUpload, err)
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.tans[tan] {
		return ErrInvalidTAN
	}
	delete(b.tans, tan)
	now := b.clock.Now().In(entime.Berlin)
	day := diagkeys.DayKey(now)
	if b.keysByHour[day] == nil {
		b.keysByHour[day] = make(map[int][]exposure.DiagnosisKey)
	}
	b.keysByHour[day][now.Hour()] = append(b.keysByHour[day][now.Hour()], keys...)
	delete(b.exportCache, day)
	b.uploads.Add(1)
	return nil
}

// RecordFakeCall counts a plausible-deniability dummy request (the app
// sends fakes so observers cannot tell uploaders from non-uploaders). It is
// lock-free: decoy traffic is high-volume and must not contend with real
// submissions.
func (b *Backend) RecordFakeCall() {
	b.fakeCalls.Add(1)
}

// Stats reports upload and fake-call counters.
func (b *Backend) Stats() (uploads, fakeCalls int) {
	return int(b.uploads.Load()), int(b.fakeCalls.Load())
}

// AvailableDays lists days (as DayKey strings) with published packages, in
// ascending order, bounded by the retention window. A day is published once
// it has ended or holds keys.
func (b *Backend) AvailableDays() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	now := b.clock.Now().In(entime.Berlin)
	var days []string
	for d := range b.keysByHour {
		days = append(days, d)
	}
	sort.Strings(days)
	// Trim to retention.
	cutoff := diagkeys.DayKey(now.AddDate(0, 0, -b.cfg.RetentionDays))
	kept := days[:0]
	for _, d := range days {
		if d >= cutoff {
			kept = append(kept, d)
		}
	}
	return kept
}

// AvailableHours lists the hours of a day holding keys, ascending. The app
// polls these for the current (still unfinished) day instead of waiting for
// the complete day package.
func (b *Backend) AvailableHours(day string) []int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var hours []int
	for h := range b.keysByHour[day] {
		hours = append(hours, h)
	}
	sort.Ints(hours)
	return hours
}

// Index returns the discovery document for the app, including the current
// day's published hours.
func (b *Backend) Index() (diagkeys.Index, error) {
	days := b.AvailableDays()
	idx := diagkeys.Index{Region: b.cfg.Region, Days: days}
	idx.Hours = b.AvailableHours(diagkeys.DayKey(b.clock.Now()))
	return idx, nil
}

// ExportForDay returns the signed, padded, shuffled key package for a
// DayKey. Exports are cached until the day receives new keys; the cached
// path — the overwhelming majority of download traffic — takes only a read
// lock.
func (b *Backend) ExportForDay(day string) ([]byte, error) {
	b.mu.RLock()
	cached, ok := b.exportCache[day]
	b.mu.RUnlock()
	if ok {
		return cached, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Re-check under the write lock: another goroutine may have built the
	// export while we waited.
	if cached, ok := b.exportCache[day]; ok {
		return cached, nil
	}
	hours, ok := b.keysByHour[day]
	if !ok {
		return nil, ErrNoSuchDay
	}
	dayStart, err := time.ParseInLocation("2006-01-02", day, entime.Berlin)
	if err != nil {
		return nil, fmt.Errorf("cwaserver: bad day key %q: %w", day, err)
	}
	var keys []exposure.DiagnosisKey
	hourList := make([]int, 0, len(hours))
	for h := range hours {
		hourList = append(hourList, h)
	}
	sort.Ints(hourList)
	for _, h := range hourList {
		keys = append(keys, hours[h]...)
	}
	export := &diagkeys.Export{
		Region: b.cfg.Region,
		Start:  entime.IntervalOf(dayStart),
		End:    entime.IntervalOf(dayStart.AddDate(0, 0, 1)),
		Keys:   keys,
	}
	// Deterministic padding per day: seed mixes the configured seed with
	// the day string so rebuilt caches are byte-identical.
	rng := mrand.New(mrand.NewSource(b.cfg.PaddingSeed ^ int64(len(keys))<<32 ^ hashDay(day)))
	diagkeys.Pad(export, b.cfg.MinKeysPerExport, rng)
	diagkeys.Shuffle(export, rng)
	data, err := export.Marshal(b.signer)
	if err != nil {
		return nil, err
	}
	b.exportCache[day] = data
	return data, nil
}

// ErrNoSuchHour is returned when an hour package does not exist.
var ErrNoSuchHour = errors.New("cwaserver: no package for requested hour")

// ExportForHour returns the signed package of keys submitted within one
// hour of a day. Hour packages serve the current, still-running day; they
// carry no plausible-deniability padding (matching the early production
// behaviour — padding applied to the daily aggregates).
func (b *Backend) ExportForHour(day string, hour int) ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	hours, ok := b.keysByHour[day]
	if !ok {
		return nil, ErrNoSuchDay
	}
	keys, ok := hours[hour]
	if !ok {
		return nil, ErrNoSuchHour
	}
	dayStart, err := time.ParseInLocation("2006-01-02", day, entime.Berlin)
	if err != nil {
		return nil, fmt.Errorf("cwaserver: bad day key %q: %w", day, err)
	}
	hourStart := dayStart.Add(time.Duration(hour) * time.Hour)
	export := &diagkeys.Export{
		Region: b.cfg.Region,
		Start:  entime.IntervalOf(hourStart),
		End:    entime.IntervalOf(hourStart.Add(time.Hour)),
		Keys:   append([]exposure.DiagnosisKey(nil), keys...),
	}
	rng := mrand.New(mrand.NewSource(b.cfg.PaddingSeed ^ hashDay(day) ^ int64(hour)))
	diagkeys.Shuffle(export, rng)
	return export.Marshal(b.signer)
}

// KeyCount returns the number of real (unpadded) keys stored for a day.
func (b *Backend) KeyCount(day string) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	n := 0
	for _, keys := range b.keysByHour[day] {
		n += len(keys)
	}
	return n
}

// Signer exposes the export signer so clients (and tests) can verify
// downloaded packages.
func (b *Backend) Signer() diagkeys.Signer { return b.signer }

func hashDay(day string) int64 {
	var h int64 = 1125899906842597
	for _, c := range day {
		h = h*31 + int64(c)
	}
	return h
}
