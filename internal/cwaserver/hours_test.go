package cwaserver

import (
	"errors"
	"io"
	"net/http"
	"testing"
	"time"

	"cwatrace/internal/diagkeys"
	"cwatrace/internal/entime"
)

// submitAtHour registers and uploads n keys at a specific hour of the
// clock's current day.
func submitAtHour(t *testing.T, b *Backend, clock *entime.SimClock, hour, n int) {
	t.Helper()
	local := clock.Now().In(entime.Berlin)
	day := time.Date(local.Year(), local.Month(), local.Day(), 0, 0, 0, 0, entime.Berlin)
	clock.Set(day.Add(time.Duration(hour)*time.Hour + 10*time.Minute))
	token := b.RegisterTest(ResultPositive, clock.Now().Add(-time.Hour))
	tan, err := b.IssueTAN(token)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SubmitKeys(tan, sampleKeys(t, clock.Now(), n)); err != nil {
		t.Fatal(err)
	}
}

func TestAvailableHours(t *testing.T) {
	clock := entime.NewSimClock(entime.FirstKeysObserved)
	b := newBackend(t, clock)
	day := diagkeys.DayKey(clock.Now())

	if hours := b.AvailableHours(day); len(hours) != 0 {
		t.Fatalf("hours before any submission: %v", hours)
	}
	submitAtHour(t, b, clock, 9, 1)
	submitAtHour(t, b, clock, 14, 2)
	submitAtHour(t, b, clock, 9, 1)
	hours := b.AvailableHours(day)
	if len(hours) != 2 || hours[0] != 9 || hours[1] != 14 {
		t.Fatalf("hours = %v, want [9 14]", hours)
	}
}

func TestExportForHour(t *testing.T) {
	clock := entime.NewSimClock(entime.FirstKeysObserved)
	b := newBackend(t, clock)
	day := diagkeys.DayKey(clock.Now())
	submitAtHour(t, b, clock, 9, 3)
	submitAtHour(t, b, clock, 14, 2)

	data, err := b.ExportForHour(day, 9)
	if err != nil {
		t.Fatal(err)
	}
	export, err := diagkeys.Unmarshal(data, b.Signer())
	if err != nil {
		t.Fatal(err)
	}
	// Hour packages are unpadded: exactly the submitted keys.
	if len(export.Keys) != 3 {
		t.Fatalf("hour 9 keys = %d, want 3 (no padding)", len(export.Keys))
	}
	// The window must cover exactly that hour.
	if export.End != export.Start.Add(6) {
		t.Fatalf("hour window = [%d, %d), want 6 intervals", export.Start, export.End)
	}
}

func TestExportForHourErrors(t *testing.T) {
	clock := entime.NewSimClock(entime.FirstKeysObserved)
	b := newBackend(t, clock)
	if _, err := b.ExportForHour("2020-06-23", 9); !errors.Is(err, ErrNoSuchDay) {
		t.Fatalf("unknown day: %v", err)
	}
	submitAtHour(t, b, clock, 9, 1)
	if _, err := b.ExportForHour("2020-06-23", 10); !errors.Is(err, ErrNoSuchHour) {
		t.Fatalf("unknown hour: %v", err)
	}
}

func TestDayPackageAggregatesHours(t *testing.T) {
	clock := entime.NewSimClock(entime.FirstKeysObserved)
	b := newBackend(t, clock)
	day := diagkeys.DayKey(clock.Now())
	submitAtHour(t, b, clock, 9, 3)
	submitAtHour(t, b, clock, 14, 2)
	if got := b.KeyCount(day); got != 5 {
		t.Fatalf("KeyCount = %d, want 5", got)
	}
	data, err := b.ExportForDay(day)
	if err != nil {
		t.Fatal(err)
	}
	export, err := diagkeys.Unmarshal(data, b.Signer())
	if err != nil {
		t.Fatal(err)
	}
	if len(export.Keys) < diagkeys.MinKeysPerExport {
		t.Fatalf("day package must stay padded: %d keys", len(export.Keys))
	}
}

func TestIndexIncludesCurrentDayHours(t *testing.T) {
	clock := entime.NewSimClock(entime.FirstKeysObserved)
	b := newBackend(t, clock)
	submitAtHour(t, b, clock, 9, 1)
	idx, err := b.Index()
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Hours) != 1 || idx.Hours[0] != 9 {
		t.Fatalf("index hours = %v, want [9]", idx.Hours)
	}
}

func TestHTTPHourEndpoint(t *testing.T) {
	b, clock, srv := newServer(t)
	day := diagkeys.DayKey(clock.Now())
	submitAtHour(t, b, clock, 9, 2)

	resp, err := http.Get(srv.URL + PathDatePrefix + "DE/date/" + day + "/hour/9")
	if err != nil {
		t.Fatal(err)
	}
	pkg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hour fetch status %d", resp.StatusCode)
	}
	export, err := diagkeys.Unmarshal(pkg, b.Signer())
	if err != nil {
		t.Fatal(err)
	}
	if len(export.Keys) != 2 {
		t.Fatalf("hour package keys = %d", len(export.Keys))
	}

	// Missing hour -> 404, bad hour -> 400.
	resp, err = http.Get(srv.URL + PathDatePrefix + "DE/date/" + day + "/hour/3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing hour status %d", resp.StatusCode)
	}
	for _, bad := range []string{"x", "-1", "24"} {
		resp, err = http.Get(srv.URL + PathDatePrefix + "DE/date/" + day + "/hour/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad hour %q status %d", bad, resp.StatusCode)
		}
	}
}
