package core

import (
	"fmt"
	"sort"
	"strings"

	"cwatrace/internal/entime"
)

// RenderFigure2 prints the hourly series as an ASCII chart plus the daily
// table, mirroring the rows of the paper's Figure 2.
func RenderFigure2(res *Figure2Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 2 — hourly CWA CDN->user traffic (normed to minimum) + cumulative downloads\n")
	sb.WriteString("hour  date        flows    bytes  flows/min  bytes/min  downloads[M]  chart(flows)\n")

	var maxNorm float64
	for _, p := range res.Points {
		if p.FlowsNormed > maxNorm {
			maxNorm = p.FlowsNormed
		}
	}
	for _, p := range res.Points {
		bar := ""
		if maxNorm > 0 {
			n := int(p.FlowsNormed / maxNorm * 40)
			bar = strings.Repeat("#", n)
		}
		fmt.Fprintf(&sb, "%4d  %s  %7.0f %8.0f  %9.2f  %9.2f  %12.2f  %s\n",
			p.Hour, p.Time.Format("Jun 02 15h"), p.Flows, p.Bytes,
			p.FlowsNormed, p.BytesNormed, p.DownloadsM, bar)
	}
	fmt.Fprintf(&sb, "\nrelease-day flow increase (Jun 16 vs Jun 15): %.1fx (paper: 7.5x)\n",
		res.ReleaseDayFlowRatio)
	fmt.Fprintf(&sb, "resurgence (Jun 23-25 vs Jun 20-22): %.2fx (paper: re-surge after outbreak news)\n",
		res.ResurgenceRatio)
	return sb.String()
}

// RenderFigure2Daily prints the compact per-day table.
func RenderFigure2Daily(daily []float64) string {
	var sb strings.Builder
	sb.WriteString("day         flows\n")
	for d, v := range daily {
		fmt.Fprintf(&sb, "%s  %8.0f\n", entime.DayLabel(d), v)
	}
	return sb.String()
}

// RenderFigure3 prints the district heatmap as a per-state summary plus the
// busiest districts, the textual equivalent of the paper's map.
func RenderFigure3(res *Figure3Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 3 — CWA traffic by district (normalized by maximum)\n")
	fmt.Fprintf(&sb, "districts emitting requests: %d of %d (paper: almost all)\n",
		res.ActiveDistricts, res.TotalDistricts)
	fmt.Fprintf(&sb, "flows geolocated: %.1f%% — via ISP router ground truth: %.1f%% (paper: 18%%)\n\n",
		res.LocatedShare*100, res.RouterShare*100)

	type stateAgg struct {
		flows float64
		max   float64
		n     int
	}
	states := make(map[string]*stateAgg)
	for _, l := range res.Loads {
		sa := states[l.District.StateCode]
		if sa == nil {
			sa = &stateAgg{}
			states[l.District.StateCode] = sa
		}
		sa.flows += l.Flows
		sa.n++
		if l.Normalized > sa.max {
			sa.max = l.Normalized
		}
	}
	codes := make([]string, 0, len(states))
	for c := range states {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	sb.WriteString("state  districts     flows   peak(norm)  heat\n")
	for _, c := range codes {
		sa := states[c]
		bar := strings.Repeat("#", int(sa.max*30))
		fmt.Fprintf(&sb, "%-5s  %9d  %8.0f  %10.3f  %s\n", c, sa.n, sa.flows, sa.max, bar)
	}

	sb.WriteString("\nbusiest districts:\n")
	for _, l := range res.TopDistricts(10) {
		fmt.Fprintf(&sb, "  %-28s %-3s %8.0f  %.3f\n",
			l.District.Name, l.District.StateCode, l.Flows, l.Normalized)
	}
	return sb.String()
}

// RenderPersistence prints the prefix persistence table (paper's in-text
// result T2).
func RenderPersistence(p PersistenceResult) string {
	var sb strings.Builder
	sb.WriteString("Prefix persistence (fraction of days present between first and last day)\n")
	fmt.Fprintf(&sb, "prefixes observed: %d (multi-day: %d)\n", p.Prefixes, p.CDF.Len())
	fmt.Fprintf(&sb, "median fraction:   %.2f (paper: 0.67)\n", p.MedianFraction)
	fmt.Fprintf(&sb, "75th percentile:   %.2f (paper: 0.80)\n", p.P75Fraction)
	return sb.String()
}

// RenderOutbreaks prints the outbreak non-effect analysis (T4).
func RenderOutbreaks(r *OutbreakReport) string {
	var sb strings.Builder
	sb.WriteString("Outbreak analysis — June 23 lockdown news (after Jun 23-25 vs before Jun 20-22)\n")
	fmt.Fprintf(&sb, "national growth: %.2fx\n", r.NationalGrowth)
	codes := make([]string, 0, len(r.StateGrowth))
	for c := range r.StateGrowth {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		marker := ""
		if c == "NW" {
			marker = "  <- outbreak state"
		}
		fmt.Fprintf(&sb, "  state %s: %.2fx%s\n", c, r.StateGrowth[c], marker)
	}
	fmt.Fprintf(&sb, "NRW vs national: %.2f (paper: increase occurs in all states simultaneously)\n", r.NRWExcess)
	fmt.Fprintf(&sb, "state growth dispersion (CoV): %.3f\n", r.GrowthDispersion())
	fmt.Fprintf(&sb, "Gütersloh growth: %.2fx (paper: very slight increase)\n", r.GueterslohGrowth)
	fmt.Fprintf(&sb, "Warendorf growth: %.2fx (paper: insufficient data)\n", r.WarendorfGrowth)
	fmt.Fprintf(&sb, "\nBerlin June 18 (after Jun 18-19 vs before Jun 16-17):\n")
	fmt.Fprintf(&sb, "  overall: %.2fx (paper: not visible overall)\n", r.BerlinOverallGrowth)
	isps := make([]string, 0, len(r.BerlinISPGrowth))
	for i := range r.BerlinISPGrowth {
		isps = append(isps, i)
	}
	sort.Strings(isps)
	for _, i := range isps {
		fmt.Fprintf(&sb, "  ISP %-10s %.2fx\n", i, r.BerlinISPGrowth[i])
	}
	if isp, ok := r.BerlinSingleISP(0.15); ok {
		fmt.Fprintf(&sb, "  -> visible for a single ISP only: %s (matches paper)\n", isp)
	}
	return sb.String()
}

// RenderCensus prints the data-set census (T1).
func RenderCensus(c Census, scale int) string {
	var sb strings.Builder
	sb.WriteString("Data set census (paper: ≈3.3M matching flows, 2 IPv4 prefixes, tcp/443 only)\n")
	fmt.Fprintf(&sb, "  %s\n", c.String())
	if scale > 1 {
		fmt.Fprintf(&sb, "  kept x scale(%d): %d flows (compare paper's ≈3.3M)\n", scale, c.Kept*scale)
	}
	return sb.String()
}
