package core

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"cwatrace/internal/geo"
	"cwatrace/internal/geodb"
	"cwatrace/internal/netflow"
)

var model = geo.Germany()

// buildDB maps prefix 20.0.X.0/24 to the X-th district (un-anonymized for
// test simplicity), using "Blau" as partner ISP for every 4th prefix.
func buildDB(t *testing.T, n int) *geodb.DB {
	t.Helper()
	districts := model.Districts()
	var infos []geodb.PrefixInfo
	for i := 0; i < n; i++ {
		d := districts[i%len(districts)]
		isp := "Magenta"
		if i%4 == 0 {
			isp = "Blau"
		}
		infos = append(infos, geodb.PrefixInfo{
			Prefix:     netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(i >> 8), byte(i), 0}), 24),
			RouterID:   isp + "/" + d.ID,
			DistrictID: d.ID,
			ISPName:    isp,
		})
	}
	cfg := geodb.DefaultConfig()
	cfg.GeoIPErrorRate = 0 // exact mapping keeps the test assertions crisp
	db, err := geodb.Build(model, infos, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// recAt creates a downstream record from district-prefix i at the given day.
func recAt(i int, day int) netflow.Record {
	r := mkRec(func(r *netflow.Record) {
		r.Dst = netip.AddrFrom4([4]byte{20, byte(i >> 8), byte(i), 9})
	})
	r.First = tBase.AddDate(0, 0, day)
	r.Last = r.First
	return r
}

func TestFigure3Aggregation(t *testing.T) {
	db := buildDB(t, 401)
	var records []netflow.Record
	// District 0 gets 10 flows, district 1 gets 5, district 2 gets 1.
	for i := 0; i < 10; i++ {
		records = append(records, recAt(0, 0))
	}
	for i := 0; i < 5; i++ {
		records = append(records, recAt(1, 0))
	}
	records = append(records, recAt(2, 0))

	from, to := StudyWindow()
	res := Figure3(records, db, model, from, to)
	if res.ActiveDistricts != 3 {
		t.Fatalf("active districts = %d", res.ActiveDistricts)
	}
	if res.TotalDistricts != 401 {
		t.Fatalf("total districts = %d", res.TotalDistricts)
	}
	if res.LocatedShare != 1 {
		t.Fatalf("located share = %f", res.LocatedShare)
	}
	// Normalization by the max district (10 flows).
	var max, second float64
	for _, l := range res.Loads {
		if l.Flows == 10 {
			max = l.Normalized
		}
		if l.Flows == 5 {
			second = l.Normalized
		}
	}
	if max != 1 || second != 0.5 {
		t.Fatalf("normalization wrong: max=%f second=%f", max, second)
	}
}

func TestFigure3WindowFilter(t *testing.T) {
	db := buildDB(t, 10)
	records := []netflow.Record{
		recAt(0, 0),  // June 16 (inside)
		recAt(1, 20), // July (outside)
	}
	from, to := StudyWindow()
	res := Figure3(records, db, model, from, to)
	if res.ActiveDistricts != 1 {
		t.Fatalf("window filter failed: %d active", res.ActiveDistricts)
	}
}

func TestFigure3RouterShare(t *testing.T) {
	db := buildDB(t, 400)
	var records []netflow.Record
	for i := 0; i < 400; i++ {
		records = append(records, recAt(i, 1))
	}
	from, to := StudyWindow()
	res := Figure3(records, db, model, from, to)
	// Every 4th prefix is partner-ISP ground truth.
	if res.RouterShare < 0.2 || res.RouterShare > 0.3 {
		t.Fatalf("router share = %f, want ~0.25", res.RouterShare)
	}
}

func TestFigure3UnknownPrefixesLowerCoverage(t *testing.T) {
	db := buildDB(t, 5)
	records := []netflow.Record{recAt(0, 0)}
	unknown := mkRec(func(r *netflow.Record) {
		r.Dst = netip.MustParseAddr("99.1.2.3")
	})
	unknown.First = tBase
	records = append(records, unknown)
	from, to := StudyWindow()
	res := Figure3(records, db, model, from, to)
	if res.LocatedShare != 0.5 {
		t.Fatalf("located share = %f, want 0.5", res.LocatedShare)
	}
}

func TestSpreadSimilarity(t *testing.T) {
	db := buildDB(t, 401)
	var win10, day1 []netflow.Record
	// Same geographic pattern on day one and across the window.
	for i := 0; i < 100; i++ {
		weight := 1 + i%7
		for w := 0; w < weight; w++ {
			day1 = append(day1, recAt(i, 0))
			win10 = append(win10, recAt(i, 0))
			win10 = append(win10, recAt(i, 5))
		}
	}
	fromAll, toAll := StudyWindow()
	resAll := Figure3(win10, db, model, fromAll, toAll)
	fromD1, toD1 := FirstDayWindow()
	resD1 := Figure3(day1, db, model, fromD1, toD1)
	r, err := SpreadSimilarity(resD1, resAll)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.99 {
		t.Fatalf("identical patterns similarity = %f", r)
	}
}

func TestTopDistricts(t *testing.T) {
	db := buildDB(t, 401)
	var records []netflow.Record
	for i := 0; i < 20; i++ {
		for w := 0; w <= i; w++ {
			records = append(records, recAt(i, 0))
		}
	}
	from, to := StudyWindow()
	res := Figure3(records, db, model, from, to)
	top := res.TopDistricts(5)
	if len(top) != 5 {
		t.Fatalf("top = %d entries", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Flows > top[i-1].Flows {
			t.Fatal("top districts not descending")
		}
	}
	if top[0].Flows != 20 {
		t.Fatalf("busiest district flows = %f", top[0].Flows)
	}
	// n larger than the district count clamps.
	if got := len(res.TopDistricts(9999)); got != 401 {
		t.Fatalf("clamped top = %d", got)
	}
}

func TestRenderFigure3(t *testing.T) {
	db := buildDB(t, 401)
	var records []netflow.Record
	for i := 0; i < 401; i++ {
		records = append(records, recAt(i, 0))
	}
	from, to := StudyWindow()
	out := RenderFigure3(Figure3(records, db, model, from, to))
	for _, want := range []string{"Figure 3", "districts emitting requests: 401 of 401", "busiest districts"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q\n%s", want, out[:200])
		}
	}
	// All 16 states must appear.
	for _, st := range model.States() {
		if !strings.Contains(out, fmt.Sprintf("%-5s", st.Code)) {
			t.Errorf("render missing state %s", st.Code)
		}
	}
}
