package core

import (
	"math"
	"net/netip"
	"strings"
	"testing"

	"cwatrace/internal/netflow"
)

// prefixRec creates a downstream record from host .9 of 20.0.X.0/24 on the
// given study day.
func prefixRec(x, day int) netflow.Record {
	return recAt(x, day)
}

func TestPersistenceSingleDayExcluded(t *testing.T) {
	records := []netflow.Record{prefixRec(0, 3)}
	res := PrefixPersistence(records)
	if res.Prefixes != 1 {
		t.Fatalf("prefixes = %d", res.Prefixes)
	}
	if res.CDF.Len() != 0 {
		t.Fatal("single-day prefix must not enter the CDF")
	}
}

func TestPersistenceFullPresence(t *testing.T) {
	var records []netflow.Record
	for d := 0; d < 10; d++ {
		records = append(records, prefixRec(1, d))
	}
	res := PrefixPersistence(records)
	if res.CDF.Len() != 1 {
		t.Fatalf("cdf size = %d", res.CDF.Len())
	}
	if math.Abs(res.MedianFraction-1) > 1e-9 {
		t.Fatalf("every-day prefix fraction = %f", res.MedianFraction)
	}
}

func TestPersistenceGaps(t *testing.T) {
	// Present on days 0, 3, 9: 3 days over a 10-day span -> 0.3.
	records := []netflow.Record{prefixRec(2, 0), prefixRec(2, 3), prefixRec(2, 9)}
	res := PrefixPersistence(records)
	if math.Abs(res.MedianFraction-0.3) > 1e-9 {
		t.Fatalf("gap fraction = %f, want 0.3", res.MedianFraction)
	}
}

func TestPersistenceQuantiles(t *testing.T) {
	var records []netflow.Record
	// Build 4 prefixes with fractions 0.2, 0.5, 0.8, 1.0 over 10-day spans.
	patterns := [][]int{
		{0, 9},                         // 2/10 = 0.2
		{0, 2, 4, 6, 9},                // 5/10 = 0.5
		{0, 1, 2, 3, 4, 5, 6, 9},       // 8/10 = 0.8
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, // 1.0
	}
	for p, days := range patterns {
		for _, d := range days {
			records = append(records, prefixRec(p, d))
		}
	}
	res := PrefixPersistence(records)
	if res.CDF.Len() != 4 {
		t.Fatalf("cdf size = %d", res.CDF.Len())
	}
	if math.Abs(res.MedianFraction-0.65) > 1e-9 {
		t.Fatalf("median = %f, want 0.65 (midpoint of 0.5/0.8)", res.MedianFraction)
	}
	if math.Abs(res.P75Fraction-0.85) > 1e-9 {
		t.Fatalf("p75 = %f, want 0.85", res.P75Fraction)
	}
}

func TestPersistenceMultipleFlowsSameDayCountOnce(t *testing.T) {
	records := []netflow.Record{
		prefixRec(3, 0), prefixRec(3, 0), prefixRec(3, 0),
		prefixRec(3, 1),
	}
	res := PrefixPersistence(records)
	if math.Abs(res.MedianFraction-1) > 1e-9 {
		t.Fatalf("fraction = %f, want 1 (2 days over 2-day span)", res.MedianFraction)
	}
}

func TestPersistenceDistinctHostsSamePrefix(t *testing.T) {
	// Two different hosts inside one /24 are the same routing prefix.
	a := mkRec(func(r *netflow.Record) { r.Dst = netip.MustParseAddr("20.0.7.10") })
	a.First = tBase
	b := mkRec(func(r *netflow.Record) { r.Dst = netip.MustParseAddr("20.0.7.200") })
	b.First = tBase.AddDate(0, 0, 1)
	res := PrefixPersistence([]netflow.Record{a, b})
	if res.Prefixes != 1 {
		t.Fatalf("prefixes = %d, want 1", res.Prefixes)
	}
}

func TestPersistenceOutOfWindowIgnored(t *testing.T) {
	r := prefixRec(4, 0)
	r.First = r.First.AddDate(0, 1, 0) // July: outside study window
	res := PrefixPersistence([]netflow.Record{r})
	if res.Prefixes != 0 {
		t.Fatalf("out-of-window record counted: %d", res.Prefixes)
	}
}

func TestRenderPersistence(t *testing.T) {
	var records []netflow.Record
	for d := 0; d < 10; d++ {
		records = append(records, prefixRec(0, d))
	}
	out := RenderPersistence(PrefixPersistence(records))
	for _, want := range []string{"Prefix persistence", "median fraction", "75th percentile", "paper: 0.67"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
