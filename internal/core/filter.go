// Package core implements the paper's measurement methodology — the
// primary contribution under reproduction. Given a Netflow trace captured
// at the CWA hosting infrastructure it (1) filters the flows the way the
// paper does (server prefixes, HTTPS tcp/443, IPv4, CDN-to-user
// direction), (2) builds the hourly Figure-2 time series with the official
// download overlay, (3) geolocates and aggregates traffic per district for
// Figure 3, (4) computes the routing-prefix persistence statistics, and
// (5) contrasts traffic around the two local COVID-19 outbreaks.
package core

import (
	"fmt"
	"net/netip"

	"cwatrace/internal/netflow"
	"cwatrace/internal/netsim"
)

// DropReason classifies why a flow is excluded from the data set.
type DropReason int

// Drop reasons, in the order the paper's filters apply.
const (
	Kept DropReason = iota
	DropNotServer
	DropNotIPv4
	DropNotTCP
	DropNotHTTPS
	DropUpstream
)

// String implements fmt.Stringer.
func (d DropReason) String() string {
	switch d {
	case Kept:
		return "kept"
	case DropNotServer:
		return "not-cwa-prefix"
	case DropNotIPv4:
		return "ipv6-omitted"
	case DropNotTCP:
		return "not-tcp"
	case DropNotHTTPS:
		return "not-443"
	case DropUpstream:
		return "upstream-direction"
	default:
		return "unknown"
	}
}

// Filter reproduces the paper's data-set restriction: "We filter server
// traffic using 2 IPv4 prefixes ... and omit IPv6. As both, app and
// website, use HTTPS only, we restrict the data to encrypted HTTPS
// (tcp/443) IPv4 flows from the CDN to the user."
type Filter struct {
	// ServerPrefixes identify the hosting infrastructure.
	ServerPrefixes []netip.Prefix
}

// DefaultFilter uses the reproduction's two hosting prefixes.
func DefaultFilter() Filter {
	return Filter{ServerPrefixes: netsim.CWAServerPrefixes}
}

// isServer reports membership in the hosting prefixes.
func (f Filter) isServer(a netip.Addr) bool {
	for _, p := range f.ServerPrefixes {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// Classify runs one record through the filter chain in the paper's order —
// IPv6 is omitted first, then the hosting-prefix match, protocol, direction
// and port — and returns the first reason the record would be dropped (or
// Kept).
func (f Filter) Classify(r netflow.Record) DropReason {
	return f.ClassifyRecord(&r)
}

// ClassifyRecord is the by-reference form of Classify for hot paths: a
// netflow.Record is well over a cache line, and the streaming shards
// classify tens of millions of them per second.
func (f *Filter) ClassifyRecord(r *netflow.Record) DropReason {
	if !r.Src.Is4() || !r.Dst.Is4() {
		return DropNotIPv4
	}
	srcIsServer := f.isServer(r.Src)
	dstIsServer := f.isServer(r.Dst)
	if !srcIsServer && !dstIsServer {
		return DropNotServer
	}
	if r.Proto != netflow.ProtoTCP {
		return DropNotTCP
	}
	// Downstream means the server side is the source. Upstream flows
	// (user to CDN) are excluded: the paper measures CDN-to-user bytes.
	if !srcIsServer {
		return DropUpstream
	}
	if r.SrcPort != netflow.PortHTTPS {
		return DropNotHTTPS
	}
	return Kept
}

// v4Prefix is one IPv4 server prefix pre-resolved to a mask compare.
type v4Prefix struct {
	val  uint32
	mask uint32
}

// CompiledFilter is a Filter pre-resolved for the ingest hot path: the
// IPv4 server prefixes become single mask-and-compare words, so a
// classification is a handful of integer operations instead of
// netip.Prefix.Contains calls. Classification only reaches the prefix
// match once both addresses are IPv4, and a v6 prefix can never contain
// an IPv4 address (netip.Prefix.Contains is family-exact), so compiling
// only the v4 prefixes preserves Filter.Classify semantics bit for bit.
type CompiledFilter struct {
	v4 []v4Prefix
}

// Compile pre-resolves the filter. The result is immutable and safe for
// concurrent use.
func (f Filter) Compile() CompiledFilter {
	var c CompiledFilter
	for _, p := range f.ServerPrefixes {
		if !p.Addr().Is4() {
			continue
		}
		bits := p.Bits()
		var mask uint32
		if bits > 0 {
			mask = ^uint32(0) << (32 - bits)
		}
		b := p.Addr().As4()
		val := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
		c.v4 = append(c.v4, v4Prefix{val: val & mask, mask: mask})
	}
	return c
}

// isServer4 reports membership of a big-endian IPv4 word in the compiled
// prefixes.
func (c *CompiledFilter) isServer4(a uint32) bool {
	for _, p := range c.v4 {
		if a&p.mask == p.val {
			return true
		}
	}
	return false
}

// Classify matches Filter.Classify exactly; see Compile.
func (c *CompiledFilter) Classify(r *netflow.Record) DropReason {
	if !r.Src.Is4() || !r.Dst.Is4() {
		return DropNotIPv4
	}
	s4, d4 := r.Src.As4(), r.Dst.As4()
	src := uint32(s4[0])<<24 | uint32(s4[1])<<16 | uint32(s4[2])<<8 | uint32(s4[3])
	dst := uint32(d4[0])<<24 | uint32(d4[1])<<16 | uint32(d4[2])<<8 | uint32(d4[3])
	srcIsServer := c.isServer4(src)
	if !srcIsServer && !c.isServer4(dst) {
		return DropNotServer
	}
	if r.Proto != netflow.ProtoTCP {
		return DropNotTCP
	}
	if !srcIsServer {
		return DropUpstream
	}
	if r.SrcPort != netflow.PortHTTPS {
		return DropNotHTTPS
	}
	return Kept
}

// Census tallies filter outcomes; its Kept count is the paper's "≈3.3M
// matching flows" figure (scaled).
type Census struct {
	Total   int
	Kept    int
	Dropped map[DropReason]int
}

// ApplyFilter partitions records into the kept data set and a census of the
// drops.
func ApplyFilter(records []netflow.Record, f Filter) ([]netflow.Record, Census) {
	census := Census{Dropped: make(map[DropReason]int)}
	kept := make([]netflow.Record, 0, len(records))
	for i := range records {
		census.Total++
		reason := f.ClassifyRecord(&records[i])
		if reason == Kept {
			census.Kept++
			kept = append(kept, records[i])
			continue
		}
		census.Dropped[reason]++
	}
	return kept, census
}

// String renders the census as one line per stage.
func (c Census) String() string {
	s := fmt.Sprintf("total=%d kept=%d", c.Total, c.Kept)
	for _, reason := range []DropReason{DropNotServer, DropNotIPv4, DropNotTCP, DropNotHTTPS, DropUpstream} {
		if n := c.Dropped[reason]; n > 0 {
			s += fmt.Sprintf(" %s=%d", reason, n)
		}
	}
	return s
}
