package core

import (
	"math"
	"net/netip"
	"strings"
	"testing"
	"time"

	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
)

// obRec creates a downstream record from district-prefix x via the given
// exporter, on June day at noon.
func obRec(x int, exporter string, juneDay int) netflow.Record {
	r := mkRec(func(r *netflow.Record) {
		r.Dst = netip.AddrFrom4([4]byte{20, byte(x >> 8), byte(x), 9})
		r.Exporter = exporter
	})
	r.First = time.Date(2020, time.June, juneDay, 12, 0, 0, 0, entime.Berlin)
	r.Last = r.First
	return r
}

// districtIdx finds the model index of a named district so obRec addresses
// resolve to it through buildDB's i%len(districts) layout.
func districtIdx(t *testing.T, name string) int {
	t.Helper()
	for i, d := range model.Districts() {
		if d.Name == name {
			return i
		}
	}
	t.Fatalf("district %q not found", name)
	return -1
}

func TestOutbreakNationwideGrowth(t *testing.T) {
	db := buildDB(t, 401)
	var records []netflow.Record
	// Every district: 2 flows/day before (June 20-22), 3/day after
	// (June 23-25) — a uniform nation-wide 1.5x.
	for i := 0; i < 401; i++ {
		for d := 20; d <= 22; d++ {
			records = append(records, obRec(i, "Magenta/X", d), obRec(i, "Magenta/X", d))
		}
		for d := 23; d <= 25; d++ {
			records = append(records, obRec(i, "Magenta/X", d), obRec(i, "Magenta/X", d), obRec(i, "Magenta/X", d))
		}
	}
	rep := AnalyzeOutbreaks(records, db, model)
	if math.Abs(rep.NationalGrowth-1.5) > 1e-9 {
		t.Fatalf("national growth = %f", rep.NationalGrowth)
	}
	if math.Abs(rep.NRWExcess-1) > 1e-9 {
		t.Fatalf("NRW excess = %f, want 1 (no local effect)", rep.NRWExcess)
	}
	if got := rep.StatesAboveGrowth(1.2); got != 16 {
		t.Fatalf("states above 1.2x = %d, want 16", got)
	}
	if cv := rep.GrowthDispersion(); cv > 0.01 {
		t.Fatalf("dispersion = %f for uniform growth", cv)
	}
}

func TestOutbreakGueterslohSlight(t *testing.T) {
	db := buildDB(t, 401)
	gIdx := districtIdx(t, "Gütersloh")
	var records []netflow.Record
	// Background: flat 2/day everywhere.
	for i := 0; i < 401; i++ {
		n := 2
		for d := 20; d <= 25; d++ {
			extra := 0
			if i == gIdx && d >= 23 {
				extra = 1 // slight local increase
			}
			for k := 0; k < n+extra; k++ {
				records = append(records, obRec(i, "Magenta/X", d))
			}
		}
	}
	rep := AnalyzeOutbreaks(records, db, model)
	if rep.GueterslohGrowth <= rep.NationalGrowth {
		t.Fatalf("Gütersloh %f must slightly exceed national %f",
			rep.GueterslohGrowth, rep.NationalGrowth)
	}
	if rep.GueterslohGrowth > rep.NationalGrowth*2 {
		t.Fatalf("Gütersloh effect too large: %f vs %f",
			rep.GueterslohGrowth, rep.NationalGrowth)
	}
}

func TestBerlinSingleISPDetection(t *testing.T) {
	db := buildDB(t, 401)
	bIdx := districtIdx(t, "Berlin")
	var records []netflow.Record
	// Berlin via three ISPs: flat for two, jump for RegioNet after Jun 18.
	for d := 16; d <= 19; d++ {
		for k := 0; k < 10; k++ {
			records = append(records, obRec(bIdx, "Magenta/BE-000", d))
			records = append(records, obRec(bIdx, "KabelNet/BE-000", d))
		}
		n := 5
		if d >= 18 {
			n = 15
		}
		for k := 0; k < n; k++ {
			records = append(records, obRec(bIdx, "RegioNet/BE-000", d))
		}
	}
	rep := AnalyzeOutbreaks(records, db, model)
	isp, single := rep.BerlinSingleISP(0.15)
	if !single || isp != "RegioNet" {
		t.Fatalf("single-ISP detection = %q, %v; growths %v",
			isp, single, rep.BerlinISPGrowth)
	}
	if rep.BerlinOverallGrowth > 1.5 {
		t.Fatalf("overall Berlin growth %f should stay modest", rep.BerlinOverallGrowth)
	}
}

func TestBerlinNoOutlierWhenUniform(t *testing.T) {
	db := buildDB(t, 401)
	bIdx := districtIdx(t, "Berlin")
	var records []netflow.Record
	for d := 16; d <= 19; d++ {
		for k := 0; k < 10; k++ {
			records = append(records, obRec(bIdx, "Magenta/BE-000", d))
			records = append(records, obRec(bIdx, "KabelNet/BE-000", d))
			records = append(records, obRec(bIdx, "RegioNet/BE-000", d))
		}
	}
	rep := AnalyzeOutbreaks(records, db, model)
	if _, single := rep.BerlinSingleISP(0.15); single {
		t.Fatal("uniform Berlin traffic must not flag a single ISP")
	}
}

func TestExporterISP(t *testing.T) {
	if got := exporterISP("Magenta/NW-000"); got != "Magenta" {
		t.Fatalf("exporterISP = %q", got)
	}
	if got := exporterISP("noslash"); got != "noslash" {
		t.Fatalf("exporterISP fallback = %q", got)
	}
}

func TestRenderOutbreaks(t *testing.T) {
	db := buildDB(t, 401)
	var records []netflow.Record
	for i := 0; i < 401; i++ {
		for d := 20; d <= 25; d++ {
			records = append(records, obRec(i, "Magenta/X", d))
		}
	}
	bIdx := districtIdx(t, "Berlin")
	for d := 16; d <= 19; d++ {
		records = append(records, obRec(bIdx, "RegioNet/BE-000", d))
	}
	out := RenderOutbreaks(AnalyzeOutbreaks(records, db, model))
	for _, want := range []string{"Outbreak analysis", "national growth", "Gütersloh", "Berlin June 18", "outbreak state"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRenderCensus(t *testing.T) {
	_, census := ApplyFilter([]netflow.Record{mkRec(nil)}, DefaultFilter())
	out := RenderCensus(census, 2000)
	if !strings.Contains(out, "kept x scale(2000): 2000 flows") {
		t.Errorf("census render missing scaled count:\n%s", out)
	}
}
