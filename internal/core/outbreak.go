package core

import (
	"math"
	"sort"
	"strings"
	"time"

	"cwatrace/internal/entime"
	"cwatrace/internal/geo"
	"cwatrace/internal/geodb"
	"cwatrace/internal/netflow"
	"cwatrace/internal/stats"
)

// GrowthWindow compares mean daily flows across two windows; the outbreak
// analysis uses three-day windows around the event dates.
type GrowthWindow struct {
	BeforeStart, AfterStart time.Time
	Days                    int
}

// OutbreakReport answers the paper's question: do local COVID-19 outbreaks
// increase CWA traffic in the affected regions, or is the June-23 increase
// nation-wide?
type OutbreakReport struct {
	// StateGrowth maps federal-state code to the June-23 growth ratio
	// (flows after / flows before the lockdown news).
	StateGrowth map[string]float64
	// NationalGrowth is the same ratio over all of Germany.
	NationalGrowth float64
	// NRWExcess is StateGrowth["NW"] / NationalGrowth: ~1 means the home
	// state of the outbreak grew no differently from the nation (the
	// paper's key finding).
	NRWExcess float64
	// GueterslohGrowth and WarendorfGrowth are district-level ratios for
	// the locked-down districts; the paper calls the Gütersloh increase
	// "very slight and hardly noticeable".
	GueterslohGrowth float64
	WarendorfGrowth  float64
	// BerlinISPGrowth maps ISP name to the Berlin June-18 growth ratio;
	// the paper sees the outbreak "only ... for users of a single ISP".
	BerlinISPGrowth map[string]float64
	// BerlinOverallGrowth is Berlin's all-ISP June-18 ratio ("not in the
	// overall traffic from Berlin-based users").
	BerlinOverallGrowth float64
}

// exporterISP extracts the ISP from a router exporter ID ("ISP/district").
func exporterISP(exporter string) string {
	if i := strings.IndexByte(exporter, '/'); i > 0 {
		return exporter[:i]
	}
	return exporter
}

// AnalyzeOutbreaks computes the report from filtered downstream records.
func AnalyzeOutbreaks(records []netflow.Record, db *geodb.DB, model *geo.Model) *OutbreakReport {
	rep := &OutbreakReport{
		StateGrowth:     make(map[string]float64),
		BerlinISPGrowth: make(map[string]float64),
	}

	// June-23 lockdown-news windows: before = June 20-22, after = June
	// 23-25 (start-of-day local time).
	day := func(d int) time.Time { return time.Date(2020, time.June, d, 0, 0, 0, 0, entime.Berlin) }
	inWindow := func(t time.Time, start time.Time, days int) bool {
		return !t.Before(start) && t.Before(start.AddDate(0, 0, days))
	}

	type counts struct{ before, after float64 }
	byState := make(map[string]*counts)
	byDistrict := make(map[string]*counts)
	var national counts

	// Berlin June-18 windows: before = June 16-17, after = June 18-19.
	type berlinCounts struct{ before, after float64 }
	berlinByISP := make(map[string]*berlinCounts)
	var berlinAll berlinCounts

	for _, r := range records {
		entry, ok := db.Locate(r.Dst)
		if !ok {
			continue
		}
		d, ok := model.DistrictByID(entry.DistrictID)
		if !ok {
			continue
		}
		if inWindow(r.First, day(20), 3) || inWindow(r.First, day(23), 3) {
			after := inWindow(r.First, day(23), 3)
			sc := byState[d.StateCode]
			if sc == nil {
				sc = &counts{}
				byState[d.StateCode] = sc
			}
			dc := byDistrict[d.Name]
			if dc == nil {
				dc = &counts{}
				byDistrict[d.Name] = dc
			}
			if after {
				sc.after++
				dc.after++
				national.after++
			} else {
				sc.before++
				dc.before++
				national.before++
			}
		}
		if d.Name == "Berlin" && (inWindow(r.First, day(16), 2) || inWindow(r.First, day(18), 2)) {
			after := inWindow(r.First, day(18), 2)
			isp := exporterISP(r.Exporter)
			bc := berlinByISP[isp]
			if bc == nil {
				bc = &berlinCounts{}
				berlinByISP[isp] = bc
			}
			if after {
				bc.after++
				berlinAll.after++
			} else {
				bc.before++
				berlinAll.before++
			}
		}
	}

	ratio := func(before, after float64) float64 {
		if before <= 0 {
			return 0
		}
		return after / before
	}
	for code, c := range byState {
		rep.StateGrowth[code] = ratio(c.before, c.after)
	}
	rep.NationalGrowth = ratio(national.before, national.after)
	if rep.NationalGrowth > 0 {
		rep.NRWExcess = rep.StateGrowth["NW"] / rep.NationalGrowth
	}
	if c := byDistrict["Gütersloh"]; c != nil {
		rep.GueterslohGrowth = ratio(c.before, c.after)
	}
	if c := byDistrict["Warendorf"]; c != nil {
		rep.WarendorfGrowth = ratio(c.before, c.after)
	}
	for isp, c := range berlinByISP {
		rep.BerlinISPGrowth[isp] = ratio(c.before, c.after)
	}
	rep.BerlinOverallGrowth = ratio(berlinAll.before, berlinAll.after)
	return rep
}

// StatesAboveGrowth counts states whose June-23 growth exceeds the
// threshold; the paper's "increase also occurs on federal state level
// simultaneously" means (almost) all states clear a >1 bar together.
func (r *OutbreakReport) StatesAboveGrowth(threshold float64) int {
	n := 0
	for _, g := range r.StateGrowth {
		if g > threshold {
			n++
		}
	}
	return n
}

// GrowthDispersion returns the coefficient of variation of state growth
// ratios: a small value means the June-23 rise was uniform across states
// rather than NRW-specific.
func (r *OutbreakReport) GrowthDispersion() float64 {
	var xs []float64
	for _, g := range r.StateGrowth {
		xs = append(xs, g)
	}
	if len(xs) < 2 {
		return 0
	}
	mean, _ := stats.Mean(xs)
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return math.Sqrt(ss/float64(len(xs)-1)) / mean
}

// BerlinSingleISP reports whether the Berlin June-18 effect is confined to
// a single provider: exactly one ISP grows by more than margin over the
// overall Berlin ratio.
func (r *OutbreakReport) BerlinSingleISP(margin float64) (string, bool) {
	var outliers []string
	for isp, g := range r.BerlinISPGrowth {
		if g > r.BerlinOverallGrowth*(1+margin) {
			outliers = append(outliers, isp)
		}
	}
	sort.Strings(outliers)
	if len(outliers) == 1 {
		return outliers[0], true
	}
	return "", false
}
