package core

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
	"cwatrace/internal/netsim"
)

var tBase = entime.AppRelease.Add(10 * time.Hour)

// mkRec builds a record with sensible downstream defaults that individual
// tests then perturb.
func mkRec(mut func(*netflow.Record)) netflow.Record {
	r := netflow.Record{
		Key: netflow.Key{
			Src:     netsim.CDNAddr(0),
			Dst:     netip.MustParseAddr("20.0.1.5"),
			SrcPort: 443,
			DstPort: 51234,
			Proto:   netflow.ProtoTCP,
		},
		Packets: 10, Bytes: 10000,
		First: tBase, Last: tBase.Add(time.Second),
		Exporter: "Magenta/NW-000",
	}
	if mut != nil {
		mut(&r)
	}
	return r
}

func TestClassifyKept(t *testing.T) {
	if got := DefaultFilter().Classify(mkRec(nil)); got != Kept {
		t.Fatalf("downstream HTTPS flow classified %s", got)
	}
}

func TestClassifyDropReasons(t *testing.T) {
	f := DefaultFilter()
	cases := []struct {
		name string
		mut  func(*netflow.Record)
		want DropReason
	}{
		{"unrelated flow", func(r *netflow.Record) {
			r.Src = netip.MustParseAddr("8.8.8.8")
		}, DropNotServer},
		{"ipv6", func(r *netflow.Record) {
			r.Src = netip.MustParseAddr("2001:db8:ffff::10")
			r.Dst = netip.MustParseAddr("2001:db8::1")
		}, DropNotIPv4},
		{"udp quic", func(r *netflow.Record) { r.Proto = netflow.ProtoUDP }, DropNotTCP},
		{"port 80", func(r *netflow.Record) { r.SrcPort = 80 }, DropNotHTTPS},
		{"upstream", func(r *netflow.Record) {
			r.Src, r.Dst = r.Dst, r.Src
			r.SrcPort, r.DstPort = r.DstPort, r.SrcPort
		}, DropUpstream},
	}
	for _, tc := range cases {
		if got := f.Classify(mkRec(tc.mut)); got != tc.want {
			t.Errorf("%s: classified %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestClassifyIPv4MappedServerStillChecked(t *testing.T) {
	// A v4-mapped v6 source inside the prefix is Is4In6, not Is4; the
	// paper omits IPv6, so it must be dropped by the IPv4 stage.
	r := mkRec(func(r *netflow.Record) {
		r.Src = netip.AddrFrom16(netsim.CDNAddr(0).As16())
	})
	if got := DefaultFilter().Classify(r); got != DropNotIPv4 {
		t.Fatalf("v4-mapped flow classified %s, want %s", got, DropNotIPv4)
	}
}

func TestApplyFilterCensus(t *testing.T) {
	records := []netflow.Record{
		mkRec(nil),
		mkRec(nil),
		mkRec(func(r *netflow.Record) { r.Proto = netflow.ProtoUDP }),
		mkRec(func(r *netflow.Record) { r.SrcPort = 80 }),
		mkRec(func(r *netflow.Record) {
			r.Src, r.Dst = r.Dst, r.Src
			r.SrcPort, r.DstPort = r.DstPort, r.SrcPort
		}),
		mkRec(func(r *netflow.Record) { r.Src = netip.MustParseAddr("9.9.9.9") }),
	}
	kept, census := ApplyFilter(records, DefaultFilter())
	if len(kept) != 2 || census.Kept != 2 || census.Total != 6 {
		t.Fatalf("census = %+v, kept = %d", census, len(kept))
	}
	if census.Dropped[DropNotTCP] != 1 || census.Dropped[DropNotHTTPS] != 1 ||
		census.Dropped[DropUpstream] != 1 || census.Dropped[DropNotServer] != 1 {
		t.Fatalf("drop breakdown wrong: %+v", census.Dropped)
	}
	s := census.String()
	for _, want := range []string{"total=6", "kept=2", "not-tcp=1", "upstream-direction=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("census string %q missing %q", s, want)
		}
	}
}

func TestDropReasonString(t *testing.T) {
	for reason, want := range map[DropReason]string{
		Kept: "kept", DropNotServer: "not-cwa-prefix", DropNotIPv4: "ipv6-omitted",
		DropNotTCP: "not-tcp", DropNotHTTPS: "not-443", DropUpstream: "upstream-direction",
		DropReason(99): "unknown",
	} {
		if reason.String() != want {
			t.Errorf("String(%d) = %q, want %q", reason, reason.String(), want)
		}
	}
}
