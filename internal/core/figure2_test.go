package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"cwatrace/internal/adoption"
	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
)

// flowsAt builds n downstream records in the given hour bucket.
func flowsAt(day, hour, n int) []netflow.Record {
	at := entime.StudyStart.AddDate(0, 0, day).Add(time.Duration(hour) * time.Hour)
	out := make([]netflow.Record, n)
	for i := range out {
		r := mkRec(nil)
		r.First = at.Add(time.Duration(i) * time.Second)
		r.Last = r.First.Add(time.Second)
		r.Bytes = 5000
		out[i] = r
	}
	return out
}

func TestFigure2Bucketing(t *testing.T) {
	var records []netflow.Record
	records = append(records, flowsAt(0, 10, 2)...)  // June 15, 10:00
	records = append(records, flowsAt(1, 10, 15)...) // June 16, 10:00
	res, err := Figure2(records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != entime.StudyHours() {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[10].Flows != 2 {
		t.Fatalf("June 15 10h flows = %f", res.Points[10].Flows)
	}
	if res.Points[34].Flows != 15 {
		t.Fatalf("June 16 10h flows = %f", res.Points[34].Flows)
	}
	if res.PeakHour != 34 {
		t.Fatalf("peak hour = %d", res.PeakHour)
	}
}

func TestFigure2NormedToMinimum(t *testing.T) {
	var records []netflow.Record
	records = append(records, flowsAt(0, 5, 4)...)
	records = append(records, flowsAt(2, 12, 12)...)
	res, err := Figure2(records, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Smallest positive bin is 4 flows -> normed 1; the 12-flow bin -> 3.
	if got := res.Points[5].FlowsNormed; got != 1 {
		t.Fatalf("min bin normed = %f", got)
	}
	if got := res.Points[2*24+12].FlowsNormed; got != 3 {
		t.Fatalf("12-flow bin normed = %f", got)
	}
}

func TestFigure2ReleaseRatio(t *testing.T) {
	var records []netflow.Record
	records = append(records, flowsAt(0, 9, 10)...) // June 15: 10 flows
	records = append(records, flowsAt(1, 9, 75)...) // June 16: 75 flows
	res, err := Figure2(records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ReleaseDayFlowRatio-7.5) > 1e-9 {
		t.Fatalf("release ratio = %f, want 7.5", res.ReleaseDayFlowRatio)
	}
}

func TestFigure2Resurgence(t *testing.T) {
	var records []netflow.Record
	for d := 5; d <= 7; d++ { // June 20-22: 10/day
		records = append(records, flowsAt(d, 12, 10)...)
	}
	for d := 8; d <= 10; d++ { // June 23-25: 14/day
		records = append(records, flowsAt(d, 12, 14)...)
	}
	res, err := Figure2(records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ResurgenceRatio-1.4) > 1e-9 {
		t.Fatalf("resurgence = %f, want 1.4", res.ResurgenceRatio)
	}
}

func TestFigure2DownloadOverlay(t *testing.T) {
	res, err := Figure2(flowsAt(1, 9, 1), adoption.DefaultCurve())
	if err != nil {
		t.Fatal(err)
	}
	// 36h after release (June 17, 14:00 local = hour 62) must read 6.4M.
	h := entime.HourBucket(entime.AppRelease.Add(36 * time.Hour))
	if got := res.Points[h].DownloadsM; math.Abs(got-6.4) > 0.01 {
		t.Fatalf("downloads at +36h = %fM, want 6.4M", got)
	}
	// Pre-release hours must be 0.
	if got := res.Points[0].DownloadsM; got != 0 {
		t.Fatalf("downloads at study start = %fM", got)
	}
}

func TestFigure2EmptyTrace(t *testing.T) {
	res, err := Figure2(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReleaseDayFlowRatio != 0 {
		t.Fatalf("empty trace ratio = %f", res.ReleaseDayFlowRatio)
	}
}

func TestDailyFlows(t *testing.T) {
	var records []netflow.Record
	records = append(records, flowsAt(0, 1, 3)...)
	records = append(records, flowsAt(0, 20, 2)...)
	records = append(records, flowsAt(10, 5, 7)...)
	daily := DailyFlows(records)
	if len(daily) != entime.StudyDays() {
		t.Fatalf("daily bins = %d", len(daily))
	}
	if daily[0] != 5 || daily[10] != 7 {
		t.Fatalf("daily = %v", daily)
	}
}

func TestRenderFigure2(t *testing.T) {
	var records []netflow.Record
	records = append(records, flowsAt(0, 9, 2)...)
	records = append(records, flowsAt(1, 9, 15)...)
	res, err := Figure2(records, adoption.DefaultCurve())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderFigure2(res)
	for _, want := range []string{"Figure 2", "release-day flow increase", "7.5x", "resurgence"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if !strings.Contains(RenderFigure2Daily(DailyFlows(records)), "Jun 16") {
		t.Error("daily render missing day label")
	}
}
