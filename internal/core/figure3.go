package core

import (
	"sort"
	"time"

	"cwatrace/internal/entime"
	"cwatrace/internal/geo"
	"cwatrace/internal/geodb"
	"cwatrace/internal/netflow"
	"cwatrace/internal/stats"
)

// DistrictLoad is one cell of the paper's Figure-3 heatmap: a district's
// request traffic, summed over the aggregation window and normalized by the
// maximum district.
type DistrictLoad struct {
	District   geo.District
	Flows      float64
	Normalized float64
}

// Figure3Result is the geographic-adoption analysis.
type Figure3Result struct {
	// Loads has one entry per district, ordered by district ID.
	Loads []DistrictLoad
	// ActiveDistricts is the number of districts with any traffic; the
	// paper observes "almost all districts emit requests".
	ActiveDistricts int
	// TotalDistricts is the geography size (401).
	TotalDistricts int
	// LocatedShare is the fraction of flows the geolocation database
	// could place.
	LocatedShare float64
	// RouterShare is the fraction of located flows resolved via ISP
	// router ground truth (paper: 18%).
	RouterShare float64
}

// Figure3 aggregates filtered downstream flows per district between from
// (inclusive) and to (exclusive). The paper sums over 10 days (June 16-25)
// and separately notes the first-day spread matches.
func Figure3(records []netflow.Record, db *geodb.DB, model *geo.Model, from, to time.Time) *Figure3Result {
	byDistrict := make(map[string]float64)
	var located, routerLocated, total float64
	for _, r := range records {
		if r.First.Before(from) || !r.First.Before(to) {
			continue
		}
		total++
		entry, ok := db.Locate(r.Dst)
		if !ok {
			continue
		}
		located++
		if entry.Source == geodb.SourceRouter {
			routerLocated++
		}
		byDistrict[entry.DistrictID]++
	}

	districts := model.Districts()
	res := &Figure3Result{
		Loads:          make([]DistrictLoad, len(districts)),
		TotalDistricts: len(districts),
	}
	values := make([]float64, len(districts))
	for i, d := range districts {
		values[i] = byDistrict[d.ID]
	}
	normed := stats.NormalizeToMax(values)
	for i, d := range districts {
		res.Loads[i] = DistrictLoad{District: d, Flows: values[i], Normalized: normed[i]}
		if values[i] > 0 {
			res.ActiveDistricts++
		}
	}
	if total > 0 {
		res.LocatedShare = located / total
	}
	if located > 0 {
		res.RouterShare = routerLocated / located
	}
	return res
}

// StudyWindow returns the paper's 10-day aggregation window (the app
// period June 16 through June 25).
func StudyWindow() (from, to time.Time) {
	return time.Date(2020, time.June, 16, 0, 0, 0, 0, entime.Berlin), entime.StudyEnd
}

// FirstDayWindow returns release day only; the paper notes the first-day
// geographic spread already matches the 10-day picture.
func FirstDayWindow() (from, to time.Time) {
	day := time.Date(2020, time.June, 16, 0, 0, 0, 0, entime.Berlin)
	return day, day.AddDate(0, 0, 1)
}

// SpreadSimilarity compares two Figure-3 results (e.g. day one vs the full
// window) by the Pearson correlation of their per-district loads. A value
// near 1 reproduces the paper's "first day leads to almost the same
// observation".
func SpreadSimilarity(a, b *Figure3Result) (float64, error) {
	xs := make([]float64, len(a.Loads))
	ys := make([]float64, len(b.Loads))
	for i := range a.Loads {
		xs[i] = a.Loads[i].Normalized
		ys[i] = b.Loads[i].Normalized
	}
	return stats.Pearson(xs, ys)
}

// TopDistricts returns the n busiest districts, descending.
func (r *Figure3Result) TopDistricts(n int) []DistrictLoad {
	sorted := make([]DistrictLoad, len(r.Loads))
	copy(sorted, r.Loads)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Flows > sorted[j].Flows })
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}
