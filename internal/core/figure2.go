package core

import (
	"fmt"
	"time"

	"cwatrace/internal/adoption"
	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
	"cwatrace/internal/stats"
)

// Fig2Point is one hourly sample of the paper's Figure 2: flows and bytes
// from the CWA CDN to users, normed to the minimum, with the cumulative
// official download count overlaid.
type Fig2Point struct {
	Hour  int       // bucket index from the study start
	Time  time.Time // bucket start
	Flows float64
	Bytes float64
	// FlowsNormed and BytesNormed divide by the smallest positive bin,
	// the paper's "normed to the minimum" y-axis.
	FlowsNormed float64
	BytesNormed float64
	// DownloadsM is the cumulative official app download count in
	// millions at the bucket start (the right y-axis of Figure 2).
	DownloadsM float64
}

// Figure2Result carries the series plus its headline statistics.
type Figure2Result struct {
	Points []Fig2Point
	// ReleaseDayFlowRatio is flows(June 16)/flows(June 15); the paper
	// reports a 7.5x increase of flows on the release day.
	ReleaseDayFlowRatio float64
	// PeakHour is the bucket with the most flows.
	PeakHour int
	// ResurgenceRatio compares mean daily flows of June 23-25 against
	// June 20-22, capturing the outbreak-news resurgence.
	ResurgenceRatio float64
}

// Figure2 builds the hourly series from filtered records. curve may be nil
// to omit the download overlay.
func Figure2(records []netflow.Record, curve *adoption.Curve) (*Figure2Result, error) {
	hours := entime.StudyHours()
	flows := stats.NewTimeSeries(entime.StudyStart, time.Hour, hours)
	bytes := stats.NewTimeSeries(entime.StudyStart, time.Hour, hours)
	for _, r := range records {
		flows.Add(r.First, 1)
		bytes.Add(r.First, float64(r.Bytes))
	}
	return Figure2FromSeries(flows, bytes, curve)
}

// Figure2FromSeries derives the Figure-2 result from pre-binned hourly
// flow and byte series over the study window. Both the batch path above
// and the streaming ingest pipeline (internal/streaming) call it, so the
// derived statistics — normalization, release-day ratio, resurgence — are
// computed identically no matter how the bins were accumulated.
func Figure2FromSeries(flows, bytes *stats.TimeSeries, curve *adoption.Curve) (*Figure2Result, error) {
	hours := entime.StudyHours()
	if flows.Len() != hours || bytes.Len() != hours {
		return nil, fmt.Errorf("core: figure 2 needs %d hourly bins, got %d/%d", hours, flows.Len(), bytes.Len())
	}
	flowVals := flows.Values()
	byteVals := bytes.Values()
	flowNorm := stats.NormalizeToMin(flowVals)
	byteNorm := stats.NormalizeToMin(byteVals)

	res := &Figure2Result{Points: make([]Fig2Point, hours)}
	var peak float64
	for h := 0; h < hours; h++ {
		p := Fig2Point{
			Hour:        h,
			Time:        entime.BucketTime(h),
			Flows:       flowVals[h],
			Bytes:       byteVals[h],
			FlowsNormed: flowNorm[h],
			BytesNormed: byteNorm[h],
		}
		if curve != nil {
			p.DownloadsM = curve.Cumulative(p.Time) / 1e6
		}
		res.Points[h] = p
		if p.Flows > peak {
			peak = p.Flows
			res.PeakHour = h
		}
	}

	daily, err := flows.Rebin(24)
	if err != nil {
		return nil, fmt.Errorf("core: rebinning figure 2: %w", err)
	}
	res.ReleaseDayFlowRatio = daily.DayOverDayRatio(1) // June 16 vs June 15

	// Resurgence: June 23-25 (days 8-10) vs June 20-22 (days 5-7).
	var before, after float64
	for d := 5; d <= 7; d++ {
		before += daily.Bin(d)
	}
	for d := 8; d <= 10; d++ {
		after += daily.Bin(d)
	}
	if before > 0 {
		res.ResurgenceRatio = after / before
	}
	return res, nil
}

// DailyFlows rebins the Figure-2 series per day; several analyses and the
// report renderer reuse it.
func DailyFlows(records []netflow.Record) []float64 {
	daily := stats.NewTimeSeries(entime.StudyStart, 24*time.Hour, entime.StudyDays())
	for _, r := range records {
		daily.Add(r.First, 1)
	}
	return daily.Values()
}

// NewsCorrelation quantifies the paper's closing hypothesis — "nation-wide
// news reports on outbreaks might contribute to growing app interest". News
// drives *new* interest (installs, visits), while total traffic keeps
// growing even as attention decays; the meaningful statistic is therefore
// the Pearson correlation between daily attention and the day-over-day
// traffic increment, not absolute volume.
func NewsCorrelation(records []netflow.Record, att adoption.Attention) (float64, error) {
	daily := DailyFlows(records)
	if len(daily) < 3 {
		return 0, fmt.Errorf("core: need at least 3 days for the news correlation")
	}
	var attention, growth []float64
	for d := 1; d < len(daily); d++ {
		noon := entime.StudyStart.AddDate(0, 0, d).Add(12 * time.Hour)
		attention = append(attention, att.At(noon))
		growth = append(growth, daily[d]-daily[d-1])
	}
	return stats.Pearson(attention, growth)
}
