package core

import (
	"sync"
	"testing"

	"cwatrace/internal/sim"
)

// fullRun executes the default simulation once and shares it across the
// integration tests (it takes under a second but there is no reason to
// repeat it).
var (
	fullRunOnce sync.Once
	fullRunRes  *sim.Result
	fullRunErr  error
)

func fullRun(t *testing.T) *sim.Result {
	t.Helper()
	fullRunOnce.Do(func() {
		fullRunRes, fullRunErr = sim.Run(sim.DefaultConfig())
	})
	if fullRunErr != nil {
		t.Fatal(fullRunErr)
	}
	return fullRunRes
}

// TestEndToEndFigure2Shape checks the paper's temporal findings on the
// simulated trace: a large day-one jump (paper: 7.5x), a diurnal pattern,
// and a resurgence around the June-23 outbreak news.
func TestEndToEndFigure2Shape(t *testing.T) {
	res := fullRun(t)
	kept, census := ApplyFilter(res.Records, DefaultFilter())
	if census.Kept == 0 {
		t.Fatal("no kept flows")
	}
	fig2, err := Figure2(kept, res.Curve)
	if err != nil {
		t.Fatal(err)
	}
	if fig2.ReleaseDayFlowRatio < 3 || fig2.ReleaseDayFlowRatio > 25 {
		t.Fatalf("release-day ratio = %.2f, paper reports 7.5x (same order expected)",
			fig2.ReleaseDayFlowRatio)
	}
	if fig2.ResurgenceRatio <= 1.0 {
		t.Fatalf("no June-23 resurgence: ratio %.2f", fig2.ResurgenceRatio)
	}
	// Diurnal pattern: on a settled day (June 20), night hours must be
	// clearly quieter than evening hours.
	day := 5 * 24
	night := fig2.Points[day+3].Flows + fig2.Points[day+4].Flows
	evening := fig2.Points[day+19].Flows + fig2.Points[day+20].Flows
	if evening < night*2 {
		t.Fatalf("diurnal pattern missing: night %f vs evening %f", night, evening)
	}
}

// TestEndToEndFigure3Spread checks the geographic findings: almost all
// districts emit requests, the first-day spread resembles the full window,
// and the router-ground-truth share is near the paper's 18%.
func TestEndToEndFigure3Spread(t *testing.T) {
	res := fullRun(t)
	kept, _ := ApplyFilter(res.Records, DefaultFilter())

	from, to := StudyWindow()
	fig3 := Figure3(kept, res.GeoDB, res.Model, from, to)
	if fig3.ActiveDistricts < fig3.TotalDistricts*90/100 {
		t.Fatalf("only %d/%d districts active, paper: almost all",
			fig3.ActiveDistricts, fig3.TotalDistricts)
	}
	if fig3.LocatedShare < 0.95 {
		t.Fatalf("geolocation coverage %.2f too low", fig3.LocatedShare)
	}
	if fig3.RouterShare < 0.10 || fig3.RouterShare > 0.30 {
		t.Fatalf("router ground-truth share %.2f, paper: 0.18", fig3.RouterShare)
	}

	d1from, d1to := FirstDayWindow()
	day1 := Figure3(kept, res.GeoDB, res.Model, d1from, d1to)
	if day1.ActiveDistricts < day1.TotalDistricts*80/100 {
		t.Fatalf("day-one spread only %d/%d districts", day1.ActiveDistricts, day1.TotalDistricts)
	}
	r, err := SpreadSimilarity(day1, fig3)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.7 {
		t.Fatalf("day-one vs 10-day similarity %.2f, paper: almost the same", r)
	}
}

// TestEndToEndPersistence checks the sustained-interest statistic: the
// median prefix should be present on a solid majority of its span days
// (paper: 50% of prefixes in 67% of days, 75% in 80%).
func TestEndToEndPersistence(t *testing.T) {
	res := fullRun(t)
	kept, _ := ApplyFilter(res.Records, DefaultFilter())
	p := PrefixPersistence(kept)
	if p.Prefixes < 100 {
		t.Fatalf("too few prefixes for the analysis: %d", p.Prefixes)
	}
	if p.MedianFraction < 0.4 || p.MedianFraction > 1 {
		t.Fatalf("median presence fraction %.2f outside plausible band (paper 0.67)",
			p.MedianFraction)
	}
	if p.P75Fraction < p.MedianFraction {
		t.Fatalf("p75 %.2f below median %.2f", p.P75Fraction, p.MedianFraction)
	}
}

// TestEndToEndOutbreaks checks the paper's headline negative result: the
// June-23 increase is nation-wide, not regional; Gütersloh rises only
// slightly; Berlin's June-18 outbreak shows up for a single ISP only.
func TestEndToEndOutbreaks(t *testing.T) {
	res := fullRun(t)
	kept, _ := ApplyFilter(res.Records, DefaultFilter())
	rep := AnalyzeOutbreaks(kept, res.GeoDB, res.Model)

	if rep.NationalGrowth <= 1 {
		t.Fatalf("national June-23 growth %.2f, expected > 1", rep.NationalGrowth)
	}
	// Nation-wide: most states grow together.
	if got := rep.StatesAboveGrowth(1.0); got < 14 {
		t.Fatalf("only %d/16 states grew after June 23", got)
	}
	// NRW must not stand out.
	if rep.NRWExcess < 0.7 || rep.NRWExcess > 1.4 {
		t.Fatalf("NRW excess %.2f — outbreak state should track the nation", rep.NRWExcess)
	}
	// Gütersloh: "increased only very slightly and hardly noticeable" —
	// the district must grow with the nation (it is small, so its ratio
	// is noisy) without standing out the way a local outbreak-driven
	// surge would.
	if rep.GueterslohGrowth < rep.NationalGrowth*0.5 {
		t.Fatalf("Gütersloh growth %.2f vs national %.2f: shrank against the national trend",
			rep.GueterslohGrowth, rep.NationalGrowth)
	}
	if rep.GueterslohGrowth > rep.NationalGrowth*3 {
		t.Fatalf("Gütersloh growth %.2f too strong vs national %.2f (paper: hardly noticeable)",
			rep.GueterslohGrowth, rep.NationalGrowth)
	}
}

// TestEndToEndFirstKeys checks T6: the first diagnosis keys become
// available on June 23, a week after release, due to the verification
// pipeline go-live.
func TestEndToEndFirstKeys(t *testing.T) {
	res := fullRun(t)
	days := res.Backend.AvailableDays()
	if len(days) == 0 {
		t.Fatal("no key packages published in the full window")
	}
	if days[0] != "2020-06-23" {
		t.Fatalf("first keys on %s, paper observes 2020-06-23", days[0])
	}
	if res.Stats.Uploads == 0 {
		t.Fatal("no uploads happened")
	}
}

// TestEndToEndCensus checks T1: the filter keeps a data set whose scaled
// size is on the order of the paper's ≈3.3M flows, and each drop stage
// fires.
func TestEndToEndCensus(t *testing.T) {
	res := fullRun(t)
	_, census := ApplyFilter(res.Records, DefaultFilter())
	if census.Kept == 0 {
		t.Fatal("empty data set")
	}
	for _, reason := range []DropReason{DropNotIPv4, DropNotTCP, DropNotHTTPS, DropUpstream} {
		if census.Dropped[reason] == 0 {
			t.Errorf("filter stage %s never fired", reason)
		}
	}
	// The default run samples packets at 1:4 where the paper's routers
	// sampled far more aggressively; the sampling ablation (A1 in
	// DESIGN.md) sweeps that axis. Here we only sanity-check that the
	// scaled data set is in a plausible carrier-scale band.
	scaled := census.Kept * sim.DefaultConfig().Scale
	if scaled < 1_000_000 || scaled > 500_000_000 {
		t.Fatalf("scaled kept flows = %d, outside plausible band (paper ≈3.3M at much higher sampling)", scaled)
	}
}
