package core

import (
	"net/netip"

	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
	"cwatrace/internal/stats"
)

// PersistenceResult is the paper's routing-prefix persistence analysis:
// "By knowing that customers of certain ISPs keep the same IP address over
// time, we studied how regular routing prefixes communicate with the CWA
// backend (fraction of individual first to last day observed). We observe
// sustained interest as 50% (75%) of the prefixes occur in 67% (80%) of
// possible days."
type PersistenceResult struct {
	// Prefixes is the number of distinct /24 client prefixes seen.
	Prefixes int
	// MedianFraction is the median of per-prefix presence fractions
	// (paper: 0.67).
	MedianFraction float64
	// P75Fraction is the 75th percentile (paper: 0.80).
	P75Fraction float64
	// CDF is the full distribution for plotting.
	CDF *stats.CDF
}

// PrefixPersistence computes presence fractions over the filtered
// downstream records: for each /24 client prefix, the number of distinct
// days it appears divided by the span from its first to its last day
// (inclusive). Prefixes seen on a single day count as fraction 1 over a
// 1-day span and are excluded from the statistics (no span to persist
// over), matching the paper's "regular" prefixes framing.
func PrefixPersistence(records []netflow.Record) PersistenceResult {
	type span struct {
		days              map[int]bool
		firstDay, lastDay int
	}
	prefixes := make(map[netip.Prefix]*span)
	for _, r := range records {
		day := entime.DayBucket(r.First)
		if day < 0 {
			continue
		}
		p := netip.PrefixFrom(r.Dst, 24).Masked()
		s, ok := prefixes[p]
		if !ok {
			s = &span{days: make(map[int]bool), firstDay: day, lastDay: day}
			prefixes[p] = s
		}
		s.days[day] = true
		if day < s.firstDay {
			s.firstDay = day
		}
		if day > s.lastDay {
			s.lastDay = day
		}
	}

	res := PersistenceResult{CDF: &stats.CDF{}}
	for _, s := range prefixes {
		res.Prefixes++
		spanDays := s.lastDay - s.firstDay + 1
		if spanDays < 2 {
			continue
		}
		res.CDF.Add(float64(len(s.days)) / float64(spanDays))
	}
	if res.CDF.Len() > 0 {
		res.MedianFraction, _ = res.CDF.Quantile(0.5)
		res.P75Fraction, _ = res.CDF.Quantile(0.75)
	}
	return res
}
