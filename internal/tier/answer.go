package tier

// The answer side of the subsystem: a Builder accumulates the planner's
// selected tier frames plus the exact raw residual and renders one
// Answer — the long-horizon block of a query response. The same bucket
// and sketch accumulation the folds use lives here, so fold-time and
// query-time aggregation cannot drift apart.

import (
	"net/netip"
	"sort"
	"time"

	"cwatrace/internal/core"
	"cwatrace/internal/sketch"
	"cwatrace/internal/streaming"
)

// Answer is the long-horizon result of a day- or week-resolution query:
// exact downsampled buckets and census, plus the two sketched
// aggregates. Approximate is always true — not because the buckets are
// (they are exact sums), but because distinct-prefix and presence
// figures are estimates and census aggregates are reported at tier-
// frame granularity for partial ranges, same as the raw path's
// frame-granularity caveat.
type Answer struct {
	Resolution  Resolution `json:"resolution"`
	Approximate bool       `json:"approximate"`
	// BucketHours is the bucket width of Buckets.
	BucketHours int      `json:"bucket_hours"`
	Buckets     []Bucket `json:"buckets,omitempty"`
	// TierFrames/RawFrames count the sources merged: tier frames at any
	// level, and raw checkpoint frames stitched as the residual tail.
	TierFrames int `json:"tier_frames"`
	RawFrames  int `json:"raw_frames"`
	// Exact aggregates summed across every merged source.
	Census    core.Census               `json:"census"`
	Late      uint64                    `json:"late"`
	Located   uint64                    `json:"located"`
	Districts []streaming.DistrictCount `json:"districts,omitempty"`
	// DistinctPrefixes estimates the distinct client prefixes over the
	// range (HLL, ~1.6% typical error). Presence summarizes the
	// per-prefix daily presence-hours distribution; Presence.Count is
	// the number of prefix-day observations, not prefixes.
	DistinctPrefixes uint64         `json:"distinct_prefixes"`
	Presence         sketch.Summary `json:"presence"`
	// PrefixSketch/PresenceSketch carry the marshaled sketch state so a
	// cluster router can merge answers across shards — estimates cannot
	// be summed (prefix sets overlap between shards), sketches can.
	PrefixSketch   []byte `json:"prefix_sketch,omitempty"`
	PresenceSketch []byte `json:"presence_sketch,omitempty"`
}

// bucketMap accumulates level-aligned buckets out of order.
type bucketMap struct {
	width int64
	m     map[int64]*Bucket
}

func newBucketMap(level Level) bucketMap {
	return bucketMap{width: int64(level.BucketHours()), m: map[int64]*Bucket{}}
}

func (bm bucketMap) add(hour int64, flows, bytes float64) {
	start := hour - hour%bm.width
	b := bm.m[start]
	if b == nil {
		b = &Bucket{StartHour: start}
		bm.m[start] = b
	}
	b.Flows += flows
	b.Bytes += bytes
}

func (bm bucketMap) addHours(hours []streaming.HourPoint) {
	for _, p := range hours {
		if p.Flows == 0 && p.Bytes == 0 {
			continue
		}
		bm.add(int64(p.Hour), p.Flows, p.Bytes)
	}
}

// render returns the buckets sorted by StartHour, with Time filled from
// origin when non-zero (frames store no Time; answers render it).
func (bm bucketMap) render(origin *time.Time) []Bucket {
	out := make([]Bucket, 0, len(bm.m))
	for _, b := range bm.m {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartHour < out[j].StartHour })
	if origin != nil {
		for i := range out {
			out[i].Time = origin.Add(time.Duration(out[i].StartHour) * time.Hour)
		}
	}
	return out
}

// sortDistricts renders a district accumulation map sorted by ID — the
// canonical order every district list in the system uses.
func sortDistricts(m map[string]uint64) []District {
	if len(m) == 0 {
		return nil
	}
	out := make([]District, 0, len(m))
	for id, flows := range m {
		out = append(out, District{ID: id, Flows: flows})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SketchAccum feeds the two sketches from per-shard analytics state:
// the HLL sees every distinct prefix, the presence map counts how many
// shards (raw checkpoint frames) each prefix appeared in. Folds use it
// per run; queries use it over the raw residual.
type SketchAccum struct {
	hll      *sketch.HLL
	presence map[string]uint64
}

// NewSketchAccum builds an empty accumulator.
func NewSketchAccum() *SketchAccum {
	return &SketchAccum{hll: sketch.NewHLL(), presence: map[string]uint64{}}
}

// AddShard folds one analytics shard's full prefix table in.
func (sa *SketchAccum) AddShard(a *streaming.Analytics) {
	a.EachPrefix(func(p netip.Prefix, flows uint64) {
		s := p.String()
		sa.hll.Add(s)
		sa.presence[s]++
	})
}

// fill writes the accumulated sketches into a frame. Map iteration
// order is irrelevant: HLL adds and quantile adds are order-invariant.
func (sa *SketchAccum) fill(f *Frame) {
	f.Prefixes.Merge(sa.hll)
	for _, hours := range sa.presence {
		f.Presence.Add(hours, 1)
	}
}

// Builder accumulates a plan's sources into one Answer.
type Builder struct {
	res        Resolution
	origin     time.Time
	buckets    bucketMap
	hll        *sketch.HLL
	quant      *sketch.Quantile
	census     core.Census
	late       uint64
	located    uint64
	districts  map[string]uint64
	tierFrames int
	rawFrames  int
}

// NewBuilder starts an answer at a concrete (non-auto) resolution.
func NewBuilder(res Resolution, origin time.Time) *Builder {
	return &Builder{
		res:       res,
		origin:    origin,
		buckets:   newBucketMap(res.Level()),
		hll:       sketch.NewHLL(),
		quant:     sketch.NewQuantile(),
		census:    core.Census{Dropped: map[core.DropReason]int{}},
		districts: map[string]uint64{},
	}
}

// AddFrame folds one selected tier frame in. Day buckets re-bucket into
// week buckets when the answer is coarser than the frame.
func (b *Builder) AddFrame(f *Frame) {
	b.tierFrames++
	b.census.Total += int(f.Total)
	b.census.Kept += int(f.Kept)
	for r, n := range f.Dropped {
		if n > 0 && core.DropReason(r) != core.Kept {
			b.census.Dropped[core.DropReason(r)] += int(n)
		}
	}
	b.late += f.Late
	b.located += f.Located
	for _, d := range f.Districts {
		b.districts[d.ID] += d.Flows
	}
	for _, bk := range f.Buckets {
		b.buckets.add(bk.StartHour, bk.Flows, bk.Bytes)
	}
	b.hll.Merge(f.Prefixes)
	b.quant.Merge(f.Presence)
}

// AddResidual folds the exact raw tail in: the snapshot the raw path
// rendered over the residual frames and live tail, plus the sketch
// accumulator fed from those shards (the snapshot's prefix leaderboard
// is TopK-truncated, so it cannot feed the sketches). rawFrames is how
// many residual checkpoint frames contributed.
func (b *Builder) AddResidual(snap *streaming.Snapshot, acc *SketchAccum, rawFrames int) {
	b.rawFrames += rawFrames
	if snap != nil {
		b.census.Total += snap.Census.Total
		b.census.Kept += snap.Census.Kept
		for r, n := range snap.Census.Dropped {
			b.census.Dropped[r] += n
		}
		b.late += snap.Late
		b.located += snap.Located
		for _, d := range snap.Districts {
			b.districts[d.ID] += d.Flows
		}
		b.buckets.addHours(snap.Hours)
	}
	if acc != nil {
		b.hll.Merge(acc.hll)
		for _, hours := range acc.presence {
			b.quant.Add(hours, 1)
		}
	}
}

// Answer renders the accumulated state.
func (b *Builder) Answer() *Answer {
	ans := &Answer{
		Resolution:       b.res,
		Approximate:      true,
		BucketHours:      b.res.Level().BucketHours(),
		Buckets:          b.buckets.render(&b.origin),
		TierFrames:       b.tierFrames,
		RawFrames:        b.rawFrames,
		Census:           b.census,
		Late:             b.late,
		Located:          b.located,
		DistinctPrefixes: b.hll.Estimate(),
		Presence:         b.quant.Summarize(),
		PrefixSketch:     b.hll.AppendBinary(nil),
		PresenceSketch:   b.quant.AppendBinary(nil),
	}
	if len(b.districts) > 0 {
		ids := make([]string, 0, len(b.districts))
		for id := range b.districts {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			ans.Districts = append(ans.Districts, streaming.DistrictCount{ID: id, Flows: b.districts[id]})
		}
	}
	return ans
}

// MergeAnswer folds another shard's answer into this builder using the
// carried sketch state — the cluster router's scatter-gather path.
// Returns an error if the peer's sketch bytes are corrupt; the caller
// treats that shard as degraded rather than merging garbage.
func (b *Builder) MergeAnswer(a *Answer) error {
	b.tierFrames += a.TierFrames
	b.rawFrames += a.RawFrames
	b.census.Total += a.Census.Total
	b.census.Kept += a.Census.Kept
	for r, n := range a.Census.Dropped {
		b.census.Dropped[r] += n
	}
	b.late += a.Late
	b.located += a.Located
	for _, d := range a.Districts {
		b.districts[d.ID] += d.Flows
	}
	for _, bk := range a.Buckets {
		b.buckets.add(bk.StartHour, bk.Flows, bk.Bytes)
	}
	if len(a.PrefixSketch) > 0 {
		h, _, err := sketch.DecodeHLL(a.PrefixSketch)
		if err != nil {
			return err
		}
		b.hll.Merge(h)
	}
	if len(a.PresenceSketch) > 0 {
		q, _, err := sketch.DecodeQuantile(a.PresenceSketch)
		if err != nil {
			return err
		}
		b.quant.Merge(q)
	}
	return nil
}
