package tier

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzTierDecode hammers the tier frame codec (which transitively
// exercises the sketch codec — every frame carries both sketches) with
// arbitrary bytes: decoding never panics, damage is ErrCorrupt, and a
// successful decode re-encodes to the identical bytes, so a corrupted
// frame can never slip into a fold or an answer merge.
func FuzzTierDecode(f *testing.F) {
	day, err := FoldRaw(LevelDay, 3, testCfg(), []Input{
		input(0, 1, 1, shard(keptRecord(1, 1, 100), keptRecord(1, 2, 7), droppedRecord(1))),
		input(1, 26, 26, shard(keptRecord(26, 1, 10))),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(EncodeFrame(day))
	if week, err := FoldFrames(LevelWeek, 4, []*Frame{day}); err == nil {
		f.Add(EncodeFrame(week))
	}
	f.Add([]byte{})
	f.Add([]byte{codecVersion, byte(LevelDay), 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0x41}, 128))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-codec error from arbitrary bytes: %v", err)
			}
			return
		}
		if !bytes.Equal(EncodeFrame(fr), data) {
			t.Fatal("decode→encode is not canonical")
		}
	})
}
