package tier

// Fold: turning a closed run of lower-level frames into one tier frame.
// CloseRuns decides which runs are complete (deterministically, from
// metadata alone); FoldRaw and FoldFrames build the frame. Both fold
// oldest-first in WAL order and touch only commutative aggregates and
// order-invariant sketches, so the output bytes are independent of how
// many ingest workers produced the inputs.

import (
	"fmt"

	"cwatrace/internal/sketch"
	"cwatrace/internal/streaming"
)

// Meta describes one candidate input frame for run grouping: the raw
// checkpoint frame's identity and coverage (a mirror of the store's
// frame metadata), or a day frame's FrameMeta when grouping for the
// week level.
type Meta struct {
	Seq              uint64
	BaseSeg          uint64
	CoveredSeg       uint64
	MinHour, MaxHour int64
}

// CloseRuns partitions metas — ordered by their WAL chain, i.e.
// metas[i+1].BaseSeg == metas[i].CoveredSeg — into closed level-runs,
// returned as half-open index ranges [lo, hi). A run collects
// consecutive frames whose MinHour falls in the same origin-relative
// level period (day or week) as the run's first houred frame;
// accounting-only frames (MinHour < 0) ride along with the current run.
// A run closes only when a LATER frame's MinHour lands in a later
// period — proof the period is complete — so the trailing run is always
// open and stays raw. A frame spanning several periods (a compacted
// survivor from before tiering was enabled) simply yields a fatter
// frame with more buckets; WAL disjointness, not time alignment, is
// what correctness rests on.
func CloseRuns(level Level, metas []Meta) [][2]int {
	width := int64(level.BucketHours())
	var runs [][2]int
	lo := 0
	runPeriod := int64(-1)
	for i, m := range metas {
		if m.MinHour < 0 {
			continue
		}
		p := m.MinHour / width
		if runPeriod < 0 {
			runPeriod = p
			continue
		}
		if p > runPeriod {
			runs = append(runs, [2]int{lo, i})
			lo = i
			runPeriod = p
		}
	}
	return runs
}

// Input is one raw checkpoint frame presented to FoldRaw: its metadata
// plus the restored analytics state.
type Input struct {
	Meta  Meta
	State *streaming.Analytics
}

// chainErr validates that consecutive WAL intervals chain exactly.
func chainErr(what string, prevCovered, base uint64, i int) error {
	if base != prevCovered {
		return fmt.Errorf("tier: %s %d breaks the WAL chain: base segment %d after covered %d", what, i, base, prevCovered)
	}
	return nil
}

// FoldRaw folds a closed run of raw checkpoint frames into one frame at
// the given level (normally LevelDay). cfg is the store's analytics
// configuration; the merge target runs in archive mode so no hour of
// the run can be evicted, mirroring the store's own no-eviction
// invariant.
func FoldRaw(level Level, seq uint64, cfg streaming.Config, inputs []Input) (*Frame, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("tier: fold of zero inputs")
	}
	f := &Frame{
		Level:      level,
		Seq:        seq,
		BaseSeg:    inputs[0].Meta.BaseSeg,
		CoveredSeg: inputs[len(inputs)-1].Meta.CoveredSeg,
		MinHour:    -1,
		MaxHour:    -1,
		Inputs:     uint32(len(inputs)),
		Dropped:    make([]uint64, nReasons),
		Prefixes:   sketch.NewHLL(),
		Presence:   sketch.NewQuantile(),
	}

	// Merge the run oldest-first at an archive window, and feed the
	// presence accumulator per input frame — presence is the number of
	// input frames a prefix appears in, which the merged state no
	// longer knows.
	cfg.Archive = true
	m := streaming.New(cfg)
	acc := NewSketchAccum()
	for i, in := range inputs {
		if i > 0 {
			if err := chainErr("input frame", inputs[i-1].Meta.CoveredSeg, in.Meta.BaseSeg, i); err != nil {
				return nil, err
			}
		}
		if in.Meta.MinHour >= 0 {
			if f.MinHour < 0 || in.Meta.MinHour < f.MinHour {
				f.MinHour = in.Meta.MinHour
			}
			if in.Meta.MaxHour > f.MaxHour {
				f.MaxHour = in.Meta.MaxHour
			}
		}
		m.Merge(in.State)
		acc.AddShard(in.State)
	}
	acc.fill(f)

	snap := m.Snapshot()
	f.Total = uint64(snap.Census.Total)
	f.Kept = uint64(snap.Census.Kept)
	for reason, n := range snap.Census.Dropped {
		if int(reason) >= 0 && int(reason) < nReasons {
			f.Dropped[reason] = uint64(n)
		}
	}
	f.Late = snap.Late
	f.Located = snap.Located
	for _, d := range snap.Districts { // already sorted by ID
		f.Districts = append(f.Districts, District{ID: d.ID, Flows: d.Flows})
	}
	buckets := newBucketMap(level)
	buckets.addHours(snap.Hours)
	f.Buckets = buckets.render(nil)
	return f, nil
}

// FoldFrames folds a closed run of same-level frames into one frame at
// the next level up (day frames into a week frame). Everything is a
// commutative sum or an order-invariant sketch merge, so no analytics
// state is needed.
func FoldFrames(level Level, seq uint64, inputs []*Frame) (*Frame, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("tier: fold of zero inputs")
	}
	f := &Frame{
		Level:      level,
		Seq:        seq,
		BaseSeg:    inputs[0].BaseSeg,
		CoveredSeg: inputs[len(inputs)-1].CoveredSeg,
		MinHour:    -1,
		MaxHour:    -1,
		Inputs:     uint32(len(inputs)),
		Dropped:    make([]uint64, nReasons),
		Prefixes:   sketch.NewHLL(),
		Presence:   sketch.NewQuantile(),
	}
	districts := map[string]uint64{}
	buckets := newBucketMap(level)
	for i, in := range inputs {
		if i > 0 {
			if err := chainErr("input frame", inputs[i-1].CoveredSeg, in.BaseSeg, i); err != nil {
				return nil, err
			}
		}
		if in.Level+1 != level {
			return nil, fmt.Errorf("tier: folding level %s input into level %s frame", in.Level, level)
		}
		if in.MinHour >= 0 {
			if f.MinHour < 0 || in.MinHour < f.MinHour {
				f.MinHour = in.MinHour
			}
			if in.MaxHour > f.MaxHour {
				f.MaxHour = in.MaxHour
			}
		}
		f.Total += in.Total
		f.Kept += in.Kept
		for r, n := range in.Dropped {
			if r < nReasons {
				f.Dropped[r] += n
			}
		}
		f.Late += in.Late
		f.Located += in.Located
		for _, d := range in.Districts {
			districts[d.ID] += d.Flows
		}
		f.Prefixes.Merge(in.Prefixes)
		f.Presence.Merge(in.Presence)
		for _, b := range in.Buckets {
			buckets.add(b.StartHour, b.Flows, b.Bytes)
		}
	}
	f.Districts = sortDistricts(districts)
	f.Buckets = buckets.render(nil)
	return f, nil
}
