// Package tier is the long-horizon half of the durable store: it folds
// raw hourly checkpoint frames into daily and weekly downsampled frames
// (Prometheus/Thanos-style compaction tiers) and plans which tier
// combination answers a time-range query. The motivation is the paper's
// multi-week dynamics — pandemic-wave upload/download behaviour (FW3)
// and per-prefix persistence (T2) only show up over months, but raw
// Query cost scales linearly with frames touched and the exact prefix
// map grows without bound. A tier frame is a fixed-size summary: exact
// downsampled flow/byte buckets, exact census and district rollups
// (bounded cardinality), and bounded-memory sketches (internal/sketch)
// for the two unbounded aggregates — distinct client prefixes and
// per-prefix presence.
//
// The design invariants, in the order they matter:
//
//   - Tier frames partition the raw FRAME SEQUENCE by WAL interval
//     (BaseSeg/CoveredSeg chains), not by wall clock. Raw checkpoint
//     frames are not time-resolved inside (census, prefixes), so a
//     wall-clock partition would double-count a frame straddling a day
//     boundary; WAL intervals are exactly disjoint by construction. Day
//     alignment is only the fold TRIGGER: a run of raw frames closes
//     when a later frame's hours prove the run's day is complete (see
//     CloseRuns), and only closed runs fold — the open run is the raw
//     tail the planner stitches on top.
//   - Folds are additive: a tier frame is durable before it is visible,
//     and its inputs are never deleted by the fold itself (the store's
//     existing no-eviction compaction keeps raw exactness; the
//     compaction guard keeps raw frames from straddling the tier
//     coverage horizon).
//   - Folds are deterministic: inputs fold oldest-first in WAL order,
//     aggregates are commutative sums, sketches are order-invariant,
//     and the codec is canonical — the same raw frames produce
//     byte-identical tier frames at any worker count.
//   - Exactness boundary: hour-resolution answers never touch tiers
//     (the raw path is untouched); day/week answers are exact for
//     buckets, census, districts, late and located (those are sums of
//     exact per-frame values) and approximate only for the two
//     sketched aggregates, which the Answer flags explicitly.
package tier

import (
	"fmt"
	"time"

	"cwatrace/internal/core"
	"cwatrace/internal/sketch"
)

// Level is a downsampling tier. Higher levels fold runs of the level
// below: day frames fold raw checkpoint frames, week frames fold day
// frames.
type Level uint8

const (
	// LevelDay frames fold raw hourly checkpoint frames, one per
	// completed origin-relative day.
	LevelDay Level = 1
	// LevelWeek frames fold day frames, one per completed
	// origin-relative week.
	LevelWeek Level = 2
)

// BucketHours is the bucket width (and fold-trigger alignment) of the
// level, in origin-relative hours.
func (l Level) BucketHours() int {
	switch l {
	case LevelDay:
		return 24
	case LevelWeek:
		return 7 * 24
	}
	return 0
}

// String names the level the way tier file names and metrics do.
func (l Level) String() string {
	switch l {
	case LevelDay:
		return "day"
	case LevelWeek:
		return "week"
	}
	return fmt.Sprintf("level-%d", uint8(l))
}

// Resolution selects the answer granularity of a range query.
type Resolution string

const (
	// ResolutionHour is the exact raw path: hourly series from raw
	// checkpoint frames, untouched by this package.
	ResolutionHour Resolution = "hour"
	// ResolutionDay answers from day frames plus the raw residual.
	ResolutionDay Resolution = "day"
	// ResolutionWeek answers from week frames, then day frames beyond
	// week coverage, then the raw residual.
	ResolutionWeek Resolution = "week"
	// ResolutionAuto picks by span: hour up to ~a week, day up to ~two
	// months, week beyond.
	ResolutionAuto Resolution = "auto"
)

// ParseResolution parses the query parameter; the empty string is the
// backward-compatible exact hourly path.
func ParseResolution(s string) (Resolution, error) {
	switch Resolution(s) {
	case "", ResolutionHour:
		return ResolutionHour, nil
	case ResolutionDay, ResolutionWeek, ResolutionAuto:
		return Resolution(s), nil
	}
	return "", fmt.Errorf("resolution %q: want hour, day, week or auto", s)
}

// Level returns the tier level a concrete resolution reads from (0 for
// hour). Auto must be resolved first.
func (r Resolution) Level() Level {
	switch r {
	case ResolutionDay:
		return LevelDay
	case ResolutionWeek:
		return LevelWeek
	}
	return 0
}

// nReasons sizes the per-frame drop census array, mirroring streaming.
const nReasons = int(core.DropUpstream) + 1

// Bucket is one downsampled point of the flow/byte series: the exact
// sum of the hourly bins in [StartHour, StartHour+BucketHours).
// Flows/Bytes stay float64 like streaming.HourPoint; the values are
// integer-valued, so accumulation is exact and order-free.
type Bucket struct {
	// StartHour is the bucket's first origin-relative hour, aligned to
	// the level's bucket width.
	StartHour int64     `json:"start_hour"`
	Time      time.Time `json:"time,omitzero"`
	Flows     float64   `json:"flows"`
	Bytes     float64   `json:"bytes"`
}

// District is one exact per-district flow count inside a tier frame.
// Names are not stored — they are display metadata the API layer
// re-attaches from the geolocation model, exactly as the raw path does.
type District struct {
	ID    string `json:"id"`
	Flows uint64 `json:"flows"`
}

// Frame is one durable tier frame: the downsampled, sketch-carrying
// summary of a closed run of lower-level inputs.
type Frame struct {
	Level Level
	// Seq is the frame's unique file identity, allocated from the
	// store's frame sequence space (never reused).
	Seq uint64
	// BaseSeg/CoveredSeg bound the half-open WAL interval
	// (BaseSeg, CoveredSeg] the frame's inputs folded — the union of
	// the inputs' consecutive intervals. Planner selection and the
	// compaction straddle guard both key on it.
	BaseSeg    uint64
	CoveredSeg uint64
	// MinHour/MaxHour bound the kept-record hours (-1 when the run held
	// only dropped-record accounting).
	MinHour, MaxHour int64
	// Inputs counts the lower-level frames folded in.
	Inputs uint32

	// Exact aggregates: census totals, drop reasons (indexed by
	// core.DropReason; slot 0, Kept, is unused), late/located counters
	// and per-district rollups.
	Total, Kept   uint64
	Dropped       []uint64
	Late, Located uint64
	Districts     []District

	// Buckets is the exact downsampled series, aligned to
	// Level.BucketHours(), sorted by StartHour.
	Buckets []Bucket

	// The two sketched aggregates: distinct client prefixes and the
	// per-prefix daily presence distribution (each observation is one
	// prefix-day; its value is the number of raw checkpoint frames of
	// that day containing the prefix, ≈ presence hours at the hourly
	// checkpoint cadence).
	Prefixes *sketch.HLL
	Presence *sketch.Quantile
}

// FrameMeta is the planner's view of a tier frame: identity and
// coverage without the decoded payload.
type FrameMeta struct {
	Level            Level
	Seq              uint64
	BaseSeg          uint64
	CoveredSeg       uint64
	MinHour, MaxHour int64
}

// Meta returns the frame's planner metadata.
func (f *Frame) Meta() FrameMeta {
	return FrameMeta{Level: f.Level, Seq: f.Seq, BaseSeg: f.BaseSeg,
		CoveredSeg: f.CoveredSeg, MinHour: f.MinHour, MaxHour: f.MaxHour}
}

// HoursOverlap reports whether the inclusive origin-relative hour
// interval [minHour, maxHour] intersects [from, to) (zero times are
// open bounds). Absent bounds (-1: accounting only) always overlap, so
// the census reaches every query — the same rule the raw store applies.
func HoursOverlap(origin time.Time, minHour, maxHour int64, from, to time.Time) bool {
	if minHour < 0 {
		return true
	}
	start := origin.Add(time.Duration(minHour) * time.Hour)
	end := origin.Add(time.Duration(maxHour+1) * time.Hour)
	if !to.IsZero() && !start.Before(to) {
		return false
	}
	if !from.IsZero() && !end.After(from) {
		return false
	}
	return true
}
