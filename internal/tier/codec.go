package tier

// The tier frame disk codec: one versioned, CRC-framed record per tier
// file, the same framing discipline as the store's WAL records and the
// sketch codec. Encoding is canonical — districts sorted by ID, buckets
// by StartHour, fixed-width integers big-endian — so byte-identical
// frames mean identical content, which the determinism tests compare
// directly. Decoding arbitrary bytes returns ErrCorrupt, never panics;
// FuzzTierDecode pins that.
//
//	+---------+-------+-------------+-----------+
//	| version | level | payload len | CRC-32    | payload ...
//	| 1 byte  | 1 B   | 4 bytes     | 4 (IEEE)  |
//	+---------+-------+-------------+-----------+

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"cwatrace/internal/sketch"
)

// codecVersion is the tier frame framing version.
const codecVersion = 1

const headerLen = 1 + 1 + 4 + 4

// maxPayload bounds one tier frame payload; larger lengths are treated
// as corruption, not allocation requests. A year of hourly buckets plus
// both sketches is well under a mebibyte; 64 MiB matches the store's
// record bound.
const maxPayload = 64 << 20

// maxDistricts bounds the decoded district list (the live system has
// ~400; the bound only rejects corrupt counts).
const maxDistricts = 1 << 16

// maxBuckets bounds the decoded bucket list (20 years of daily buckets
// is ~7300).
const maxBuckets = 1 << 20

// ErrCorrupt marks framing or checksum damage in a tier frame.
var ErrCorrupt = errors.New("tier: corrupt frame")

// EncodeFrame renders the canonical framed encoding of f.
func EncodeFrame(f *Frame) []byte {
	payload := make([]byte, 0, 256+24*len(f.Districts)+24*len(f.Buckets))
	payload = binary.BigEndian.AppendUint64(payload, f.Seq)
	payload = binary.BigEndian.AppendUint64(payload, f.BaseSeg)
	payload = binary.BigEndian.AppendUint64(payload, f.CoveredSeg)
	payload = binary.BigEndian.AppendUint64(payload, uint64(f.MinHour))
	payload = binary.BigEndian.AppendUint64(payload, uint64(f.MaxHour))
	payload = binary.BigEndian.AppendUint32(payload, f.Inputs)
	payload = binary.BigEndian.AppendUint64(payload, f.Total)
	payload = binary.BigEndian.AppendUint64(payload, f.Kept)
	payload = append(payload, byte(nReasons))
	for r := 0; r < nReasons; r++ {
		var n uint64
		if r < len(f.Dropped) {
			n = f.Dropped[r]
		}
		payload = binary.BigEndian.AppendUint64(payload, n)
	}
	payload = binary.BigEndian.AppendUint64(payload, f.Late)
	payload = binary.BigEndian.AppendUint64(payload, f.Located)
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(f.Districts)))
	for _, d := range f.Districts {
		payload = append(payload, byte(len(d.ID)))
		payload = append(payload, d.ID...)
		payload = binary.BigEndian.AppendUint64(payload, d.Flows)
	}
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(f.Buckets)))
	for _, b := range f.Buckets {
		payload = binary.BigEndian.AppendUint64(payload, uint64(b.StartHour))
		payload = binary.BigEndian.AppendUint64(payload, math.Float64bits(b.Flows))
		payload = binary.BigEndian.AppendUint64(payload, math.Float64bits(b.Bytes))
	}
	payload = f.Prefixes.AppendBinary(payload)
	payload = f.Presence.AppendBinary(payload)

	buf := make([]byte, 0, headerLen+len(payload))
	buf = append(buf, codecVersion, byte(f.Level))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write([]byte{codecVersion, byte(f.Level)})
	crc.Write(payload)
	buf = binary.BigEndian.AppendUint32(buf, crc.Sum32())
	return append(buf, payload...)
}

// decoder is a bounds-checked big-endian reader over a payload.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.data) {
		d.fail("truncated at byte %d of %d", d.off, len(d.data))
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u64() uint64 {
	if b := d.take(8); b != nil {
		return binary.BigEndian.Uint64(b)
	}
	return 0
}

func (d *decoder) u32() uint32 {
	if b := d.take(4); b != nil {
		return binary.BigEndian.Uint32(b)
	}
	return 0
}

func (d *decoder) u8() byte {
	if b := d.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (d *decoder) f64() float64 {
	v := math.Float64frombits(d.u64())
	if d.err == nil && (math.IsNaN(v) || math.IsInf(v, 0) || v < 0) {
		d.fail("implausible float %v", v)
	}
	return v
}

// DecodeFrame parses one framed tier frame. Arbitrary input yields
// ErrCorrupt, never a panic; a successful decode consumed the payload
// exactly and re-encodes to the same bytes (canonical form).
func DecodeFrame(data []byte) (*Frame, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d header bytes", ErrCorrupt, len(data))
	}
	if data[0] != codecVersion {
		return nil, fmt.Errorf("%w: version %d", ErrCorrupt, data[0])
	}
	level := Level(data[1])
	if level != LevelDay && level != LevelWeek {
		return nil, fmt.Errorf("%w: level %d", ErrCorrupt, data[1])
	}
	plen := int(binary.BigEndian.Uint32(data[2:6]))
	if plen > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d", ErrCorrupt, plen)
	}
	if len(data) != headerLen+plen {
		return nil, fmt.Errorf("%w: payload %d of %d bytes", ErrCorrupt, len(data)-headerLen, plen)
	}
	payload := data[headerLen:]
	crc := crc32.NewIEEE()
	crc.Write(data[0:2])
	crc.Write(payload)
	if crc.Sum32() != binary.BigEndian.Uint32(data[6:10]) {
		return nil, fmt.Errorf("%w: CRC mismatch on %d-byte frame", ErrCorrupt, plen)
	}

	f := &Frame{Level: level}
	d := &decoder{data: payload}
	f.Seq = d.u64()
	f.BaseSeg = d.u64()
	f.CoveredSeg = d.u64()
	f.MinHour = int64(d.u64())
	f.MaxHour = int64(d.u64())
	f.Inputs = d.u32()
	f.Total = d.u64()
	f.Kept = d.u64()
	if nr := int(d.u8()); d.err == nil && nr != nReasons {
		// The reason set is part of the version; counts under a
		// different set mean something else and must not be summed.
		d.fail("%d drop reasons, want %d", nr, nReasons)
	}
	f.Dropped = make([]uint64, nReasons)
	for r := 0; r < nReasons && d.err == nil; r++ {
		f.Dropped[r] = d.u64()
	}
	f.Late = d.u64()
	f.Located = d.u64()

	nd := int(d.u32())
	if d.err == nil && nd > maxDistricts {
		d.fail("%d districts", nd)
	}
	var prevID string
	for i := 0; i < nd && d.err == nil; i++ {
		idLen := int(d.u8())
		id := string(d.take(idLen))
		if d.err == nil && i > 0 && id <= prevID {
			d.fail("district order %q after %q", id, prevID)
		}
		prevID = id
		f.Districts = append(f.Districts, District{ID: id, Flows: d.u64()})
	}

	nb := int(d.u32())
	if d.err == nil && nb > maxBuckets {
		d.fail("%d buckets", nb)
	}
	width := int64(level.BucketHours())
	prevStart := int64(-1)
	for i := 0; i < nb && d.err == nil; i++ {
		b := Bucket{StartHour: int64(d.u64())}
		if d.err == nil && (b.StartHour < 0 || b.StartHour%width != 0 || b.StartHour <= prevStart) {
			d.fail("bucket start %d after %d at width %d", b.StartHour, prevStart, width)
		}
		prevStart = b.StartHour
		b.Flows = d.f64()
		b.Bytes = d.f64()
		f.Buckets = append(f.Buckets, b)
	}
	if d.err != nil {
		return nil, d.err
	}

	hll, n, err := sketch.DecodeHLL(payload[d.off:])
	if err != nil {
		return nil, fmt.Errorf("%w: prefix sketch: %v", ErrCorrupt, err)
	}
	d.off += n
	quant, n, err := sketch.DecodeQuantile(payload[d.off:])
	if err != nil {
		return nil, fmt.Errorf("%w: presence sketch: %v", ErrCorrupt, err)
	}
	d.off += n
	if d.off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(payload)-d.off)
	}
	f.Prefixes, f.Presence = hll, quant

	// Cross-field sanity the CRC cannot provide: the metadata must
	// describe a frame a fold could have produced.
	if f.CoveredSeg < f.BaseSeg {
		return nil, fmt.Errorf("%w: covered segment %d below base %d", ErrCorrupt, f.CoveredSeg, f.BaseSeg)
	}
	if (f.MinHour < 0) != (f.MaxHour < 0) || f.MaxHour < f.MinHour {
		return nil, fmt.Errorf("%w: hour bounds [%d, %d]", ErrCorrupt, f.MinHour, f.MaxHour)
	}
	return f, nil
}
