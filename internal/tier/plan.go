package tier

// The span-aware query planner. Given the tier frame sets and a time
// range, it picks the coarsest combination that covers the range —
// week frames first, then day frames beyond week coverage, then the
// raw residual (raw frames past day coverage plus the live tail) —
// using WAL-interval disjointness for sum-safety: every source covers
// a disjoint slice of the raw frame sequence, so nothing is counted
// twice no matter where fold boundaries fell.

import "time"

// Plan is one resolved query plan: the tier frames to merge per level
// and the residual floor for raw frames. Hour resolution yields the
// zero plan — the raw path runs untouched.
type Plan struct {
	// Resolution is concrete (auto already resolved).
	Resolution Resolution
	// Week/Day list the selected tier frame Seqs, oldest first.
	Week, Day []uint64
	// RawFloor is the residual boundary: raw checkpoint frames with
	// BaseSeg >= RawFloor are beyond every selected tier's coverage and
	// merge exactly, along with the live tail. Tier coverage is always
	// a prefix of the WAL (folds run oldest-first), so a single floor
	// suffices — provided raw compaction never merges a frame pair
	// straddling it, which the store guards.
	RawFloor uint64
}

// AutoSpan resolves ResolutionAuto by span: hour up to ~a week (8 days,
// so a "last 7 days" dashboard stays exact), day up to ~two months (62
// days), week beyond. Open bounds are filled from the store's history
// bounds before the span is measured; a fully open query over an empty
// store answers at hour resolution.
func AutoSpan(from, to, histStart, histEnd time.Time) Resolution {
	if from.IsZero() {
		from = histStart
	}
	if to.IsZero() {
		to = histEnd
	}
	if from.IsZero() || to.IsZero() || !to.After(from) {
		return ResolutionHour
	}
	span := to.Sub(from)
	switch {
	case span <= 8*24*time.Hour:
		return ResolutionHour
	case span <= 62*24*time.Hour:
		return ResolutionDay
	default:
		return ResolutionWeek
	}
}

// BuildPlan selects sources for a concrete resolution. weeks and days
// are the durable tier frames per level, ordered by their WAL chain
// (oldest first); selection is by hour overlap, mirroring the raw
// path's rule (accounting-only frames always ride along).
func BuildPlan(res Resolution, origin time.Time, from, to time.Time, weeks, days []FrameMeta) Plan {
	p := Plan{Resolution: res}
	if res != ResolutionDay && res != ResolutionWeek {
		p.Resolution = ResolutionHour
		return p
	}

	// Week frames serve only week resolution; below them, day frames
	// cover the WAL interval weeks left open.
	var weekCovered uint64
	if res == ResolutionWeek {
		for _, m := range weeks {
			if m.CoveredSeg > weekCovered {
				weekCovered = m.CoveredSeg
			}
			if HoursOverlap(origin, m.MinHour, m.MaxHour, from, to) {
				p.Week = append(p.Week, m.Seq)
			}
		}
	}
	for _, m := range days {
		if m.CoveredSeg > p.RawFloor {
			p.RawFloor = m.CoveredSeg
		}
		if m.BaseSeg < weekCovered {
			// Folded into a selected-or-skipped week frame already;
			// taking it too would double-count its WAL slice.
			continue
		}
		if HoursOverlap(origin, m.MinHour, m.MaxHour, from, to) {
			p.Day = append(p.Day, m.Seq)
		}
	}
	return p
}
