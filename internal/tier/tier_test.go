package tier

import (
	"bytes"
	"errors"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"cwatrace/internal/core"
	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
	"cwatrace/internal/streaming"
)

func testCfg() streaming.Config {
	return streaming.Config{WindowHours: 48, TopK: 3, Archive: true}
}

// keptRecord fabricates a record the paper's filter keeps, landing in
// hour h with client /24 number c.
func keptRecord(h, c int, byteCount uint64) netflow.Record {
	f := core.DefaultFilter()
	at := entime.StudyStart.Add(time.Duration(h) * time.Hour)
	return netflow.Record{
		Key: netflow.Key{
			Src:     f.ServerPrefixes[0].Addr(),
			Dst:     netip.AddrFrom4([4]byte{100, 64, byte(c), 1}),
			SrcPort: netflow.PortHTTPS,
			DstPort: 50000,
			Proto:   netflow.ProtoTCP,
		},
		Packets:  5,
		Bytes:    byteCount,
		First:    at,
		Last:     at.Add(time.Second),
		Exporter: "ISP/BE-000",
	}
}

// droppedRecord fabricates a record the filter rejects (wrong protocol).
func droppedRecord(h int) netflow.Record {
	r := keptRecord(h, 0, 1)
	r.Proto = 17
	return r
}

// shard builds one archive analytics shard from records.
func shard(recs ...netflow.Record) *streaming.Analytics {
	a := streaming.New(testCfg())
	a.Ingest(recs)
	return a
}

// input wraps a shard as a fold input covering WAL interval (seg, seg+1]
// with the given hour bounds.
func input(seg uint64, minHour, maxHour int64, state *streaming.Analytics) Input {
	return Input{
		Meta:  Meta{Seq: seg, BaseSeg: seg, CoveredSeg: seg + 1, MinHour: minHour, MaxHour: maxHour},
		State: state,
	}
}

func TestCloseRuns(t *testing.T) {
	metas := []Meta{
		{MinHour: 0, MaxHour: 0},
		{MinHour: 5, MaxHour: 6},
		{MinHour: -1, MaxHour: -1}, // accounting rides along
		{MinHour: 23, MaxHour: 24}, // spills past midnight; still day 0
		{MinHour: 25, MaxHour: 25}, // proves day 0 complete
		{MinHour: 26, MaxHour: 30},
		{MinHour: 49, MaxHour: 50}, // proves day 1 complete; itself open
	}
	got := CloseRuns(LevelDay, metas)
	want := [][2]int{{0, 4}, {4, 6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CloseRuns = %v, want %v", got, want)
	}

	// Leading accounting frames join the first run.
	metas2 := []Meta{{MinHour: -1, MaxHour: -1}, {MinHour: 3, MaxHour: 3}, {MinHour: 30, MaxHour: 31}}
	if got := CloseRuns(LevelDay, metas2); !reflect.DeepEqual(got, [][2]int{{0, 2}}) {
		t.Fatalf("CloseRuns with leading accounting = %v", got)
	}

	// No later period yet: everything stays open.
	if got := CloseRuns(LevelDay, metas[:4]); got != nil {
		t.Fatalf("open run folded: %v", got)
	}
}

func TestFoldRawExact(t *testing.T) {
	// Three hourly checkpoint frames: prefix 1 persists in all three,
	// prefixes 2 and 3 appear once each; hour 30 spills to a second day
	// bucket.
	inputs := []Input{
		input(0, 1, 1, shard(keptRecord(1, 1, 100), keptRecord(1, 2, 50), droppedRecord(1))),
		input(1, 5, 5, shard(keptRecord(5, 1, 10))),
		input(2, 5, 30, shard(keptRecord(5, 1, 10), keptRecord(30, 3, 70))),
	}
	f, err := FoldRaw(LevelDay, 99, testCfg(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if f.Seq != 99 || f.Level != LevelDay || f.BaseSeg != 0 || f.CoveredSeg != 3 {
		t.Fatalf("frame identity: %+v", f)
	}
	if f.MinHour != 1 || f.MaxHour != 30 || f.Inputs != 3 {
		t.Fatalf("frame coverage: %+v", f)
	}
	if f.Total != 6 || f.Kept != 5 || f.Dropped[core.DropNotTCP] != 1 {
		t.Fatalf("census: total=%d kept=%d dropped=%v", f.Total, f.Kept, f.Dropped)
	}
	wantBuckets := []Bucket{
		{StartHour: 0, Flows: 4, Bytes: 170},
		{StartHour: 24, Flows: 1, Bytes: 70},
	}
	if !reflect.DeepEqual(f.Buckets, wantBuckets) {
		t.Fatalf("buckets = %+v, want %+v", f.Buckets, wantBuckets)
	}
	// Three distinct /24s: linear counting is exact at this range.
	if est := f.Prefixes.Estimate(); est != 3 {
		t.Fatalf("distinct prefixes = %d, want 3", est)
	}
	// Presence observations: prefix 1 in 3 frames, 2 and 3 in 1 each.
	sum := f.Presence.Summarize()
	if sum.Count != 3 || sum.Max != 3 || sum.P50 != 1 {
		t.Fatalf("presence = %+v", sum)
	}
}

// TestFoldDeterministic pins byte-identity across worker counts: input
// frames whose state was merged from sub-shards in different orders
// fold to identical bytes.
func TestFoldDeterministic(t *testing.T) {
	mk := func(flip bool) []byte {
		s1 := shard(keptRecord(2, 1, 100), keptRecord(3, 2, 10))
		s2 := shard(keptRecord(2, 3, 30), droppedRecord(4))
		m := streaming.New(testCfg())
		if flip {
			m.Merge(s2)
			m.Merge(s1)
		} else {
			m.Merge(s1)
			m.Merge(s2)
		}
		f, err := FoldRaw(LevelDay, 7, testCfg(), []Input{input(0, 2, 4, m)})
		if err != nil {
			t.Fatal(err)
		}
		return EncodeFrame(f)
	}
	if !bytes.Equal(mk(false), mk(true)) {
		t.Fatal("fold output depends on shard merge order")
	}
}

func TestFoldFramesWeek(t *testing.T) {
	mkDay := func(seq, base uint64, minHour int64) *Frame {
		f, err := FoldRaw(LevelDay, seq, testCfg(), []Input{
			input(base, minHour, minHour, shard(keptRecord(int(minHour), int(seq), 100))),
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	d1 := mkDay(10, 0, 2)
	d2 := mkDay(11, 1, 26)
	w, err := FoldFrames(LevelWeek, 20, []*Frame{d1, d2})
	if err != nil {
		t.Fatal(err)
	}
	if w.Level != LevelWeek || w.BaseSeg != 0 || w.CoveredSeg != 2 || w.Inputs != 2 {
		t.Fatalf("week identity: %+v", w)
	}
	if w.Kept != 2 || w.MinHour != 2 || w.MaxHour != 26 {
		t.Fatalf("week aggregates: %+v", w)
	}
	// Both day buckets fall in week bucket 0.
	if len(w.Buckets) != 1 || w.Buckets[0].StartHour != 0 || w.Buckets[0].Flows != 2 {
		t.Fatalf("week buckets = %+v", w.Buckets)
	}
	if est := w.Prefixes.Estimate(); est != 2 {
		t.Fatalf("week distinct prefixes = %d", est)
	}

	// A broken WAL chain must refuse to fold.
	d3 := mkDay(12, 5, 50)
	if _, err := FoldFrames(LevelWeek, 21, []*Frame{d1, d3}); err == nil {
		t.Fatal("fold across a WAL gap succeeded")
	}
	// Level mismatch must refuse too.
	if _, err := FoldFrames(LevelWeek, 22, []*Frame{w}); err == nil {
		t.Fatal("fold of week frame into week frame succeeded")
	}
}

func TestBuildPlan(t *testing.T) {
	origin := entime.StudyStart
	weeks := []FrameMeta{{Level: LevelWeek, Seq: 100, BaseSeg: 0, CoveredSeg: 14, MinHour: 0, MaxHour: 167}}
	days := []FrameMeta{
		{Level: LevelDay, Seq: 10, BaseSeg: 0, CoveredSeg: 7, MinHour: 0, MaxHour: 23},
		{Level: LevelDay, Seq: 11, BaseSeg: 7, CoveredSeg: 14, MinHour: 24, MaxHour: 167},
		{Level: LevelDay, Seq: 12, BaseSeg: 14, CoveredSeg: 16, MinHour: 168, MaxHour: 191},
	}

	p := BuildPlan(ResolutionWeek, origin, time.Time{}, time.Time{}, weeks, days)
	if !reflect.DeepEqual(p.Week, []uint64{100}) || !reflect.DeepEqual(p.Day, []uint64{12}) || p.RawFloor != 16 {
		t.Fatalf("week plan = %+v", p)
	}

	p = BuildPlan(ResolutionDay, origin, time.Time{}, time.Time{}, weeks, days)
	if p.Week != nil || !reflect.DeepEqual(p.Day, []uint64{10, 11, 12}) || p.RawFloor != 16 {
		t.Fatalf("day plan = %+v", p)
	}

	// A range past every tier selects nothing but keeps the floor.
	from := origin.Add(400 * time.Hour)
	p = BuildPlan(ResolutionDay, origin, from, time.Time{}, weeks, days)
	if p.Day != nil || p.RawFloor != 16 {
		t.Fatalf("out-of-range day plan = %+v", p)
	}

	// Hour resolution: zero plan, raw path untouched.
	p = BuildPlan(ResolutionHour, origin, time.Time{}, time.Time{}, weeks, days)
	if p.Week != nil || p.Day != nil || p.RawFloor != 0 {
		t.Fatalf("hour plan = %+v", p)
	}
}

func TestAutoSpan(t *testing.T) {
	base := entime.StudyStart
	cases := []struct {
		span time.Duration
		want Resolution
	}{
		{24 * time.Hour, ResolutionHour},
		{8 * 24 * time.Hour, ResolutionHour},
		{9 * 24 * time.Hour, ResolutionDay},
		{62 * 24 * time.Hour, ResolutionDay},
		{90 * 24 * time.Hour, ResolutionWeek},
		{366 * 24 * time.Hour, ResolutionWeek},
	}
	for _, c := range cases {
		if got := AutoSpan(base, base.Add(c.span), time.Time{}, time.Time{}); got != c.want {
			t.Errorf("AutoSpan(%v) = %v, want %v", c.span, got, c.want)
		}
	}
	// Open bounds fill from history.
	if got := AutoSpan(time.Time{}, time.Time{}, base, base.Add(365*24*time.Hour)); got != ResolutionWeek {
		t.Errorf("open-bound year = %v", got)
	}
	// Empty store: stay exact.
	if got := AutoSpan(time.Time{}, time.Time{}, time.Time{}, time.Time{}); got != ResolutionHour {
		t.Errorf("empty history = %v", got)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	f, err := FoldRaw(LevelDay, 42, testCfg(), []Input{
		input(3, 1, 1, shard(keptRecord(1, 1, 100), keptRecord(1, 2, 50), droppedRecord(1))),
		input(4, 26, 26, shard(keptRecord(26, 1, 10))),
	})
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeFrame(f)
	got, err := DecodeFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("round trip changed frame:\n got %+v\nwant %+v", got, f)
	}
	if !bytes.Equal(EncodeFrame(got), enc) {
		t.Fatal("round trip changed bytes")
	}

	// A flipped byte anywhere must be rejected as ErrCorrupt.
	for _, pos := range []int{0, 1, 5, 9, len(enc) / 2, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[pos] ^= 0x20
		if _, err := DecodeFrame(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("corruption at byte %d: err = %v", pos, err)
		}
	}
	if _, err := DecodeFrame(enc[:len(enc)-3]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated frame: err = %v", err)
	}
}

// TestBuilderMergeAnswer pins the cluster path: merging two shard
// answers through their carried sketch state equals building one answer
// from everything — including the estimates, because sketches merge
// where estimates cannot.
func TestBuilderMergeAnswer(t *testing.T) {
	origin := entime.StudyStart
	mkFrame := func(seq, base uint64, h int64, clients ...int) *Frame {
		recs := make([]netflow.Record, 0, len(clients))
		for _, c := range clients {
			recs = append(recs, keptRecord(int(h), c, 100))
		}
		f, err := FoldRaw(LevelDay, seq, testCfg(), []Input{input(base, h, h, shard(recs...))})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	// Overlapping prefix sets across "shards" — the case where summing
	// per-shard estimates would overcount.
	f1 := mkFrame(1, 0, 2, 1, 2, 3)
	f2 := mkFrame(2, 0, 2, 2, 3, 4)

	b1 := NewBuilder(ResolutionDay, origin)
	b1.AddFrame(f1)
	b2 := NewBuilder(ResolutionDay, origin)
	b2.AddFrame(f2)

	merged := NewBuilder(ResolutionDay, origin)
	if err := merged.MergeAnswer(b1.Answer()); err != nil {
		t.Fatal(err)
	}
	if err := merged.MergeAnswer(b2.Answer()); err != nil {
		t.Fatal(err)
	}

	whole := NewBuilder(ResolutionDay, origin)
	whole.AddFrame(f1)
	whole.AddFrame(f2)

	if !reflect.DeepEqual(merged.Answer(), whole.Answer()) {
		t.Fatalf("scatter-gather drift:\n got %+v\nwant %+v", merged.Answer(), whole.Answer())
	}
	if got := merged.Answer().DistinctPrefixes; got != 4 {
		t.Fatalf("merged distinct prefixes = %d, want 4", got)
	}

	// Corrupt sketch state from a peer must be an error, not a merge.
	bad := b1.Answer()
	bad.PrefixSketch[len(bad.PrefixSketch)-1] ^= 0x10
	if err := NewBuilder(ResolutionDay, origin).MergeAnswer(bad); err == nil {
		t.Fatal("corrupt peer sketch merged cleanly")
	}
}

// TestBuilderResidual pins the exact/approximate stitch: tier frame
// census plus residual snapshot census sum exactly, and residual
// prefixes reach the sketches.
func TestBuilderResidual(t *testing.T) {
	origin := entime.StudyStart
	f, err := FoldRaw(LevelDay, 1, testCfg(), []Input{
		input(0, 1, 1, shard(keptRecord(1, 1, 100), droppedRecord(1))),
	})
	if err != nil {
		t.Fatal(err)
	}
	resid := shard(keptRecord(30, 1, 10), keptRecord(30, 9, 20))
	acc := NewSketchAccum()
	acc.AddShard(resid)

	b := NewBuilder(ResolutionDay, origin)
	b.AddFrame(f)
	b.AddResidual(resid.Snapshot(), acc, 1)
	ans := b.Answer()

	if ans.Census.Total != 4 || ans.Census.Kept != 3 {
		t.Fatalf("census = %+v", ans.Census)
	}
	if ans.TierFrames != 1 || ans.RawFrames != 1 {
		t.Fatalf("source counts: %+v", ans)
	}
	// Prefix 1 in both sources, prefix 9 residual-only: 2 distinct.
	if ans.DistinctPrefixes != 2 {
		t.Fatalf("distinct prefixes = %d, want 2", ans.DistinctPrefixes)
	}
	wantBuckets := []Bucket{
		{StartHour: 0, Time: origin, Flows: 1, Bytes: 100},
		{StartHour: 24, Time: origin.Add(24 * time.Hour), Flows: 2, Bytes: 30},
	}
	if !reflect.DeepEqual(ans.Buckets, wantBuckets) {
		t.Fatalf("buckets = %+v, want %+v", ans.Buckets, wantBuckets)
	}
	if !ans.Approximate {
		t.Fatal("tiered answer not flagged approximate")
	}
}
