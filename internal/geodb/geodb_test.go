package geodb

import (
	"fmt"
	"net/netip"
	"testing"

	"cwatrace/internal/cryptopan"
	"cwatrace/internal/geo"
)

var model = geo.Germany()

// buildInfos creates n prefixes spread over districts and two ISPs:
// "Blau" (partner) for every 5th prefix, "Magenta" otherwise.
func buildInfos(n int) []PrefixInfo {
	districts := model.Districts()
	out := make([]PrefixInfo, n)
	for i := range out {
		d := districts[i%len(districts)]
		isp := "Magenta"
		if i%5 == 0 {
			isp = "Blau"
		}
		out[i] = PrefixInfo{
			Prefix:     netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(i >> 8), byte(i), 0}), 24),
			RouterID:   fmt.Sprintf("%s/%s", isp, d.ID),
			DistrictID: d.ID,
			ISPName:    isp,
		}
	}
	return out
}

func TestBuildValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GeoIPErrorRate = 1.5
	if _, err := Build(model, nil, cfg, nil); err == nil {
		t.Error("error rate > 1 must fail")
	}
	cfg = DefaultConfig()
	cfg.SameStateBias = -0.1
	if _, err := Build(model, nil, cfg, nil); err == nil {
		t.Error("negative bias must fail")
	}
	bad := []PrefixInfo{{
		Prefix:     netip.MustParsePrefix("20.0.0.0/24"),
		DistrictID: "XX-999",
		ISPName:    "Magenta",
	}}
	if _, err := Build(model, bad, DefaultConfig(), nil); err == nil {
		t.Error("unknown district must fail")
	}
}

func TestPartnerISPIsGroundTruth(t *testing.T) {
	infos := buildInfos(500)
	db, err := Build(model, infos, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if info.ISPName != "Blau" {
			continue
		}
		e, ok := db.LocatePrefix(info.Prefix)
		if !ok {
			t.Fatalf("partner prefix %s not in db", info.Prefix)
		}
		if e.Source != SourceRouter {
			t.Fatalf("partner prefix %s has source %s", info.Prefix, e.Source)
		}
		if e.DistrictID != info.DistrictID {
			t.Fatalf("partner prefix %s located to %s, truth %s",
				info.Prefix, e.DistrictID, info.DistrictID)
		}
	}
}

func TestGeoIPErrorRateApproximatelyHolds(t *testing.T) {
	infos := buildInfos(4000)
	cfg := DefaultConfig()
	db, err := Build(model, infos, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var geoip, wrong int
	for _, info := range infos {
		if info.ISPName == "Blau" {
			continue
		}
		e, ok := db.LocatePrefix(info.Prefix)
		if !ok {
			t.Fatalf("prefix %s missing", info.Prefix)
		}
		if e.Source != SourceGeoIP {
			t.Fatalf("non-partner prefix %s has source %s", info.Prefix, e.Source)
		}
		geoip++
		if e.DistrictID != info.DistrictID {
			wrong++
		}
	}
	rate := float64(wrong) / float64(geoip)
	if rate < cfg.GeoIPErrorRate-0.05 || rate > cfg.GeoIPErrorRate+0.05 {
		t.Fatalf("observed error rate %.3f, configured %.3f", rate, cfg.GeoIPErrorRate)
	}
}

func TestErrorsMostlySameState(t *testing.T) {
	infos := buildInfos(4000)
	cfg := DefaultConfig()
	db, err := Build(model, infos, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wrong, sameState int
	for _, info := range infos {
		if info.ISPName == "Blau" {
			continue
		}
		e, _ := db.LocatePrefix(info.Prefix)
		if e.DistrictID == info.DistrictID {
			continue
		}
		wrong++
		truth, _ := model.DistrictByID(info.DistrictID)
		got, _ := model.DistrictByID(e.DistrictID)
		if truth.StateCode == got.StateCode {
			sameState++
		}
	}
	if wrong == 0 {
		t.Fatal("no errors to inspect")
	}
	share := float64(sameState) / float64(wrong)
	// Multi-district states dominate the sample, so the observed share
	// should be near the configured bias.
	if share < cfg.SameStateBias-0.12 || share > cfg.SameStateBias+0.12 {
		t.Fatalf("same-state error share %.3f, configured bias %.3f", share, cfg.SameStateBias)
	}
}

func TestDeterministicConstruction(t *testing.T) {
	infos := buildInfos(300)
	a, err := Build(model, infos, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(model, infos, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		ea, _ := a.LocatePrefix(info.Prefix)
		eb, _ := b.LocatePrefix(info.Prefix)
		if ea != eb {
			t.Fatalf("nondeterministic entry for %s: %+v vs %+v", info.Prefix, ea, eb)
		}
	}
}

func TestAnonymizedKeying(t *testing.T) {
	key := make([]byte, cryptopan.KeySize)
	for i := range key {
		key[i] = byte(i * 3)
	}
	anon, err := cryptopan.New(key)
	if err != nil {
		t.Fatal(err)
	}
	infos := buildInfos(50)
	db, err := Build(model, infos, DefaultConfig(), anon)
	if err != nil {
		t.Fatal(err)
	}
	// A client address inside a known prefix, anonymized the way the
	// collector does it, must resolve.
	clientAddr := netip.MustParseAddr("20.0.0.42") // inside infos[0] prefix
	anonAddr := anon.Anonymize(clientAddr)
	e, ok := db.Locate(anonAddr)
	if !ok {
		t.Fatal("anonymized client address did not resolve")
	}
	if e.DistrictID == "" {
		t.Fatal("empty district")
	}
	// The raw (un-anonymized) address must NOT resolve: the DB is keyed
	// by anonymized prefixes only.
	if _, ok := db.Locate(clientAddr); ok {
		t.Fatal("raw address resolved against anonymized database")
	}
}

func TestLocateUnknown(t *testing.T) {
	db, err := Build(model, buildInfos(10), DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Locate(netip.MustParseAddr("99.99.99.99")); ok {
		t.Fatal("unknown prefix must not resolve")
	}
}

func TestSourceShares(t *testing.T) {
	db, err := Build(model, buildInfos(1000), DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	shares := db.SourceShares()
	// Every 5th prefix is partner → 20% router share here.
	if shares[SourceRouter] < 0.15 || shares[SourceRouter] > 0.25 {
		t.Fatalf("router share %.3f, want ~0.20", shares[SourceRouter])
	}
	if got := shares[SourceRouter] + shares[SourceGeoIP]; got < 0.999 || got > 1.001 {
		t.Fatalf("shares must sum to 1, got %f", got)
	}
	if db.Len() != 1000 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestSourceSharesEmpty(t *testing.T) {
	db, err := Build(model, nil, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.SourceShares()) != 0 {
		t.Fatal("empty db must have empty shares")
	}
}

func TestSourceString(t *testing.T) {
	if SourceRouter.String() != "router" || SourceGeoIP.String() != "geoip" ||
		SourceUnknown.String() != "unknown" {
		t.Fatal("Source.String mismatch")
	}
}
