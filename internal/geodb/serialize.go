package geodb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"sort"
)

// fileEntry is the JSONL sidecar form of one prefix mapping. The trace
// provider ships this file alongside the anonymized trace, playing the
// role of BENOCS' prefix-to-location mapping.
type fileEntry struct {
	Prefix   string `json:"prefix"`
	District string `json:"district"`
	Source   string `json:"source"`
}

// Write serializes the database as JSONL (one prefix per line), in
// deterministic prefix order.
func (db *DB) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	prefixes := make([]netip.Prefix, 0, len(db.byPrefix))
	for p := range db.byPrefix {
		prefixes = append(prefixes, p)
	}
	sortPrefixes(prefixes)
	for _, p := range prefixes {
		e := db.byPrefix[p]
		if err := enc.Encode(fileEntry{
			Prefix:   p.String(),
			District: e.DistrictID,
			Source:   e.Source.String(),
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a JSONL sidecar back into a database.
func Read(r io.Reader) (*DB, error) {
	db := &DB{byPrefix: make(map[netip.Prefix]Entry)}
	dec := json.NewDecoder(r)
	for i := 0; ; i++ {
		var fe fileEntry
		if err := dec.Decode(&fe); err == io.EOF {
			return db, nil
		} else if err != nil {
			return nil, fmt.Errorf("geodb: sidecar line %d: %w", i, err)
		}
		p, err := netip.ParsePrefix(fe.Prefix)
		if err != nil {
			return nil, fmt.Errorf("geodb: sidecar line %d: %w", i, err)
		}
		src := SourceUnknown
		switch fe.Source {
		case "router":
			src = SourceRouter
		case "geoip":
			src = SourceGeoIP
		}
		db.byPrefix[p.Masked()] = Entry{DistrictID: fe.District, Source: src}
	}
}

func sortPrefixes(ps []netip.Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		if c := ps[i].Addr().Compare(ps[j].Addr()); c != 0 {
			return c < 0
		}
		return ps[i].Bits() < ps[j].Bits()
	})
}
