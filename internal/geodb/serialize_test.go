package geodb

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
)

func TestSidecarRoundTrip(t *testing.T) {
	db, err := Build(model, buildInfos(200), DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("round trip size %d, want %d", got.Len(), db.Len())
	}
	for _, info := range buildInfos(200) {
		a, okA := db.LocatePrefix(info.Prefix)
		b, okB := got.LocatePrefix(info.Prefix)
		if okA != okB || a != b {
			t.Fatalf("entry mismatch for %s: %+v vs %+v", info.Prefix, a, b)
		}
	}
}

func TestSidecarDeterministicBytes(t *testing.T) {
	db, err := Build(model, buildInfos(50), DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := db.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("sidecar serialization not deterministic")
	}
}

func TestSidecarReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("{bad json")); err == nil {
		t.Fatal("bad JSON must fail")
	}
	if _, err := Read(strings.NewReader(`{"prefix":"nonsense","district":"X","source":"geoip"}`)); err == nil {
		t.Fatal("bad prefix must fail")
	}
}

func TestSidecarUnknownSource(t *testing.T) {
	db, err := Read(strings.NewReader(`{"prefix":"20.0.0.0/24","district":"BE-000","source":"weird"}`))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := db.LocatePrefix(netip.MustParsePrefix("20.0.0.0/24"))
	if !ok || e.Source != SourceUnknown {
		t.Fatalf("entry = %+v, ok=%v", e, ok)
	}
}
