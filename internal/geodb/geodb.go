// Package geodb provides the client geolocation of the measurement
// pipeline. The paper locates request traffic two ways: "We derive 18% of
// geolocations from local routers within an ISP that connect customers
// (ground truth since the router locations are known), while the rest is
// located by applying the Maxmind geolocation database on routing
// prefixes."
//
// Both sources exist here. Prefixes of the partner ISP are resolved through
// the router they are announced from (exact). All other prefixes go through
// a synthetic Maxmind-like database that is deliberately wrong for a
// configurable share of prefixes — city-level GeoIP inaccuracy is well
// documented (Poese et al., CCR 2011, cited by the paper) — displacing them
// to another district, usually within the same federal state.
//
// Because released traces carry prefix-preserving anonymized client
// addresses, the database is keyed by *anonymized* prefix: the trace
// provider builds it before anonymization using the same keyed mapping, as
// BENOCS did for the authors.
package geodb

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"sort"

	"cwatrace/internal/cryptopan"
	"cwatrace/internal/geo"
)

// Source tells how a prefix was located.
type Source int

// Geolocation sources.
const (
	SourceUnknown Source = iota
	SourceRouter         // ISP ground truth: router location is known
	SourceGeoIP          // Maxmind-like database lookup
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SourceRouter:
		return "router"
	case SourceGeoIP:
		return "geoip"
	default:
		return "unknown"
	}
}

// PrefixInfo is the builder's view of one announced routing prefix.
type PrefixInfo struct {
	Prefix     netip.Prefix
	RouterID   string
	DistrictID string // true district of the announcing router
	ISPName    string
}

// Config tunes database construction.
type Config struct {
	// PartnerISP is the ISP whose router locations are ground truth (the
	// vantage-point operator's own network).
	PartnerISP string
	// GeoIPErrorRate is the probability that the database places a
	// non-partner prefix in the wrong district.
	GeoIPErrorRate float64
	// SameStateBias is the probability that a wrong placement stays
	// within the true federal state (city-level errors are usually
	// near misses).
	SameStateBias float64
	// Seed makes the corruption deterministic.
	Seed int64
}

// DefaultConfig matches the reproduction's calibration: the partner ISP
// carries roughly the paper's 18% ground-truth share, and GeoIP misplaces a
// quarter of prefixes at city level.
func DefaultConfig() Config {
	return Config{
		PartnerISP:     "Blau",
		GeoIPErrorRate: 0.25,
		SameStateBias:  0.7,
		Seed:           0x9e3779b9,
	}
}

// Entry is a locate result.
type Entry struct {
	DistrictID string
	Source     Source
}

// DB maps anonymized /24 routing prefixes to districts.
type DB struct {
	byPrefix map[netip.Prefix]Entry
}

// Build constructs the database from the network's prefix inventory. anon
// may be nil when the pipeline runs on un-anonymized traces (unit tests);
// otherwise prefixes are keyed through the same anonymizer that the
// collector applies to client addresses.
func Build(model *geo.Model, infos []PrefixInfo, cfg Config, anon *cryptopan.Anonymizer) (*DB, error) {
	if cfg.GeoIPErrorRate < 0 || cfg.GeoIPErrorRate > 1 {
		return nil, fmt.Errorf("geodb: error rate %f out of range", cfg.GeoIPErrorRate)
	}
	if cfg.SameStateBias < 0 || cfg.SameStateBias > 1 {
		return nil, fmt.Errorf("geodb: same-state bias %f out of range", cfg.SameStateBias)
	}
	db := &DB{byPrefix: make(map[netip.Prefix]Entry, len(infos))}
	// Sort for deterministic iteration; corruption draws are per-prefix.
	sorted := make([]PrefixInfo, len(infos))
	copy(sorted, infos)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Prefix.String() < sorted[j].Prefix.String()
	})
	districts := model.Districts()
	for _, info := range sorted {
		true_, ok := model.DistrictByID(info.DistrictID)
		if !ok {
			return nil, fmt.Errorf("geodb: prefix %s references unknown district %s", info.Prefix, info.DistrictID)
		}
		key := info.Prefix
		if anon != nil {
			key = anon.AnonymizePrefix(info.Prefix)
		}
		if info.ISPName == cfg.PartnerISP {
			db.byPrefix[key] = Entry{DistrictID: info.DistrictID, Source: SourceRouter}
			continue
		}
		rng := rand.New(rand.NewSource(prefixSeed(cfg.Seed, info.Prefix)))
		entry := Entry{DistrictID: info.DistrictID, Source: SourceGeoIP}
		if rng.Float64() < cfg.GeoIPErrorRate {
			entry.DistrictID = displace(rng, model, districts, true_, cfg.SameStateBias)
		}
		db.byPrefix[key] = entry
	}
	return db, nil
}

// displace picks a wrong district for a misplaced prefix: usually a
// different district of the same state, otherwise anywhere in the country.
func displace(rng *rand.Rand, model *geo.Model, all []geo.District, true_ geo.District, sameStateBias float64) string {
	if rng.Float64() < sameStateBias {
		sibs := model.DistrictsOfState(true_.StateCode)
		if len(sibs) > 1 {
			for {
				d := sibs[rng.Intn(len(sibs))]
				if d.ID != true_.ID {
					return d.ID
				}
			}
		}
		// One-district states (Berlin, Hamburg) fall through to a
		// nation-wide miss.
	}
	for {
		d := all[rng.Intn(len(all))]
		if d.ID != true_.ID {
			return d.ID
		}
	}
}

func prefixSeed(seed int64, p netip.Prefix) int64 {
	h := fnv.New64a()
	b := p.Addr().As4()
	h.Write(b[:])
	h.Write([]byte{byte(p.Bits())})
	return seed ^ int64(h.Sum64())
}

// Locate resolves an (anonymized) client address through its /24 prefix.
func (db *DB) Locate(addr netip.Addr) (Entry, bool) {
	p := netip.PrefixFrom(addr, 24).Masked()
	e, ok := db.byPrefix[p]
	return e, ok
}

// LocatePrefix resolves a routing prefix directly.
func (db *DB) LocatePrefix(p netip.Prefix) (Entry, bool) {
	e, ok := db.byPrefix[p.Masked()]
	return e, ok
}

// Len reports the number of mapped prefixes.
func (db *DB) Len() int { return len(db.byPrefix) }

// SourceShares reports the fraction of prefixes per source; the paper's
// "18% from local routers" is checked against this.
func (db *DB) SourceShares() map[Source]float64 {
	counts := make(map[Source]int)
	for _, e := range db.byPrefix {
		counts[e.Source]++
	}
	out := make(map[Source]float64, len(counts))
	if len(db.byPrefix) == 0 {
		return out
	}
	for s, n := range counts {
		out[s] = float64(n) / float64(len(db.byPrefix))
	}
	return out
}
