package cryptopan

import (
	"encoding/binary"
	"net/netip"
	"testing"
	"testing/quick"
)

func testKey() []byte {
	key := make([]byte, KeySize)
	for i := range key {
		key[i] = byte(i*7 + 3)
	}
	return key
}

func newTestAnonymizer(t *testing.T) *Anonymizer {
	t.Helper()
	a, err := New(testKey())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewRejectsBadKeys(t *testing.T) {
	for _, n := range []int{0, 16, 31, 33} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New with %d-byte key must fail", n)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := newTestAnonymizer(t)
	addr := netip.MustParseAddr("203.0.113.7")
	if a.Anonymize(addr) != a.Anonymize(addr) {
		t.Fatal("anonymization must be deterministic")
	}
	b, err := New(testKey())
	if err != nil {
		t.Fatal(err)
	}
	if a.Anonymize(addr) != b.Anonymize(addr) {
		t.Fatal("same key must produce same mapping")
	}
}

func TestDifferentKeysDiffer(t *testing.T) {
	a := newTestAnonymizer(t)
	key2 := testKey()
	key2[0] ^= 0xFF
	b, err := New(key2)
	if err != nil {
		t.Fatal(err)
	}
	addr := netip.MustParseAddr("10.20.30.40")
	if a.Anonymize(addr) == b.Anonymize(addr) {
		t.Fatal("different keys should (overwhelmingly) produce different mappings")
	}
}

// commonPrefixLen32 counts the number of leading bits shared by two IPv4
// addresses.
func commonPrefixLen32(x, y netip.Addr) int {
	a := binary.BigEndian.Uint32(x.AsSlice())
	b := binary.BigEndian.Uint32(y.AsSlice())
	n := 0
	for n < 32 {
		mask := uint32(1) << (31 - uint(n))
		if a&mask != b&mask {
			break
		}
		n++
	}
	return n
}

// TestPrefixPreservation is the core Crypto-PAn property: the anonymized
// pair shares exactly as many prefix bits as the original pair.
func TestPrefixPreservation(t *testing.T) {
	a := newTestAnonymizer(t)
	f := func(x, y uint32) bool {
		var xb, yb [4]byte
		binary.BigEndian.PutUint32(xb[:], x)
		binary.BigEndian.PutUint32(yb[:], y)
		ax := netip.AddrFrom4(xb)
		ay := netip.AddrFrom4(yb)
		want := commonPrefixLen32(ax, ay)
		got := commonPrefixLen32(a.Anonymize(ax), a.Anonymize(ay))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBijective verifies injectivity on random pairs: distinct inputs map to
// distinct outputs (Crypto-PAn is a bijection on the 32-bit space).
func TestBijective(t *testing.T) {
	a := newTestAnonymizer(t)
	f := func(x, y uint32) bool {
		if x == y {
			return true
		}
		var xb, yb [4]byte
		binary.BigEndian.PutUint32(xb[:], x)
		binary.BigEndian.PutUint32(yb[:], y)
		return a.Anonymize(netip.AddrFrom4(xb)) != a.Anonymize(netip.AddrFrom4(yb))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIPv6(t *testing.T) {
	a := newTestAnonymizer(t)
	x := netip.MustParseAddr("2001:db8::1")
	y := netip.MustParseAddr("2001:db8::2")
	z := netip.MustParseAddr("2a00:1450::5")
	ax, ay, az := a.Anonymize(x), a.Anonymize(y), a.Anonymize(z)
	if !ax.Is6() || !ay.Is6() || !az.Is6() {
		t.Fatal("IPv6 inputs must produce IPv6 outputs")
	}
	if ax == ay {
		t.Fatal("distinct IPv6 addresses collided")
	}
	// x and y share a 126-bit prefix, x and z only high bits; the
	// anonymized versions must reflect that ordering.
	sharedXY := commonPrefixLen128(ax, ay)
	sharedXZ := commonPrefixLen128(ax, az)
	if sharedXY < 64 {
		t.Fatalf("x,y share %d anonymized bits, expected long prefix", sharedXY)
	}
	if sharedXZ >= sharedXY {
		t.Fatalf("x,z share %d bits >= x,y %d bits", sharedXZ, sharedXY)
	}
}

func commonPrefixLen128(x, y netip.Addr) int {
	xs, ys := x.As16(), y.As16()
	n := 0
	for i := 0; i < 16; i++ {
		for b := 7; b >= 0; b-- {
			if (xs[i]>>uint(b))&1 != (ys[i]>>uint(b))&1 {
				return n
			}
			n++
		}
	}
	return n
}

func TestIPv4MappedTreatedAsIPv4(t *testing.T) {
	a := newTestAnonymizer(t)
	v4 := netip.MustParseAddr("192.0.2.1")
	mapped := netip.AddrFrom16(v4.As16()) // ::ffff:192.0.2.1
	if got := a.Anonymize(mapped); got != a.Anonymize(v4) {
		t.Fatalf("mapped form anonymized differently: %s vs %s", got, a.Anonymize(v4))
	}
}

func TestAnonymizePrefix(t *testing.T) {
	a := newTestAnonymizer(t)
	p := netip.MustParsePrefix("198.51.100.0/24")
	ap := a.AnonymizePrefix(p)
	if ap.Bits() != 24 {
		t.Fatalf("prefix length changed: %d", ap.Bits())
	}
	if ap != ap.Masked() {
		t.Fatal("anonymized prefix must be masked")
	}
	// Any address inside p must anonymize into ap.
	for _, s := range []string{"198.51.100.1", "198.51.100.200", "198.51.100.77"} {
		got := a.Anonymize(netip.MustParseAddr(s))
		if !ap.Contains(got) {
			t.Fatalf("anonymized %s = %s outside anonymized prefix %s", s, got, ap)
		}
	}
	// An address outside p must anonymize outside ap.
	out := a.Anonymize(netip.MustParseAddr("198.51.101.1"))
	if ap.Contains(out) {
		t.Fatal("address outside prefix anonymized into it")
	}
}

func TestConcurrentUse(t *testing.T) {
	a := newTestAnonymizer(t)
	addr := netip.MustParseAddr("100.64.12.34")
	want := a.Anonymize(addr)
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func() {
			ok := true
			for j := 0; j < 200; j++ {
				if a.Anonymize(addr) != want {
					ok = false
				}
			}
			done <- ok
		}()
	}
	for i := 0; i < 8; i++ {
		if !<-done {
			t.Fatal("concurrent anonymization returned inconsistent results")
		}
	}
}

func BenchmarkAnonymizeIPv4(b *testing.B) {
	a, err := New(testKey())
	if err != nil {
		b.Fatal(err)
	}
	addr := netip.MustParseAddr("203.0.113.7")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Anonymize(addr)
	}
}
