// Package cryptopan implements prefix-preserving IP address anonymization
// following the Crypto-PAn construction (Xu, Fan, Ammar, Moon: "Prefix-
// Preserving IP Address Anonymization", ICNP 2002), built on AES from the
// standard library.
//
// The paper's Netflow data set has "all client IP addresses ... prefix-
// preserving anonymized": two addresses sharing a k-bit prefix map to
// anonymized addresses sharing exactly a k-bit prefix. This property is what
// allows the measurement pipeline to keep aggregating by routing prefix
// (persistence analysis, geolocation by prefix) without ever seeing real
// client addresses. The property-based tests in this package verify both the
// prefix-preservation invariant and bijectivity.
package cryptopan

import (
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"net/netip"
)

// KeySize is the required key length in bytes: 16 for the AES-128 block key
// plus 16 for the padding secret, as in the reference implementation.
const KeySize = 32

// Anonymizer performs stateless prefix-preserving anonymization of IPv4 and
// IPv6 addresses. It is safe for concurrent use: the underlying cipher.Block
// is used read-only after construction.
type Anonymizer struct {
	block cipher.Block
	pad   [16]byte
}

// New creates an Anonymizer from a 32-byte key. The first 16 bytes key the
// AES block cipher; the last 16 bytes are encrypted once to form the secret
// padding block that seeds every per-bit coin flip.
func New(key []byte) (*Anonymizer, error) {
	if len(key) != KeySize {
		return nil, errors.New("cryptopan: key must be exactly 32 bytes")
	}
	block, err := aes.NewCipher(key[:16])
	if err != nil {
		return nil, err
	}
	a := &Anonymizer{block: block}
	block.Encrypt(a.pad[:], key[16:])
	return a, nil
}

// Anonymize maps addr to its prefix-preserving anonymized counterpart. IPv4
// addresses are anonymized over 32 bits, IPv6 over 128 bits. IPv4-mapped
// IPv6 addresses are treated as IPv4, matching how flow exports canonicalize
// them.
func (a *Anonymizer) Anonymize(addr netip.Addr) netip.Addr {
	if addr.Is4() || addr.Is4In6() {
		v4 := addr.As4()
		out := a.anonymizeBits(v4[:], 32)
		var res [4]byte
		copy(res[:], out)
		return netip.AddrFrom4(res)
	}
	v6 := addr.As16()
	out := a.anonymizeBits(v6[:], 128)
	var res [16]byte
	copy(res[:], out)
	return netip.AddrFrom16(res)
}

// anonymizeBits implements the Crypto-PAn bit walk: for each prefix length
// i, the first i bits of the original address select a pseudorandom bit that
// is XORed into bit i of the output. Two inputs agreeing on their first k
// bits therefore produce identical coin flips for positions 0..k-1, which is
// exactly the prefix-preservation property.
func (a *Anonymizer) anonymizeBits(ip []byte, bits int) []byte {
	out := make([]byte, len(ip))
	copy(out, ip)

	var input [16]byte
	var enc [16]byte
	for i := 0; i < bits; i++ {
		// Compose the cipher input: the first i bits of the original
		// address followed by the padding block for the rest.
		copy(input[:], a.pad[:])
		// Whole bytes of original prefix.
		nb := i / 8
		for b := 0; b < nb; b++ {
			input[b] = ip[b]
		}
		// The partial byte: keep the top (i%8) original bits, fill the
		// remainder from the pad.
		if rem := i % 8; rem != 0 {
			mask := byte(0xFF << (8 - rem))
			input[nb] = ip[nb]&mask | a.pad[nb]&^mask
		}
		a.block.Encrypt(enc[:], input[:])
		// The most significant bit of the ciphertext is the coin flip
		// for output bit i.
		flip := enc[0] >> 7
		out[i/8] ^= flip << (7 - uint(i%8))
	}
	return out
}

// AnonymizePrefix anonymizes a routing prefix: the network bits are mapped
// through the same bit walk (so prefix relationships between prefixes are
// preserved) and the host bits are zeroed.
func (a *Anonymizer) AnonymizePrefix(p netip.Prefix) netip.Prefix {
	anon := a.Anonymize(p.Addr())
	return netip.PrefixFrom(anon, p.Bits()).Masked()
}
