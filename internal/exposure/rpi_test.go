package exposure

import (
	"testing"
	"testing/quick"

	"cwatrace/internal/entime"
)

func fixedTEK(b byte) TEK {
	var k TEK
	for i := range k.Key {
		k.Key[i] = b
	}
	k.RollingStart = entime.IntervalOf(entime.StudyStart).KeyPeriodStart()
	k.RollingPeriod = entime.EKRollingPeriod
	return k
}

func TestDeriveKeysDeterministicAndDistinct(t *testing.T) {
	tek := fixedTEK(0x11)
	r1, err := DeriveRPIK(tek)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := DeriveRPIK(tek)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("RPIK derivation not deterministic")
	}
	a, err := DeriveAEMK(tek)
	if err != nil {
		t.Fatal(err)
	}
	if a == r1 {
		t.Fatal("RPIK and AEMK must differ")
	}
	other, err := DeriveRPIK(fixedTEK(0x22))
	if err != nil {
		t.Fatal(err)
	}
	if other == r1 {
		t.Fatal("different TEKs must derive different RPIKs")
	}
}

func TestRPIChangesEveryInterval(t *testing.T) {
	rpik, err := DeriveRPIK(fixedTEK(0x33))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[RPI]bool)
	base := entime.Interval(2_000_000)
	for off := 0; off < entime.EKRollingPeriod; off++ {
		rpi, err := RPIAt(rpik, base.Add(off))
		if err != nil {
			t.Fatal(err)
		}
		if seen[rpi] {
			t.Fatalf("duplicate RPI at offset %d", off)
		}
		seen[rpi] = true
	}
}

func TestRPIDeterministic(t *testing.T) {
	rpik, _ := DeriveRPIK(fixedTEK(0x44))
	f := func(i uint32) bool {
		a, err1 := RPIAt(rpik, entime.Interval(i))
		b, err2 := RPIAt(rpik, entime.Interval(i))
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMetadataRoundTrip(t *testing.T) {
	tek := fixedTEK(0x55)
	aemk, err := DeriveAEMK(tek)
	if err != nil {
		t.Fatal(err)
	}
	rpik, err := DeriveRPIK(tek)
	if err != nil {
		t.Fatal(err)
	}
	rpi, err := RPIAt(rpik, 2_000_001)
	if err != nil {
		t.Fatal(err)
	}
	f := func(m0, m1, m2, m3 byte) bool {
		meta := Metadata{m0, m1, m2, m3}
		enc, err := EncryptMetadata(aemk, rpi, meta)
		if err != nil {
			return false
		}
		dec, err := EncryptMetadata(aemk, rpi, enc)
		return err == nil && dec == meta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMetadataCiphertextVariesWithRPI(t *testing.T) {
	tek := fixedTEK(0x66)
	aemk, _ := DeriveAEMK(tek)
	rpik, _ := DeriveRPIK(tek)
	meta := Metadata{0x40, 0x08, 0, 0} // version 1.0, TX power 8
	r1, _ := RPIAt(rpik, 2_000_000)
	r2, _ := RPIAt(rpik, 2_000_001)
	c1, err := EncryptMetadata(aemk, r1, meta)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := EncryptMetadata(aemk, r2, meta)
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("same plaintext under different RPIs should differ")
	}
}

func TestBroadcasterPayload(t *testing.T) {
	store := NewKeyStore(testRNG(7))
	b := NewBroadcaster(store, Metadata{0x40, 8, 0, 0})
	i := entime.IntervalOf(entime.AppRelease)
	rpi1, aem1, err := b.Payload(i)
	if err != nil {
		t.Fatal(err)
	}
	rpi2, aem2, err := b.Payload(i)
	if err != nil {
		t.Fatal(err)
	}
	if rpi1 != rpi2 || aem1 != aem2 {
		t.Fatal("payload for the same interval must be stable")
	}
	rpi3, _, err := b.Payload(i.Add(1))
	if err != nil {
		t.Fatal(err)
	}
	if rpi3 == rpi1 {
		t.Fatal("payload must rotate every interval")
	}
}

// TestBroadcasterMatchesManualDerivation pins the Broadcaster to the raw
// primitives: a receiver deriving RPIs from the (later shared) TEK must
// reproduce what was broadcast.
func TestBroadcasterMatchesManualDerivation(t *testing.T) {
	store := NewKeyStore(testRNG(8))
	b := NewBroadcaster(store, Metadata{0x40, 8, 0, 0})
	i := entime.IntervalOf(entime.AppRelease)
	got, _, err := b.Payload(i)
	if err != nil {
		t.Fatal(err)
	}
	tek, err := store.ActiveKey(i)
	if err != nil {
		t.Fatal(err)
	}
	rpik, err := DeriveRPIK(tek)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RPIAt(rpik, i)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("broadcast RPI does not match manual derivation from TEK")
	}
}

func TestBroadcasterCacheAcrossRollover(t *testing.T) {
	store := NewKeyStore(testRNG(9))
	b := NewBroadcaster(store, Metadata{})
	i := entime.IntervalOf(entime.StudyStart).KeyPeriodStart()
	r1, _, err := b.Payload(i)
	if err != nil {
		t.Fatal(err)
	}
	// Crossing into the next rolling period must refresh the cached keys.
	r2, _, err := b.Payload(i.Add(entime.EKRollingPeriod))
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Fatal("RPIs across key rollover should differ")
	}
	// And the new day's RPI must match its own TEK.
	tek, _ := store.ActiveKey(i.Add(entime.EKRollingPeriod))
	rpik, _ := DeriveRPIK(tek)
	want, _ := RPIAt(rpik, i.Add(entime.EKRollingPeriod))
	if r2 != want {
		t.Fatal("post-rollover RPI does not match new TEK")
	}
}
