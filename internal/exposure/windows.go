package exposure

import (
	"fmt"
	"sort"

	"cwatrace/internal/entime"
)

// This file implements the Exposure Notification framework's v2 risk mode
// ("exposure windows"), which the Corona-Warn-App migrated to after the
// study period. Where v1 reports per-key aggregate durations, v2 delivers
// up to 30-minute windows of individual BLE scan instances and computes
// weighted exposure minutes over four attenuation ranges. Implementing it
// here covers the protocol's forward evolution (the repository's extension
// feature) and lets the tests contrast both scoring modes on the same
// encounters.

// Infectiousness classifies a diagnosis key's window by how close the
// encounter was to symptom onset.
type Infectiousness int

// Infectiousness levels.
const (
	InfectiousnessStandard Infectiousness = iota
	InfectiousnessHigh
)

// ReportType classifies how the diagnosis was established.
type ReportType int

// Report types.
const (
	ReportConfirmedTest ReportType = iota
	ReportSelfReport
)

// ScanInstance is one BLE scan during an exposure window.
type ScanInstance struct {
	// TypicalAttenuationDB is the representative attenuation of the scan.
	TypicalAttenuationDB int
	// Seconds is the scan's contribution to contact time.
	Seconds int
}

// ExposureWindow groups the scans of one encounter with one diagnosis key
// within one day.
type ExposureWindow struct {
	// Day is the key-period start interval of the window's calendar day.
	Day            entime.Interval
	Infectiousness Infectiousness
	ReportType     ReportType
	Scans          []ScanInstance
}

// V2Config is the v2 risk-calculation parameter set. The defaults mirror
// the CWA's published configuration: four attenuation ranges (immediate,
// near, medium, other) with weights 1.0/1.0/0.5/0.0 and a 15-minute
// high-risk threshold on weighted exposure time per day.
type V2Config struct {
	// AttenuationBucketEdges split scans into immediate (<= [0]),
	// near (<= [1]), medium (<= [2]) and other.
	AttenuationBucketEdges [3]int
	// BucketWeights weight the seconds of each range.
	BucketWeights [4]float64
	// InfectiousnessWeights index by Infectiousness.
	InfectiousnessWeights [2]float64
	// ReportTypeWeights index by ReportType.
	ReportTypeWeights [2]float64
	// LowRiskMinutes and HighRiskMinutes are the per-day weighted-minute
	// thresholds.
	LowRiskMinutes  float64
	HighRiskMinutes float64
}

// DefaultV2Config returns the CWA-like defaults.
func DefaultV2Config() V2Config {
	return V2Config{
		AttenuationBucketEdges: [3]int{55, 63, 73},
		BucketWeights:          [4]float64{1.0, 1.0, 0.5, 0.0},
		InfectiousnessWeights:  [2]float64{0.8, 1.0},
		ReportTypeWeights:      [2]float64{1.0, 0.6},
		LowRiskMinutes:         5,
		HighRiskMinutes:        15,
	}
}

// Validate reports configuration errors.
func (c V2Config) Validate() error {
	if !(c.AttenuationBucketEdges[0] <= c.AttenuationBucketEdges[1] &&
		c.AttenuationBucketEdges[1] <= c.AttenuationBucketEdges[2]) {
		return fmt.Errorf("exposure: v2 bucket edges misordered: %v", c.AttenuationBucketEdges)
	}
	for i, w := range c.BucketWeights {
		if w < 0 {
			return fmt.Errorf("exposure: v2 negative bucket weight %d", i)
		}
	}
	if c.LowRiskMinutes <= 0 || c.HighRiskMinutes < c.LowRiskMinutes {
		return fmt.Errorf("exposure: v2 thresholds invalid: low %f high %f",
			c.LowRiskMinutes, c.HighRiskMinutes)
	}
	return nil
}

// WeightedMinutes computes the weighted exposure minutes of one window.
func (c V2Config) WeightedMinutes(w ExposureWindow) float64 {
	var seconds float64
	for _, s := range w.Scans {
		seconds += float64(s.Seconds) * c.BucketWeights[c.bucketOf(s.TypicalAttenuationDB)]
	}
	minutes := seconds / 60
	minutes *= c.InfectiousnessWeights[clampIdx(int(w.Infectiousness), 2)]
	minutes *= c.ReportTypeWeights[clampIdx(int(w.ReportType), 2)]
	return minutes
}

func (c V2Config) bucketOf(att int) int {
	switch {
	case att <= c.AttenuationBucketEdges[0]:
		return 0
	case att <= c.AttenuationBucketEdges[1]:
		return 1
	case att <= c.AttenuationBucketEdges[2]:
		return 2
	default:
		return 3
	}
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// DayRiskLevel is the per-day verdict of the v2 calculation.
type DayRiskLevel int

// Day risk levels, ordered.
const (
	RiskNone DayRiskLevel = iota
	RiskLow
	RiskHigh
)

// String implements fmt.Stringer.
func (l DayRiskLevel) String() string {
	switch l {
	case RiskLow:
		return "low"
	case RiskHigh:
		return "high"
	default:
		return "none"
	}
}

// DayRisk is one day's aggregated v2 outcome.
type DayRisk struct {
	Day             entime.Interval
	WeightedMinutes float64
	Level           DayRiskLevel
}

// AggregateDays sums weighted minutes per calendar day and applies the
// thresholds, returning days in chronological order — the v2 equivalent of
// the v1 RiskResult.
func (c V2Config) AggregateDays(windows []ExposureWindow) []DayRisk {
	perDay := make(map[entime.Interval]float64)
	for _, w := range windows {
		perDay[w.Day.KeyPeriodStart()] += c.WeightedMinutes(w)
	}
	out := make([]DayRisk, 0, len(perDay))
	for day, minutes := range perDay {
		level := RiskNone
		switch {
		case minutes >= c.HighRiskMinutes:
			level = RiskHigh
		case minutes >= c.LowRiskMinutes:
			level = RiskLow
		}
		out = append(out, DayRisk{Day: day, WeightedMinutes: minutes, Level: level})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Day < out[j].Day })
	return out
}

// MaxLevel returns the highest level across days (what the app surfaces).
func MaxLevel(days []DayRisk) DayRiskLevel {
	max := RiskNone
	for _, d := range days {
		if d.Level > max {
			max = d.Level
		}
	}
	return max
}

// WindowsFromExposures bridges the v1 matcher output into v2 exposure
// windows: matched encounters are grouped per (key, day) and their
// durations become scan instances. Transmission risk levels >= 6 map to
// high infectiousness, mirroring the CWA's mapping of its v1 levels.
func WindowsFromExposures(exposures []Exposure) []ExposureWindow {
	type groupKey struct {
		tek TEK
		day entime.Interval
	}
	groups := make(map[groupKey]*ExposureWindow)
	var order []groupKey
	for _, e := range exposures {
		gk := groupKey{tek: e.Key.TEK, day: e.Interval.KeyPeriodStart()}
		w, ok := groups[gk]
		if !ok {
			inf := InfectiousnessStandard
			if e.Key.TransmissionRiskLevel >= 6 {
				inf = InfectiousnessHigh
			}
			w = &ExposureWindow{
				Day:            gk.day,
				Infectiousness: inf,
				ReportType:     ReportConfirmedTest,
			}
			groups[gk] = w
			order = append(order, gk)
		}
		w.Scans = append(w.Scans, ScanInstance{
			TypicalAttenuationDB: e.AttenuationDB,
			Seconds:              e.DurationMin * 60,
		})
	}
	out := make([]ExposureWindow, 0, len(order))
	for _, gk := range order {
		out = append(out, *groups[gk])
	}
	return out
}
