package exposure

import (
	"cwatrace/internal/entime"
)

// Encounter is one BLE sighting stored in a phone's local encounter history:
// the pseudonymous identifier received, when, for how long, and at what
// estimated attenuation (TX power minus RSSI, a proximity proxy).
type Encounter struct {
	RPI           RPI
	Interval      entime.Interval
	DurationMin   int // contact duration attributed to this sighting, minutes
	AttenuationDB int // estimated signal attenuation in dB
}

// Exposure is a confirmed match between an encounter and a diagnosis key.
type Exposure struct {
	Encounter
	Key DiagnosisKey
}

// MatchTolerance is the clock-drift window: an RPI derived for interval i is
// accepted if observed within ±MatchTolerance intervals (±2 hours), as the
// framework tolerates devices with skewed clocks.
const MatchTolerance = 12

// Matcher checks a local encounter history against downloaded diagnosis
// keys. It is the client-side half of the detection path in the paper's
// Figure 1 ("detect infection: download diagnosis keys").
//
// The zero value is unusable; create one with NewMatcher.
type Matcher struct {
	// byRPI indexes the encounter history for O(1) probing while deriving
	// candidate RPIs from diagnosis keys.
	byRPI map[RPI][]Encounter
}

// NewMatcher builds a Matcher over the given encounter history.
func NewMatcher(history []Encounter) *Matcher {
	m := &Matcher{byRPI: make(map[RPI][]Encounter, len(history))}
	for _, e := range history {
		m.byRPI[e.RPI] = append(m.byRPI[e.RPI], e)
	}
	return m
}

// HistorySize returns the number of distinct RPIs in the history.
func (m *Matcher) HistorySize() int { return len(m.byRPI) }

// Match derives every RPI of every diagnosis key and reports the encounters
// whose identifiers and timing line up. The work is proportional to
// len(keys) x rolling period, matching how the framework re-derives
// identifiers server-side keys locally.
func (m *Matcher) Match(keys []DiagnosisKey) ([]Exposure, error) {
	var out []Exposure
	for _, key := range keys {
		rpik, err := DeriveRPIK(key.TEK)
		if err != nil {
			return nil, err
		}
		for off := 0; off < int(key.RollingPeriod); off++ {
			interval := key.RollingStart.Add(off)
			rpi, err := RPIAt(rpik, interval)
			if err != nil {
				return nil, err
			}
			for _, enc := range m.byRPI[rpi] {
				if withinTolerance(enc.Interval, interval) {
					out = append(out, Exposure{Encounter: enc, Key: key})
				}
			}
		}
	}
	return out, nil
}

func withinTolerance(observed, derived entime.Interval) bool {
	d := int64(observed) - int64(derived)
	if d < 0 {
		d = -d
	}
	return d <= MatchTolerance
}
