package exposure

import (
	"fmt"

	"cwatrace/internal/entime"
)

// RiskConfig mirrors the tunable exposure configuration of the framework:
// attenuation bucket edges with per-bucket weights, a per-day decay, and per
// transmission-risk-level weights. The CWA ships such a configuration from
// the backend; the defaults below follow its published v1 parameters in
// spirit (low/mid/high attenuation buckets, 15-minute significance
// threshold).
type RiskConfig struct {
	// AttenuationThresholds split encounters into three buckets:
	// <= [0] dB (close), <= [1] dB (mid), else far.
	AttenuationThresholds [2]int
	// BucketWeights weight the minutes accumulated per bucket,
	// close/mid/far.
	BucketWeights [3]float64
	// TransmissionWeights index by TransmissionRiskLevel-1.
	TransmissionWeights [8]float64
	// MinimumScore is the threshold below which the app shows no elevated
	// risk.
	MinimumScore float64
	// MinutesSignificant caps how much contact time a single exposure can
	// contribute (the framework reports duration in 5-minute increments
	// capped at 30).
	MinutesSignificant int
}

// DefaultRiskConfig returns the configuration used across the simulation.
func DefaultRiskConfig() RiskConfig {
	return RiskConfig{
		AttenuationThresholds: [2]int{55, 70},
		BucketWeights:         [3]float64{1.0, 0.5, 0.0},
		TransmissionWeights:   [8]float64{0.4, 0.55, 0.7, 0.85, 1.0, 1.0, 1.0, 1.0},
		MinimumScore:          15, // ~15 weighted close-contact minutes
		MinutesSignificant:    30,
	}
}

// Validate reports configuration errors (misordered thresholds, negative
// weights) before a config is put into service.
func (c RiskConfig) Validate() error {
	if c.AttenuationThresholds[0] > c.AttenuationThresholds[1] {
		return fmt.Errorf("exposure: attenuation thresholds misordered: %v", c.AttenuationThresholds)
	}
	for i, w := range c.BucketWeights {
		if w < 0 {
			return fmt.Errorf("exposure: negative bucket weight %d", i)
		}
	}
	for i, w := range c.TransmissionWeights {
		if w < 0 {
			return fmt.Errorf("exposure: negative transmission weight %d", i)
		}
	}
	if c.MinutesSignificant <= 0 {
		return fmt.Errorf("exposure: MinutesSignificant must be positive")
	}
	return nil
}

// RiskResult summarizes the scored exposures of one device.
type RiskResult struct {
	Score float64
	// Elevated is true when Score >= MinimumScore: the app would warn the
	// user ("informs the user of having been exposed").
	Elevated bool
	// MostRecent is the interval of the latest contributing exposure, the
	// zero Interval if none.
	MostRecent entime.Interval
	// Exposures is the number of contributing (non-zero weight) matches.
	Exposures int
}

// Score aggregates matched exposures into a device-level risk result.
func (c RiskConfig) Score(exposures []Exposure) RiskResult {
	var res RiskResult
	for _, e := range exposures {
		minutes := e.DurationMin
		if minutes > c.MinutesSignificant {
			minutes = c.MinutesSignificant
		}
		w := c.BucketWeights[c.bucket(e.AttenuationDB)]
		tw := 1.0
		if lvl := e.Key.TransmissionRiskLevel; lvl >= 1 && lvl <= 8 {
			tw = c.TransmissionWeights[lvl-1]
		}
		contrib := float64(minutes) * w * tw
		if contrib <= 0 {
			continue
		}
		res.Score += contrib
		res.Exposures++
		if e.Interval > res.MostRecent {
			res.MostRecent = e.Interval
		}
	}
	res.Elevated = res.Score >= c.MinimumScore
	return res
}

func (c RiskConfig) bucket(attenuationDB int) int {
	switch {
	case attenuationDB <= c.AttenuationThresholds[0]:
		return 0
	case attenuationDB <= c.AttenuationThresholds[1]:
		return 1
	default:
		return 2
	}
}
