package exposure

import (
	"testing"

	"cwatrace/internal/entime"
)

// buildEncounter derives the true RPI for tek at interval i, as a nearby
// phone would have received it.
func buildEncounter(t *testing.T, tek TEK, i entime.Interval, durMin, attDB int) Encounter {
	t.Helper()
	rpik, err := DeriveRPIK(tek)
	if err != nil {
		t.Fatal(err)
	}
	rpi, err := RPIAt(rpik, i)
	if err != nil {
		t.Fatal(err)
	}
	return Encounter{RPI: rpi, Interval: i, DurationMin: durMin, AttenuationDB: attDB}
}

func TestMatchFindsRealContact(t *testing.T) {
	infected := fixedTEK(0x77)
	contact := infected.RollingStart.Add(37)
	history := []Encounter{
		buildEncounter(t, infected, contact, 15, 48),
		// Unrelated noise from another device.
		buildEncounter(t, fixedTEK(0x88), contact, 5, 60),
	}
	m := NewMatcher(history)
	keys := []DiagnosisKey{{TEK: infected, TransmissionRiskLevel: 6}}
	got, err := m.Match(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d exposures, want 1", len(got))
	}
	if got[0].Interval != contact || got[0].DurationMin != 15 {
		t.Fatalf("wrong exposure matched: %+v", got[0])
	}
}

func TestMatchNoContactNoMatch(t *testing.T) {
	history := []Encounter{
		buildEncounter(t, fixedTEK(0x99), entime.IntervalOf(entime.AppRelease), 10, 50),
	}
	m := NewMatcher(history)
	keys := []DiagnosisKey{{TEK: fixedTEK(0xAA), TransmissionRiskLevel: 4}}
	got, err := m.Match(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("unexpected exposures: %+v", got)
	}
}

func TestMatchClockDriftTolerance(t *testing.T) {
	infected := fixedTEK(0xBB)
	derivedAt := infected.RollingStart.Add(50)
	rpik, err := DeriveRPIK(infected)
	if err != nil {
		t.Fatal(err)
	}
	rpi, err := RPIAt(rpik, derivedAt)
	if err != nil {
		t.Fatal(err)
	}
	keys := []DiagnosisKey{{TEK: infected, TransmissionRiskLevel: 5}}

	within := Encounter{RPI: rpi, Interval: derivedAt.Add(MatchTolerance), DurationMin: 10, AttenuationDB: 50}
	m := NewMatcher([]Encounter{within})
	got, err := m.Match(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("drift within tolerance must match, got %d", len(got))
	}

	// 20 intervals beyond tolerance: the RPI exists in the index but the
	// timing is implausible. (Offset chosen so the shifted observation
	// still falls outside tolerance of every interval of the key.)
	beyond := Encounter{RPI: rpi, Interval: derivedAt.Add(MatchTolerance + 200), DurationMin: 10, AttenuationDB: 50}
	m = NewMatcher([]Encounter{beyond})
	got, err = m.Match(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("drift beyond tolerance must not match, got %d", len(got))
	}
}

func TestMatcherHistorySize(t *testing.T) {
	e1 := buildEncounter(t, fixedTEK(0xCC), 2_000_010, 5, 50)
	m := NewMatcher([]Encounter{e1, e1})
	if m.HistorySize() != 1 {
		t.Fatalf("HistorySize = %d, want 1 (deduplicated by RPI)", m.HistorySize())
	}
}

func TestMatchMultipleSightingsSameRPI(t *testing.T) {
	infected := fixedTEK(0xDD)
	i := infected.RollingStart.Add(10)
	e := buildEncounter(t, infected, i, 5, 45)
	e2 := e
	e2.DurationMin = 8
	m := NewMatcher([]Encounter{e, e2})
	got, err := m.Match([]DiagnosisKey{{TEK: infected, TransmissionRiskLevel: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("both sightings must match, got %d", len(got))
	}
}

func TestMatchShortRollingPeriod(t *testing.T) {
	// A same-day upload reports a short rolling period; intervals past it
	// must not be derived.
	infected := fixedTEK(0xEE)
	infected.RollingPeriod = 36 // only 6 hours reported
	late := infected.RollingStart.Add(100)
	full := fixedTEK(0xEE) // same key material, full period
	enc := buildEncounter(t, full, late, 10, 50)
	m := NewMatcher([]Encounter{enc})
	got, err := m.Match([]DiagnosisKey{{TEK: infected, TransmissionRiskLevel: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("interval beyond reported rolling period must not match, got %d", len(got))
	}
}
