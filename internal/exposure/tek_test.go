package exposure

import (
	"math/rand"
	"testing"

	"cwatrace/internal/entime"
)

// testRNG returns a deterministic randomness source for reproducible tests.
func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestActiveKeyStablePerPeriod(t *testing.T) {
	s := NewKeyStore(testRNG(1))
	i := entime.Interval(2_650_000).KeyPeriodStart()
	k1, err := s.ActiveKey(i)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := s.ActiveKey(i.Add(entime.EKRollingPeriod - 1))
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("same rolling period must yield same TEK")
	}
	k3, err := s.ActiveKey(i.Add(entime.EKRollingPeriod))
	if err != nil {
		t.Fatal(err)
	}
	if k3.Key == k1.Key {
		t.Fatal("next rolling period must yield a fresh TEK")
	}
	if k3.RollingStart != i.Add(entime.EKRollingPeriod) {
		t.Fatalf("rolling start = %d", k3.RollingStart)
	}
}

func TestKeyStorePrunes(t *testing.T) {
	s := NewKeyStore(testRNG(2))
	base := entime.IntervalOf(entime.StudyStart).KeyPeriodStart()
	for day := 0; day < 30; day++ {
		if _, err := s.ActiveKey(base.Add(day * entime.EKRollingPeriod)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() > StorageDays+1 {
		t.Fatalf("store retains %d keys, want <= %d", s.Len(), StorageDays+1)
	}
}

func TestKeysSince(t *testing.T) {
	s := NewKeyStore(testRNG(3))
	base := entime.IntervalOf(entime.StudyStart).KeyPeriodStart()
	for day := 0; day < 10; day++ {
		if _, err := s.ActiveKey(base.Add(day * entime.EKRollingPeriod)); err != nil {
			t.Fatal(err)
		}
	}
	now := base.Add(9 * entime.EKRollingPeriod)
	// Last 5 days: keys whose validity overlaps [now-5d, now].
	got := s.KeysSince(now.Add(-5*entime.EKRollingPeriod), now)
	if len(got) != 6 {
		t.Fatalf("KeysSince returned %d keys, want 6", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].RollingStart <= got[i-1].RollingStart {
			t.Fatal("keys must be ordered oldest first")
		}
	}
}

func TestTEKCovers(t *testing.T) {
	k := TEK{RollingStart: 1440, RollingPeriod: entime.EKRollingPeriod}
	if !k.Covers(1440) || !k.Covers(1440+entime.EKRollingPeriod-1) {
		t.Fatal("key must cover its own period")
	}
	if k.Covers(1439) || k.Covers(1440+entime.EKRollingPeriod) {
		t.Fatal("key must not cover outside its period")
	}
}

func TestTEKStringRedacts(t *testing.T) {
	k := TEK{RollingStart: 0, RollingPeriod: 144}
	for i := range k.Key {
		k.Key[i] = 0xAB
	}
	s := k.String()
	if len(s) == 0 {
		t.Fatal("empty String()")
	}
	// Only the first 4 bytes (8 hex chars) may appear.
	if want, full := "abababab", "ababababab"; !contains(s, want) || contains(s, full) {
		t.Fatalf("String %q must contain %q but not %q", s, want, full)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestDiagnosisKeyValidate(t *testing.T) {
	good := DiagnosisKey{
		TEK:                   TEK{RollingStart: 144 * 100, RollingPeriod: 144},
		TransmissionRiskLevel: 5,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid key rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*DiagnosisKey)
	}{
		{"unaligned start", func(d *DiagnosisKey) { d.RollingStart = 7 }},
		{"zero period", func(d *DiagnosisKey) { d.RollingPeriod = 0 }},
		{"overlong period", func(d *DiagnosisKey) { d.RollingPeriod = 145 }},
		{"risk too low", func(d *DiagnosisKey) { d.TransmissionRiskLevel = 0 }},
		{"risk too high", func(d *DiagnosisKey) { d.TransmissionRiskLevel = 9 }},
	}
	for _, c := range cases {
		d := good
		c.mut(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}
