package exposure

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
)

// HKDF implements the HMAC-based key derivation function of RFC 5869 with
// SHA-256, the construction the Exposure Notification specification uses to
// derive the rolling proximity identifier key and the associated encrypted
// metadata key from a temporary exposure key.
//
// salt may be nil (the GAEN key schedule uses an unsalted HKDF); info
// domain-separates the derived keys; length is the number of output bytes.
func HKDF(secret, salt, info []byte, length int) ([]byte, error) {
	if length <= 0 {
		return nil, errors.New("exposure: hkdf length must be positive")
	}
	hashLen := sha256.Size
	if length > 255*hashLen {
		return nil, errors.New("exposure: hkdf length too large")
	}

	// Extract: PRK = HMAC-Hash(salt, IKM). An absent salt is a string of
	// zeros of hash length per the RFC.
	if salt == nil {
		salt = make([]byte, hashLen)
	}
	ext := hmac.New(sha256.New, salt)
	ext.Write(secret)
	prk := ext.Sum(nil)

	// Expand: T(i) = HMAC-Hash(PRK, T(i-1) | info | i).
	out := make([]byte, 0, length)
	var prev []byte
	for i := byte(1); len(out) < length; i++ {
		exp := hmac.New(sha256.New, prk)
		exp.Write(prev)
		exp.Write(info)
		exp.Write([]byte{i})
		prev = exp.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length], nil
}
