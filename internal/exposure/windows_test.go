package exposure

import (
	"math"
	"testing"

	"cwatrace/internal/entime"
)

func day0() entime.Interval {
	return entime.IntervalOf(entime.AppRelease).KeyPeriodStart()
}

func TestDefaultV2ConfigValid(t *testing.T) {
	if err := DefaultV2Config().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestV2ConfigValidate(t *testing.T) {
	c := DefaultV2Config()
	c.AttenuationBucketEdges = [3]int{70, 60, 50}
	if err := c.Validate(); err == nil {
		t.Error("misordered edges must fail")
	}
	c = DefaultV2Config()
	c.BucketWeights[2] = -1
	if err := c.Validate(); err == nil {
		t.Error("negative weight must fail")
	}
	c = DefaultV2Config()
	c.HighRiskMinutes = c.LowRiskMinutes - 1
	if err := c.Validate(); err == nil {
		t.Error("high < low must fail")
	}
	c = DefaultV2Config()
	c.LowRiskMinutes = 0
	if err := c.Validate(); err == nil {
		t.Error("zero low threshold must fail")
	}
}

func TestWeightedMinutesBuckets(t *testing.T) {
	c := DefaultV2Config()
	mk := func(att, seconds int) ExposureWindow {
		return ExposureWindow{
			Day:            day0(),
			Infectiousness: InfectiousnessHigh, // weight 1.0
			ReportType:     ReportConfirmedTest,
			Scans:          []ScanInstance{{TypicalAttenuationDB: att, Seconds: seconds}},
		}
	}
	// Immediate range: full weight.
	if got := c.WeightedMinutes(mk(50, 600)); math.Abs(got-10) > 1e-9 {
		t.Fatalf("immediate 10min = %f", got)
	}
	// Medium range: half weight.
	if got := c.WeightedMinutes(mk(70, 600)); math.Abs(got-5) > 1e-9 {
		t.Fatalf("medium 10min = %f", got)
	}
	// Other range: zero.
	if got := c.WeightedMinutes(mk(90, 600)); got != 0 {
		t.Fatalf("far contact = %f", got)
	}
}

func TestWeightedMinutesModifiers(t *testing.T) {
	c := DefaultV2Config()
	base := ExposureWindow{
		Day:            day0(),
		Infectiousness: InfectiousnessHigh,
		ReportType:     ReportConfirmedTest,
		Scans:          []ScanInstance{{TypicalAttenuationDB: 50, Seconds: 600}},
	}
	std := base
	std.Infectiousness = InfectiousnessStandard
	if c.WeightedMinutes(std) >= c.WeightedMinutes(base) {
		t.Fatal("standard infectiousness must weigh less than high")
	}
	self := base
	self.ReportType = ReportSelfReport
	if c.WeightedMinutes(self) >= c.WeightedMinutes(base) {
		t.Fatal("self report must weigh less than confirmed test")
	}
}

func TestAggregateDaysThresholds(t *testing.T) {
	c := DefaultV2Config()
	scan := func(sec int) []ScanInstance {
		return []ScanInstance{{TypicalAttenuationDB: 50, Seconds: sec}}
	}
	windows := []ExposureWindow{
		// Day 0: 20 close minutes -> high.
		{Day: day0(), Infectiousness: InfectiousnessHigh, Scans: scan(1200)},
		// Day 1: two windows of 4 minutes each -> 8 min -> low.
		{Day: day0().Add(entime.EKRollingPeriod), Infectiousness: InfectiousnessHigh, Scans: scan(240)},
		{Day: day0().Add(entime.EKRollingPeriod), Infectiousness: InfectiousnessHigh, Scans: scan(240)},
		// Day 2: 2 minutes -> none.
		{Day: day0().Add(2 * entime.EKRollingPeriod), Infectiousness: InfectiousnessHigh, Scans: scan(120)},
	}
	days := c.AggregateDays(windows)
	if len(days) != 3 {
		t.Fatalf("days = %d", len(days))
	}
	if days[0].Level != RiskHigh || days[1].Level != RiskLow || days[2].Level != RiskNone {
		t.Fatalf("levels = %v %v %v", days[0].Level, days[1].Level, days[2].Level)
	}
	if days[0].Day >= days[1].Day || days[1].Day >= days[2].Day {
		t.Fatal("days not chronological")
	}
	if MaxLevel(days) != RiskHigh {
		t.Fatalf("max level = %v", MaxLevel(days))
	}
	if MaxLevel(nil) != RiskNone {
		t.Fatal("empty max level must be none")
	}
}

func TestWindowsFromExposuresGrouping(t *testing.T) {
	tekA := fixedTEK(0x01)
	tekB := fixedTEK(0x02)
	d0 := day0()
	exposures := []Exposure{
		{Encounter: Encounter{Interval: d0.Add(10), DurationMin: 10, AttenuationDB: 50},
			Key: DiagnosisKey{TEK: tekA, TransmissionRiskLevel: 7}},
		{Encounter: Encounter{Interval: d0.Add(50), DurationMin: 5, AttenuationDB: 60},
			Key: DiagnosisKey{TEK: tekA, TransmissionRiskLevel: 7}},
		{Encounter: Encounter{Interval: d0.Add(20), DurationMin: 8, AttenuationDB: 45},
			Key: DiagnosisKey{TEK: tekB, TransmissionRiskLevel: 3}},
	}
	windows := WindowsFromExposures(exposures)
	if len(windows) != 2 {
		t.Fatalf("windows = %d, want 2 (grouped per key+day)", len(windows))
	}
	if len(windows[0].Scans) != 2 || len(windows[1].Scans) != 1 {
		t.Fatalf("scan counts = %d, %d", len(windows[0].Scans), len(windows[1].Scans))
	}
	if windows[0].Infectiousness != InfectiousnessHigh {
		t.Fatal("risk level 7 must map to high infectiousness")
	}
	if windows[1].Infectiousness != InfectiousnessStandard {
		t.Fatal("risk level 3 must map to standard infectiousness")
	}
}

// TestV1VersusV2OnSameContact: both scoring modes agree on the verdict for
// a clear-cut close long contact and a clear-cut negligible one.
func TestV1VersusV2OnSameContact(t *testing.T) {
	infected := fixedTEK(0x33)
	strong := []Exposure{{
		Encounter: Encounter{Interval: infected.RollingStart.Add(30), DurationMin: 25, AttenuationDB: 48},
		Key:       DiagnosisKey{TEK: infected, TransmissionRiskLevel: 6},
	}}
	weak := []Exposure{{
		Encounter: Encounter{Interval: infected.RollingStart.Add(30), DurationMin: 2, AttenuationDB: 85},
		Key:       DiagnosisKey{TEK: infected, TransmissionRiskLevel: 2},
	}}

	v1 := DefaultRiskConfig()
	v2 := DefaultV2Config()

	if !v1.Score(strong).Elevated {
		t.Fatal("v1 must elevate the strong contact")
	}
	if MaxLevel(v2.AggregateDays(WindowsFromExposures(strong))) != RiskHigh {
		t.Fatal("v2 must mark the strong contact high")
	}
	if v1.Score(weak).Elevated {
		t.Fatal("v1 must not elevate the weak contact")
	}
	if MaxLevel(v2.AggregateDays(WindowsFromExposures(weak))) != RiskNone {
		t.Fatal("v2 must ignore the weak contact")
	}
}

func TestDayRiskLevelString(t *testing.T) {
	if RiskNone.String() != "none" || RiskLow.String() != "low" || RiskHigh.String() != "high" {
		t.Fatal("level strings wrong")
	}
}
