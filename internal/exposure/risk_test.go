package exposure

import (
	"testing"

	"cwatrace/internal/entime"
)

func exposureWith(dur, att int, lvl uint8, i entime.Interval) Exposure {
	return Exposure{
		Encounter: Encounter{Interval: i, DurationMin: dur, AttenuationDB: att},
		Key:       DiagnosisKey{TransmissionRiskLevel: lvl},
	}
}

func TestDefaultRiskConfigValid(t *testing.T) {
	if err := DefaultRiskConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRiskConfigValidate(t *testing.T) {
	c := DefaultRiskConfig()
	c.AttenuationThresholds = [2]int{80, 50}
	if err := c.Validate(); err == nil {
		t.Error("misordered thresholds must fail")
	}
	c = DefaultRiskConfig()
	c.BucketWeights[1] = -1
	if err := c.Validate(); err == nil {
		t.Error("negative bucket weight must fail")
	}
	c = DefaultRiskConfig()
	c.TransmissionWeights[0] = -0.5
	if err := c.Validate(); err == nil {
		t.Error("negative transmission weight must fail")
	}
	c = DefaultRiskConfig()
	c.MinutesSignificant = 0
	if err := c.Validate(); err == nil {
		t.Error("zero MinutesSignificant must fail")
	}
}

func TestScoreCloseLongContactElevated(t *testing.T) {
	c := DefaultRiskConfig()
	res := c.Score([]Exposure{exposureWith(25, 45, 5, 100)})
	if !res.Elevated {
		t.Fatalf("25 close minutes at full transmission weight must be elevated (score %g)", res.Score)
	}
	if res.Exposures != 1 {
		t.Fatalf("Exposures = %d", res.Exposures)
	}
}

func TestScoreFarContactNotElevated(t *testing.T) {
	c := DefaultRiskConfig()
	res := c.Score([]Exposure{exposureWith(30, 80, 8, 100)})
	if res.Elevated || res.Score != 0 {
		t.Fatalf("far-bucket contact must score 0, got %g", res.Score)
	}
	if res.Exposures != 0 {
		t.Fatal("zero-weight exposures must not count")
	}
}

func TestScoreBriefContactNotElevated(t *testing.T) {
	c := DefaultRiskConfig()
	res := c.Score([]Exposure{exposureWith(5, 45, 5, 100)})
	if res.Elevated {
		t.Fatalf("5 minutes must stay below threshold, score %g", res.Score)
	}
}

func TestScoreDurationCap(t *testing.T) {
	c := DefaultRiskConfig()
	capped := c.Score([]Exposure{exposureWith(c.MinutesSignificant, 45, 5, 100)})
	over := c.Score([]Exposure{exposureWith(c.MinutesSignificant*4, 45, 5, 100)})
	if capped.Score != over.Score {
		t.Fatalf("duration must cap at MinutesSignificant: %g vs %g", capped.Score, over.Score)
	}
}

func TestScoreAccumulatesAndTracksMostRecent(t *testing.T) {
	c := DefaultRiskConfig()
	res := c.Score([]Exposure{
		exposureWith(10, 45, 5, 100),
		exposureWith(10, 45, 5, 300),
		exposureWith(10, 45, 5, 200),
	})
	if res.Exposures != 3 {
		t.Fatalf("Exposures = %d, want 3", res.Exposures)
	}
	if res.MostRecent != 300 {
		t.Fatalf("MostRecent = %d, want 300", res.MostRecent)
	}
	single := c.Score([]Exposure{exposureWith(10, 45, 5, 100)})
	if res.Score <= single.Score {
		t.Fatal("multiple exposures must accumulate")
	}
}

func TestScoreTransmissionWeighting(t *testing.T) {
	c := DefaultRiskConfig()
	low := c.Score([]Exposure{exposureWith(20, 45, 1, 100)})
	high := c.Score([]Exposure{exposureWith(20, 45, 5, 100)})
	if low.Score >= high.Score {
		t.Fatalf("higher transmission risk must weigh more: %g vs %g", low.Score, high.Score)
	}
}

func TestScoreMidBucketHalfWeight(t *testing.T) {
	c := DefaultRiskConfig()
	close := c.Score([]Exposure{exposureWith(20, c.AttenuationThresholds[0], 5, 100)})
	mid := c.Score([]Exposure{exposureWith(20, c.AttenuationThresholds[1], 5, 100)})
	if mid.Score*2 != close.Score {
		t.Fatalf("mid bucket must weigh half: close %g, mid %g", close.Score, mid.Score)
	}
}

func TestScoreEmpty(t *testing.T) {
	res := DefaultRiskConfig().Score(nil)
	if res.Elevated || res.Score != 0 || res.Exposures != 0 {
		t.Fatalf("empty exposure list must be zero result: %+v", res)
	}
}

func TestScoreOutOfRangeRiskLevelDefaultsToFullWeight(t *testing.T) {
	c := DefaultRiskConfig()
	res := c.Score([]Exposure{exposureWith(20, 45, 0, 100)})
	want := c.Score([]Exposure{exposureWith(20, 45, 5, 100)})
	if res.Score != want.Score {
		t.Fatalf("invalid level must default to weight 1.0: %g vs %g", res.Score, want.Score)
	}
}
