// Package exposure implements the cryptography and matching logic of the
// Apple/Google Exposure Notification framework (GAEN v1.2) that the
// Corona-Warn-App is built on: temporary exposure keys, rolling proximity
// identifiers, associated encrypted metadata, diagnosis-key matching, and
// risk scoring.
//
// The paper under reproduction measures the *traffic* this protocol causes —
// daily diagnosis-key downloads and infrequent uploads — so the protocol is
// implemented in full rather than stubbed: package sizes, upload payloads
// and match outcomes in the simulation all derive from these primitives.
package exposure

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"cwatrace/internal/entime"
)

// KeyLength is the size of a temporary exposure key in bytes.
const KeyLength = 16

// StorageDays is how long phones retain keys and encounter history; the CWA
// informs users of exposure to a person tested positive "within the past 14
// days".
const StorageDays = 14

// TEK is a temporary exposure key: KeyLength random bytes valid for one
// rolling period (24 hours) starting at RollingStart.
type TEK struct {
	Key          [KeyLength]byte
	RollingStart entime.Interval
	// RollingPeriod is the number of 10-minute intervals the key is valid
	// for; entime.EKRollingPeriod (144) except for same-day uploads where
	// a shorter period is reported.
	RollingPeriod uint16
}

// Covers reports whether the key is valid at interval i.
func (k TEK) Covers(i entime.Interval) bool {
	return i >= k.RollingStart && i < k.RollingStart.Add(int(k.RollingPeriod))
}

// String renders the key for debugging; only a short key prefix is shown
// because full keys identify infected users once uploaded.
func (k TEK) String() string {
	return fmt.Sprintf("tek(%s… start=%d period=%d)",
		hex.EncodeToString(k.Key[:4]), k.RollingStart, k.RollingPeriod)
}

// KeyStore is the per-device rolling store of temporary exposure keys. It
// generates a fresh key when a new rolling period begins and prunes keys
// older than StorageDays. It is not safe for concurrent use; each simulated
// device owns one store.
type KeyStore struct {
	rng  io.Reader
	keys []TEK
}

// NewKeyStore creates a KeyStore drawing randomness from rng; a nil rng
// selects crypto/rand. The simulator passes a seeded deterministic reader so
// runs are reproducible.
func NewKeyStore(rng io.Reader) *KeyStore {
	if rng == nil {
		rng = rand.Reader
	}
	return &KeyStore{rng: rng}
}

// ActiveKey returns the TEK covering interval i, generating it (and any
// bookkeeping pruning) as needed. The error path only triggers when the
// randomness source fails.
func (s *KeyStore) ActiveKey(i entime.Interval) (TEK, error) {
	start := i.KeyPeriodStart()
	for idx := len(s.keys) - 1; idx >= 0; idx-- {
		if s.keys[idx].RollingStart == start {
			return s.keys[idx], nil
		}
	}
	var k TEK
	if _, err := io.ReadFull(s.rng, k.Key[:]); err != nil {
		return TEK{}, fmt.Errorf("exposure: generating TEK: %w", err)
	}
	k.RollingStart = start
	k.RollingPeriod = entime.EKRollingPeriod
	s.keys = append(s.keys, k)
	s.prune(i)
	return k, nil
}

// prune drops keys whose validity ended more than StorageDays before now.
func (s *KeyStore) prune(now entime.Interval) {
	horizon := now.Add(-StorageDays * entime.EKRollingPeriod)
	kept := s.keys[:0]
	for _, k := range s.keys {
		if k.RollingStart.Add(int(k.RollingPeriod)) > horizon {
			kept = append(kept, k)
		}
	}
	s.keys = kept
}

// KeysSince returns the stored keys whose validity overlaps
// [from, now], oldest first — the set a user shares on diagnosis. Keys are
// copied so callers cannot mutate store state.
func (s *KeyStore) KeysSince(from, now entime.Interval) []TEK {
	var out []TEK
	for _, k := range s.keys {
		end := k.RollingStart.Add(int(k.RollingPeriod))
		if end > from && k.RollingStart <= now {
			out = append(out, k)
		}
	}
	return out
}

// Len reports the number of retained keys.
func (s *KeyStore) Len() int { return len(s.keys) }

// DiagnosisKey is a TEK shared by a user diagnosed with COVID-19, enriched
// with the transmission risk metadata the CWA attaches on upload.
type DiagnosisKey struct {
	TEK
	// TransmissionRiskLevel in 1..8 encodes how infectious the user
	// presumably was while the key was active.
	TransmissionRiskLevel uint8
}

// Validate checks the structural invariants enforced by the submission
// service: aligned rolling start, sane rolling period and risk level.
func (d DiagnosisKey) Validate() error {
	if d.RollingStart%entime.EKRollingPeriod != 0 {
		return errors.New("exposure: diagnosis key rolling start not period-aligned")
	}
	if d.RollingPeriod == 0 || d.RollingPeriod > entime.EKRollingPeriod {
		return fmt.Errorf("exposure: invalid rolling period %d", d.RollingPeriod)
	}
	if d.TransmissionRiskLevel < 1 || d.TransmissionRiskLevel > 8 {
		return fmt.Errorf("exposure: invalid transmission risk level %d", d.TransmissionRiskLevel)
	}
	return nil
}
