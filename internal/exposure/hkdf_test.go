package exposure

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// RFC 5869 Appendix A test vectors for HKDF-SHA256.
func TestHKDFRFC5869Case1(t *testing.T) {
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	salt, _ := hex.DecodeString("000102030405060708090a0b0c")
	info, _ := hex.DecodeString("f0f1f2f3f4f5f6f7f8f9")
	want, _ := hex.DecodeString(
		"3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")
	got, err := HKDF(ikm, salt, info, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("HKDF = %x, want %x", got, want)
	}
}

func TestHKDFRFC5869Case3NoSaltNoInfo(t *testing.T) {
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	want, _ := hex.DecodeString(
		"8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")
	got, err := HKDF(ikm, nil, nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("HKDF = %x, want %x", got, want)
	}
}

func TestHKDFRFC5869Case2LongInputs(t *testing.T) {
	ikm := make([]byte, 80)
	for i := range ikm {
		ikm[i] = byte(i)
	}
	salt := make([]byte, 80)
	for i := range salt {
		salt[i] = byte(0x60 + i)
	}
	info := make([]byte, 80)
	for i := range info {
		info[i] = byte(0xb0 + i)
	}
	want, _ := hex.DecodeString(
		"b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71cc30c58179ec3e87c14c01d5c1f3434f1d87")
	got, err := HKDF(ikm, salt, info, 82)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("HKDF = %x, want %x", got, want)
	}
}

func TestHKDFErrors(t *testing.T) {
	if _, err := HKDF([]byte{1}, nil, nil, 0); err == nil {
		t.Error("zero length must error")
	}
	if _, err := HKDF([]byte{1}, nil, nil, -4); err == nil {
		t.Error("negative length must error")
	}
	if _, err := HKDF([]byte{1}, nil, nil, 255*32+1); err == nil {
		t.Error("overlong output must error")
	}
}

func TestHKDFDomainSeparation(t *testing.T) {
	secret := []byte("temporary exposure key material")
	a, err := HKDF(secret, nil, []byte(rpikInfo), 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HKDF(secret, nil, []byte(aemkInfo), 16)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("different info strings must derive different keys")
	}
}
