package exposure

import (
	"crypto/aes"
	"encoding/binary"
	"fmt"

	"cwatrace/internal/entime"
)

// RPI is a rolling proximity identifier: the pseudonymous 16-byte value a
// phone broadcasts over Bluetooth Low Energy, changed every interval. It is
// comparable, so it can key maps in the matcher.
type RPI [16]byte

// Metadata is the 4-byte associated metadata broadcast alongside the RPI:
// protocol version and calibrated transmit power, which receivers combine
// with RSSI into an attenuation estimate.
type Metadata [4]byte

const (
	rpikInfo = "EN-RPIK"
	aemkInfo = "EN-AEMK"
	rpiPad   = "EN-RPI"
)

// DeriveRPIK derives the rolling proximity identifier key from a TEK:
// RPIK = HKDF(tek, NULL, UTF8("EN-RPIK"), 16).
func DeriveRPIK(tek TEK) ([16]byte, error) {
	var out [16]byte
	b, err := HKDF(tek.Key[:], nil, []byte(rpikInfo), 16)
	if err != nil {
		return out, err
	}
	copy(out[:], b)
	return out, nil
}

// DeriveAEMK derives the associated encrypted metadata key from a TEK:
// AEMK = HKDF(tek, NULL, UTF8("EN-AEMK"), 16).
func DeriveAEMK(tek TEK) ([16]byte, error) {
	var out [16]byte
	b, err := HKDF(tek.Key[:], nil, []byte(aemkInfo), 16)
	if err != nil {
		return out, err
	}
	copy(out[:], b)
	return out, nil
}

// RPIAt computes the rolling proximity identifier broadcast at interval i
// under the given RPIK: RPI = AES128(RPIK, "EN-RPI" ‖ 0x000000000000 ‖
// ENIN_le(i)).
func RPIAt(rpik [16]byte, i entime.Interval) (RPI, error) {
	var padded [16]byte
	copy(padded[:], rpiPad)
	binary.LittleEndian.PutUint32(padded[12:], uint32(i))

	block, err := aes.NewCipher(rpik[:])
	if err != nil {
		return RPI{}, fmt.Errorf("exposure: rpi cipher: %w", err)
	}
	var out RPI
	block.Encrypt(out[:], padded[:])
	return out, nil
}

// EncryptMetadata encrypts the 4 metadata bytes with AES-CTR keyed by the
// AEMK using the RPI as the initial counter block, per the specification.
// The operation is its own inverse, so it also decrypts.
func EncryptMetadata(aemk [16]byte, rpi RPI, meta Metadata) (Metadata, error) {
	block, err := aes.NewCipher(aemk[:])
	if err != nil {
		return Metadata{}, fmt.Errorf("exposure: aem cipher: %w", err)
	}
	var stream [16]byte
	block.Encrypt(stream[:], rpi[:])
	var out Metadata
	for i := 0; i < len(meta); i++ {
		out[i] = meta[i] ^ stream[i]
	}
	return out, nil
}

// Broadcaster produces the BLE payload of a single device for a given
// interval: RPI plus encrypted metadata. It caches derived keys per TEK so a
// device advertising every interval does only one HKDF per day.
type Broadcaster struct {
	store *KeyStore

	cachedStart  uint32
	cachedValid  bool
	cachedRPIK   [16]byte
	cachedAEMK   [16]byte
	transmitMeta Metadata
}

// NewBroadcaster creates a Broadcaster over the device's key store. meta is
// the plaintext metadata (version + TX power) the device advertises.
func NewBroadcaster(store *KeyStore, meta Metadata) *Broadcaster {
	return &Broadcaster{store: store, transmitMeta: meta}
}

// Payload returns the advertisement payload for interval i.
func (b *Broadcaster) Payload(i entime.Interval) (RPI, Metadata, error) {
	tek, err := b.store.ActiveKey(i)
	if err != nil {
		return RPI{}, Metadata{}, err
	}
	if !b.cachedValid || b.cachedStart != uint32(tek.RollingStart) {
		rpik, err := DeriveRPIK(tek)
		if err != nil {
			return RPI{}, Metadata{}, err
		}
		aemk, err := DeriveAEMK(tek)
		if err != nil {
			return RPI{}, Metadata{}, err
		}
		b.cachedRPIK, b.cachedAEMK = rpik, aemk
		b.cachedStart = uint32(tek.RollingStart)
		b.cachedValid = true
	}
	rpi, err := RPIAt(b.cachedRPIK, i)
	if err != nil {
		return RPI{}, Metadata{}, err
	}
	aem, err := EncryptMetadata(b.cachedAEMK, rpi, b.transmitMeta)
	if err != nil {
		return RPI{}, Metadata{}, err
	}
	return rpi, aem, nil
}
