package sketch

import (
	"bytes"
	"testing"
)

// FuzzSketchDecode pins the codec contract on arbitrary bytes: decoding
// never panics, a successful decode re-encodes to the same bytes
// (canonical form), and a flipped bit in a valid frame is rejected.
func FuzzSketchDecode(f *testing.F) {
	h := NewHLL()
	h.Add("10.0.0.0/24")
	h.Add("10.0.1.0/24")
	f.Add(h.AppendBinary(nil))
	q := NewQuantile()
	q.Add(1, 3)
	q.Add(500, 2)
	f.Add(q.AppendBinary(nil))
	f.Add([]byte{})
	f.Add([]byte{codecVersion, kindHLL, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		if h, n, err := DecodeHLL(data); err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("DecodeHLL consumed %d of %d bytes", n, len(data))
			}
			re := h.AppendBinary(nil)
			if !bytes.Equal(re, data[:n]) {
				t.Fatal("HLL decode→encode is not canonical")
			}
		}
		if q, n, err := DecodeQuantile(data); err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("DecodeQuantile consumed %d of %d bytes", n, len(data))
			}
			re := q.AppendBinary(nil)
			if !bytes.Equal(re, data[:n]) {
				t.Fatal("quantile decode→encode is not canonical")
			}
		}
	})
}
