// Package sketch holds the bounded-memory estimators the long-horizon
// history tiers carry: a HyperLogLog counting distinct client prefixes
// and a fixed-bucket quantile histogram summarizing per-prefix presence
// hours (the paper's T2 persistence metric). Both exist because the
// exact maps they replace grow without bound over a months-long capture
// — a year of churning /24s cannot ride along in every downsampled
// frame, but a 4 KiB register file can.
//
// Design rules, in the order they matter:
//
//   - Merges are associative, commutative and idempotent-safe at the
//     byte level: HLL merge is register-wise max, quantile merge is
//     bucket-wise add, so merge(a, merge(b, c)) and merge(merge(a, b), c)
//     marshal to identical bytes. streaming.Merge and the cluster
//     router's scatter-gather both fold sketches in whatever order
//     shards answer; associativity is what makes the fold order
//     invisible.
//   - Encodings are versioned, CRC-framed and deterministic (see
//     codec.go). A sketch travels inside tier frames on disk and inside
//     cluster responses on the wire; both ends must reject corruption
//     rather than merge garbage into an otherwise healthy estimate.
//   - Error bounds are pinned by tests, not prose: the HLL's relative
//     error (~1.04/sqrt(4096) = 1.6% typical) and the quantile
//     histogram's bucket-quantization error are compared against exact
//     batch recomputation on scenario-generated captures.
package sketch

import (
	"hash/fnv"
	"math"
	"math/bits"
)

// hllP is the HLL precision: 2^hllP registers. 12 gives 4096 registers
// (4 KiB per sketch) and a typical relative error of 1.04/sqrt(4096) =
// 1.6% — small enough that a year-long distinct-prefix estimate stays
// inside the test-pinned 5% bound with margin, small enough to carry in
// every tier frame.
const hllP = 12

// hllM is the register count.
const hllM = 1 << hllP

// HLL is a HyperLogLog cardinality estimator over 64-bit hashes. The
// zero value is an empty sketch, ready to use.
type HLL struct {
	reg [hllM]uint8
}

// NewHLL builds an empty sketch.
func NewHLL() *HLL { return &HLL{} }

// HashString hashes an item into the 64-bit space AddHash consumes.
// FNV-1a alone clusters in the low bits for short similar strings (every
// client prefix differs in a handful of characters), so the finalizer of
// splitmix64 scrambles it; the composition is fixed — it is part of the
// sketch's deterministic identity across processes and releases.
func HashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// AddHash folds one hashed item into the sketch.
func (h *HLL) AddHash(v uint64) {
	idx := v >> (64 - hllP)
	// Rank of the first set bit in the remaining 64-p bits, 1-based;
	// all-zero remainder ranks one past the end.
	rank := uint8(bits.LeadingZeros64(v<<hllP|1<<(hllP-1))) + 1
	if rank > h.reg[idx] {
		h.reg[idx] = rank
	}
}

// Add folds one string item into the sketch via HashString.
func (h *HLL) Add(s string) { h.AddHash(HashString(s)) }

// Merge folds other into h (register-wise max). Merging is associative,
// commutative and idempotent, so fold order never changes the result.
func (h *HLL) Merge(other *HLL) {
	if other == nil {
		return
	}
	for i, r := range other.reg {
		if r > h.reg[i] {
			h.reg[i] = r
		}
	}
}

// Estimate returns the estimated distinct count: the standard HLL
// harmonic-mean estimator with the linear-counting correction for the
// small range, where the raw estimator is biased.
func (h *HLL) Estimate() uint64 {
	var (
		sum   float64
		zeros int
	)
	for _, r := range h.reg {
		sum += math.Ldexp(1, -int(r))
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/float64(hllM))
	raw := alpha * hllM * hllM / sum
	if raw <= 2.5*hllM && zeros > 0 {
		raw = hllM * math.Log(float64(hllM)/float64(zeros))
	}
	return uint64(raw + 0.5)
}

// Empty reports whether the sketch has seen no items.
func (h *HLL) Empty() bool {
	for _, r := range h.reg {
		if r != 0 {
			return false
		}
	}
	return true
}
