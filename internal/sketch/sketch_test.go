package sketch

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"cwatrace/internal/streaming"
)

// enc marshals any sketch for bitwise comparison.
func enc(t *testing.T, m interface{ MarshalBinary() ([]byte, error) }) []byte {
	t.Helper()
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestHLLMergeAssociativity pins merge(a, merge(b, c)) ==
// merge(merge(a, b), c) bitwise, plus order invariance — the property
// streaming.Merge and the cluster scatter-gather rely on, since shards
// answer in arbitrary order.
func TestHLLMergeAssociativity(t *testing.T) {
	mk := func(seed int64, n int) *HLL {
		h := NewHLL()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			h.Add(fmt.Sprintf("10.%d.%d.0/24", rng.Intn(256), rng.Intn(256)))
		}
		return h
	}
	a, b, c := mk(1, 5000), mk(2, 3000), mk(3, 7000)

	left := NewHLL()
	left.Merge(a)
	ab := NewHLL()
	ab.Merge(b)
	ab.Merge(c)
	left.Merge(ab)

	right := NewHLL()
	right.Merge(a)
	right.Merge(b)
	right.Merge(c)

	if !bytes.Equal(enc(t, left), enc(t, right)) {
		t.Fatal("HLL merge is not associative bitwise")
	}

	rev := NewHLL()
	rev.Merge(c)
	rev.Merge(b)
	rev.Merge(a)
	if !bytes.Equal(enc(t, rev), enc(t, right)) {
		t.Fatal("HLL merge is not order-invariant bitwise")
	}

	// Idempotence: merging a sketch twice changes nothing (register max).
	twice := NewHLL()
	twice.Merge(a)
	twice.Merge(a)
	once := NewHLL()
	once.Merge(a)
	if !bytes.Equal(enc(t, twice), enc(t, once)) {
		t.Fatal("HLL merge is not idempotent")
	}
}

// TestQuantileMergeAssociativity is the quantile half of the bitwise
// associativity contract.
func TestQuantileMergeAssociativity(t *testing.T) {
	mk := func(seed int64, n int) *Quantile {
		q := NewQuantile()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			q.Add(uint64(rng.Intn(8760))+1, 1)
		}
		return q
	}
	a, b, c := mk(1, 4000), mk(2, 2000), mk(3, 6000)

	left := NewQuantile()
	left.Merge(a)
	bc := NewQuantile()
	bc.Merge(b)
	bc.Merge(c)
	left.Merge(bc)

	right := NewQuantile()
	right.Merge(a)
	right.Merge(b)
	right.Merge(c)

	if !bytes.Equal(enc(t, left), enc(t, right)) {
		t.Fatal("quantile merge is not associative bitwise")
	}

	rev := NewQuantile()
	rev.Merge(c)
	rev.Merge(b)
	rev.Merge(a)
	if !bytes.Equal(enc(t, rev), enc(t, right)) {
		t.Fatal("quantile merge is not order-invariant bitwise")
	}
}

// TestHLLErrorBounds is the error table: estimated vs exact distinct
// counts across four decades of cardinality, each within the pinned 5%
// relative bound (typical HLL error at 4096 registers is 1.6%; 5%
// leaves deterministic-hash headroom without hiding a broken
// estimator).
func TestHLLErrorBounds(t *testing.T) {
	for _, n := range []int{100, 1000, 10000, 100000} {
		h := NewHLL()
		for i := 0; i < n; i++ {
			// Distinct /24-shaped strings, like the real prefix feed.
			h.Add(fmt.Sprintf("%d.%d.%d.0/24", i>>16&255, i>>8&255, i&255))
		}
		got := float64(h.Estimate())
		relErr := math.Abs(got-float64(n)) / float64(n)
		t.Logf("n=%6d estimate=%6.0f relative error=%.3f%%", n, got, 100*relErr)
		if relErr > 0.05 {
			t.Errorf("n=%d: estimate %0.f, relative error %.2f%% exceeds 5%%", n, got, 100*relErr)
		}
	}
}

// TestQuantileErrorBounds is the quantile error table against exact
// recomputation: values up to quantExactMax are exact, larger values
// are within the geometric bucket's midpoint bound (~4.5%; pinned at
// 6% for rank-boundary slack).
func TestQuantileErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var exact []uint64
	q := NewQuantile()
	for i := 0; i < 50000; i++ {
		// Presence-hours-shaped distribution: mostly short-lived
		// prefixes, a long tail of persistent ones (the paper's T2).
		v := uint64(math.Exp(rng.Float64()*math.Log(8760))) + 1
		exact = append(exact, v)
		q.Add(v, 1)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, p := range []float64{0.10, 0.25, 0.50, 0.90, 0.99} {
		rank := int(math.Ceil(p*float64(len(exact)))) - 1
		want := exact[rank]
		got := q.At(p)
		relErr := math.Abs(float64(got)-float64(want)) / float64(want)
		t.Logf("p=%.2f exact=%5d sketch=%5d relative error=%.3f%%", p, want, got, 100*relErr)
		if want <= quantExactMax {
			if got != want {
				t.Errorf("p=%.2f: exact-range value %d reported as %d", p, want, got)
			}
		} else if relErr > 0.06 {
			t.Errorf("p=%.2f: exact %d, sketch %d, relative error %.2f%% exceeds 6%%", p, want, got, 100*relErr)
		}
	}
	if q.Count() != uint64(len(exact)) {
		t.Errorf("count %d, want %d", q.Count(), len(exact))
	}
}

// TestQuantileBoundsCoverMaxWindow pins the bucket layout's reach to
// the real streaming plausibility cap, which the layout mirrors as a
// literal to avoid the import the other way.
func TestQuantileBoundsCoverMaxWindow(t *testing.T) {
	top := quantBounds[len(quantBounds)-1]
	if top < uint64(streaming.MaxWindowHours) {
		t.Fatalf("quantile top bound %d does not cover MaxWindowHours %d", top, streaming.MaxWindowHours)
	}
}

// TestSketchRoundTrip pins encode→decode for both kinds, and that a
// flipped payload byte is rejected rather than decoded.
func TestSketchRoundTrip(t *testing.T) {
	h := NewHLL()
	for i := 0; i < 1000; i++ {
		h.Add(fmt.Sprintf("host-%d", i))
	}
	hb := enc(t, h)
	h2, n, err := DecodeHLL(hb)
	if err != nil || n != len(hb) {
		t.Fatalf("DecodeHLL: n=%d err=%v", n, err)
	}
	if !bytes.Equal(enc(t, h2), hb) {
		t.Fatal("HLL round trip changed bytes")
	}

	q := NewQuantile()
	for i := uint64(1); i < 500; i++ {
		q.Add(i*3, i)
	}
	qb := enc(t, q)
	q2, n, err := DecodeQuantile(qb)
	if err != nil || n != len(qb) {
		t.Fatalf("DecodeQuantile: n=%d err=%v", n, err)
	}
	if !bytes.Equal(enc(t, q2), qb) {
		t.Fatal("quantile round trip changed bytes")
	}

	// Corrupt one payload byte: the CRC must reject it.
	for _, b := range [][]byte{hb, qb} {
		bad := append([]byte(nil), b...)
		bad[len(bad)-1] ^= 0x40
		if _, _, err := DecodeHLL(bad); err == nil {
			if _, _, err := DecodeQuantile(bad); err == nil {
				t.Fatal("corrupted sketch decoded cleanly")
			}
		}
	}
}

// TestHLLEstimateMonotoneSmall pins the linear-counting small range: a
// handful of distinct items estimates exactly.
func TestHLLEstimateMonotoneSmall(t *testing.T) {
	h := NewHLL()
	for i := 0; i < 10; i++ {
		h.Add(fmt.Sprintf("x%d", i))
		if est := h.Estimate(); est != uint64(i+1) {
			t.Fatalf("after %d adds: estimate %d", i+1, est)
		}
	}
}
