package sketch

// The sketch wire/disk codec. Every marshaled sketch is one versioned,
// CRC-framed record, mirroring the store's record framing so a reader
// can always tell a cleanly written sketch from bit rot:
//
//	+---------+------+-------------+-----------+
//	| version | kind | payload len | CRC-32    | payload ...
//	| 1 byte  | 1 B  | 4 bytes     | 4 (IEEE)  |
//	+---------+------+-------------+-----------+
//
// The CRC covers version, kind and payload. A corrupted sketch is
// rejected with ErrCorrupt — it must never be merged into a healthy
// estimate (registers full of garbage would silently inflate a
// cardinality forever, since HLL merge is max). Decoding arbitrary
// bytes never panics; the fuzz target pins that.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// codecVersion is the sketch framing version. Bumping it (a register
// count change, a bucket layout change) makes old bytes unreadable
// rather than misread.
const codecVersion = 1

// Sketch kinds.
const (
	kindHLL      byte = 1
	kindQuantile byte = 2
)

const headerLen = 1 + 1 + 4 + 4

// maxPayload bounds a sketch payload; anything larger is corruption,
// not an allocation request.
const maxPayload = 1 << 20

// ErrCorrupt marks framing or checksum damage in a marshaled sketch.
var ErrCorrupt = errors.New("sketch: corrupt")

// appendFrame wraps payload in the sketch framing.
func appendFrame(buf []byte, kind byte, payload []byte) []byte {
	buf = append(buf, codecVersion, kind)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write([]byte{codecVersion, kind})
	crc.Write(payload)
	buf = binary.BigEndian.AppendUint32(buf, crc.Sum32())
	return append(buf, payload...)
}

// readFrame parses one framed sketch at the head of data, returning the
// kind, the payload (aliasing data) and the bytes consumed.
func readFrame(data []byte) (kind byte, payload []byte, n int, err error) {
	if len(data) < headerLen {
		return 0, nil, 0, fmt.Errorf("%w: %d header bytes", ErrCorrupt, len(data))
	}
	if data[0] != codecVersion {
		return 0, nil, 0, fmt.Errorf("%w: sketch version %d", ErrCorrupt, data[0])
	}
	kind = data[1]
	plen := int(binary.BigEndian.Uint32(data[2:6]))
	if plen > maxPayload {
		return 0, nil, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, plen)
	}
	if len(data) < headerLen+plen {
		return 0, nil, 0, fmt.Errorf("%w: payload %d of %d bytes", ErrCorrupt, len(data)-headerLen, plen)
	}
	payload = data[headerLen : headerLen+plen]
	crc := crc32.NewIEEE()
	crc.Write(data[0:2])
	crc.Write(payload)
	if crc.Sum32() != binary.BigEndian.Uint32(data[6:10]) {
		return 0, nil, 0, fmt.Errorf("%w: CRC mismatch on %d-byte sketch", ErrCorrupt, plen)
	}
	return kind, payload, headerLen + plen, nil
}

// AppendBinary appends the framed encoding of h to buf. The encoding is
// deterministic: equal sketches encode to equal bytes, which is what
// lets the associativity tests compare merges bitwise.
func (h *HLL) AppendBinary(buf []byte) []byte {
	return appendFrame(buf, kindHLL, h.reg[:])
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (h *HLL) MarshalBinary() ([]byte, error) { return h.AppendBinary(nil), nil }

// DecodeHLL parses one framed HLL at the head of data, returning the
// bytes consumed. Arbitrary input yields an error, never a panic.
func DecodeHLL(data []byte) (*HLL, int, error) {
	kind, payload, n, err := readFrame(data)
	if err != nil {
		return nil, 0, err
	}
	if kind != kindHLL {
		return nil, 0, fmt.Errorf("%w: kind %d, want HLL", ErrCorrupt, kind)
	}
	if len(payload) != hllM {
		return nil, 0, fmt.Errorf("%w: %d HLL registers, want %d", ErrCorrupt, len(payload), hllM)
	}
	h := &HLL{}
	copy(h.reg[:], payload)
	// A register can never exceed the max rank AddHash produces. The CRC
	// already catches transmission damage; this bound rejects a sketch
	// that was CRC-framed by something other than this encoder, so a
	// hand-crafted register file cannot poison every future merge.
	const maxRank = 64 - hllP + 1
	for i, r := range h.reg {
		if r > maxRank {
			return nil, 0, fmt.Errorf("%w: register %d rank %d exceeds %d", ErrCorrupt, i, r, maxRank)
		}
	}
	return h, n, nil
}

// AppendBinary appends the framed encoding of q to buf (bucket count,
// then the counts; the layout itself is pinned by codecVersion).
func (q *Quantile) AppendBinary(buf []byte) []byte {
	payload := make([]byte, 0, 4+8*len(q.counts))
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(q.counts)))
	for _, c := range q.counts {
		payload = binary.BigEndian.AppendUint64(payload, c)
	}
	return appendFrame(buf, kindQuantile, payload)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (q *Quantile) MarshalBinary() ([]byte, error) { return q.AppendBinary(nil), nil }

// DecodeQuantile parses one framed quantile histogram at the head of
// data, returning the bytes consumed. The bucket count must match this
// version's layout exactly — counts under a different layout have a
// different meaning, and merging them would corrupt quantiles silently.
func DecodeQuantile(data []byte) (*Quantile, int, error) {
	kind, payload, n, err := readFrame(data)
	if err != nil {
		return nil, 0, err
	}
	if kind != kindQuantile {
		return nil, 0, fmt.Errorf("%w: kind %d, want quantile", ErrCorrupt, kind)
	}
	if len(payload) < 4 {
		return nil, 0, fmt.Errorf("%w: quantile payload of %d bytes", ErrCorrupt, len(payload))
	}
	nb := int(binary.BigEndian.Uint32(payload))
	if nb != len(quantBounds) {
		return nil, 0, fmt.Errorf("%w: %d quantile buckets, want %d", ErrCorrupt, nb, len(quantBounds))
	}
	if len(payload) != 4+8*nb {
		return nil, 0, fmt.Errorf("%w: quantile payload %d bytes, want %d", ErrCorrupt, len(payload), 4+8*nb)
	}
	q := NewQuantile()
	var total uint64
	for i := 0; i < nb; i++ {
		c := binary.BigEndian.Uint64(payload[4+8*i:])
		q.counts[i] = c
		next := total + c
		if next < total {
			return nil, 0, fmt.Errorf("%w: quantile counts overflow", ErrCorrupt)
		}
		total = next
	}
	q.total = total
	return q, n, nil
}
