package sketch

// The quantile half of the package: a fixed-bucket histogram over
// per-prefix presence hours. Unlike general-purpose quantile sketches
// (t-digest, KLL), whose merge results depend on insertion order, a
// static bucket layout makes merge a bucket-wise add — bitwise
// associative and commutative, which the cluster scatter-gather
// requires. The domain is bounded (presence hours never exceed
// streaming.MaxWindowHours), so a static layout loses nothing: values
// up to quantExactMax count exactly, larger values land in geometric
// buckets whose relative width pins the quantization error.

import "math"

// quantExactMax is the largest value with its own unit-width bucket:
// presence counts up to two days resolve exactly, which covers the mass
// of the paper's short-lived prefixes.
const quantExactMax = 48

// quantRatio is the geometric bucket growth factor above quantExactMax:
// 2^(1/8), i.e. at most ~9.1% bucket width, at most ~4.5% midpoint
// error — the bound the error-table test pins.
var quantRatio = math.Pow(2, 1.0/8)

// quantBuckets is the full bucket count; quantBounds[i] is the inclusive
// upper bound of bucket i. Both are fixed at init and versioned by the
// codec: changing the layout is a new sketch version, never a silent
// reinterpretation of old counts.
var quantBounds = buildQuantBounds()

func buildQuantBounds() []uint64 {
	var bounds []uint64
	for v := uint64(1); v <= quantExactMax; v++ {
		bounds = append(bounds, v)
	}
	// Geometric buckets up to just past MaxWindowHours (20 years of
	// hourly presence; see streaming.MaxWindowHours). The literal spares
	// an import cycle and is pinned by a test against the real constant.
	const maxHours = 20 * 366 * 24
	ub := float64(quantExactMax)
	for bounds[len(bounds)-1] < maxHours {
		ub *= quantRatio
		next := uint64(math.Ceil(ub))
		if next <= bounds[len(bounds)-1] {
			next = bounds[len(bounds)-1] + 1
		}
		bounds = append(bounds, next)
	}
	return bounds
}

// Quantile is a mergeable fixed-bucket histogram over positive integer
// values (presence hours). The zero value... does not exist: counts is
// sized by NewQuantile and the codec, so use those.
type Quantile struct {
	counts []uint64
	total  uint64
}

// NewQuantile builds an empty histogram.
func NewQuantile() *Quantile {
	return &Quantile{counts: make([]uint64, len(quantBounds))}
}

// bucketOf maps a value to its bucket index. Zero clamps to the first
// bucket (presence is at least one hour by construction); values past
// the last bound clamp to the final bucket.
func bucketOf(v uint64) int {
	if v <= 1 {
		return 0
	}
	if v <= quantExactMax {
		return int(v) - 1
	}
	// Binary search the geometric tail.
	lo, hi := quantExactMax, len(quantBounds)-1
	if v > quantBounds[hi] {
		return hi
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if quantBounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Add records n observations of value v.
func (q *Quantile) Add(v uint64, n uint64) {
	q.counts[bucketOf(v)] += n
	q.total += n
}

// Merge folds other into q (bucket-wise add): associative and
// commutative, so fold order never changes the result.
func (q *Quantile) Merge(other *Quantile) {
	if other == nil {
		return
	}
	for i, c := range other.counts {
		q.counts[i] += c
	}
	q.total += other.total
}

// Count reports the number of observations.
func (q *Quantile) Count() uint64 { return q.total }

// At returns the value at quantile p (0 <= p <= 1): the representative
// value of the bucket holding the p-th ranked observation. Exact for
// values up to quantExactMax; within the quantRatio midpoint bound
// above. Zero observations yield zero.
func (q *Quantile) At(p float64) uint64 {
	if q.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(q.total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range q.counts {
		cum += c
		if cum >= rank {
			return representative(i)
		}
	}
	return representative(len(quantBounds) - 1)
}

// representative is the value reported for a bucket: the exact value in
// the unit-width range, the midpoint of (lower, upper] above it.
func representative(i int) uint64 {
	if i < quantExactMax {
		return quantBounds[i]
	}
	lower := quantBounds[i-1]
	return (lower + 1 + quantBounds[i]) / 2
}

// Summary is the rendered view of a presence distribution, shaped for
// the long-horizon API response.
type Summary struct {
	// Count is the number of observations (prefix-periods).
	Count uint64 `json:"count"`
	// P50/P90/P99 are presence-hour quantiles; Max is the top bucket's
	// representative value.
	P50 uint64 `json:"p50"`
	P90 uint64 `json:"p90"`
	P99 uint64 `json:"p99"`
	Max uint64 `json:"max"`
}

// Summarize renders the standard quantile summary.
func (q *Quantile) Summarize() Summary {
	return Summary{
		Count: q.total,
		P50:   q.At(0.50),
		P90:   q.At(0.90),
		P99:   q.At(0.99),
		Max:   q.At(1),
	}
}
