package store

import (
	"encoding/json"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cwatrace/internal/core"
	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
	"cwatrace/internal/streaming"
)

// testConfig is the analytics configuration the store tests share.
func testConfig() streaming.Config {
	return streaming.Config{WindowHours: 48, TopK: 5}
}

// keptRecord fabricates a record the paper's filter keeps, landing in
// hour h of the study window.
func keptRecord(h, client int, bytes uint64) netflow.Record {
	f := core.DefaultFilter()
	at := entime.StudyStart.Add(time.Duration(h) * time.Hour)
	return netflow.Record{
		Key: netflow.Key{
			Src:     f.ServerPrefixes[0].Addr(),
			Dst:     netip.AddrFrom4([4]byte{100, 64, byte(client >> 8), byte(client)}),
			SrcPort: netflow.PortHTTPS,
			DstPort: uint16(50000 + client%1000),
			Proto:   netflow.ProtoTCP,
		},
		Packets:  5,
		Bytes:    bytes,
		First:    at,
		Last:     at.Add(time.Second),
		Exporter: "ISP/BE-000",
	}
}

// droppedRecord fabricates a record the filter rejects (wrong port).
func droppedRecord(h, client int) netflow.Record {
	r := keptRecord(h, client, 100)
	r.SrcPort = 80
	return r
}

// mustOpen opens a store or fails the test.
func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	if opts.Analytics.WindowHours == 0 && opts.Analytics.Origin.IsZero() {
		opts.Analytics = testConfig()
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return s
}

// snapJSON renders a snapshot canonically for byte comparison.
func snapJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestAppendSnapshotMatchesDirectIngest(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	ref := streaming.New(testConfig())
	for i := 0; i < 20; i++ {
		batch := []netflow.Record{
			keptRecord(i%10, i, uint64(100+i)),
			droppedRecord(i%10, i),
		}
		if err := s.Append(batch); err != nil {
			t.Fatal(err)
		}
		ref.Ingest(batch)
	}
	if got, want := snapJSON(t, s.Snapshot()), snapJSON(t, ref.Snapshot()); got != want {
		t.Fatalf("store snapshot diverges from direct ingest:\n got %s\nwant %s", got, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryAfterCheckpointAndTail(t *testing.T) {
	dir := t.TempDir()
	ref := streaming.New(testConfig())

	s := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		batch := []netflow.Record{keptRecord(i, i, 500)}
		if err := s.Append(batch); err != nil {
			t.Fatal(err)
		}
		ref.Ingest(batch)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Tail records after the checkpoint, not folded before the "crash".
	for i := 10; i < 17; i++ {
		batch := []netflow.Record{keptRecord(i%20, i, 700)}
		if err := s.Append(batch); err != nil {
			t.Fatal(err)
		}
		ref.Ingest(batch)
	}
	if err := s.Close(); err != nil { // close without checkpoint == clean crash
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	m := r.Metrics()
	if m.RecoveredFrames != 1 {
		t.Fatalf("recovered %d frames, want 1", m.RecoveredFrames)
	}
	if m.RecoveredWALRecords != 7 {
		t.Fatalf("replayed %d WAL records, want 7", m.RecoveredWALRecords)
	}
	if got, want := snapJSON(t, r.Snapshot()), snapJSON(t, ref.Snapshot()); got != want {
		t.Fatalf("recovered snapshot diverges:\n got %s\nwant %s", got, want)
	}
	// The recovered store keeps accepting appends.
	if err := r.Append([]netflow.Record{keptRecord(3, 99, 100)}); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 8; i++ {
		if err := s.Append([]netflow.Record{keptRecord(i, i, 300)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs := walFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("segments on disk: %v", segs)
	}
	st, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-payload.
	if err := os.Truncate(segs[0], st.Size()-5); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	m := r.Metrics()
	if m.RecoveredWALRecords != 7 {
		t.Fatalf("replayed %d records after tear, want 7", m.RecoveredWALRecords)
	}
	if m.TruncatedBytes == 0 {
		t.Fatal("truncated bytes not accounted")
	}
	if got := r.Snapshot().Census.Kept; got != 7 {
		t.Fatalf("recovered census kept %d, want 7", got)
	}
	// The torn segment was truncated at the last intact record: walking
	// the WAL now yields exactly the surviving records.
	n := 0
	if err := WalkWAL(dir, func(batch []netflow.Record) error {
		n += len(batch)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("WalkWAL sees %d records, want 7", n)
	}
}

func TestSegmentRotationAndCheckpointFolding(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 256}) // rotate every few batches
	for i := 0; i < 30; i++ {
		if err := s.Append([]netflow.Record{keptRecord(i%12, i, 100)}); err != nil {
			t.Fatal(err)
		}
	}
	if m := s.Metrics(); m.Segments < 3 {
		t.Fatalf("segments = %d, rotation never happened", m.Segments)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Segments != 1 || m.Frames != 1 || m.TailRecords != 0 {
		t.Fatalf("after checkpoint: %+v", m)
	}
	if segs := walFiles(t, dir); len(segs) != 1 {
		t.Fatalf("WAL files on disk after fold: %v", segs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything lives in the frame now; recovery replays no WAL.
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if rm := r.Metrics(); rm.RecoveredWALRecords != 0 || rm.RecoveredFrames != 1 {
		t.Fatalf("recovery after clean fold: %+v", rm)
	}
	if got := r.Snapshot().Census.Kept; got != 30 {
		t.Fatalf("kept %d, want 30", got)
	}
}

func TestFrameCompactionBoundsFrameCount(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxFrames: 2})
	ref := streaming.New(testConfig())
	for ck := 0; ck < 5; ck++ {
		for i := 0; i < 4; i++ {
			batch := []netflow.Record{keptRecord(ck*8+i, ck*100+i, 200)}
			if err := s.Append(batch); err != nil {
				t.Fatal(err)
			}
			ref.Ingest(batch)
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	m := s.Metrics()
	if m.Frames > 2 {
		t.Fatalf("frames = %d, want <= 2 after compaction", m.Frames)
	}
	if m.CompactedFrames == 0 {
		t.Fatal("compaction never ran")
	}
	// Compaction must not change any aggregate.
	res, err := s.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := snapJSON(t, res.Snapshot), snapJSON(t, ref.Snapshot()); got != want {
		t.Fatalf("compacted query diverges:\n got %s\nwant %s", got, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// And the compacted store recovers cleanly.
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if got, want := snapJSON(t, r.Snapshot()), snapJSON(t, ref.Snapshot()); got != want {
		t.Fatal("compacted store recovers to a different state")
	}
}

func TestMetaAdoptionAndConflict(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Analytics: streaming.Config{WindowHours: 48, TopK: 3}})
	if err := s.Append([]netflow.Record{keptRecord(1, 1, 100)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A zero config adopts the stored parameters.
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("zero-config reopen: %v", err)
	}
	if cfg := r.Config(); cfg.WindowHours != 48 || cfg.TopK != 3 {
		t.Fatalf("adopted config %+v", cfg)
	}
	r.Close()

	// A conflicting state-affecting parameter is rejected.
	if _, err := Open(dir, Options{Analytics: streaming.Config{WindowHours: 24}}); err == nil {
		t.Fatal("conflicting WindowHours must fail the open")
	}
	if _, err := Open(dir, Options{Analytics: streaming.Config{PrefixBits: 16}}); err == nil {
		t.Fatal("conflicting PrefixBits must fail the open")
	}
}

func TestSegmentBytesAdoptedFromMeta(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 200})
	if err := s.Append([]netflow.Record{keptRecord(1, 1, 100)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopened without -segment-bytes, the store keeps its own rotation
	// size: a handful of small batches must still rotate segments.
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	for i := 0; i < 10; i++ {
		if err := r.Append([]netflow.Record{keptRecord(i%12, i, 100)}); err != nil {
			t.Fatal(err)
		}
	}
	if m := r.Metrics(); m.Segments < 3 {
		t.Fatalf("segments = %d after reopen; meta segment size not adopted", m.Segments)
	}
}

func TestReadOnlyOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Append([]netflow.Record{keptRecord(i, i, 100)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	before := walFiles(t, dir)

	r, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Append([]netflow.Record{keptRecord(1, 1, 1)}); err == nil {
		t.Fatal("append on a read-only store must fail")
	}
	if err := r.Checkpoint(); err == nil {
		t.Fatal("checkpoint on a read-only store must fail")
	}
	res, err := r.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.Census.Kept != 5 {
		t.Fatalf("read-only query kept %d, want 5", res.Snapshot.Census.Kept)
	}
	// No new active segment was created.
	if after := walFiles(t, dir); !reflect.DeepEqual(after, before) {
		t.Fatalf("read-only open changed the WAL: %v -> %v", before, after)
	}

	// Read-only open of a directory that is not a store fails.
	if _, err := Open(t.TempDir(), Options{ReadOnly: true}); err == nil {
		t.Fatal("read-only open of an empty dir must fail")
	}
}

func TestEmptyCheckpointOnlyRefreshesClock(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics(); m.Frames != 0 || m.Checkpoints != 0 {
		t.Fatalf("empty checkpoint wrote state: %+v", m)
	}
}

func TestSyncPolicies(t *testing.T) {
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy must fail")
	}
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		got, err := ParseSyncPolicy(string(pol))
		if err != nil || got != pol {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", pol, got, err)
		}
		dir := t.TempDir()
		s := mustOpen(t, dir, Options{Sync: pol})
		if err := s.Append([]netflow.Record{keptRecord(1, 1, 100)}); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentAppendCheckpointQuery hammers the three lock domains —
// Append (mu), Checkpoint (ckptMu + phased mu), Query/Snapshot (mu +
// lock-free frame loads) — concurrently, then verifies nothing was lost
// or double-counted. Run under -race via `make race`.
func TestConcurrentAppendCheckpointQuery(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{SegmentBytes: 2048, MaxFrames: 3})
	const (
		writers    = 4
		perWriter  = 200
		totalKept  = writers * perWriter
		ckptRounds = 20
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := s.Append([]netflow.Record{keptRecord(i%40, w*perWriter+i, 100)}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < ckptRounds; i++ {
			if err := s.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := s.Query(time.Time{}, time.Time{}); err != nil {
				t.Errorf("query: %v", err)
				return
			}
			_ = s.Snapshot()
		}
	}()
	wg.Wait()

	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.Census.Kept != totalKept {
		t.Fatalf("kept %d records, want %d", res.Snapshot.Census.Kept, totalKept)
	}
	if snap := s.Snapshot(); snap.Census.Kept != totalKept {
		t.Fatalf("snapshot kept %d records, want %d", snap.Census.Kept, totalKept)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// walFiles lists the WAL segment paths in dir, sorted.
func walFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// TestCompactionPreservesHoursBeyondWindow pins the archival contract:
// frame compaction must never evict hourly bins, even once the folded
// pair spans more hours than the live sliding window (inevitable in a
// capture that outlives WindowHours). The merged frame persists its own
// widened window, a full-history query serves every hour ever
// checkpointed, and recovery accepts the wide frames while the live
// snapshot stays bounded by the live window.
func TestCompactionPreservesHoursBeyondWindow(t *testing.T) {
	dir := t.TempDir()
	cfg := streaming.Config{WindowHours: 4, TopK: 5}
	const hours = 12 // 3x the window
	s := mustOpen(t, dir, Options{Analytics: cfg, MaxFrames: 2})
	for h := 0; h < hours; h++ {
		if err := s.Append([]netflow.Record{keptRecord(h, h, 100)}); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if m := s.Metrics(); m.Frames > 2 || m.CompactedFrames == 0 {
		t.Fatalf("compaction did not bound the frames: %+v", m)
	}

	check := func(s *Store) {
		t.Helper()
		res, err := s.Query(time.Time{}, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		snap := res.Snapshot
		if snap.SeriesStart != 0 || len(snap.Hours) != hours {
			t.Fatalf("query window [%d +%d], want [0 +%d]", snap.SeriesStart, len(snap.Hours), hours)
		}
		for _, p := range snap.Hours {
			if p.Flows != 1 {
				t.Fatalf("hour %d holds %v flows, want 1 (compaction evicted bins)", p.Hour, p.Flows)
			}
		}
		if snap.Late != 0 || snap.Census.Kept != hours {
			t.Fatalf("late %d kept %d, want 0 and %d", snap.Late, snap.Census.Kept, hours)
		}
	}
	check(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{Analytics: cfg})
	defer r.Close()
	check(r)
	// The live view keeps sliding-window semantics: only the last
	// WindowHours hours, with the evicted overflow dropped silently (not
	// re-counted as late), exactly as an uninterrupted run would show.
	if snap := r.Snapshot(); snap.SeriesStart != hours-cfg.WindowHours || len(snap.Hours) != cfg.WindowHours || snap.Late != 0 {
		t.Fatalf("recovered live window [%d +%d] late %d, want [%d +%d] late 0",
			snap.SeriesStart, len(snap.Hours), snap.Late, hours-cfg.WindowHours, cfg.WindowHours)
	}
}

// TestCheckpointPreservesBurstBeyondWindow pins the checkpoint-layer
// half of the archival contract: when a burst ingests more data-hours
// than the live window between two checkpoints (a replayed capture can
// push weeks of simulated time in seconds), the tail must not evict —
// the single frame the checkpoint writes authorizes deleting the WAL
// that durably held those hours.
func TestCheckpointPreservesBurstBeyondWindow(t *testing.T) {
	dir := t.TempDir()
	cfg := streaming.Config{WindowHours: 4, TopK: 5}
	const hours = 12 // 3x the window, zero intervening checkpoints
	s := mustOpen(t, dir, Options{Analytics: cfg})
	for h := 0; h < hours; h++ {
		if err := s.Append([]netflow.Record{keptRecord(h, h, 100)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics(); m.Frames != 1 || m.Segments != 1 {
		t.Fatalf("after the one checkpoint: %+v", m)
	}

	check := func(s *Store) {
		t.Helper()
		res, err := s.Query(time.Time{}, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		snap := res.Snapshot
		if snap.SeriesStart != 0 || len(snap.Hours) != hours {
			t.Fatalf("query window [%d +%d], want [0 +%d]", snap.SeriesStart, len(snap.Hours), hours)
		}
		for _, p := range snap.Hours {
			if p.Flows != 1 {
				t.Fatalf("hour %d holds %v flows, want 1 (checkpoint evicted the burst's head)", p.Hour, p.Flows)
			}
		}
	}
	check(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{Analytics: cfg})
	defer r.Close()
	check(r)
	if snap := r.Snapshot(); snap.SeriesStart != hours-cfg.WindowHours || len(snap.Hours) != cfg.WindowHours {
		t.Fatalf("recovered live window [%d +%d], want [%d +%d]",
			snap.SeriesStart, len(snap.Hours), hours-cfg.WindowHours, cfg.WindowHours)
	}
}

// TestForgedTimestampDoesNotBrickStore pins the end-to-end consequence
// of the plausibility cap: a record forged decades past Origin is
// counted Late, the checkpoint frame stays loadable, and the store
// reopens — instead of persisting an archive window so wide that every
// later frame read (and therefore Open) rejects it.
func TestForgedTimestampDoesNotBrickStore(t *testing.T) {
	dir := t.TempDir()
	cfg := streaming.Config{WindowHours: 4, TopK: 5}
	s := mustOpen(t, dir, Options{Analytics: cfg})
	if err := s.Append([]netflow.Record{
		keptRecord(0, 1, 100),
		keptRecord(21*366*24, 2, 100), // past streaming.MaxWindowHours
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{Analytics: cfg})
	defer r.Close()
	res, err := r.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Snapshot
	if snap.Late != 1 {
		t.Fatalf("late = %d, want 1 (the forged record)", snap.Late)
	}
	if len(snap.Hours) != 1 || snap.Hours[0].Hour != 0 || snap.Hours[0].Flows != 1 {
		t.Fatalf("recovered window disturbed: %+v", snap.Hours)
	}
}
