package store

import (
	"errors"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"cwatrace/internal/netflow"
)

func sampleRecords() []netflow.Record {
	v6 := netflow.Record{
		Key: netflow.Key{
			Src:     netip.MustParseAddr("2001:db8::1"),
			Dst:     netip.MustParseAddr("2001:db8::2"),
			SrcPort: 443,
			DstPort: 51000,
			Proto:   netflow.ProtoTCP,
		},
		Packets:  2,
		Bytes:    900,
		First:    time.Date(2020, 6, 16, 9, 0, 0, 123456789, time.UTC),
		Last:     time.Date(2020, 6, 16, 9, 0, 2, 0, time.UTC),
		Exporter: "ISP/BE-001",
	}
	return []netflow.Record{
		keptRecord(3, 7, 1234),
		droppedRecord(5, 9),
		v6,
	}
}

func TestFlowRecordRoundTrip(t *testing.T) {
	for i, want := range sampleRecords() {
		buf := appendFlowRecord(nil, &want)
		got, n, err := decodeFlowRecord(buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if n != len(buf) {
			t.Fatalf("record %d consumed %d of %d bytes", i, n, len(buf))
		}
		// The codec canonicalizes timestamps to UTC (same instant).
		want.First, want.Last = want.First.UTC(), want.Last.UTC()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d round trip:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestEncodeRecordCanonical(t *testing.T) {
	r := keptRecord(1, 2, 500)
	if string(EncodeRecord(r)) != string(EncodeRecord(r)) {
		t.Fatal("EncodeRecord is not deterministic")
	}
	other := keptRecord(1, 3, 500)
	if string(EncodeRecord(r)) == string(EncodeRecord(other)) {
		t.Fatal("distinct records encode identically")
	}
}

func TestBatchPayloadRoundTrip(t *testing.T) {
	recs := sampleRecords()
	payload := appendBatchPayload(nil, recs)
	var got []netflow.Record
	if err := decodeBatchPayload(payload, func(r netflow.Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	// Trailing garbage after the declared count is corruption.
	if err := decodeBatchPayload(append(payload, 0xAB), func(netflow.Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: %v", err)
	}
}

func TestRecordFramingDetectsDamage(t *testing.T) {
	payload := appendBatchPayload(nil, sampleRecords())
	rec := appendRecordFrame(nil, recTypeBatch, payload)

	typ, got, n, err := readRecordFrame(rec)
	if err != nil || typ != recTypeBatch || n != len(rec) || len(got) != len(payload) {
		t.Fatalf("clean frame: typ=%d n=%d err=%v", typ, n, err)
	}

	// Truncation anywhere is a torn record.
	for _, cut := range []int{0, 1, recHeaderLen - 1, recHeaderLen, len(rec) - 1} {
		if _, _, _, err := readRecordFrame(rec[:cut]); !errors.Is(err, ErrTorn) {
			t.Fatalf("cut at %d: err = %v, want ErrTorn", cut, err)
		}
	}

	// A flipped payload byte is corruption, caught by the CRC.
	bad := append([]byte(nil), rec...)
	bad[recHeaderLen+3] ^= 0x40
	if _, _, _, err := readRecordFrame(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped payload byte: %v", err)
	}

	// A wrong version byte is corruption.
	bad = append([]byte(nil), rec...)
	bad[0] = 99
	if _, _, _, err := readRecordFrame(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad version: %v", err)
	}

	// An absurd length is corruption, not an allocation.
	bad = append([]byte(nil), rec...)
	bad[2], bad[3], bad[4], bad[5] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, _, err := readRecordFrame(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("absurd length: %v", err)
	}
}

func TestFramePayloadRoundTrip(t *testing.T) {
	info := frameInfo{Seq: 7, BaseSeg: 2, CoveredSeg: 5, CoveredOff: 4096, MinHour: 3, MaxHour: 40, Records: 1234}
	state := []byte("opaque-state")
	payload := appendFramePayload(nil, info, state)
	got, gotState, err := decodeFramePayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != info || string(gotState) != string(state) {
		t.Fatalf("round trip: %+v / %q", got, gotState)
	}
	if _, _, err := decodeFramePayload(payload[:frameInfoLen-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short frame payload: %v", err)
	}
}
