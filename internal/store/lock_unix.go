//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// acquireDirLock takes the exclusive data-dir lock, failing fast (no
// blocking) when another process holds it.
func acquireDirLock(dir string) (*os.File, error) {
	path := filepath.Join(dir, lockName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is already open for writing by another process (flock %s: %w)", dir, lockName, err)
	}
	// Operator breadcrumb only; the flock is the lock.
	if err := f.Truncate(0); err == nil {
		_, _ = fmt.Fprintf(f, "%d\n", os.Getpid())
	}
	return f, nil
}

// releaseDirLock drops the lock; closing the descriptor releases the
// flock even if the explicit unlock fails. nil is a no-op.
func releaseDirLock(f *os.File) {
	if f == nil {
		return
	}
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	_ = f.Close()
}
