//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// acquireDirLock on non-unix platforms only leaves a pid breadcrumb: a
// create-exclusive lock would go stale after a SIGKILL (blocking the
// crash-recovery restart that is the store's whole point), so without
// an flock equivalent the double-open guard is not enforced here.
func acquireDirLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := f.Truncate(0); err == nil {
		_, _ = fmt.Fprintf(f, "%d\n", os.Getpid())
	}
	return f, nil
}

func releaseDirLock(f *os.File) {
	if f == nil {
		return
	}
	_ = f.Close()
}
