package store

// The historical time-range query engine. A query merges the checkpoint
// frames whose hour coverage overlaps the requested range (plus the live
// tail shard) into one snapshot, then trims the hourly series exactly to
// the range. The hourly Figure-2 series is therefore hour-exact at any
// range; the census, top-K prefix and district aggregates are not
// time-resolved inside a frame, so partial ranges report them at
// checkpoint-frame granularity (a full-range query is always exact).
// Because streaming aggregation is commutative, the result is
// independent of where checkpoints fell — the property the crash
// recovery test pins byte for byte.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"time"

	"cwatrace/internal/streaming"
	"cwatrace/internal/tier"
)

// ParseTime parses a query bound the way every store consumer does
// (collectord's /query params, cwanalyze's -from/-to flags): RFC 3339
// or unix seconds, with the empty string meaning an open bound.
func ParseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	if secs, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Unix(secs, 0).UTC(), nil
	}
	return time.Time{}, fmt.Errorf("want RFC 3339 or unix seconds, got %q", s)
}

// QueryResult is one historical range query answer.
type QueryResult struct {
	// From/To echo the requested bounds (zero = open end).
	From time.Time `json:"from"`
	To   time.Time `json:"to"`
	// Frames is how many checkpoint frames were merged; TailIncluded
	// reports whether the live (un-checkpointed) tail contributed.
	Frames       int  `json:"frames"`
	TailIncluded bool `json:"tail_included"`
	// Snapshot is the merged, hour-trimmed view of the range. At hour
	// resolution it covers every selected frame; at day/week resolution
	// it holds only the exact raw residual (tiered history lives in
	// LongHorizon), so Frames then counts residual frames only.
	Snapshot *streaming.Snapshot `json:"snapshot"`
	// Resolution and LongHorizon are set by QueryResolution for day- and
	// week-resolution answers (see internal/tier); both are empty on the
	// exact hourly path, keeping the v1 wire schema unchanged.
	Resolution  tier.Resolution `json:"resolution,omitempty"`
	LongHorizon *tier.Answer    `json:"long_horizon,omitempty"`
}

// Query merges the frames overlapping [from, to) with the live tail and
// renders the range. Zero bounds are open ends: Query(zero, zero) covers
// the store's whole history. Frames holding only dropped-record
// accounting (no kept hours) ride along with every query so the census
// stays complete.
//
// Frame files are loaded outside the store mutex — a historical query
// must never stall the hot Append path (a blocked worker means dropped
// batches upstream). Frame files are immutable once written, so the
// only hazard is a concurrent checkpoint's compaction removing one
// mid-query; that retries against the fresh (equivalent, merged)
// frame set.
func (s *Store) Query(from, to time.Time) (*QueryResult, error) {
	for attempt := 0; ; attempt++ {
		res, err := s.tryQuery(from, to)
		if err == nil || attempt >= 2 || !errors.Is(err, os.ErrNotExist) {
			return res, err
		}
	}
}

func (s *Store) tryQuery(from, to time.Time) (*QueryResult, error) {
	s.mu.Lock()
	var frames []frameMeta
	span := struct{ lo, hi int64 }{-1, -1}
	cover := func(lo, hi int64) {
		if lo < 0 {
			return
		}
		if span.lo < 0 || lo < span.lo {
			span.lo = lo
		}
		if hi > span.hi {
			span.hi = hi
		}
	}
	for _, fr := range s.frames {
		if s.hoursOverlap(fr.MinHour, fr.MaxHour, from, to) {
			frames = append(frames, fr)
			cover(fr.MinHour, fr.MaxHour)
		}
	}
	// The live, un-checkpointed state is the tail plus any checkpoint
	// fold currently in flight (chronologically between the frames and
	// the tail). The two merge as one unit: if either overlaps the
	// range, both are cloned — and every shard that gets merged widens
	// the merge window, overlap or not, because the newer bins of a
	// non-overlapping shard would otherwise slide a span-sized window
	// and evict the in-range bins merged alongside them (SnapshotRange
	// trims the out-of-range overflow at the end).
	// Bounds is a linear ring scan (archive tails can be wide) and this
	// runs under mu against the hot Append path, so scan each shard once.
	includeLive := false
	var liveBounds [][2]int64
	for _, live := range []*streaming.Analytics{s.foldingTail, s.tail} {
		if live == nil {
			continue
		}
		minH, maxH := int64(-1), int64(-1)
		if lo, hi, ok := live.Bounds(); ok {
			minH, maxH = int64(lo), int64(hi)
			liveBounds = append(liveBounds, [2]int64{minH, maxH})
		}
		if s.hoursOverlap(minH, maxH, from, to) {
			includeLive = true
		}
	}
	if s.foldingRecords+s.tailRecords == 0 {
		includeLive = false
	}
	if includeLive {
		for _, b := range liveBounds {
			cover(b[0], b[1])
		}
	}
	// A historical range can span more hours than the live sliding
	// window (that is the point of the store); merging at the live
	// window would evict the head of the range. Widen the merge target
	// to cover every selected hour — frames never lose bins on disk:
	// tail shards archive without eviction (see Store.newTail), and both
	// checkpoint and compacted frames persist state at their own window,
	// however many hours that spans.
	qcfg := widenWindow(s.cfg, span.lo, span.hi)
	// Clone the live state while locked; the frame loads below run
	// lock-free, and the clone merges last so any window slide happens
	// in chronological order (frames, then live), exactly like Snapshot.
	var tailClone *streaming.Analytics
	if includeLive {
		tailClone = streaming.New(qcfg)
		if s.foldingTail != nil {
			tailClone.Merge(s.foldingTail)
		}
		tailClone.Merge(s.tail)
	}
	s.mu.Unlock()

	res := &QueryResult{From: from, To: to}
	m := streaming.New(qcfg)
	for _, fr := range frames {
		_, a, err := loadFrameFile(fr.path, s.cfg)
		if err != nil {
			return nil, err
		}
		m.Merge(a)
		res.Frames++
	}
	if tailClone != nil {
		m.Merge(tailClone)
		res.TailIncluded = true
	}
	res.Snapshot = m.SnapshotRange(from, to)
	return res, nil
}

// widenWindow returns cfg with WindowHours widened to hold the
// inclusive hour span [minHour, maxHour] (-1 bounds: no span, cfg
// unchanged). Every merge target sized from frame metadata or live
// bounds goes through it — merging archived hours at a window narrower
// than their span evicts bins, which for compaction means permanent
// loss. Callers' inputs are bounded (loadFrameFile validates frame
// metadata, ingest caps record hours), so the result never exceeds
// streaming.MaxWindowHours.
func widenWindow(cfg streaming.Config, minHour, maxHour int64) streaming.Config {
	if need := int(maxHour - minHour + 1); minHour >= 0 && need > cfg.WindowHours {
		cfg.WindowHours = need
	}
	return cfg
}

// Version reports an opaque generation token for the data a
// Query(from, to) over the same bounds would serve; Version(zero, zero)
// covers the full history, i.e. what Snapshot serves. Two equal tokens
// from one process guarantee byte-identical query results, so the API
// layer derives conditional-GET ETags from it. The token mixes:
//
//   - a per-open boot nonce, so validators never survive a restart;
//   - the checkpoint generation, bumped whenever the frame set changes
//     (checkpoint commit, compaction) — the cache-invalidation-on-
//     checkpoint invariant;
//   - the tail generation (bumped per Append), but only when the live
//     tail could contribute to the range — a purely historical range is
//     served from immutable frames, so its token stays stable under
//     live ingest until the next checkpoint.
//
// The tail-overlap test mirrors tryQuery's inclusion rule exactly: if
// ingest later grows the tail into a range that was frames-only, the
// tail generation enters the mix and the token changes with it.
func (s *Store) Version(from, to time.Time) uint64 {
	s.mu.Lock()
	boot, ckptGen, tailGen := s.boot, s.ckptGen, s.tailGen
	live := false
	for _, t := range []*streaming.Analytics{s.foldingTail, s.tail} {
		if t == nil {
			continue
		}
		minH, maxH := int64(-1), int64(-1)
		if lo, hi, ok := t.Bounds(); ok {
			minH, maxH = int64(lo), int64(hi)
		}
		if s.hoursOverlap(minH, maxH, from, to) {
			live = true
		}
	}
	if s.foldingRecords+s.tailRecords == 0 {
		live = false
	}
	s.mu.Unlock()

	h := fnv.New64a()
	var buf [8]byte
	for _, v := range []uint64{boot, ckptGen} {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	if live {
		binary.BigEndian.PutUint64(buf[:], tailGen)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// hoursOverlap reports whether the inclusive hour-index interval
// [minHour, maxHour] intersects [from, to). Absent bounds (-1: the frame
// aggregated no kept records) always overlap — the accounting must reach
// every query.
func (s *Store) hoursOverlap(minHour, maxHour int64, from, to time.Time) bool {
	if minHour < 0 {
		return true
	}
	start := s.cfg.Origin.Add(time.Duration(minHour) * time.Hour)
	end := s.cfg.Origin.Add(time.Duration(maxHour+1) * time.Hour)
	if !to.IsZero() && !start.Before(to) {
		return false
	}
	if !from.IsZero() && !end.After(from) {
		return false
	}
	return true
}
