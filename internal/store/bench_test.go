package store

import (
	"fmt"
	"testing"
	"time"

	"cwatrace/internal/netflow"
)

// benchBatch builds one export-sized batch landing in hour h.
func benchBatch(h, salt, n int) []netflow.Record {
	batch := make([]netflow.Record, n)
	for i := range batch {
		batch[i] = keptRecord(h, salt*n+i, uint64(400+i))
	}
	return batch
}

// BenchmarkStoreAppend measures the durable append path (encode + CRC +
// write-through + tail fold) per sync policy. The interval policy is the
// production default: fsync rides the pipeline's flush hook, not the
// append path, so it benches like SyncNever.
func BenchmarkStoreAppend(b *testing.B) {
	const perBatch = 25
	for _, pol := range []SyncPolicy{SyncNever, SyncAlways} {
		b.Run(string(pol), func(b *testing.B) {
			s, err := Open(b.TempDir(), Options{Analytics: testConfig(), Sync: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			batch := benchBatch(1, 0, perBatch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Append(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			elapsed := b.Elapsed()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N*perBatch)/elapsed.Seconds(), "records/s")
			}
		})
	}
}

// BenchmarkQueryRange measures historical range queries against a store
// holding many checkpoint frames: sub-ranges load only the overlapping
// frames, the full range merges everything.
func BenchmarkQueryRange(b *testing.B) {
	const (
		frames     = 16
		hoursPer   = 3
		batchesPer = 8
		perBatch   = 25
	)
	dir := b.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for f := 0; f < frames; f++ {
		for i := 0; i < batchesPer; i++ {
			if err := s.Append(benchBatch(f*hoursPer+i%hoursPer, f*batchesPer+i, perBatch)); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	origin := s.Config().Origin

	for _, span := range []int{hoursPer, frames * hoursPer / 2, frames * hoursPer} {
		b.Run(fmt.Sprintf("span=%dh", span), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				from := origin.Add(time.Duration(i*hoursPer%(frames*hoursPer-span+1)) * time.Hour)
				res, err := s.Query(from, from.Add(time.Duration(span)*time.Hour))
				if err != nil {
					b.Fatal(err)
				}
				if res.Frames == 0 {
					b.Fatal("query selected no frames")
				}
			}
		})
	}
}
