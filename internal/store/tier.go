package store

// The store's long-horizon tier layer: fold scheduling, tier frame
// persistence and the span-aware query path (see internal/tier for the
// subsystem itself). Tier frames are additive, derived data — a fold
// writes `tier-d-…`/`tier-w-…` files next to the WAL and checkpoints,
// never deletes its inputs, and registers the frame in memory only
// after the file is durable. Crash anywhere leaves either no tier frame
// (the fold simply re-runs at the next checkpoint: its candidates are
// recomputed from what is on disk) or a complete one; raw frames remain
// the source of truth for hour-resolution answers either way.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"cwatrace/internal/obs"
	"cwatrace/internal/streaming"
	"cwatrace/internal/tier"
)

// tierFrameMeta is one live tier frame (metadata plus path; decoded
// frames are cached — they are immutable once written).
type tierFrameMeta struct {
	tier.FrameMeta
	path string
}

// tierTag is the level's file-name tag.
func tierTag(l tier.Level) string {
	if l == tier.LevelWeek {
		return "w"
	}
	return "d"
}

func tierPath(dir string, l tier.Level, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("tier-%s-%016d.tf", tierTag(l), seq))
}

// tierCovered reports the level's WAL coverage horizon: the highest
// covered segment of any frame at the level (folds run oldest-first, so
// coverage is a prefix of the WAL). list is sorted by BaseSeg.
func tierCovered(list []tierFrameMeta) uint64 {
	if len(list) == 0 {
		return 0
	}
	return list[len(list)-1].CoveredSeg
}

// loadTierFrames decodes the tier files scanDir found, sweeps same-level
// frames whose WAL interval another frame contains (the refold-crash
// case, mirroring the checkpoint containment sweep), and registers the
// survivors sorted by BaseSeg. Decoded frames seed the query cache —
// the whole point of tiers is that this set stays small (a simulated
// year is ~370 day frames plus ~52 week frames).
func (s *Store) loadTierFrames(found []tierFrameMeta) error {
	frames := make([]*tier.Frame, len(found))
	for i := range found {
		data, err := os.ReadFile(found[i].path)
		if err != nil {
			return fmt.Errorf("store: tier frame %s: %w", filepath.Base(found[i].path), err)
		}
		f, err := tier.DecodeFrame(data)
		if err != nil {
			return fmt.Errorf("store: tier frame %s: %w", filepath.Base(found[i].path), err)
		}
		if f.Seq != found[i].Seq || f.Level != found[i].Level {
			return fmt.Errorf("store: tier frame %s carries seq %d level %s", filepath.Base(found[i].path), f.Seq, f.Level)
		}
		found[i].FrameMeta = f.Meta()
		frames[i] = f
	}
	live := make([]tierFrameMeta, 0, len(found))
	for i := range found {
		obsolete := false
		for j := range found {
			o, n := found[i].FrameMeta, found[j].FrameMeta
			if i != j && o.Level == n.Level && n.BaseSeg <= o.BaseSeg && o.CoveredSeg <= n.CoveredSeg && n.Seq > o.Seq {
				obsolete = true
				break
			}
		}
		if obsolete {
			if !s.opts.ReadOnly {
				_ = os.Remove(found[i].path)
			}
			continue
		}
		s.tierCache.Store(found[i].Seq, frames[i])
		live = append(live, found[i])
	}
	sort.Slice(live, func(i, j int) bool { return live[i].BaseSeg < live[j].BaseSeg })
	for _, m := range live {
		switch m.Level {
		case tier.LevelDay:
			s.tierDay = append(s.tierDay, m)
		case tier.LevelWeek:
			s.tierWeek = append(s.tierWeek, m)
		}
	}
	return nil
}

// loadTierFrame returns the decoded frame for a registered meta, from
// the cache or disk. Tier files are never removed while registered, so
// no retry loop is needed.
func (s *Store) loadTierFrame(m tierFrameMeta) (*tier.Frame, error) {
	if v, ok := s.tierCache.Load(m.Seq); ok {
		return v.(*tier.Frame), nil
	}
	data, err := os.ReadFile(m.path)
	if err != nil {
		return nil, err
	}
	f, err := tier.DecodeFrame(data)
	if err != nil {
		return nil, fmt.Errorf("store: tier frame %s: %w", filepath.Base(m.path), err)
	}
	if f.Seq != m.Seq || f.Level != m.Level {
		return nil, fmt.Errorf("store: tier frame %s carries seq %d level %s", filepath.Base(m.path), f.Seq, f.Level)
	}
	s.tierCache.Store(m.Seq, f)
	return f, nil
}

// tierFold runs the fold scheduler after a checkpoint (caller holds
// ckptMu): every closed day run of checkpoint frames folds into a day
// frame, then every closed week of day frames folds into a week frame.
// One run per iteration, so a long backlog (first enable on an old
// store) folds incrementally but completely.
func (s *Store) tierFold(ctx context.Context) error {
	if !s.opts.Tier {
		return nil
	}
	for {
		did, err := s.tierFoldDayOnce(ctx)
		if err != nil {
			return err
		}
		if !did {
			break
		}
	}
	for {
		did, err := s.tierFoldWeekOnce(ctx)
		if err != nil {
			return err
		}
		if !did {
			break
		}
	}
	return nil
}

// tierFoldCandidates snapshots, under mu, the raw frames beyond the day
// coverage horizon. A nil return stalls the fold safely: if a
// compaction from before tiering was enabled left a frame straddling
// the horizon, folding would double-count its WAL slice, so nothing
// folds until the (guarded) compactor can no longer produce one.
func (s *Store) tierFoldCandidates() ([]frameMeta, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	covered := tierCovered(s.tierDay)
	var cand []frameMeta
	for _, fr := range s.frames {
		if fr.BaseSeg >= covered {
			cand = append(cand, fr)
		} else if fr.CoveredSeg > covered {
			return nil, covered // straddler: stall
		}
	}
	return cand, covered
}

// tierFoldDayOnce folds the oldest closed day run of raw checkpoint
// frames, reporting whether it folded anything.
func (s *Store) tierFoldDayOnce(ctx context.Context) (bool, error) {
	cand, _ := s.tierFoldCandidates()
	metas := make([]tier.Meta, len(cand))
	for i, fr := range cand {
		metas[i] = tier.Meta{Seq: fr.Seq, BaseSeg: fr.BaseSeg, CoveredSeg: fr.CoveredSeg, MinHour: fr.MinHour, MaxHour: fr.MaxHour}
	}
	runs := tier.CloseRuns(tier.LevelDay, metas)
	if len(runs) == 0 {
		return false, nil
	}
	run := cand[runs[0][0]:runs[0][1]]

	s.mu.Lock()
	seq := s.nextFrameSeq
	s.nextFrameSeq++
	s.mu.Unlock()

	err := s.tierFoldSpan(ctx, tier.LevelDay, seq, len(run), func() (*tier.Frame, error) {
		inputs := make([]tier.Input, 0, len(run))
		for _, fm := range run {
			_, a, err := loadFrameFile(fm.path, s.cfg)
			if err != nil {
				return nil, fmt.Errorf("store: tier fold input %s: %w", filepath.Base(fm.path), err)
			}
			inputs = append(inputs, tier.Input{
				Meta:  tier.Meta{Seq: fm.Seq, BaseSeg: fm.BaseSeg, CoveredSeg: fm.CoveredSeg, MinHour: fm.MinHour, MaxHour: fm.MaxHour},
				State: a,
			})
		}
		return tier.FoldRaw(tier.LevelDay, seq, s.cfg, inputs)
	})
	return err == nil, err
}

// tierFoldWeekOnce folds the oldest closed week run of day frames.
func (s *Store) tierFoldWeekOnce(ctx context.Context) (bool, error) {
	s.mu.Lock()
	covered := tierCovered(s.tierWeek)
	var cand []tierFrameMeta
	for _, m := range s.tierDay {
		if m.BaseSeg >= covered {
			cand = append(cand, m)
		}
	}
	s.mu.Unlock()
	metas := make([]tier.Meta, len(cand))
	for i, m := range cand {
		metas[i] = tier.Meta{Seq: m.Seq, BaseSeg: m.BaseSeg, CoveredSeg: m.CoveredSeg, MinHour: m.MinHour, MaxHour: m.MaxHour}
	}
	runs := tier.CloseRuns(tier.LevelWeek, metas)
	if len(runs) == 0 {
		return false, nil
	}
	run := cand[runs[0][0]:runs[0][1]]

	s.mu.Lock()
	seq := s.nextFrameSeq
	s.nextFrameSeq++
	s.mu.Unlock()

	err := s.tierFoldSpan(ctx, tier.LevelWeek, seq, len(run), func() (*tier.Frame, error) {
		days := make([]*tier.Frame, 0, len(run))
		for _, m := range run {
			f, err := s.loadTierFrame(m)
			if err != nil {
				return nil, err
			}
			days = append(days, f)
		}
		return tier.FoldFrames(tier.LevelWeek, seq, days)
	})
	return err == nil, err
}

// tierFoldSpan wraps one fold in its tracing span and timing, writes
// the frame durably, and registers it. The in-memory registration (and
// the ckptGen bump that invalidates ETags) happens only after
// atomicWrite returns — the durability-before-visibility ordering the
// crash drill pins.
func (s *Store) tierFoldSpan(ctx context.Context, level tier.Level, seq uint64, inputs int, fold func() (*tier.Frame, error)) (err error) {
	_, sp := obs.StartSpan(ctx, "store.tier_fold")
	sp.Set(obs.Str("level", level.String()),
		obs.Int("frame_seq", int64(seq)),
		obs.Int("inputs", int64(inputs)))
	defer func() {
		sp.Fail(err)
		sp.End()
	}()
	t0 := time.Now()

	f, err := fold()
	if err != nil {
		return err
	}
	path := tierPath(s.dir, level, seq)
	if err := atomicWrite(path, tier.EncodeFrame(f)); err != nil {
		return err
	}

	s.mu.Lock()
	m := tierFrameMeta{FrameMeta: f.Meta(), path: path}
	switch level {
	case tier.LevelDay:
		s.tierDay = append(s.tierDay, m)
		s.tierFoldsDay++
	case tier.LevelWeek:
		s.tierWeek = append(s.tierWeek, m)
		s.tierFoldsWeek++
	}
	s.ckptGen++
	s.mu.Unlock()
	s.tierCache.Store(seq, f)
	s.om.tierFoldSeconds.ObserveSince(t0)
	s.opts.Events.Record("tier_fold", "lower-level frames folded into a durable tier frame",
		obs.Str("level", level.String()),
		obs.Int("frame_seq", int64(seq)),
		obs.Int("inputs", int64(inputs)))
	return nil
}

// QueryResolution answers a range query at the requested resolution.
// Hour (and the empty string) is the exact raw path — byte-identical to
// Query. Day and week run the span-aware planner: the coarsest tier
// frames covering the range, the raw residual beyond tier coverage
// stitched exactly on top, and the result carried in the LongHorizon
// block (the Snapshot field then holds only the exact residual tail).
// Auto resolves from the span against the store's history bounds.
func (s *Store) QueryResolution(from, to time.Time, res tier.Resolution) (*QueryResult, error) {
	if res == tier.ResolutionAuto {
		start, end := s.historyBounds()
		res = tier.AutoSpan(from, to, start, end)
	}
	if res == "" || res == tier.ResolutionHour {
		return s.Query(from, to)
	}
	for attempt := 0; ; attempt++ {
		r, err := s.tryQueryTier(from, to, res)
		if err == nil || attempt >= 2 || !errors.Is(err, os.ErrNotExist) {
			return r, err
		}
	}
}

// historyBounds reports the wall-clock extent of everything the store
// holds (frames plus live tail), for auto-resolution.
func (s *Store) historyBounds() (start, end time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lo, hi := int64(-1), int64(-1)
	cover := func(mn, mx int64) {
		if mn < 0 {
			return
		}
		if lo < 0 || mn < lo {
			lo = mn
		}
		if mx > hi {
			hi = mx
		}
	}
	for _, fr := range s.frames {
		cover(fr.MinHour, fr.MaxHour)
	}
	for _, t := range []*streaming.Analytics{s.foldingTail, s.tail} {
		if t != nil {
			if mn, mx, ok := t.Bounds(); ok {
				cover(int64(mn), int64(mx))
			}
		}
	}
	if lo < 0 {
		return time.Time{}, time.Time{}
	}
	return s.cfg.Origin.Add(time.Duration(lo) * time.Hour),
		s.cfg.Origin.Add(time.Duration(hi+1) * time.Hour)
}

func (s *Store) tryQueryTier(from, to time.Time, res tier.Resolution) (*QueryResult, error) {
	s.mu.Lock()
	weekMetas := make([]tier.FrameMeta, len(s.tierWeek))
	for i, m := range s.tierWeek {
		weekMetas[i] = m.FrameMeta
	}
	dayMetas := make([]tier.FrameMeta, len(s.tierDay))
	for i, m := range s.tierDay {
		dayMetas[i] = m.FrameMeta
	}
	plan := tier.BuildPlan(res, s.cfg.Origin, from, to, weekMetas, dayMetas)
	selected := make([]tierFrameMeta, 0, len(plan.Week)+len(plan.Day))
	for _, m := range s.tierWeek {
		for _, seq := range plan.Week {
			if m.Seq == seq {
				selected = append(selected, m)
			}
		}
	}
	for _, m := range s.tierDay {
		for _, seq := range plan.Day {
			if m.Seq == seq {
				selected = append(selected, m)
			}
		}
	}

	// The raw residual: frames beyond every selected tier's coverage,
	// plus the live tail — the same selection, widening and clone
	// discipline as the exact path (see tryQuery).
	var resid []frameMeta
	span := struct{ lo, hi int64 }{-1, -1}
	cover := func(lo, hi int64) {
		if lo < 0 {
			return
		}
		if span.lo < 0 || lo < span.lo {
			span.lo = lo
		}
		if hi > span.hi {
			span.hi = hi
		}
	}
	for _, fr := range s.frames {
		if fr.BaseSeg >= plan.RawFloor && s.hoursOverlap(fr.MinHour, fr.MaxHour, from, to) {
			resid = append(resid, fr)
			cover(fr.MinHour, fr.MaxHour)
		}
	}
	includeLive := false
	var liveBounds [][2]int64
	for _, live := range []*streaming.Analytics{s.foldingTail, s.tail} {
		if live == nil {
			continue
		}
		minH, maxH := int64(-1), int64(-1)
		if lo, hi, ok := live.Bounds(); ok {
			minH, maxH = int64(lo), int64(hi)
			liveBounds = append(liveBounds, [2]int64{minH, maxH})
		}
		if s.hoursOverlap(minH, maxH, from, to) {
			includeLive = true
		}
	}
	if s.foldingRecords+s.tailRecords == 0 {
		includeLive = false
	}
	if includeLive {
		for _, b := range liveBounds {
			cover(b[0], b[1])
		}
	}
	qcfg := widenWindow(s.cfg, span.lo, span.hi)
	var tailClone *streaming.Analytics
	if includeLive {
		tailClone = streaming.New(qcfg)
		if s.foldingTail != nil {
			tailClone.Merge(s.foldingTail)
		}
		tailClone.Merge(s.tail)
	}
	s.mu.Unlock()

	b := tier.NewBuilder(res, s.cfg.Origin)
	for _, tm := range selected {
		f, err := s.loadTierFrame(tm)
		if err != nil {
			return nil, err
		}
		b.AddFrame(f)
	}

	result := &QueryResult{From: from, To: to, Resolution: res}
	m := streaming.New(qcfg)
	acc := tier.NewSketchAccum()
	for _, fr := range resid {
		_, a, err := loadFrameFile(fr.path, s.cfg)
		if err != nil {
			return nil, err
		}
		m.Merge(a)
		acc.AddShard(a)
		result.Frames++
	}
	if tailClone != nil {
		m.Merge(tailClone)
		acc.AddShard(tailClone)
		result.TailIncluded = true
	}
	result.Snapshot = m.SnapshotRange(from, to)
	b.AddResidual(result.Snapshot, acc, result.Frames)
	result.LongHorizon = b.Answer()
	if s.cfg.Model != nil {
		for i := range result.LongHorizon.Districts {
			if d, ok := s.cfg.Model.DistrictByID(result.LongHorizon.Districts[i].ID); ok {
				result.LongHorizon.Districts[i].Name = d.Name
				result.LongHorizon.Districts[i].StateCode = d.StateCode
			}
		}
	}
	return result, nil
}
