//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package store

import (
	"strings"
	"testing"

	"cwatrace/internal/netflow"
)

// TestOpenLocksDataDir proves a second writable open of a live data dir
// fails fast instead of silently corrupting it, that read-only opens
// coexist with the writer, and that the lock dies with its holder. Unix
// only: lock_other.go documents that non-unix builds keep no
// exclusivity (an flock-less create-exclusive lock would go stale after
// a SIGKILL and block crash recovery).
func TestOpenLocksDataDir(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Append([]netflow.Record{keptRecord(1, 1, 100)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{Analytics: testConfig()}); err == nil {
		t.Fatal("second writable open of a locked data dir must fail")
	} else if !strings.Contains(err.Error(), "another process") {
		t.Fatalf("unhelpful lock error: %v", err)
	}
	r, err := Open(dir, Options{Analytics: testConfig(), ReadOnly: true})
	if err != nil {
		t.Fatalf("read-only open alongside the writer: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}
