package store

// Data-dir exclusivity. Two collectord processes pointed at one data dir
// would allocate overlapping segment/frame sequence numbers (the active
// segment is opened with O_TRUNC) and each checkpoint would delete WAL
// the other still needs — silent corruption from an easy operator
// mistake. Every writable Open therefore locks a LOCK file in the dir
// and fails fast when another process holds it. The lock dies with its
// holder, so a SIGKILLed collector never leaves a stale lock behind
// (crash recovery stays a plain restart). Read-only opens skip the lock:
// historical queries against a live collector's dir are a feature.
//
// The locking primitive is per-OS: flock(2) where syscall.Flock exists
// (lock_unix.go); elsewhere — windows, but also solaris/aix, which the
// broad `unix` build tag would wrongly include — the lock degrades to a
// best-effort breadcrumb file with no exclusivity (lock_other.go).

// lockName is the advisory lock file writable opens hold in the data dir.
const lockName = "LOCK"
