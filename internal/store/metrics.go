// The store metric catalogue: the scalar names predate the registry
// (cmd/collectord rendered them from Metrics() by hand) and are frozen
// by the daemons' exposition tests; the duration histograms cover the
// four I/O stages an operator tunes against — append (WAL write-through
// under the hot mutex), fsync (the policy-driven durability cost),
// checkpoint (tail fold + frame write) and compaction (frame-pair
// folds). Everything scalar reads the store's existing counters under
// mu at render time, so the append path carries only the histogram
// clocks.
package store

import (
	"time"

	"cwatrace/internal/obs"
)

// storeObsMetrics holds the store's hot-path instruments. The zero
// value (all nil) is the disabled mode.
type storeObsMetrics struct {
	appendSeconds     *obs.Histogram
	fsyncSeconds      *obs.Histogram
	checkpointSeconds *obs.Histogram
	compactionSeconds *obs.Histogram
	tierFoldSeconds   *obs.Histogram
}

func (m *storeObsMetrics) register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.appendSeconds = reg.Histogram("store_append_seconds",
		"WAL append latency: framing, segment write, tail fold (per batch).",
		obs.DurationBuckets)
	m.fsyncSeconds = reg.Histogram("store_fsync_seconds",
		"Active-segment fsync latency (SyncAlways appends and periodic flushes).",
		obs.DurationBuckets)
	m.checkpointSeconds = reg.Histogram("store_checkpoint_seconds",
		"Checkpoint latency: seal, tail marshal, frame write, WAL fold.",
		obs.DurationBuckets)
	m.compactionSeconds = reg.Histogram("store_compaction_seconds",
		"Frame-pair compaction latency (per fold).",
		obs.DurationBuckets)
	m.tierFoldSeconds = reg.Histogram("store_tier_fold_seconds",
		"Long-horizon tier fold latency (per day or week frame).",
		obs.DurationBuckets)
}

// registerStoreFuncs wires the render-time samples onto the registry.
// Each sample takes the store mutex exactly like Metrics() — render
// cadence, never the append path.
func registerStoreFuncs(reg *obs.Registry, s *Store) {
	if reg == nil {
		return
	}
	gauge := func(name, help string, pick func() float64) {
		reg.GaugeFunc(name, help, pick)
	}
	counter := func(name, help string, pick func() float64) {
		reg.CounterFunc(name, help, pick)
	}
	locked := func(pick func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return pick()
		}
	}
	gauge("store_segments", "Live WAL segment files (sealed plus active).",
		locked(func() float64 {
			n := len(s.sealed)
			if s.active != nil {
				n++
			}
			return float64(n)
		}))
	gauge("store_wal_bytes", "Total WAL bytes on disk.",
		locked(func() float64 { return float64(s.walBytes) }))
	gauge("store_frames", "Checkpoint frames on disk.",
		locked(func() float64 { return float64(len(s.frames)) }))
	gauge("store_tail_records", "Records appended since the last checkpoint (crash replay cost).",
		locked(func() float64 { return float64(s.tailRecords) }))
	gauge("store_last_checkpoint_age_seconds", "Seconds since the newest checkpoint frame.",
		locked(func() float64 { return time.Since(s.lastCheckpoint).Seconds() }))
	gauge("store_watermark_timestamp_seconds",
		"Newest record start timestamp folded into the store (unix seconds; 0 before traffic).",
		locked(func() float64 {
			wm := s.base.Watermark()
			if s.foldingTail != nil {
				if w := s.foldingTail.Watermark(); w.After(wm) {
					wm = w
				}
			}
			if w := s.tail.Watermark(); w.After(wm) {
				wm = w
			}
			if wm.IsZero() {
				return 0
			}
			return float64(wm.UnixNano()) / 1e9
		}))
	counter("store_appended_records_total", "Records appended this process.",
		locked(func() float64 { return float64(s.appendedRecords) }))
	counter("store_checkpoints_total", "Checkpoints folded this process.",
		locked(func() float64 { return float64(s.checkpoints) }))
	counter("store_compacted_frames_total", "Frame pairs compacted this process.",
		locked(func() float64 { return float64(s.compacted) }))
	counter("store_recovered_wal_records_total", "WAL records replayed at open.",
		locked(func() float64 { return float64(s.recoveredWAL) }))
	counter("store_recovered_frames_total", "Checkpoint frames loaded at open.",
		locked(func() float64 { return float64(s.recoveredFrames) }))
	gauge("store_tier_frames_day", "Day tier frames on disk.",
		locked(func() float64 { return float64(len(s.tierDay)) }))
	gauge("store_tier_frames_week", "Week tier frames on disk.",
		locked(func() float64 { return float64(len(s.tierWeek)) }))
	counter("store_tier_folds_day_total", "Day tier folds this process.",
		locked(func() float64 { return float64(s.tierFoldsDay) }))
	counter("store_tier_folds_week_total", "Week tier folds this process.",
		locked(func() float64 { return float64(s.tierFoldsWeek) }))
}
