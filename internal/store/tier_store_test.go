package store

// Store-level tests of the long-horizon tier layer: fold scheduling on
// checkpoint, planner-backed day/week answers against exact raw
// recomputation, byte-identical folds across batch interleavings,
// crash/reopen survival, the obsolete-duplicate sweep and the
// compaction straddle guard.

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
	"cwatrace/internal/tier"
)

// fillDay appends one day's worth of deterministic traffic (three busy
// hours, a rotating client population, one dropped record) and
// checkpoints, so each day becomes exactly one raw checkpoint frame.
func fillDay(t *testing.T, s *Store, day int) {
	t.Helper()
	var batch []netflow.Record
	for _, h := range []int{0, 5, 10} {
		hour := day*24 + h
		for c := 0; c < 5; c++ {
			// Overlapping client sets across days, each client in its
			// own /24 (keptRecord puts client>>8 in the third octet).
			client := (day*3 + c) * 256
			batch = append(batch, keptRecord(hour, client, uint64(100+10*c)))
		}
	}
	batch = append(batch, droppedRecord(day*24, day))
	if err := s.Append(batch); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// exactBuckets aggregates the exact hourly series of a raw full-range
// query into width-aligned buckets — the reference the tier answers
// must match bucket for bucket.
func exactBuckets(t *testing.T, s *Store, width int64) map[int64][2]float64 {
	t.Helper()
	raw, err := s.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	out := map[int64][2]float64{}
	for _, p := range raw.Snapshot.Hours {
		if p.Flows == 0 && p.Bytes == 0 {
			continue
		}
		start := int64(p.Hour) - int64(p.Hour)%width
		b := out[start]
		out[start] = [2]float64{b[0] + p.Flows, b[1] + p.Bytes}
	}
	return out
}

func checkAnswerExact(t *testing.T, s *Store, r *QueryResult, res tier.Resolution) {
	t.Helper()
	ans := r.LongHorizon
	if ans == nil || r.Resolution != res {
		t.Fatalf("resolution %s: got resolution %q, long_horizon %v", res, r.Resolution, ans != nil)
	}
	if !ans.Approximate {
		t.Fatal("tiered answers must be flagged approximate")
	}
	raw, err := s.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Census.Total != raw.Snapshot.Census.Total || ans.Census.Kept != raw.Snapshot.Census.Kept {
		t.Fatalf("census diverges from exact: got %+v want %+v", ans.Census, raw.Snapshot.Census)
	}
	for reason, n := range raw.Snapshot.Census.Dropped {
		if ans.Census.Dropped[reason] != n {
			t.Fatalf("dropped[%v] = %d, want %d", reason, ans.Census.Dropped[reason], n)
		}
	}
	want := exactBuckets(t, s, int64(res.Level().BucketHours()))
	if len(ans.Buckets) != len(want) {
		t.Fatalf("%d buckets, want %d", len(ans.Buckets), len(want))
	}
	for _, b := range ans.Buckets {
		w, ok := want[b.StartHour]
		if !ok || b.Flows != w[0] || b.Bytes != w[1] {
			t.Fatalf("bucket %d = {%v %v}, want %v", b.StartHour, b.Flows, b.Bytes, w)
		}
	}
	// District rollups are exact sums too.
	wantD := map[string]uint64{}
	for _, d := range raw.Snapshot.Districts {
		wantD[d.ID] = d.Flows
	}
	if len(ans.Districts) != len(wantD) {
		t.Fatalf("%d districts, want %d", len(ans.Districts), len(wantD))
	}
	for _, d := range ans.Districts {
		if wantD[d.ID] != d.Flows {
			t.Fatalf("district %s = %d, want %d", d.ID, d.Flows, wantD[d.ID])
		}
	}
}

func TestTierFoldOnCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Tier: true})
	const days = 10
	for d := 0; d < days; d++ {
		fillDay(t, s, d)
	}
	// Each checkpoint closes the previous day's run; the trailing day
	// stays open as the raw residual.
	m := s.Metrics()
	if m.TierFramesDay != days-1 {
		t.Fatalf("%d day frames, want %d", m.TierFramesDay, days-1)
	}
	if m.TierFramesWeek != 1 {
		t.Fatalf("%d week frames, want 1 (days 0-6 closed by day 7)", m.TierFramesWeek)
	}
	if m.TierFolds != uint64(days-1+1) {
		t.Fatalf("TierFolds = %d, want %d", m.TierFolds, days-1+1)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "tier-d-*.tf"))
	if len(files) != days-1 {
		t.Fatalf("%d tier-d files on disk, want %d", len(files), days-1)
	}

	rd, err := s.QueryResolution(time.Time{}, time.Time{}, tier.ResolutionDay)
	if err != nil {
		t.Fatal(err)
	}
	checkAnswerExact(t, s, rd, tier.ResolutionDay)
	if rd.LongHorizon.TierFrames != days-1 {
		t.Fatalf("day answer merged %d tier frames, want %d", rd.LongHorizon.TierFrames, days-1)
	}
	rw, err := s.QueryResolution(time.Time{}, time.Time{}, tier.ResolutionWeek)
	if err != nil {
		t.Fatal(err)
	}
	checkAnswerExact(t, s, rw, tier.ResolutionWeek)
	// Week plan: 1 week frame (days 0-6) + day frames beyond week
	// coverage (days 7, 8).
	if rw.LongHorizon.TierFrames != 3 {
		t.Fatalf("week answer merged %d tier frames, want 3", rw.LongHorizon.TierFrames)
	}

	// Distinct prefixes: HLL small-range estimates must stay within the
	// pinned bound of the exact distinct count.
	exact := map[int]bool{}
	for d := 0; d < days; d++ {
		for c := 0; c < 5; c++ {
			exact[d*3+c] = true
		}
	}
	got, want := float64(rd.LongHorizon.DistinctPrefixes), float64(len(exact))
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("distinct prefixes %v, exact %v (>5%% off)", got, want)
	}

	// Hour resolution must be the untouched exact path.
	rh, err := s.QueryResolution(time.Time{}, time.Time{}, tier.ResolutionHour)
	if err != nil {
		t.Fatal(err)
	}
	if rh.LongHorizon != nil || rh.Resolution != "" {
		t.Fatal("hour resolution must not produce a long-horizon block")
	}
	raw, err := s.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if snapJSON(t, rh) != snapJSON(t, raw) {
		t.Fatal("hour-resolution answer diverges from Query")
	}

	// Auto resolution resolves from the span: 10 days of history with
	// open bounds → day.
	ra, err := s.QueryResolution(time.Time{}, time.Time{}, tier.ResolutionAuto)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Resolution != tier.ResolutionDay {
		t.Fatalf("auto over 10 days resolved to %q, want day", ra.Resolution)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTierFoldDeterministicAcrossBatching(t *testing.T) {
	// Same records, same checkpoint boundaries, different batch splits
	// (one batch per day vs one batch per record, reversed) — the
	// commutativity the ingest workers rely on. Tier frame files must be
	// byte-identical.
	build := func(dir string, perRecord bool) {
		s := mustOpen(t, dir, Options{Tier: true})
		defer s.Close()
		for d := 0; d < 5; d++ {
			var batch []netflow.Record
			for _, h := range []int{2, 7} {
				for c := 0; c < 4; c++ {
					batch = append(batch, keptRecord(d*24+h, d+c, uint64(50+c)))
				}
			}
			if perRecord {
				for i := len(batch) - 1; i >= 0; i-- {
					if err := s.Append(batch[i : i+1]); err != nil {
						t.Fatal(err)
					}
				}
			} else if err := s.Append(batch); err != nil {
				t.Fatal(err)
			}
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	build(dirA, false)
	build(dirB, true)
	filesA, _ := filepath.Glob(filepath.Join(dirA, "tier-*.tf"))
	if len(filesA) == 0 {
		t.Fatal("no tier frames produced")
	}
	for _, fa := range filesA {
		fb := filepath.Join(dirB, filepath.Base(fa))
		a, err := os.ReadFile(fa)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(fb)
		if err != nil {
			t.Fatalf("tier frame missing under per-record batching: %v", err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s differs across batch interleavings", filepath.Base(fa))
		}
	}
}

func TestTierCrashReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Tier: true})
	for d := 0; d < 9; d++ {
		fillDay(t, s, d)
	}
	before, err := s.QueryResolution(time.Time{}, time.Time{}, tier.ResolutionWeek)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := snapJSON(t, before)
	nDay, nWeek := s.Metrics().TierFramesDay, s.Metrics().TierFramesWeek
	// Abandon without Close — the SIGKILL shape (no flush, no seal).
	releaseDirLock(s.lock)

	s2 := mustOpen(t, dir, Options{Tier: true})
	m := s2.Metrics()
	if m.TierFramesDay != nDay || m.TierFramesWeek != nWeek {
		t.Fatalf("reopen lost tier frames: %d/%d, want %d/%d", m.TierFramesDay, m.TierFramesWeek, nDay, nWeek)
	}
	after, err := s2.QueryResolution(time.Time{}, time.Time{}, tier.ResolutionWeek)
	if err != nil {
		t.Fatal(err)
	}
	if snapJSON(t, after) != wantJSON {
		t.Fatal("week-resolution answer changed across crash/reopen")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// A read-only open serves tiered queries too (folding disabled, but
	// existing frames load).
	ro := mustOpen(t, dir, Options{ReadOnly: true})
	r, err := ro.QueryResolution(time.Time{}, time.Time{}, tier.ResolutionDay)
	if err != nil {
		t.Fatal(err)
	}
	if r.LongHorizon == nil || r.LongHorizon.TierFrames == 0 {
		t.Fatal("read-only open did not serve tier frames")
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTierObsoleteSweep(t *testing.T) {
	// A crashed refold leaves a newer frame containing an older one's
	// WAL interval; Open must keep the newer frame and sweep the older,
	// mirroring the checkpoint containment sweep.
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Tier: true})
	for d := 0; d < 4; d++ {
		fillDay(t, s, d)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "tier-d-*.tf"))
	if len(files) < 2 {
		t.Fatalf("want ≥2 day frames, got %d", len(files))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Fabricate the "newer containing frame": re-encode the first day
	// frame under a fresh, higher seq with the same coverage.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	f, err := tier.DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	f.Seq = 1000
	dup := tierPath(dir, tier.LevelDay, f.Seq)
	if err := os.WriteFile(dup, tier.EncodeFrame(f), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{Tier: true})
	defer s2.Close()
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Fatalf("contained older frame %s not swept", filepath.Base(files[0]))
	}
	if _, err := os.Stat(dup); err != nil {
		t.Fatalf("containing frame swept instead: %v", err)
	}
	if got, want := s2.Metrics().TierFramesDay, len(files); got != want {
		t.Fatalf("%d day frames after sweep, want %d", got, want)
	}
	r, err := s2.QueryResolution(time.Time{}, time.Time{}, tier.ResolutionDay)
	if err != nil {
		t.Fatal(err)
	}
	checkAnswerExact(t, s2, r, tier.ResolutionDay)
}

func TestCompactionStraddleGuard(t *testing.T) {
	// A tight frame budget forces compaction every checkpoint; the guard
	// must never let a merged raw frame straddle the day-tier coverage
	// horizon, and tiered answers must stay exact throughout.
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Tier: true, MaxFrames: 2})
	defer s.Close()
	for d := 0; d < 8; d++ {
		fillDay(t, s, d)
		s.mu.Lock()
		covered := tierCovered(s.tierDay)
		for _, fr := range s.frames {
			if fr.BaseSeg < covered && covered < fr.CoveredSeg {
				s.mu.Unlock()
				t.Fatalf("day %d: raw frame (%d,%d] straddles tier horizon %d", d, fr.BaseSeg, fr.CoveredSeg, covered)
			}
		}
		s.mu.Unlock()
	}
	r, err := s.QueryResolution(time.Time{}, time.Time{}, tier.ResolutionDay)
	if err != nil {
		t.Fatal(err)
	}
	checkAnswerExact(t, s, r, tier.ResolutionDay)
}

func TestTierDisabledStillServes(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Tier: true})
	for d := 0; d < 5; d++ {
		fillDay(t, s, d)
	}
	nDay := s.Metrics().TierFramesDay
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{}) // Tier off
	defer s2.Close()
	if got := s2.Metrics().TierFramesDay; got != nDay {
		t.Fatalf("tier frames not loaded with folding disabled: %d, want %d", got, nDay)
	}
	fillDay(t, s2, 5)
	if got := s2.Metrics().TierFramesDay; got != nDay {
		t.Fatalf("folding ran with Tier off: %d frames, want %d", got, nDay)
	}
	r, err := s2.QueryResolution(time.Time{}, time.Time{}, tier.ResolutionDay)
	if err != nil {
		t.Fatal(err)
	}
	checkAnswerExact(t, s2, r, tier.ResolutionDay)
}

// TestTierRangeQueryBuckets pins partial-range behaviour: bucket series
// are trimmed to overlapping frames, and the residual snapshot stays
// hour-exact inside the range.
func TestTierRangeQueryBuckets(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Tier: true})
	defer s.Close()
	for d := 0; d < 6; d++ {
		fillDay(t, s, d)
	}
	from := entime.StudyStart.Add(2 * 24 * time.Hour)
	to := entime.StudyStart.Add(4 * 24 * time.Hour)
	r, err := s.QueryResolution(from, to, tier.ResolutionDay)
	if err != nil {
		t.Fatal(err)
	}
	if r.LongHorizon == nil {
		t.Fatal("no long-horizon block")
	}
	// Days 2 and 3 overlap; each contributes its exact bucket.
	want := map[int64]bool{48: true, 72: true}
	for _, b := range r.LongHorizon.Buckets {
		if !want[b.StartHour] {
			t.Fatalf("unexpected bucket at hour %d", b.StartHour)
		}
		delete(want, b.StartHour)
	}
	if len(want) != 0 {
		t.Fatalf("missing buckets: %v", want)
	}
	// Exact per-day flow count: 3 busy hours × 5 clients.
	for _, b := range r.LongHorizon.Buckets {
		if b.Flows != 15 {
			t.Fatalf("bucket %d flows %v, want 15", b.StartHour, b.Flows)
		}
	}
}
