// Package store is the collector's durable state subsystem: an
// append-only, segment-based write-ahead log of ingested flow-record
// batches plus periodic checkpoint frames of folded streaming analytics
// state, with crash recovery and a historical time-range query engine on
// top.
//
// The paper's vantage point ran for weeks; the live collector
// (internal/ingest + internal/streaming) kept every aggregate in RAM and
// forgot it on restart. The store closes that gap:
//
//   - Every batch the pipeline ingests is appended to the active WAL
//     segment (write-through to the OS, fsync per policy) and folded into
//     an in-memory tail shard that mirrors exactly the un-checkpointed
//     WAL content.
//   - Checkpoint seals the active segment, persists the tail shard as a
//     checkpoint frame (full-fidelity streaming state, CRC-protected),
//     folds the sealed segments away, and starts a fresh segment — the
//     compaction step that keeps both the WAL and the tail bounded.
//   - Open replays the surviving frames and the WAL tail in order, so a
//     restarted collector resumes with byte-identical aggregates, and a
//     torn record at the end of the last segment (the SIGKILL case) is
//     truncated, never misread.
//   - Query merges the checkpoint frames overlapping a time range into
//     one snapshot — the longitudinal Figure-2/launch-spike view over
//     simulated weeks that a single in-memory window could never serve.
//
// Aggregation is commutative (see internal/streaming), so the recovered
// state does not depend on how batches interleaved across pipeline
// workers, and query results do not depend on where checkpoints happened
// to fall.
package store

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cwatrace/internal/netflow"
	"cwatrace/internal/obs"
	"cwatrace/internal/streaming"
	"cwatrace/internal/tier"
)

// segMagic heads every WAL segment file, followed by the segment
// sequence number (8 bytes, big-endian).
var segMagic = [8]byte{'C', 'W', 'A', 'S', 'E', 'G', '0', '1'}

const segHeaderLen = 16

// metaName is the store's configuration descriptor inside the data dir.
const metaName = "meta.json"

// SyncPolicy selects when WAL appends reach stable storage. Appends are
// always written through to the OS immediately (surviving a process
// kill); the policy only governs fsync, i.e. machine-crash durability.
type SyncPolicy string

const (
	// SyncAlways fsyncs the active segment after every append.
	SyncAlways SyncPolicy = "always"
	// SyncInterval leaves periodic fsync to the caller's flush hook (the
	// ingest pipeline's FlushInterval calls Store.Flush); the store
	// itself syncs only on seal, checkpoint and close.
	SyncInterval SyncPolicy = "interval"
	// SyncNever syncs only on seal, checkpoint and close.
	SyncNever SyncPolicy = "never"
)

// ParseSyncPolicy parses a -fsync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncAlways, SyncInterval, SyncNever:
		return SyncPolicy(s), nil
	}
	return "", fmt.Errorf("store: unknown fsync policy %q (want always, interval or never)", s)
}

// Options parameterizes Open.
type Options struct {
	// Analytics configures the streaming aggregation the store folds.
	// Zero fields are adopted from the store's meta file when one exists
	// (so readers need not repeat the collector's flags); explicitly set
	// values conflicting with the meta file are an error for the
	// state-affecting fields (Origin, WindowHours, PrefixBits).
	Analytics streaming.Config
	// SegmentBytes rotates the active WAL segment once it grows past
	// this size (default 4 MiB).
	SegmentBytes int64
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// MaxFrames bounds the checkpoint-frame count: past it, the oldest
	// adjacent frames are folded together (default 64).
	MaxFrames int
	// ReadOnly opens the store for historical queries only: no WAL
	// truncation, no new segment, Append/Checkpoint fail.
	ReadOnly bool
	// Tier enables long-horizon folding: checkpoints additionally fold
	// closed day runs of checkpoint frames into day tier frames, and
	// closed weeks of day frames into week frames (see internal/tier).
	// Existing tier frames are always loaded and served regardless — the
	// flag gates only the production of new ones.
	Tier bool
	// Metrics, when set, registers the store's telemetry on the registry
	// (see metrics.go for the catalogue). Nil runs uninstrumented.
	Metrics *obs.Registry
	// Tracer, when set, records background traces for the store's I/O
	// operations: one per checkpoint fold (with compaction folds as
	// child spans) and one per policy-driven fsync. Nil disables.
	Tracer *obs.Tracer
	// Events, when set, receives checkpoint_committed and wal_rollback
	// flight-recorder events. Nil disables.
	Events *obs.EventRing
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.Sync == "" {
		o.Sync = SyncInterval
	}
	if o.MaxFrames <= 0 {
		o.MaxFrames = 64
	}
	return o
}

// Metrics is a point-in-time view of the store gauges and counters.
type Metrics struct {
	// Segments counts live WAL segment files (sealed-but-unfolded plus
	// the active one); WALBytes is their total size on disk.
	Segments int   `json:"segments"`
	WALBytes int64 `json:"wal_bytes"`
	// Frames counts checkpoint frames; FrameRecords is the census total
	// folded into them.
	Frames       int    `json:"frames"`
	FrameRecords uint64 `json:"frame_records"`
	// TailRecords counts records appended since the last checkpoint (the
	// WAL replay cost of a crash right now).
	TailRecords uint64 `json:"tail_records"`
	// AppendedRecords/AppendedBatches count Append traffic this process.
	AppendedRecords uint64 `json:"appended_records"`
	AppendedBatches uint64 `json:"appended_batches"`
	// RecoveredFrames and RecoveredWALRecords describe what Open rebuilt;
	// TruncatedBytes is the torn WAL tail discarded during recovery.
	RecoveredFrames     int    `json:"recovered_frames"`
	RecoveredWALRecords uint64 `json:"recovered_wal_records"`
	TruncatedBytes      int64  `json:"truncated_bytes"`
	// Checkpoints and CompactedFrames count folding activity;
	// LastCheckpoint stamps the newest frame (or the open time of a
	// store that has none).
	Checkpoints     uint64    `json:"checkpoints"`
	CompactedFrames uint64    `json:"compacted_frames"`
	LastCheckpoint  time.Time `json:"last_checkpoint"`
	// Long-horizon tier state: live frames per level and folds this
	// process (omitted while zero — the fields postdate the v1 schema).
	TierFramesDay  int    `json:"tier_frames_day,omitempty"`
	TierFramesWeek int    `json:"tier_frames_week,omitempty"`
	TierFolds      uint64 `json:"tier_folds,omitempty"`
}

// frameMeta is one live checkpoint frame (metadata only; the analytics
// state stays on disk until a query loads it).
type frameMeta struct {
	frameInfo
	path string
}

// segInfo is one sealed, not-yet-folded WAL segment.
type segInfo struct {
	seq  uint64
	path string
	size int64
}

// metaFile persists the resolved analytics configuration so restarts and
// read-only opens agree on the state-affecting parameters.
type metaFile struct {
	Version       int       `json:"version"`
	Origin        time.Time `json:"origin"`
	WindowHours   int       `json:"window_hours"`
	PrefixBits    int       `json:"prefix_bits"`
	TopK          int       `json:"topk"`
	SpikeFactor   float64   `json:"spike_factor"`
	SpikeHistory  int       `json:"spike_history"`
	SpikeMinFlows float64   `json:"spike_min_flows"`
	SegmentBytes  int64     `json:"segment_bytes"`
}

// Store is an open durable state store. All methods are safe for
// concurrent use; mu serializes the WAL and in-memory state (the hot
// Append path), while ckptMu serializes whole checkpoints so their
// heavy I/O can run outside mu without two folds interleaving. Lock
// order: ckptMu before mu.
type Store struct {
	mu     sync.Mutex
	ckptMu sync.Mutex
	dir    string
	opts   Options
	cfg    streaming.Config

	frames       []frameMeta // sorted by BaseSeg
	base         *streaming.Analytics
	tail         *streaming.Analytics
	tailRecords  uint64
	frameRecords uint64

	// foldingTail is the swapped-out tail of an in-flight checkpoint
	// (chronologically between base and tail). Snapshot and Query merge
	// it so a fold in progress never makes records transiently invisible.
	// Reads are safe: the checkpoint only reads it while it is set.
	foldingTail    *streaming.Analytics
	foldingRecords uint64

	// lock is the flocked data-dir LOCK file of a writable open (nil when
	// ReadOnly); see lock.go.
	lock *os.File

	active    *os.File
	activeSeq uint64
	activeOff int64
	sealed    []segInfo
	walBytes  int64

	nextSegSeq   uint64
	nextFrameSeq uint64

	payloadBuf []byte
	recordBuf  []byte

	appendedRecords uint64
	appendedBatches uint64
	recoveredWAL    uint64
	recoveredFrames int
	truncatedBytes  int64
	checkpoints     uint64
	compacted       uint64
	lastCheckpoint  time.Time

	// Generation counters feeding Version (the API layer's ETag source).
	// boot salts every token with this process's open, so validators from
	// a previous run can never alias a post-restart state; ckptGen bumps
	// whenever the frame set changes (checkpoint commit, compaction),
	// tailGen whenever an Append lands in the live tail.
	boot    uint64
	ckptGen uint64
	tailGen uint64

	// Long-horizon tier frames per level (sorted by BaseSeg, under mu)
	// and the decoded-frame cache (tier files are immutable; the cache
	// is keyed by Seq, which is unique across levels).
	tierDay       []tierFrameMeta
	tierWeek      []tierFrameMeta
	tierCache     sync.Map
	tierFoldsDay  uint64
	tierFoldsWeek uint64

	om storeObsMetrics

	closed bool
}

// newTail builds a tail shard. Tails run in archive mode: the hourly
// ring grows instead of evicting, because a checkpoint frame must hold
// *every* hour of the WAL interval whose deletion it authorizes — a
// burst that ingests more data-hours than the live window between two
// checkpoints must not lose its head. Memory stays bounded by the
// checkpoint cadence; the live sliding-window view is re-imposed when
// Snapshot merges at the live window.
func (s *Store) newTail() *streaming.Analytics {
	cfg := s.cfg
	cfg.Archive = true
	return streaming.New(cfg)
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.seg", seq))
}

func ckptPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%016d.ck", seq))
}

// Open opens (or creates) the store in dir and runs crash recovery:
// checkpoint frames are merged into the in-memory base state, the WAL
// tail beyond the last durable checkpoint is replayed into the tail
// shard, a torn record at the end of the last segment is truncated, and
// (unless ReadOnly) a fresh active segment is started.
func Open(dir string, opts Options) (*Store, error) {
	segBytesSet := opts.SegmentBytes > 0
	opts = opts.withDefaults()
	var lock *os.File
	if !opts.ReadOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		var err error
		if lock, err = acquireDirLock(dir); err != nil {
			return nil, err
		}
	}
	opened := false
	defer func() {
		if !opened {
			releaseDirLock(lock)
		}
	}()

	meta, err := readMeta(dir)
	if err != nil {
		return nil, err
	}
	if meta != nil && !segBytesSet && meta.SegmentBytes > 0 {
		// Like the analytics fields, the rotation size persists: a
		// restart without -segment-bytes keeps the store's own setting.
		opts.SegmentBytes = meta.SegmentBytes
	}
	cfg, err := resolveConfig(opts.Analytics, meta)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:  dir,
		opts: opts,
		cfg:  cfg,
		base: streaming.New(cfg),
		boot: uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32,
	}
	s.tail = s.newTail()
	if meta == nil {
		if opts.ReadOnly {
			return nil, fmt.Errorf("store: %s has no %s (not a store, or never initialized)", dir, metaName)
		}
		if err := s.writeMeta(); err != nil {
			return nil, err
		}
	}

	segs, ckpts, tiers, err := s.scanDir()
	if err != nil {
		return nil, err
	}
	covered, err := s.loadFrames(ckpts)
	if err != nil {
		return nil, err
	}
	if err := s.loadTierFrames(tiers); err != nil {
		return nil, err
	}
	if err := s.replayWAL(segs, covered); err != nil {
		return nil, err
	}

	if s.nextFrameSeq == 0 {
		s.nextFrameSeq = 1
	}
	if s.nextSegSeq == 0 {
		s.nextSegSeq = 1
	}
	if s.lastCheckpoint.IsZero() {
		s.lastCheckpoint = time.Now()
	}
	if !opts.ReadOnly {
		if err := s.openSegmentLocked(); err != nil {
			return nil, err
		}
	}
	s.lock = lock
	s.om.register(opts.Metrics)
	registerStoreFuncs(opts.Metrics, s)
	opened = true
	return s, nil
}

// readMeta loads meta.json, returning nil when the file does not exist.
func readMeta(dir string) (*metaFile, error) {
	data, err := os.ReadFile(filepath.Join(dir, metaName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var m metaFile
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: parsing %s: %w", metaName, err)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("store: %s version %d, want 1", metaName, m.Version)
	}
	return &m, nil
}

// resolveConfig fills zero analytics fields from the meta file, applies
// defaults, and rejects conflicts on the state-affecting parameters.
func resolveConfig(cfg streaming.Config, m *metaFile) (streaming.Config, error) {
	if m != nil {
		if cfg.Origin.IsZero() {
			cfg.Origin = m.Origin
		}
		if cfg.WindowHours <= 0 {
			cfg.WindowHours = m.WindowHours
		}
		if cfg.PrefixBits <= 0 {
			cfg.PrefixBits = m.PrefixBits
		}
		if cfg.TopK <= 0 {
			cfg.TopK = m.TopK
		}
		if cfg.SpikeFactor <= 0 {
			cfg.SpikeFactor = m.SpikeFactor
		}
		if cfg.SpikeHistory <= 0 {
			cfg.SpikeHistory = m.SpikeHistory
		}
		if cfg.SpikeMinFlows <= 0 {
			cfg.SpikeMinFlows = m.SpikeMinFlows
		}
	}
	cfg = cfg.WithDefaults()
	if m != nil && (!cfg.Origin.Equal(m.Origin) || cfg.WindowHours != m.WindowHours || cfg.PrefixBits != m.PrefixBits) {
		return cfg, fmt.Errorf("store: configured window [%s +%dh /%d] conflicts with stored [%s +%dh /%d]",
			cfg.Origin, cfg.WindowHours, cfg.PrefixBits, m.Origin, m.WindowHours, m.PrefixBits)
	}
	return cfg, nil
}

func (s *Store) writeMeta() error {
	m := metaFile{
		Version:       1,
		Origin:        s.cfg.Origin,
		WindowHours:   s.cfg.WindowHours,
		PrefixBits:    s.cfg.PrefixBits,
		TopK:          s.cfg.TopK,
		SpikeFactor:   s.cfg.SpikeFactor,
		SpikeHistory:  s.cfg.SpikeHistory,
		SpikeMinFlows: s.cfg.SpikeMinFlows,
		SegmentBytes:  s.opts.SegmentBytes,
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return atomicWrite(filepath.Join(s.dir, metaName), append(data, '\n'))
}

// scanDir inventories segment, checkpoint and tier files (sorted by
// sequence) and, on a writable open, sweeps stale temp files from
// crashed writes.
func (s *Store) scanDir() ([]segInfo, []frameMeta, []tierFrameMeta, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: %w", err)
	}
	var segs []segInfo
	var ckpts []frameMeta
	var tiers []tierFrameMeta
	for _, e := range entries {
		name := e.Name()
		switch {
		case len(name) > 4 && name[len(name)-4:] == ".tmp":
			if !s.opts.ReadOnly {
				_ = os.Remove(filepath.Join(s.dir, name))
			}
		case matchSeq(name, "wal-", ".seg") != nil:
			seq := *matchSeq(name, "wal-", ".seg")
			info, err := e.Info()
			if err != nil {
				return nil, nil, nil, fmt.Errorf("store: %w", err)
			}
			segs = append(segs, segInfo{seq: seq, path: filepath.Join(s.dir, name), size: info.Size()})
			if seq >= s.nextSegSeq {
				s.nextSegSeq = seq + 1
			}
		case matchSeq(name, "ckpt-", ".ck") != nil:
			seq := *matchSeq(name, "ckpt-", ".ck")
			ckpts = append(ckpts, frameMeta{frameInfo: frameInfo{Seq: seq}, path: filepath.Join(s.dir, name)})
			if seq >= s.nextFrameSeq {
				s.nextFrameSeq = seq + 1
			}
		case matchSeq(name, "tier-d-", ".tf") != nil:
			seq := *matchSeq(name, "tier-d-", ".tf")
			tiers = append(tiers, tierFrameMeta{
				FrameMeta: tier.FrameMeta{Level: tier.LevelDay, Seq: seq},
				path:      filepath.Join(s.dir, name)})
			if seq >= s.nextFrameSeq {
				s.nextFrameSeq = seq + 1
			}
		case matchSeq(name, "tier-w-", ".tf") != nil:
			seq := *matchSeq(name, "tier-w-", ".tf")
			tiers = append(tiers, tierFrameMeta{
				FrameMeta: tier.FrameMeta{Level: tier.LevelWeek, Seq: seq},
				path:      filepath.Join(s.dir, name)})
			if seq >= s.nextFrameSeq {
				s.nextFrameSeq = seq + 1
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i].Seq < ckpts[j].Seq })
	return segs, ckpts, tiers, nil
}

// matchSeq parses names like wal-%016d.seg; nil means no match.
func matchSeq(name, prefix, suffix string) *uint64 {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return nil
	}
	var seq uint64
	for _, c := range name[len(prefix) : len(prefix)+16] {
		if c < '0' || c > '9' {
			return nil
		}
		seq = seq*10 + uint64(c-'0')
	}
	return &seq
}

// loadFrames reads every checkpoint frame, drops frames whose WAL
// interval is contained in another's (the half-done-compaction case),
// merges the survivors into the base state in WAL order, and returns the
// highest covered segment.
func (s *Store) loadFrames(ckpts []frameMeta) (uint64, error) {
	// One read+decode per frame; the analytics ride along until the
	// obsolete sweep decides which ones merge (recovery is the latency-
	// critical path, re-reading every file would double its I/O).
	decoded := make([]*streaming.Analytics, len(ckpts))
	for i := range ckpts {
		info, a, err := loadFrameFile(ckpts[i].path, s.cfg)
		if err != nil {
			return 0, fmt.Errorf("store: checkpoint %s: %w", filepath.Base(ckpts[i].path), err)
		}
		if info.Seq != ckpts[i].Seq {
			return 0, fmt.Errorf("store: checkpoint %s carries frame seq %d", filepath.Base(ckpts[i].path), info.Seq)
		}
		ckpts[i].frameInfo = info
		decoded[i] = a
	}

	// A compaction writes the merged frame before removing its inputs; a
	// crash in between leaves frames whose (BaseSeg, CoveredSeg] interval
	// is contained in the merged one. Containment with a higher Seq wins.
	type liveFrame struct {
		meta frameMeta
		a    *streaming.Analytics
	}
	var live []liveFrame
	for i := range ckpts {
		obsolete := false
		for j := range ckpts {
			if i == j {
				continue
			}
			o, n := ckpts[i].frameInfo, ckpts[j].frameInfo
			if n.BaseSeg <= o.BaseSeg && o.CoveredSeg <= n.CoveredSeg && n.Seq > o.Seq {
				obsolete = true
				break
			}
		}
		if obsolete {
			if !s.opts.ReadOnly {
				_ = os.Remove(ckpts[i].path)
			}
			continue
		}
		live = append(live, liveFrame{meta: ckpts[i], a: decoded[i]})
	}
	sort.Slice(live, func(i, j int) bool { return live[i].meta.BaseSeg < live[j].meta.BaseSeg })

	var covered uint64
	for _, fr := range live {
		s.base.Merge(fr.a)
		s.frames = append(s.frames, fr.meta)
		s.frameRecords += fr.meta.Records
		if fr.meta.CoveredSeg > covered {
			covered = fr.meta.CoveredSeg
		}
		if st, err := os.Stat(fr.meta.path); err == nil && st.ModTime().After(s.lastCheckpoint) {
			s.lastCheckpoint = st.ModTime()
		}
	}
	s.recoveredFrames = len(s.frames)
	return covered, nil
}

// replayWAL folds every batch beyond the covered position into the tail
// shard. Damage in the final segment is a torn tail: the segment is
// truncated at the last intact record (the crash contract). Damage in an
// earlier segment is real corruption and fails the open.
func (s *Store) replayWAL(segs []segInfo, covered uint64) error {
	var replay []segInfo
	for _, seg := range segs {
		if seg.seq <= covered {
			// Folded into a checkpoint whose cleanup did not finish.
			if !s.opts.ReadOnly {
				_ = os.Remove(seg.path)
			}
			continue
		}
		replay = append(replay, seg)
	}
	for i, seg := range replay {
		last := i == len(replay)-1
		if err := s.replaySegment(seg, last); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) replaySegment(seg segInfo, last bool) error {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	torn := func(off int) error {
		if !last {
			return fmt.Errorf("store: segment %s damaged at offset %d with later segments intact", filepath.Base(seg.path), off)
		}
		s.truncatedBytes += int64(len(data) - off)
		if s.opts.ReadOnly {
			s.walBytes += int64(off)
			return nil
		}
		if off == 0 {
			if err := os.Remove(seg.path); err != nil {
				return fmt.Errorf("store: %w", err)
			}
			return nil
		}
		if err := os.Truncate(seg.path, int64(off)); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.sealed = append(s.sealed, segInfo{seq: seg.seq, path: seg.path, size: int64(off)})
		s.walBytes += int64(off)
		return nil
	}
	if len(data) < segHeaderLen || [8]byte(data[:8]) != segMagic || binary.BigEndian.Uint64(data[8:16]) != seg.seq {
		return torn(0)
	}
	off := segHeaderLen
	for off < len(data) {
		typ, payload, n, err := readRecordFrame(data[off:])
		if err == nil && typ != recTypeBatch {
			err = fmt.Errorf("%w: record type %d in WAL", ErrCorrupt, typ)
		}
		var batch []netflow.Record
		if err == nil {
			err = decodeBatchPayload(payload, func(r netflow.Record) error {
				batch = append(batch, r)
				return nil
			})
		}
		if err != nil {
			return torn(off)
		}
		s.tail.Ingest(batch)
		s.tailRecords += uint64(len(batch))
		s.recoveredWAL += uint64(len(batch))
		off += n
	}
	s.sealed = append(s.sealed, seg)
	s.walBytes += seg.size
	return nil
}

// openSegmentLocked starts a fresh active segment.
func (s *Store) openSegmentLocked() error {
	seq := s.nextSegSeq
	s.nextSegSeq++
	path := segPath(s.dir, seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:8], segMagic[:])
	for i := 0; i < 8; i++ {
		hdr[8+i] = byte(seq >> (56 - 8*i))
	}
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.active = f
	s.activeSeq = seq
	s.activeOff = segHeaderLen
	s.walBytes += segHeaderLen
	return nil
}

// Append writes one record batch to the WAL (write-through, fsync per
// policy) and folds it into the tail shard. The batch is not retained.
// It is the ingest pipeline's Sink.
func (s *Store) Append(batch []netflow.Record) error {
	if len(batch) == 0 {
		return nil
	}
	// Unsampled timing: an append is already a framed write syscall, so
	// two clock reads vanish in the noise (unlike the ingest decode path,
	// which samples).
	var t0 time.Time
	if s.om.appendSeconds != nil {
		t0 = time.Now()
		defer func() { s.om.appendSeconds.ObserveSince(t0) }()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if s.opts.ReadOnly {
		return errors.New("store: read-only")
	}
	walErr := s.writeWALLocked(batch)
	// Availability over durability: the tail — and with it /snapshot,
	// /query and the next checkpoint — sees the batch even when the WAL
	// write failed. A WAL error only degrades crash-durability until the
	// next successful checkpoint folds the tail into a frame; the caller
	// (the pipeline's SinkErrors counter) surfaces it.
	s.tail.Ingest(batch)
	s.tailRecords += uint64(len(batch))
	s.tailGen++
	s.appendedRecords += uint64(len(batch))
	s.appendedBatches++
	if walErr != nil {
		return walErr
	}
	if s.opts.Sync == SyncAlways {
		if err := s.syncActiveLocked(); err != nil {
			return fmt.Errorf("store: WAL sync: %w", err)
		}
	}
	if s.activeOff >= s.opts.SegmentBytes {
		return s.rotateLocked()
	}
	return nil
}

// syncActiveLocked fsyncs the active segment, timing the policy-driven
// durability cost. Each fsync is its own background trace (nil-safe
// no-op when the store runs untraced), so a device whose sync latency
// degrades shows up in the tail-sampled ring as slow store.fsync
// traces.
func (s *Store) syncActiveLocked() error {
	_, sp := s.opts.Tracer.StartTrace(context.Background(), "store.fsync", 0)
	var t0 time.Time
	if s.om.fsyncSeconds != nil {
		t0 = time.Now()
	}
	err := s.active.Sync()
	if s.om.fsyncSeconds != nil {
		s.om.fsyncSeconds.ObserveSince(t0)
	}
	sp.Fail(err)
	sp.End()
	return err
}

// writeWALLocked appends one framed batch record to the active segment,
// recovering from earlier failures: a missing active segment (a rotation
// that hit transient ENOSPC) is reopened, and a failed write is rolled
// back to the last record boundary so the segment stays parseable. A
// momentary disk problem must never permanently disable persistence.
func (s *Store) writeWALLocked(batch []netflow.Record) error {
	if s.active == nil {
		if err := s.openSegmentLocked(); err != nil {
			return err
		}
	}
	s.payloadBuf = appendBatchPayload(s.payloadBuf[:0], batch)
	s.recordBuf = appendRecordFrame(s.recordBuf[:0], recTypeBatch, s.payloadBuf)
	if _, err := s.active.Write(s.recordBuf); err != nil {
		// Roll back the partial record. Truncate trims the file but does
		// NOT move the fd offset — without the Seek, the next append
		// would land past a zero-filled hole and recovery would discard
		// everything after it as a torn tail.
		s.opts.Events.Record("wal_rollback", "WAL append failed, rolling back to last record boundary",
			obs.Int("segment_seq", int64(s.activeSeq)),
			obs.Int("offset", s.activeOff),
			obs.Str("err", err.Error()))
		terr := s.active.Truncate(s.activeOff)
		if terr == nil {
			_, terr = s.active.Seek(s.activeOff, io.SeekStart)
		}
		if terr != nil {
			// Cannot roll back through the fd: seal the segment at its
			// last intact record so the next append starts a fresh one
			// rather than appending unreachable records behind a torn
			// one; the next checkpoint sweeps the file away. Retry the
			// truncate by path after closing — leaving the torn bytes on
			// disk would make a crash before that checkpoint unrecoverable
			// (recovery treats damage in a non-final segment as corruption
			// and fails the whole Open).
			s.active.Close()
			s.active = nil
			path := segPath(s.dir, s.activeSeq)
			s.sealed = append(s.sealed, segInfo{seq: s.activeSeq, path: path, size: s.activeOff})
			if perr := os.Truncate(path, s.activeOff); perr != nil {
				return fmt.Errorf("store: WAL append: %w (torn bytes remain: rollback failed %v, truncate failed %v)", err, terr, perr)
			}
		}
		return fmt.Errorf("store: WAL append: %w", err)
	}
	s.activeOff += int64(len(s.recordBuf))
	s.walBytes += int64(len(s.recordBuf))
	return nil
}

// rotateLocked seals the active segment (if any) and starts the next
// one.
func (s *Store) rotateLocked() error {
	if s.active != nil {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("store: sealing segment: %w", err)
		}
		if err := s.active.Close(); err != nil {
			return fmt.Errorf("store: sealing segment: %w", err)
		}
		s.sealed = append(s.sealed, segInfo{seq: s.activeSeq, path: segPath(s.dir, s.activeSeq), size: s.activeOff})
		s.active = nil
	}
	return s.openSegmentLocked()
}

// Checkpoint folds the tail shard into a durable checkpoint frame: it
// seals the active segment, writes the frame (atomically; the WAL is
// only deleted once the frame is on disk), merges the tail into the
// in-memory base, deletes the folded segments, starts a fresh segment
// and compacts old frames past the MaxFrames bound. With no new records
// since the last checkpoint it only refreshes the checkpoint clock.
//
// Only the seal and the state swap run under the append mutex; the
// expensive part — marshaling megabytes of shard state, writing and
// fsyncing the frame, compaction — runs lock-free so a checkpoint never
// stalls the pipeline workers into dropping batches. Appends that land
// during the fold go to the fresh tail and the new active segment
// (beyond the covered position), so they are recovery-safe no matter
// how the fold ends.
func (s *Store) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	// The whole fold is one background trace (compaction folds are its
	// children); the empty-tail clock refresh is traced too, but at
	// microseconds it only survives as the 1-in-N baseline.
	ctx, sp := s.opts.Tracer.StartTrace(context.Background(), "store.checkpoint", 0)
	err := s.checkpointLocked(ctx, sp)
	sp.Fail(err)
	sp.End()
	return err
}

func (s *Store) checkpointLocked(ctx context.Context, sp *obs.Span) error {
	// Times the real fold only: the empty-tail clock refresh returns
	// before the observation and never skews the distribution.
	var t0 time.Time
	if s.om.checkpointSeconds != nil {
		t0 = time.Now()
	}

	// Phase 1, under mu: seal the WAL position, swap the tail out.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("store: closed")
	}
	if s.opts.ReadOnly {
		s.mu.Unlock()
		return errors.New("store: read-only")
	}
	if s.tailRecords == 0 {
		s.lastCheckpoint = time.Now()
		s.mu.Unlock()
		return nil
	}
	// Ensure there is an active segment to seal (a failed rotation can
	// leave none), so the frame always covers a concrete WAL position.
	if s.active == nil {
		if err := s.openSegmentLocked(); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	if err := s.rotateLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	coveredSeg := s.sealed[len(s.sealed)-1]
	sealedCount := len(s.sealed)
	oldTail, oldCount := s.tail, s.tailRecords
	s.tail = s.newTail()
	s.tailRecords = 0
	s.foldingTail, s.foldingRecords = oldTail, oldCount
	var baseSeg uint64
	if n := len(s.frames); n > 0 {
		baseSeg = s.frames[n-1].CoveredSeg
	}
	seq := s.nextFrameSeq
	s.nextFrameSeq++
	s.mu.Unlock()

	// Phase 2, lock-free: marshal the swapped-out tail and write the
	// frame. On failure the tail folds back in chronological order so
	// the in-memory state again mirrors the un-covered WAL exactly (its
	// segments were not deleted).
	restore := func(err error) error {
		s.mu.Lock()
		fresh := s.newTail()
		fresh.Merge(oldTail)
		fresh.Merge(s.tail)
		s.tail = fresh
		s.tailRecords += oldCount
		s.foldingTail, s.foldingRecords = nil, 0
		s.mu.Unlock()
		return err
	}
	state, err := oldTail.MarshalBinary()
	if err != nil {
		return restore(err)
	}
	info := frameInfo{
		Seq:        seq,
		BaseSeg:    baseSeg,
		CoveredSeg: coveredSeg.seq,
		CoveredOff: coveredSeg.size,
		MinHour:    -1,
		MaxHour:    -1,
		Records:    oldCount,
	}
	if minH, maxH, ok := oldTail.Bounds(); ok {
		info.MinHour, info.MaxHour = int64(minH), int64(maxH)
	}
	path := ckptPath(s.dir, info.Seq)
	rec := appendRecordFrame(nil, recTypeFrame, appendFramePayload(nil, info, state))
	if err := atomicWrite(path, rec); err != nil {
		return restore(err)
	}

	// Phase 3, under mu: the frame is durable — commit, then fold the
	// covered WAL away (file removal itself needs no lock).
	s.mu.Lock()
	s.frames = append(s.frames, frameMeta{frameInfo: info, path: path})
	s.frameRecords += info.Records
	s.base.Merge(oldTail)
	s.foldingTail, s.foldingRecords = nil, 0
	folded := append([]segInfo(nil), s.sealed[:sealedCount]...)
	s.sealed = append(s.sealed[:0], s.sealed[sealedCount:]...)
	for _, seg := range folded {
		s.walBytes -= seg.size
	}
	s.checkpoints++
	s.ckptGen++
	s.lastCheckpoint = time.Now()
	s.mu.Unlock()
	for _, seg := range folded {
		_ = os.Remove(seg.path)
	}
	s.opts.Events.Record("checkpoint_committed", "tail folded into a durable frame",
		obs.Int("frame_seq", int64(info.Seq)),
		obs.Int("records", int64(info.Records)),
		obs.Int("segments_folded", int64(len(folded))))
	sp.Set(obs.Int("frame_seq", int64(info.Seq)), obs.Int("records", int64(info.Records)))
	if s.om.checkpointSeconds != nil {
		s.om.checkpointSeconds.ObserveSince(t0)
	}
	if err := s.compact(ctx); err != nil {
		return err
	}
	return s.tierFold(ctx)
}

// compact folds the oldest adjacent frame pairs together until the
// frame count is back under MaxFrames. The merged frame is written
// under a fresh sequence before its inputs are removed, so a crash at
// any point leaves either the inputs or a containing merged frame —
// never a gap (Open's containment sweep deletes leftovers). Caller
// holds ckptMu (the only writer of s.frames); file I/O runs outside mu,
// with queries retrying if they race a removal.
func (s *Store) compact(ctx context.Context) error {
	for {
		done, err := s.compactOnce(ctx)
		if done || err != nil {
			return err
		}
	}
}

// compactOnce folds the single oldest adjacent frame pair, as its own
// child span under the checkpoint trace; done reports the frame count
// is back under the bound.
func (s *Store) compactOnce(ctx context.Context) (done bool, err error) {
	s.mu.Lock()
	if len(s.frames) <= s.opts.MaxFrames {
		s.mu.Unlock()
		return true, nil
	}
	// Straddle guard: never merge a pair whose combined WAL interval
	// crosses the day-tier coverage horizon. The tier planner separates
	// tiered history from the raw residual by a single segment floor;
	// a frame spanning both sides would be half double-counted, half
	// missing from every day/week answer. Skip to the first adjacent
	// pair clear of the horizon (at most one pair straddles it).
	dayCovered := tierCovered(s.tierDay)
	idx := -1
	for i := 0; i+1 < len(s.frames); i++ {
		if s.frames[i].BaseSeg < dayCovered && dayCovered < s.frames[i+1].CoveredSeg {
			continue
		}
		idx = i
		break
	}
	if idx < 0 {
		s.mu.Unlock()
		return true, nil
	}
	f0, f1 := s.frames[idx], s.frames[idx+1]
	seq := s.nextFrameSeq
	s.nextFrameSeq++
	s.mu.Unlock()
	_, sp := obs.StartSpan(ctx, "store.compact")
	sp.Set(obs.Int("frame_seq", int64(seq)),
		obs.Int("records", int64(f0.Records+f1.Records)))
	defer func() {
		sp.Fail(err)
		sp.End()
	}()
	// Compaction is rare, heavy I/O; the unconditional clock read is
	// noise even uninstrumented.
	foldStart := time.Now()

	_, a0, err := loadFrameFile(f0.path, s.cfg)
	if err != nil {
		return false, fmt.Errorf("store: compacting %s: %w", filepath.Base(f0.path), err)
	}
	_, a1, err := loadFrameFile(f1.path, s.cfg)
	if err != nil {
		return false, fmt.Errorf("store: compacting %s: %w", filepath.Base(f1.path), err)
	}
	info := frameInfo{
		Seq:        seq,
		BaseSeg:    f0.BaseSeg,
		CoveredSeg: f1.CoveredSeg,
		CoveredOff: f1.CoveredOff,
		MinHour:    mergeBound(f0.MinHour, f1.MinHour, false),
		MaxHour:    mergeBound(f0.MaxHour, f1.MaxHour, true),
		Records:    f0.Records + f1.Records,
	}
	// Merge at a window wide enough to hold the pair's combined hour
	// span. WindowHours is a *live* streaming bound; a compacted frame
	// is an archive, and folding at the live window would evict — and,
	// with the input files deleted below, permanently lose — the
	// oldest hourly bins of any pair spanning more than the window
	// (inevitable once a capture outlives WindowHours). The merged
	// state persists its own window; UnmarshalAnalyticsStored adopts
	// it on load, and queries widen their merge target to the selected
	// span, so /query serves every hour ever checkpointed.
	m := streaming.New(widenWindow(s.cfg, info.MinHour, info.MaxHour))
	m.Merge(a0)
	m.Merge(a1)
	state, err := m.MarshalBinary()
	if err != nil {
		return false, err
	}
	path := ckptPath(s.dir, info.Seq)
	rec := appendRecordFrame(nil, recTypeFrame, appendFramePayload(nil, info, state))
	if err := atomicWrite(path, rec); err != nil {
		return false, err
	}

	s.mu.Lock()
	merged := make([]frameMeta, 0, len(s.frames)-1)
	merged = append(merged, s.frames[:idx]...)
	merged = append(merged, frameMeta{frameInfo: info, path: path})
	merged = append(merged, s.frames[idx+2:]...)
	s.frames = merged
	s.compacted++
	s.ckptGen++
	s.mu.Unlock()
	_ = os.Remove(f0.path)
	_ = os.Remove(f1.path)
	s.om.compactionSeconds.ObserveSince(foldStart)
	return false, nil
}

// mergeBound combines two possibly-absent (-1) hour bounds.
func mergeBound(a, b int64, max bool) int64 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	if max == (a > b) {
		return a
	}
	return b
}

// Flush fsyncs the active segment. The ingest pipeline's periodic flush
// hook calls it under the SyncInterval policy.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.opts.ReadOnly || s.active == nil {
		return nil
	}
	return s.syncActiveLocked()
}

// Snapshot merges the checkpointed base state with the live tail into
// one full-coverage snapshot — the durable equivalent of the pipeline's
// in-memory view, and identical to it when both saw the same records.
func (s *Store) Snapshot() *streaming.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := streaming.New(s.cfg)
	m.Merge(s.base)
	if s.foldingTail != nil {
		m.Merge(s.foldingTail)
	}
	m.Merge(s.tail)
	return m.Snapshot()
}

// Config reports the resolved analytics configuration (meta-file values
// merged with the open options).
func (s *Store) Config() streaming.Config { return s.cfg }

// Metrics reports the store gauges.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		Segments:            len(s.sealed),
		WALBytes:            s.walBytes,
		Frames:              len(s.frames),
		FrameRecords:        s.frameRecords,
		TailRecords:         s.tailRecords,
		AppendedRecords:     s.appendedRecords,
		AppendedBatches:     s.appendedBatches,
		RecoveredFrames:     s.recoveredFrames,
		RecoveredWALRecords: s.recoveredWAL,
		TruncatedBytes:      s.truncatedBytes,
		Checkpoints:         s.checkpoints,
		CompactedFrames:     s.compacted,
		LastCheckpoint:      s.lastCheckpoint,
		TierFramesDay:       len(s.tierDay),
		TierFramesWeek:      len(s.tierWeek),
		TierFolds:           s.tierFoldsDay + s.tierFoldsWeek,
	}
	if s.active != nil {
		m.Segments++
	}
	return m
}

// Close syncs and closes the active segment. It does not checkpoint;
// callers wanting a clean fold (the SIGTERM drain path) call Checkpoint
// first. The WAL makes a close without checkpoint equivalent to a crash
// with zero data loss. Close waits for an in-flight checkpoint (ckptMu,
// honoring the documented lock order): the data-dir lock must not be
// released while a fold is still writing frames and deleting WAL — a
// successor process acquiring it would race the tail of the fold.
func (s *Store) Close() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	defer func() {
		releaseDirLock(s.lock)
		s.lock = nil
	}()
	if s.active == nil {
		return nil
	}
	err := s.active.Sync()
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	s.active = nil
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// loadFrameFile reads and validates one checkpoint frame file. The
// frame's analytics state is restored at its own persisted window length
// (cfg's Origin must match): compacted frames are archives whose span —
// and therefore window — can exceed the live sliding window.
func loadFrameFile(path string, cfg streaming.Config) (frameInfo, *streaming.Analytics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return frameInfo{}, nil, err
	}
	typ, payload, n, err := readRecordFrame(data)
	if err != nil {
		return frameInfo{}, nil, err
	}
	if typ != recTypeFrame {
		return frameInfo{}, nil, fmt.Errorf("%w: record type %d in checkpoint", ErrCorrupt, typ)
	}
	if n != len(data) {
		return frameInfo{}, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-n)
	}
	info, state, err := decodeFramePayload(payload)
	if err != nil {
		return frameInfo{}, nil, err
	}
	// Bound the metadata hour span before anything sizes a merge window
	// from it (tryQuery, compact): the record-layer CRC does not bound
	// allocations, so implausible bounds are corruption, not a request
	// for a multi-GB ring. Valid frames are either both -1 (accounting
	// only) or 0 <= MinHour <= MaxHour < the plausibility cap ingest
	// enforces.
	if (info.MinHour == -1) != (info.MaxHour == -1) ||
		info.MinHour < -1 || info.MaxHour < info.MinHour || info.MaxHour >= streaming.MaxWindowHours {
		return frameInfo{}, nil, fmt.Errorf("%w: frame hour bounds [%d, %d]", ErrCorrupt, info.MinHour, info.MaxHour)
	}
	a, err := streaming.UnmarshalAnalyticsStored(cfg, state)
	if err != nil {
		return frameInfo{}, nil, err
	}
	return info, a, nil
}

// atomicWrite lands data at path via temp file + fsync + rename, with a
// best-effort directory sync so the rename itself is durable.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// WalkWAL streams every intact batch in dir's WAL segments to fn in
// append order, tolerating a torn tail in the final segment (it stops
// there, like recovery, but never truncates). Tooling and the crash
// tests use it to inspect what survived on disk.
func WalkWAL(dir string, fn func(batch []netflow.Record) error) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var segs []segInfo
	for _, e := range entries {
		if seq := matchSeq(e.Name(), "wal-", ".seg"); seq != nil {
			segs = append(segs, segInfo{seq: *seq, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	for i, seg := range segs {
		last := i == len(segs)-1
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if len(data) < segHeaderLen || [8]byte(data[:8]) != segMagic || binary.BigEndian.Uint64(data[8:16]) != seg.seq {
			if last {
				return nil
			}
			return fmt.Errorf("store: segment %s has a damaged header", filepath.Base(seg.path))
		}
		off := segHeaderLen
		for off < len(data) {
			typ, payload, n, err := readRecordFrame(data[off:])
			if err == nil && typ != recTypeBatch {
				err = fmt.Errorf("%w: record type %d in WAL", ErrCorrupt, typ)
			}
			var batch []netflow.Record
			if err == nil {
				err = decodeBatchPayload(payload, func(r netflow.Record) error {
					batch = append(batch, r)
					return nil
				})
			}
			if err != nil {
				if last {
					return nil
				}
				return fmt.Errorf("store: segment %s damaged at offset %d: %w", filepath.Base(seg.path), off, err)
			}
			if err := fn(batch); err != nil {
				return err
			}
			off += n
		}
	}
	return nil
}
