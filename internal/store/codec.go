package store

// The store's on-disk record codec: every WAL and checkpoint file is a
// sequence of length-prefixed, CRC-protected, versioned records, so a
// reader can always tell a cleanly written record from a torn tail or bit
// rot. The flow-record payload encoding is compact and deterministic —
// the same record always encodes to the same bytes — which the crash
// tests exploit to compare WAL contents as canonical byte strings.
//
// Record framing (everything big-endian):
//
//	+---------+------+-------------+-----------+
//	| version | type | payload len | CRC-32    | payload ...
//	| 1 byte  | 1 B  | 4 bytes     | 4 (IEEE)  |
//	+---------+------+-------------+-----------+
//
// The CRC covers version, type and payload. Record types: recTypeBatch
// (one appended batch of flow records) and recTypeFrame (one checkpoint
// frame: metadata + marshaled streaming.Analytics state).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net/netip"
	"time"

	"cwatrace/internal/netflow"
)

// codecVersion is the record-framing version byte.
const codecVersion = 1

// Record types.
const (
	recTypeBatch byte = 1
	recTypeFrame byte = 2
)

// recHeaderLen is the fixed framing header size.
const recHeaderLen = 1 + 1 + 4 + 4

// maxPayload bounds a single record payload; anything larger is treated
// as corruption rather than an allocation request.
const maxPayload = 64 << 20

// Codec errors. ErrTorn marks a record cut off by a crash mid-write (the
// recoverable case: truncate and move on); ErrCorrupt marks framing or
// checksum damage inside otherwise intact data.
var (
	ErrTorn    = errors.New("store: torn record")
	ErrCorrupt = errors.New("store: corrupt record")
)

// appendRecordFrame wraps payload in the record framing.
func appendRecordFrame(buf []byte, typ byte, payload []byte) []byte {
	buf = append(buf, codecVersion, typ)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write([]byte{codecVersion, typ})
	crc.Write(payload)
	buf = binary.BigEndian.AppendUint32(buf, crc.Sum32())
	return append(buf, payload...)
}

// readRecordFrame parses one framed record at the head of data and
// returns the record type, its payload (aliasing data) and the total
// bytes consumed. A header that runs past the end of data is ErrTorn; a
// bad version, oversized length or CRC mismatch is ErrCorrupt.
func readRecordFrame(data []byte) (typ byte, payload []byte, n int, err error) {
	if len(data) < recHeaderLen {
		return 0, nil, 0, fmt.Errorf("%w: %d header bytes", ErrTorn, len(data))
	}
	if data[0] != codecVersion {
		return 0, nil, 0, fmt.Errorf("%w: record version %d", ErrCorrupt, data[0])
	}
	typ = data[1]
	plen := int(binary.BigEndian.Uint32(data[2:6]))
	if plen > maxPayload {
		return 0, nil, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, plen)
	}
	if len(data) < recHeaderLen+plen {
		return 0, nil, 0, fmt.Errorf("%w: payload %d of %d bytes", ErrTorn, len(data)-recHeaderLen, plen)
	}
	payload = data[recHeaderLen : recHeaderLen+plen]
	crc := crc32.NewIEEE()
	crc.Write(data[0:2])
	crc.Write(payload)
	if crc.Sum32() != binary.BigEndian.Uint32(data[6:10]) {
		return 0, nil, 0, fmt.Errorf("%w: CRC mismatch on %d-byte record", ErrCorrupt, plen)
	}
	return typ, payload, recHeaderLen + plen, nil
}

// EncodeRecord renders one flow record in the canonical payload encoding.
// Exported for tooling and tests that need a canonical byte key for
// record multisets; AppendBatch uses the same encoding internally.
func EncodeRecord(r netflow.Record) []byte {
	return appendFlowRecord(nil, &r)
}

// appendFlowRecord encodes one flow record:
// fam(1) addr fam(1) addr srcPort(2) dstPort(2) proto(1)
// packets(8) bytes(8) firstUnixNano(8) lastUnixNano(8) expLen(1) exporter.
func appendFlowRecord(buf []byte, r *netflow.Record) []byte {
	appendAddr := func(buf []byte, a netip.Addr) []byte {
		if a.Is4() || a.Is4In6() {
			b := a.As4()
			buf = append(buf, 4)
			return append(buf, b[:]...)
		}
		b := a.As16()
		buf = append(buf, 16)
		return append(buf, b[:]...)
	}
	buf = appendAddr(buf, r.Src)
	buf = appendAddr(buf, r.Dst)
	buf = binary.BigEndian.AppendUint16(buf, r.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, r.DstPort)
	buf = append(buf, r.Proto)
	buf = binary.BigEndian.AppendUint64(buf, r.Packets)
	buf = binary.BigEndian.AppendUint64(buf, r.Bytes)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.First.UnixNano()))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Last.UnixNano()))
	if len(r.Exporter) > 255 {
		// Mirrors the trace writer's limit; long names are a programming
		// error upstream, truncation here would silently corrupt replay.
		panic(fmt.Sprintf("store: exporter name %q too long", r.Exporter))
	}
	buf = append(buf, byte(len(r.Exporter)))
	return append(buf, r.Exporter...)
}

// decodeFlowRecord parses one flow record at the head of data, returning
// the bytes consumed.
func decodeFlowRecord(data []byte) (netflow.Record, int, error) {
	var rec netflow.Record
	off := 0
	readAddr := func() (netip.Addr, error) {
		if off >= len(data) {
			return netip.Addr{}, fmt.Errorf("%w: truncated address family", ErrCorrupt)
		}
		fam := data[off]
		off++
		switch fam {
		case 4:
			if off+4 > len(data) {
				return netip.Addr{}, fmt.Errorf("%w: truncated IPv4 address", ErrCorrupt)
			}
			var b [4]byte
			copy(b[:], data[off:])
			off += 4
			return netip.AddrFrom4(b), nil
		case 16:
			if off+16 > len(data) {
				return netip.Addr{}, fmt.Errorf("%w: truncated IPv6 address", ErrCorrupt)
			}
			var b [16]byte
			copy(b[:], data[off:])
			off += 16
			return netip.AddrFrom16(b), nil
		default:
			return netip.Addr{}, fmt.Errorf("%w: address family %d", ErrCorrupt, fam)
		}
	}
	var err error
	if rec.Src, err = readAddr(); err != nil {
		return rec, 0, err
	}
	if rec.Dst, err = readAddr(); err != nil {
		return rec, 0, err
	}
	if off+2+2+1+8+8+8+8+1 > len(data) {
		return rec, 0, fmt.Errorf("%w: truncated flow record", ErrCorrupt)
	}
	rec.SrcPort = binary.BigEndian.Uint16(data[off:])
	rec.DstPort = binary.BigEndian.Uint16(data[off+2:])
	rec.Proto = data[off+4]
	off += 5
	rec.Packets = binary.BigEndian.Uint64(data[off:])
	rec.Bytes = binary.BigEndian.Uint64(data[off+8:])
	rec.First = time.Unix(0, int64(binary.BigEndian.Uint64(data[off+16:]))).UTC()
	rec.Last = time.Unix(0, int64(binary.BigEndian.Uint64(data[off+24:]))).UTC()
	off += 32
	nameLen := int(data[off])
	off++
	if off+nameLen > len(data) {
		return rec, 0, fmt.Errorf("%w: truncated exporter name", ErrCorrupt)
	}
	rec.Exporter = string(data[off : off+nameLen])
	return rec, off + nameLen, nil
}

// appendBatchPayload encodes one batch: count(4) + records.
func appendBatchPayload(buf []byte, recs []netflow.Record) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(recs)))
	for i := range recs {
		buf = appendFlowRecord(buf, &recs[i])
	}
	return buf
}

// decodeBatchPayload streams the records of one batch payload to fn.
func decodeBatchPayload(payload []byte, fn func(netflow.Record) error) error {
	if len(payload) < 4 {
		return fmt.Errorf("%w: batch payload of %d bytes", ErrCorrupt, len(payload))
	}
	count := int(binary.BigEndian.Uint32(payload))
	payload = payload[4:]
	for i := 0; i < count; i++ {
		rec, n, err := decodeFlowRecord(payload)
		if err != nil {
			return err
		}
		payload = payload[n:]
		if err := fn(rec); err != nil {
			return err
		}
	}
	if len(payload) != 0 {
		return fmt.Errorf("%w: %d trailing batch bytes", ErrCorrupt, len(payload))
	}
	return nil
}

// frameInfo is the metadata head of a checkpoint-frame payload; the
// marshaled analytics state follows it.
type frameInfo struct {
	// Seq is the frame's unique file identity (monotonically allocated,
	// never reused).
	Seq uint64
	// BaseSeg/CoveredSeg bound the half-open WAL interval the frame
	// folded: every batch in segments (BaseSeg, CoveredSeg]. Recovery
	// orders frames by BaseSeg, replays only segments beyond the maximum
	// CoveredSeg, and uses interval containment to drop frames made
	// obsolete by a compaction that crashed before cleanup. CoveredOff is
	// the final size of segment CoveredSeg.
	BaseSeg    uint64
	CoveredSeg uint64
	CoveredOff int64
	// MinHour/MaxHour bound the kept-record hours aggregated in the frame
	// (-1 when the frame holds only dropped-record accounting).
	MinHour, MaxHour int64
	// Records is the census total folded into the frame.
	Records uint64
}

const frameInfoLen = 7 * 8

// appendFramePayload encodes a checkpoint frame payload.
func appendFramePayload(buf []byte, info frameInfo, state []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, info.Seq)
	buf = binary.BigEndian.AppendUint64(buf, info.BaseSeg)
	buf = binary.BigEndian.AppendUint64(buf, info.CoveredSeg)
	buf = binary.BigEndian.AppendUint64(buf, uint64(info.CoveredOff))
	buf = binary.BigEndian.AppendUint64(buf, uint64(info.MinHour))
	buf = binary.BigEndian.AppendUint64(buf, uint64(info.MaxHour))
	buf = binary.BigEndian.AppendUint64(buf, info.Records)
	return append(buf, state...)
}

// decodeFramePayload splits a checkpoint frame payload into its metadata
// and the marshaled analytics state.
func decodeFramePayload(payload []byte) (frameInfo, []byte, error) {
	var info frameInfo
	if len(payload) < frameInfoLen {
		return info, nil, fmt.Errorf("%w: frame payload of %d bytes", ErrCorrupt, len(payload))
	}
	info.Seq = binary.BigEndian.Uint64(payload)
	info.BaseSeg = binary.BigEndian.Uint64(payload[8:])
	info.CoveredSeg = binary.BigEndian.Uint64(payload[16:])
	info.CoveredOff = int64(binary.BigEndian.Uint64(payload[24:]))
	info.MinHour = int64(binary.BigEndian.Uint64(payload[32:]))
	info.MaxHour = int64(binary.BigEndian.Uint64(payload[40:]))
	info.Records = binary.BigEndian.Uint64(payload[48:])
	return info, payload[frameInfoLen:], nil
}
