package store

import (
	"errors"
	"testing"

	"cwatrace/internal/netflow"
)

// FuzzDecode hammers the store record codec — the framing layer plus
// the batch payload decoder recovery trusts — with arbitrary bytes. The
// decoder must never panic and must never mistake damage for a valid
// record (torn and corrupt inputs yield ErrTorn/ErrCorrupt); intact
// frames must re-encode to the identical bytes. Seeds are real encoded
// batches, the same shapes a quick sim export replays into the WAL.
func FuzzDecode(f *testing.F) {
	for _, batch := range [][]netflow.Record{
		{keptRecord(0, 1, 500)},
		{keptRecord(3, 7, 1234), droppedRecord(5, 9)},
		sampleRecords(),
	} {
		f.Add(appendRecordFrame(nil, recTypeBatch, appendBatchPayload(nil, batch)))
	}
	f.Add(appendRecordFrame(nil, recTypeFrame, appendFramePayload(nil, frameInfo{Seq: 1, MinHour: -1, MaxHour: -1}, nil)))
	f.Add([]byte{})
	f.Add([]byte{codecVersion, recTypeBatch, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, n, err := readRecordFrame(data)
		if err != nil {
			if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if n < recHeaderLen || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// An accepted frame survives a byte-exact re-encode round trip:
		// the CRC saw exactly these payload bytes.
		redone := appendRecordFrame(nil, typ, payload)
		if string(redone) != string(data[:n]) {
			t.Fatal("re-encoded frame differs from accepted input")
		}
		switch typ {
		case recTypeBatch:
			count := 0
			if err := decodeBatchPayload(payload, func(r netflow.Record) error {
				count++
				// Decoded records re-encode deterministically (the
				// canonical-key property the crash tests rely on).
				if len(EncodeRecord(r)) == 0 {
					t.Fatal("empty canonical encoding")
				}
				return nil
			}); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("batch decode error class: %v", err)
			}
			_ = count
		case recTypeFrame:
			if _, _, err := decodeFramePayload(payload); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("frame decode error class: %v", err)
			}
		}
	})
}
