package store

import (
	"testing"
	"time"

	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
	"cwatrace/internal/streaming"
)

// buildQueryStore checkpoints three disjoint hour ranges and leaves a
// tail, mirroring a collector that ran for "weeks" with periodic
// checkpoints: frame 1 hours 0-3, frame 2 hours 10-13, frame 3 hours
// 20-23, tail hours 30-31.
func buildQueryStore(t *testing.T, dir string) (*Store, *streaming.Analytics) {
	t.Helper()
	s := mustOpen(t, dir, Options{})
	ref := streaming.New(testConfig())
	hourBlocks := [][]int{{0, 1, 2, 3}, {10, 11, 12, 13}, {20, 21, 22, 23}}
	n := 0
	for _, hours := range hourBlocks {
		for _, h := range hours {
			batch := []netflow.Record{keptRecord(h, n, uint64(100+h)), droppedRecord(h, n)}
			if err := s.Append(batch); err != nil {
				t.Fatal(err)
			}
			ref.Ingest(batch)
			n++
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range []int{30, 31} {
		batch := []netflow.Record{keptRecord(h, n, uint64(100+h))}
		if err := s.Append(batch); err != nil {
			t.Fatal(err)
		}
		ref.Ingest(batch)
		n++
	}
	return s, ref
}

func at(h int) time.Time { return entime.StudyStart.Add(time.Duration(h) * time.Hour) }

// TestParseTime pins the two accepted query-bound forms (RFC 3339 and
// unix seconds) every store consumer documents: collectord's /query and
// /api/v1/query params, cwanalyze's and apiload's -from/-to flags.
func TestParseTime(t *testing.T) {
	cases := []struct {
		in      string
		want    time.Time
		wantErr bool
	}{
		{in: "", want: time.Time{}},
		{in: "2020-06-16T00:00:00Z", want: time.Date(2020, 6, 16, 0, 0, 0, 0, time.UTC)},
		{in: "2020-06-16T02:00:00+02:00", want: time.Date(2020, 6, 16, 0, 0, 0, 0, time.UTC)},
		{in: "1592265600", want: time.Date(2020, 6, 16, 0, 0, 0, 0, time.UTC)},
		{in: "0", want: time.Unix(0, 0).UTC()},
		{in: "-3600", want: time.Unix(-3600, 0).UTC()},
		{in: "2020-06-16", wantErr: true},           // date without time
		{in: "1592265600.5", wantErr: true},         // fractional seconds
		{in: "16 Jun 2020", wantErr: true},          // prose
		{in: "0x5ee80000", wantErr: true},           // hex
		{in: " 1592265600", wantErr: true},          // stray whitespace
		{in: "99999999999999999999", wantErr: true}, // overflows int64
	}
	for _, tc := range cases {
		got, err := ParseTime(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseTime(%q) = %v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseTime(%q): %v", tc.in, err)
			continue
		}
		if !got.Equal(tc.want) {
			t.Errorf("ParseTime(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestVersionSemantics pins the ETag-feeding generation contract: a
// frames-only historical range keeps its token across live appends
// outside the range and loses it on the next checkpoint; any range the
// tail can serve changes token on every append; and reopening the store
// changes every token (the boot nonce).
func TestVersionSemantics(t *testing.T) {
	dir := t.TempDir()
	s, _ := buildQueryStore(t, dir) // frames: hours 0-3, 10-13, 20-23; tail: 30-31

	hist := s.Version(at(0), at(4))
	full := s.Version(time.Time{}, time.Time{})
	tailRange := s.Version(at(30), time.Time{})
	if hist == full || hist == tailRange {
		t.Fatalf("distinct ranges share a token: hist=%x full=%x tail=%x", hist, full, tailRange)
	}
	if got := s.Version(at(0), at(4)); got != hist {
		t.Fatalf("idle token not stable: %x then %x", hist, got)
	}

	// An append far outside the historical range: frames-only token
	// stays, full-history and tail-range tokens move.
	if err := s.Append([]netflow.Record{keptRecord(31, 7, 100)}); err != nil {
		t.Fatal(err)
	}
	if got := s.Version(at(0), at(4)); got != hist {
		t.Fatal("frames-only token changed on an out-of-range append")
	}
	if got := s.Version(time.Time{}, time.Time{}); got == full {
		t.Fatal("full-history token survived an append")
	}
	if got := s.Version(at(30), time.Time{}); got == tailRange {
		t.Fatal("tail-range token survived an in-range append")
	}

	// An append that grows the tail INTO the historical range must move
	// its token even though the frame set is unchanged.
	histBefore := s.Version(at(0), at(4))
	if err := s.Append([]netflow.Record{keptRecord(2, 8, 100)}); err != nil {
		t.Fatal(err)
	}
	if got := s.Version(at(0), at(4)); got == histBefore {
		t.Fatal("token missed the tail growing into a frames-only range")
	}

	// A checkpoint changes the frame set: every token moves.
	histBefore = s.Version(at(0), at(4))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := s.Version(at(0), at(4)); got == histBefore {
		t.Fatal("token survived a checkpoint")
	}

	// A reopened store never reuses a token (boot nonce).
	histBefore = s.Version(at(0), at(4))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if got := s2.Version(at(0), at(4)); got == histBefore {
		t.Fatal("token survived a restart")
	}
}

func TestQueryFullRangeMatchesSnapshot(t *testing.T) {
	s, ref := buildQueryStore(t, t.TempDir())
	defer s.Close()
	res, err := s.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 3 || !res.TailIncluded {
		t.Fatalf("full range merged %d frames, tail %v", res.Frames, res.TailIncluded)
	}
	if got, want := snapJSON(t, res.Snapshot), snapJSON(t, ref.Snapshot()); got != want {
		t.Fatalf("full-range query:\n got %s\nwant %s", got, want)
	}
	if got, want := snapJSON(t, s.Snapshot()), snapJSON(t, ref.Snapshot()); got != want {
		t.Fatal("store snapshot diverges from reference")
	}
}

func TestQuerySelectsOverlappingFrames(t *testing.T) {
	s, _ := buildQueryStore(t, t.TempDir())
	defer s.Close()

	// Hours [10, 14): only the second frame has kept hours there.
	res, err := s.Query(at(10), at(14))
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 1 || res.TailIncluded {
		t.Fatalf("range [10,14) merged %d frames, tail %v", res.Frames, res.TailIncluded)
	}
	if len(res.Snapshot.Hours) != 4 {
		t.Fatalf("hours in range: %d, want 4", len(res.Snapshot.Hours))
	}
	for i, p := range res.Snapshot.Hours {
		if p.Hour != 10+i || p.Flows != 1 {
			t.Fatalf("hour %d: %+v", i, p)
		}
	}
	// The hour series is range-exact even though the frame covers more.
	if res.Snapshot.SeriesStart != 10 {
		t.Fatalf("series start %d, want 10", res.Snapshot.SeriesStart)
	}

	// Hours [12, 22): two frames overlap.
	res, err = s.Query(at(12), at(22))
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 2 {
		t.Fatalf("range [12,22) merged %d frames, want 2", res.Frames)
	}
	wantHours := []int{12, 13, 20, 21}
	gotHours := make([]int, 0, len(res.Snapshot.Hours))
	for _, p := range res.Snapshot.Hours {
		if p.Flows > 0 {
			gotHours = append(gotHours, p.Hour)
		}
	}
	if len(gotHours) != len(wantHours) {
		t.Fatalf("populated hours %v, want %v", gotHours, wantHours)
	}
	for i := range wantHours {
		if gotHours[i] != wantHours[i] {
			t.Fatalf("populated hours %v, want %v", gotHours, wantHours)
		}
	}

	// An open 'from' with a bounded 'to'.
	res, err = s.Query(time.Time{}, at(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 1 || len(res.Snapshot.Hours) != 4 || res.TailIncluded {
		t.Fatalf("range [origin,4): frames=%d hours=%d tail=%v", res.Frames, len(res.Snapshot.Hours), res.TailIncluded)
	}

	// The tail is served like a frame for fresh hours.
	res, err = s.Query(at(30), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 0 || !res.TailIncluded || len(res.Snapshot.Hours) != 2 {
		t.Fatalf("tail range: frames=%d tail=%v hours=%d", res.Frames, res.TailIncluded, len(res.Snapshot.Hours))
	}

	// A range with no coverage at all is empty, not an error.
	res, err = s.Query(at(40), at(44))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshot.Hours) != 0 || res.Frames != 0 || res.TailIncluded {
		t.Fatalf("empty range: %+v", res)
	}
}

// TestQueryWiderThanLiveWindow pins the store's core promise: history
// stays queryable after the live sliding window slid past it. A
// 6-hour-window collector captures 21 hours with periodic checkpoints;
// the full-range query must return every populated hour even though the
// live snapshot only retains the trailing window.
func TestQueryWiderThanLiveWindow(t *testing.T) {
	cfg := streaming.Config{WindowHours: 6, TopK: 5}
	s := mustOpen(t, t.TempDir(), Options{Analytics: cfg})
	defer s.Close()
	for h := 0; h <= 20; h++ {
		if err := s.Append([]netflow.Record{keptRecord(h, h, uint64(100+h))}); err != nil {
			t.Fatal(err)
		}
		if h%4 == 3 {
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}

	res, err := s.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	populated := 0
	for _, p := range res.Snapshot.Hours {
		if p.Flows > 0 {
			populated++
		}
	}
	if res.Snapshot.SeriesStart != 0 || populated != 21 {
		t.Fatalf("full-range query over a slid window: start=%d populated=%d, want 0/21",
			res.Snapshot.SeriesStart, populated)
	}
	// A mid-history sub-range that the live window has long evicted.
	sub, err := s.Query(at(4), at(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Snapshot.Hours) != 6 || sub.Snapshot.SeriesStart != 4 {
		t.Fatalf("evicted-range query: start=%d hours=%d, want 4/6",
			sub.Snapshot.SeriesStart, len(sub.Snapshot.Hours))
	}
	// The live snapshot, by contrast, only holds the trailing window.
	if live := s.Snapshot(); len(live.Hours) > 6 {
		t.Fatalf("live snapshot holds %d hours, window is 6", len(live.Hours))
	}
}

// TestQueryIndependentOfCheckpointPlacement pins the commutativity
// property: the same records with different checkpoint boundaries (or
// none at all) answer a full-range query identically.
func TestQueryIndependentOfCheckpointPlacement(t *testing.T) {
	records := make([][]netflow.Record, 0, 24)
	for h := 0; h < 24; h++ {
		records = append(records, []netflow.Record{
			keptRecord(h, h, uint64(50+h)),
			droppedRecord(h, 200+h),
		})
	}
	build := func(ckptAfter map[int]bool) string {
		dir := t.TempDir()
		s := mustOpen(t, dir, Options{})
		defer s.Close()
		for i, batch := range records {
			if err := s.Append(batch); err != nil {
				t.Fatal(err)
			}
			if ckptAfter[i] {
				if err := s.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
		}
		res, err := s.Query(time.Time{}, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		return snapJSON(t, res.Snapshot)
	}

	none := build(nil)
	every8 := build(map[int]bool{7: true, 15: true, 23: true})
	lopsided := build(map[int]bool{0: true, 20: true})
	if none != every8 || none != lopsided {
		t.Fatal("full-range query depends on checkpoint placement")
	}
}

// TestQueryDuringFoldKeepsNonOverlappingTail stages the mid-checkpoint
// shape directly: the folding tail holds old in-range hours while the
// live tail has already moved far past the queried range. Merging the
// live pair must not let the newer (non-overlapping) tail bins slide a
// span-sized window over the in-range bins — the range is served from
// memory even though no frame holds it yet.
func TestQueryDuringFoldKeepsNonOverlappingTail(t *testing.T) {
	cfg := streaming.Config{WindowHours: 4, TopK: 5}
	s := mustOpen(t, t.TempDir(), Options{Analytics: cfg})
	defer s.Close()

	fold := s.newTail()
	for h := 0; h < 3; h++ {
		fold.Ingest([]netflow.Record{keptRecord(h, h, 100)})
	}
	s.mu.Lock()
	s.foldingTail, s.foldingRecords = fold, 3
	s.mu.Unlock()
	for h := 20; h < 23; h++ {
		if err := s.Append([]netflow.Record{keptRecord(h, h, 100)}); err != nil {
			t.Fatal(err)
		}
	}

	res, err := s.Query(entime.StudyStart, entime.StudyStart.Add(4*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !res.TailIncluded {
		t.Fatal("live state not included")
	}
	snap := res.Snapshot
	if len(snap.Hours) != 4 || snap.SeriesStart != 0 {
		t.Fatalf("range window [%d +%d], want [0 +4]", snap.SeriesStart, len(snap.Hours))
	}
	for _, p := range snap.Hours {
		want := 1.0
		if p.Hour == 3 {
			want = 0 // in-range but never populated
		}
		if p.Flows != want {
			t.Fatalf("hour %d holds %v flows, want %v (non-overlapping tail evicted the range)", p.Hour, p.Flows, want)
		}
	}

	s.mu.Lock()
	s.foldingTail, s.foldingRecords = nil, 0
	s.mu.Unlock()
}
