// Package nfv9 implements the NetFlow version 9 export protocol (RFC 3954)
// for the flow records of this reproduction: template and data FlowSets,
// export packets with sequence numbers, and a UDP exporter/collector pair.
//
// The paper's vantage point receives "sampled Netflow traces from routers";
// this package is the wire between internal/netflow (the router-side cache)
// and the collector — the routers encode their records as v9 packets, the
// collector decodes and hands them to the anonymization stage. The
// implementation covers the subset of RFC 3954 needed for 5-tuple +
// counters + timestamps records over IPv4 and IPv6.
package nfv9

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"slices"
	"time"

	"cwatrace/internal/netflow"
)

// Version is the NetFlow export format version.
const Version uint16 = 9

// RFC 3954 field type numbers used by this implementation.
const (
	fieldInBytes       = 1  // IN_BYTES
	fieldInPkts        = 2  // IN_PKTS
	fieldProtocol      = 4  // PROTOCOL
	fieldL4SrcPort     = 7  // L4_SRC_PORT
	fieldIPv4SrcAddr   = 8  // IPV4_SRC_ADDR
	fieldL4DstPort     = 11 // L4_DST_PORT
	fieldIPv4DstAddr   = 12 // IPV4_DST_ADDR
	fieldLastSwitched  = 21 // LAST_SWITCHED (ms, uptime-based; we carry unix ms)
	fieldFirstSwitched = 22 // FIRST_SWITCHED
	fieldIPv6SrcAddr   = 27 // IPV6_SRC_ADDR
	fieldIPv6DstAddr   = 28 // IPV6_DST_ADDR
)

// Template IDs for the two record layouts. Data FlowSet IDs must be > 255.
const (
	TemplateIPv4 uint16 = 256
	TemplateIPv6 uint16 = 257
)

// v4RecordLen is bytes per IPv4 data record: 2x addr(4) + 2x port(2) +
// proto(1) + pad(1) + bytes(8) + pkts(8) + first(8) + last(8).
const v4RecordLen = 4 + 4 + 2 + 2 + 1 + 1 + 8 + 8 + 8 + 8

// v6RecordLen is bytes per IPv6 data record.
const v6RecordLen = 16 + 16 + 2 + 2 + 1 + 1 + 8 + 8 + 8 + 8

// headerLen is the v9 packet header size.
const headerLen = 20

// Errors.
var (
	ErrShortPacket     = errors.New("nfv9: packet too short")
	ErrBadVersion      = errors.New("nfv9: not a v9 packet")
	ErrUnknownTemplate = errors.New("nfv9: data flowset references unknown template")
)

// Packet is one decoded export packet. Records is allocated from the
// shared netflow batch pool; consumers that do not retain it may return it
// via netflow.RecycleBatch.
type Packet struct {
	SequenceNumber uint32
	SourceID       uint32
	ExportTime     time.Time
	Records        []netflow.Record
	// Templates counts template definitions seen in the packet.
	Templates int
}

// Encoder builds export packets for one exporter (identified by SourceID).
// It is not safe for concurrent use.
type Encoder struct {
	sourceID uint32
	seq      uint32
	// templatesSent tracks whether templates were included yet; RFC 3954
	// requires periodic resends, which Reset triggers.
	templatesSent bool
}

// NewEncoder creates an Encoder with the given observation-domain source
// ID.
func NewEncoder(sourceID uint32) *Encoder {
	return &Encoder{sourceID: sourceID}
}

// Reset forces the next packet to carry template definitions again (the
// periodic template refresh of RFC 3954).
func (e *Encoder) Reset() { e.templatesSent = false }

// Sequence returns the current sequence counter.
func (e *Encoder) Sequence() uint32 { return e.seq }

// Encode renders records into one export packet. The first packet (and any
// packet after Reset) carries the template FlowSet. Records are split by
// address family into the two data FlowSets. exportTime stamps the header.
func (e *Encoder) Encode(records []netflow.Record, exportTime time.Time) ([]byte, error) {
	var v4, v6 []netflow.Record
	for _, r := range records {
		switch {
		case r.Src.Is4() && r.Dst.Is4():
			v4 = append(v4, r)
		case r.Src.Is6() && r.Dst.Is6():
			v6 = append(v6, r)
		default:
			return nil, fmt.Errorf("nfv9: mixed address families in record %v -> %v", r.Src, r.Dst)
		}
	}

	buf := make([]byte, headerLen, headerLen+512+len(records)*v6RecordLen)

	count := 0
	if !e.templatesSent {
		buf = appendTemplateFlowSet(buf)
		count += 2 // two template records
		e.templatesSent = true
	}
	if len(v4) > 0 {
		buf = appendDataFlowSet(buf, TemplateIPv4, v4)
		count += len(v4)
	}
	if len(v6) > 0 {
		buf = appendDataFlowSet(buf, TemplateIPv6, v6)
		count += len(v6)
	}

	binary.BigEndian.PutUint16(buf[0:2], Version)
	binary.BigEndian.PutUint16(buf[2:4], uint16(count))
	binary.BigEndian.PutUint32(buf[4:8], uint32(exportTime.Unix())) // sysUptime stand-in
	binary.BigEndian.PutUint32(buf[8:12], uint32(exportTime.Unix()))
	binary.BigEndian.PutUint32(buf[12:16], e.seq)
	binary.BigEndian.PutUint32(buf[16:20], e.sourceID)
	// RFC 3954 section 5.1: the v9 sequence number counts export
	// packets per observation domain (unlike v5, which counted flows).
	e.seq++
	return buf, nil
}

// canonicalV4Fields and canonicalV6Fields are the two record layouts this
// package's encoder emits. The decoder compares learned templates against
// them to select the unrolled fast-path decoders.
var (
	canonicalV4Fields = []templateField{
		{fieldIPv4SrcAddr, 4},
		{fieldIPv4DstAddr, 4},
		{fieldL4SrcPort, 2},
		{fieldL4DstPort, 2},
		{fieldProtocol, 1},
		{0, 1}, // padding field (type 0, vendor-reserved here)
		{fieldInBytes, 8},
		{fieldInPkts, 8},
		{fieldFirstSwitched, 8},
		{fieldLastSwitched, 8},
	}
	canonicalV6Fields = []templateField{
		{fieldIPv6SrcAddr, 16},
		{fieldIPv6DstAddr, 16},
		{fieldL4SrcPort, 2},
		{fieldL4DstPort, 2},
		{fieldProtocol, 1},
		{0, 1},
		{fieldInBytes, 8},
		{fieldInPkts, 8},
		{fieldFirstSwitched, 8},
		{fieldLastSwitched, 8},
	}
)

// appendTemplateFlowSet emits the template FlowSet defining both layouts.
func appendTemplateFlowSet(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // flowset id 0 + length, filled below
	for i, tid := range []uint16{TemplateIPv4, TemplateIPv6} {
		fs := canonicalV4Fields
		if i == 1 {
			fs = canonicalV6Fields
		}
		buf = be16(buf, tid)
		buf = be16(buf, uint16(len(fs)))
		for _, f := range fs {
			buf = be16(buf, f.Type)
			buf = be16(buf, f.Length)
		}
	}
	binary.BigEndian.PutUint16(buf[start:start+2], 0) // template flowset id
	binary.BigEndian.PutUint16(buf[start+2:start+4], uint16(len(buf)-start))
	return buf
}

// appendDataFlowSet emits one data FlowSet of records under a template.
func appendDataFlowSet(buf []byte, templateID uint16, records []netflow.Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	for _, r := range records {
		if templateID == TemplateIPv4 {
			a, b := r.Src.As4(), r.Dst.As4()
			buf = append(buf, a[:]...)
			buf = append(buf, b[:]...)
		} else {
			a, b := r.Src.As16(), r.Dst.As16()
			buf = append(buf, a[:]...)
			buf = append(buf, b[:]...)
		}
		buf = be16(buf, r.SrcPort)
		buf = be16(buf, r.DstPort)
		buf = append(buf, r.Proto, 0)
		buf = be64(buf, r.Bytes)
		buf = be64(buf, r.Packets)
		buf = be64(buf, uint64(r.First.UnixMilli()))
		buf = be64(buf, uint64(r.Last.UnixMilli()))
	}
	// Pad the flowset to a 4-byte boundary per RFC 3954.
	for len(buf)%4 != 0 {
		buf = append(buf, 0)
	}
	binary.BigEndian.PutUint16(buf[start:start+2], templateID)
	binary.BigEndian.PutUint16(buf[start+2:start+4], uint16(len(buf)-start))
	return buf
}

func be16(buf []byte, v uint16) []byte {
	return append(buf, byte(v>>8), byte(v))
}

func be64(buf []byte, v uint64) []byte {
	return append(buf,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// templateField is one parsed template field.
type templateField struct {
	Type   uint16
	Length uint16
}

// Accessor kinds for compiled template programs, one per field type this
// implementation decodes.
const (
	opSrc4 uint8 = iota
	opDst4
	opSrc6
	opDst6
	opSrcPort
	opDstPort
	opProto
	opBytes
	opPackets
	opFirst
	opLast
)

// fieldOp is one compiled accessor: read the field at a pre-resolved
// record offset straight out of the wire buffer.
type fieldOp struct {
	off  uint32
	kind uint8
}

// Record layouts the decoder specializes.
const (
	layoutGeneric uint8 = iota
	layoutV4            // canonicalV4Fields exactly
	layoutV6            // canonicalV6Fields exactly
)

// template is one learned template compiled for the decode hot path:
// field offsets are resolved once here, at template-parse time, so the
// per-record loop never walks the field list doing offset arithmetic.
// Length validation also moves here — but a malformed template is only
// *reported* when a data FlowSet references it (err below), preserving
// the wire behavior of the interpreting decoder.
type template struct {
	fields []templateField // raw wire definition
	recLen int             // bytes per record
	ops    []fieldOp       // accessors for the fields this implementation decodes
	layout uint8           // fast-path selector
	err    error           // compile-time rejection, surfaced on first data use
}

// kindOf maps a decodable field type to its accessor kind. Callers must
// only pass types with fieldLen != 0.
func kindOf(typ uint16) uint8 {
	switch typ {
	case fieldIPv4SrcAddr:
		return opSrc4
	case fieldIPv4DstAddr:
		return opDst4
	case fieldIPv6SrcAddr:
		return opSrc6
	case fieldIPv6DstAddr:
		return opDst6
	case fieldL4SrcPort:
		return opSrcPort
	case fieldL4DstPort:
		return opDstPort
	case fieldProtocol:
		return opProto
	case fieldInBytes:
		return opBytes
	case fieldInPkts:
		return opPackets
	case fieldFirstSwitched:
		return opFirst
	}
	return opLast
}

// compileTemplate builds the accessor table for a template definition.
func compileTemplate(tid uint16, fields []templateField) *template {
	t := &template{fields: fields}
	off := 0
	for _, f := range fields {
		if want := fieldLen(f.Type); want != 0 {
			if f.Length != want {
				// The fixed-width accessors would over-read a template that
				// declares a shorter length — a malformed (or malicious)
				// template must be rejected, not trusted. Found by
				// FuzzDecode.
				t.err = fmt.Errorf("nfv9: template %d declares field %d with length %d, want %d",
					tid, f.Type, f.Length, want)
				return t
			}
			t.ops = append(t.ops, fieldOp{off: uint32(off), kind: kindOf(f.Type)})
		}
		off += int(f.Length)
	}
	t.recLen = off
	if t.recLen == 0 {
		t.err = fmt.Errorf("nfv9: template %d has zero record length", tid)
		return t
	}
	switch {
	case equalFields(fields, canonicalV4Fields):
		t.layout = layoutV4
	case equalFields(fields, canonicalV6Fields):
		t.layout = layoutV6
	}
	return t
}

// matchesWire reports whether the raw field list b (4 bytes per field,
// as it appears in a template FlowSet) declares exactly this template's
// fields, without materializing a parsed copy.
func (t *template) matchesWire(b []byte) bool {
	if len(b) != 4*len(t.fields) {
		return false
	}
	for i := range t.fields {
		if binary.BigEndian.Uint16(b[4*i:4*i+2]) != t.fields[i].Type ||
			binary.BigEndian.Uint16(b[4*i+2:4*i+4]) != t.fields[i].Length {
			return false
		}
	}
	return true
}

func equalFields(a, b []templateField) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Decoder parses export packets. Templates learned from packets persist
// across calls, as in a real collector; until the first template FlowSet
// arrives, data FlowSets fail with ErrUnknownTemplate, so a collector
// behind a lossy link recovers only at the exporter's next template
// refresh (RFC 3954 section 9 mandates periodic resends for exactly this
// reason).
//
// The decoder also audits the export stream: v9 sequence numbers count
// export packets per observation domain, so a jump between consecutive
// packets means the transport lost (or reordered) export packets.
// SequenceStats surfaces the running tally.
type Decoder struct {
	templates map[uint16]*template
	exporter  string

	// Sequence accounting (RFC 3954: UDP export is unreliable, the
	// sequence number exists so collectors can detect loss).
	haveSeq   bool
	nextSeq   uint32
	gaps      int
	lost      uint64
	reordered int
}

// NewDecoder creates a Decoder; exporter names the records it produces.
//
// RFC 3954 scopes template IDs and sequence numbers per observation
// domain: collectors must keep one Decoder per (sender address, SourceID)
// pair, peeking the SourceID with PeekSourceID before choosing the
// decoder. A shared decoder across domains would interleave independent
// sequence spaces and report phantom gaps.
func NewDecoder(exporter string) *Decoder {
	d := &Decoder{templates: make(map[uint16]*template), exporter: exporter}
	return d
}

// PeekSourceID extracts the observation-domain SourceID from an export
// packet header without decoding it, so collectors can route the packet
// to the right per-domain Decoder. ok is false for short or non-v9
// packets, letting collectors reject garbage before allocating any
// per-source state.
func PeekSourceID(data []byte) (id uint32, ok bool) {
	if len(data) < headerLen || binary.BigEndian.Uint16(data[0:2]) != Version {
		return 0, false
	}
	return binary.BigEndian.Uint32(data[16:20]), true
}

// SequenceStats reports the sequence audit: gaps is how many packet
// transitions broke the expected numbering, lost is the net number of
// export packets that never arrived (a late packet that shows up after
// being presumed lost is credited back), and reordered counts transitions
// that went backwards instead of forwards.
func (d *Decoder) SequenceStats() (gaps int, lost uint64, reordered int) {
	return d.gaps, d.lost, d.reordered
}

// trackSequence advances the sequence audit across one decoded packet.
// Per RFC 3954 the v9 sequence number is an incremental counter of export
// packets, so the expected next value is always prev+1 and a forward jump
// of n means n packets were lost in transit.
func (d *Decoder) trackSequence(seq uint32) {
	if d.haveSeq && seq != d.nextSeq {
		d.gaps++
		if delta := seq - d.nextSeq; delta < 1<<31 {
			d.lost += uint64(delta)
		} else {
			// The stream went backwards: a late, reordered packet
			// rather than loss. Don't let it poison nextSeq, and
			// credit back the loss it was charged as when the
			// forward jump skipped it (benign reordering must not
			// raise loss alarms).
			d.reordered++
			if d.lost > 0 {
				d.lost--
			}
			return
		}
	}
	d.haveSeq = true
	d.nextSeq = seq + 1
}

// PacketMeta is the header-and-census view of one decoded packet, the
// allocation-free counterpart of Packet for the DecodeInto fast path.
type PacketMeta struct {
	SequenceNumber uint32
	SourceID       uint32
	ExportTime     time.Time
	// Templates counts template definitions seen in the packet.
	Templates int
}

// Decode parses one packet. Records are taken from the shared netflow
// batch pool; pipeline consumers that do not retain them should hand them
// back via netflow.RecycleBatch.
func (d *Decoder) Decode(data []byte) (*Packet, error) {
	recs, meta, err := d.decode(data, nil, true)
	if err != nil {
		// Recycle any pool-backed batch already taken for this packet, so
		// malformed peers cannot bleed batches out of the shared pool.
		netflow.RecycleBatch(recs)
		return nil, err
	}
	return &Packet{
		SequenceNumber: meta.SequenceNumber,
		SourceID:       meta.SourceID,
		ExportTime:     meta.ExportTime,
		Records:        recs,
		Templates:      meta.Templates,
	}, nil
}

// DecodeInto is the zero-allocation fast path: it parses one packet
// appending records onto the caller-owned slice (typically a
// netflow.Slab the caller recycles), and returns the packet header as a
// value instead of an allocated Packet. Every field of every appended
// record is written, so reused storage never leaks stale state. On error
// the returned slice is out truncated back to its original length — the
// caller keeps ownership either way, and any records appended before the
// error are discarded, exactly as Decode recycles its partial batch.
func (d *Decoder) DecodeInto(data []byte, out []netflow.Record) ([]netflow.Record, PacketMeta, error) {
	base := len(out)
	recs, meta, err := d.decode(data, out, false)
	if err != nil {
		return recs[:base], meta, err
	}
	return recs, meta, nil
}

// decode is the shared packet walk. lazyPool selects the legacy Decode
// contract: out is nil until the first data FlowSet, which takes a batch
// from the shared pool.
func (d *Decoder) decode(data []byte, out []netflow.Record, lazyPool bool) ([]netflow.Record, PacketMeta, error) {
	var meta PacketMeta
	if len(data) < headerLen {
		return out, meta, ErrShortPacket
	}
	if v := binary.BigEndian.Uint16(data[0:2]); v != Version {
		return out, meta, fmt.Errorf("%w: version %d", ErrBadVersion, v)
	}
	meta.ExportTime = time.Unix(int64(binary.BigEndian.Uint32(data[8:12])), 0).UTC()
	meta.SequenceNumber = binary.BigEndian.Uint32(data[12:16])
	meta.SourceID = binary.BigEndian.Uint32(data[16:20])
	d.trackSequence(meta.SequenceNumber)
	off := headerLen
	for off+4 <= len(data) {
		setID := binary.BigEndian.Uint16(data[off : off+2])
		setLen := int(binary.BigEndian.Uint16(data[off+2 : off+4]))
		if setLen < 4 || off+setLen > len(data) {
			return out, meta, fmt.Errorf("%w: flowset length %d at offset %d", ErrShortPacket, setLen, off)
		}
		body := data[off+4 : off+setLen]
		if setID == 0 {
			n, err := d.parseTemplates(body)
			if err != nil {
				return out, meta, err
			}
			meta.Templates += n
		} else if setID > 255 {
			recs, err := d.parseData(setID, body, out, lazyPool)
			if err != nil {
				return out, meta, err
			}
			out = recs
		}
		off += setLen
	}
	return out, meta, nil
}

func (d *Decoder) parseTemplates(body []byte) (int, error) {
	n := 0
	off := 0
	for off+4 <= len(body) {
		tid := binary.BigEndian.Uint16(body[off : off+2])
		fieldCount := int(binary.BigEndian.Uint16(body[off+2 : off+4]))
		off += 4
		if off+fieldCount*4 > len(body) {
			return n, fmt.Errorf("%w: truncated template %d", ErrShortPacket, tid)
		}
		// An identical refresh of a known template — the periodic resend
		// RFC 3954 requires — keeps the compiled accessor table and
		// allocates nothing, so template-bearing packets stay on the
		// zero-alloc path in the steady state.
		if old, ok := d.templates[tid]; ok && old.matchesWire(body[off:off+fieldCount*4]) {
			off += fieldCount * 4
			n++
			continue
		}
		fields := make([]templateField, fieldCount)
		for i := 0; i < fieldCount; i++ {
			fields[i] = templateField{
				Type:   binary.BigEndian.Uint16(body[off : off+2]),
				Length: binary.BigEndian.Uint16(body[off+2 : off+4]),
			}
			off += 4
		}
		d.templates[tid] = compileTemplate(tid, fields)
		n++
	}
	return n, nil
}

// fieldLen returns the wire length this implementation requires for a
// field type it decodes (0 = any length; the field is skipped). The
// fixed-width readers below would over-read a template that declares a
// shorter length — a malformed (or malicious) template must be rejected,
// not trusted. Found by FuzzDecode.
func fieldLen(typ uint16) uint16 {
	switch typ {
	case fieldIPv4SrcAddr, fieldIPv4DstAddr:
		return 4
	case fieldIPv6SrcAddr, fieldIPv6DstAddr:
		return 16
	case fieldL4SrcPort, fieldL4DstPort:
		return 2
	case fieldProtocol:
		return 1
	case fieldInBytes, fieldInPkts, fieldFirstSwitched, fieldLastSwitched:
		return 8
	}
	return 0
}

// parseData decodes one data FlowSet, appending onto out. When lazyPool is
// set and out is nil the batch comes from the shared netflow pool, so
// pipeline consumers that hand packets back via netflow.RecycleBatch run
// allocation-free in steady state (callers that retain the records simply
// never recycle). The per-record work runs over the template's compiled
// accessor table; the two canonical layouts this package's encoder emits
// additionally get fully unrolled decoders.
func (d *Decoder) parseData(tid uint16, body []byte, out []netflow.Record, lazyPool bool) ([]netflow.Record, error) {
	t, ok := d.templates[tid]
	if !ok {
		return out, fmt.Errorf("%w: %d", ErrUnknownTemplate, tid)
	}
	if t.err != nil {
		return out, t.err
	}
	if out == nil && lazyPool {
		out = netflow.GetBatch()
	}
	n := len(body) / t.recLen
	if n == 0 {
		return out, nil
	}
	base := len(out)
	out = slices.Grow(out, n)
	out = out[:base+n]
	dst := out[base:]
	switch t.layout {
	case layoutV4:
		d.decodeV4(body, dst)
	case layoutV6:
		d.decodeV6(body, dst)
	default:
		d.decodeGeneric(t, body, dst)
	}
	return out, nil
}

// decodeV4 decodes records in the canonical IPv4 layout. The offsets are
// those of canonicalV4Fields: src 0, dst 4, ports 8/10, proto 12, pad 13,
// bytes 14, pkts 22, first 30, last 38; 46 bytes per record. Writing
// through a pointer into the slab (rather than building a Record value and
// copying it in) keeps the 112-byte struct copy off the hot path.
func (d *Decoder) decodeV4(body []byte, dst []netflow.Record) {
	off := 0
	for i := range dst {
		rec := body[off : off+v4RecordLen : off+v4RecordLen]
		r := &dst[i]
		r.Src = netip.AddrFrom4([4]byte(rec[0:4]))
		r.Dst = netip.AddrFrom4([4]byte(rec[4:8]))
		r.SrcPort = binary.BigEndian.Uint16(rec[8:10])
		r.DstPort = binary.BigEndian.Uint16(rec[10:12])
		r.Proto = rec[12]
		r.Bytes = binary.BigEndian.Uint64(rec[14:22])
		r.Packets = binary.BigEndian.Uint64(rec[22:30])
		r.First = time.UnixMilli(int64(binary.BigEndian.Uint64(rec[30:38]))).UTC()
		r.Last = time.UnixMilli(int64(binary.BigEndian.Uint64(rec[38:46]))).UTC()
		r.Exporter = d.exporter
		off += v4RecordLen
	}
}

// decodeV6 decodes records in the canonical IPv6 layout: src 0, dst 16,
// ports 32/34, proto 36, pad 37, bytes 38, pkts 46, first 54, last 62; 70
// bytes per record.
func (d *Decoder) decodeV6(body []byte, dst []netflow.Record) {
	off := 0
	for i := range dst {
		rec := body[off : off+v6RecordLen : off+v6RecordLen]
		r := &dst[i]
		r.Src = netip.AddrFrom16([16]byte(rec[0:16]))
		r.Dst = netip.AddrFrom16([16]byte(rec[16:32]))
		r.SrcPort = binary.BigEndian.Uint16(rec[32:34])
		r.DstPort = binary.BigEndian.Uint16(rec[34:36])
		r.Proto = rec[36]
		r.Bytes = binary.BigEndian.Uint64(rec[38:46])
		r.Packets = binary.BigEndian.Uint64(rec[46:54])
		r.First = time.UnixMilli(int64(binary.BigEndian.Uint64(rec[54:62]))).UTC()
		r.Last = time.UnixMilli(int64(binary.BigEndian.Uint64(rec[62:70]))).UTC()
		r.Exporter = d.exporter
		off += v6RecordLen
	}
}

// decodeGeneric decodes records under an arbitrary compiled template by
// walking its accessor table. Each slot is fully reset first so reused
// slab storage never leaks fields the template doesn't carry.
func (d *Decoder) decodeGeneric(t *template, body []byte, dst []netflow.Record) {
	off := 0
	for i := range dst {
		rec := body[off : off+t.recLen : off+t.recLen]
		r := &dst[i]
		*r = netflow.Record{Exporter: d.exporter}
		for _, op := range t.ops {
			val := rec[op.off:]
			switch op.kind {
			case opSrc4:
				r.Src = netip.AddrFrom4([4]byte(val[:4]))
			case opDst4:
				r.Dst = netip.AddrFrom4([4]byte(val[:4]))
			case opSrc6:
				r.Src = netip.AddrFrom16([16]byte(val[:16]))
			case opDst6:
				r.Dst = netip.AddrFrom16([16]byte(val[:16]))
			case opSrcPort:
				r.SrcPort = binary.BigEndian.Uint16(val[:2])
			case opDstPort:
				r.DstPort = binary.BigEndian.Uint16(val[:2])
			case opProto:
				r.Proto = val[0]
			case opBytes:
				r.Bytes = binary.BigEndian.Uint64(val[:8])
			case opPackets:
				r.Packets = binary.BigEndian.Uint64(val[:8])
			case opFirst:
				r.First = time.UnixMilli(int64(binary.BigEndian.Uint64(val[:8]))).UTC()
			case opLast:
				r.Last = time.UnixMilli(int64(binary.BigEndian.Uint64(val[:8]))).UTC()
			}
		}
		off += t.recLen
	}
}
