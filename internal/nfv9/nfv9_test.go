package nfv9

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"cwatrace/internal/netflow"
)

var exportTime = time.Date(2020, time.June, 16, 9, 0, 0, 0, time.UTC)

func v4Record(i int) netflow.Record {
	return netflow.Record{
		Key: netflow.Key{
			Src:     netip.AddrFrom4([4]byte{198, 51, 100, 10}),
			Dst:     netip.AddrFrom4([4]byte{20, 0, byte(i >> 8), byte(i)}),
			SrcPort: 443,
			DstPort: uint16(50000 + i),
			Proto:   netflow.ProtoTCP,
		},
		Packets: uint64(1 + i),
		Bytes:   uint64(100 * (i + 1)),
		First:   exportTime.Add(time.Duration(i) * time.Second),
		Last:    exportTime.Add(time.Duration(i+1) * time.Second),
	}
}

func v6Record(i int) netflow.Record {
	r := v4Record(i)
	r.Src = netip.MustParseAddr("2001:db8:ffff::10")
	r.Dst = netip.MustParseAddr("2001:db8::1")
	return r
}

// stripExporter clears the Exporter field for comparison: the decoder
// attributes records to the sending address, not the original router name.
func stripExporter(recs []netflow.Record) []netflow.Record {
	out := make([]netflow.Record, len(recs))
	copy(out, recs)
	for i := range out {
		out[i].Exporter = ""
	}
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	enc := NewEncoder(7)
	var records []netflow.Record
	for i := 0; i < 5; i++ {
		records = append(records, v4Record(i))
	}
	records = append(records, v6Record(90), v6Record(91))

	pktData, err := enc.Encode(records, exportTime)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder("")
	pkt, err := dec.Decode(pktData)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.SourceID != 7 {
		t.Fatalf("source id = %d", pkt.SourceID)
	}
	if pkt.Templates != 2 {
		t.Fatalf("templates = %d, want 2 in first packet", pkt.Templates)
	}
	if len(pkt.Records) != len(records) {
		t.Fatalf("decoded %d records, want %d", len(pkt.Records), len(records))
	}
	got := stripExporter(pkt.Records)
	want := stripExporter(records)
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("record %+v lost in round trip", w)
		}
	}
}

func TestTimestampsMillisecondPrecision(t *testing.T) {
	enc := NewEncoder(1)
	rec := v4Record(0)
	rec.First = exportTime.Add(123 * time.Millisecond)
	rec.Last = exportTime.Add(456 * time.Millisecond)
	data, err := enc.Encode([]netflow.Record{rec}, exportTime)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := NewDecoder("").Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !pkt.Records[0].First.Equal(rec.First) || !pkt.Records[0].Last.Equal(rec.Last) {
		t.Fatalf("timestamps lost precision: %v / %v", pkt.Records[0].First, pkt.Records[0].Last)
	}
}

func TestTemplatesOnlyInFirstPacket(t *testing.T) {
	enc := NewEncoder(2)
	d1, err := enc.Encode([]netflow.Record{v4Record(0)}, exportTime)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := enc.Encode([]netflow.Record{v4Record(1)}, exportTime)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder("")
	p1, err := dec.Decode(d1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := dec.Decode(d2)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Templates != 2 || p2.Templates != 0 {
		t.Fatalf("templates = %d then %d, want 2 then 0", p1.Templates, p2.Templates)
	}
	if len(p2.Records) != 1 {
		t.Fatal("second packet records lost")
	}
	// After Reset, templates come back.
	enc.Reset()
	d3, err := enc.Encode([]netflow.Record{v4Record(2)}, exportTime)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := dec.Decode(d3)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Templates != 2 {
		t.Fatalf("post-reset templates = %d", p3.Templates)
	}
}

func TestSequenceNumbering(t *testing.T) {
	// RFC 3954: the v9 sequence number counts export packets per
	// observation domain (not items, unlike v5's flow counter).
	enc := NewEncoder(3)
	if _, err := enc.Encode([]netflow.Record{v4Record(0), v4Record(1)}, exportTime); err != nil {
		t.Fatal(err)
	}
	if enc.Sequence() != 1 {
		t.Fatalf("sequence = %d, want 1 after one packet", enc.Sequence())
	}
	if _, err := enc.Encode([]netflow.Record{v4Record(2)}, exportTime); err != nil {
		t.Fatal(err)
	}
	if enc.Sequence() != 2 {
		t.Fatalf("sequence = %d, want 2 after two packets", enc.Sequence())
	}
}

func TestDecodeBeforeTemplate(t *testing.T) {
	// A fresh decoder receiving a data-only packet must reject the data
	// flowset (unknown template).
	enc := NewEncoder(4)
	if _, err := enc.Encode([]netflow.Record{v4Record(0)}, exportTime); err != nil {
		t.Fatal(err) // consumes the template send
	}
	dataOnly, err := enc.Encode([]netflow.Record{v4Record(1)}, exportTime)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecoder("").Decode(dataOnly); err == nil {
		t.Fatal("data before template must fail")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := NewDecoder("").Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short packet must fail")
	}
	bad := make([]byte, headerLen)
	bad[0], bad[1] = 0, 5 // NetFlow v5
	if _, err := NewDecoder("").Decode(bad); err == nil {
		t.Fatal("wrong version must fail")
	}
	// Corrupt flowset length.
	enc := NewEncoder(5)
	data, err := enc.Encode([]netflow.Record{v4Record(0)}, exportTime)
	if err != nil {
		t.Fatal(err)
	}
	data[headerLen+2] = 0xFF
	data[headerLen+3] = 0xFF
	if _, err := NewDecoder("").Decode(data); err == nil {
		t.Fatal("oversized flowset length must fail")
	}
}

func TestMixedFamilyRecordRejected(t *testing.T) {
	rec := v4Record(0)
	rec.Dst = netip.MustParseAddr("2001:db8::1")
	if _, err := NewEncoder(6).Encode([]netflow.Record{rec}, exportTime); err == nil {
		t.Fatal("mixed family record must fail")
	}
}

func TestUDPExportCollect(t *testing.T) {
	recCh := make(chan []netflow.Record, 64)
	coll, err := NewCollector("127.0.0.1:0", func(recs []netflow.Record) {
		recCh <- recs
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()

	exp, err := NewExporter(coll.Addr(), 42)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	var sent []netflow.Record
	for i := 0; i < 100; i++ {
		sent = append(sent, v4Record(i))
	}
	for i := 0; i < 10; i++ {
		sent = append(sent, v6Record(200+i))
	}
	if err := exp.Export(sent, exportTime); err != nil {
		t.Fatal(err)
	}

	var got []netflow.Record
	deadline := time.After(5 * time.Second)
	for len(got) < len(sent) {
		select {
		case recs := <-recCh:
			got = append(got, recs...)
		case <-deadline:
			t.Fatalf("timeout: received %d of %d records", len(got), len(sent))
		}
	}
	wantSet := make(map[netflow.Record]bool)
	for _, r := range stripExporter(sent) {
		wantSet[r] = true
	}
	for _, r := range stripExporter(got) {
		if !wantSet[r] {
			t.Fatalf("unexpected record %+v", r)
		}
	}
	packets, records, errors := coll.Stats()
	if packets == 0 || records != len(sent) || errors != 0 {
		t.Fatalf("collector stats: %d packets, %d records, %d errors", packets, records, errors)
	}
	// Chunking: 110 records cannot fit one datagram.
	if packets < 2 {
		t.Fatalf("expected multiple datagrams, got %d", packets)
	}
}

func TestExportPacketsFitMTU(t *testing.T) {
	enc := NewEncoder(9)
	var recs []netflow.Record
	for i := 0; i < maxRecordsPerPacket; i++ {
		recs = append(recs, v6Record(i))
	}
	data, err := enc.Encode(recs, exportTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > maxDatagram {
		t.Fatalf("packet %d bytes exceeds MTU budget %d", len(data), maxDatagram)
	}
}

func BenchmarkEncode(b *testing.B) {
	enc := NewEncoder(1)
	rng := rand.New(rand.NewSource(1))
	var recs []netflow.Record
	for i := 0; i < 20; i++ {
		recs = append(recs, v4Record(rng.Intn(1000)))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(recs, exportTime); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	enc := NewEncoder(1)
	var recs []netflow.Record
	for i := 0; i < 20; i++ {
		recs = append(recs, v4Record(i))
	}
	data, err := enc.Encode(recs, exportTime)
	if err != nil {
		b.Fatal(err)
	}
	dec := NewDecoder("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeInto(b *testing.B) {
	enc := NewEncoder(1)
	var recs []netflow.Record
	for i := 0; i < 20; i++ {
		recs = append(recs, v4Record(i))
	}
	data, err := enc.Encode(recs, exportTime)
	if err != nil {
		b.Fatal(err)
	}
	dec := NewDecoder("bench")
	slab := netflow.GetSlab()
	defer netflow.RecycleSlab(slab)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := dec.DecodeInto(data, slab.Recs[:0])
		if err != nil {
			b.Fatal(err)
		}
		slab.Recs = out
	}
}
