package nfv9

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"cwatrace/internal/netflow"
)

// TestQuickEncodeDecodeRoundTrip: arbitrary valid IPv4 records survive the
// v9 wire format.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	enc := NewEncoder(11)
	dec := NewDecoder("")
	// Prime templates once, as a long-lived exporter/collector pair would.
	prime, err := enc.Encode([]netflow.Record{v4Record(0)}, exportTime)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(prime); err != nil {
		t.Fatal(err)
	}

	f := func(src, dst [4]byte, sport, dport uint16, proto uint8,
		pkts, byteCount uint32, firstSec uint32, durMs uint16) bool {
		first := time.Unix(int64(firstSec), 0).UTC()
		rec := netflow.Record{
			Key: netflow.Key{
				Src:     netip.AddrFrom4(src),
				Dst:     netip.AddrFrom4(dst),
				SrcPort: sport,
				DstPort: dport,
				Proto:   proto,
			},
			Packets: uint64(pkts),
			Bytes:   uint64(byteCount),
			First:   first,
			Last:    first.Add(time.Duration(durMs) * time.Millisecond),
		}
		data, err := enc.Encode([]netflow.Record{rec}, exportTime)
		if err != nil {
			return false
		}
		pkt, err := dec.Decode(data)
		if err != nil || len(pkt.Records) != 1 {
			return false
		}
		got := pkt.Records[0]
		got.Exporter = ""
		return got == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSequenceMonotone: sequence numbers never decrease across
// arbitrary batch sizes.
func TestQuickSequenceMonotone(t *testing.T) {
	enc := NewEncoder(12)
	prev := uint32(0)
	f := func(n uint8) bool {
		recs := make([]netflow.Record, int(n%20)+1)
		for i := range recs {
			recs[i] = v4Record(i)
		}
		if _, err := enc.Encode(recs, exportTime); err != nil {
			return false
		}
		seq := enc.Sequence()
		ok := seq >= prev
		prev = seq
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
