package nfv9

import (
	"fmt"
	"net"
	"sync"
	"time"

	"cwatrace/internal/netflow"
)

// maxDatagram bounds export packet sizes; v9 exporters keep datagrams under
// the typical 1500-byte MTU.
const maxDatagram = 1400

// maxRecordsPerPacket keeps encoded packets under maxDatagram for the
// largest (IPv6) record layout plus header and template overhead.
const maxRecordsPerPacket = (maxDatagram - headerLen - 96) / v6RecordLen

// Exporter sends flow records to a collector over UDP, splitting them into
// MTU-sized export packets and refreshing templates periodically.
type Exporter struct {
	conn net.Conn
	enc  *Encoder
	// TemplateRefresh is how many packets go between template resends
	// (RFC 3954 suggests periodic refresh since UDP is lossy).
	TemplateRefresh int
	sent            int
}

// NewExporter dials the collector address ("host:port").
func NewExporter(collectorAddr string, sourceID uint32) (*Exporter, error) {
	conn, err := net.Dial("udp", collectorAddr)
	if err != nil {
		return nil, fmt.Errorf("nfv9: dialing collector: %w", err)
	}
	return &Exporter{conn: conn, enc: NewEncoder(sourceID), TemplateRefresh: 20}, nil
}

// Export encodes and sends records, chunked into datagrams.
func (e *Exporter) Export(records []netflow.Record, now time.Time) error {
	for len(records) > 0 {
		n := len(records)
		if n > maxRecordsPerPacket {
			n = maxRecordsPerPacket
		}
		if e.TemplateRefresh > 0 && e.sent%e.TemplateRefresh == 0 {
			e.enc.Reset()
		}
		pkt, err := e.enc.Encode(records[:n], now)
		if err != nil {
			return err
		}
		if _, err := e.conn.Write(pkt); err != nil {
			return fmt.Errorf("nfv9: sending export packet: %w", err)
		}
		e.sent++
		records = records[n:]
	}
	return nil
}

// Close releases the socket.
func (e *Exporter) Close() error { return e.conn.Close() }

// Collector listens for export packets on UDP and hands decoded records to
// a sink. One decoder per (source address, observation-domain SourceID)
// keeps template and sequence state per exporter, as RFC 3954 scopes them.
//
// This is the minimal transport-level pair for the Exporter, used by the
// examples and tests; the production ingest path is internal/ingest,
// which adds bounded multi-worker fan-out, drop accounting and streaming
// analytics on top of the same per-source Decoder discipline.
type Collector struct {
	pc   net.PacketConn
	sink func([]netflow.Record)

	mu       sync.Mutex
	decoders map[collectorKey]*Decoder
	packets  int
	records  int
	errors   int

	done chan struct{}
	wg   sync.WaitGroup
}

// collectorKey scopes decoder state per RFC 3954 observation domain.
type collectorKey struct {
	from   string
	domain uint32
}

// NewCollector starts a collector on addr ("127.0.0.1:0" for an ephemeral
// test port). sink receives each packet's records; it is called from the
// receive goroutine and must not block for long.
func NewCollector(addr string, sink func([]netflow.Record)) (*Collector, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("nfv9: listening: %w", err)
	}
	c := &Collector{
		pc:       pc,
		sink:     sink,
		decoders: make(map[collectorKey]*Decoder),
		done:     make(chan struct{}),
	}
	c.wg.Add(1)
	go c.loop()
	return c, nil
}

// Addr returns the bound listen address.
func (c *Collector) Addr() string { return c.pc.LocalAddr().String() }

func (c *Collector) loop() {
	defer c.wg.Done()
	buf := make([]byte, 65536)
	for {
		select {
		case <-c.done:
			return
		default:
		}
		_ = c.pc.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, from, err := c.pc.ReadFrom(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		c.handle(from.String(), buf[:n])
	}
}

func (c *Collector) handle(from string, data []byte) {
	sourceID, ok := PeekSourceID(data)
	if !ok {
		c.mu.Lock()
		c.errors++
		c.mu.Unlock()
		return
	}
	key := collectorKey{from: from, domain: sourceID}
	c.mu.Lock()
	dec, known := c.decoders[key]
	if !known {
		dec = NewDecoder(from)
	}
	c.mu.Unlock()

	pkt, err := dec.Decode(data)
	if err != nil {
		c.mu.Lock()
		c.errors++
		c.mu.Unlock()
		return
	}
	if !known {
		// Retain per-source state only once a packet decoded, so
		// garbage senders cannot grow the map without bound.
		c.mu.Lock()
		c.decoders[key] = dec
		c.mu.Unlock()
	}
	c.mu.Lock()
	c.packets++
	c.records += len(pkt.Records)
	c.mu.Unlock()
	if len(pkt.Records) > 0 && c.sink != nil {
		c.sink(pkt.Records)
	}
}

// Stats reports received packets, decoded records and decode errors.
func (c *Collector) Stats() (packets, records, errors int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.packets, c.records, c.errors
}

// Close stops the receive loop and releases the socket.
func (c *Collector) Close() error {
	close(c.done)
	err := c.pc.Close()
	c.wg.Wait()
	return err
}
