package nfv9

import (
	"testing"

	"cwatrace/internal/netflow"
)

// encodeSeq renders n packets of one record each from a fresh encoder and
// returns them; packet 0 carries the templates.
func encodeSeq(t *testing.T, n int) [][]byte {
	t.Helper()
	enc := NewEncoder(21)
	out := make([][]byte, n)
	for i := range out {
		pkt, err := enc.Encode([]netflow.Record{v4Record(i)}, exportTime)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = pkt
	}
	return out
}

// TestSequenceGapDetection drops a packet mid-stream and asserts the
// decoder's audit reports the gap and the number of lost sequence units —
// the RFC 3954 loss-detection duty of a collector behind lossy UDP export.
func TestSequenceGapDetection(t *testing.T) {
	pkts := encodeSeq(t, 3)
	dec := NewDecoder("")

	if _, err := dec.Decode(pkts[0]); err != nil {
		t.Fatal(err)
	}
	if gaps, lost, _ := dec.SequenceStats(); gaps != 0 || lost != 0 {
		t.Fatalf("clean stream reported gaps=%d lost=%d", gaps, lost)
	}

	// Packet 1 goes missing: one gap, one lost export packet.
	if _, err := dec.Decode(pkts[2]); err != nil {
		t.Fatal(err)
	}
	gaps, lost, reordered := dec.SequenceStats()
	if gaps != 1 || lost != 1 || reordered != 0 {
		t.Fatalf("after dropping one packet: gaps=%d lost=%d reordered=%d, want 1/1/0", gaps, lost, reordered)
	}
}

// TestSequenceReorderNotCountedAsLoss replays an old packet: the audit
// flags the disorder without inflating the loss counter or corrupting the
// expected next sequence number.
func TestSequenceReorderNotCountedAsLoss(t *testing.T) {
	pkts := encodeSeq(t, 3)
	dec := NewDecoder("")
	for _, i := range []int{0, 1, 2} {
		if _, err := dec.Decode(pkts[i]); err != nil {
			t.Fatal(err)
		}
	}
	// A duplicate/late copy of packet 1 arrives after packet 2.
	if _, err := dec.Decode(pkts[1]); err != nil {
		t.Fatal(err)
	}
	gaps, lost, reordered := dec.SequenceStats()
	if lost != 0 || reordered != 1 {
		t.Fatalf("reordered replay: gaps=%d lost=%d reordered=%d, want lost=0 reordered=1", gaps, lost, reordered)
	}
	// The stream resumes in order without new gaps.
	enc2 := NewEncoder(21)
	for i := 0; i < 3; i++ {
		if _, err := enc2.Encode([]netflow.Record{v4Record(i)}, exportTime); err != nil {
			t.Fatal(err)
		}
	}
	next, err := enc2.Encode([]netflow.Record{v4Record(3)}, exportTime)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(next); err != nil {
		t.Fatal(err)
	}
	if newGaps, _, _ := dec.SequenceStats(); newGaps != gaps {
		t.Fatalf("in-order continuation after reorder added gaps: %d -> %d", gaps, newGaps)
	}
}

// TestSequenceTrueReorderCreditsLoss delivers 0,2,1: the forward jump
// charges packet 1 as lost, and its late arrival credits it back — benign
// in-flight reordering must end with net zero loss.
func TestSequenceTrueReorderCreditsLoss(t *testing.T) {
	pkts := encodeSeq(t, 3)
	dec := NewDecoder("")
	for _, i := range []int{0, 2, 1} {
		if _, err := dec.Decode(pkts[i]); err != nil {
			t.Fatal(err)
		}
	}
	gaps, lost, reordered := dec.SequenceStats()
	if gaps != 2 || lost != 0 || reordered != 1 {
		t.Fatalf("0,2,1 delivery: gaps=%d lost=%d reordered=%d, want 2/0/1", gaps, lost, reordered)
	}
}

// TestSequenceGapAcrossManyPackets drops a run of packets and checks the
// loss count equals the number of packets that never arrived.
func TestSequenceGapAcrossManyPackets(t *testing.T) {
	pkts := encodeSeq(t, 10)
	dec := NewDecoder("")
	if _, err := dec.Decode(pkts[0]); err != nil {
		t.Fatal(err)
	}
	// Packets 1..8 (8 packets x 1 record) vanish.
	if _, err := dec.Decode(pkts[9]); err != nil {
		t.Fatal(err)
	}
	gaps, lost, _ := dec.SequenceStats()
	if gaps != 1 || lost != 8 {
		t.Fatalf("gaps=%d lost=%d, want 1/8", gaps, lost)
	}
}
