package nfv9

import (
	"net/netip"
	"testing"
	"time"

	"cwatrace/internal/netflow"
)

// fuzzSeedRecords fabricates the record shapes a quick sim export
// produces — IPv4 CDN-to-client HTTPS flows plus an IPv6 pair — so the
// seed corpus covers both templates and realistic field values.
func fuzzSeedRecords() [][]netflow.Record {
	at := time.Date(2020, time.June, 16, 9, 0, 0, 0, time.UTC)
	v4 := func(i int) netflow.Record {
		return netflow.Record{
			Key: netflow.Key{
				Src:     netip.AddrFrom4([4]byte{198, 51, 100, 10}),
				Dst:     netip.AddrFrom4([4]byte{100, 64, byte(i >> 8), byte(i)}),
				SrcPort: 443,
				DstPort: uint16(50000 + i),
				Proto:   netflow.ProtoTCP,
			},
			Packets:  uint64(1 + i%7),
			Bytes:    uint64(400 + 100*i),
			First:    at.Add(time.Duration(i) * time.Second),
			Last:     at.Add(time.Duration(i)*time.Second + 800*time.Millisecond),
			Exporter: "ISP/BE-000",
		}
	}
	v6 := netflow.Record{
		Key: netflow.Key{
			Src:     netip.MustParseAddr("2001:db8::10"),
			Dst:     netip.MustParseAddr("2001:db8::c1"),
			SrcPort: 443,
			DstPort: 51515,
			Proto:   netflow.ProtoTCP,
		},
		Packets:  3,
		Bytes:    2048,
		First:    at,
		Last:     at.Add(2 * time.Second),
		Exporter: "ISP/BE-001",
	}
	return [][]netflow.Record{
		{v4(0)},
		{v4(1), v4(2), v4(3)},
		{v6},
		{v4(4), v6},
	}
}

// rawPacket hand-assembles one v9 packet from flowset bodies, bypassing
// the encoder so seeds can cover template shapes the encoder never emits
// (reordered fields, bad lengths, truncated records).
func rawPacket(seq uint32, flowsets ...[]byte) []byte {
	buf := make([]byte, 0, 64)
	buf = be16(buf, Version)
	buf = be16(buf, 0) // count: the decoder does not rely on it
	buf = append(buf, 0, 0, 0, 0)
	buf = append(buf, 0, 0, 0, 0) // export time 0
	buf = append(buf, byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq))
	buf = append(buf, 0, 0, 0, 7) // source id
	for _, fs := range flowsets {
		buf = append(buf, fs...)
	}
	return buf
}

// rawFlowSet frames one flowset (id + length + body, padded to 4 bytes).
func rawFlowSet(id uint16, body []byte) []byte {
	fs := be16(nil, id)
	fs = be16(fs, uint16(4+len(body)+(4-(4+len(body))%4)%4))
	fs = append(fs, body...)
	for len(fs)%4 != 0 {
		fs = append(fs, 0)
	}
	return fs
}

// rawTemplate renders one template record body.
func rawTemplate(tid uint16, fields []templateField) []byte {
	b := be16(nil, tid)
	b = be16(b, uint16(len(fields)))
	for _, f := range fields {
		b = be16(b, f.Type)
		b = be16(b, f.Length)
	}
	return b
}

// fastPathSeeds are packets exercising the compiled-template machinery:
// a reordered (non-canonical) template that compiles to the generic ops
// decoder, a data slab truncated mid-record, a template with a hostile
// field length the compiler must reject, and unknown interleaved fields
// the accessor table skips.
func fastPathSeeds() [][]byte {
	reordered := []templateField{
		{fieldProtocol, 1}, {fieldL4DstPort, 2}, {fieldIPv4DstAddr, 4},
		{fieldIPv4SrcAddr, 4}, {fieldL4SrcPort, 2}, {fieldInPkts, 8},
		{fieldInBytes, 8}, {fieldLastSwitched, 8}, {fieldFirstSwitched, 8},
	}
	rec := make([]byte, 45) // one reordered record (1+2+4+4+2+8+8+8+8)
	for i := range rec {
		rec[i] = byte(i + 1)
	}
	badLen := []templateField{{fieldIPv4SrcAddr, 4}, {fieldInBytes, 2}}
	unknown := []templateField{
		{9999, 3}, {fieldIPv4SrcAddr, 4}, {4242, 5}, {fieldInBytes, 8},
	}
	unkRec := make([]byte, 20)
	return [][]byte{
		// Template + full data record through the generic compiled path.
		rawPacket(1,
			rawFlowSet(0, rawTemplate(300, reordered)),
			rawFlowSet(300, rec)),
		// Data slab truncated mid-record: 1.5 records, tail ignored.
		rawPacket(2,
			rawFlowSet(0, rawTemplate(300, reordered)),
			rawFlowSet(300, append(append([]byte(nil), rec...), rec[:20]...))),
		// Template declaring IN_BYTES at 2 bytes: compile-time rejection
		// surfaced on first data use.
		rawPacket(3,
			rawFlowSet(0, rawTemplate(301, badLen)),
			rawFlowSet(301, make([]byte, 6))),
		// Unknown field types interleaved: skipped by the accessor table.
		rawPacket(4,
			rawFlowSet(0, rawTemplate(302, unknown)),
			rawFlowSet(302, unkRec)),
	}
}

// FuzzDecode hammers the NFv9 decoder with arbitrary datagrams. The
// decoder must never panic, and whatever it accepts must be internally
// consistent (a non-nil packet, records with the exporter name stamped).
// Decode and DecodeInto run side by side on identical decoder state and
// must agree on everything: records, header metadata, errors and the
// sequence audit. The seed corpus is real encoder output — with and
// without template FlowSets — plus hand-built packets covering the
// compiled-template fast paths, so the fuzzer starts from wire-valid
// packets and mutates from there.
func FuzzDecode(f *testing.F) {
	enc := NewEncoder(7)
	for _, recs := range fuzzSeedRecords() {
		pkt, err := enc.Encode(recs, recs[0].First)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(pkt)
	}
	// A template-refresh packet and a templateless data packet.
	enc.Reset()
	pkt, err := enc.Encode(nil, time.Unix(0, 0))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pkt)
	f.Add([]byte{})
	f.Add([]byte{0, 9, 0, 0})
	for _, seed := range fastPathSeeds() {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder("fuzz")
		into := NewDecoder("fuzz")
		slab := netflow.GetSlab()
		defer netflow.RecycleSlab(slab)
		// Two passes through each decoder: template state learned from the
		// first decode must not corrupt the second. The slab is reused
		// across passes, so stale storage must never leak into results.
		for i := 0; i < 2; i++ {
			pkt, err := dec.Decode(data)
			recs, meta, ierr := into.DecodeInto(data, slab.Recs[:0])
			slab.Recs = recs
			if (err == nil) != (ierr == nil) {
				t.Fatalf("Decode err %v, DecodeInto err %v", err, ierr)
			}
			if err != nil {
				if err.Error() != ierr.Error() {
					t.Fatalf("Decode err %q, DecodeInto err %q", err, ierr)
				}
				if len(recs) != 0 {
					t.Fatalf("DecodeInto kept %d records across an error", len(recs))
				}
				continue
			}
			if pkt == nil {
				t.Fatal("nil packet without error")
			}
			if meta.SequenceNumber != pkt.SequenceNumber || meta.SourceID != pkt.SourceID ||
				!meta.ExportTime.Equal(pkt.ExportTime) || meta.Templates != pkt.Templates {
				t.Fatalf("meta %+v != packet header %+v", meta, pkt)
			}
			if len(recs) != len(pkt.Records) {
				t.Fatalf("DecodeInto %d records, Decode %d", len(recs), len(pkt.Records))
			}
			for j := range recs {
				if r := pkt.Records[j]; r.Exporter != "fuzz" {
					t.Fatalf("record exporter %q", r.Exporter)
				} else if recs[j] != r {
					t.Fatalf("record %d: DecodeInto %+v != Decode %+v", j, recs[j], r)
				}
			}
			netflow.RecycleBatch(pkt.Records)
		}
		// The sequence audit stays sane on arbitrary input, and identical
		// across the two decode paths.
		gaps, lost, reordered := dec.SequenceStats()
		ig, il, ir := into.SequenceStats()
		if gaps < 0 || reordered < 0 {
			t.Fatalf("negative sequence stats: %d, %d", gaps, reordered)
		}
		if gaps != ig || lost != il || reordered != ir {
			t.Fatalf("sequence stats diverge: Decode %d/%d/%d, DecodeInto %d/%d/%d",
				gaps, lost, reordered, ig, il, ir)
		}
	})
}
