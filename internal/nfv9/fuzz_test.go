package nfv9

import (
	"net/netip"
	"testing"
	"time"

	"cwatrace/internal/netflow"
)

// fuzzSeedRecords fabricates the record shapes a quick sim export
// produces — IPv4 CDN-to-client HTTPS flows plus an IPv6 pair — so the
// seed corpus covers both templates and realistic field values.
func fuzzSeedRecords() [][]netflow.Record {
	at := time.Date(2020, time.June, 16, 9, 0, 0, 0, time.UTC)
	v4 := func(i int) netflow.Record {
		return netflow.Record{
			Key: netflow.Key{
				Src:     netip.AddrFrom4([4]byte{198, 51, 100, 10}),
				Dst:     netip.AddrFrom4([4]byte{100, 64, byte(i >> 8), byte(i)}),
				SrcPort: 443,
				DstPort: uint16(50000 + i),
				Proto:   netflow.ProtoTCP,
			},
			Packets:  uint64(1 + i%7),
			Bytes:    uint64(400 + 100*i),
			First:    at.Add(time.Duration(i) * time.Second),
			Last:     at.Add(time.Duration(i)*time.Second + 800*time.Millisecond),
			Exporter: "ISP/BE-000",
		}
	}
	v6 := netflow.Record{
		Key: netflow.Key{
			Src:     netip.MustParseAddr("2001:db8::10"),
			Dst:     netip.MustParseAddr("2001:db8::c1"),
			SrcPort: 443,
			DstPort: 51515,
			Proto:   netflow.ProtoTCP,
		},
		Packets:  3,
		Bytes:    2048,
		First:    at,
		Last:     at.Add(2 * time.Second),
		Exporter: "ISP/BE-001",
	}
	return [][]netflow.Record{
		{v4(0)},
		{v4(1), v4(2), v4(3)},
		{v6},
		{v4(4), v6},
	}
}

// FuzzDecode hammers the NFv9 decoder with arbitrary datagrams. The
// decoder must never panic, and whatever it accepts must be internally
// consistent (a non-nil packet, records with the exporter name stamped).
// The seed corpus is real encoder output — with and without template
// FlowSets — so the fuzzer starts from wire-valid packets and mutates
// from there.
func FuzzDecode(f *testing.F) {
	enc := NewEncoder(7)
	for _, recs := range fuzzSeedRecords() {
		pkt, err := enc.Encode(recs, recs[0].First)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(pkt)
	}
	// A template-refresh packet and a templateless data packet.
	enc.Reset()
	pkt, err := enc.Encode(nil, time.Unix(0, 0))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pkt)
	f.Add([]byte{})
	f.Add([]byte{0, 9, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder("fuzz")
		// Two passes through one decoder: template state learned from the
		// first decode must not corrupt the second.
		for i := 0; i < 2; i++ {
			pkt, err := dec.Decode(data)
			if err != nil {
				continue
			}
			if pkt == nil {
				t.Fatal("nil packet without error")
			}
			for _, r := range pkt.Records {
				if r.Exporter != "fuzz" {
					t.Fatalf("record exporter %q", r.Exporter)
				}
			}
			netflow.RecycleBatch(pkt.Records)
		}
		// The sequence audit stays sane on arbitrary input.
		gaps, _, reordered := dec.SequenceStats()
		if gaps < 0 || reordered < 0 {
			t.Fatalf("negative sequence stats: %d, %d", gaps, reordered)
		}
	})
}
