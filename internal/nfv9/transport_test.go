package nfv9

import (
	"net"
	"testing"
	"time"

	"cwatrace/internal/netflow"
)

// captureConn is a UDP listener that collects every datagram it receives,
// so tests can replay (or drop) the exporter's packets selectively.
func captureConn(t *testing.T) (addr string, next func() []byte) {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	return pc.LocalAddr().String(), func() []byte {
		buf := make([]byte, 65536)
		_ = pc.SetReadDeadline(time.Now().Add(5 * time.Second))
		n, _, err := pc.ReadFrom(buf)
		if err != nil {
			t.Fatalf("capturing export packet: %v", err)
		}
		return buf[:n]
	}
}

// TestExporterTemplateRefreshRecovery drops the exporter's first packet —
// the one carrying the template definitions — and asserts a fresh decoder
// (1) rejects data until a template arrives, and (2) recovers as soon as
// the periodic TemplateRefresh resends it, the RFC 3954 recovery story the
// refresh exists for.
func TestExporterTemplateRefreshRecovery(t *testing.T) {
	addr, next := captureConn(t)
	exp, err := NewExporter(addr, 33)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	exp.TemplateRefresh = 2 // templates on packets 0, 2, 4, ...

	var pkts [][]byte
	for i := 0; i < 4; i++ {
		if err := exp.Export([]netflow.Record{v4Record(i)}, exportTime); err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, next())
	}

	dec := NewDecoder("")
	// Packet 0 (with templates) was lost in transit: packet 1 is
	// undecodable.
	if _, err := dec.Decode(pkts[1]); err == nil {
		t.Fatal("data before any template must fail")
	}
	// Packet 2 carries the refresh: decoding recovers...
	p2, err := dec.Decode(pkts[2])
	if err != nil {
		t.Fatalf("decoder did not recover on template refresh: %v", err)
	}
	if p2.Templates != 2 || len(p2.Records) != 1 {
		t.Fatalf("refresh packet decoded as %d templates / %d records", p2.Templates, len(p2.Records))
	}
	// ...and stays recovered for template-free packets.
	p3, err := dec.Decode(pkts[3])
	if err != nil || len(p3.Records) != 1 {
		t.Fatalf("post-recovery packet: %v (%d records)", err, len(p3.Records))
	}
	// The audit anchors on the first packet it saw (packet 1), so the
	// pre-anchor loss of packet 0 is invisible and the remaining stream
	// is contiguous — no false gap reports while recovering.
	if gaps, lost, _ := dec.SequenceStats(); gaps != 0 || lost != 0 {
		t.Fatalf("recovery stream reported spurious gaps=%d lost=%d", gaps, lost)
	}
}

// TestExporterClose verifies Close releases the socket: further exports
// fail, and closing twice is an error-returning no-op rather than a panic.
func TestExporterClose(t *testing.T) {
	addr, _ := captureConn(t)
	exp, err := NewExporter(addr, 34)
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Export([]netflow.Record{v4Record(0)}, exportTime); err != nil {
		t.Fatal(err)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := exp.Export([]netflow.Record{v4Record(1)}, exportTime); err == nil {
		t.Fatal("export after Close must fail")
	}
	if err := exp.Close(); err == nil {
		t.Fatal("double Close should surface the net.Conn error")
	}
}

// TestExporterChunksLargeBatches pins the MTU discipline: a batch far
// larger than one datagram arrives as multiple packets that together carry
// every record.
func TestExporterChunksLargeBatches(t *testing.T) {
	addr, next := captureConn(t)
	exp, err := NewExporter(addr, 35)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	const n = 100
	recs := make([]netflow.Record, n)
	for i := range recs {
		recs[i] = v4Record(i)
	}
	if err := exp.Export(recs, exportTime); err != nil {
		t.Fatal(err)
	}

	dec := NewDecoder("")
	got := 0
	for got < n {
		data := next()
		if len(data) > maxDatagram {
			t.Fatalf("datagram of %d bytes exceeds the %d-byte MTU budget", len(data), maxDatagram)
		}
		pkt, err := dec.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		got += len(pkt.Records)
	}
	if got != n {
		t.Fatalf("received %d records, want %d", got, n)
	}
	if gaps, lost, _ := dec.SequenceStats(); gaps != 0 || lost != 0 {
		t.Fatalf("lossless chunked export reported gaps=%d lost=%d", gaps, lost)
	}
}
