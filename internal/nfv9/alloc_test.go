package nfv9

import (
	"testing"

	"cwatrace/internal/netflow"
)

// decodeIntoAllocs measures steady-state allocations per DecodeInto call
// for one wire packet: templates learned, slab grown to capacity.
func decodeIntoAllocs(t *testing.T, data []byte) float64 {
	t.Helper()
	dec := NewDecoder("alloc")
	slab := netflow.GetSlab()
	defer netflow.RecycleSlab(slab)
	recs, _, err := dec.DecodeInto(data, slab.Recs[:0])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("warmup decoded no records")
	}
	slab.Recs = recs
	return testing.AllocsPerRun(100, func() {
		recs, _, err := dec.DecodeInto(data, slab.Recs[:0])
		if err != nil {
			t.Fatal(err)
		}
		slab.Recs = recs
	})
}

// TestDecodeIntoZeroAlloc pins the decode fast path at zero allocations
// per packet once the decoder has learned the templates and the caller's
// slab has capacity — the regression guard for the slab/compiled-template
// design. Any per-record or per-packet allocation sneaking back into the
// hot path fails here before it shows up in production profiles.
func TestDecodeIntoZeroAlloc(t *testing.T) {
	enc := NewEncoder(1)
	var v4recs, mixed []netflow.Record
	for i := 0; i < 20; i++ {
		v4recs = append(v4recs, v4Record(i))
		if i%2 == 0 {
			mixed = append(mixed, v4Record(i))
		} else {
			mixed = append(mixed, v6Record(i))
		}
	}
	cases := []struct {
		name string
		recs []netflow.Record
	}{
		{"v4", v4recs},
		{"mixed", mixed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			enc.Reset()
			data, err := enc.Encode(tc.recs, exportTime)
			if err != nil {
				t.Fatal(err)
			}
			if allocs := decodeIntoAllocs(t, data); allocs != 0 {
				t.Fatalf("DecodeInto allocated %.1f times per packet, want 0", allocs)
			}
		})
	}
}
