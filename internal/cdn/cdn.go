// Package cdn models the content delivery layer in front of the CWA
// backend. The paper's vantage point sits between this CDN and the users:
// what it measures is precisely the HTTPS bytes the CDN sends downstream,
// with website visits and app API calls indistinguishable on the wire.
//
// Edges cache the distribution objects (index documents, day packages, the
// website) with a TTL; the submission and verification calls pass through
// to the origin. The response-size model includes the TLS and HTTP framing
// overhead that dominates small API exchanges.
package cdn

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"cwatrace/internal/cwaserver"
	"cwatrace/internal/diagkeys"
	"cwatrace/internal/netsim"
)

// RequestType enumerates everything a client can ask of the hosting
// infrastructure.
type RequestType int

// Request types.
const (
	ReqWebsite RequestType = iota
	ReqIndex
	ReqDayPackage
	ReqHourPackage
	ReqRegistration
	ReqTestResult
	ReqTAN
	ReqSubmission
)

// String implements fmt.Stringer.
func (rt RequestType) String() string {
	switch rt {
	case ReqWebsite:
		return "website"
	case ReqIndex:
		return "index"
	case ReqDayPackage:
		return "day-package"
	case ReqHourPackage:
		return "hour-package"
	case ReqRegistration:
		return "registration"
	case ReqTestResult:
		return "test-result"
	case ReqTAN:
		return "tan"
	case ReqSubmission:
		return "submission"
	default:
		return "unknown"
	}
}

// Downstream protocol overhead per HTTPS exchange (server->client): TLS
// handshake with certificate chain plus response headers. These constants
// size flows, not payloads; they are deliberately simple.
const (
	TLSServerOverhead = 4600
	HTTPHeaderBytes   = 350
	// SmallJSONReply is the payload of the tiny API answers (TAN, poll,
	// submission ack, fake responses).
	SmallJSONReply = 120
)

// Request is one client interaction.
type Request struct {
	Type RequestType
	// Day selects the package for ReqDayPackage and ReqHourPackage.
	Day string
	// Hour selects the package for ReqHourPackage.
	Hour int
	// Fake marks plausible-deniability decoy calls.
	Fake bool
}

// Response describes the downstream answer.
type Response struct {
	// Bytes is the total server->client byte count including TLS and
	// HTTP overhead.
	Bytes int
	// Edge is the serving address inside the hosting prefixes.
	Edge netip.Addr
	// CacheHit reports whether an edge cache satisfied the request.
	CacheHit bool
}

// Config tunes the CDN.
type Config struct {
	// Edges is the number of edge servers per service.
	Edges int
	// CacheTTL bounds how long distribution objects are served from
	// cache before revalidation at the origin.
	CacheTTL time.Duration
}

// DefaultConfig uses a small edge fleet with the CWA's half-hour package
// freshness.
func DefaultConfig() Config {
	return Config{Edges: 8, CacheTTL: 30 * time.Minute}
}

type cacheEntry struct {
	size    int
	fetched time.Time
}

// edgeCache is one edge server's object cache with its own lock, so
// concurrent requests only contend when they hit the same edge. The
// simulation engine drives the CDN from its serial control plane, where
// the striping costs one uncontended lock per request; the striping is for
// callers that fan requests out (concurrent suites, future HTTP fronting
// of the distribution service), which would otherwise serialize on a
// single global mutex.
type edgeCache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
}

// CDN fronts a Backend. It is safe for concurrent use.
type CDN struct {
	cfg     Config
	backend *cwaserver.Backend
	website []byte
	edges   []*edgeCache
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// New creates a CDN over the given backend.
func New(cfg Config, backend *cwaserver.Backend, website []byte) (*CDN, error) {
	if cfg.Edges < 1 {
		return nil, fmt.Errorf("cdn: need at least one edge")
	}
	if cfg.CacheTTL <= 0 {
		return nil, fmt.Errorf("cdn: CacheTTL must be positive")
	}
	if backend == nil {
		return nil, fmt.Errorf("cdn: backend required")
	}
	edges := make([]*edgeCache, cfg.Edges)
	for i := range edges {
		edges[i] = &edgeCache{entries: make(map[string]cacheEntry)}
	}
	return &CDN{
		cfg:     cfg,
		backend: backend,
		website: website,
		edges:   edges,
	}, nil
}

// Serve answers one request at the given time. clientHash spreads clients
// over edges (any stable per-client value works).
func (c *CDN) Serve(now time.Time, clientHash uint64, req Request) (Response, error) {
	edgeIdx := int(clientHash % uint64(c.cfg.Edges))
	resp := Response{}
	switch req.Type {
	case ReqWebsite, ReqIndex, ReqDayPackage, ReqHourPackage:
		resp.Edge = netsim.CDNAddr(edgeIdx)
	default:
		resp.Edge = netsim.SubmissionAddr(edgeIdx)
	}

	if req.Fake {
		// Decoys mirror the real call shape downstream.
		resp.Bytes = TLSServerOverhead + HTTPHeaderBytes + SmallJSONReply
		return resp, nil
	}

	switch req.Type {
	case ReqWebsite:
		resp.Bytes = TLSServerOverhead + HTTPHeaderBytes + len(c.website)
		resp.CacheHit = true // static content is always edge-resident
	case ReqIndex:
		size, hit, err := c.cached(now, edgeIdx, "index", func() (int, error) {
			idx, err := c.backend.Index()
			if err != nil {
				return 0, err
			}
			data, err := diagkeys.MarshalIndex(idx)
			return len(data), err
		})
		if err != nil {
			return Response{}, err
		}
		resp.Bytes = TLSServerOverhead + HTTPHeaderBytes + size
		resp.CacheHit = hit
	case ReqDayPackage:
		size, hit, err := c.cached(now, edgeIdx, "day/"+req.Day, func() (int, error) {
			data, err := c.backend.ExportForDay(req.Day)
			if err != nil {
				return 0, err
			}
			return len(data), nil
		})
		if err != nil {
			return Response{}, err
		}
		resp.Bytes = TLSServerOverhead + HTTPHeaderBytes + size
		resp.CacheHit = hit
	case ReqHourPackage:
		size, hit, err := c.cached(now, edgeIdx, fmt.Sprintf("hour/%s/%d", req.Day, req.Hour), func() (int, error) {
			data, err := c.backend.ExportForHour(req.Day, req.Hour)
			if err != nil {
				return 0, err
			}
			return len(data), nil
		})
		if err != nil {
			return Response{}, err
		}
		resp.Bytes = TLSServerOverhead + HTTPHeaderBytes + size
		resp.CacheHit = hit
	case ReqRegistration, ReqTestResult, ReqTAN, ReqSubmission:
		// Pass-through services: tiny JSON responses.
		resp.Bytes = TLSServerOverhead + HTTPHeaderBytes + SmallJSONReply
	default:
		return Response{}, fmt.Errorf("cdn: unknown request type %d", req.Type)
	}
	return resp, nil
}

// cached looks an object up in the per-edge cache, fetching from the origin
// on miss or TTL expiry. Only requests landing on the same edge serialize;
// the edge lock is held across the origin fetch so concurrent misses for
// one object fetch once.
func (c *CDN) cached(now time.Time, edge int, object string, fetch func() (int, error)) (size int, hit bool, err error) {
	ec := c.edges[edge]
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if e, ok := ec.entries[object]; ok && now.Sub(e.fetched) < c.cfg.CacheTTL {
		c.hits.Add(1)
		return e.size, true, nil
	}
	size, err = fetch()
	if err != nil {
		return 0, false, err
	}
	ec.entries[object] = cacheEntry{size: size, fetched: now}
	c.misses.Add(1)
	return size, false, nil
}

// Stats reports edge cache hits and misses.
func (c *CDN) Stats() (hits, misses uint64) { return c.hits.Load(), c.misses.Load() }
