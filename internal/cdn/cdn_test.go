package cdn

import (
	"sync"
	"testing"
	"time"

	"cwatrace/internal/cwaserver"
	"cwatrace/internal/diagkeys"
	"cwatrace/internal/entime"
	"cwatrace/internal/exposure"
	"cwatrace/internal/netsim"
)

func newCDN(t *testing.T) (*CDN, *cwaserver.Backend, *entime.SimClock) {
	t.Helper()
	clock := entime.NewSimClock(entime.FirstKeysObserved.Add(8 * time.Hour))
	backend, err := cwaserver.New(cwaserver.DefaultConfig(), clock)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(DefaultConfig(), backend, cwaserver.DefaultWebsite())
	if err != nil {
		t.Fatal(err)
	}
	return c, backend, clock
}

func submitSomeKeys(t *testing.T, b *cwaserver.Backend, clock *entime.SimClock) string {
	t.Helper()
	token := b.RegisterTest(cwaserver.ResultPositive, clock.Now().Add(-time.Hour))
	tan, err := b.IssueTAN(token)
	if err != nil {
		t.Fatal(err)
	}
	start := entime.IntervalOf(clock.Now()).KeyPeriodStart()
	key := exposure.DiagnosisKey{
		TEK: exposure.TEK{
			RollingStart:  start,
			RollingPeriod: entime.EKRollingPeriod,
		},
		TransmissionRiskLevel: 5,
	}
	key.Key[0] = 0x42
	if err := b.SubmitKeys(tan, []exposure.DiagnosisKey{key}); err != nil {
		t.Fatal(err)
	}
	return diagkeys.DayKey(clock.Now())
}

func TestNewValidation(t *testing.T) {
	_, backend, _ := newCDN(t)
	if _, err := New(Config{Edges: 0, CacheTTL: time.Minute}, backend, nil); err == nil {
		t.Error("zero edges must fail")
	}
	if _, err := New(Config{Edges: 1, CacheTTL: 0}, backend, nil); err == nil {
		t.Error("zero TTL must fail")
	}
	if _, err := New(DefaultConfig(), nil, nil); err == nil {
		t.Error("nil backend must fail")
	}
}

func TestWebsiteResponseSize(t *testing.T) {
	c, _, clock := newCDN(t)
	resp, err := c.Serve(clock.Now(), 1, Request{Type: ReqWebsite})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Bytes <= len(cwaserver.DefaultWebsite()) {
		t.Fatalf("website response %d must include protocol overhead", resp.Bytes)
	}
	if !resp.CacheHit {
		t.Fatal("website is static and must always hit")
	}
	if !netsim.IsCWAServer(resp.Edge) {
		t.Fatalf("edge %s outside hosting prefixes", resp.Edge)
	}
}

func TestDayPackageCaching(t *testing.T) {
	c, backend, clock := newCDN(t)
	day := submitSomeKeys(t, backend, clock)

	r1, err := c.Serve(clock.Now(), 7, Request{Type: ReqDayPackage, Day: day})
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Fatal("first fetch must miss")
	}
	r2, err := c.Serve(clock.Now().Add(time.Minute), 7, Request{Type: ReqDayPackage, Day: day})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("second fetch within TTL must hit")
	}
	if r1.Bytes != r2.Bytes {
		t.Fatalf("cached size differs: %d vs %d", r1.Bytes, r2.Bytes)
	}
	// After TTL expiry the edge revalidates.
	r3, err := c.Serve(clock.Now().Add(DefaultConfig().CacheTTL+time.Minute), 7, Request{Type: ReqDayPackage, Day: day})
	if err != nil {
		t.Fatal(err)
	}
	if r3.CacheHit {
		t.Fatal("fetch after TTL must miss")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = %d hits/%d misses, want 1/2", hits, misses)
	}
}

func TestPerEdgeCaches(t *testing.T) {
	c, backend, clock := newCDN(t)
	day := submitSomeKeys(t, backend, clock)
	// Different client hashes land on different edges; each warms its own
	// cache.
	r1, err := c.Serve(clock.Now(), 0, Request{Type: ReqDayPackage, Day: day})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Serve(clock.Now(), 1, Request{Type: ReqDayPackage, Day: day})
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit || r2.CacheHit {
		t.Fatal("distinct edges must both miss initially")
	}
	if r1.Edge == r2.Edge {
		t.Fatal("hashes 0 and 1 should map to distinct edges")
	}
}

func TestDayPackageSizeGrowsWithKeys(t *testing.T) {
	c, backend, clock := newCDN(t)
	day := submitSomeKeys(t, backend, clock)
	r1, err := c.Serve(clock.Now(), 3, Request{Type: ReqDayPackage, Day: day})
	if err != nil {
		t.Fatal(err)
	}
	// Padding floor: 1 key still yields >= MinKeysPerExport records.
	wantMin := diagkeys.WireSize(diagkeys.MinKeysPerExport)
	if r1.Bytes < wantMin {
		t.Fatalf("package %d bytes, padding floor implies >= %d", r1.Bytes, wantMin)
	}
}

func TestMissingDayPropagatesError(t *testing.T) {
	c, _, clock := newCDN(t)
	if _, err := c.Serve(clock.Now(), 0, Request{Type: ReqDayPackage, Day: "1999-01-01"}); err == nil {
		t.Fatal("missing day must error")
	}
}

func TestAPIEndpointsUseSubmissionPrefix(t *testing.T) {
	c, _, clock := newCDN(t)
	for _, rt := range []RequestType{ReqRegistration, ReqTestResult, ReqTAN, ReqSubmission} {
		resp, err := c.Serve(clock.Now(), 5, Request{Type: rt})
		if err != nil {
			t.Fatal(err)
		}
		if !netsim.CWAServerPrefixes[1].Contains(resp.Edge) {
			t.Fatalf("%s served from %s, want submission prefix", rt, resp.Edge)
		}
		if resp.Bytes < TLSServerOverhead {
			t.Fatalf("%s response %d bytes below TLS floor", rt, resp.Bytes)
		}
	}
}

func TestFakeRequestsSizedLikeReal(t *testing.T) {
	c, _, clock := newCDN(t)
	real, err := c.Serve(clock.Now(), 2, Request{Type: ReqTAN})
	if err != nil {
		t.Fatal(err)
	}
	fake, err := c.Serve(clock.Now(), 2, Request{Type: ReqTAN, Fake: true})
	if err != nil {
		t.Fatal(err)
	}
	if real.Bytes != fake.Bytes {
		t.Fatalf("fake (%d) and real (%d) responses must be indistinguishable", fake.Bytes, real.Bytes)
	}
}

func TestIndexCached(t *testing.T) {
	c, backend, clock := newCDN(t)
	submitSomeKeys(t, backend, clock)
	r1, err := c.Serve(clock.Now(), 4, Request{Type: ReqIndex})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Serve(clock.Now().Add(time.Second), 4, Request{Type: ReqIndex})
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit || !r2.CacheHit {
		t.Fatalf("index caching broken: %v then %v", r1.CacheHit, r2.CacheHit)
	}
}

func TestHourPackageServing(t *testing.T) {
	c, backend, clock := newCDN(t)
	day := submitSomeKeys(t, backend, clock)
	hours := backend.AvailableHours(day)
	if len(hours) == 0 {
		t.Fatal("no hours after submission")
	}
	r1, err := c.Serve(clock.Now(), 9, Request{Type: ReqHourPackage, Day: day, Hour: hours[0]})
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Fatal("first hour fetch must miss")
	}
	if !netsim.CWAServerPrefixes[0].Contains(r1.Edge) {
		t.Fatalf("hour package served from %s, want CDN prefix", r1.Edge)
	}
	r2, err := c.Serve(clock.Now().Add(time.Minute), 9, Request{Type: ReqHourPackage, Day: day, Hour: hours[0]})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit || r1.Bytes != r2.Bytes {
		t.Fatalf("hour package caching broken: hit=%v sizes %d/%d", r2.CacheHit, r1.Bytes, r2.Bytes)
	}
	// Hour packages are unpadded and must be much smaller than the
	// padded day package.
	rd, err := c.Serve(clock.Now(), 9, Request{Type: ReqDayPackage, Day: day})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Bytes >= rd.Bytes {
		t.Fatalf("hour package (%d) should be smaller than padded day package (%d)", r1.Bytes, rd.Bytes)
	}
	// Missing hour errors.
	if _, err := c.Serve(clock.Now(), 9, Request{Type: ReqHourPackage, Day: day, Hour: 23}); err == nil {
		t.Fatal("missing hour must error")
	}
}

func TestRequestTypeString(t *testing.T) {
	names := map[RequestType]string{
		ReqWebsite: "website", ReqIndex: "index", ReqDayPackage: "day-package",
		ReqHourPackage: "hour-package", ReqRegistration: "registration",
		ReqTestResult: "test-result", ReqTAN: "tan", ReqSubmission: "submission",
		RequestType(99): "unknown",
	}
	for rt, want := range names {
		if rt.String() != want {
			t.Errorf("String(%d) = %q, want %q", rt, rt.String(), want)
		}
	}
}

// TestConcurrentServe exercises the per-edge lock striping and atomic
// counters under the race detector: many goroutines hammer all request
// types across all edges against a shared CDN and backend.
func TestConcurrentServe(t *testing.T) {
	c, backend, clock := newCDN(t)
	day := submitSomeKeys(t, backend, clock)
	hours := backend.AvailableHours(day)
	if len(hours) == 0 {
		t.Fatal("no hour packages published")
	}
	now := clock.Now()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reqs := []Request{
					{Type: ReqWebsite},
					{Type: ReqIndex},
					{Type: ReqDayPackage, Day: day},
					{Type: ReqHourPackage, Day: day, Hour: hours[0]},
					{Type: ReqSubmission, Fake: true},
				}
				req := reqs[i%len(reqs)]
				if _, err := c.Serve(now, uint64(g*1000+i), req); err != nil {
					t.Errorf("concurrent serve %v: %v", req.Type, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	hits, misses := c.Stats()
	if hits+misses == 0 {
		t.Fatal("no cache activity recorded")
	}
}
