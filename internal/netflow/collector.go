package netflow

import (
	"net/netip"
	"sort"

	"cwatrace/internal/cryptopan"
)

// Collector accumulates exported records from every router at the vantage
// point and applies the trace-release policy of the data set: client
// addresses are prefix-preserving anonymized, server addresses (needed for
// filtering) are left intact.
type Collector struct {
	anon *cryptopan.Anonymizer
	// keep decides which addresses stay un-anonymized (the CWA hosting
	// prefixes).
	keep    func(netip.Addr) bool
	records []Record
}

// NewCollector creates a collector. anon may be nil to disable
// anonymization (useful in unit tests); keep may be nil to anonymize
// everything.
func NewCollector(anon *cryptopan.Anonymizer, keep func(netip.Addr) bool) *Collector {
	if keep == nil {
		keep = func(netip.Addr) bool { return false }
	}
	return &Collector{anon: anon, keep: keep}
}

// Ingest stores records after applying the anonymization policy.
func (c *Collector) Ingest(recs []Record) {
	for _, r := range recs {
		if c.anon != nil {
			if !c.keep(r.Src) {
				r.Src = c.anon.Anonymize(r.Src)
			}
			if !c.keep(r.Dst) {
				r.Dst = c.anon.Anonymize(r.Dst)
			}
		}
		c.records = append(c.records, r)
	}
}

// Len reports the number of collected records.
func (c *Collector) Len() int { return len(c.records) }

// Records returns the collected records sorted under the package's total
// record order (deterministic across identical runs). The slice is owned by
// the collector until this call; callers must not Ingest afterwards while
// holding it.
func (c *Collector) Records() []Record {
	sort.SliceStable(c.records, func(i, j int) bool {
		return RecordLess(c.records[i], c.records[j])
	})
	return c.records
}
