package netflow

import (
	"net/netip"
	"sort"

	"cwatrace/internal/cryptopan"
)

// Collector accumulates exported records from every router at the vantage
// point and applies the trace-release policy of the data set: client
// addresses are prefix-preserving anonymized, server addresses (needed for
// filtering) are left intact.
//
// The collector is sharded: each shard owns a private record buffer, so a
// parallel simulation engine can ingest from many workers without any
// locking, as long as every shard is driven by at most one goroutine at a
// time. Shards are merged in shard-index order before the final sort, which
// keeps the output deterministic regardless of how work was scheduled onto
// workers.
type Collector struct {
	anon *cryptopan.Anonymizer
	// keep decides which addresses stay un-anonymized (the CWA hosting
	// prefixes).
	keep   func(netip.Addr) bool
	shards []*CollectorShard
}

// CollectorShard is one lock-free ingestion lane of a Collector. A shard
// must be driven by at most one goroutine at a time; distinct shards may be
// driven concurrently.
type CollectorShard struct {
	parent  *Collector
	records []Record
}

// NewCollector creates a collector with a single shard. anon may be nil to
// disable anonymization (useful in unit tests); keep may be nil to anonymize
// everything.
func NewCollector(anon *cryptopan.Anonymizer, keep func(netip.Addr) bool) *Collector {
	if keep == nil {
		keep = func(netip.Addr) bool { return false }
	}
	c := &Collector{anon: anon, keep: keep}
	c.Resize(1)
	return c
}

// Resize grows the collector to at least n shards. It must not be called
// concurrently with ingestion; callers size the collector once before the
// run starts. Existing shards (and their records) are preserved.
func (c *Collector) Resize(n int) {
	for len(c.shards) < n {
		c.shards = append(c.shards, &CollectorShard{parent: c})
	}
}

// NumShards reports the current shard count.
func (c *Collector) NumShards() int { return len(c.shards) }

// Shard returns the i-th ingestion lane.
func (c *Collector) Shard(i int) *CollectorShard { return c.shards[i] }

// Ingest stores records after applying the anonymization policy. Records
// land on the shard's private buffer; no locks are taken.
func (s *CollectorShard) Ingest(recs []Record) {
	c := s.parent
	for _, r := range recs {
		if c.anon != nil {
			if !c.keep(r.Src) {
				r.Src = c.anon.Anonymize(r.Src)
			}
			if !c.keep(r.Dst) {
				r.Dst = c.anon.Anonymize(r.Dst)
			}
		}
		s.records = append(s.records, r)
	}
}

// Len reports the number of records held by this shard.
func (s *CollectorShard) Len() int { return len(s.records) }

// Ingest stores records on shard 0; the single-shard compatibility path for
// serial callers.
func (c *Collector) Ingest(recs []Record) { c.shards[0].Ingest(recs) }

// Len reports the number of collected records across all shards.
func (c *Collector) Len() int {
	n := 0
	for _, s := range c.shards {
		n += len(s.records)
	}
	return n
}

// Records merges every shard (in shard-index order, so ties in the record
// order resolve deterministically) and returns the records sorted under the
// package's total record order. The returned slice is owned by the
// collector until this call; callers must not Ingest afterwards while
// holding it.
func (c *Collector) Records() []Record {
	merged := c.shards[0].records
	if len(c.shards) > 1 {
		total := c.Len()
		merged = make([]Record, 0, total)
		for _, s := range c.shards {
			merged = append(merged, s.records...)
			s.records = nil
		}
		c.shards[0].records = merged
	}
	sort.SliceStable(merged, func(i, j int) bool {
		return RecordLess(merged[i], merged[j])
	})
	return merged
}
