// Package netflow reproduces the vantage point of the paper: routers that
// observe packets, sample them, aggregate sampled packets into flow-cache
// entries, and export flow records when cache entries time out or are
// evicted. The paper's key measurement caveats — packet sampling and "the
// routers Netflow cache eviction settings ... result in only observing few
// packets for most flows" — are explicit parameters here, so the ablation
// benches can sweep them.
package netflow

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"time"
)

// Proto numbers for the records.
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// PortHTTPS is the only destination port the study keeps ("the data [is
// restricted] to encrypted HTTPS (tcp/443) IPv4 flows").
const PortHTTPS uint16 = 443

// Packet is one observed packet at a router.
type Packet struct {
	Time    time.Time
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   uint8
	Bytes   int
}

// Key is the flow five-tuple cache key.
type Key struct {
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Record is an exported flow record as the collector receives it.
type Record struct {
	Key
	Packets  uint64
	Bytes    uint64
	First    time.Time
	Last     time.Time
	Exporter string // router ID of the exporting device
}

// keyLess is a total order over flow keys, used to keep export batches
// deterministic regardless of map iteration order.
func keyLess(a, b Key) bool {
	if c := a.Src.Compare(b.Src); c != 0 {
		return c < 0
	}
	if c := a.Dst.Compare(b.Dst); c != 0 {
		return c < 0
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}

// RecordLess is a total order over records: start time, then exporter, then
// flow key. Identical simulation runs produce identical record sequences
// under this order.
func RecordLess(a, b Record) bool {
	if !a.First.Equal(b.First) {
		return a.First.Before(b.First)
	}
	if a.Exporter != b.Exporter {
		return a.Exporter < b.Exporter
	}
	return keyLess(a.Key, b.Key)
}

func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool { return RecordLess(recs[i], recs[j]) })
}

// Config parameterizes a router's flow monitoring.
type Config struct {
	// SampleRate is 1-in-N packet sampling; 1 disables sampling. The
	// paper's vantage point uses sampled Netflow.
	SampleRate int
	// ActiveTimeout chops long-lived flows into multiple records.
	ActiveTimeout time.Duration
	// InactiveTimeout expires idle entries.
	InactiveTimeout time.Duration
	// MaxEntries caps the cache; overflow evicts the longest-idle entry,
	// producing the short truncated records the paper describes.
	MaxEntries int
}

// DefaultConfig mirrors common carrier settings: 1:100 sampling, 60s/15s
// timeouts, 64k entries.
func DefaultConfig() Config {
	return Config{
		SampleRate:      100,
		ActiveTimeout:   60 * time.Second,
		InactiveTimeout: 15 * time.Second,
		MaxEntries:      65536,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SampleRate < 1 {
		return fmt.Errorf("netflow: SampleRate %d < 1", c.SampleRate)
	}
	if c.ActiveTimeout <= 0 || c.InactiveTimeout <= 0 {
		return fmt.Errorf("netflow: timeouts must be positive")
	}
	if c.InactiveTimeout > c.ActiveTimeout {
		return fmt.Errorf("netflow: inactive timeout exceeds active timeout")
	}
	if c.MaxEntries < 1 {
		return fmt.Errorf("netflow: MaxEntries %d < 1", c.MaxEntries)
	}
	return nil
}

type entry struct {
	rec Record
}

// entryPool recycles cache entries across flows: the simulator creates and
// expires millions of entries per run, and reusing them removes that
// allocation churn from the hot path. The pool is shared by all caches
// (sync.Pool is safe for concurrent use by parallel shard workers).
var entryPool = sync.Pool{New: func() any { return new(entry) }}

// batchPool recycles the small export batches Observe/Sweep/Drain return.
// Callers that drive caches in a tight loop (the simulator) hand batches
// back via RecycleBatch once ingested; callers that keep the records alive
// simply never recycle.
var batchPool = sync.Pool{New: func() any { return new([]Record) }}

func getBatch() []Record {
	return (*batchPool.Get().(*[]Record))[:0]
}

// GetBatch hands out an empty record batch from the shared pool. External
// producers (the nfv9 decoder, the ingest pipeline) use it so their
// steady-state batches recycle through the same pool the caches use; hand
// batches back with RecycleBatch when done.
func GetBatch() []Record {
	return getBatch()
}

// RecycleBatch returns an export batch obtained from Observe, Sweep or
// Drain to the internal pool. The caller must not retain the slice (or any
// aliases of it) afterwards.
func RecycleBatch(recs []Record) {
	if recs == nil {
		return
	}
	recs = recs[:0]
	batchPool.Put(&recs)
}

// Slab is the batch pool's slab mode: a record buffer that travels
// together with its backing storage. The plain GetBatch/RecycleBatch pair
// hands out bare slices, which forces RecycleBatch to re-box the slice
// header on every Put — one heap allocation per batch. A Slab keeps the
// header boxed for its whole life, so the ingest pipeline's
// datagram→decode→dispatch→recycle round trip allocates nothing in steady
// state, and the slab's capacity grows to the largest batch it ever
// carried instead of being reallocated per batch.
type Slab struct {
	// Recs is the slab's live records. Producers append with
	// Recs = append(Recs[:0], ...); consumers must not retain the slice
	// past RecycleSlab.
	Recs []Record
}

// slabPool recycles slabs across datagrams; shared by all pipeline
// readers and workers (sync.Pool is safe for concurrent use).
var slabPool = sync.Pool{New: func() any { return new(Slab) }}

// GetSlab hands out an empty slab from the shared pool.
func GetSlab() *Slab {
	s := slabPool.Get().(*Slab)
	s.Recs = s.Recs[:0]
	return s
}

// RecycleSlab returns a slab to the pool. The caller must not retain the
// slab or its Recs slice (or any aliases) afterwards. The records are not
// zeroed — a parked slab can pin the (small, long-lived) Exporter strings
// of its last batch, which is the price of keeping the recycle path a
// pointer push instead of a per-batch memclr; consumers of reused slabs
// (nfv9.Decoder.DecodeInto) overwrite every field of every slot they
// return, so stale state never leaks into decoded records.
func RecycleSlab(s *Slab) {
	if s == nil {
		return
	}
	s.Recs = s.Recs[:0]
	slabPool.Put(s)
}

// appendExport lazily takes a pooled batch on the first export of a call.
func appendExport(out []Record, r Record) []Record {
	if out == nil {
		out = getBatch()
	}
	return append(out, r)
}

// Cache is one router's flow cache. It is not safe for concurrent use; the
// simulator drives each router from its event loop.
type Cache struct {
	cfg      Config
	exporter string
	rng      *rand.Rand
	entries  map[Key]*entry

	// sampled and observed count packets for the census the ablation
	// reports.
	observed uint64
	sampled  uint64
}

// NewCache creates a flow cache for the named exporter. rng drives the
// sampling decision; passing a seeded source keeps runs reproducible.
func NewCache(exporter string, cfg Config, rng *rand.Rand) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("netflow: rng must not be nil")
	}
	return &Cache{
		cfg:      cfg,
		exporter: exporter,
		rng:      rng,
		entries:  make(map[Key]*entry),
	}, nil
}

// Observe feeds one packet through sampling into the cache. It returns any
// records exported as a side effect (active-timeout splits, evictions);
// usually nil.
func (c *Cache) Observe(p Packet) []Record {
	c.observed++
	if c.cfg.SampleRate > 1 && c.rng.Intn(c.cfg.SampleRate) != 0 {
		return nil
	}
	c.sampled++

	var out []Record
	k := Key{Src: p.Src, Dst: p.Dst, SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: p.Proto}
	e, ok := c.entries[k]
	if ok && p.Time.Sub(e.rec.First) >= c.cfg.ActiveTimeout {
		// Active timeout: export the running record and restart it.
		out = appendExport(out, e.rec)
		c.release(k, e)
		ok = false
	}
	if !ok {
		if len(c.entries) >= c.cfg.MaxEntries {
			if victim, evicted := c.evict(); evicted {
				out = appendExport(out, victim)
			}
		}
		e = entryPool.Get().(*entry)
		e.rec = Record{
			Key:      k,
			First:    p.Time,
			Exporter: c.exporter,
		}
		c.entries[k] = e
	}
	e.rec.Packets++
	e.rec.Bytes += uint64(p.Bytes)
	e.rec.Last = p.Time
	return out
}

// evict removes and returns the longest-idle entry. Called only when the
// cache is full, it produces the premature, packet-poor records the paper
// attributes to "cache eviction settings". Idle-time ties break on the flow
// key so eviction is deterministic.
func (c *Cache) evict() (Record, bool) {
	var victimKey Key
	var victim *entry
	for k, e := range c.entries {
		if victim == nil || e.rec.Last.Before(victim.rec.Last) ||
			(e.rec.Last.Equal(victim.rec.Last) && keyLess(k, victimKey)) {
			victimKey, victim = k, e
		}
	}
	if victim == nil {
		return Record{}, false
	}
	rec := victim.rec
	c.release(victimKey, victim)
	return rec, true
}

// release removes an entry from the cache and returns it to the pool. The
// caller must have copied the record out first.
func (c *Cache) release(k Key, e *entry) {
	delete(c.entries, k)
	e.rec = Record{}
	entryPool.Put(e)
}

// Sweep expires entries idle past the inactive timeout as of now and
// returns their records in deterministic order. The simulator calls it
// periodically.
func (c *Cache) Sweep(now time.Time) []Record {
	var out []Record
	for k, e := range c.entries {
		if now.Sub(e.rec.Last) >= c.cfg.InactiveTimeout {
			out = appendExport(out, e.rec)
			c.release(k, e)
		}
	}
	sortRecords(out)
	return out
}

// Drain exports everything still cached in deterministic order; used at the
// end of a capture.
func (c *Cache) Drain() []Record {
	var out []Record
	for k, e := range c.entries {
		out = appendExport(out, e.rec)
		c.release(k, e)
	}
	sortRecords(out)
	return out
}

// Len reports the number of live cache entries.
func (c *Cache) Len() int { return len(c.entries) }

// Stats reports the packets seen and the packets that passed sampling.
func (c *Cache) Stats() (observed, sampled uint64) { return c.observed, c.sampled }
