package netflow

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"
)

var (
	t0     = time.Date(2020, time.June, 16, 8, 0, 0, 0, time.UTC)
	client = netip.MustParseAddr("20.0.0.1")
	server = netip.MustParseAddr("198.51.100.10")
)

func pkt(at time.Time, bytes int) Packet {
	return Packet{
		Time: at, Src: server, Dst: client,
		SrcPort: 443, DstPort: 52011, Proto: ProtoTCP, Bytes: bytes,
	}
}

func unsampled() Config {
	cfg := DefaultConfig()
	cfg.SampleRate = 1
	return cfg
}

func newCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := NewCache("r1", cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero sample rate", func(c *Config) { c.SampleRate = 0 }},
		{"zero active", func(c *Config) { c.ActiveTimeout = 0 }},
		{"zero inactive", func(c *Config) { c.InactiveTimeout = 0 }},
		{"inactive > active", func(c *Config) { c.InactiveTimeout = c.ActiveTimeout * 2 }},
		{"zero entries", func(c *Config) { c.MaxEntries = 0 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewCacheRejectsNilRNG(t *testing.T) {
	if _, err := NewCache("r", DefaultConfig(), nil); err == nil {
		t.Fatal("nil rng must fail")
	}
}

func TestAggregation(t *testing.T) {
	c := newCache(t, unsampled())
	for i := 0; i < 5; i++ {
		if out := c.Observe(pkt(t0.Add(time.Duration(i)*time.Second), 1000)); out != nil {
			t.Fatalf("unexpected export: %+v", out)
		}
	}
	recs := c.Drain()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	r := recs[0]
	if r.Packets != 5 || r.Bytes != 5000 {
		t.Fatalf("aggregation wrong: %+v", r)
	}
	if !r.First.Equal(t0) || !r.Last.Equal(t0.Add(4*time.Second)) {
		t.Fatalf("timestamps wrong: %+v", r)
	}
	if r.Exporter != "r1" {
		t.Fatalf("exporter = %q", r.Exporter)
	}
}

func TestDistinctFlowsDistinctEntries(t *testing.T) {
	c := newCache(t, unsampled())
	p1 := pkt(t0, 100)
	p2 := pkt(t0, 100)
	p2.DstPort = 52012
	c.Observe(p1)
	c.Observe(p2)
	if c.Len() != 2 {
		t.Fatalf("cache entries = %d, want 2", c.Len())
	}
}

func TestActiveTimeoutSplitsLongFlows(t *testing.T) {
	cfg := unsampled()
	cfg.ActiveTimeout = 10 * time.Second
	cfg.InactiveTimeout = 5 * time.Second
	c := newCache(t, cfg)
	c.Observe(pkt(t0, 100))
	c.Observe(pkt(t0.Add(5*time.Second), 100))
	out := c.Observe(pkt(t0.Add(11*time.Second), 100))
	if len(out) != 1 {
		t.Fatalf("active timeout should export 1 record, got %d", len(out))
	}
	if out[0].Packets != 2 {
		t.Fatalf("first chunk packets = %d, want 2", out[0].Packets)
	}
	rest := c.Drain()
	if len(rest) != 1 || rest[0].Packets != 1 {
		t.Fatalf("second chunk wrong: %+v", rest)
	}
}

func TestInactiveTimeoutSweep(t *testing.T) {
	cfg := unsampled()
	c := newCache(t, cfg)
	c.Observe(pkt(t0, 500))
	if out := c.Sweep(t0.Add(cfg.InactiveTimeout - time.Second)); len(out) != 0 {
		t.Fatalf("early sweep exported %d records", len(out))
	}
	out := c.Sweep(t0.Add(cfg.InactiveTimeout))
	if len(out) != 1 {
		t.Fatalf("sweep after timeout exported %d records, want 1", len(out))
	}
	if c.Len() != 0 {
		t.Fatal("entry must be gone after sweep")
	}
}

func TestEvictionWhenFull(t *testing.T) {
	cfg := unsampled()
	cfg.MaxEntries = 3
	c := newCache(t, cfg)
	for i := 0; i < 3; i++ {
		p := pkt(t0.Add(time.Duration(i)*time.Second), 100)
		p.DstPort = uint16(50000 + i)
		c.Observe(p)
	}
	// The 4th flow must evict the longest-idle entry (port 50000).
	p := pkt(t0.Add(3*time.Second), 100)
	p.DstPort = 50099
	out := c.Observe(p)
	if len(out) != 1 {
		t.Fatalf("eviction should export 1 record, got %d", len(out))
	}
	if out[0].DstPort != 50000 {
		t.Fatalf("evicted wrong entry: port %d", out[0].DstPort)
	}
	if c.Len() != 3 {
		t.Fatalf("cache size = %d, want 3", c.Len())
	}
}

func TestSamplingReducesPackets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SampleRate = 10
	c := newCache(t, cfg)
	const n = 10000
	for i := 0; i < n; i++ {
		p := pkt(t0.Add(time.Duration(i)*time.Millisecond), 100)
		c.Observe(p)
	}
	observed, sampled := c.Stats()
	if observed != n {
		t.Fatalf("observed = %d", observed)
	}
	// Expect ~1000 sampled; allow generous tolerance.
	if sampled < n/20 || sampled > n/5 {
		t.Fatalf("sampled = %d, want around %d", sampled, n/10)
	}
	recs := c.Drain()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Packets != sampled {
		t.Fatalf("record packets %d != sampled %d", recs[0].Packets, sampled)
	}
}

func TestSamplingRate1KeepsEverything(t *testing.T) {
	c := newCache(t, unsampled())
	for i := 0; i < 100; i++ {
		c.Observe(pkt(t0.Add(time.Duration(i)*time.Millisecond), 10))
	}
	observed, sampled := c.Stats()
	if observed != sampled {
		t.Fatalf("unsampled cache dropped packets: %d vs %d", observed, sampled)
	}
}

// TestAccountingInvariant: for an unsampled cache, the total packets and
// bytes across all exported records must equal what was observed,
// regardless of timeouts and evictions.
func TestAccountingInvariant(t *testing.T) {
	cfg := unsampled()
	cfg.MaxEntries = 8
	cfg.ActiveTimeout = 20 * time.Second
	cfg.InactiveTimeout = 10 * time.Second
	c := newCache(t, cfg)
	rng := rand.New(rand.NewSource(99))

	var wantPkts, wantBytes uint64
	var got []Record
	for i := 0; i < 5000; i++ {
		p := pkt(t0.Add(time.Duration(i)*200*time.Millisecond), 40+rng.Intn(1400))
		p.DstPort = uint16(50000 + rng.Intn(30))
		wantPkts++
		wantBytes += uint64(p.Bytes)
		got = append(got, c.Observe(p)...)
		if i%100 == 0 {
			got = append(got, c.Sweep(p.Time)...)
		}
	}
	got = append(got, c.Drain()...)

	var gotPkts, gotBytes uint64
	for _, r := range got {
		gotPkts += r.Packets
		gotBytes += r.Bytes
	}
	if gotPkts != wantPkts || gotBytes != wantBytes {
		t.Fatalf("accounting broken: got %d pkts/%d bytes, want %d/%d",
			gotPkts, gotBytes, wantPkts, wantBytes)
	}
}

func TestDrainEmptiesCache(t *testing.T) {
	c := newCache(t, unsampled())
	c.Observe(pkt(t0, 1))
	if got := c.Drain(); len(got) != 1 {
		t.Fatalf("drain = %d records", len(got))
	}
	if c.Len() != 0 {
		t.Fatal("cache must be empty after drain")
	}
	if got := c.Drain(); len(got) != 0 {
		t.Fatal("second drain must be empty")
	}
}
