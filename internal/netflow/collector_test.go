package netflow

import (
	"net/netip"
	"testing"
	"time"

	"cwatrace/internal/cryptopan"
	"cwatrace/internal/netsim"
)

func testAnonymizer(t *testing.T) *cryptopan.Anonymizer {
	t.Helper()
	key := make([]byte, cryptopan.KeySize)
	for i := range key {
		key[i] = byte(i)
	}
	a, err := cryptopan.New(key)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func rec(src, dst string, at time.Time) Record {
	return Record{
		Key: Key{
			Src:     netip.MustParseAddr(src),
			Dst:     netip.MustParseAddr(dst),
			SrcPort: 443, DstPort: 51000, Proto: ProtoTCP,
		},
		Packets: 1, Bytes: 100, First: at, Last: at, Exporter: "r1",
	}
}

func TestCollectorAnonymizesClientsOnly(t *testing.T) {
	c := NewCollector(testAnonymizer(t), netsim.IsCWAServer)
	server := "198.51.100.10"
	client := "20.0.1.5"
	c.Ingest([]Record{rec(server, client, t0)})
	got := c.Records()
	if len(got) != 1 {
		t.Fatalf("records = %d", len(got))
	}
	if got[0].Src.String() != server {
		t.Fatalf("server address must stay intact, got %s", got[0].Src)
	}
	if got[0].Dst.String() == client {
		t.Fatal("client address must be anonymized")
	}
}

func TestCollectorPrefixPreservationSurvives(t *testing.T) {
	c := NewCollector(testAnonymizer(t), netsim.IsCWAServer)
	c.Ingest([]Record{
		rec("198.51.100.10", "20.0.1.5", t0),
		rec("198.51.100.10", "20.0.1.77", t0.Add(time.Second)),
		rec("198.51.100.10", "21.9.9.9", t0.Add(2*time.Second)),
	})
	got := c.Records()
	p := netip.PrefixFrom(got[0].Dst, 24).Masked()
	if !p.Contains(got[1].Dst) {
		t.Fatal("same-/24 clients must stay in one anonymized /24")
	}
	if p.Contains(got[2].Dst) {
		t.Fatal("different-prefix client must map elsewhere")
	}
}

func TestCollectorNilAnonymizer(t *testing.T) {
	c := NewCollector(nil, nil)
	c.Ingest([]Record{rec("198.51.100.10", "20.0.1.5", t0)})
	if got := c.Records(); got[0].Dst.String() != "20.0.1.5" {
		t.Fatal("nil anonymizer must pass addresses through")
	}
}

func TestCollectorNilKeepAnonymizesEverything(t *testing.T) {
	c := NewCollector(testAnonymizer(t), nil)
	c.Ingest([]Record{rec("198.51.100.10", "20.0.1.5", t0)})
	got := c.Records()
	if got[0].Src.String() == "198.51.100.10" {
		t.Fatal("nil keep must anonymize server addresses too")
	}
}

func TestCollectorSortsByTime(t *testing.T) {
	c := NewCollector(nil, nil)
	c.Ingest([]Record{
		rec("198.51.100.10", "20.0.1.5", t0.Add(5*time.Second)),
		rec("198.51.100.10", "20.0.1.6", t0),
		rec("198.51.100.10", "20.0.1.7", t0.Add(2*time.Second)),
	})
	got := c.Records()
	for i := 1; i < len(got); i++ {
		if got[i].First.Before(got[i-1].First) {
			t.Fatal("records not time ordered")
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
}
