// Package ingest is the live collector subsystem: it receives NFv9 export
// datagrams over UDP, decodes them with per-exporter-source template and
// sequence state, and pushes the records through a bounded, batched,
// multi-worker pipeline into internal/streaming shards.
//
// The shape mirrors the paper's vantage point — border routers exporting
// sampled Netflow to a collector that analyzes in near-real time — and the
// ROADMAP's scaling posture: per-socket reader goroutines own the decoder
// state (no locks on the datagram path beyond one uncontended mutex),
// records fan out round-robin over bounded per-shard channels, and under
// backpressure the dispatcher drops batches and counts them instead of
// blocking the socket, exactly like a real collector protecting its
// receive buffer. Aggregation is commutative (see internal/streaming), so
// snapshots are identical at any worker count.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cwatrace/internal/netflow"
	"cwatrace/internal/nfv9"
	"cwatrace/internal/obs"
	"cwatrace/internal/streaming"
)

// Sink receives every batch a worker processed — the hook the durable
// store (internal/store) plugs into. Append must not retain the batch;
// it is recycled once the worker is done with it. Append runs on worker
// goroutines, so implementations must be safe for concurrent use.
type Sink interface {
	Append(batch []netflow.Record) error
}

// Flusher is the optional periodic-flush side of a Sink: when the sink
// implements it and FlushInterval is set, the pipeline calls Flush on
// that cadence (and once more after the final drain). The store uses it
// as its interval fsync policy.
type Flusher interface {
	Flush() error
}

// Config parameterizes a Pipeline.
type Config struct {
	// Listen is the set of UDP listen addresses; each gets its own socket
	// and reader goroutine ("127.0.0.1:0" picks an ephemeral test port).
	// Empty means no sockets: records enter only via inject (benchmarks).
	Listen []string
	// Workers is the number of analytics shards and worker goroutines
	// (0 = runtime.NumCPU(), 1 = serial).
	Workers int
	// ShardBuffer is the per-shard channel capacity in batches (default
	// 256). Together with the ≤MTU batch size it bounds pipeline memory.
	ShardBuffer int
	// ReadBuffer sizes the socket receive buffer (default 8 MiB) so short
	// export bursts survive scheduling hiccups.
	ReadBuffer int
	// Analytics configures the streaming shards.
	Analytics streaming.Config
	// Sink, when set, receives every processed batch (before the lane's
	// own analytics). Errors are counted as SinkErrors, never fatal: a
	// full disk degrades durability, it must not stop the collector.
	Sink Sink
	// SinkOnly skips the per-lane analytics shards entirely: the sink
	// owns all aggregate state. The persistent collector runs this way —
	// keeping a second, unbounded in-memory copy of state the store
	// already maintains would defeat the point of checkpointing.
	SinkOnly bool
	// ShardFilter, when set, drops every record this node does not own
	// under a cluster partition (internal/cluster.Assignment.Filter)
	// before it reaches the sink or the analytics. Discards are counted
	// as ShardFiltered — they are part of the cluster contract, not a
	// loss. Nil keeps everything (the unsharded default).
	ShardFilter func(r *netflow.Record) bool
	// FlushInterval is the cadence of the periodic flush hook (0
	// disables). Only meaningful when Sink implements Flusher.
	FlushInterval time.Duration
	// Logf, when set, receives operational log lines (log.Printf
	// signature): effective socket buffer sizes, clamping warnings. Nil
	// disables logging.
	Logf func(format string, args ...any)
	// Metrics, when set, registers the pipeline's telemetry on the
	// registry (see metrics.go for the catalogue). Nil (obs.Disabled)
	// runs uninstrumented: the hot paths then pay one nil check per
	// event and nothing else — the contract BENCH_obs.json audits.
	Metrics *obs.Registry
	// Tracer, when set, records background traces for the coarse
	// pipeline operations: one per sink flush, one for the Close drain.
	// Nothing per-record or per-batch — the hot path stays span-free,
	// which is how the BENCH_obs.json overhead gate holds with tracing
	// enabled. Nil disables.
	Tracer *obs.Tracer
	// Events, when set, receives drop_storm flight-recorder events: one
	// at backpressure onset, then rate-limited while the storm lasts
	// (the drop branch is the hot path under overload, so it must not
	// record per drop). Nil disables.
	Events *obs.EventRing

	// workerDelay slows every worker batch; the backpressure tests use it
	// to simulate an overloaded consumer.
	workerDelay time.Duration
}

// logf forwards to cfg.Logf when configured.
func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// maxDatagramLen bounds one UDP datagram (65535 payload bytes); receive
// buffers are sized to it so no export packet is ever truncated.
const maxDatagramLen = 65536

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.ShardBuffer <= 0 {
		c.ShardBuffer = 256
	}
	if c.ReadBuffer <= 0 {
		c.ReadBuffer = 8 << 20
	}
	return c
}

// Stats is a point-in-time view of the pipeline counters.
type Stats struct {
	// Packets and Records count decoded datagrams and their records;
	// DecodeErrors counts datagrams the decoder rejected.
	Packets      uint64 `json:"packets"`
	Records      uint64 `json:"records"`
	DecodeErrors uint64 `json:"decode_errors"`
	// Processed counts records ingested into analytics shards;
	// DroppedRecords/DroppedBatches count backpressure losses between the
	// socket and the shards. Records == Processed + DroppedRecords +
	// records still queued.
	Processed      uint64 `json:"processed"`
	DroppedRecords uint64 `json:"dropped_records"`
	DroppedBatches uint64 `json:"dropped_batches"`
	// ShardFiltered counts processed records discarded by the cluster
	// shard filter (records another node owns); they are included in
	// Processed, so the drain invariant above is unchanged.
	ShardFiltered uint64 `json:"shard_filtered,omitempty"`
	// SocketErrors counts transient receive errors the readers retried.
	SocketErrors uint64 `json:"socket_errors"`
	// SinkErrors counts failed sink appends and flushes (batches that
	// reached the analytics but may not have reached durable storage).
	SinkErrors uint64 `json:"sink_errors"`
	// Sources is the number of distinct exporter sources seen. SeqGaps,
	// SeqLost and SeqReordered aggregate the per-source sequence audits
	// (RFC 3954 export loss detection).
	Sources      int    `json:"sources"`
	SeqGaps      int    `json:"seq_gaps"`
	SeqLost      uint64 `json:"seq_lost"`
	SeqReordered int    `json:"seq_reordered"`
	// WatermarkUnixNano is the freshness watermark: the newest record
	// start timestamp (UnixNano) any worker has consumed, maxed over the
	// shard lanes. Zero until the first batch lands. Wall clock minus
	// the watermark is how far behind the wire the served analytics are;
	// the cluster router takes the fleet-wide min of its shards' values.
	WatermarkUnixNano int64 `json:"watermark_unix_nano,omitempty"`
}

// shardLane is one bounded channel plus the analytics shard draining it.
// Lanes carry slabs, not bare slices: the slab travels from decode through
// the worker and back into the shared pool with its storage attached, so
// the steady-state round trip allocates nothing.
type shardLane struct {
	ch chan *netflow.Slab

	// mu guards an: the worker ingests under it, Snapshot reads under it.
	mu sync.Mutex
	an *streaming.Analytics

	processed      atomic.Uint64
	droppedRecords atomic.Uint64
	droppedBatches atomic.Uint64
	shardFiltered  atomic.Uint64
	sinkErrors     atomic.Uint64
	// watermark is the newest record start timestamp (UnixNano) this
	// lane's worker has consumed — written by the single worker
	// goroutine, read by Stats and the metrics render.
	watermark atomic.Int64

	tick uint64 // batch-timing sample counter; worker goroutine only
}

// sourceKey identifies one exporter source: the sending address plus the
// observation-domain SourceID, the scope RFC 3954 gives template tables
// and sequence numbers.
type sourceKey struct {
	from   string
	domain uint32
}

// reader owns one socket and the decoder state of every source that sent
// to it. mu guards sources against Stats; the reader goroutine is the only
// writer.
type reader struct {
	pc net.PacketConn

	mu      sync.Mutex
	sources map[sourceKey]*nfv9.Decoder
	// lastKey/lastDec memoize the most recent source lookup (guarded by
	// mu like the map): exporters send packet trains, so consecutive
	// datagrams overwhelmingly repeat the source and skip the map probe.
	lastKey sourceKey
	lastDec *nfv9.Decoder

	packets      atomic.Uint64
	records      atomic.Uint64
	decodeErrors atomic.Uint64
	socketErrors atomic.Uint64

	rr   int    // round-robin dispatch cursor; reader goroutine only
	tick uint64 // decode-timing sample counter; reader goroutine only
}

// Pipeline is the running collector: sockets → decoders → shard channels →
// workers → streaming shards.
type Pipeline struct {
	cfg     Config
	readers []*reader
	lanes   []*shardLane
	m       pipelineMetrics

	readerWG sync.WaitGroup
	workerWG sync.WaitGroup

	flushStop   chan struct{}
	flushWG     sync.WaitGroup
	flushErrors atomic.Uint64

	// dropStormAt is the unix-nano stamp of the last drop_storm event;
	// the CAS in noteDropStorm rate-limits the storm events to one per
	// 10s however many lanes are dropping.
	dropStormAt atomic.Int64

	closeOnce sync.Once
	closed    atomic.Bool
	closeErr  error
}

// New starts a pipeline: it binds every listen address and launches the
// reader and worker goroutines. Callers must Close it.
func New(cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	if cfg.SinkOnly && cfg.Sink == nil {
		// Workers would skip the sink AND the per-lane analytics: every
		// batch counted as processed, then discarded with no state kept
		// anywhere.
		return nil, errors.New("ingest: SinkOnly requires a Sink")
	}
	p := &Pipeline{cfg: cfg}
	p.m.register(cfg.Metrics)

	for i := 0; i < cfg.Workers; i++ {
		lane := &shardLane{
			ch: make(chan *netflow.Slab, cfg.ShardBuffer),
			an: streaming.New(cfg.Analytics),
		}
		p.lanes = append(p.lanes, lane)
		p.workerWG.Add(1)
		go p.work(lane)
	}

	if fl, ok := cfg.Sink.(Flusher); ok && cfg.FlushInterval > 0 {
		p.flushStop = make(chan struct{})
		p.flushWG.Add(1)
		go p.flushLoop(fl)
	}

	// Sockets bind after the lanes so the registry-backed gauges (which
	// walk p.lanes) are complete before the first datagram can arrive.
	registerPipelineFuncs(cfg.Metrics, p)
	for _, addr := range cfg.Listen {
		pc, err := net.ListenPacket("udp", addr)
		if err != nil {
			p.shutdown()
			return nil, fmt.Errorf("ingest: listening on %s: %w", addr, err)
		}
		// Size the receive buffer and report what the kernel actually
		// granted — a silently clamped buffer only shows up later as
		// mysterious burst drops. Clamping is still non-fatal: it raises
		// the drop counters, never corrupts the stream.
		setReadBuffer(pc, cfg.ReadBuffer, p.cfg.logf)
		r := &reader{pc: pc, sources: make(map[sourceKey]*nfv9.Decoder)}
		p.readers = append(p.readers, r)
		p.readerWG.Add(1)
		go p.read(r)
	}
	return p, nil
}

// Addrs returns the bound listen addresses, in Listen order.
func (p *Pipeline) Addrs() []string {
	var out []string
	for _, r := range p.readers {
		if r.pc != nil {
			out = append(out, r.pc.LocalAddr().String())
		}
	}
	return out
}

// newLoopReader registers a reader with no socket. Benchmarks and the
// backpressure tests feed it through handleDatagram, measuring the decode
// and dispatch path without UDP in the way. Call before any traffic flows.
func (p *Pipeline) newLoopReader() *reader {
	r := &reader{sources: make(map[sourceKey]*nfv9.Decoder)}
	p.readers = append(p.readers, r)
	return r
}

// read is one socket's receive loop; the actual loop body is
// platform-selected (recvmmsg batching on linux, the portable
// one-datagram ReadFrom loop elsewhere — see sockread_linux.go and
// sockread_other.go). Only a closed socket ends it: transient errors
// (ICMP-induced ECONNREFUSED, ENOBUFS, ...) are counted and retried, so a
// long-running collector never silently loses a socket.
func (p *Pipeline) read(r *reader) {
	defer p.readerWG.Done()
	p.readLoop(r)
}

// readPortable is the fallback receive loop: one datagram per syscall.
// The linux batched reader also falls back to it for non-UDP sockets.
func (p *Pipeline) readPortable(r *reader) {
	buf := make([]byte, maxDatagramLen)
	for {
		n, from, err := r.pc.ReadFrom(buf)
		if err != nil {
			if p.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			r.socketErrors.Add(1)
			// Breathe before retrying so a persistently failing socket
			// cannot spin the CPU.
			time.Sleep(time.Millisecond)
			continue
		}
		p.handleDatagram(r, from.String(), buf[:n])
	}
}

// handleDatagram decodes one export packet and dispatches its records.
// The benchmark calls it directly to measure the pipeline without UDP.
// Decoder state is scoped per (sender address, observation-domain
// SourceID) as RFC 3954 requires: one router exporting several domains
// over one socket gets one template table and sequence audit per domain.
func (p *Pipeline) handleDatagram(r *reader, from string, data []byte) {
	// Sampled stage timing: every 64th datagram pays two clock reads and
	// one observation into the shared histogram; the rest pay one
	// increment and a nil check. The thin rate matters under parallel
	// readers — the histogram's sum is a shared CAS cache line, and
	// sampling it any denser shows up in the benjson -obs overhead gate.
	timed := p.m.decodeSeconds != nil && r.tick&0x3f == 0
	r.tick++
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	sourceID, ok := nfv9.PeekSourceID(data)
	if !ok {
		r.decodeErrors.Add(1)
		return
	}
	key := sourceKey{from: from, domain: sourceID}
	slab := netflow.GetSlab()
	r.mu.Lock()
	var dec *nfv9.Decoder
	known := true
	if r.lastDec != nil && key == r.lastKey {
		dec = r.lastDec
	} else if dec, known = r.sources[key]; !known {
		dec = nfv9.NewDecoder(from)
	}
	recs, _, err := dec.DecodeInto(data, slab.Recs)
	slab.Recs = recs
	if err == nil && !known {
		// Per-source state is only retained once a packet from the
		// source actually decoded, so spoofed or garbage datagrams
		// cannot grow the map without bound.
		r.sources[key] = dec
	}
	if err == nil {
		r.lastKey, r.lastDec = key, dec
	}
	r.mu.Unlock()
	if err != nil {
		r.decodeErrors.Add(1)
		netflow.RecycleSlab(slab)
		return
	}
	r.packets.Add(1)
	if timed {
		p.m.decodeSeconds.ObserveSince(t0)
	}
	if len(slab.Recs) == 0 {
		netflow.RecycleSlab(slab)
		return
	}
	r.records.Add(uint64(len(slab.Recs)))

	lane := p.lanes[r.rr%len(p.lanes)]
	r.rr++
	select {
	case lane.ch <- slab:
	default:
		// Backpressure: never block the socket. Drop the batch, count
		// it, recycle the storage. The loss-size histogram is sampled
		// 1-in-64 off the drop counter itself: under sustained
		// overload drops ARE the hot path, and an unsampled Observe
		// here is a measurable throughput tax exactly when the
		// collector can least afford one.
		n := lane.droppedBatches.Add(1)
		lane.droppedRecords.Add(uint64(len(slab.Recs)))
		if p.m.droppedBatchRecords != nil && n&0x3f == 1 {
			p.m.droppedBatchRecords.Observe(float64(len(slab.Recs)))
		}
		// The flight-recorder event rides the same 1-in-64 sample gate
		// (plus its own 10s rate limit inside), so the storm's onset is
		// recorded without taxing every drop.
		if p.cfg.Events != nil && n&0x3f == 1 {
			p.noteDropStorm()
		}
		netflow.RecycleSlab(slab)
	}
}

// noteDropStorm records the drop_storm flight-recorder event: the
// first drop of a storm fires immediately (dropStormAt starts 0), then
// at most one event per 10s while drops continue. The CAS hands the
// record to exactly one caller per window.
func (p *Pipeline) noteDropStorm() {
	now := time.Now().UnixNano()
	last := p.dropStormAt.Load()
	if now-last < int64(10*time.Second) {
		return
	}
	if !p.dropStormAt.CompareAndSwap(last, now) {
		return
	}
	var batches, records uint64
	for _, l := range p.lanes {
		batches += l.droppedBatches.Load()
		records += l.droppedRecords.Load()
	}
	p.cfg.Events.Record("drop_storm", "backpressure is dropping batches",
		obs.Int("dropped_batches", int64(batches)),
		obs.Int("dropped_records", int64(records)))
}

// work drains one lane into the sink and its analytics shard.
func (p *Pipeline) work(lane *shardLane) {
	defer p.workerWG.Done()
	for slab := range lane.ch {
		batch := slab.Recs
		if p.cfg.workerDelay > 0 {
			time.Sleep(p.cfg.workerDelay)
		}
		timed := p.m.batchSeconds != nil && lane.tick&0x3f == 0
		lane.tick++
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		// Freshness watermark: the newest record start time in the batch,
		// taken before the shard filter — staleness is measured against
		// what arrived off the wire, whoever owns it. One branch per
		// record over memory the worker is about to walk anyway, and the
		// lane has a single worker, so a plain load/store suffices.
		var wm int64
		for i := range batch {
			if n := batch[i].First.UnixNano(); n > wm {
				wm = n
			}
		}
		if wm > lane.watermark.Load() {
			lane.watermark.Store(wm)
		}
		received := len(batch)
		if p.cfg.ShardFilter != nil {
			// Compact in place: kept trails the read index, so this never
			// clobbers an unread record, and the slab keeps its storage.
			kept := batch[:0]
			for i := range batch {
				if p.cfg.ShardFilter(&batch[i]) {
					kept = append(kept, batch[i])
				}
			}
			lane.shardFiltered.Add(uint64(received - len(kept)))
			batch = kept
		}
		if p.cfg.Sink != nil && len(batch) > 0 {
			// Durability first: anything the analytics (or the sink's own
			// state) count is already written through. Errors degrade
			// durability, never availability.
			if err := p.cfg.Sink.Append(batch); err != nil {
				lane.sinkErrors.Add(1)
			}
		}
		if !p.cfg.SinkOnly {
			lane.mu.Lock()
			lane.an.Ingest(batch)
			lane.mu.Unlock()
		}
		// Processed counts everything the worker consumed, shard-filtered
		// records included, so Drained's invariant survives sharding.
		lane.processed.Add(uint64(received))
		netflow.RecycleSlab(slab)
		if timed {
			p.m.batchSeconds.ObserveSince(t0)
		}
	}
}

// flushLoop is the periodic flush hook: it drives the sink's Flush on
// the configured cadence until shutdown, then once more after the final
// drain so everything processed is flushed before Close returns.
func (p *Pipeline) flushLoop(fl Flusher) {
	defer p.flushWG.Done()
	t := time.NewTicker(p.cfg.FlushInterval)
	defer t.Stop()
	// Each flush is its own background trace (tail-sampled like any
	// other: a slow or failing fsync cadence surfaces in the ring).
	flush := func(final bool) {
		_, sp := p.cfg.Tracer.StartTrace(context.Background(), "ingest.sink_flush", 0)
		sp.Set(obs.Bool("final", final))
		if err := fl.Flush(); err != nil {
			p.flushErrors.Add(1)
			sp.Fail(err)
		}
		sp.End()
	}
	for {
		select {
		case <-t.C:
			flush(false)
		case <-p.flushStop:
			flush(true)
			return
		}
	}
}

// RegisterMetrics registers the pipeline's telemetry on reg after
// construction — the route for a pipeline whose state is frozen (the
// drained demo pipeline collectord -demo -serve keeps exposing). A live
// pipeline must use Config.Metrics instead: this path installs the
// stage-timing histograms without synchronizing with running workers.
func (p *Pipeline) RegisterMetrics(reg *obs.Registry) {
	p.m.register(reg)
	registerPipelineFuncs(reg, p)
}

// Snapshot merges every shard into one analytics snapshot, holding one
// lane lock at a time so ingestion keeps flowing on the other lanes while
// a lane is being merged. On a live pipeline the result is a slightly
// time-skewed (but internally consistent) view; after Close it is exact.
func (p *Pipeline) Snapshot() *streaming.Snapshot {
	m := streaming.New(p.cfg.Analytics)
	for _, lane := range p.lanes {
		lane.mu.Lock()
		m.Merge(lane.an)
		lane.mu.Unlock()
	}
	return m.Snapshot()
}

// Stats sums the live counters.
func (p *Pipeline) Stats() Stats {
	var s Stats
	for _, r := range p.readers {
		s.Packets += r.packets.Load()
		s.Records += r.records.Load()
		s.DecodeErrors += r.decodeErrors.Load()
		s.SocketErrors += r.socketErrors.Load()
		r.mu.Lock()
		s.Sources += len(r.sources)
		for _, dec := range r.sources {
			gaps, lost, reordered := dec.SequenceStats()
			s.SeqGaps += gaps
			s.SeqLost += lost
			s.SeqReordered += reordered
		}
		r.mu.Unlock()
	}
	for _, lane := range p.lanes {
		s.Processed += lane.processed.Load()
		s.DroppedRecords += lane.droppedRecords.Load()
		s.DroppedBatches += lane.droppedBatches.Load()
		s.ShardFiltered += lane.shardFiltered.Load()
		s.SinkErrors += lane.sinkErrors.Load()
		if wm := lane.watermark.Load(); wm > s.WatermarkUnixNano {
			s.WatermarkUnixNano = wm
		}
	}
	s.SinkErrors += p.flushErrors.Load()
	return s
}

// Drained reports whether every record that entered the pipeline has been
// processed or counted as dropped — i.e. the shard channels are empty.
func (p *Pipeline) Drained() bool {
	s := p.Stats()
	return s.Records == s.Processed+s.DroppedRecords
}

// Close performs a graceful drain: it stops the sockets, lets the workers
// finish every queued batch, and only then returns. Snapshot and Stats
// remain valid (and final) afterwards.
func (p *Pipeline) Close() error {
	p.closeOnce.Do(p.shutdown)
	return p.closeErr
}

func (p *Pipeline) shutdown() {
	// The drain is one background trace: how long the queued work took
	// to finish is exactly what a slow SIGTERM postmortem asks.
	_, sp := p.cfg.Tracer.StartTrace(context.Background(), "ingest.drain", 0)
	defer func() {
		s := p.Stats()
		sp.Set(obs.Int("processed", int64(s.Processed)),
			obs.Int("dropped_records", int64(s.DroppedRecords)))
		sp.Fail(p.closeErr)
		sp.End()
	}()
	p.closed.Store(true)
	for _, r := range p.readers {
		if r.pc == nil {
			continue
		}
		if err := r.pc.Close(); err != nil && p.closeErr == nil {
			p.closeErr = err
		}
	}
	p.readerWG.Wait()
	for _, lane := range p.lanes {
		close(lane.ch)
	}
	p.workerWG.Wait()
	if p.flushStop != nil {
		// Stop the flush hook only after the workers drained, so its
		// final Flush covers every processed batch.
		close(p.flushStop)
		p.flushWG.Wait()
	}
}
