package ingest

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"cwatrace/internal/netflow"
	"cwatrace/internal/nfv9"
)

// encodePackets renders n export packets of recordsPer records each, all
// from one synthetic source, with valid templates and sequence numbers.
func encodePackets(t testing.TB, n, recordsPer int) [][]byte {
	t.Helper()
	enc := nfv9.NewEncoder(1)
	exportTime := time.Date(2020, time.June, 16, 9, 0, 0, 0, time.UTC)
	out := make([][]byte, n)
	for i := range out {
		recs := make([]netflow.Record, recordsPer)
		for j := range recs {
			recs[j] = testRecord(i*recordsPer + j)
		}
		pkt, err := enc.Encode(recs, exportTime)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		out[i] = pkt
	}
	return out
}

// testRecord fabricates a plausible downstream HTTPS record.
func testRecord(i int) netflow.Record {
	first := time.Date(2020, time.June, 16, 9, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Millisecond)
	return netflow.Record{
		Key: netflow.Key{
			Src:     netip.AddrFrom4([4]byte{198, 51, 100, 10}),
			Dst:     netip.AddrFrom4([4]byte{100, byte(i >> 16), byte(i >> 8), byte(i)}),
			SrcPort: 443,
			DstPort: uint16(50000 + i%10000),
			Proto:   netflow.ProtoTCP,
		},
		Packets:  3,
		Bytes:    4096,
		First:    first,
		Last:     first.Add(time.Second),
		Exporter: "ISP/XX-000",
	}
}

// TestBackpressureBoundedAndAccounted overloads a tiny pipeline with slow
// consumers and asserts the two properties the ISSUE demands: queued
// memory stays bounded by the shard buffers (the dispatcher drops instead
// of queueing), and every record is accounted for as processed or dropped
// once the pipeline drains. Runs under -race via `make race`.
func TestBackpressureBoundedAndAccounted(t *testing.T) {
	const (
		workers    = 2
		shardBuf   = 2
		packets    = 600
		recsPerPkt = 10
	)
	p, err := New(Config{
		Workers:     workers,
		ShardBuffer: shardBuf,
		workerDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := p.newLoopReader()

	// Queued records can never exceed the channels plus one in-flight
	// batch per worker.
	bound := uint64(workers * (shardBuf + 1) * recsPerPkt)

	for i, pkt := range encodePackets(t, packets, recsPerPkt) {
		p.handleDatagram(r, "203.0.113.7:2055", pkt)
		if i%25 == 0 {
			s := p.Stats()
			if queued := s.Records - s.Processed - s.DroppedRecords; queued > bound {
				t.Fatalf("queued %d records exceeds bound %d", queued, bound)
			}
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	s := p.Stats()
	if s.Records != packets*recsPerPkt {
		t.Fatalf("decoded %d records, want %d", s.Records, packets*recsPerPkt)
	}
	if s.DroppedRecords == 0 {
		t.Fatal("overloaded pipeline dropped nothing; backpressure path untested")
	}
	if s.Processed+s.DroppedRecords != s.Records {
		t.Fatalf("accounting leak: processed %d + dropped %d != received %d",
			s.Processed, s.DroppedRecords, s.Records)
	}
	if s.DroppedBatches*recsPerPkt != s.DroppedRecords {
		t.Fatalf("dropped %d batches but %d records (want %d per batch)",
			s.DroppedBatches, s.DroppedRecords, recsPerPkt)
	}
	// The analytics saw exactly the processed records.
	snap := p.Snapshot()
	if got := uint64(snap.Census.Total); got != s.Processed {
		t.Fatalf("analytics ingested %d records, processed counter says %d", got, s.Processed)
	}
}

// TestUDPRoundTripCounters exercises the socket path directly: packets in
// over loopback UDP, decoded records visible in stats and snapshot.
func TestUDPRoundTripCounters(t *testing.T) {
	p, err := New(Config{Listen: []string{"127.0.0.1:0"}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	recs := make([]netflow.Record, 37)
	for i := range recs {
		recs[i] = testRecord(i)
	}
	exp, err := nfv9.NewExporter(p.Addrs()[0], 9)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	if err := exp.Export(recs, recs[0].Last); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s := p.Stats(); s.Records == uint64(len(recs)) && p.Drained() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	s := p.Stats()
	if s.Records != uint64(len(recs)) || s.Sources != 1 {
		t.Fatalf("stats after export: %+v", s)
	}
	// The fabricated records come from a non-CWA prefix, so they land in
	// the census as drops — proof the filter ran over the socket path.
	snap := p.Snapshot()
	if snap.Census.Total != len(recs) {
		t.Fatalf("census total %d, want %d", snap.Census.Total, len(recs))
	}
}

// TestMultiDomainSourceScoping interleaves two observation domains from
// one sender address (a router exporting several SourceIDs over one
// socket, RFC 3954's scoping case) and asserts the per-domain decoders
// keep independent sequence spaces — no phantom gaps or reorders.
func TestMultiDomainSourceScoping(t *testing.T) {
	p, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := p.newLoopReader()

	encA, encB := nfv9.NewEncoder(1), nfv9.NewEncoder(2)
	exportTime := time.Date(2020, time.June, 16, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		enc := encA
		if i%2 == 1 {
			enc = encB
		}
		pkt, err := enc.Encode([]netflow.Record{testRecord(i)}, exportTime)
		if err != nil {
			t.Fatal(err)
		}
		p.handleDatagram(r, "203.0.113.9:2055", pkt)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Sources != 2 {
		t.Fatalf("sources = %d, want 2 (one per observation domain)", s.Sources)
	}
	if s.SeqGaps != 0 || s.SeqReordered != 0 || s.DecodeErrors != 0 {
		t.Fatalf("interleaved domains corrupted the audit: %+v", s)
	}
	if s.Records != 20 {
		t.Fatalf("records = %d, want 20", s.Records)
	}
}

// TestGarbageDatagramsAllocateNoState floods the pipeline with non-NFv9
// and undecodable datagrams from many spoofed sources and asserts no
// per-source decoder state is retained — the map only grows for sources
// whose packets actually decode.
func TestGarbageDatagramsAllocateNoState(t *testing.T) {
	p, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := p.newLoopReader()
	for i := 0; i < 200; i++ {
		from := fmt.Sprintf("198.18.%d.%d:9", i/256, i%256)
		// Too short, wrong version, and valid-header-but-corrupt-body.
		p.handleDatagram(r, from, []byte{9, 9, 9})
		p.handleDatagram(r, from, make([]byte, 24)) // version 0
		bad := encodePackets(t, 1, 1)[0]
		bad[22], bad[23] = 0xFF, 0xFF // corrupt flowset length
		p.handleDatagram(r, from, bad)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Sources != 0 {
		t.Fatalf("garbage datagrams retained %d sources, want 0", s.Sources)
	}
	if s.DecodeErrors != 600 {
		t.Fatalf("decode errors = %d, want 600", s.DecodeErrors)
	}
}

// TestPipelineConfigDefaults pins the sizing defaults the docs promise.
func TestPipelineConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Workers < 1 || cfg.ShardBuffer != 256 || cfg.ReadBuffer != 8<<20 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}

// TestReplayNoAddr pins the error path.
func TestReplayNoAddr(t *testing.T) {
	if _, err := Replay(nil, nil, ReplayConfig{}); err == nil {
		t.Fatal("replay with no addresses must fail")
	}
}

// TestSinkOnlyRequiresSink pins the config validation: SinkOnly with no
// Sink would make workers discard every batch with no state kept
// anywhere, so New must reject it.
func TestSinkOnlyRequiresSink(t *testing.T) {
	if _, err := New(Config{SinkOnly: true}); err == nil {
		t.Fatal("SinkOnly without a Sink must be rejected")
	}
}
