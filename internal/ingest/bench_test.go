package ingest

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkIngestPipeline measures the collector's decode→dispatch→ingest
// path — records/sec through the pipeline, without UDP in the loop — at
// one worker (serial) versus the full worker pool, with one feeding
// goroutine per simulated socket. The EXPERIMENTS.md "ingest throughput"
// snapshot comes from this benchmark.
func BenchmarkIngestPipeline(b *testing.B) {
	const (
		feeders    = 4
		pktsPerSrc = 500
		recsPerPkt = 18 // one full MTU-sized datagram
	)
	// Pre-encode each simulated socket's packet stream once; the decoder
	// keeps per-source state, so each feeder gets its own source.
	streams := make([][][]byte, feeders)
	for f := range streams {
		streams[f] = encodePackets(b, pktsPerSrc, recsPerPkt)
	}

	modes := []struct {
		name    string
		workers int
		feeders int
	}{
		{"serial", 1, 1},
		{"parallel", 0, feeders}, // 0 = NumCPU workers
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			records := mode.feeders * pktsPerSrc * recsPerPkt
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := New(Config{Workers: mode.workers, ShardBuffer: 4096})
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				for f := 0; f < mode.feeders; f++ {
					r := p.newLoopReader()
					from := fmt.Sprintf("203.0.113.%d:2055", f+1)
					wg.Add(1)
					go func(stream [][]byte) {
						defer wg.Done()
						for _, pkt := range stream {
							p.handleDatagram(r, from, pkt)
						}
					}(streams[f])
				}
				wg.Wait()
				if err := p.Close(); err != nil {
					b.Fatal(err)
				}
				if s := p.Stats(); s.Processed+s.DroppedRecords != uint64(records) {
					b.Fatalf("lost records: %+v", s)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(records*b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}
