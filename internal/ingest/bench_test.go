package ingest

import (
	"fmt"
	"sync"
	"testing"

	"cwatrace/internal/obs"
)

// BenchmarkIngestPipeline measures the collector's decode→dispatch→ingest
// path — records/sec through the pipeline, without UDP in the loop — at
// one worker (serial) versus the full worker pool, with one feeding
// goroutine per simulated socket. The EXPERIMENTS.md "ingest throughput"
// snapshot comes from this benchmark.
func BenchmarkIngestPipeline(b *testing.B) {
	const (
		feeders    = 4
		pktsPerSrc = 500
		recsPerPkt = 18 // one full MTU-sized datagram
	)
	// Pre-encode each simulated socket's packet stream once; the decoder
	// keeps per-source state, so each feeder gets its own source.
	streams := make([][][]byte, feeders)
	for f := range streams {
		streams[f] = encodePackets(b, pktsPerSrc, recsPerPkt)
	}

	// The instrumented modes run with a live metrics registry (sampled
	// stage histograms, per-lane gauges, watermark) AND the flight
	// recorder (span tracer + event ring) — benchjson -obs compares them
	// against the obs.Disabled baselines to prove the full
	// observability overhead, tracing included, stays under 3%.
	modes := []struct {
		name       string
		workers    int
		feeders    int
		registries bool
	}{
		{"serial", 1, 1, false},
		{"parallel", 0, feeders, false}, // 0 = NumCPU workers
		{"serial_instrumented", 1, 1, true},
		{"parallel_instrumented", 0, feeders, true},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			records := mode.feeders * pktsPerSrc * recsPerPkt
			// One pipeline for the whole run: construction (and, when
			// instrumented, the registry with its ~40 family registrations)
			// is start-up cost, not per-record cost, so it stays outside
			// the measured loop. Each iteration replays every stream once;
			// per-source decoder state and the analytics bins reach steady
			// state after the first pass.
			var (
				reg    *obs.Registry
				tracer *obs.Tracer
				events *obs.EventRing
			)
			if mode.registries {
				reg = obs.NewRegistry()
				tracer = obs.NewTracer(obs.TracerConfig{})
				events = obs.NewEventRing(0)
			}
			p, err := New(Config{Workers: mode.workers, ShardBuffer: 4096,
				Metrics: reg, Tracer: tracer, Events: events})
			if err != nil {
				b.Fatal(err)
			}
			readers := make([]*reader, mode.feeders)
			for f := range readers {
				readers[f] = p.newLoopReader()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for f := 0; f < mode.feeders; f++ {
					from := fmt.Sprintf("203.0.113.%d:2055", f+1)
					wg.Add(1)
					go func(r *reader, stream [][]byte) {
						defer wg.Done()
						for _, pkt := range stream {
							p.handleDatagram(r, from, pkt)
						}
					}(readers[f], streams[f])
				}
				wg.Wait()
			}
			b.StopTimer()
			if err := p.Close(); err != nil {
				b.Fatal(err)
			}
			if s := p.Stats(); s.Processed+s.DroppedRecords != uint64(records*b.N) {
				b.Fatalf("lost records: %+v", s)
			}
			b.ReportMetric(float64(records*b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}
