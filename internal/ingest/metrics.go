// The ingest metric catalogue. The counter and gauge names predate the
// registry (cmd/collectord exposed them as a hand-rolled dump), so they
// are frozen: the daemons' exposition tests parse /metrics and assert
// on them by name. Everything reads the pipeline's existing atomics at
// render time — the hot path carries no extra counters, only the
// sampled stage histograms and the per-lane watermark wired in
// pipeline.go.
package ingest

import (
	"strconv"
	"time"

	"cwatrace/internal/obs"
)

// pipelineMetrics holds the hot-path instruments. The zero value (all
// nil) is the disabled mode: every Observe is a nil-receiver no-op.
type pipelineMetrics struct {
	// decodeSeconds times PeekSourceID+DecodeInto+dispatch, sampled
	// 1-in-64 datagrams; batchSeconds times one worker batch
	// (filter+sink+analytics), sampled 1-in-64 batches.
	decodeSeconds *obs.Histogram
	batchSeconds  *obs.Histogram
	// droppedBatchRecords is the backpressure loss distribution: the
	// record count of batches dropped on a full shard channel, sampled
	// 1-in-64 drops (under overload the drop branch is the hot path).
	droppedBatchRecords *obs.Histogram
}

func (m *pipelineMetrics) register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.decodeSeconds = reg.Histogram("ingest_decode_seconds",
		"Datagram decode+dispatch latency (sampled 1-in-64).", obs.DurationBuckets)
	m.batchSeconds = reg.Histogram("ingest_batch_seconds",
		"Worker batch processing latency: filter, sink append, analytics (sampled 1-in-64).",
		obs.DurationBuckets)
	m.droppedBatchRecords = reg.Histogram("ingest_dropped_batch_records",
		"Records lost per batch dropped under backpressure (sampled 1-in-64).", obs.SizeBuckets)
}

// registerPipelineFuncs wires the render-time samples: the ported
// counter/gauge names from the pre-registry /metrics page, the per-lane
// queue depth and watermark families, and the pipeline-wide freshness
// lag. Called from New after the lanes exist and before any socket can
// deliver.
func registerPipelineFuncs(reg *obs.Registry, p *Pipeline) {
	if reg == nil {
		return
	}
	sumReaders := func(pick func(*reader) uint64) func() float64 {
		return func() float64 {
			var n uint64
			for _, r := range p.readers {
				n += pick(r)
			}
			return float64(n)
		}
	}
	sumLanes := func(pick func(*shardLane) uint64) func() float64 {
		return func() float64 {
			var n uint64
			for _, l := range p.lanes {
				n += pick(l)
			}
			return float64(n)
		}
	}
	reg.CounterFunc("ingest_packets_total", "NFv9 export datagrams decoded.",
		sumReaders(func(r *reader) uint64 { return r.packets.Load() }))
	reg.CounterFunc("ingest_records_total", "Flow records decoded.",
		sumReaders(func(r *reader) uint64 { return r.records.Load() }))
	reg.CounterFunc("ingest_decode_errors_total", "Datagrams the decoder rejected.",
		sumReaders(func(r *reader) uint64 { return r.decodeErrors.Load() }))
	reg.CounterFunc("ingest_socket_errors_total", "Transient socket receive errors (retried).",
		sumReaders(func(r *reader) uint64 { return r.socketErrors.Load() }))
	reg.CounterFunc("ingest_records_processed_total", "Records ingested into analytics shards.",
		sumLanes(func(l *shardLane) uint64 { return l.processed.Load() }))
	reg.CounterFunc("ingest_records_dropped_total", "Records dropped under backpressure.",
		sumLanes(func(l *shardLane) uint64 { return l.droppedRecords.Load() }))
	reg.CounterFunc("ingest_batches_dropped_total", "Batches dropped under backpressure.",
		sumLanes(func(l *shardLane) uint64 { return l.droppedBatches.Load() }))
	reg.CounterFunc("ingest_records_shard_filtered_total",
		"Processed records discarded by the cluster shard filter (owned elsewhere).",
		sumLanes(func(l *shardLane) uint64 { return l.shardFiltered.Load() }))
	reg.CounterFunc("ingest_sink_errors_total", "Failed sink appends and flushes.",
		func() float64 {
			var n uint64
			for _, l := range p.lanes {
				n += l.sinkErrors.Load()
			}
			return float64(n + p.flushErrors.Load())
		})

	// The sequence-audit family walks every source's decoder state under
	// the reader locks — render-cadence work, same as Stats.
	seq := func(pick func(gaps int, lost uint64, reordered int) float64) func() float64 {
		return func() float64 {
			var total float64
			for _, r := range p.readers {
				r.mu.Lock()
				for _, dec := range r.sources {
					total += pick(dec.SequenceStats())
				}
				r.mu.Unlock()
			}
			return total
		}
	}
	reg.CounterFunc("ingest_seq_gaps_total", "Export sequence gaps observed across sources.",
		seq(func(g int, _ uint64, _ int) float64 { return float64(g) }))
	reg.CounterFunc("ingest_seq_lost_total", "Flow records lost to export sequence gaps.",
		seq(func(_ int, l uint64, _ int) float64 { return float64(l) }))
	reg.CounterFunc("ingest_seq_reordered_total", "Reordered export packets observed.",
		seq(func(_ int, _ uint64, r int) float64 { return float64(r) }))
	reg.GaugeFunc("ingest_sources", "Distinct exporter sources seen.", func() float64 {
		var n int
		for _, r := range p.readers {
			r.mu.Lock()
			n += len(r.sources)
			r.mu.Unlock()
		}
		return float64(n)
	})

	// Per-lane families: queue depth (batches waiting in the shard
	// channel) and the per-shard freshness watermark.
	for i, lane := range p.lanes {
		shard := obs.L("shard", strconv.Itoa(i))
		l := lane
		reg.GaugeFunc("ingest_shard_queue_depth",
			"Batches queued in the shard channel.", func() float64 {
				return float64(len(l.ch))
			}, shard)
		reg.GaugeFunc("ingest_shard_watermark_timestamp_seconds",
			"Newest record start timestamp this lane consumed (unix seconds; 0 before traffic).",
			func() float64 {
				return float64(l.watermark.Load()) / 1e9
			}, shard)
	}
	watermark := func() int64 {
		var wm int64
		for _, l := range p.lanes {
			if v := l.watermark.Load(); v > wm {
				wm = v
			}
		}
		return wm
	}
	reg.GaugeFunc("ingest_watermark_timestamp_seconds",
		"Newest record start timestamp consumed by any lane (unix seconds; 0 before traffic).",
		func() float64 { return float64(watermark()) / 1e9 })
	reg.GaugeFunc("ingest_freshness_lag_seconds",
		"Wall clock minus the ingest watermark: how far behind the wire the analytics are (0 before traffic).",
		func() float64 {
			wm := watermark()
			if wm == 0 {
				return 0
			}
			return time.Since(time.Unix(0, wm)).Seconds()
		})
}
