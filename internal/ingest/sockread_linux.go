//go:build linux

package ingest

import (
	"errors"
	"net"
	"net/netip"
	"strconv"
	"syscall"
	"time"
	"unsafe"
)

// batchMsgs is how many datagrams one recvmmsg call can drain. 32 keeps
// the arena at 2 MiB per reader while amortizing the syscall ~30x under
// load; a half-empty batch costs nothing extra.
const batchMsgs = 32

// mmsghdr mirrors the kernel's struct mmsghdr. The trailing 4-byte pad on
// 64-bit comes from Go's natural struct alignment (Msghdr contains
// pointers), matching C on both 32- and 64-bit, so no explicit pad field.
type mmsghdr struct {
	hdr    syscall.Msghdr
	msgLen uint32
}

// batchState is the reused receive arena of one reader: fixed datagram
// and sockaddr buffers wired into mmsghdr/iovec tables once, plus the
// sender-address intern table. Nothing here is reallocated per batch.
type batchState struct {
	bufs  []byte // batchMsgs contiguous maxDatagramLen datagram slots
	names []byte // batchMsgs contiguous sockaddr slots
	iov   []syscall.Iovec
	hdrs  []mmsghdr

	// from interns formatted sender addresses by raw sockaddr bytes, so
	// the steady state never re-parses or re-formats a peer address. The
	// map is bounded: a spoofed-source flood resets it rather than growing
	// it without bound.
	from map[string]string
}

// sockaddrLen covers sockaddr_in6 (28 bytes), the largest address family
// a UDP socket produces.
const sockaddrLen = syscall.SizeofSockaddrInet6

// maxFromCache bounds the sender-address intern table.
const maxFromCache = 4096

func newBatchState() *batchState {
	s := &batchState{
		bufs:  make([]byte, batchMsgs*maxDatagramLen),
		names: make([]byte, batchMsgs*sockaddrLen),
		iov:   make([]syscall.Iovec, batchMsgs),
		hdrs:  make([]mmsghdr, batchMsgs),
		from:  make(map[string]string),
	}
	for i := range s.hdrs {
		buf := s.bufs[i*maxDatagramLen : (i+1)*maxDatagramLen]
		s.iov[i].Base = &buf[0]
		s.iov[i].SetLen(len(buf))
		s.hdrs[i].hdr.Name = &s.names[i*sockaddrLen]
		s.hdrs[i].hdr.Iov = &s.iov[i]
		s.hdrs[i].hdr.Iovlen = 1
	}
	return s
}

// readLoop drains the socket with recvmmsg, up to batchMsgs datagrams per
// syscall, blocking in the runtime netpoller (never the thread) between
// batches. Non-UDP sockets (not reachable from New, which always listens
// "udp") fall back to the portable loop.
func (p *Pipeline) readLoop(r *reader) {
	uc, ok := r.pc.(*net.UDPConn)
	if !ok {
		p.readPortable(r)
		return
	}
	rc, err := uc.SyscallConn()
	if err != nil {
		p.readPortable(r)
		return
	}
	s := newBatchState()
	for {
		var n int
		var rerr syscall.Errno
		err := rc.Read(func(fd uintptr) bool {
			// The kernel overwrites Namelen with the actual sockaddr
			// size; reset it before every call.
			for i := range s.hdrs {
				s.hdrs[i].hdr.Namelen = sockaddrLen
			}
			r0, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
				uintptr(unsafe.Pointer(&s.hdrs[0])), batchMsgs,
				syscall.MSG_DONTWAIT, 0, 0)
			if errno == syscall.EAGAIN || errno == syscall.EINTR {
				return false // park in the netpoller until readable
			}
			n, rerr = int(r0), errno
			return true
		})
		if err != nil {
			if p.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			r.socketErrors.Add(1)
			time.Sleep(time.Millisecond)
			continue
		}
		if rerr != 0 {
			if p.closed.Load() {
				return
			}
			r.socketErrors.Add(1)
			// Breathe before retrying so a persistently failing socket
			// cannot spin the CPU.
			time.Sleep(time.Millisecond)
			continue
		}
		for i := 0; i < n; i++ {
			from := s.internFrom(s.names[i*sockaddrLen : i*sockaddrLen+int(s.hdrs[i].hdr.Namelen)])
			data := s.bufs[i*maxDatagramLen : i*maxDatagramLen+int(s.hdrs[i].msgLen)]
			p.handleDatagram(r, from, data)
		}
	}
}

// internFrom maps raw sockaddr bytes to the formatted sender address,
// parsing and formatting each distinct peer once. The string(raw) map
// probe does not allocate on hits (the compiler recognizes the pattern).
func (s *batchState) internFrom(raw []byte) string {
	if from, ok := s.from[string(raw)]; ok {
		return from
	}
	from := formatSockaddr(raw)
	if len(s.from) >= maxFromCache {
		// A flood of spoofed senders: drop the table, keep the bound.
		clear(s.from)
	}
	s.from[string(raw)] = from
	return from
}

// formatSockaddr renders a raw IPv4/IPv6 sockaddr the way
// net.UDPAddr.String renders the same peer, so exporter identities (and
// the per-source decoder scoping) are identical across the batched and
// portable readers.
func formatSockaddr(raw []byte) string {
	if len(raw) >= 2 {
		switch family := *(*uint16)(unsafe.Pointer(&raw[0])); family {
		case syscall.AF_INET:
			if len(raw) >= syscall.SizeofSockaddrInet4 {
				sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&raw[0]))
				port := uint16(raw[2])<<8 | uint16(raw[3])
				return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), port).String()
			}
		case syscall.AF_INET6:
			if len(raw) >= syscall.SizeofSockaddrInet6 {
				sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&raw[0]))
				port := uint16(raw[2])<<8 | uint16(raw[3])
				// Unmap v4-mapped peers of a dual-stack socket: net
				// renders them dotted-quad.
				addr := netip.AddrFrom16(sa.Addr).Unmap()
				if sa.Scope_id != 0 {
					if ifi, err := net.InterfaceByIndex(int(sa.Scope_id)); err == nil {
						addr = addr.WithZone(ifi.Name)
					} else {
						addr = addr.WithZone(strconv.Itoa(int(sa.Scope_id)))
					}
				}
				return netip.AddrPortFrom(addr, port).String()
			}
		}
	}
	return "unknown"
}

// setReadBuffer sizes the socket receive buffer and reads back what the
// kernel granted (getsockopt reports double the usable size, per
// socket(7)). A clamped buffer is logged with the sysctl to raise —
// otherwise drop investigations chase a phantom 8 MiB buffer that is
// really net.core.rmem_max.
func setReadBuffer(pc net.PacketConn, want int, logf func(format string, args ...any)) {
	uc, ok := pc.(*net.UDPConn)
	if !ok {
		return
	}
	if err := uc.SetReadBuffer(want); err != nil {
		logf("ingest: set socket receive buffer to %d bytes: %v", want, err)
		return
	}
	rc, err := uc.SyscallConn()
	if err != nil {
		return
	}
	granted := -1
	_ = rc.Control(func(fd uintptr) {
		if v, err := syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_RCVBUF); err == nil {
			granted = v / 2
		}
	})
	switch {
	case granted < 0:
	case granted < want:
		logf("ingest: socket receive buffer clamped to %d bytes (requested %d); raise net.core.rmem_max to avoid burst drops", granted, want)
	default:
		logf("ingest: socket receive buffer %d bytes", granted)
	}
}
