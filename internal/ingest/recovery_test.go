package ingest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
	"cwatrace/internal/nfv9"
	"cwatrace/internal/store"
	"cwatrace/internal/streaming"
)

// recoveryAnalytics is the analytics configuration shared by the durable
// pipeline runs (DB-less: district recovery has its own unit tests).
func recoveryAnalytics() streaming.Config {
	return streaming.Config{WindowHours: entime.StudyHours() + 24, TopK: 10}
}

// feedRecords encodes records as NFv9 packets across three exporter
// sources and injects them straight into the pipeline (no UDP, so no
// loss and no flakes).
func feedRecords(t *testing.T, p *Pipeline, recs []netflow.Record) {
	t.Helper()
	const (
		sources    = 3
		perPacket  = 25
		exportBase = 9000
	)
	encs := make([]*nfv9.Encoder, sources)
	for i := range encs {
		encs[i] = nfv9.NewEncoder(uint32(exportBase + i))
	}
	r := p.newLoopReader()
	pkt := 0
	for off := 0; off < len(recs); off += perPacket {
		end := off + perPacket
		if end > len(recs) {
			end = len(recs)
		}
		enc := encs[pkt%sources]
		data, err := enc.Encode(recs[off:end], recs[off].First)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		p.handleDatagram(r, fmt.Sprintf("203.0.113.%d:2055", pkt%sources), data)
		pkt++
	}
}

// runDurable pushes records through a SinkOnly pipeline into st and
// waits for a loss-free drain.
func runDurable(t *testing.T, st *store.Store, workers int, recs []netflow.Record) {
	t.Helper()
	p, err := New(Config{
		Workers:     workers,
		ShardBuffer: 8192,
		Analytics:   recoveryAnalytics(),
		Sink:        st,
		SinkOnly:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	feedRecords(t, p, recs)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.DroppedRecords != 0 || s.SinkErrors != 0 || s.Processed != uint64(len(recs)) {
		t.Fatalf("durable run not loss-free: %+v (want %d processed)", s, len(recs))
	}
}

// walMultiset reads the canonical-encoding multiset of every record
// surviving in dir's WAL.
func walMultiset(t *testing.T, dir string) (map[string]int, map[string]netflow.Record) {
	t.Helper()
	counts := make(map[string]int)
	samples := make(map[string]netflow.Record)
	err := store.WalkWAL(dir, func(batch []netflow.Record) error {
		for _, r := range batch {
			k := string(store.EncodeRecord(r))
			counts[k]++
			samples[k] = r
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return counts, samples
}

// copyDir clones a store directory so each truncation scenario starts
// from the same crashed state.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// lastSegment returns the path and size of the highest-sequence WAL
// segment in dir.
func lastSegment(t *testing.T, dir string) (string, int64) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range entries {
		name := e.Name()
		if len(name) > 8 && name[:4] == "wal-" && name[len(name)-4:] == ".seg" && name > filepath.Base(last) {
			last = filepath.Join(dir, name)
		}
	}
	if last == "" {
		t.Fatal("no WAL segment on disk")
	}
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	return last, st.Size()
}

// queryJSON renders a full-range query canonically.
func queryJSON(t *testing.T, st *store.Store) string {
	t.Helper()
	res, err := st.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCrashRecoveryByteIdentical is the subsystem's acceptance bar: a
// collector killed at an arbitrary WAL byte offset and restarted must
// serve a /query result byte-identical to an uninterrupted run over the
// same replayed trace — at 1 and 4 workers (make race runs this under
// the race detector).
//
// The kill is simulated exactly the way it manifests on disk: the store
// is dropped without a final checkpoint and its last WAL segment is
// truncated at an arbitrary byte offset (appends are write-through, so
// a SIGKILL can only lose the torn suffix). The records that were
// physically lost with the torn tail are re-sent after the restart —
// the byte-identity claim is about state reconstruction, not about
// resurrecting bytes that never reached the disk.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	res := runQuickSim(t)
	recs := res.Records
	if len(recs) > 40000 {
		recs = recs[:40000]
	}
	ck := len(recs) * 3 / 10  // records folded by the periodic checkpoint
	cut := len(recs) * 6 / 10 // records ingested before the crash

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// Reference: one uninterrupted durable run over the trace.
			refDir := t.TempDir()
			refStore, err := store.Open(refDir, store.Options{Analytics: recoveryAnalytics()})
			if err != nil {
				t.Fatal(err)
			}
			runDurable(t, refStore, workers, recs)
			if err := refStore.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			want := queryJSON(t, refStore)
			if err := refStore.Close(); err != nil {
				t.Fatal(err)
			}

			// Interrupted run: ingest 60% of the trace with one periodic
			// checkpoint partway, then crash (no final checkpoint).
			crashDir := t.TempDir()
			crashStore, err := store.Open(crashDir, store.Options{Analytics: recoveryAnalytics()})
			if err != nil {
				t.Fatal(err)
			}
			runDurable(t, crashStore, workers, recs[:ck])
			if err := crashStore.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			runDurable(t, crashStore, workers, recs[ck:cut])
			m := crashStore.Metrics()
			if m.Frames == 0 || m.TailRecords == 0 {
				t.Fatalf("crash scenario needs both frames and a WAL tail: %+v", m)
			}
			if err := crashStore.Close(); err != nil { // close-without-checkpoint == crash
				t.Fatal(err)
			}
			fullWAL, fullSamples := walMultiset(t, crashDir)

			_, segSize := lastSegment(t, crashDir)
			for _, torn := range []int64{0, segSize / 2, segSize - 3} {
				t.Run(fmt.Sprintf("truncate=%d", torn), func(t *testing.T) {
					dir := copyDir(t, crashDir)
					seg, _ := lastSegment(t, dir)
					if err := os.Truncate(seg, torn); err != nil {
						t.Fatal(err)
					}

					// What physically survived the crash, and therefore
					// which records the exporters must re-send: the
					// pre-truncation WAL multiset minus what is left.
					keptWAL, _ := walMultiset(t, dir)
					var resend []netflow.Record
					for k, n := range fullWAL {
						for i := keptWAL[k]; i < n; i++ {
							resend = append(resend, fullSamples[k])
						}
					}
					sort.Slice(resend, func(i, j int) bool { return netflow.RecordLess(resend[i], resend[j]) })

					// Restart on the same data dir: recovery replays the
					// surviving WAL onto the checkpoint frames.
					st, err := store.Open(dir, store.Options{Analytics: recoveryAnalytics()})
					if err != nil {
						t.Fatal(err)
					}
					rm := st.Metrics()
					if rm.RecoveredFrames != int(m.Frames) {
						t.Fatalf("recovered %d frames, want %d", rm.RecoveredFrames, m.Frames)
					}
					wantReplay := 0
					for _, n := range keptWAL {
						wantReplay += n
					}
					if rm.RecoveredWALRecords != uint64(wantReplay) {
						t.Fatalf("replayed %d WAL records, disk holds %d", rm.RecoveredWALRecords, wantReplay)
					}

					// Resume the trace: the torn-off records plus the part
					// never sent before the kill.
					rest := append(append([]netflow.Record(nil), resend...), recs[cut:]...)
					runDurable(t, st, workers, rest)
					if err := st.Checkpoint(); err != nil {
						t.Fatal(err)
					}
					if got := queryJSON(t, st); got != want {
						t.Errorf("recovered /query differs from uninterrupted run\n got: %.200s...\nwant: %.200s...", got, want)
					}
					if err := st.Close(); err != nil {
						t.Fatal(err)
					}
				})
			}
		})
	}
}
