package ingest

import (
	"bytes"
	"encoding/json"
	"testing"

	"cwatrace/internal/netflow"
	"cwatrace/internal/streaming"
)

// TestShardFilterPartitionsExactly feeds one identical packet stream to
// an unfiltered pipeline and to two complementary shard-filtered ones,
// then checks the cluster contract at the ingest layer: the filters
// split the stream disjointly and exhaustively (every record counted
// once as kept-or-ShardFiltered), the drain invariant is untouched, and
// merging the two shard snapshots reproduces the unfiltered snapshot
// byte for byte.
func TestShardFilterPartitionsExactly(t *testing.T) {
	const (
		packets    = 40
		recsPerPkt = 25
	)
	shardOf := func(r *netflow.Record) int {
		b := r.Key.Dst.As4()
		return int(b[3]) % 2
	}
	newPipe := func(filter func(*netflow.Record) bool) *Pipeline {
		p, err := New(Config{Workers: 2, ShardBuffer: 1024, ShardFilter: filter})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	full := newPipe(nil)
	shard0 := newPipe(func(r *netflow.Record) bool { return shardOf(r) == 0 })
	shard1 := newPipe(func(r *netflow.Record) bool { return shardOf(r) == 1 })
	pipes := []*Pipeline{full, shard0, shard1}

	pkts := encodePackets(t, packets, recsPerPkt)
	for _, p := range pipes {
		r := p.newLoopReader()
		for _, pkt := range pkts {
			p.handleDatagram(r, "203.0.113.7:2055", pkt)
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		s := p.Stats()
		if s.Records != packets*recsPerPkt || s.DroppedRecords != 0 {
			t.Fatalf("lossy feed: %+v", s)
		}
		if s.Processed != s.Records {
			t.Fatalf("drain invariant broke under filtering: processed %d of %d", s.Processed, s.Records)
		}
	}

	fs, s0, s1 := full.Stats(), shard0.Stats(), shard1.Stats()
	if fs.ShardFiltered != 0 {
		t.Fatalf("unfiltered pipeline filtered %d records", fs.ShardFiltered)
	}
	if s0.ShardFiltered+s1.ShardFiltered != fs.Records {
		t.Fatalf("filtered counts not complementary: %d + %d != %d",
			s0.ShardFiltered, s1.ShardFiltered, fs.Records)
	}
	if s0.ShardFiltered == 0 || s1.ShardFiltered == 0 {
		t.Fatal("one shard filtered nothing; partition untested")
	}

	snapFull, snap0, snap1 := full.Snapshot(), shard0.Snapshot(), shard1.Snapshot()
	if got := s0.ShardFiltered + uint64(snap0.Census.Total); got != fs.Records {
		t.Fatalf("shard 0 accounting: filtered %d + analyzed %d != %d",
			s0.ShardFiltered, snap0.Census.Total, fs.Records)
	}
	if snap0.Census.Total+snap1.Census.Total != snapFull.Census.Total {
		t.Fatalf("census split %d + %d != %d", snap0.Census.Total, snap1.Census.Total, snapFull.Census.Total)
	}

	// The shards merge back into exactly the unfiltered state.
	m := streaming.New(streaming.Config{Origin: snapFull.Origin, WindowHours: snapFull.WindowHours})
	m.Merge(streaming.FromSnapshot(snap0))
	m.Merge(streaming.FromSnapshot(snap1))
	want, err := json.Marshal(snapFull)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged shard snapshots differ from unfiltered snapshot\n got: %.300s\nwant: %.300s", got, want)
	}
}
