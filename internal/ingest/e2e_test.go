package ingest

import (
	"net/netip"
	"reflect"
	"sort"
	"testing"
	"time"

	"cwatrace/internal/core"
	"cwatrace/internal/entime"
	"cwatrace/internal/experiments"
	"cwatrace/internal/netflow"
	"cwatrace/internal/sim"
	"cwatrace/internal/streaming"
)

// runQuickSim produces the deterministic quick trace shared by the
// end-to-end tests.
func runQuickSim(t testing.TB) *sim.Result {
	t.Helper()
	res, err := sim.Run(experiments.QuickConfig())
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	return res
}

// streamTrace replays records through a fresh pipeline at the given worker
// count and returns its drained snapshot and stats. It retries once if
// loopback UDP dropped datagrams (rare, but UDP makes no promises even on
// localhost); the analytics comparison needs a loss-free run.
func streamTrace(t *testing.T, res *sim.Result, workers int) (*streaming.Snapshot, Stats) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		p, err := New(Config{
			Listen:      []string{"127.0.0.1:0"},
			Workers:     workers,
			ShardBuffer: 4096,
			Analytics: streaming.Config{
				// One spill day beyond the study window: flows opened
				// just before the capture end have First stamps past it.
				WindowHours: entime.StudyHours() + 24,
				DB:          res.GeoDB,
				Model:       res.Model,
				TopK:        10,
			},
		})
		if err != nil {
			t.Fatalf("pipeline: %v", err)
		}
		rs, err := Replay(p.Addrs(), res.Records, ReplayConfig{
			Sources:          4,
			RecordsPerSecond: 60000,
		})
		if err != nil {
			p.Close()
			t.Fatalf("replay: %v", err)
		}
		if rs.Records != len(res.Records) {
			p.Close()
			t.Fatalf("replay sent %d of %d records", rs.Records, len(res.Records))
		}

		// Wait until everything sent has been decoded and drained.
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if s := p.Stats(); s.Records == uint64(rs.Records) && p.Drained() {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err := p.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		s := p.Stats()
		if s.Records == uint64(rs.Records) && s.DroppedRecords == 0 {
			if s.SeqGaps != 0 {
				t.Fatalf("no datagram was lost but sequence audit reports %d gaps", s.SeqGaps)
			}
			return p.Snapshot(), s
		}
		if attempt >= 2 {
			t.Fatalf("lossy loopback replay after %d attempts: stats=%+v sent=%d", attempt+1, s, rs.Records)
		}
		t.Logf("replay attempt %d lost records (stats=%+v), retrying", attempt+1, s)
	}
}

// TestLoopbackEndToEnd is the subsystem's correctness bar: the streaming
// aggregates computed from the live NFv9/UDP stream must equal the batch
// internal/core analysis of the very same trace — census, the full
// Figure-2 result, per-district rollups and the top-K prefixes — and must
// be identical at any worker count.
func TestLoopbackEndToEnd(t *testing.T) {
	res := runQuickSim(t)

	// Batch reference, straight from the trace.
	kept, census := core.ApplyFilter(res.Records, core.DefaultFilter())
	fig2, err := core.Figure2(kept, res.Curve)
	if err != nil {
		t.Fatal(err)
	}
	// The rollup window spans the whole capture (plus the spill day) so
	// every kept record is covered, like the streaming district counters.
	fig3 := core.Figure3(kept, res.GeoDB, res.Model, entime.StudyStart, entime.StudyEnd.AddDate(0, 0, 1))

	snapshots := make(map[int]*streaming.Snapshot)
	for _, workers := range []int{1, 4} {
		snap, stats := streamTrace(t, res, workers)
		snapshots[workers] = snap
		t.Logf("workers=%d: %d packets, %d records, %d sources", workers, stats.Packets, stats.Records, stats.Sources)

		// Census: the filter ran on the same records, so every count
		// matches exactly.
		if !reflect.DeepEqual(snap.Census, census) {
			t.Errorf("workers=%d census mismatch:\n  stream: %+v\n  batch:  %+v", workers, snap.Census, census)
		}

		// Figure 2, derived through the shared core path.
		streamFig2, err := snap.Figure2(res.Curve)
		if err != nil {
			t.Fatalf("workers=%d snapshot figure2: %v", workers, err)
		}
		if !reflect.DeepEqual(streamFig2, fig2) {
			t.Errorf("workers=%d figure-2 result differs from batch", workers)
			for h := range fig2.Points {
				if fig2.Points[h] != streamFig2.Points[h] {
					t.Errorf("  hour %d: stream %+v batch %+v", h, streamFig2.Points[h], fig2.Points[h])
					break
				}
			}
		}

		// District rollups against Figure 3 (full-trace window).
		wantDistricts := make(map[string]uint64)
		for _, l := range fig3.Loads {
			if l.Flows > 0 {
				wantDistricts[l.District.ID] = uint64(l.Flows)
			}
		}
		gotDistricts := make(map[string]uint64)
		for _, d := range snap.Districts {
			gotDistricts[d.ID] = d.Flows
		}
		if !reflect.DeepEqual(gotDistricts, wantDistricts) {
			t.Errorf("workers=%d district rollup mismatch: got %d districts, want %d", workers, len(gotDistricts), len(wantDistricts))
		}

		// Top-K client prefixes against an independent batch computation.
		want := batchTopPrefixes(kept, 24, 10)
		if !reflect.DeepEqual(snap.TopPrefixes, want) {
			t.Errorf("workers=%d top-K mismatch:\n  stream: %v\n  batch:  %v", workers, snap.TopPrefixes, want)
		}

		// The release-day spike must be detected online.
		if len(snap.Spikes) == 0 {
			t.Errorf("workers=%d: no launch spike detected", workers)
		}
	}

	if !reflect.DeepEqual(snapshots[1], snapshots[4]) {
		t.Error("snapshots differ between 1 and 4 workers")
	}
}

// batchTopPrefixes recomputes the leaderboard independently of the
// streaming implementation.
func batchTopPrefixes(kept []netflow.Record, bits, k int) []streaming.PrefixCount {
	counts := make(map[netip.Prefix]uint64)
	for _, r := range kept {
		if p, err := r.Dst.Prefix(bits); err == nil {
			counts[p]++
		}
	}
	out := make([]streaming.PrefixCount, 0, len(counts))
	for p, n := range counts {
		out = append(out, streaming.PrefixCount{Prefix: p, Flows: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flows != out[j].Flows {
			return out[i].Flows > out[j].Flows
		}
		if c := out[i].Prefix.Addr().Compare(out[j].Prefix.Addr()); c != 0 {
			return c < 0
		}
		return out[i].Prefix.Bits() < out[j].Prefix.Bits()
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
