package ingest

import (
	"strings"
	"testing"

	"cwatrace/internal/obs"
)

// TestPipelineMetricsExposition runs real traffic through an
// instrumented pipeline and requires the rendered /metrics page to pass
// the strict exposition lint with values that agree with Stats — the
// ported counter names are frozen (the pre-registry collectord dump),
// and the watermark family must reflect the newest record consumed.
func TestPipelineMetricsExposition(t *testing.T) {
	const (
		packets    = 130 // > 2*64: at 1-in-64 sampling the decode histogram sees >= 2 observations
		recsPerPkt = 12
	)
	reg := obs.NewRegistry()
	p, err := New(Config{Workers: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	r := p.newLoopReader()
	for _, pkt := range encodePackets(t, packets, recsPerPkt) {
		p.handleDatagram(r, "203.0.113.9:2055", pkt)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Records != packets*recsPerPkt || s.Processed != s.Records {
		t.Fatalf("unexpected stats: %+v", s)
	}

	// Watermark: the newest record in the stream is the last one
	// encoded; the lane watermark must have reached it.
	want := testRecord(packets*recsPerPkt - 1).First.UnixNano()
	if s.WatermarkUnixNano != want {
		t.Errorf("WatermarkUnixNano = %d, want %d", s.WatermarkUnixNano, want)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exp, errs := obs.Lint(sb.String())
	for _, err := range errs {
		t.Errorf("lint: %v", err)
	}
	checks := []struct {
		name, labels string
		want         float64
	}{
		{"ingest_packets_total", "", packets},
		{"ingest_records_total", "", packets * recsPerPkt},
		{"ingest_records_processed_total", "", packets * recsPerPkt},
		{"ingest_records_dropped_total", "", 0},
		{"ingest_batches_dropped_total", "", 0},
		{"ingest_records_shard_filtered_total", "", 0},
		{"ingest_decode_errors_total", "", 0},
		{"ingest_sink_errors_total", "", 0},
		{"ingest_sources", "", 1},
		{"ingest_watermark_timestamp_seconds", "", float64(want) / 1e9},
	}
	for _, c := range checks {
		if got, ok := exp.Value(c.name, c.labels); !ok || got != c.want {
			t.Errorf("%s%s = %v (present=%v), want %v", c.name, c.labels, got, ok, c.want)
		}
	}
	// Per-lane families exist for both shards, and the freshness lag is
	// positive (the synthetic trace is from 2020).
	for _, shard := range []string{`{shard="0"}`, `{shard="1"}`} {
		if _, ok := exp.Value("ingest_shard_queue_depth", shard); !ok {
			t.Errorf("missing ingest_shard_queue_depth%s", shard)
		}
		if _, ok := exp.Value("ingest_shard_watermark_timestamp_seconds", shard); !ok {
			t.Errorf("missing ingest_shard_watermark_timestamp_seconds%s", shard)
		}
	}
	if lag, ok := exp.Value("ingest_freshness_lag_seconds", ""); !ok || lag <= 0 {
		t.Errorf("ingest_freshness_lag_seconds = %v (present=%v), want > 0", lag, ok)
	}
	// The sampled stage histograms saw traffic: 130 datagrams at 1-in-64
	// sampling observes at least two decodes.
	if v, ok := exp.Value("ingest_decode_seconds_count", ""); !ok || v < 2 {
		t.Errorf("ingest_decode_seconds_count = %v (present=%v), want >= 2", v, ok)
	}
	if v, ok := exp.Value("ingest_batch_seconds_count", ""); !ok || v < 1 {
		t.Errorf("ingest_batch_seconds_count = %v (present=%v), want >= 1", v, ok)
	}
}

// TestStreamingWatermark pins the analytics-level watermark: it tracks
// the newest binned record and survives Merge.
func TestStreamingWatermark(t *testing.T) {
	p, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := p.newLoopReader()
	for _, pkt := range encodePackets(t, 10, 5) {
		p.handleDatagram(r, "203.0.113.9:2055", pkt)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	lane := p.lanes[0]
	want := testRecord(10*5 - 1).First
	if got := lane.an.Watermark(); !got.Equal(want) {
		t.Errorf("analytics watermark = %v, want %v", got, want)
	}
}
