package ingest

import (
	"fmt"
	"hash/fnv"
	"time"

	"cwatrace/internal/netflow"
	"cwatrace/internal/nfv9"
)

// ReplayConfig drives Replay, the load generator that turns a finished
// trace back into a live NFv9 export stream.
type ReplayConfig struct {
	// Sources is the exporter pool size: records are mapped onto this
	// many NFv9 exporters (own socket, source ID and sequence space) by
	// hashing their router exporter ID (default 4).
	Sources int
	// BatchSize is how many consecutive same-source records are handed to
	// one Export call; the exporter still splits them into MTU-sized
	// datagrams (default 32).
	BatchSize int
	// RecordsPerSecond paces the replay (0 = as fast as possible). The
	// end-to-end tests pace gently so loopback UDP keeps up.
	RecordsPerSecond int
	// TemplateRefresh is forwarded to each exporter (0 = its default).
	TemplateRefresh int
}

func (c ReplayConfig) withDefaults() ReplayConfig {
	if c.Sources <= 0 {
		c.Sources = 4
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	return c
}

// ReplayStats reports what a Replay sent.
type ReplayStats struct {
	Records int
	Batches int
	Sources int
}

// Replay streams records (in slice order, i.e. trace time order) to the
// collector addresses over NFv9/UDP. Exporter pool slot i dials
// addrs[i%len(addrs)], so multi-socket collectors receive a spread of
// sources per socket — the simulator-as-load-generator wiring behind
// `cwasim -export` and `collectord -demo`.
func Replay(addrs []string, records []netflow.Record, cfg ReplayConfig) (ReplayStats, error) {
	cfg = cfg.withDefaults()
	var stats ReplayStats
	if len(addrs) == 0 {
		return stats, fmt.Errorf("ingest: replay needs at least one collector address")
	}

	exporters := make([]*nfv9.Exporter, cfg.Sources)
	for i := range exporters {
		exp, err := nfv9.NewExporter(addrs[i%len(addrs)], uint32(i+1))
		if err != nil {
			closeAll(exporters[:i])
			return stats, err
		}
		if cfg.TemplateRefresh > 0 {
			exp.TemplateRefresh = cfg.TemplateRefresh
		}
		exporters[i] = exp
	}
	defer closeAll(exporters)
	stats.Sources = cfg.Sources

	// The exporter-ID set is a few hundred fixed router names; memoize the
	// hash so the per-record loop stays allocation-free.
	slots := make(map[string]int)
	slotOf := func(exporter string) int {
		if s, ok := slots[exporter]; ok {
			return s
		}
		h := fnv.New32a()
		h.Write([]byte(exporter))
		s := int(h.Sum32() % uint32(cfg.Sources))
		slots[exporter] = s
		return s
	}

	start := time.Now()
	flush := func(slot int, batch []netflow.Record) error {
		if len(batch) == 0 {
			return nil
		}
		if err := exporters[slot].Export(batch, batch[len(batch)-1].Last); err != nil {
			return err
		}
		stats.Records += len(batch)
		stats.Batches++
		if cfg.RecordsPerSecond > 0 {
			ahead := time.Duration(stats.Records)*time.Second/time.Duration(cfg.RecordsPerSecond) - time.Since(start)
			if ahead > 0 {
				time.Sleep(ahead)
			}
		}
		return nil
	}

	batch := make([]netflow.Record, 0, cfg.BatchSize)
	slot := -1
	for _, r := range records {
		s := slotOf(r.Exporter)
		if s != slot || len(batch) >= cfg.BatchSize {
			if err := flush(slot, batch); err != nil {
				return stats, err
			}
			batch = batch[:0]
			slot = s
		}
		batch = append(batch, r)
	}
	if err := flush(slot, batch); err != nil {
		return stats, err
	}
	return stats, nil
}

func closeAll(exporters []*nfv9.Exporter) {
	for _, e := range exporters {
		if e != nil {
			_ = e.Close()
		}
	}
}
