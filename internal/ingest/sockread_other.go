//go:build !linux

package ingest

import "net"

// readLoop on non-linux platforms is the portable one-datagram-per-syscall
// loop; the batched recvmmsg reader is linux-only (see sockread_linux.go).
func (p *Pipeline) readLoop(r *reader) {
	p.readPortable(r)
}

// setReadBuffer sizes the socket receive buffer, best effort. Without a
// portable way to read the granted size back, clamping goes undetected
// here; the linux build reads it back and reports.
func setReadBuffer(pc net.PacketConn, want int, logf func(format string, args ...any)) {
	if uc, ok := pc.(*net.UDPConn); ok {
		if err := uc.SetReadBuffer(want); err != nil {
			logf("ingest: set socket receive buffer to %d bytes: %v", want, err)
		}
	}
}
