// Analytics state (de)serialization: the full-fidelity binary codec the
// durable store (internal/store) uses for checkpoint frames. A frame must
// restore *exactly* the shard state — including the complete per-prefix
// counters, which the rendered Snapshot truncates to TopK — so recovery
// and historical range queries reproduce live results byte for byte. The
// encoding is deterministic (maps are emitted in sorted order): the same
// shard state always marshals to the same bytes, which lets the store CRC
// frames and lets tests compare checkpoints structurally.
package streaming

import (
	"encoding/binary"
	"fmt"
	"math"
	"net/netip"
	"sort"
	"time"
)

// stateVersion is the Analytics binary state codec version.
const stateVersion = 1

// MaxWindowHours is the plausibility bound on hour indices and window
// lengths: 20 years of hourly bins past Origin (~4 MB of ring; evenly
// divisible by archiveGrowQuantum, so grown archive windows never round
// past it). It caps three things consistently: ingest/merge reject
// records beyond it as Late (a forged timestamp or garbage exporter
// clock must not grow an archive ring that later reads reject),
// UnmarshalAnalyticsStored refuses to adopt a larger declared window
// (the record-layer CRC does not bound allocations), and the durable
// store validates frame metadata hour spans against it before sizing
// merge windows.
const MaxWindowHours = 20 * 366 * 24

// MarshalBinary encodes the shard's complete aggregate state. The shard
// is not modified; callers must hold whatever lock guards live ingestion.
func (a *Analytics) MarshalBinary() ([]byte, error) {
	// Generous pre-size: fixed head + live bins + prefix/district entries.
	buf := make([]byte, 0, 64+len(a.prefixList)*16+len(a.districtIDs)*24+a.cfg.WindowHours/4)
	buf = append(buf, stateVersion)
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.cfg.Origin.UnixNano()))
	buf = binary.BigEndian.AppendUint32(buf, uint32(a.cfg.WindowHours))
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(a.maxHour)))
	buf = binary.BigEndian.AppendUint64(buf, a.late)
	buf = binary.BigEndian.AppendUint64(buf, a.located)

	buf = binary.BigEndian.AppendUint32(buf, uint32(nReasons))
	for _, n := range a.dropped {
		buf = binary.BigEndian.AppendUint64(buf, n)
	}

	// Populated window bins, oldest hour first.
	bins := a.sortedBins()
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(bins)))
	for _, bin := range bins {
		buf = binary.BigEndian.AppendUint64(buf, uint64(int64(bin.hour)))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(bin.flows))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(bin.bytes))
	}

	// Full prefix counters in address order.
	prefixes := make([]netip.Prefix, 0, len(a.prefixList))
	prefixes = append(prefixes, a.prefixList...)
	sort.Slice(prefixes, func(i, j int) bool {
		if c := prefixes[i].Addr().Compare(prefixes[j].Addr()); c != 0 {
			return c < 0
		}
		return prefixes[i].Bits() < prefixes[j].Bits()
	})
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(prefixes)))
	for _, p := range prefixes {
		addr := p.Addr()
		if addr.Is4() {
			b := addr.As4()
			buf = append(buf, 4)
			buf = append(buf, b[:]...)
		} else {
			b := addr.As16()
			buf = append(buf, 16)
			buf = append(buf, b[:]...)
		}
		buf = append(buf, byte(p.Bits()))
		buf = binary.BigEndian.AppendUint64(buf, a.prefixCount[a.prefixIdx[p]])
	}

	// District rollup (flag + sorted entries).
	if !a.hasDistricts {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		ids := append([]string(nil), a.districtIDs...)
		sort.Strings(ids)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(ids)))
		for _, id := range ids {
			if len(id) > math.MaxUint16 {
				return nil, fmt.Errorf("streaming: district id %q too long", id)
			}
			buf = append(buf, byte(len(id)>>8), byte(len(id)))
			buf = append(buf, id...)
			buf = binary.BigEndian.AppendUint64(buf, a.districtCount[a.districtIdx[id]])
		}
	}
	return buf, nil
}

// UnmarshalAnalytics reconstructs a shard from MarshalBinary output. The
// configuration must resolve to the same Origin and WindowHours the state
// was captured under (the store's meta file enforces this across
// restarts); DB and Model may differ — a restored shard keeps district
// counts even when the reader has no geolocation sidecar.
func UnmarshalAnalytics(cfg Config, data []byte) (*Analytics, error) {
	return unmarshalAnalytics(cfg, data, false)
}

// UnmarshalAnalyticsStored reconstructs a shard adopting the window
// length embedded in the state instead of requiring it to match cfg
// (Origin must still match). The durable store loads checkpoint frames
// with it: compacted frames are archives persisted at a window wide
// enough to hold their whole hour span, which can exceed the live
// sliding window.
func UnmarshalAnalyticsStored(cfg Config, data []byte) (*Analytics, error) {
	return unmarshalAnalytics(cfg, data, true)
}

func unmarshalAnalytics(cfg Config, data []byte, adoptWindow bool) (*Analytics, error) {
	d := stateDecoder{buf: data}
	if v := d.u8(); v != stateVersion {
		return nil, fmt.Errorf("streaming: state version %d, want %d", v, stateVersion)
	}
	origin := time.Unix(0, int64(d.u64())).UTC()
	window := int(d.u32())
	cfg = cfg.withDefaults()
	if d.err == nil {
		if !origin.Equal(cfg.Origin) || (!adoptWindow && window != cfg.WindowHours) {
			return nil, fmt.Errorf("streaming: state window [%s +%dh] does not match config [%s +%dh]",
				origin, window, cfg.Origin, cfg.WindowHours)
		}
		if window <= 0 || (adoptWindow && window > MaxWindowHours) {
			return nil, fmt.Errorf("streaming: implausible state window length %d", window)
		}
		cfg.WindowHours = window
	}
	a := New(cfg)
	a.maxHour = int(int64(d.u64()))
	a.late = d.u64()
	a.located = d.u64()

	if n := int(d.u32()); d.err == nil && n != nReasons {
		return nil, fmt.Errorf("streaming: state has %d drop reasons, want %d", n, nReasons)
	}
	for i := range a.dropped {
		a.dropped[i] = d.u64()
	}

	nBins := int(d.u32())
	for i := 0; i < nBins && d.err == nil; i++ {
		h := int(int64(d.u64()))
		flows := math.Float64frombits(d.u64())
		bytes := math.Float64frombits(d.u64())
		if d.err != nil {
			break
		}
		if h < 0 || h > a.maxHour || (a.maxHour >= 0 && h <= a.maxHour-a.cfg.WindowHours) {
			return nil, fmt.Errorf("streaming: state bin hour %d outside window ending at %d", h, a.maxHour)
		}
		slot := h % a.cfg.WindowHours
		a.binHour[slot] = int32(h)
		a.binFlows[slot] = flows
		a.binBytes[slot] = bytes
		if a.archiveMin < 0 || h < a.archiveMin {
			a.archiveMin = h
		}
	}

	nPrefixes := int(d.u32())
	for i := 0; i < nPrefixes && d.err == nil; i++ {
		fam := d.u8()
		var addr netip.Addr
		switch fam {
		case 4:
			var b [4]byte
			d.bytes(b[:])
			addr = netip.AddrFrom4(b)
		case 16:
			var b [16]byte
			d.bytes(b[:])
			addr = netip.AddrFrom16(b)
		default:
			if d.err == nil {
				return nil, fmt.Errorf("streaming: state prefix family %d", fam)
			}
		}
		bits := int(d.u8())
		count := d.u64()
		if d.err != nil {
			break
		}
		p, err := addr.Prefix(bits)
		if err != nil {
			return nil, fmt.Errorf("streaming: state prefix %s/%d: %v", addr, bits, err)
		}
		a.prefixCount[a.internPrefix(p)] = count
	}

	if d.u8() == 1 {
		a.enableDistricts()
		nDistricts := int(d.u32())
		for i := 0; i < nDistricts && d.err == nil; i++ {
			idLen := int(d.u8())<<8 | int(d.u8())
			id := make([]byte, idLen)
			d.bytes(id)
			count := d.u64()
			if d.err != nil {
				break
			}
			a.districtCount[a.internDistrict(string(id))] = count
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("streaming: truncated state: %v", d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("streaming: %d trailing state bytes", len(d.buf))
	}
	return a, nil
}

// stateDecoder cursors over a state blob, latching the first error so the
// parse above stays linear instead of error-checking every read.
type stateDecoder struct {
	buf []byte
	err error
}

func (d *stateDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = fmt.Errorf("want %d bytes, have %d", n, len(d.buf))
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *stateDecoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *stateDecoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *stateDecoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *stateDecoder) bytes(dst []byte) {
	b := d.take(len(dst))
	if b != nil {
		copy(dst, b)
	}
}
