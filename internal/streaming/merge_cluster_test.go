package streaming

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"cwatrace/internal/entime"
	"cwatrace/internal/geo"
	"cwatrace/internal/geodb"
	"cwatrace/internal/netflow"
)

// districtGeoDB maps one distinct client /24 to every one of the 401
// districts, through the router-ground-truth path so the mapping is exact
// and deterministic.
func districtGeoDB(t *testing.T, model *geo.Model) (*geodb.DB, []netip.Prefix) {
	t.Helper()
	districts := model.Districts()
	infos := make([]geodb.PrefixInfo, len(districts))
	prefixes := make([]netip.Prefix, len(districts))
	for i, d := range districts {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(1 + i>>8), byte(i), 0}), 24)
		infos[i] = geodb.PrefixInfo{Prefix: p, RouterID: fmt.Sprintf("R%03d", i), DistrictID: d.ID, ISPName: "Blau"}
		prefixes[i] = p
	}
	db, err := geodb.Build(model, infos, geodb.Config{PartnerISP: "Blau", Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return db, prefixes
}

// TestMergeOrderInvarianceAcrossDistrictShards pins the algebra the
// clustered collectors lean on: when one capture is partitioned across
// shards by the 401-district key, Merge is commutative and associative —
// any merge order and any grouping of the per-district shards produces
// byte-identical marshaled state and a byte-identical snapshot. The shards
// are built concurrently so `make race` also covers the construction side.
func TestMergeOrderInvarianceAcrossDistrictShards(t *testing.T) {
	model := geo.Germany()
	db, prefixes := districtGeoDB(t, model)
	cfg := Config{WindowHours: 96, DB: db, Model: model}

	const nShards = 8
	// The cluster partition: district index (canonical sorted-ID order)
	// modulo the shard count. Every record of one district lands wholly in
	// one shard.
	owner := func(d int) int { return d % nShards }

	type rec struct {
		shard int
		r     netflow.Record
	}
	var recs []rec
	for d, p := range prefixes {
		addr := netip.AddrFrom4(p.Addr().As4())
		a4 := addr.As4()
		a4[3] = byte(7 + d%31)
		client := netip.AddrFrom4(a4)
		for h := 0; h < 3+d%5; h++ {
			r := keptRecord(entime.StudyStart.Add(time.Duration((d+h)%48)*time.Hour), client, uint64(100+d*3+h))
			recs = append(recs, rec{shard: owner(d), r: r})
		}
	}
	// Some traffic the filter drops, and a late record, spread over shards.
	for i := 0; i < nShards; i++ {
		bad := keptRecord(entime.StudyStart.Add(time.Hour), netip.AddrFrom4([4]byte{10, 1, byte(i), 9}), 50)
		bad.SrcPort = 80
		recs = append(recs, rec{shard: i, r: bad})
		late := keptRecord(entime.StudyStart.Add(-2*time.Hour), netip.AddrFrom4([4]byte{10, 1, byte(i), 10}), 50)
		recs = append(recs, rec{shard: i, r: late})
	}

	buildShards := func() []*Analytics {
		shards := make([]*Analytics, nShards)
		var wg sync.WaitGroup
		for i := range shards {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				a := New(cfg)
				for _, rr := range recs {
					if rr.shard == i {
						a.Ingest([]netflow.Record{rr.r})
					}
				}
				shards[i] = a
			}(i)
		}
		wg.Wait()
		return shards
	}

	render := func(order [][]int) (state []byte, snap []byte) {
		t.Helper()
		shards := buildShards()
		// Merge each group into its own accumulator, then fold the group
		// accumulators left to right: [][]int{{0},{1},...} is a plain
		// sequential order, nested groups exercise associativity.
		groups := make([]*Analytics, len(order))
		for gi, g := range order {
			acc := New(cfg)
			for _, si := range g {
				acc.Merge(shards[si])
			}
			groups[gi] = acc
		}
		m := New(cfg)
		for _, g := range groups {
			m.Merge(g)
		}
		st, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		sj, err := json.Marshal(m.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return st, sj
	}

	orders := map[string][][]int{
		"sequential":  {{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}},
		"reversed":    {{7}, {6}, {5}, {4}, {3}, {2}, {1}, {0}},
		"interleaved": {{4}, {0}, {6}, {2}, {5}, {1}, {7}, {3}},
		"pairs":       {{0, 1}, {2, 3}, {4, 5}, {6, 7}},
		"tree":        {{0, 1, 2, 3}, {4, 5, 6, 7}},
		"lopsided":    {{7, 0, 3}, {5}, {1, 6, 2, 4}},
	}
	baseState, baseSnap := render(orders["sequential"])
	if len(baseState) == 0 {
		t.Fatal("empty marshaled state")
	}
	for name, order := range orders {
		state, snap := render(order)
		if !bytes.Equal(state, baseState) {
			t.Errorf("merge order %q: marshaled state differs from sequential order", name)
		}
		if !bytes.Equal(snap, baseSnap) {
			t.Errorf("merge order %q: snapshot JSON differs from sequential order", name)
		}
	}
}

// TestFromSnapshotRoundTrip pins the reconstruction the query router
// performs: rendering a shard and restoring it with FromSnapshot must
// yield a shard whose own rendering is byte-identical, and merging
// restored shards must equal merging the originals.
func TestFromSnapshotRoundTrip(t *testing.T) {
	model := geo.Germany()
	db, prefixes := districtGeoDB(t, model)
	cfg := Config{WindowHours: 96, DB: db, Model: model}

	a := New(cfg)
	for d := 0; d < 40; d++ {
		a4 := prefixes[d].Addr().As4()
		a4[3] = 9
		for h := 0; h < 5; h++ {
			a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(time.Duration(h*2)*time.Hour), netip.AddrFrom4(a4), uint64(10+d+h))})
		}
	}
	bad := keptRecord(entime.StudyStart, netip.AddrFrom4([4]byte{10, 1, 0, 9}), 5)
	bad.SrcPort = 80
	a.Ingest([]netflow.Record{bad})

	orig := a.Snapshot()
	restored := FromSnapshot(orig)

	// The restored shard has no Model, so rendered district names are
	// empty — the router re-attaches names harvested from the shard
	// responses. Compare everything else byte-for-byte by re-rendering
	// the original through the same nameless merge path.
	nameless := New(Config{Origin: orig.Origin, WindowHours: orig.WindowHours})
	nameless.Merge(a)
	want, err := json.Marshal(nameless.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(restored.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("restored snapshot differs:\n got: %.500s\nwant: %.500s", got, want)
	}
}
