package streaming

import (
	"reflect"
	"testing"
	"time"

	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
)

// populatedShard builds a shard with every aggregate populated: window
// bins, census drops, late records, prefixes and a district rollup.
func populatedShard(t *testing.T) (*Analytics, Config) {
	t.Helper()
	cfg := Config{WindowHours: 48, TopK: 3}
	a := New(cfg)
	for i := 0; i < 40; i++ {
		a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(time.Duration(i%12)*time.Hour), client(i%7), uint64(100+i))})
	}
	// A dropped record and a late one.
	r := keptRecord(entime.StudyStart, client(1), 10)
	r.SrcPort = 80
	a.Ingest([]netflow.Record{r})
	a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(-time.Hour), client(2), 10)})
	// District counts, as a restored checkpoint frame would carry them
	// (white box: the real path needs a geodb sidecar).
	a.enableDistricts()
	a.districtCount[a.internDistrict("05-113")] = 7
	a.districtCount[a.internDistrict("09-162")] = 3
	a.located = 10
	return a, cfg
}

func TestMarshalRoundTripRestoresState(t *testing.T) {
	a, cfg := populatedShard(t)
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := UnmarshalAnalytics(cfg, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("restored snapshot differs")
	}

	// The restored shard must behave identically under further traffic —
	// the recovery contract, stronger than snapshot equality (top-K
	// truncation would hide diverging prefix tails).
	more := []netflow.Record{
		keptRecord(entime.StudyStart.Add(20*time.Hour), client(4), 900),
		keptRecord(entime.StudyStart.Add(21*time.Hour), client(50), 901),
	}
	a.Ingest(more)
	b.Ingest(more)
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("restored shard diverges under further ingestion")
	}
}

func TestMarshalDeterministic(t *testing.T) {
	a, _ := populatedShard(t)
	b1, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("state marshaling is not deterministic")
	}
}

func TestUnmarshalRejectsDamage(t *testing.T) {
	a, cfg := populatedShard(t)
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalAnalytics(cfg, blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated state must fail")
	}
	if _, err := UnmarshalAnalytics(cfg, append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing bytes must fail")
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 99
	if _, err := UnmarshalAnalytics(cfg, bad); err == nil {
		t.Fatal("unknown version must fail")
	}
	// A config with a different window cannot adopt the state.
	if _, err := UnmarshalAnalytics(Config{WindowHours: 24}, blob); err == nil {
		t.Fatal("window mismatch must fail")
	}
}

func TestMergeAdoptsDistrictsIntoDBLessShard(t *testing.T) {
	a, cfg := populatedShard(t)
	m := New(cfg) // no DB/Model: districts nil
	m.Merge(a)
	snap := m.Snapshot()
	if len(snap.Districts) != 2 || snap.Located != 10 {
		t.Fatalf("district rollup lost in merge: %+v", snap.Districts)
	}
}

func TestBounds(t *testing.T) {
	cfg := Config{WindowHours: 8}
	a := New(cfg)
	if _, _, ok := a.Bounds(); ok {
		t.Fatal("empty shard reports bounds")
	}
	a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(3*time.Hour), client(1), 10)})
	a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(6*time.Hour), client(2), 10)})
	lo, hi, ok := a.Bounds()
	if !ok || lo != 3 || hi != 6 {
		t.Fatalf("bounds = [%d, %d] ok=%v, want [3, 6]", lo, hi, ok)
	}
	// Sliding the window past hour 3 moves the lower bound.
	a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(11*time.Hour), client(3), 10)})
	lo, hi, ok = a.Bounds()
	if !ok || lo != 6 || hi != 11 {
		t.Fatalf("bounds after slide = [%d, %d] ok=%v, want [6, 11]", lo, hi, ok)
	}
}

// TestBoundsArchive pins the O(1) fast path the store's tails use: an
// Archive shard's tracked extremes must equal a populated-bin scan at
// every step, including out-of-order arrivals and Merge-driven growth.
func TestBoundsArchive(t *testing.T) {
	cfg := Config{WindowHours: 8, Archive: true}
	a := New(cfg)
	if _, _, ok := a.Bounds(); ok {
		t.Fatal("empty archive shard reports bounds")
	}
	scanBounds := func(s *Analytics) (int, int, bool) {
		lo, hi := -1, -1
		for _, h := range s.binHour {
			if h < 0 {
				continue
			}
			if lo < 0 || int(h) < lo {
				lo = int(h)
			}
			if int(h) > hi {
				hi = int(h)
			}
		}
		return lo, hi, lo >= 0
	}
	for _, h := range []int{40, 3, 100, 7} { // out of order, beyond the window
		a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(time.Duration(h)*time.Hour), client(h), 10)})
		glo, ghi, gok := a.Bounds()
		slo, shi, sok := scanBounds(a)
		if glo != slo || ghi != shi || gok != sok {
			t.Fatalf("after hour %d: fast bounds [%d,%d]%v != scan [%d,%d]%v", h, glo, ghi, gok, slo, shi, sok)
		}
	}
	if lo, hi, ok := a.Bounds(); !ok || lo != 3 || hi != 100 {
		t.Fatalf("archive bounds = [%d, %d] ok=%v, want [3, 100]", lo, hi, ok)
	}
	// Merge-driven growth tracks too.
	other := New(Config{WindowHours: 8})
	other.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(200*time.Hour), client(9), 10)})
	a.Merge(other)
	if lo, hi, ok := a.Bounds(); !ok || lo != 3 || hi != 200 {
		t.Fatalf("archive bounds after merge = [%d, %d] ok=%v, want [3, 200]", lo, hi, ok)
	}
}

func TestSnapshotRangeTrimsExactly(t *testing.T) {
	cfg := Config{WindowHours: 48, SpikeHistory: 2, SpikeFactor: 3, SpikeMinFlows: 3}
	a := New(cfg)
	add := func(h, count int) {
		for i := 0; i < count; i++ {
			a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(time.Duration(h)*time.Hour), client(i), 100)})
		}
	}
	add(0, 1)
	add(1, 1)
	add(2, 1)
	add(3, 9) // spike vs hours 1-2
	add(4, 1)

	from := entime.StudyStart.Add(1 * time.Hour)
	to := entime.StudyStart.Add(4 * time.Hour)
	s := a.SnapshotRange(from, to)
	if len(s.Hours) != 3 || s.SeriesStart != 1 {
		t.Fatalf("trimmed series: start=%d len=%d", s.SeriesStart, len(s.Hours))
	}
	for i, p := range s.Hours {
		if p.Hour != 1+i {
			t.Fatalf("hour %d: %+v", i, p)
		}
	}
	// Spikes are re-detected on the trimmed series: hour 3 still spikes
	// over hours 1-2.
	if len(s.Spikes) != 1 || s.Spikes[0].Hour != 3 {
		t.Fatalf("spikes on trimmed range: %+v", s.Spikes)
	}
	// The census is shard-granular, untouched by trimming.
	if s.Census.Kept != 13 {
		t.Fatalf("census kept %d, want 13", s.Census.Kept)
	}

	// Open bounds reproduce the full snapshot.
	if !reflect.DeepEqual(a.SnapshotRange(time.Time{}, time.Time{}), a.Snapshot()) {
		t.Fatal("open-bounds range differs from full snapshot")
	}

	// A range with no hours yields an empty series.
	s = a.SnapshotRange(entime.StudyStart.Add(40*time.Hour), time.Time{})
	if len(s.Hours) != 0 || s.SeriesStart != 0 {
		t.Fatalf("empty range: start=%d hours=%+v", s.SeriesStart, s.Hours)
	}
}

// TestUnmarshalStoredAdoptsWiderWindow pins the archive-frame contract:
// the strict unmarshal rejects a state window that differs from the
// configuration, while UnmarshalAnalyticsStored adopts the embedded
// window — the store's compacted frames span more hours than the live
// sliding window and must restore without losing a bin.
func TestUnmarshalStoredAdoptsWiderWindow(t *testing.T) {
	wide := New(Config{WindowHours: 10})
	for h := 0; h < 10; h++ {
		wide.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(time.Duration(h)*time.Hour), client(h), 100)})
	}
	blob, err := wide.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	narrow := Config{WindowHours: 4}
	if _, err := UnmarshalAnalytics(narrow, blob); err == nil {
		t.Fatal("strict unmarshal must reject a mismatched window")
	}
	got, err := UnmarshalAnalyticsStored(narrow, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Snapshot(), wide.Snapshot()) {
		t.Fatal("stored unmarshal lost state restoring a wider window")
	}

	// An implausibly large declared window is corruption, not an
	// allocation request: the ring would be ~100 GB.
	huge := append([]byte(nil), blob...)
	huge[9], huge[10], huge[11], huge[12] = 0xFF, 0xFF, 0xFF, 0xFF // window u32 after version+origin
	if _, err := UnmarshalAnalyticsStored(narrow, huge); err == nil {
		t.Fatal("stored unmarshal must reject an implausible window length")
	}
}
