package streaming

import (
	"net/netip"
	"reflect"
	"testing"
	"time"

	"cwatrace/internal/core"
	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
)

// keptRecord fabricates a record the paper's filter keeps: CWA server to
// an IPv4 client, tcp/443, downstream.
func keptRecord(t time.Time, client netip.Addr, bytes uint64) netflow.Record {
	f := core.DefaultFilter()
	src := f.ServerPrefixes[0].Addr()
	return netflow.Record{
		Key: netflow.Key{
			Src:     src,
			Dst:     client,
			SrcPort: netflow.PortHTTPS,
			DstPort: 50000,
			Proto:   netflow.ProtoTCP,
		},
		Packets:  5,
		Bytes:    bytes,
		First:    t,
		Last:     t.Add(time.Second),
		Exporter: "ISP/BE-000",
	}
}

func client(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{100, 64, byte(i >> 8), byte(i)})
}

func TestFilterCensusMatchesBatch(t *testing.T) {
	recs := []netflow.Record{
		keptRecord(entime.StudyStart.Add(time.Hour), client(1), 1000),
		// Upstream (client to server): dropped.
		func() netflow.Record {
			r := keptRecord(entime.StudyStart.Add(time.Hour), client(2), 500)
			r.Src, r.Dst = r.Dst, r.Src
			r.SrcPort, r.DstPort = r.DstPort, r.SrcPort
			return r
		}(),
		// Wrong port: dropped.
		func() netflow.Record {
			r := keptRecord(entime.StudyStart.Add(2*time.Hour), client(3), 500)
			r.SrcPort = 80
			return r
		}(),
	}
	a := New(Config{})
	a.Ingest(recs)
	snap := a.Snapshot()

	_, want := core.ApplyFilter(recs, core.DefaultFilter())
	if !reflect.DeepEqual(snap.Census, want) {
		t.Fatalf("census %+v, want %+v", snap.Census, want)
	}
}

func TestSlidingWindowEvictsAndCountsLate(t *testing.T) {
	cfg := Config{WindowHours: 4}
	a := New(cfg)

	// Hours 0,1,2,3 fill the ring.
	for h := 0; h < 4; h++ {
		a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(time.Duration(h)*time.Hour), client(h), 100)})
	}
	// Hour 5 slides the window to [2..5], evicting hours 0 and 1.
	a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(5*time.Hour), client(5), 100)})
	// A record for hour 1 is now late.
	a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(time.Hour), client(1), 100)})
	// As is anything before the origin — including less than an hour
	// before it, where naive duration division would truncate to bucket 0.
	a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(-time.Hour), client(9), 100)})
	a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(-30*time.Minute), client(10), 100)})

	snap := a.Snapshot()
	if snap.Late != 3 {
		t.Fatalf("late = %d, want 3", snap.Late)
	}
	if snap.SeriesStart != 2 || len(snap.Hours) != 4 {
		t.Fatalf("window [%d +%d], want [2 +4]", snap.SeriesStart, len(snap.Hours))
	}
	wantFlows := []float64{1, 1, 0, 1} // hours 2,3,4(empty),5
	for i, p := range snap.Hours {
		if p.Flows != wantFlows[i] {
			t.Fatalf("hour %d flows = %v, want %v", p.Hour, p.Flows, wantFlows[i])
		}
	}
	// The census still counted the late records as kept: they passed the
	// filter, only the window had moved on.
	if snap.Census.Kept != 8 {
		t.Fatalf("kept = %d, want 8", snap.Census.Kept)
	}
}

func TestSpikeDetection(t *testing.T) {
	cfg := Config{SpikeHistory: 3, SpikeFactor: 3, SpikeMinFlows: 5}
	a := New(cfg)
	// Flat baseline of 2 flows/hour for 3 hours, then a 12-flow hour.
	n := 0
	add := func(h, count int) {
		for i := 0; i < count; i++ {
			a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(time.Duration(h)*time.Hour), client(n), 100)})
			n++
		}
	}
	add(0, 2)
	add(1, 2)
	add(2, 2)
	add(3, 12)

	snap := a.Snapshot()
	if len(snap.Spikes) != 1 {
		t.Fatalf("spikes = %+v, want exactly one", snap.Spikes)
	}
	s := snap.Spikes[0]
	if s.Hour != 3 || s.Flows != 12 || s.Baseline != 2 || s.Ratio != 6 {
		t.Fatalf("spike = %+v", s)
	}
}

func TestTopPrefixesDeterministicOrder(t *testing.T) {
	a := New(Config{TopK: 2})
	at := entime.StudyStart.Add(time.Hour)
	// Three /24s: 203.0.113.x twice, 100.64.0.x twice, 100.64.1.x once.
	a.Ingest([]netflow.Record{
		keptRecord(at, netip.AddrFrom4([4]byte{203, 0, 113, 1}), 1),
		keptRecord(at, netip.AddrFrom4([4]byte{203, 0, 113, 2}), 1),
		keptRecord(at, netip.AddrFrom4([4]byte{100, 64, 0, 1}), 1),
		keptRecord(at, netip.AddrFrom4([4]byte{100, 64, 0, 2}), 1),
		keptRecord(at, netip.AddrFrom4([4]byte{100, 64, 1, 1}), 1),
	})
	snap := a.Snapshot()
	if len(snap.TopPrefixes) != 2 {
		t.Fatalf("topk = %+v", snap.TopPrefixes)
	}
	// Tie at 2 flows: the lower address wins deterministically.
	if snap.TopPrefixes[0].Prefix.String() != "100.64.0.0/24" || snap.TopPrefixes[1].Prefix.String() != "203.0.113.0/24" {
		t.Fatalf("topk order = %v", snap.TopPrefixes)
	}
}

// TestMergeEqualsSerial splits one stream across three shards and asserts
// the merged snapshot is identical to a single shard that saw everything —
// the worker-count-invariance property the pipeline relies on.
func TestMergeEqualsSerial(t *testing.T) {
	cfg := Config{TopK: 5}
	var recs []netflow.Record
	for i := 0; i < 300; i++ {
		at := entime.StudyStart.Add(time.Duration(i%48) * time.Hour / 2)
		recs = append(recs, keptRecord(at, client(i%37), uint64(100+i)))
	}

	serial := New(cfg)
	serial.Ingest(recs)

	shards := []*Analytics{New(cfg), New(cfg), New(cfg)}
	for i, r := range recs {
		shards[i%3].Ingest([]netflow.Record{r})
	}

	if !reflect.DeepEqual(Collect(cfg, shards), serial.Snapshot()) {
		t.Fatal("merged shards differ from the serial shard")
	}
}

// TestEvictionDropsHoursOlderThanWindow proves the hourly ring forgets:
// after the window slides, hours older than WindowHours are gone from
// the snapshot and their flows are not re-attributed anywhere (only the
// census remembers they were kept).
func TestEvictionDropsHoursOlderThanWindow(t *testing.T) {
	cfg := Config{WindowHours: 4}
	a := New(cfg)
	for h := 0; h < 4; h++ {
		a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(time.Duration(h)*time.Hour), client(h), 100)})
	}
	// Jump far past the window (more than 2x WindowHours), so every ring
	// slot is slid over — including slots whose stale hour index happens
	// to collide modulo WindowHours with a window hour.
	a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(11*time.Hour), client(11), 100)})

	snap := a.Snapshot()
	if snap.SeriesStart != 8 || len(snap.Hours) != 4 {
		t.Fatalf("window [%d +%d], want [8 +4]", snap.SeriesStart, len(snap.Hours))
	}
	var total float64
	for _, p := range snap.Hours {
		total += p.Flows
		if p.Hour < 8 {
			t.Fatalf("hour %d survived eviction", p.Hour)
		}
		// Hours 0..3 filled slots 0..3; hours 8..10 reuse those slots and
		// must read as empty, not as the stale pre-slide counts.
		if p.Hour != 11 && p.Flows != 0 {
			t.Fatalf("evicted slot resurrected as hour %d with %v flows", p.Hour, p.Flows)
		}
	}
	if total != 1 {
		t.Fatalf("window holds %v flows, want exactly the post-slide record", total)
	}
	if snap.Census.Kept != 5 {
		t.Fatalf("census kept %d, want 5 (eviction must not touch the census)", snap.Census.Kept)
	}
}

// TestSnapshotAfterEvictionNeverResurrectsBuckets pins the regression
// the durable store cares about: a snapshot taken after eviction — and a
// marshal/restore round trip of that state — must never bring evicted
// buckets back.
func TestSnapshotAfterEvictionNeverResurrectsBuckets(t *testing.T) {
	cfg := Config{WindowHours: 3}
	a := New(cfg)
	// Two populated hours, then slides that evict them one at a time.
	a.Ingest([]netflow.Record{keptRecord(entime.StudyStart, client(0), 100)})
	a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(time.Hour), client(1), 100)})
	a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(3*time.Hour), client(3), 100)}) // evicts hour 0
	a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(4*time.Hour), client(4), 100)}) // evicts hour 1

	for _, snap := range []*Snapshot{a.Snapshot(), a.Snapshot()} { // stable across repeated snapshots
		for _, p := range snap.Hours {
			if p.Hour < 2 {
				t.Fatalf("evicted hour %d resurrected: %+v", p.Hour, p)
			}
		}
		if snap.SeriesStart != 2 {
			t.Fatalf("series start %d, want 2", snap.SeriesStart)
		}
	}

	// The serialized state agrees: restoring it yields the same window.
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := UnmarshalAnalytics(cfg, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("restored post-eviction state differs")
	}
	// And a record for an evicted hour stays evicted on both.
	late := []netflow.Record{keptRecord(entime.StudyStart.Add(time.Hour), client(9), 100)}
	a.Ingest(late)
	b.Ingest(late)
	if got := a.Snapshot(); got.Late != b.Snapshot().Late || got.Late != 1 {
		t.Fatalf("late accounting diverged: %d", got.Late)
	}
}

// TestMergeEvictsLikeIngest proves window eviction behaves identically
// whether the slide comes from live records or from merging a shard
// that is ahead in time.
func TestMergeEvictsLikeIngest(t *testing.T) {
	cfg := Config{WindowHours: 4}
	old := New(cfg)
	old.Ingest([]netflow.Record{keptRecord(entime.StudyStart, client(0), 100)})
	old.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(time.Hour), client(1), 100)})
	ahead := New(cfg)
	ahead.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(6*time.Hour), client(6), 100)})

	// Merging the ahead shard into the old one slides the window: hours
	// 0 and 1 fall out and are counted late, exactly as live ingestion
	// of an hour-6 record would have done.
	merged := New(cfg)
	merged.Merge(old)
	merged.Merge(ahead)
	snap := merged.Snapshot()
	if snap.SeriesStart != 3 {
		t.Fatalf("merged window starts at %d, want 3", snap.SeriesStart)
	}
	for _, p := range snap.Hours {
		if p.Hour < 3 && p.Flows != 0 {
			t.Fatalf("merged window resurrected hour %d", p.Hour)
		}
	}

	live := New(cfg)
	live.Ingest([]netflow.Record{keptRecord(entime.StudyStart, client(0), 100)})
	live.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(time.Hour), client(1), 100)})
	live.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(6*time.Hour), client(6), 100)})
	if snap.Late != live.Snapshot().Late {
		t.Fatalf("merge late = %d, live late = %d", snap.Late, live.Snapshot().Late)
	}
}

func TestFigure2RequiresStudyWindow(t *testing.T) {
	a := New(Config{Origin: entime.StudyStart.Add(time.Hour)})
	if _, err := a.Snapshot().Figure2(nil); err == nil {
		t.Fatal("figure 2 from a shifted window must fail")
	}
}

// TestArchiveWindowGrowsInsteadOfEvicting pins the Archive contract the
// durable store's tail shards rely on: the hourly ring widens to cover
// every binned hour instead of sliding, in-window-stale records are
// binned rather than counted late, and only pre-Origin records stay
// Late. A marshal/restore round trip preserves the grown window.
func TestArchiveWindowGrowsInsteadOfEvicting(t *testing.T) {
	cfg := Config{WindowHours: 4, Archive: true}
	a := New(cfg)
	for h := 0; h < 12; h++ {
		a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(time.Duration(h)*time.Hour), client(h), 100)})
	}
	// A stale-but-post-Origin record: a sliding window would count it
	// late; the archive bins it.
	a.Ingest([]netflow.Record{keptRecord(entime.StudyStart, client(50), 100)})
	// Pre-Origin is still late.
	a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(-time.Hour), client(51), 100)})

	snap := a.Snapshot()
	if snap.SeriesStart != 0 || len(snap.Hours) != 12 {
		t.Fatalf("archive window [%d +%d], want [0 +12]", snap.SeriesStart, len(snap.Hours))
	}
	for _, p := range snap.Hours {
		want := 1.0
		if p.Hour == 0 {
			want = 2
		}
		if p.Flows != want {
			t.Fatalf("hour %d holds %v flows, want %v", p.Hour, p.Flows, want)
		}
	}
	if snap.Late != 1 {
		t.Fatalf("late = %d, want 1 (only the pre-Origin record)", snap.Late)
	}

	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := UnmarshalAnalyticsStored(Config{WindowHours: 4}, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("restored archive state differs")
	}
}

// TestImplausibleTimestampCountsLate pins the plausibility cap: a
// record forged (or clock-skewed) past MaxWindowHours must count Late —
// in both live and archive shards — instead of sliding a live window
// over every real bin or growing an archive ring past what stored-state
// reads accept back.
func TestImplausibleTimestampCountsLate(t *testing.T) {
	for _, archive := range []bool{false, true} {
		a := New(Config{WindowHours: 4, Archive: archive})
		a.Ingest([]netflow.Record{keptRecord(entime.StudyStart, client(1), 100)})
		a.Ingest([]netflow.Record{keptRecord(entime.StudyStart.Add(time.Duration(MaxWindowHours)*time.Hour), client(2), 100)})
		snap := a.Snapshot()
		if snap.Late != 1 {
			t.Fatalf("archive=%v: late = %d, want 1", archive, snap.Late)
		}
		if len(snap.Hours) != 1 || snap.Hours[0].Hour != 0 || snap.Hours[0].Flows != 1 {
			t.Fatalf("archive=%v: forged record disturbed the window: %+v", archive, snap.Hours)
		}
		if a.cfg.WindowHours > MaxWindowHours {
			t.Fatalf("archive=%v: window grew past the cap: %d", archive, a.cfg.WindowHours)
		}
	}
}
