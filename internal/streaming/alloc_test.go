package streaming

import (
	"testing"
	"time"

	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
)

// TestIngestZeroAllocSteadyState pins the per-record streaming update at
// zero allocations once the shard is warm: the hour bin claimed, every
// prefix interned. This is the regression guard for the columnar-ring
// design — a map growing, an interface boxing, or a time.Duration round
// trip reappearing in ingest() fails here, not in a profile weeks later.
func TestIngestZeroAllocSteadyState(t *testing.T) {
	a := New(Config{})
	base := entime.StudyStart.Add(time.Hour)
	recs := make([]netflow.Record, 64)
	for i := range recs {
		// Spread clients across several /24s so the run exercises both
		// the last-prefix memo and the interned-index map lookups.
		recs[i] = keptRecord(base.Add(time.Duration(i)*time.Second), client(i*16), uint64(500+i))
	}
	// Two dropped shapes keep the filter-classification path in the loop.
	recs[10].SrcPort = 80
	recs[20].Src, recs[20].Dst = recs[20].Dst, recs[20].Src

	// Warm: claim the bin, intern every prefix the run will touch.
	a.Ingest(recs)

	allocs := testing.AllocsPerRun(100, func() { a.Ingest(recs) })
	if allocs != 0 {
		t.Fatalf("steady-state Ingest of %d records allocated %.1f times per run, want 0", len(recs), allocs)
	}
}
